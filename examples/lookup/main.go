// Lookup: emulate Chord on a stabilized Re-Chord network. Every peer's
// routing table (successor + fingers) is read off its own virtual
// nodes' closest-real-neighbor state, lookups resolve in O(log n)
// hops, and a small key-value store runs on top.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/churn"
	"repro/internal/dht"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	nw, ids, err := churn.StableNetwork(64, rng, rechord.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// A peer's Chord view, extracted from its Re-Chord state only.
	tab, err := routing.TableOf(nw, ids[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peer %s: successor %s, %d fingers\n", tab.Self, tab.Successor, len(tab.Fingers))

	// Random lookups: correct owner, logarithmic path length.
	var hops []float64
	for i := 0; i < 500; i++ {
		key := ident.ID(rng.Uint64())
		want, _ := routing.Owner(nw, key)
		got, path, err := routing.Route(nw, ids[rng.Intn(len(ids))], key)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("lookup(%s) = %s, want %s", key, got, want)
		}
		hops = append(hops, float64(len(path)-1))
	}
	s := stats.Summarize(hops)
	fmt.Printf("500 lookups over %d peers: mean %.2f hops, max %.0f (log2 n = 6)\n",
		len(ids), s.Mean, s.Max)

	// The DHT on top.
	store := dht.New(nw)
	for i := 0; i < 100; i++ {
		if _, _, err := store.Put(ids[i%len(ids)], fmt.Sprintf("user:%03d", i), fmt.Sprintf("profile-%03d", i)); err != nil {
			log.Fatal(err)
		}
	}
	v, ok, err := store.Get(ids[7], "user:042")
	if err != nil || !ok {
		log.Fatalf("Get failed: %v %v", ok, err)
	}
	fmt.Printf("dht: stored 100 records, user:042 -> %q\n", v)
}
