// Lookup: emulate Chord on a stabilized Re-Chord cluster. Lookups
// resolve over the overlay in O(log n) hops through the epoch-cached
// table router, a key-value round-trip rides on top, and the workload
// engine serves concurrent DHT traffic — all through the cluster
// facade.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/cluster"
)

func main() {
	c, err := cluster.New(cluster.WithSize(64), cluster.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Random lookups: correct owner, logarithmic path length.
	var sum, max int
	const lookups = 500
	for i := 0; i < lookups; i++ {
		key := fmt.Sprintf("probe-%04d", i)
		owner, hops, err := c.Lookup(ctx, key)
		if err != nil {
			log.Fatal(err)
		}
		if want := c.Owner(key); owner != want {
			log.Fatalf("lookup(%s) = %s, want %s", key, owner, want)
		}
		sum += hops
		if hops > max {
			max = hops
		}
	}
	fmt.Printf("%d lookups over %d peers: mean %.2f hops, max %d (log2 n = 6)\n",
		lookups, c.Size(), float64(sum)/lookups, max)

	// A quick DHT round-trip on top.
	if err := c.Put(ctx, "user:042", "profile-042"); err != nil {
		log.Fatal(err)
	}
	v, err := c.Get(ctx, "user:042")
	if err != nil {
		log.Fatalf("Get failed: %v", err)
	}
	fmt.Printf("dht: user:042 -> %q\n\n", v)

	// Serve concurrent traffic through the workload engine: same seed
	// => same op stream and same final store contents, per
	// distribution. Zipf concentrates the traffic, so its cache hit
	// rate and tail behave differently from uniform.
	for _, dist := range []string{cluster.DistUniform, cluster.DistZipf} {
		res, err := c.RunWorkload(ctx, cluster.WorkloadConfig{
			Workers:      8,
			Ops:          8000,
			Keyspace:     1024,
			Preload:      512,
			Distribution: dist,
			Seed:         42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload %-8s %s\n", dist+":", res.Summary())
		fmt.Printf("latency: p50 %.0fns p99 %.0fns; hops: mean %.2f p99 %.0f; cache: %d hits / %d misses\n\n",
			res.Latency.Percentile(50), res.Latency.Percentile(99),
			res.Hops.Mean(), res.Hops.Percentile(99), res.CacheHits, res.CacheMisses)
	}
}
