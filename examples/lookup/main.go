// Lookup: emulate Chord on a stabilized Re-Chord network. Every peer's
// routing table (successor + fingers) is read off its own virtual
// nodes' closest-real-neighbor state, lookups resolve in O(log n)
// hops, and the workload engine serves concurrent DHT traffic over the
// overlay through the epoch-cached table router.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/churn"
	"repro/internal/dht"
	"repro/internal/export"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	nw, ids, err := churn.StableNetwork(64, rng, rechord.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// A peer's Chord view, extracted from its Re-Chord state only.
	tab, err := routing.TableOf(nw, ids[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peer %s: successor %s, %d fingers\n", tab.Self, tab.Successor, len(tab.Fingers))

	// Random lookups: correct owner, logarithmic path length.
	var hops []float64
	for i := 0; i < 500; i++ {
		key := ident.ID(rng.Uint64())
		want, _ := routing.Owner(nw, key)
		got, path, err := routing.Route(nw, ids[rng.Intn(len(ids))], key)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("lookup(%s) = %s, want %s", key, got, want)
		}
		hops = append(hops, float64(len(path)-1))
	}
	s := stats.Summarize(hops)
	fmt.Printf("500 lookups over %d peers: mean %.2f hops, max %.0f (log2 n = 6)\n",
		len(ids), s.Mean, s.Max)

	// A quick DHT round-trip on top.
	store := dht.New(nw)
	if _, _, err := store.Put(ids[3], "user:042", "profile-042"); err != nil {
		log.Fatal(err)
	}
	v, _, err := store.Get(ids[7], "user:042")
	if err != nil {
		log.Fatalf("Get failed: %v", err)
	}
	fmt.Printf("dht: user:042 -> %q\n\n", v)

	// Serve concurrent traffic through the workload engine: same seed
	// => same op stream and same final store contents, per
	// distribution. Zipf concentrates the traffic, so its cache hit
	// rate and tail behave differently from uniform.
	ns := func(v float64) string { return time.Duration(v).Round(10 * time.Nanosecond).String() }
	for _, dist := range []string{workload.DistUniform, workload.DistZipf} {
		res, err := workload.Run(nw, workload.Config{
			Workers:      8,
			Ops:          8000,
			Keyspace:     1024,
			Preload:      512,
			Distribution: dist,
			Seed:         42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload %-8s %s\n", dist+":", res.Summary())
		rows := []export.HistRow{{Name: dist + " latency", H: res.Latency}}
		if err := export.PercentileTable("", rows, ns).WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hops: mean %.2f p99 %.0f; cache: %d hits / %d misses\n\n",
			res.Hops.Mean(), res.Hops.Percentile(99), res.CacheHits, res.CacheMisses)
	}
}
