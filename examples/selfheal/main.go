// Selfheal: push the network into pathological weakly connected
// states — a line, a clique, a garbage state with stale virtual nodes
// and wrong edge markings, and the loopy state that defeats classic
// Chord — and watch Re-Chord recover the correct topology from each.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/chord"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
	"repro/internal/sim"
	"repro/internal/topogen"
)

func main() {
	const n = 33
	for _, gen := range []topogen.Generator{
		topogen.Line(), topogen.Star(), topogen.Clique(),
		topogen.BridgedPartitions(3), topogen.Garbage(),
	} {
		rng := rand.New(rand.NewSource(7))
		ids := topogen.RandomIDs(n, rng)
		nw := gen.Build(ids, rng, rechord.Config{})
		res, err := sim.RunToStable(nw, sim.Options{Ideal: rechord.ComputeIdeal(ids)})
		if err != nil {
			log.Fatalf("%s: %v", gen.Name, err)
		}
		if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
			log.Fatalf("%s: wrong final state: %v", gen.Name, err)
		}
		fmt.Printf("%-11s healed in %3d rounds (almost stable after %d)\n",
			gen.Name, res.Rounds, res.AlmostStableRound)
	}

	// The loopy state: classic Chord's maintenance is stuck forever,
	// Re-Chord heals it.
	rng := rand.New(rand.NewSource(8))
	ids := topogen.RandomIDs(n, rng)
	cs := chord.Loopy(ids)
	for i := 0; i < 100; i++ {
		cs.Stabilize()
	}
	fmt.Printf("\nclassic Chord after 100 maintenance rounds from the loopy state: correct ring = %v\n",
		cs.IsCorrectRing())

	nw := rechord.NewNetwork(rechord.Config{})
	sorted := append([]ident.ID(nil), ids...)
	ident.Sort(sorted)
	for _, id := range sorted {
		nw.AddPeer(id)
	}
	stride := chord.LoopyStride(n)
	for i, id := range sorted {
		nw.SeedEdge(ref.Real(id), ref.Real(sorted[(i+stride)%n]), graph.Unmarked)
	}
	res, err := sim.RunToStable(nw, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ok := rechord.ComputeIdeal(ids).Matches(nw) == nil
	fmt.Printf("Re-Chord from the same loopy state: correct topology = %v after %d rounds\n", ok, res.Rounds)
}
