// Selfheal: push the cluster into pathological weakly connected
// states — a line, a star, a clique, bridged partitions, a garbage
// state with stale virtual nodes, and the loopy state that defeats
// classic Chord — and watch Re-Chord recover the correct topology from
// each through the cluster facade. The classic Chord baseline runs
// beside it to show why the loopy state matters.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/cluster"
	"repro/internal/chord"
	"repro/internal/topogen"
)

func main() {
	const n = 33
	ctx := context.Background()
	for _, topo := range []string{
		cluster.TopologyLine, cluster.TopologyStar, cluster.TopologyClique,
		cluster.TopologyBridged, cluster.TopologyGarbage,
	} {
		c, err := cluster.New(
			cluster.WithSize(n),
			cluster.WithSeed(7),
			cluster.WithTopology(topo),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := c.Stabilize(ctx, cluster.StabilizeAlmostStable())
		if err != nil {
			log.Fatalf("%s: %v", topo, err)
		}
		if err := c.VerifyStable(); err != nil {
			log.Fatalf("%s: wrong final state: %v", topo, err)
		}
		fmt.Printf("%-11s healed in %3d rounds (almost stable after %d)\n",
			topo, rep.Rounds, rep.AlmostStableRound)
		c.Close()
	}

	// The loopy state: classic Chord's maintenance is stuck forever.
	rng := rand.New(rand.NewSource(8))
	ids := topogen.RandomIDs(n, rng)
	cs := chord.Loopy(ids)
	for i := 0; i < 100; i++ {
		cs.Stabilize()
	}
	fmt.Printf("\nclassic Chord after 100 maintenance rounds from the loopy state: correct ring = %v\n",
		cs.IsCorrectRing())

	// Re-Chord from the same kind of state, via the facade's loopy
	// topology: healed.
	c, err := cluster.New(
		cluster.WithSize(n),
		cluster.WithSeed(8),
		cluster.WithTopology(cluster.TopologyLoopy),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Stabilize(ctx)
	if err != nil {
		log.Fatal(err)
	}
	ok := c.VerifyStable() == nil
	fmt.Printf("Re-Chord from the same loopy state: correct topology = %v after %d rounds\n", ok, rep.Rounds)
}
