// Churn: a stable Re-Chord cluster absorbs joins, graceful leaves and
// crash failures, re-stabilizing after each event (Theorems 4.1 and
// 4.2: O(log^2 n) for joins, O(log n) for departures) — all through
// the cluster facade's lifecycle methods and event stream.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/cluster"
)

func main() {
	c, err := cluster.New(cluster.WithSize(24), cluster.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("stable cluster of %d peers\n", c.Size())

	ctx := context.Background()
	events, unsubscribe := c.Subscribe(64)
	defer unsubscribe()

	// Two joins, one graceful leave, one crash failure, one more join —
	// each followed by a cancellable stabilization whose report carries
	// the recovery cost.
	step := func(kind string, apply func() error) {
		if err := apply(); err != nil {
			log.Fatal(err)
		}
		rep, err := c.Stabilize(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s -> re-stabilized in %2d rounds\n", kind, rep.Rounds)
	}
	var peers []cluster.PeerID
	step("join", func() error { p, err := c.Join(ctx); peers = append(peers, p); return err })
	step("join", func() error { p, err := c.Join(ctx); peers = append(peers, p); return err })
	step("leave", func() error { return c.Leave(ctx, peers[0]) })
	step("fail", func() error { return c.Fail(ctx, c.Peers()[3]) })
	step("join", func() error { _, err := c.Join(ctx); return err })

	if err := c.VerifyStable(); err != nil {
		log.Fatalf("cluster not in the legal state: %v", err)
	}
	fmt.Printf("cluster of %d peers back in the exact stable topology\n", c.Size())

	counts := map[cluster.EventKind]int{}
	for len(events) > 0 {
		counts[(<-events).Kind]++
	}
	fmt.Printf("event stream: %d joins, %d leaves, %d failures, %d settles\n",
		counts[cluster.EventPeerJoined], counts[cluster.EventPeerLeft],
		counts[cluster.EventPeerFailed], counts[cluster.EventRegionSettled])
}
