// Churn: a stable Re-Chord network absorbs joins, graceful leaves and
// crash failures, re-stabilizing after each event (Theorems 4.1 and
// 4.2: O(log^2 n) for joins, O(log n) for departures).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/churn"
	"repro/internal/ident"
	"repro/internal/rechord"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	nw, ids, err := churn.StableNetwork(24, rng, rechord.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stable network of %d peers\n", nw.NumPeers())

	events := []churn.Event{
		{Kind: "join", ID: ident.ID(rng.Uint64() | 1), Contact: ids[0]},
		{Kind: "join", ID: ident.ID(rng.Uint64() | 1), Contact: ids[5]},
		{Kind: "leave", ID: ids[3]},
		{Kind: "fail", ID: ids[9]},
		{Kind: "join", ID: ident.ID(rng.Uint64() | 1), Contact: ids[12]},
	}
	recs, err := churn.RunSequence(nw, events, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range recs {
		fmt.Printf("%-5s %-10s -> re-stabilized in %2d rounds\n",
			rec.Event.Kind, rec.Event.ID, rec.Rounds)
	}
	if err := churn.VerifyStable(nw); err != nil {
		log.Fatalf("network not in the legal state: %v", err)
	}
	fmt.Printf("network of %d peers back in the exact stable topology\n", nw.NumPeers())
}
