// Async: run the same self-stabilization the synchronous examples
// show, but under the asynchronous adversary — the paper's open
// question, driven through the public cluster facade. Each frontier
// peer activates with a coin flip per step and every message is
// delayed by a pluggable model (uniform, geometric, heavy-tail
// Pareto); the cluster still converges to the exact stable topology,
// serves traffic, and absorbs churn, with the facade API unchanged.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/cluster"
)

func main() {
	const n = 25
	ctx := context.Background()

	// The same adversarial start, healed under three delay models and
	// two activation speeds.
	for _, tc := range []struct {
		name  string
		prob  float64
		delay cluster.DelayModel
	}{
		{"p=1.0 delay=1 (synchronous schedule)", 1.0, cluster.DelayUniform(1)},
		{"p=0.5 uniform 1..3", 0.5, cluster.DelayUniform(3)},
		{"p=0.5 geometric mean 2", 0.5, cluster.DelayGeometric(0.5, 16)},
		{"p=0.3 pareto heavy tail", 0.3, cluster.DelayPareto(1.5, 32)},
	} {
		c, err := cluster.New(
			cluster.WithSize(n),
			cluster.WithSeed(7),
			cluster.WithTopology(cluster.TopologyRandom),
			cluster.WithAsync(tc.prob, tc.delay),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := c.Stabilize(ctx)
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		if err := c.VerifyStable(); err != nil {
			log.Fatalf("%s: wrong final state: %v", tc.name, err)
		}
		fmt.Printf("%-38s healed in %4d async steps\n", tc.name, rep.Rounds)
		c.Close()
	}

	// Serving traffic while churn repairs under asynchrony: lookups race
	// genuinely stale state, delayed messages and all.
	c, err := cluster.New(
		cluster.WithSize(32),
		cluster.WithSeed(9),
		cluster.WithAsync(0.5, cluster.DelayUniform(3)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	rep, err := c.RunWorkload(ctx, cluster.WorkloadConfig{
		Workers:     8,
		Ops:         8000,
		Keyspace:    1024,
		Preload:     256,
		Seed:        9,
		ChurnEvents: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload under async churn: %s\n", rep.Summary())
	if err := c.VerifyStable(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state matches the oracle; %d churn events absorbed under the asynchronous adversary\n",
		rep.ChurnApplied)
}
