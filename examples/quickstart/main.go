// Quickstart: build a random weakly connected cluster of peers, run
// the six Re-Chord self-stabilization rules to the fixed point through
// the public cluster facade (cancellable via context), verify the
// result is the legal Chord-containing topology, and watch a join ride
// the event stream.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/cluster"
)

func main() {
	// 25 peers with uniformly random identifiers in [0,1), initially
	// connected as a random weakly connected graph — the paper's
	// Section 5 initialization.
	c, err := cluster.New(
		cluster.WithSize(25),
		cluster.WithSeed(42),
		cluster.WithTopology(cluster.TopologyRandom),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Run synchronous repair rounds until the global state stops
	// changing. The context bounds the run: a deadline or cancel stops
	// it at a round barrier, resumable by calling Stabilize again.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := c.Stabilize(ctx, cluster.StabilizeAlmostStable())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stable after %d rounds (all desired edges existed after %d)\n",
		rep.Rounds, rep.AlmostStableRound)

	// The converged state is exactly the stable Re-Chord network ...
	if err := c.VerifyStable(); err != nil {
		log.Fatalf("unexpected final state: %v", err)
	}
	fmt.Println("final state matches the oracle topology")

	// ... which contains Chord as a subgraph (Fact 2.1): peers, their
	// ring successors, and all fingers.
	m := c.Topology()
	fmt.Printf("%d real nodes simulate %d virtual nodes; %d unmarked, %d ring, %d connection edges\n",
		m.RealNodes, m.VirtualNodes, m.UnmarkedEdges, m.RingEdges, m.ConnectionEdges)

	// The event stream replaces polling: subscribe, join a peer, and
	// watch the lifecycle and repair events arrive.
	events, unsubscribe := c.Subscribe(16)
	defer unsubscribe()
	joined, err := c.Join(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Stabilize(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peer %s joined; events seen:", joined)
	for len(events) > 0 {
		fmt.Printf(" %s", (<-events).Kind)
	}
	fmt.Println()
}
