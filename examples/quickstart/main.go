// Quickstart: build a random weakly connected network of peers, run
// the six Re-Chord self-stabilization rules to the fixed point, and
// verify the result is the legal Chord-containing topology.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 25 peers with uniformly random identifiers in [0,1), initially
	// connected as a random weakly connected graph — the paper's
	// Section 5 initialization.
	ids := topogen.RandomIDs(25, rng)
	nw := topogen.Random().Build(ids, rng, rechord.Config{})

	// The oracle knows the unique stable topology for this peer set;
	// it also provides the paper's "almost stable" detector.
	ideal := rechord.ComputeIdeal(ids)

	// Run synchronous rounds until the global state stops changing.
	res, err := sim.RunToStable(nw, sim.Options{Ideal: ideal})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stable after %d rounds (all desired edges existed after %d)\n",
		res.Rounds, res.AlmostStableRound)

	// The converged state is exactly the stable Re-Chord network ...
	if err := ideal.Matches(nw); err != nil {
		log.Fatalf("unexpected final state: %v", err)
	}
	fmt.Println("final state matches the oracle topology")

	// ... which contains Chord as a subgraph (Fact 2.1): peers, their
	// ring successors, and all fingers.
	m := sim.Measure(nw)
	fmt.Printf("%d real nodes simulate %d virtual nodes; %d unmarked, %d ring, %d connection edges\n",
		m.RealNodes, m.VirtualNodes, m.UnmarkedEdges, m.RingEdges, m.ConnectionEdges)
}
