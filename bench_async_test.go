// Benchmarks for the asynchronous scheduler layer, tracked across PRs
// in BENCH_async.json (make bench-async). The headline claim: the
// event-driven runner's steady-state step is frontier-proportional —
// a quiescent step touches the (empty) event queue and nothing else,
// where the original implementation rebuilt the level and published-
// state caches and scanned every peer on every step, an O(n) floor
// that made large-n async experiments infeasible.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// asyncSteady builds a stable network of n peers wrapped in an
// asynchronous runner that has been run to quiescence.
func asyncSteady(b *testing.B, n int) *rechord.AsyncRunner {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	ids := topogen.RandomIDs(n, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.5, MaxDelay: 3}, rng)
	if _, err := sim.RunToStable(context.Background(), runner, sim.Options{}); err != nil {
		b.Fatal(err)
	}
	return runner
}

// BenchmarkAsyncStep measures one asynchronous step at steady state
// for n=2048 and n=4096: the cost must not grow with n (no wholesale
// rebuild, no full peer scan — only the frontier, which is empty).
func BenchmarkAsyncStep(b *testing.B) {
	for _, n := range []int{2048, 4096} {
		b.Run(fmt.Sprintf("steady/n=%d", n), func(b *testing.B) {
			runner := asyncSteady(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runner.Step()
			}
			b.StopTimer()
			if runner.Network().FrontierSize() != 0 {
				b.Fatal("steady-state async steps re-dirtied peers")
			}
		})
	}
}

// BenchmarkAsyncChurnRecovery measures absorbing one crash failure in
// a quiescent n=1024 network under the asynchronous scheduler: only
// the failed peer's neighborhood wakes, and the repair runs at
// frontier-proportional cost until quiescence.
func BenchmarkAsyncChurnRecovery(b *testing.B) {
	const n = 1024
	var steps float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(int64(i)))
		ids := topogen.RandomIDs(n, rng)
		nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
		runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.5, MaxDelay: 2}, rng)
		if _, err := sim.RunToStable(context.Background(), runner, sim.Options{}); err != nil {
			b.Fatal(err)
		}
		victim := ids[rng.Intn(len(ids))]
		b.StartTimer()
		if err := nw.Fail(victim); err != nil {
			b.Fatal(err)
		}
		res, err := sim.RunToStable(context.Background(), runner, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		steps += float64(res.Rounds)
	}
	b.ReportMetric(steps/float64(b.N), "steps-to-repair")
}

// BenchmarkAsyncConvergence measures full convergence from random
// weakly connected states under the asynchronous adversary, reporting
// the steps-to-stable alongside the wall time — the async counterpart
// of the paper's Figure 6.
func BenchmarkAsyncConvergence(b *testing.B) {
	for _, n := range []int{32, 105} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var steps float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rng := rand.New(rand.NewSource(int64(i)))
				ids := topogen.RandomIDs(n, rng)
				nw := topogen.Random().Build(ids, rng, rechord.Config{})
				runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.5, MaxDelay: 2}, rng)
				b.StartTimer()
				res, err := sim.RunToStable(context.Background(), runner, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				steps += float64(res.Rounds)
			}
			b.ReportMetric(steps/float64(b.N), "steps-to-stable")
		})
	}
}
