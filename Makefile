# Development entry points for the Re-Chord reproduction. CI runs the
# same commands (see .github/workflows/ci.yml), so a green `make lint
# test` locally means a green gate.

GO ?= go

# Pinned staticcheck version: CI installs exactly this; local installs
# should match so findings agree (go install
# honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)).
STATICCHECK_VERSION := 2025.1.1

# The round-engine benchmarks tracked across PRs in BENCH_rounds.json
# (steady-state Step, per-round cost at the paper's scale, fixed-point
# detection, churn recovery) are spelled out inline in bench-json and
# bench-diff — the two recipes must pin identical benchtimes per group.

# The inverted-wake-index benchmark lives inside internal/rechord (it
# drives unexported engine internals); only the indexed series is
# recorded — the scan series is the O(n) equivalence baseline and takes
# minutes at the larger size.
WAKE_BENCH := BenchmarkWakeDependents/indexed

# The barrier-split benchmark: prepare vs commit cost per batch under
# the n=4096 hot-frontier transient, serial (Workers=1) vs sharded
# (Workers=4). Tracked warn-only — its wall-clock carries the phase-3
# parallelization story, but allocation counts vary with the worker
# pool so it stays out of the -fail-allocs gate. (The benchmark also
# has an n=16384 series for by-hand acceptance runs; only n=4096 is
# recorded.)
BARRIER_BENCH := BenchmarkBarrierCommit/.*/n=4096

# Serving-layer benchmarks tracked in BENCH_lookups.json: cached vs
# uncached table routing and the end-to-end workload engine.
LOOKUP_BENCH := BenchmarkTableLookup|BenchmarkWorkload

# Wire-codec benchmarks tracked in BENCH_wire.json: the warm
# symbol-table message encode/decode hot path, pinned at <= 2 allocs/op
# by the bench-diff gate (currently 0).
WIRE_BENCH := BenchmarkEncodeMessage|BenchmarkDecodeMessage

.PHONY: all test test-short lint vet fmt staticcheck bench bench-json bench-lookups bench-async bench-mem bench-wire bench-diff fuzz-smoke cover examples clean

all: lint test

test:
	$(GO) build ./...
	$(GO) test ./...

test-short:
	$(GO) build ./...
	$(GO) test -race -short ./...

lint: fmt vet staticcheck

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH and is skipped (loudly)
# otherwise, so `make lint` works on offline machines while CI — which
# installs the pinned version — always enforces it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# cover writes the aggregate coverage profile (uploaded as a CI
# artifact) and prints the total.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1

# examples builds and runs every examples/ program — the CI smoke gate
# proving the public facade drives each end to end — plus the async
# convergence figure in its quick sweep.
examples:
	$(GO) build ./examples/...
	@for d in examples/*/; do \
		echo "== $$d"; $(GO) run ./$$d || exit 1; \
	done
	@echo "== async figure (quick)"
	$(GO) run ./cmd/rechord-figures -exp async -quick -reps 1 -plot=false

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-json records the round-engine benchmarks as machine-diffable
# JSON (name, ns/op, allocs/op, custom metrics) in BENCH_rounds.json,
# including the wake-index benchmark from internal/rechord (the two
# sizes must stay flat relative to each other — that is the
# frontier-proportional claim in numbers). The benchtimes must match
# bench-diff's measurement commands exactly: allocs/op has a small
# GC-warmup component that amortizes differently under adaptive
# benchtime, and the gate holds allocs to 0% tolerance.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkStepSteadyState' -benchmem -benchtime=1000x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkRound$$|BenchmarkSnapshot|BenchmarkChurnRecoveryLarge' -benchmem -benchtime=1x . ; \
	  $(GO) test -run '^$$' -bench '$(WAKE_BENCH)' -benchmem -benchtime=1000x ./internal/rechord/ ; \
	  $(GO) test -run '^$$' -bench '$(BARRIER_BENCH)' -benchmem -benchtime=1x ./internal/rechord/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkObsHotPath' -benchmem -benchtime=1000x ./internal/obs/ ; } \
	  | $(GO) run ./cmd/benchjson > BENCH_rounds.json
	@echo wrote BENCH_rounds.json

# bench-lookups records the serving-layer benchmarks (table-lookup
# cache vs baseline, workload percentiles) in BENCH_lookups.json.
bench-lookups:
	$(GO) test -run '^$$' -bench '$(LOOKUP_BENCH)' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_lookups.json
	@echo wrote BENCH_lookups.json

# bench-async records the asynchronous scheduler benchmarks in
# BENCH_async.json: the steady-state step (must stay flat in n — the
# frontier-proportional claim), churn recovery, and convergence-time
# sweeps. The step benchmark needs iterations for a stable ns/op; the
# convergence ones carry their cost in setup, so they run a fixed
# small count.
bench-async:
	{ $(GO) test -run '^$$' -bench 'BenchmarkAsyncStep' -benchmem -benchtime=100000x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkAsyncConvergence|BenchmarkAsyncChurnRecovery' -benchmem -benchtime=3x . ; } \
	  | $(GO) run ./cmd/benchjson > BENCH_async.json
	@echo wrote BENCH_async.json

# bench-mem records the compact-handle core's memory footprint in
# BENCH_mem.json: resident bytes per peer of a settled network,
# standing flows included. The settle run is the cost, so one
# iteration per size is the stable measurement. The widened timeout
# unlocks the n=65536 rung, which self-skips at the default deadline.
bench-mem:
	$(GO) test -run '^$$' -bench 'BenchmarkMemoryPerPeer' -benchtime=1x -timeout=60m . | $(GO) run ./cmd/benchjson > BENCH_mem.json
	@echo wrote BENCH_mem.json

# bench-wire records the wire-codec hot-path benchmarks in
# BENCH_wire.json.
bench-wire:
	$(GO) test -run '^$$' -bench '$(WIRE_BENCH)' -benchmem ./internal/wire/ | $(GO) run ./cmd/benchjson > BENCH_wire.json
	@echo wrote BENCH_wire.json

# fuzz-smoke runs each native fuzz target briefly against the codec —
# the same budget CI's wire job spends per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzFrameRoundTrip' -fuzztime 30s ./internal/wire/
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeHostile' -fuzztime 30s ./internal/wire/

# bench-diff re-records the gated benchmarks (few iterations — alloc
# counts are deterministic, wall-clock drift is warn-only anyway) and
# compares them against the committed baselines without overwriting
# them. This is the same gate CI's bench-diff job runs: an allocs/op
# regression on the steady-state benchmarks fails, everything else
# warns.
bench-diff:
	{ $(GO) test -run '^$$' -bench 'BenchmarkStepSteadyState' -benchmem -benchtime=1000x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkRound$$|BenchmarkSnapshot|BenchmarkChurnRecoveryLarge' -benchmem -benchtime=1x . ; \
	  $(GO) test -run '^$$' -bench '$(WAKE_BENCH)' -benchmem -benchtime=1000x ./internal/rechord/ ; \
	  $(GO) test -run '^$$' -bench '$(BARRIER_BENCH)' -benchmem -benchtime=1x ./internal/rechord/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkObsHotPath' -benchmem -benchtime=1000x ./internal/obs/ ; } \
	  | $(GO) run ./cmd/benchjson > /tmp/bench_new_rounds.json
	$(GO) run ./cmd/benchdiff -base BENCH_rounds.json -new /tmp/bench_new_rounds.json \
	  -fail-allocs 'BenchmarkStepSteadyState|BenchmarkWakeDependents|BenchmarkObsHotPath'
	{ $(GO) test -run '^$$' -bench 'BenchmarkAsyncStep' -benchmem -benchtime=100000x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkAsyncConvergence|BenchmarkAsyncChurnRecovery' -benchmem -benchtime=3x . ; } \
	  | $(GO) run ./cmd/benchjson > /tmp/bench_new_async.json
	$(GO) run ./cmd/benchdiff -base BENCH_async.json -new /tmp/bench_new_async.json \
	  -fail-allocs 'BenchmarkAsyncStep'
	$(GO) test -run '^$$' -bench '$(WIRE_BENCH)' -benchmem -benchtime=10000x ./internal/wire/ \
	  | $(GO) run ./cmd/benchjson > /tmp/bench_new_wire.json
	$(GO) run ./cmd/benchdiff -base BENCH_wire.json -new /tmp/bench_new_wire.json \
	  -fail-allocs 'BenchmarkEncodeMessage|BenchmarkDecodeMessage'
	$(GO) test -run '^$$' -bench 'BenchmarkMemoryPerPeer/n=(1024|4096|16384)$$' -benchtime=1x . \
	  | $(GO) run ./cmd/benchjson > /tmp/bench_new_mem.json
	$(GO) run ./cmd/benchdiff -base BENCH_mem.json -new /tmp/bench_new_mem.json \
	  -metric bytes/peer -metric-tol 0.10 -fail-metric 'BenchmarkMemoryPerPeer/n=(1024|4096|16384)$$'

clean:
	$(GO) clean -testcache
