package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty sample must yield zero Summary")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Errorf("singleton Summarize = %+v", s)
	}
	s = Summarize([]float64{1, 2})
	if s.Median != 1.5 {
		t.Errorf("even-length median = %v, want 1.5", s.Median)
	}
}

func TestSummarizeBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.Median && s.Median <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := Percentile(xs, 50); p != 50 {
		t.Errorf("P50 = %v, want 50", p)
	}
	if p := Percentile(xs, 0); p != 10 {
		t.Errorf("P0 = %v, want 10", p)
	}
	if p := Percentile(xs, 100); p != 100 {
		t.Errorf("P100 = %v, want 100", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v, want 0", p)
	}
}

func TestFitShapeExact(t *testing.T) {
	ns := []float64{8, 16, 32, 64, 128}
	// y = 3 n log2 n exactly.
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 3 * n * math.Log2(n)
	}
	best, err := BestFit(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if best.Shape.Name != "n log n" {
		t.Errorf("BestFit shape = %s, want n log n (R2 %v)", best.Shape.Name, best.R2)
	}
	if !almost(best.C, 3, 1e-9) {
		t.Errorf("C = %v, want 3", best.C)
	}
	if !almost(best.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", best.R2)
	}
}

func TestFitDistinguishesLogarithms(t *testing.T) {
	ns := []float64{8, 16, 32, 64, 128, 256}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		l := math.Log2(n)
		ys[i] = 0.7 * l * l
	}
	best, err := BestFit(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if best.Shape.Name != "log^2 n" {
		t.Errorf("BestFit = %s, want log^2 n", best.Shape.Name)
	}
}

func TestFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ns := []float64{5, 15, 25, 35, 45, 65, 85, 105}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 2*n + rng.Float64()*n*0.1
	}
	best, err := BestFit(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if best.Shape.Name != "n" && best.Shape.Name != "n log n" {
		t.Errorf("noisy linear data fit %s", best.Shape.Name)
	}
}

func TestBestFitErrors(t *testing.T) {
	if _, err := BestFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must error")
	}
	if _, err := BestFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestGrowthExponent(t *testing.T) {
	ns := []float64{10, 20, 40, 80, 160}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 5 * math.Pow(n, 1.5)
	}
	p, err := GrowthExponent(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p, 1.5, 1e-9) {
		t.Errorf("exponent = %v, want 1.5", p)
	}
}

func TestGrowthExponentSublinear(t *testing.T) {
	ns := []float64{8, 16, 32, 64, 128}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 4 * math.Log2(n)
	}
	p, err := GrowthExponent(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 1 {
		t.Errorf("log growth exponent = %v, want < 1 (sublinear)", p)
	}
}

func TestGrowthExponentErrors(t *testing.T) {
	if _, err := GrowthExponent([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must error")
	}
	if _, err := GrowthExponent([]float64{-1, -2}, []float64{1, 2}); err == nil {
		t.Error("nonpositive inputs must error")
	}
	if _, err := GrowthExponent([]float64{5, 5}, []float64{1, 2}); err == nil {
		t.Error("degenerate x must error")
	}
}
