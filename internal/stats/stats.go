// Package stats provides the summary statistics and curve fits the
// experiment harness uses: per-sweep means and deviations, and
// least-squares fits against the asymptotic shapes the paper proves —
// n, n log n, log n and log^2 n — so EXPERIMENTS.md can report which
// shape each measured series follows.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max, Median float64
}

// Summarize computes descriptive statistics. An empty sample yields
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varsum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Shape is a candidate asymptotic growth shape g(n).
type Shape struct {
	Name string
	Eval func(n float64) float64
}

// Shapes returns the growth shapes relevant to the paper's bounds.
func Shapes() []Shape {
	log2 := func(n float64) float64 {
		if n < 2 {
			return 1
		}
		return math.Log2(n)
	}
	return []Shape{
		{Name: "1", Eval: func(n float64) float64 { return 1 }},
		{Name: "log n", Eval: log2},
		{Name: "log^2 n", Eval: func(n float64) float64 { l := log2(n); return l * l }},
		{Name: "n", Eval: func(n float64) float64 { return n }},
		{Name: "n log n", Eval: func(n float64) float64 { return n * log2(n) }},
		{Name: "n log^2 n", Eval: func(n float64) float64 { l := log2(n); return n * l * l }},
		{Name: "n^2", Eval: func(n float64) float64 { return n * n }},
	}
}

// Fit is the result of fitting y = c * g(n) by least squares.
type Fit struct {
	Shape Shape
	C     float64
	R2    float64
}

// FitShape fits y ≈ c*g(n) minimizing squared error; R2 is the
// coefficient of determination of the fit.
func FitShape(ns, ys []float64, g Shape) Fit {
	var num, den float64
	for i := range ns {
		gi := g.Eval(ns[i])
		num += gi * ys[i]
		den += gi * gi
	}
	c := 0.0
	if den > 0 {
		c = num / den
	}
	meanY := 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range ns {
		pred := c * g.Eval(ns[i])
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 0 {
		r2 = 0
	}
	return Fit{Shape: g, C: c, R2: r2}
}

// BestFit returns the shape with the highest R2 for the series, i.e.
// the asymptotic growth the data most resembles among the candidates.
func BestFit(ns, ys []float64) (Fit, error) {
	if len(ns) != len(ys) || len(ns) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least two (n, y) points, got %d/%d", len(ns), len(ys))
	}
	var best Fit
	first := true
	for _, g := range Shapes() {
		f := FitShape(ns, ys, g)
		if first || f.R2 > best.R2 {
			best, first = f, false
		}
	}
	return best, nil
}

// GrowthExponent estimates p in y ~ n^p by log-log regression; p < 1
// indicates sublinear growth (what the paper observes for rounds to
// stabilize in Fig. 6).
func GrowthExponent(ns, ys []float64) (float64, error) {
	if len(ns) != len(ys) || len(ns) < 2 {
		return 0, fmt.Errorf("stats: need at least two points")
	}
	var sx, sy, sxx, sxy float64
	k := 0
	for i := range ns {
		if ns[i] <= 0 || ys[i] <= 0 {
			continue
		}
		x, y := math.Log(ns[i]), math.Log(ys[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		k++
	}
	if k < 2 {
		return 0, fmt.Errorf("stats: not enough positive points")
	}
	den := float64(k)*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("stats: degenerate x values")
	}
	return (float64(k)*sxy - sx*sy) / den, nil
}
