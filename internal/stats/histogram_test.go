package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %s", &h)
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%g) = %g, want 0", p, got)
		}
	}
	// Merging an empty histogram is a no-op in both directions.
	h2 := &Histogram{}
	h2.Observe(7)
	h2.Merge(&h)
	if h2.N() != 1 || h2.Percentile(50) != 7 {
		t.Errorf("merge of empty changed target: %s", h2)
	}
	h.Merge(h2)
	if h.N() != 1 || h.Percentile(50) != 7 {
		t.Errorf("merge into empty lost data: %s", &h)
	}
	h.Merge(nil)
	if h.N() != 1 {
		t.Errorf("merge of nil changed target: %s", &h)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below 64 live in exact unit buckets: percentiles must
	// match the nearest-rank Percentile on the raw sample.
	var h Histogram
	var xs []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := float64(rng.Intn(60))
		xs = append(xs, v)
		h.Observe(v)
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9} {
		want := Percentile(xs, p)
		if got := h.Percentile(p); got != want {
			t.Errorf("Percentile(%g) = %g, want %g (exact range)", p, got, want)
		}
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if got := h.Mean(); math.Abs(got-sum/float64(len(xs))) > 1e-9 {
		t.Errorf("Mean = %g, want %g", got, sum/float64(len(xs)))
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Above the exact range the log-linear buckets bound the quantile
	// error at one sub-bucket width: |est - true| <= true/32.
	var h Histogram
	var xs []float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.Float64() * 20) // spans 1 .. ~5e8
		xs = append(xs, v)
		h.Observe(v)
	}
	sort.Float64s(xs)
	for _, p := range []float64{50, 90, 99, 99.9} {
		want := Percentile(xs, p)
		got := h.Percentile(p)
		if math.Abs(got-want) > want/32+1 {
			t.Errorf("Percentile(%g) = %g, want %g ± %g", p, got, want, want/32)
		}
	}
	if got, want := h.Max(), xs[len(xs)-1]; got != want {
		t.Errorf("Max = %g, want %g (must be exact)", got, want)
	}
	if got, want := h.Min(), xs[0]; got != want {
		t.Errorf("Min = %g, want %g (must be exact)", got, want)
	}
}

func TestHistogramMergeOfShardsIsExact(t *testing.T) {
	// One observer vs. the same stream split across 8 shards and
	// merged: identical counts, sum, extremes and percentiles.
	rng := rand.New(rand.NewSource(3))
	var whole Histogram
	shards := make([]*Histogram, 8)
	for i := range shards {
		shards[i] = &Histogram{}
	}
	for i := 0; i < 30000; i++ {
		v := math.Abs(rng.NormFloat64()) * 1e6
		whole.Observe(v)
		shards[i%len(shards)].Observe(v)
	}
	var merged Histogram
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged summary differs: %s vs %s", &merged, &whole)
	}
	// Sums are accumulated in different association orders, so allow
	// floating-point rounding; counts and quantiles must be identical.
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-6*whole.Sum() {
		t.Fatalf("merged sum %g differs from whole %g", merged.Sum(), whole.Sum())
	}
	for p := 0.0; p <= 100; p += 0.5 {
		if merged.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("Percentile(%g): merged %g != whole %g", p, merged.Percentile(p), whole.Percentile(p))
		}
	}
}

func TestHistogramClampsNegativeAndNaN(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(math.NaN())
	if h.N() != 2 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative/NaN not clamped to 0: %s", &h)
	}
}

func TestHistogramClone(t *testing.T) {
	var h Histogram
	h.Observe(100)
	c := h.Clone()
	c.Observe(200)
	if h.N() != 1 || c.N() != 2 {
		t.Errorf("clone not independent: h=%s c=%s", &h, c)
	}
}

func TestHistogramBucketBoundsContiguous(t *testing.T) {
	// Every bucket's upper bound is the next bucket's lower bound, and
	// histBucket is monotone over a dense value sweep.
	prevHi := uint64(0)
	for b := 0; b < histBucket(1<<40)+1; b++ {
		lo, hi := histBounds(b)
		if lo != prevHi {
			t.Fatalf("bucket %d: lo %d != previous hi %d", b, lo, prevHi)
		}
		if histBucket(lo) != b || histBucket(hi-1) != b {
			t.Fatalf("bucket %d [%d,%d) does not round-trip through histBucket", b, lo, hi)
		}
		prevHi = hi
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {5, 15}, {30, 20}, {40, 20}, {50, 35}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %g, want 0", got)
	}
}
