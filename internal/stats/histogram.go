package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Histogram is a streaming log-linear histogram for non-negative
// values (latencies in nanoseconds, hop counts). Values below 64 are
// counted exactly; above that, each power-of-two octave is split into
// 32 sub-buckets, bounding the relative quantile error at ~1.6% while
// keeping Observe allocation-free after the first. The zero value is
// an empty, ready-to-use histogram.
//
// A Histogram is not safe for concurrent use; the intended pattern is
// one histogram per worker (shard), combined afterwards with Merge —
// merging is exact, because all histograms share the same fixed bucket
// boundaries.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// histSubBuckets is the number of sub-buckets per octave (and the
// width of the exact range): 2^histSubBits.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
)

// histBucket maps a value to its bucket index. Values 0..63 map to
// themselves; beyond that, bucket 32*e + (u>>e) with e chosen so that
// u>>e lands in [32, 64). Indices are contiguous.
func histBucket(u uint64) int {
	e := bits.Len64(u)
	if e <= histSubBits+1 {
		return int(u)
	}
	s := uint(e - histSubBits - 1)
	return int(s)*histSubBuckets + int(u>>s)
}

// histBounds returns the inclusive lower and exclusive upper value
// bound of a bucket.
func histBounds(b int) (lo, hi uint64) {
	if b < 2*histSubBuckets {
		return uint64(b), uint64(b) + 1
	}
	s := uint(b/histSubBuckets - 1)
	m := uint64(b%histSubBuckets + histSubBuckets)
	return m << s, (m + 1) << s
}

// Observe records one value. Negative and NaN values are clamped to
// zero (latency and hop samples cannot be negative; clamping keeps a
// clock hiccup from corrupting the distribution).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	b := histBucket(uint64(math.Round(v)))
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
}

// N returns the number of observed values.
func (h *Histogram) N() int { return int(h.n) }

// Mean returns the exact mean of the observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Sum returns the exact sum of the observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the exact smallest observed value (0 when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the p-th percentile (0..100) by nearest rank over
// the bucketed distribution: exact below 64, within ~1.6% relative
// error above (bucket midpoint). An empty histogram yields 0.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			lo, hi := histBounds(b)
			v := float64(lo)
			if hi-lo > 1 {
				v = float64(lo) + float64(hi-lo-1)/2
			}
			// The true value lies in [lo, hi); the observed extremes
			// are exact, so never report past them.
			return math.Min(math.Max(v, h.Min()), h.Max())
		}
	}
	return h.Max()
}

// Merge folds o into h. Buckets are positionally identical across
// histograms, so merging shards is exact: the merged histogram equals
// the one a single observer would have built.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// String renders the headline figures, for logs and test failures.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f p99.9=%.1f max=%.1f",
		h.N(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.Max())
}
