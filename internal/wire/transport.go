package wire

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/obs"
)

// Transport abstracts how node processes reach each other: Dial and
// Listen produce frame-granular connections (the codec lives inside
// the Conn, one symbol table per direction). Two implementations ship:
// ChanNet (in-process byte pipes, with the async delay models as the
// simulated network) and TCP (real sockets over loopback or beyond).
type Transport interface {
	Dial(addr string) (Conn, error)
	Listen(addr string) (Listener, error)
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Addr() string
	Close() error
}

// Conn is one bidirectional frame stream. Send and Recv are each
// internally serialized but may be used concurrently with one another.
type Conn interface {
	Send(f Frame) error
	Recv() (Frame, error)
	Close() error
}

// streamConn runs the codec over any duplex byte stream — a TCP
// socket and an in-process pipe pair look identical from here up, so
// the chan and tcp transports exercise the exact same framing.
type streamConn struct {
	sendMu sync.Mutex
	enc    *Encoder
	flush  func() error

	recvMu sync.Mutex
	dec    *Decoder

	closers []io.Closer
	onSend  func(f Frame) // delay accounting hook (ChanNet)
}

// newStreamConn builds a Conn over a reader and a writer. flush, when
// non-nil, is called after each encoded frame (buffered writers).
func newStreamConn(r io.Reader, w io.Writer, flush func() error, met *obs.WireMetrics, closers ...io.Closer) *streamConn {
	return &streamConn{
		enc:     NewEncoder(w, met),
		flush:   flush,
		dec:     NewDecoder(r, met),
		closers: closers,
	}
}

func (c *streamConn) Send(f Frame) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(f); err != nil {
		return err
	}
	if c.flush != nil {
		if err := c.flush(); err != nil {
			return err
		}
	}
	if c.onSend != nil {
		c.onSend(f)
	}
	return nil
}

func (c *streamConn) Recv() (Frame, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return c.dec.Decode()
}

func (c *streamConn) Close() error {
	var first error
	for _, cl := range c.closers {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TCPTransport speaks the codec over TCP sockets. Writes are buffered
// and flushed per frame (a round frame is one logical unit; syscall
// per field would dominate at small frame sizes).
type TCPTransport struct {
	Metrics *obs.WireMetrics
}

// NewTCP returns the socket transport. met may be nil.
func NewTCP(met *obs.WireMetrics) *TCPTransport { return &TCPTransport{Metrics: met} }

func (t *TCPTransport) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return t.wrap(nc), nil
}

func (t *TCPTransport) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{ln: ln, t: t}, nil
}

func (t *TCPTransport) wrap(nc net.Conn) Conn {
	bw := bufio.NewWriter(nc)
	return newStreamConn(nc, bw, bw.Flush, t.Metrics, nc)
}

type tcpListener struct {
	ln net.Listener
	t  *TCPTransport
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.wrap(nc), nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }
func (l *tcpListener) Close() error { return l.ln.Close() }

// errTransport formats transport-level failures uniformly.
func errTransport(op, addr string, err error) error {
	return fmt.Errorf("wire: %s %s: %w", op, addr, err)
}
