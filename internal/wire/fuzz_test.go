package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
)

// buildArbitraryRound derives a bounded-but-arbitrary RoundFrame from
// fuzz bytes: every draw is a deterministic function of the input, so
// the fuzzer explores frame shapes (counts, flag combinations, symbol
// reuse) rather than raw bytes.
func buildArbitraryRound(data []byte) *RoundFrame {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	id := func() ident.ID {
		return ident.ID(uint64(next())<<8 | uint64(next()))
	}
	rf := func() ref.Ref {
		return ref.Ref{Owner: id(), Level: int(next()) % (ref.MaxWireLevel + 1)}
	}
	msgs := func() []rechord.Message {
		n := int(next()) % 4
		var ms []rechord.Message
		for i := 0; i < n; i++ {
			ms = append(ms, rechord.Message{To: rf(), Kind: graph.Kind(next() % 3), Add: rf()})
		}
		return ms
	}
	f := &RoundFrame{
		Round:   int(next()),
		Changed: next()&1 != 0,
		Done:    next()&1 != 0,
	}
	for i, n := 0, int(next())%4; i < n; i++ {
		f.Buckets = append(f.Buckets, rechord.BucketUpdate{From: id(), To: id(), Msgs: msgs()})
	}
	for i, n := 0, int(next())%4; i < n; i++ {
		f.OneShots = append(f.OneShots, rechord.OneShot{To: id(), Msgs: msgs()})
	}
	for i, n := 0, int(next())%3; i < n; i++ {
		p := rechord.PeerPublish{Owner: id(), MaxLevel: int(next()) % (ref.MaxWireLevel + 1)}
		for j, vn := 0, int(next())%4; j < vn; j++ {
			var v rechord.PublishedView
			if next()&1 != 0 {
				v.HasRL, v.RL = true, rf()
			}
			if next()&1 != 0 {
				v.HasRR, v.RR = true, rf()
			}
			p.Views = append(p.Views, v)
		}
		f.Publishes = append(f.Publishes, p)
	}
	return f
}

// FuzzFrameRoundTrip: any frame the encoder can produce must decode
// back to itself — including a second copy over the same (now warm)
// symbol tables.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 1, 0, 2, 0x11, 0x22, 3, 0x33, 0x44, 1})
	f.Add(bytes.Repeat([]byte{0xA5, 3, 1}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		want := buildArbitraryRound(data)
		var buf bytes.Buffer
		enc := NewEncoder(&buf, nil)
		if err := enc.Encode(want); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := enc.Encode(want); err != nil {
			t.Fatalf("warm encode: %v", err)
		}
		dec := NewDecoder(bytes.NewReader(buf.Bytes()), nil)
		for i := 0; i < 2; i++ {
			got, err := dec.Decode()
			if err != nil {
				t.Fatalf("decode %d: %v", i, err)
			}
			if !reflect.DeepEqual(got, Frame(want)) {
				t.Fatalf("decode %d mismatch:\n got  %#v\n want %#v", i, got, want)
			}
		}
		if _, err := dec.Decode(); err != io.EOF {
			t.Fatalf("want io.EOF at end, got %v", err)
		}
	})
}

// FuzzDecodeHostile: adversarial bytes must never panic the decoder or
// make it allocate beyond what the input length justifies. Each input
// is tried bare and with a valid preamble prepended (so the fuzzer
// reaches the frame parser without having to guess the magic).
func FuzzDecodeHostile(f *testing.F) {
	var seed bytes.Buffer
	enc := NewEncoder(&seed, nil)
	_ = enc.Encode(&Hello{Rank: 1, Procs: 4})
	_ = enc.Encode(richRound())
	_ = enc.Encode(&Fin{Fingerprint: 42, Peers: 7, Rounds: 9})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, magic2, Version})
	// A huge length prefix: must be rejected before any allocation.
	f.Add(binary.AppendUvarint([]byte{magic0, magic1, magic2, Version}, 1<<40))
	// A round frame declaring 2^30 buckets in a 3-byte payload.
	hostile := []byte{magic0, magic1, magic2, Version}
	body := append([]byte{frameRound, 1, 0}, binary.AppendUvarint(nil, 1<<30)...)
	hostile = append(binary.AppendUvarint(hostile, uint64(len(body))), body...)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, stream := range [][]byte{
			data,
			append([]byte{magic0, magic1, magic2, Version}, data...),
		} {
			dec := NewDecoder(bytes.NewReader(stream), nil)
			for i := 0; i < 64; i++ {
				f, err := dec.Decode()
				if err != nil {
					break // any error is fine; panics and hangs are not
				}
				if f == nil {
					t.Fatal("nil frame without error")
				}
			}
		}
	})
}
