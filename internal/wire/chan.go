package wire

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
)

// ChanNet is the in-process transport: a registry of named listeners
// connected by byte pipes. Every frame still passes through the codec
// (encode on Send, strict decode on Recv), so the chan legs of the
// equivalence gate exercise the exact bytes the TCP transport puts on
// a socket.
//
// The optional DelayModel reuses the async scheduler's simulated
// network: each sent frame draws a latency for its (from, to) address
// pair, accumulated into a virtual-latency total. Under the node
// runner's lockstep barrier the draw cannot reorder anything — every
// frame of round r is applied before round r+1 regardless — so the
// model contributes simulated-time accounting (what a real network
// would have cost this schedule), not semantics. That invariance is
// itself part of the equivalence statement: fingerprints must not
// depend on the delay model.
type ChanNet struct {
	mu        sync.Mutex
	listeners map[string]*chanListener
	rng       *rand.Rand
	delay     rechord.DelayModel
	met       *obs.WireMetrics

	simLatency atomic.Int64 // sum of drawn per-frame latencies
	simFrames  atomic.Int64
}

// NewChanNet returns an in-process transport. delay may be nil (every
// frame then costs one simulated time unit); seed drives the delay
// draws. met may be nil.
func NewChanNet(delay rechord.DelayModel, seed int64, met *obs.WireMetrics) *ChanNet {
	return &ChanNet{
		listeners: make(map[string]*chanListener),
		rng:       rand.New(rand.NewSource(seed)),
		delay:     delay,
		met:       met,
	}
}

// SimLatency reports the accumulated simulated network cost: total
// latency units drawn and the number of frames they cover.
func (cn *ChanNet) SimLatency() (total, frames int64) {
	return cn.simLatency.Load(), cn.simFrames.Load()
}

// draw accounts one frame sent from local to remote.
func (cn *ChanNet) draw(local, remote string) {
	d := 1
	if cn.delay != nil {
		cn.mu.Lock()
		d = cn.delay.Delay(cn.rng, ident.Hash(local), ident.Hash(remote))
		cn.mu.Unlock()
		if d < 1 {
			d = 1
		}
	}
	cn.simLatency.Add(int64(d))
	cn.simFrames.Add(1)
}

func (cn *ChanNet) Listen(addr string) (Listener, error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if _, ok := cn.listeners[addr]; ok {
		return nil, errTransport("listen", addr, fmt.Errorf("address in use"))
	}
	l := &chanListener{net: cn, addr: addr, accept: make(chan Conn, 16)}
	cn.listeners[addr] = l
	return l, nil
}

func (cn *ChanNet) Dial(addr string) (Conn, error) {
	cn.mu.Lock()
	l, ok := cn.listeners[addr]
	cn.mu.Unlock()
	if !ok {
		return nil, errTransport("dial", addr, fmt.Errorf("no listener"))
	}
	// Two pipes make one duplex link; each side reads the pipe the
	// other writes.
	c2s := newPipe()
	s2c := newPipe()
	client := newStreamConn(s2c, c2s, nil, cn.met, c2s, s2c)
	server := newStreamConn(c2s, s2c, nil, cn.met, c2s, s2c)
	clientAddr := fmt.Sprintf("%s!client%d", addr, cn.simFrames.Load())
	client.onSend = func(Frame) { cn.draw(clientAddr, addr) }
	server.onSend = func(Frame) { cn.draw(addr, clientAddr) }
	select {
	case l.accept <- server:
	default:
		client.Close()
		return nil, errTransport("dial", addr, fmt.Errorf("accept queue full"))
	}
	return client, nil
}

type chanListener struct {
	net    *ChanNet
	addr   string
	accept chan Conn
	closed sync.Once
}

func (l *chanListener) Accept() (Conn, error) {
	c, ok := <-l.accept
	if !ok {
		return nil, errTransport("accept", l.addr, fmt.Errorf("listener closed"))
	}
	return c, nil
}

func (l *chanListener) Addr() string { return l.addr }

func (l *chanListener) Close() error {
	l.closed.Do(func() {
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
		close(l.accept)
	})
	return nil
}

// pipe is an unbounded in-memory byte stream: Write appends, Read
// blocks until bytes or close. Unbounded is safe here — the node
// runner's lockstep barrier keeps at most a round's frames in flight.
type pipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, io.ErrClosedPipe
	}
	p.buf = append(p.buf, b...)
	p.cond.Broadcast()
	return len(b), nil
}

func (p *pipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	if len(p.buf) == 0 {
		p.buf = nil // release the drained backing array
	}
	return n, nil
}

func (p *pipe) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
	return nil
}
