package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/topogen"
)

// Script is the deterministic run description every process of a wire
// cluster shares: a named topology generator, size and seed (so each
// process rebuilds the identical replicated network) plus a schedule
// of membership ops. The textual form is line-oriented:
//
//	rechord-wire-script v1
//	topo random 48 7
//	maxrounds 4000
//	op 3 join 5a5a000000000001 contact 00119b2f4c81d3e6
//	op 6 leave 00119b2f4c81d3e6
//	op 9 fail 77aa000000000003
//
// Identifiers are the 16-digit hex form (ident.Hex); op rounds must be
// non-decreasing and >= 1 (ops for round r apply before round r runs).
type Script struct {
	Topology  string
	N         int
	Seed      int64
	MaxRounds int
	Ops       []Op
}

// OpKind is a scripted membership change.
type OpKind int

const (
	OpJoin OpKind = iota
	OpLeave
	OpFail
)

// Op is one scheduled membership change.
type Op struct {
	Round   int
	Kind    OpKind
	ID      ident.ID
	Contact ident.ID // join only
}

// DefaultMaxRounds caps a run whose script doesn't set its own bound.
const DefaultMaxRounds = 10000

// generatorByName resolves the topogen registry names scripts use.
func generatorByName(name string) (topogen.Generator, error) {
	for _, g := range append(topogen.All(), topogen.PreStabilized(), topogen.Loopy()) {
		if g.Name == name {
			return g, nil
		}
	}
	return topogen.Generator{}, fmt.Errorf("wire: unknown topology %q", name)
}

// Build constructs this process's replica of the network: same seed,
// same generator, same initial state at every rank.
func (s *Script) Build(cfg rechord.Config) (*rechord.Network, error) {
	gen, err := generatorByName(s.Topology)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	ids := topogen.RandomIDs(s.N, rng)
	return gen.Build(ids, rng, cfg), nil
}

// ParseScript reads the textual form.
func ParseScript(r io.Reader) (*Script, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("wire: empty script")
	}
	if got := strings.TrimSpace(sc.Text()); got != "rechord-wire-script v1" {
		return nil, fmt.Errorf("wire: bad script header %q", got)
	}
	s := &Script{MaxRounds: DefaultMaxRounds}
	sawTopo := false
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "topo":
			if len(fields) != 4 {
				return nil, fmt.Errorf("wire: line %d: topo wants <name> <n> <seed>", line)
			}
			s.Topology = fields[1]
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("wire: line %d: bad size %q", line, fields[2])
			}
			seed, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("wire: line %d: bad seed %q", line, fields[3])
			}
			s.N, s.Seed, sawTopo = n, seed, true
		case "maxrounds":
			if len(fields) != 2 {
				return nil, fmt.Errorf("wire: line %d: maxrounds wants one value", line)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil || m < 1 {
				return nil, fmt.Errorf("wire: line %d: bad maxrounds %q", line, fields[1])
			}
			s.MaxRounds = m
		case "op":
			op, err := parseOp(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("wire: line %d: %v", line, err)
			}
			if k := len(s.Ops); k > 0 && op.Round < s.Ops[k-1].Round {
				return nil, fmt.Errorf("wire: line %d: op rounds must be non-decreasing", line)
			}
			s.Ops = append(s.Ops, op)
		default:
			return nil, fmt.Errorf("wire: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawTopo {
		return nil, fmt.Errorf("wire: script has no topo line")
	}
	return s, nil
}

func parseOp(fields []string) (Op, error) {
	if len(fields) < 3 {
		return Op{}, fmt.Errorf("op wants <round> <join|leave|fail> <idhex> ...")
	}
	round, err := strconv.Atoi(fields[0])
	if err != nil || round < 1 {
		return Op{}, fmt.Errorf("bad op round %q", fields[0])
	}
	id, err := ident.ParseHex(fields[2])
	if err != nil {
		return Op{}, err
	}
	op := Op{Round: round, ID: id}
	switch fields[1] {
	case "join":
		if len(fields) != 5 || fields[3] != "contact" {
			return Op{}, fmt.Errorf("join wants <idhex> contact <idhex>")
		}
		op.Kind = OpJoin
		if op.Contact, err = ident.ParseHex(fields[4]); err != nil {
			return Op{}, err
		}
	case "leave":
		if len(fields) != 3 {
			return Op{}, fmt.Errorf("leave wants exactly <idhex>")
		}
		op.Kind = OpLeave
	case "fail":
		if len(fields) != 3 {
			return Op{}, fmt.Errorf("fail wants exactly <idhex>")
		}
		op.Kind = OpFail
	default:
		return Op{}, fmt.Errorf("unknown op kind %q", fields[1])
	}
	return op, nil
}

// Format renders the script back to its textual form.
func (s *Script) Format() []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, "rechord-wire-script v1")
	fmt.Fprintf(&b, "topo %s %d %d\n", s.Topology, s.N, s.Seed)
	if s.MaxRounds != DefaultMaxRounds {
		fmt.Fprintf(&b, "maxrounds %d\n", s.MaxRounds)
	}
	for _, op := range s.Ops {
		switch op.Kind {
		case OpJoin:
			fmt.Fprintf(&b, "op %d join %s contact %s\n", op.Round, op.ID.Hex(), op.Contact.Hex())
		case OpLeave:
			fmt.Fprintf(&b, "op %d leave %s\n", op.Round, op.ID.Hex())
		case OpFail:
			fmt.Fprintf(&b, "op %d fail %s\n", op.Round, op.ID.Hex())
		}
	}
	return b.Bytes()
}

// applyMonolith executes the op directly on a monolithic network.
func (op Op) applyMonolith(nw *rechord.Network) error {
	switch op.Kind {
	case OpJoin:
		return nw.Join(op.ID, op.Contact)
	case OpLeave:
		return nw.Leave(op.ID)
	default:
		return nw.Fail(op.ID)
	}
}

// applyPartition executes the op on one process's partition.
func (op Op) applyPartition(p *rechord.Partition) error {
	switch op.Kind {
	case OpJoin:
		return p.ApplyJoin(op.ID, op.Contact)
	case OpLeave:
		return p.ApplyLeave(op.ID)
	default:
		return p.ApplyFail(op.ID)
	}
}

// RunMonolith executes the script in-process on one Network — the
// reference leg of the equivalence gate. It returns the converged
// fingerprint and the round count.
func (s *Script) RunMonolith(cfg rechord.Config) (fp uint64, rounds int, err error) {
	nw, err := s.Build(cfg)
	if err != nil {
		return 0, 0, err
	}
	next := 0
	for r := 1; ; r++ {
		if r > s.MaxRounds {
			return 0, r, fmt.Errorf("wire: monolith did not converge in %d rounds", s.MaxRounds)
		}
		for next < len(s.Ops) && s.Ops[next].Round == r {
			if err := s.Ops[next].applyMonolith(nw); err != nil {
				return 0, r, err
			}
			next++
		}
		nw.Step()
		if next == len(s.Ops) && nw.Quiescent() {
			return nw.StateFingerprint(nil), r, nil
		}
	}
}
