// Package wire is the codec + transport layer beneath the scheduler:
// the piece that turns the partitioned engine (rechord.Partition) into
// a cluster of real processes.
//
// The codec is a compact, allocation-conscious binary encoding for
// references, one-shot messages and standing-bucket updates. Each
// connection direction carries a symbol table mapping ident.ID to
// dense indices in first-mention order: the first time an identifier
// appears it ships as a tag byte 0 plus the 8-byte big-endian literal
// (and implicitly receives the next index); every later mention is a
// single uvarint (1-3 bytes for the first ~2M symbols). Streams open
// with a versioned preamble and carry uvarint length-delimited frames.
//
// The decoder is strict on purpose: a frame that is truncated, larger
// than MaxFrame, of unknown version or kind, with out-of-range levels,
// edge kinds or counts, or with trailing bytes, is an error — never a
// guess and never a panic. Every byte a peer sends sizes allocations
// and indexes tables on the receiving side, so anything not provably
// well-formed is rejected before it is trusted (FuzzDecodeHostile
// pins this).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
)

// Stream preamble: three magic bytes and a version byte. A reader
// facing a different version fails fast instead of misparsing.
const (
	magic0, magic1, magic2 = 'R', 'C', 'W'

	// Version is the codec version this package speaks.
	Version = 1
)

// MaxFrame bounds one frame's encoded payload. The decoder rejects a
// larger length prefix before allocating anything; the cap is far
// above any real round frame (a full publish of a 100k-peer partition
// fits) while keeping a hostile length prefix harmless.
const MaxFrame = 4 << 20

// ErrMalformed is the strict decoder's rejection class; every decode
// error wraps it.
var ErrMalformed = errors.New("wire: malformed input")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// SymWriter is the sending half of a connection's symbol table. The
// zero value is ready to use.
type SymWriter struct {
	idx      map[ident.ID]uint32
	interned uint64
}

// AppendID appends the identifier's symbol encoding to dst: uvarint
// index+1 for a known identifier, tag 0 plus the 8-byte literal for a
// first mention (which also assigns the next index).
func (s *SymWriter) AppendID(dst []byte, id ident.ID) []byte {
	if k, ok := s.idx[id]; ok {
		return binary.AppendUvarint(dst, uint64(k)+1)
	}
	if s.idx == nil {
		s.idx = make(map[ident.ID]uint32)
	}
	s.idx[id] = uint32(len(s.idx))
	s.interned++
	dst = append(dst, 0)
	return ident.AppendBytes(dst, id)
}

// Interned returns the number of identifiers this table has assigned.
func (s *SymWriter) Interned() uint64 { return s.interned }

// SymReader is the receiving half of a connection's symbol table. The
// zero value is ready to use.
type SymReader struct {
	tab []ident.ID
}

// ReadID decodes one symbol-encoded identifier from the front of b,
// returning the identifier and the remaining bytes.
func (s *SymReader) ReadID(b []byte) (ident.ID, []byte, error) {
	tag, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, malformed("bad symbol tag")
	}
	b = b[n:]
	if tag == 0 {
		id, ok := ident.FromBytes(b)
		if !ok {
			return 0, nil, malformed("truncated identifier literal")
		}
		s.tab = append(s.tab, id)
		return id, b[8:], nil
	}
	if tag > uint64(len(s.tab)) {
		return 0, nil, malformed("symbol index %d beyond table size %d", tag, len(s.tab))
	}
	return s.tab[tag-1], b, nil
}

// AppendRef appends a reference: the owner through the symbol table,
// then the level as a uvarint. The reference must be WireValid (the
// engine never produces one that isn't; a violation is a programming
// error, not an input condition).
func AppendRef(dst []byte, s *SymWriter, r ref.Ref) []byte {
	if !r.WireValid() {
		panic(fmt.Sprintf("wire: encoding invalid ref %+v", r))
	}
	dst = s.AppendID(dst, r.Owner)
	return binary.AppendUvarint(dst, uint64(r.Level))
}

// ReadRef decodes one reference from the front of b.
func ReadRef(b []byte, s *SymReader) (ref.Ref, []byte, error) {
	owner, b, err := s.ReadID(b)
	if err != nil {
		return ref.Ref{}, nil, err
	}
	lvl, n := binary.Uvarint(b)
	if n <= 0 || lvl > ref.MaxWireLevel {
		return ref.Ref{}, nil, malformed("bad ref level")
	}
	return ref.Ref{Owner: owner, Level: int(lvl)}, b[n:], nil
}

// maxKind is the highest valid edge marking (unmarked, ring,
// connection).
const maxKind = 2

// AppendMessage appends one protocol message: destination ref, edge
// kind byte, introduced ref. With a warm symbol table this is three
// uvarints and a byte — and zero allocations when dst has capacity
// (BenchmarkEncodeMessage pins it).
func AppendMessage(dst []byte, s *SymWriter, m rechord.Message) []byte {
	dst = AppendRef(dst, s, m.To)
	if m.Kind < 0 || m.Kind > maxKind {
		panic(fmt.Sprintf("wire: encoding invalid message kind %d", m.Kind))
	}
	dst = append(dst, byte(m.Kind))
	return AppendRef(dst, s, m.Add)
}

// ReadMessage decodes one protocol message from the front of b.
func ReadMessage(b []byte, s *SymReader) (rechord.Message, []byte, error) {
	var m rechord.Message
	var err error
	m.To, b, err = ReadRef(b, s)
	if err != nil {
		return m, nil, err
	}
	if len(b) == 0 || b[0] > maxKind {
		return m, nil, malformed("bad message kind")
	}
	m.Kind, b = graph.Kind(b[0]), b[1:]
	m.Add, b, err = ReadRef(b, s)
	if err != nil {
		return m, nil, err
	}
	return m, b, nil
}

// checkCount validates an element count read off the wire against the
// bytes that remain: n elements of at least min bytes each cannot
// outnumber the payload, so a hostile count is rejected before it
// sizes an allocation.
func checkCount(n uint64, min int, rem []byte) error {
	if n > uint64(len(rem))/uint64(min) {
		return malformed("count %d exceeds remaining payload", n)
	}
	return nil
}
