package wire

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
)

// Node runs one partition of a scripted Re-Chord network as a wire
// peer: it rebuilds the full replicated membership from the script,
// executes the hosted peers' rules through rechord.Partition, and
// exchanges round frames over a Transport.
//
// The cluster is a star around rank 0 (the seed): each worker sends
// its round frame to the seed, the seed merges all frames (its own
// included) in rank order into one bundle, decides termination, and
// broadcasts the bundle back. Every process applies the full bundle —
// the Apply methods make re-applying one's own effects a no-op — so
// all replicas stay consistent without a full mesh or a distributed
// termination protocol.
type Node struct {
	Rank  int
	Procs int

	Script *Script
	Config rechord.Config

	// Metrics, when set, receives the wire counters (also threaded
	// into the transport's codec if the caller passes the same set
	// there).
	Metrics *obs.WireMetrics

	// Logf, when set, receives progress lines (the node binary wires
	// it to its stdout in verbose mode).
	Logf func(format string, args ...any)
}

// Result is one node's outcome. On rank 0, Fingerprint is the
// XOR-combined cluster fingerprint and Peers the total peer count; on
// workers both cover only the local partition.
type Result struct {
	Fingerprint uint64
	Peers       int
	Rounds      int
}

func (nd *Node) logf(format string, args ...any) {
	if nd.Logf != nil {
		nd.Logf(format, args...)
	}
}

func (nd *Node) validate() error {
	if nd.Script == nil {
		return fmt.Errorf("wire: node needs a script")
	}
	if nd.Procs < 1 {
		return fmt.Errorf("wire: procs must be >= 1, got %d", nd.Procs)
	}
	if nd.Rank < 0 || nd.Rank >= nd.Procs {
		return fmt.Errorf("wire: rank %d out of range [0,%d)", nd.Rank, nd.Procs)
	}
	return nil
}

// newPartition builds this rank's partition over a fresh replica.
func (nd *Node) newPartition(sink rechord.PartitionSink) (*rechord.Partition, error) {
	nw, err := nd.Script.Build(nd.Config)
	if err != nil {
		return nil, err
	}
	rank, procs := uint64(nd.Rank), uint64(nd.Procs)
	hosted := func(id ident.ID) bool { return uint64(id)%procs == rank }
	return rechord.NewPartition(nw, hosted, sink), nil
}

// frameSink buffers a round's outgoing effects into a RoundFrame.
type frameSink struct{ fr RoundFrame }

func (s *frameSink) SendBucket(u rechord.BucketUpdate)  { s.fr.Buckets = append(s.fr.Buckets, u) }
func (s *frameSink) SendOneShot(u rechord.OneShot)      { s.fr.OneShots = append(s.fr.OneShots, u) }
func (s *frameSink) PublishState(p rechord.PeerPublish) { s.fr.Publishes = append(s.fr.Publishes, p) }

// take returns the buffered frame for round r and resets the buffer.
func (s *frameSink) take(r int, changed bool) *RoundFrame {
	fr := s.fr
	fr.Round = r
	fr.Changed = changed || fr.payloadLen() > 0
	s.fr = RoundFrame{}
	return &fr
}

// applyBundle applies a merged round bundle to the local partition.
func applyBundle(p *rechord.Partition, fr *RoundFrame) {
	for _, u := range fr.Buckets {
		p.ApplyBucket(u)
	}
	for _, u := range fr.OneShots {
		p.ApplyOneShot(u)
	}
	for _, pub := range fr.Publishes {
		p.ApplyPublish(pub)
	}
}

// stepRound advances the partition one round: due script ops first,
// then the hosted batch. It reports whether anything changed locally.
func (nd *Node) stepRound(p *rechord.Partition, next *int, r int) (bool, error) {
	opsApplied := false
	for *next < len(nd.Script.Ops) && nd.Script.Ops[*next].Round == r {
		if err := nd.Script.Ops[*next].applyPartition(p); err != nil {
			return false, err
		}
		*next++
		opsApplied = true
	}
	p.Step()
	return opsApplied || p.LastChange() == p.Time(), nil
}

// RunSeed runs rank 0: accept the workers, drive the lockstep rounds,
// decide termination, and combine the fingerprints.
func (nd *Node) RunSeed(ln Listener) (*Result, error) {
	if err := nd.validate(); err != nil {
		return nil, err
	}
	if nd.Rank != 0 {
		return nil, fmt.Errorf("wire: RunSeed called on rank %d", nd.Rank)
	}

	// Bootstrap: one Hello per worker, slotted by rank.
	conns := make([]Conn, nd.Procs) // conns[0] stays nil (self)
	for i := 1; i < nd.Procs; i++ {
		c, err := ln.Accept()
		if err != nil {
			return nil, errTransport("accept", ln.Addr(), err)
		}
		f, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("wire: seed handshake: %w", err)
		}
		h, ok := f.(*Hello)
		if !ok {
			return nil, fmt.Errorf("wire: seed handshake: want hello, got %T", f)
		}
		if h.Procs != nd.Procs {
			return nil, fmt.Errorf("wire: worker believes procs=%d, seed has %d", h.Procs, nd.Procs)
		}
		if h.Rank < 1 || h.Rank >= nd.Procs || conns[h.Rank] != nil {
			return nil, fmt.Errorf("wire: bad or duplicate worker rank %d", h.Rank)
		}
		conns[h.Rank] = c
	}
	nd.logf("seed: %d workers connected", nd.Procs-1)

	sink := &frameSink{}
	p, err := nd.newPartition(sink)
	if err != nil {
		return nil, err
	}

	var runErr error
	rounds := 0
	next := 0
	for r := 1; ; r++ {
		rounds = r
		changed, err := nd.stepRound(p, &next, r)
		if err != nil {
			runErr = err
			break
		}
		frames := make([]*RoundFrame, 0, nd.Procs)
		frames = append(frames, sink.take(r, changed))
		for rank := 1; rank < nd.Procs; rank++ {
			f, err := conns[rank].Recv()
			if err != nil {
				return nil, fmt.Errorf("wire: seed recv round %d from rank %d: %w", r, rank, err)
			}
			rf, ok := f.(*RoundFrame)
			if !ok || rf.Round != r {
				return nil, fmt.Errorf("wire: seed: rank %d out of sync at round %d (%T)", rank, r, f)
			}
			frames = append(frames, rf)
		}
		bundle := &RoundFrame{Round: r}
		for _, f := range frames {
			bundle.Changed = bundle.Changed || f.Changed
			bundle.Buckets = append(bundle.Buckets, f.Buckets...)
			bundle.OneShots = append(bundle.OneShots, f.OneShots...)
			bundle.Publishes = append(bundle.Publishes, f.Publishes...)
		}
		bundle.Done = !bundle.Changed && next == len(nd.Script.Ops)
		if r >= nd.Script.MaxRounds && !bundle.Done {
			bundle.Done = true
			runErr = fmt.Errorf("wire: cluster did not converge in %d rounds", nd.Script.MaxRounds)
		}
		for rank := 1; rank < nd.Procs; rank++ {
			if err := conns[rank].Send(bundle); err != nil {
				return nil, fmt.Errorf("wire: seed send bundle to rank %d: %w", rank, err)
			}
		}
		applyBundle(p, bundle)
		if bundle.Done {
			break
		}
	}

	res := &Result{Fingerprint: p.Fingerprint(), Peers: p.HostedPeers(), Rounds: rounds}
	for rank := 1; rank < nd.Procs; rank++ {
		f, err := conns[rank].Recv()
		if err != nil {
			return nil, fmt.Errorf("wire: seed recv fin from rank %d: %w", rank, err)
		}
		fin, ok := f.(*Fin)
		if !ok {
			return nil, fmt.Errorf("wire: seed: want fin from rank %d, got %T", rank, f)
		}
		res.Fingerprint ^= fin.Fingerprint
		res.Peers += fin.Peers
		conns[rank].Close()
	}
	if runErr != nil {
		return nil, runErr
	}
	nd.logf("seed: converged round=%d peers=%d fingerprint=%016x", res.Rounds, res.Peers, res.Fingerprint)
	return res, nil
}

// RunWorker runs rank >= 1 over an established connection to the seed.
func (nd *Node) RunWorker(c Conn) (*Result, error) {
	if err := nd.validate(); err != nil {
		return nil, err
	}
	if nd.Rank == 0 {
		return nil, fmt.Errorf("wire: RunWorker called on rank 0")
	}
	if err := c.Send(&Hello{Rank: nd.Rank, Procs: nd.Procs}); err != nil {
		return nil, fmt.Errorf("wire: worker hello: %w", err)
	}

	sink := &frameSink{}
	p, err := nd.newPartition(sink)
	if err != nil {
		return nil, err
	}
	next := 0
	rounds := 0
	for r := 1; ; r++ {
		rounds = r
		changed, err := nd.stepRound(p, &next, r)
		if err != nil {
			return nil, err
		}
		if err := c.Send(sink.take(r, changed)); err != nil {
			return nil, fmt.Errorf("wire: worker send round %d: %w", r, err)
		}
		f, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("wire: worker recv bundle %d: %w", r, err)
		}
		bundle, ok := f.(*RoundFrame)
		if !ok || bundle.Round != r {
			return nil, fmt.Errorf("wire: worker out of sync at round %d (%T)", r, f)
		}
		applyBundle(p, bundle)
		if bundle.Done {
			break
		}
	}
	res := &Result{Fingerprint: p.Fingerprint(), Peers: p.HostedPeers(), Rounds: rounds}
	if err := c.Send(&Fin{Fingerprint: res.Fingerprint, Peers: res.Peers, Rounds: res.Rounds}); err != nil {
		return nil, fmt.Errorf("wire: worker fin: %w", err)
	}
	nd.logf("rank %d: done round=%d peers=%d local=%016x", nd.Rank, res.Rounds, res.Peers, res.Fingerprint)
	return res, nil
}
