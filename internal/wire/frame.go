package wire

import (
	"bufio"
	"encoding/binary"
	"io"

	"repro/internal/obs"
	"repro/internal/rechord"
	"repro/internal/ref"
)

// Frame kinds. A frame is one length-delimited unit on a stream: a
// kind byte followed by the kind's body.
const (
	frameHello byte = 1
	frameRound byte = 2
	frameFin   byte = 3
)

// Frame is one protocol unit: Hello (bootstrap), RoundFrame (one
// global round's effects), or Fin (final fingerprint).
type Frame interface{ frame() }

// Hello introduces a worker to the seed process: its rank and the
// cluster size it believes in (cross-checked, so mismatched launches
// fail fast instead of deadlocking the barrier).
type Hello struct {
	Rank  int
	Procs int
}

// RoundFrame carries one process's cross-partition effects for one
// global round — or, sent by the seed, the merged bundle of every
// process's effects plus the termination decision.
type RoundFrame struct {
	Round   int
	Changed bool // this round changed state somewhere (bundle: anywhere)
	Done    bool // bundle only: the cluster is quiescent, stop after applying

	Buckets   []rechord.BucketUpdate
	OneShots  []rechord.OneShot
	Publishes []rechord.PeerPublish
}

// Fin closes a worker's participation: its local fingerprint and
// hosted-peer count, XOR/sum-combined by the seed.
type Fin struct {
	Fingerprint uint64
	Peers       int
	Rounds      int
}

func (*Hello) frame()      {}
func (*RoundFrame) frame() {}
func (*Fin) frame()        {}

// payloadLen reports whether the frame carries any effects.
func (f *RoundFrame) payloadLen() int {
	return len(f.Buckets) + len(f.OneShots) + len(f.Publishes)
}

// Round frame body flags.
const (
	flagChanged byte = 1 << 0
	flagDone    byte = 1 << 1
)

// Encoder writes frames to one stream direction: preamble once, then
// uvarint length-delimited frame payloads, with the connection's
// symbol table threaded through every identifier.
type Encoder struct {
	w           io.Writer
	sym         SymWriter
	buf         []byte
	met         *obs.WireMetrics
	wroteHeader bool
}

// NewEncoder returns an encoder writing to w. met may be nil.
func NewEncoder(w io.Writer, met *obs.WireMetrics) *Encoder {
	return &Encoder{w: w, met: met}
}

// Encode writes one frame.
func (e *Encoder) Encode(f Frame) error {
	body := e.buf[:0]
	switch f := f.(type) {
	case *Hello:
		body = append(body, frameHello)
		body = binary.AppendUvarint(body, uint64(f.Rank))
		body = binary.AppendUvarint(body, uint64(f.Procs))
	case *RoundFrame:
		body = e.appendRound(body, f)
	case *Fin:
		body = append(body, frameFin)
		body = binary.BigEndian.AppendUint64(body, f.Fingerprint)
		body = binary.AppendUvarint(body, uint64(f.Peers))
		body = binary.AppendUvarint(body, uint64(f.Rounds))
	default:
		panic("wire: unknown frame type")
	}
	e.buf = body

	var hdr [12]byte
	n := 0
	if !e.wroteHeader {
		hdr[0], hdr[1], hdr[2], hdr[3] = magic0, magic1, magic2, Version
		n = 4
		e.wroteHeader = true
	}
	pfx := binary.PutUvarint(hdr[n:], uint64(len(body)))
	if _, err := e.w.Write(hdr[:n+pfx]); err != nil {
		return err
	}
	if _, err := e.w.Write(body); err != nil {
		return err
	}
	if e.met != nil {
		e.met.FramesSent.Inc()
		e.met.BytesSent.Add(uint64(n + pfx + len(body)))
	}
	return nil
}

func (e *Encoder) appendRound(body []byte, f *RoundFrame) []byte {
	s := &e.sym
	body = append(body, frameRound)
	body = binary.AppendUvarint(body, uint64(f.Round))
	var flags byte
	if f.Changed {
		flags |= flagChanged
	}
	if f.Done {
		flags |= flagDone
	}
	body = append(body, flags)

	body = binary.AppendUvarint(body, uint64(len(f.Buckets)))
	for _, u := range f.Buckets {
		body = s.AppendID(body, u.From)
		body = s.AppendID(body, u.To)
		body = binary.AppendUvarint(body, uint64(len(u.Msgs)))
		for _, m := range u.Msgs {
			body = AppendMessage(body, s, m)
		}
	}
	body = binary.AppendUvarint(body, uint64(len(f.OneShots)))
	for _, u := range f.OneShots {
		body = s.AppendID(body, u.To)
		body = binary.AppendUvarint(body, uint64(len(u.Msgs)))
		for _, m := range u.Msgs {
			body = AppendMessage(body, s, m)
		}
	}
	body = binary.AppendUvarint(body, uint64(len(f.Publishes)))
	for _, p := range f.Publishes {
		body = s.AppendID(body, p.Owner)
		body = binary.AppendUvarint(body, uint64(p.MaxLevel))
		body = binary.AppendUvarint(body, uint64(len(p.Views)))
		for _, v := range p.Views {
			var vf byte
			if v.HasRL {
				vf |= 1
			}
			if v.HasRR {
				vf |= 2
			}
			body = append(body, vf)
			if v.HasRL {
				body = AppendRef(body, s, v.RL)
			}
			if v.HasRR {
				body = AppendRef(body, s, v.RR)
			}
		}
	}
	if e.met != nil {
		e.met.BucketUpdates.Add(uint64(len(f.Buckets)))
		e.met.OneShots.Add(uint64(len(f.OneShots)))
		e.met.Publishes.Add(uint64(len(f.Publishes)))
	}
	return body
}

// Decoder reads frames from one stream direction, strictly.
type Decoder struct {
	r          *bufio.Reader
	sym        SymReader
	buf        []byte
	met        *obs.WireMetrics
	readHeader bool
}

// NewDecoder returns a decoder reading from r. met may be nil.
func NewDecoder(r io.Reader, met *obs.WireMetrics) *Decoder {
	return &Decoder{r: bufio.NewReader(r), met: met}
}

// Decode reads the next frame. io.EOF is returned cleanly at a frame
// boundary; any malformed input wraps ErrMalformed.
func (d *Decoder) Decode() (Frame, error) {
	if !d.readHeader {
		var hdr [4]byte
		if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return nil, malformed("truncated preamble")
			}
			return nil, err
		}
		if hdr[0] != magic0 || hdr[1] != magic1 || hdr[2] != magic2 {
			return nil, malformed("bad magic %q", hdr[:3])
		}
		if hdr[3] != Version {
			return nil, malformed("unknown version %d (speaking %d)", hdr[3], Version)
		}
		d.readHeader = true
	}
	size, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, malformed("truncated length prefix")
		}
		return nil, err // io.EOF: clean end of stream
	}
	if size == 0 {
		return nil, malformed("empty frame")
	}
	if size > MaxFrame {
		return nil, malformed("frame of %d bytes exceeds limit %d", size, MaxFrame)
	}
	if uint64(cap(d.buf)) < size {
		d.buf = make([]byte, size)
	}
	b := d.buf[:size]
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, malformed("truncated frame: %v", err)
	}
	f, rest, err := d.parseFrame(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, malformed("%d trailing bytes in frame", len(rest))
	}
	if d.met != nil {
		d.met.FramesRecv.Inc()
		d.met.BytesRecv.Add(size)
	}
	return f, nil
}

func (d *Decoder) parseFrame(b []byte) (Frame, []byte, error) {
	kind := b[0]
	b = b[1:]
	switch kind {
	case frameHello:
		rank, n := binary.Uvarint(b)
		if n <= 0 || rank > 1<<20 {
			return nil, nil, malformed("bad hello rank")
		}
		b = b[n:]
		procs, n := binary.Uvarint(b)
		if n <= 0 || procs > 1<<20 {
			return nil, nil, malformed("bad hello procs")
		}
		return &Hello{Rank: int(rank), Procs: int(procs)}, b[n:], nil
	case frameRound:
		return d.parseRound(b)
	case frameFin:
		if len(b) < 8 {
			return nil, nil, malformed("truncated fin")
		}
		fp := binary.BigEndian.Uint64(b)
		b = b[8:]
		peers, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, malformed("bad fin peers")
		}
		b = b[n:]
		rounds, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, malformed("bad fin rounds")
		}
		return &Fin{Fingerprint: fp, Peers: int(peers), Rounds: int(rounds)}, b[n:], nil
	default:
		return nil, nil, malformed("unknown frame kind %d", kind)
	}
}

func (d *Decoder) parseRound(b []byte) (Frame, []byte, error) {
	s := &d.sym
	round, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, malformed("bad round number")
	}
	b = b[n:]
	if len(b) == 0 {
		return nil, nil, malformed("missing round flags")
	}
	flags := b[0]
	if flags&^(flagChanged|flagDone) != 0 {
		return nil, nil, malformed("unknown round flags %#x", flags)
	}
	b = b[1:]
	f := &RoundFrame{
		Round:   int(round),
		Changed: flags&flagChanged != 0,
		Done:    flags&flagDone != 0,
	}

	readMsgs := func(b []byte) ([]rechord.Message, []byte, error) {
		cnt, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, malformed("bad message count")
		}
		b = b[n:]
		// A message is at least 5 bytes (two refs of >= 2 bytes, one
		// kind byte).
		if err := checkCount(cnt, 5, b); err != nil {
			return nil, nil, err
		}
		var ms []rechord.Message
		if cnt > 0 {
			ms = make([]rechord.Message, 0, cnt)
		}
		for i := uint64(0); i < cnt; i++ {
			var m rechord.Message
			var err error
			m, b, err = ReadMessage(b, s)
			if err != nil {
				return nil, nil, err
			}
			ms = append(ms, m)
		}
		return ms, b, nil
	}

	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, malformed("bad bucket count")
	}
	b = b[n:]
	if err := checkCount(cnt, 3, b); err != nil {
		return nil, nil, err
	}
	for i := uint64(0); i < cnt; i++ {
		var u rechord.BucketUpdate
		var err error
		u.From, b, err = s.ReadID(b)
		if err != nil {
			return nil, nil, err
		}
		u.To, b, err = s.ReadID(b)
		if err != nil {
			return nil, nil, err
		}
		u.Msgs, b, err = readMsgs(b)
		if err != nil {
			return nil, nil, err
		}
		f.Buckets = append(f.Buckets, u)
	}

	cnt, n = binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, malformed("bad one-shot count")
	}
	b = b[n:]
	if err := checkCount(cnt, 2, b); err != nil {
		return nil, nil, err
	}
	for i := uint64(0); i < cnt; i++ {
		var u rechord.OneShot
		var err error
		u.To, b, err = s.ReadID(b)
		if err != nil {
			return nil, nil, err
		}
		u.Msgs, b, err = readMsgs(b)
		if err != nil {
			return nil, nil, err
		}
		f.OneShots = append(f.OneShots, u)
	}

	cnt, n = binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, malformed("bad publish count")
	}
	b = b[n:]
	if err := checkCount(cnt, 3, b); err != nil {
		return nil, nil, err
	}
	for i := uint64(0); i < cnt; i++ {
		var p rechord.PeerPublish
		var err error
		p.Owner, b, err = s.ReadID(b)
		if err != nil {
			return nil, nil, err
		}
		maxLv, n := binary.Uvarint(b)
		if n <= 0 || maxLv > ref.MaxWireLevel {
			return nil, nil, malformed("bad publish max level")
		}
		p.MaxLevel = int(maxLv)
		b = b[n:]
		vcnt, n := binary.Uvarint(b)
		if n <= 0 || vcnt > ref.MaxWireLevel+1 {
			return nil, nil, malformed("bad publish view count")
		}
		b = b[n:]
		if err := checkCount(vcnt, 1, b); err != nil {
			return nil, nil, err
		}
		if vcnt > 0 {
			p.Views = make([]rechord.PublishedView, 0, vcnt)
		}
		for j := uint64(0); j < vcnt; j++ {
			if len(b) == 0 {
				return nil, nil, malformed("truncated view entry")
			}
			vf := b[0]
			if vf > 3 {
				return nil, nil, malformed("unknown view flags %#x", vf)
			}
			b = b[1:]
			var v rechord.PublishedView
			if vf&1 != 0 {
				v.HasRL = true
				v.RL, b, err = ReadRef(b, s)
				if err != nil {
					return nil, nil, err
				}
			}
			if vf&2 != 0 {
				v.HasRR = true
				v.RR, b, err = ReadRef(b, s)
				if err != nil {
					return nil, nil, err
				}
			}
			p.Views = append(p.Views, v)
		}
		f.Publishes = append(f.Publishes, p)
	}
	return f, b, nil
}
