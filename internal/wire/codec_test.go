package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
	"repro/internal/ref"
)

func msg(toOwner uint64, toLvl int, kind graph.Kind, addOwner uint64, addLvl int) rechord.Message {
	return rechord.Message{
		To:   ref.Ref{Owner: ident.ID(toOwner), Level: toLvl},
		Kind: kind,
		Add:  ref.Ref{Owner: ident.ID(addOwner), Level: addLvl},
	}
}

// richRound builds a frame touching every encodable field: repeated
// identifiers (symbol-table hits), all view-flag combinations, empty
// and non-empty message lists.
func richRound() *RoundFrame {
	return &RoundFrame{
		Round:   7,
		Changed: true,
		Buckets: []rechord.BucketUpdate{
			{From: 0x1111, To: 0x2222, Msgs: []rechord.Message{
				msg(0x2222, 0, graph.Ring, 0x3333, 2),
				msg(0x2222, 1, graph.Connection, 0x1111, 0),
			}},
			{From: 0x3333, To: 0x1111, Msgs: nil}, // bucket deletion
		},
		OneShots: []rechord.OneShot{
			{To: 0x2222, Msgs: []rechord.Message{msg(0x1111, 3, graph.Unmarked, 0x4444, 0)}},
		},
		Publishes: []rechord.PeerPublish{
			{Owner: 0x1111, MaxLevel: 3, Views: []rechord.PublishedView{
				{}, // neither side set
				{RL: ref.Ref{Owner: 0x2222, Level: 1}, HasRL: true},
				{RR: ref.Ref{Owner: 0x3333, Level: 2}, HasRR: true},
				{RL: ref.Ref{Owner: 0x4444, Level: 3}, HasRL: true,
					RR: ref.Ref{Owner: 0x1111, Level: 3}, HasRR: true},
			}},
			{Owner: 0x4444, MaxLevel: 0, Views: nil},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		&Hello{Rank: 3, Procs: 4},
		richRound(),
		&RoundFrame{Round: 8, Done: true}, // empty bundle
		&Fin{Fingerprint: 0xDEADBEEFCAFE0123, Peers: 12, Rounds: 97},
	}
	var met obs.WireMetrics
	var buf bytes.Buffer
	enc := NewEncoder(&buf, &met)
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatalf("encode %T: %v", f, err)
		}
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()), &met)
	for i, want := range frames {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d mismatch:\n got  %#v\n want %#v", i, got, want)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want clean io.EOF after last frame, got %v", err)
	}
	if got, want := met.FramesSent.Value(), uint64(len(frames)); got != want {
		t.Fatalf("FramesSent = %d, want %d", got, want)
	}
	if met.FramesRecv.Value() != met.FramesSent.Value() {
		t.Fatalf("FramesRecv = %d != FramesSent = %d", met.FramesRecv.Value(), met.FramesSent.Value())
	}
	// Sent counts preamble + length prefixes + payloads; recv counts
	// payloads only.
	if met.BytesRecv.Value() == 0 || met.BytesSent.Value() <= met.BytesRecv.Value() {
		t.Fatalf("byte counters inconsistent: sent=%d recv=%d", met.BytesSent.Value(), met.BytesRecv.Value())
	}
}

// TestSymbolTableWarm pins the core codec property: an identifier costs
// 9 bytes once and 1-3 bytes ever after, per connection direction.
func TestSymbolTableWarm(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	if err := enc.Encode(richRound()); err != nil {
		t.Fatal(err)
	}
	cold := buf.Len()
	if err := enc.Encode(richRound()); err != nil {
		t.Fatal(err)
	}
	warm := buf.Len() - cold
	// 4 distinct identifiers, each saving 8 literal bytes on the warm
	// frame (cold also carries the 4-byte preamble).
	if warm >= cold-4 {
		t.Fatalf("warm frame (%d bytes) not smaller than cold (%d)", warm, cold-4)
	}
	if got := enc.sym.Interned(); got != 4 {
		t.Fatalf("interned %d symbols, want 4", got)
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()), nil)
	for i := 0; i < 2; i++ {
		f, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(f, Frame(richRound())) {
			t.Fatalf("decode %d: frame mismatch", i)
		}
	}
}

// TestDecodeTruncation feeds every strict prefix of a valid two-frame
// stream to a fresh decoder: each must yield a prefix of the full
// decode and then either a clean io.EOF (frame boundary) or an error —
// never a panic, never a phantom frame.
func TestDecodeTruncation(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	if err := enc.Encode(richRound()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&Fin{Fingerprint: 1, Peers: 2, Rounds: 3}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		dec := NewDecoder(bytes.NewReader(full[:cut]), nil)
		frames := 0
		for {
			f, err := dec.Decode()
			if err == io.EOF {
				break // clean boundary — fine for prefixes ending between frames
			}
			if err != nil {
				break
			}
			if f == nil {
				t.Fatalf("cut %d: nil frame without error", cut)
			}
			frames++
			if frames > 2 {
				t.Fatalf("cut %d: decoded more frames than were encoded", cut)
			}
		}
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	// A valid one-frame stream to mutate.
	var buf bytes.Buffer
	if err := NewEncoder(&buf, nil).Encode(&Hello{Rank: 1, Procs: 2}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mustReject := func(name string, b []byte) {
		t.Helper()
		dec := NewDecoder(bytes.NewReader(b), nil)
		var err error
		for i := 0; i < 4 && err == nil; i++ {
			_, err = dec.Decode()
		}
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("%s: want ErrMalformed, got %v", name, err)
		}
	}

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	mustReject("bad magic", badMagic)

	badVersion := append([]byte(nil), valid...)
	badVersion[3] = Version + 1
	mustReject("unknown version", badVersion)

	empty := []byte{magic0, magic1, magic2, Version, 0}
	mustReject("empty frame", empty)

	oversize := binary.AppendUvarint([]byte{magic0, magic1, magic2, Version}, MaxFrame+1)
	mustReject("oversize length", oversize)

	unknownKind := []byte{magic0, magic1, magic2, Version, 1, 99}
	mustReject("unknown frame kind", unknownKind)

	trailing := append([]byte(nil), valid...)
	// Grow the declared length by one and append a junk byte: parse
	// succeeds but leaves a trailing byte.
	trailing[4]++
	trailing = append(trailing, 0xFF)
	mustReject("trailing bytes", trailing)

	// A round frame whose first bucket's From uses symbol index 1 with
	// an empty table.
	body := []byte{frameRound}
	body = binary.AppendUvarint(body, 1) // round
	body = append(body, 0)               // flags
	body = binary.AppendUvarint(body, 1) // bucket count
	body = binary.AppendUvarint(body, 1) // symbol tag 1 -> empty table
	frame := binary.AppendUvarint([]byte{magic0, magic1, magic2, Version}, uint64(len(body)))
	mustReject("symbol index out of range", append(frame, body...))
}
