package wire

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
)

// The wire hot path is AppendMessage/ReadMessage with a warm symbol
// table: after a connection's first round, virtually every identifier
// is interned, so a message is three uvarints and a kind byte with
// zero heap traffic. The bench-diff gate enforces the allocation
// ceiling (-fail-allocs on these two benchmarks).

func benchMessage() rechord.Message {
	return rechord.Message{
		To:   ref.Ref{Owner: ident.ID(0x1111_2222_3333_4444), Level: 2},
		Kind: graph.Ring,
		Add:  ref.Ref{Owner: ident.ID(0x5555_6666_7777_8888), Level: 5},
	}
}

func BenchmarkEncodeMessage(b *testing.B) {
	m := benchMessage()
	var sw SymWriter
	buf := AppendMessage(nil, &sw, m) // warm the table and size the buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendMessage(buf[:0], &sw, m)
	}
	_ = buf
}

func BenchmarkDecodeMessage(b *testing.B) {
	m := benchMessage()
	var sw SymWriter
	cold := AppendMessage(nil, &sw, m) // literals: warms the reader below
	warm := AppendMessage(nil, &sw, m) // symbol references only

	var sr SymReader
	if _, _, err := ReadMessage(cold, &sr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadMessage(warm, &sr); err != nil {
			b.Fatal(err)
		}
	}
}
