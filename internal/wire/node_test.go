package wire

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/rechord"
)

func testConfig() rechord.Config {
	return rechord.Config{Workers: 1, ParanoidSettle: true}
}

// gateScript is the equivalence-gate run description shared by the
// chan-cluster test here and the multi-process TCP test in
// cmd/rechord-node: a 20-peer random topology with a join, a graceful
// leave, an abrupt failure and a second join mid-stabilization.
const gateScript = `rechord-wire-script v1
topo random 20 1701
maxrounds 2000
op 3 join 5a5a000000000001 contact %CONTACT%
op 6 leave %LEAVE%
op 9 fail %FAIL%
op 12 join a5a5000000000002 contact 5a5a000000000001
`

// GateScript materializes gateScript: the leave/fail/contact targets
// are drawn from the generated membership, so the text stays valid for
// any seed. cmd/rechord-node's multi-process test builds its script by
// the same recipe.
func GateScript(t *testing.T) *Script {
	t.Helper()
	base, err := ParseScript(strings.NewReader(
		"rechord-wire-script v1\ntopo random 20 1701\n"))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := base.Build(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids := nw.Peers()
	text := strings.NewReplacer(
		"%CONTACT%", ids[0].Hex(),
		"%LEAVE%", ids[3].Hex(),
		"%FAIL%", ids[7].Hex(),
	).Replace(gateScript)
	s, err := ParseScript(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runChanCluster executes the script as a procs-node star cluster over
// the in-process transport and returns the seed's combined result.
func runChanCluster(t *testing.T, s *Script, procs int, delay rechord.DelayModel, met *obs.WireMetrics) *Result {
	t.Helper()
	cn := NewChanNet(delay, s.Seed, met)
	ln, err := cn.Listen("seed")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	errs := make([]error, procs)
	results := make([]*Result, procs)
	for rank := 1; rank < procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := cn.Dial("seed")
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			nd := &Node{Rank: rank, Procs: procs, Script: s, Config: testConfig()}
			results[rank], errs[rank] = nd.RunWorker(c)
		}(rank)
	}
	seed := &Node{Rank: 0, Procs: procs, Script: s, Config: testConfig()}
	res, err := seed.RunSeed(ln)
	wg.Wait()
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	for rank := 1; rank < procs; rank++ {
		if errs[rank] != nil {
			t.Fatalf("rank %d: %v", rank, errs[rank])
		}
	}
	return res
}

// runAsync executes the script under the asynchronous adversary:
// script op rounds are treated as async step stamps (a different but
// fair schedule), then the runner steps to quiescence. Convergence to
// the same fingerprint is the paper's uniqueness theorem at work.
func runAsync(t *testing.T, s *Script) uint64 {
	t.Helper()
	nw, err := s.Build(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ar := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{
		ActivationProb: 0.7,
		MaxDelay:       3,
	}, rand.New(rand.NewSource(s.Seed+1)))
	next := 0
	budget := int(float64(s.MaxRounds) * ar.StepBudgetScale())
	for step := 1; ; step++ {
		if step > budget {
			t.Fatalf("async leg did not converge in %d steps", budget)
		}
		for next < len(s.Ops) && s.Ops[next].Round == step {
			if err := s.Ops[next].applyMonolith(nw); err != nil {
				t.Fatalf("async op %d: %v", next, err)
			}
			next++
		}
		ar.Step()
		if next == len(s.Ops) && ar.Quiescent() {
			return nw.StateFingerprint(nil)
		}
	}
}

// TestChanClusterMatchesMonolith is the sim-vs-wire equivalence gate's
// in-process legs: the same scripted run through (a) the monolithic
// round engine, (b) the asynchronous adversary, and (c) a 4-node wire
// cluster over the chan transport (every frame through the real codec)
// must converge to the same state fingerprint. The TCP leg of the gate
// — the same script across real OS processes — lives in
// cmd/rechord-node's TestTCPClusterEquivalence.
func TestChanClusterMatchesMonolith(t *testing.T) {
	s := GateScript(t)

	monoFP, monoRounds, err := s.RunMonolith(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("monolith: fingerprint=%016x rounds=%d", monoFP, monoRounds)

	var met obs.WireMetrics
	res := runChanCluster(t, s, 4, nil, &met)
	if res.Fingerprint != monoFP {
		t.Fatalf("chan cluster fingerprint %016x != monolith %016x", res.Fingerprint, monoFP)
	}
	if res.Peers != 20 { // 20 initial - leave - fail + 2 joins = 20
		t.Fatalf("chan cluster peers = %d, want 20", res.Peers)
	}
	if met.FramesSent.Value() == 0 || met.BucketUpdates.Value() == 0 || met.Publishes.Value() == 0 {
		t.Fatalf("wire metrics did not move: %+v", met.Snapshot())
	}

	if asyncFP := runAsync(t, s); asyncFP != monoFP {
		t.Fatalf("async fingerprint %016x != monolith %016x", asyncFP, monoFP)
	}
}

// TestChanClusterDelayInvariance pins the delay-model statement: under
// the lockstep barrier a simulated network delay contributes latency
// accounting, never semantics.
func TestChanClusterDelayInvariance(t *testing.T) {
	s := GateScript(t)
	base := runChanCluster(t, s, 3, nil, nil)

	delayed := runChanClusterWithNet(t, s, 3, rechord.ParetoDelay{Alpha: 1.5, Max: 64})
	if delayed.res.Fingerprint != base.Fingerprint {
		t.Fatalf("delay model changed the outcome: %016x != %016x",
			delayed.res.Fingerprint, base.Fingerprint)
	}
	total, frames := delayed.net.SimLatency()
	if frames == 0 || total < frames {
		t.Fatalf("delay accounting did not accumulate: total=%d frames=%d", total, frames)
	}
}

type clusterRun struct {
	res *Result
	net *ChanNet
}

func runChanClusterWithNet(t *testing.T, s *Script, procs int, delay rechord.DelayModel) clusterRun {
	t.Helper()
	cn := NewChanNet(delay, s.Seed, nil)
	ln, err := cn.Listen("seed")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	for rank := 1; rank < procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := cn.Dial("seed")
			if err != nil {
				t.Errorf("rank %d dial: %v", rank, err)
				return
			}
			defer c.Close()
			nd := &Node{Rank: rank, Procs: procs, Script: s, Config: testConfig()}
			if _, err := nd.RunWorker(c); err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}(rank)
	}
	seed := &Node{Rank: 0, Procs: procs, Script: s, Config: testConfig()}
	res, err := seed.RunSeed(ln)
	wg.Wait()
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	return clusterRun{res: res, net: cn}
}

func TestNodeValidation(t *testing.T) {
	s := &Script{Topology: "random", N: 4, Seed: 1, MaxRounds: 10}
	for _, nd := range []*Node{
		{Rank: 0, Procs: 0, Script: s},
		{Rank: 2, Procs: 2, Script: s},
		{Rank: -1, Procs: 2, Script: s},
		{Rank: 0, Procs: 2},
	} {
		if _, err := nd.RunSeed(nil); err == nil {
			t.Fatalf("want validation error for %+v", nd)
		}
	}
	nd := &Node{Rank: 1, Procs: 2, Script: s}
	if _, err := nd.RunSeed(nil); err == nil {
		t.Fatal("RunSeed on rank 1 must fail")
	}
}
