package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestScriptParseFormatRoundTrip(t *testing.T) {
	text := `rechord-wire-script v1
topo random 24 1701
maxrounds 500
# churn burst
op 3 join 5a5a000000000001 contact 00119b2f4c81d3e6
op 3 leave 00aa000000000002
op 9 fail 77aa000000000003
`
	s, err := ParseScript(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if s.Topology != "random" || s.N != 24 || s.Seed != 1701 || s.MaxRounds != 500 {
		t.Fatalf("bad header fields: %+v", s)
	}
	if len(s.Ops) != 3 || s.Ops[0].Kind != OpJoin || s.Ops[1].Kind != OpLeave || s.Ops[2].Kind != OpFail {
		t.Fatalf("bad ops: %+v", s.Ops)
	}
	// Format → Parse must be the identity (comments aside).
	s2, err := ParseScript(bytes.NewReader(s.Format()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !bytes.Equal(s.Format(), s2.Format()) {
		t.Fatalf("format not stable:\n%s\nvs\n%s", s.Format(), s2.Format())
	}
}

func TestScriptParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "not-a-script\n",
		"no topo":           "rechord-wire-script v1\nmaxrounds 5\n",
		"unknown topology":  "rechord-wire-script v1\ntopo moebius 8 1\n",
		"bad size":          "rechord-wire-script v1\ntopo random zero 1\n",
		"bad op kind":       "rechord-wire-script v1\ntopo random 8 1\nop 1 explode 0011223344556677\n",
		"short id":          "rechord-wire-script v1\ntopo random 8 1\nop 1 leave 0011\n",
		"join no contact":   "rechord-wire-script v1\ntopo random 8 1\nop 1 join 0011223344556677\n",
		"rounds decrease":   "rechord-wire-script v1\ntopo random 8 1\nop 5 leave 0011223344556677\nop 2 leave 8811223344556677\n",
		"zero round":        "rechord-wire-script v1\ntopo random 8 1\nop 0 leave 0011223344556677\n",
		"unknown directive": "rechord-wire-script v1\ntopo random 8 1\nwarp 9\n",
	}
	for name, text := range cases {
		s, err := ParseScript(strings.NewReader(text))
		if err == nil {
			// "unknown topology" parses; Build is where the name resolves.
			if name == "unknown topology" {
				if _, berr := s.Build(testConfig()); berr != nil {
					continue
				}
			}
			t.Errorf("%s: want error, got %+v", name, s)
		}
	}
}
