// Package ident implements the identifier space of the Re-Chord network.
//
// The paper assigns every peer an immutable identifier in the real
// interval [0,1) and derives the identifiers of its virtual nodes as
// u_i = u + 1/2^i (mod 1). We represent an identifier as a 64-bit
// fixed-point fraction: the ID value x stands for the real number
// x / 2^64. This makes the sibling arithmetic exact — adding 1/2^i is
// adding 1<<(64-i) with natural uint64 wraparound — and gives a total
// order identical to the order of the underlying reals.
package ident

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// ID is an identifier in [0,1), stored as a fixed-point fraction with
// denominator 2^64. The zero value is the identifier 0.
type ID uint64

// MaxLevel is the largest virtual-node level the system uses. Level i
// places a virtual node at clockwise distance 1/2^i from its owner;
// beyond level 62 the distances collapse toward the fixed-point
// granularity, so m (Section 2.2) is capped here.
const MaxLevel = 62

// FromFloat converts a real number in [0,1) to an ID, truncating to the
// fixed-point grid. Values outside [0,1) are reduced modulo 1.
func FromFloat(x float64) ID {
	x = x - math.Floor(x)
	// 2^64 is not representable in float64 exactly as a product bound,
	// so scale via 2^32 twice to keep precision for small x.
	f := x * (1 << 32) * (1 << 32)
	// For x just below 1 the first multiplication can round UP (e.g.
	// math.Nextafter(1, 0)*2^32 ties to exactly 2^32), making the
	// product exactly 2^64 — whose uint64 conversion is
	// implementation-defined. Clamp to the top of the grid instead.
	if f >= 1<<64 {
		return ^ID(0)
	}
	return ID(f)
}

// Float returns the real number the ID stands for, in [0,1).
func (a ID) Float() float64 {
	return float64(a) / (1 << 32) / (1 << 32)
}

// Hash derives an ID from an arbitrary peer address using SHA-1, the
// hash function Chord itself uses for consistent hashing.
func Hash(addr string) ID {
	sum := sha1.Sum([]byte(addr))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// Sibling returns the identifier of the level-i virtual node of a:
// a + 1/2^i (mod 1). Sibling(a, 0) is a itself.
func Sibling(a ID, level int) ID {
	if level <= 0 {
		return a
	}
	if level > 64 {
		return a
	}
	return a + ID(uint64(1)<<(64-uint(level)))
}

// Dist returns the clockwise (increasing identifier, mod 1) distance
// from a to b as a fraction with denominator 2^64.
func Dist(a, b ID) uint64 {
	return uint64(b - a)
}

// CCWDist returns the counter-clockwise distance from a to b.
func CCWDist(a, b ID) uint64 {
	return uint64(a - b)
}

// Between reports whether x lies in the open ring interval (a, b),
// walking clockwise from a to b. When a == b the interval is the whole
// ring minus {a}, matching the paper's [u,v] interval definition.
func Between(x, a, b ID) bool {
	if a == b {
		return x != a
	}
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

// InRightHalfOpen reports whether x lies in the ring interval (a, b]
// walking clockwise from a.
func InRightHalfOpen(x, a, b ID) bool {
	return Between(x, a, b) || x == b && x != a
}

// LevelFor returns the level m of Section 2.2: the first level whose
// clockwise interval (u, u+1/2^m] contains none of the given real
// identifiers, so that u_m is the virtual node with the smallest
// distance to u that still lies strictly before u's closest known real
// neighbor (the stable-state requirement of Section 3.1.6, and the
// finger layout of Figure 1). The result is in [1, MaxLevel]. reals may
// contain u itself; it is ignored. If no other real identifier is known
// the result is MaxLevel.
func LevelFor(u ID, reals []ID) int {
	// The smallest clockwise distance from u to a known real node
	// determines m: we need 1/2^m strictly below that distance, i.e.
	// 2^(64-m) < d.
	var best uint64 = math.MaxUint64
	found := false
	for _, r := range reals {
		if r == u {
			continue
		}
		d := Dist(u, r)
		if d < best {
			best = d
			found = true
		}
	}
	if !found {
		return MaxLevel
	}
	return LevelForDist(best)
}

// LevelForDist returns the minimal level m in [1, MaxLevel] such that
// 2^(64-m) < d, i.e. the virtual node u_m falls strictly before the
// closest known real node at clockwise distance d while u_{m-1} would
// land on or beyond it.
func LevelForDist(d uint64) int {
	if d == 0 {
		return MaxLevel
	}
	// Find the largest m with 1<<(64-m) < d.
	m := 1
	for m < MaxLevel && (uint64(1)<<(64-uint(m))) >= d {
		m++
	}
	if (uint64(1) << (64 - uint(m))) >= d {
		return MaxLevel
	}
	return m
}

// String renders the ID as a short fraction, e.g. "0.3457".
func (a ID) String() string {
	return fmt.Sprintf("%.6f", a.Float())
}

// Sort sorts identifiers in increasing (linear) order in place.
func Sort(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// SuccessorIndex returns the index into the sorted slice ids of the
// clockwise successor of x: the smallest identifier >= x, wrapping to
// index 0 when x exceeds every element. ids must be sorted and
// non-empty.
func SuccessorIndex(ids []ID, x ID) int {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= x })
	if i == len(ids) {
		return 0
	}
	return i
}

// Successor returns the clockwise successor of x among ids (the node
// responsible for key x under consistent hashing). ids must be sorted
// and non-empty.
func Successor(ids []ID, x ID) ID {
	return ids[SuccessorIndex(ids, x)]
}

// AppendBytes appends the identifier's canonical 8-byte big-endian
// wire form to dst. This is the literal representation a codec ships
// on an identifier's first mention; FromBytes is its inverse.
func AppendBytes(dst []byte, a ID) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(a))
}

// FromBytes decodes the 8-byte big-endian identifier at the start of
// b, reporting false when b is too short.
func FromBytes(b []byte) (ID, bool) {
	if len(b) < 8 {
		return 0, false
	}
	return ID(binary.BigEndian.Uint64(b)), true
}

// Hex renders the identifier as exactly 16 lowercase hex digits — the
// fixed-width textual form wire scripts and tooling use, accepted by
// ParseHex. (String is the human-facing decimal fraction instead.)
func (a ID) Hex() string {
	return fmt.Sprintf("%016x", uint64(a))
}

// ParseHex decodes the 16-digit hex form produced by Hex.
func ParseHex(s string) (ID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("ident: hex id must be 16 digits, got %q", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("ident: bad hex id %q: %v", s, err)
	}
	return ID(v), nil
}
