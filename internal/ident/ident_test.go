package ident

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.25, 0.5, 0.75, 0.999999, 1.0 / 3.0, 0.125}
	for _, x := range cases {
		got := FromFloat(x).Float()
		if math.Abs(got-x) > 1e-12 {
			t.Errorf("FromFloat(%v).Float() = %v, want within 1e-12", x, got)
		}
	}
}

// TestFromFloatTopOfInterval: inputs whose scaled product lands on
// exactly 2^64 — the mod-1 reduction of a tiny negative x rounds to
// exactly 1.0 — would hit an implementation-defined float-to-uint64
// conversion; they must clamp to the top of the fixed-point grid. The
// largest float64 below 1 must stay below the clamp and monotone.
func TestFromFloatTopOfInterval(t *testing.T) {
	// -1e-20 reduces to 1 - 1e-20, which rounds to exactly 1.0: the
	// product is exactly 2^64 and must clamp, not wrap to 0 (or
	// saturate only on some architectures).
	if got := FromFloat(-1e-20); got != ^ID(0) {
		t.Errorf("FromFloat(-1e-20) = %v (%#x), want clamp to ^ID(0)", got, uint64(got))
	}
	top := math.Nextafter(1, 0) // 1 - 2^-53: representable product 2^64 - 2^11
	if got, want := FromFloat(top), ID(^uint64(0)-(1<<11)+1); got != want {
		t.Errorf("FromFloat(Nextafter(1,0)) = %#x, want %#x", uint64(got), uint64(want))
	}
	// Monotonicity near the top: smaller inputs never map above.
	if prev := FromFloat(math.Nextafter(top, 0)); prev > FromFloat(top) {
		t.Errorf("FromFloat not monotone at the top: %#x > %#x", uint64(prev), uint64(FromFloat(top)))
	}
	if FromFloat(top) > FromFloat(-1e-20) {
		t.Error("clamped top is not the maximum of the grid")
	}
}

func TestFromFloatReducesModOne(t *testing.T) {
	if FromFloat(1.25) != FromFloat(0.25) {
		t.Errorf("FromFloat(1.25) = %v, want FromFloat(0.25) = %v", FromFloat(1.25), FromFloat(0.25))
	}
	if FromFloat(-0.75) != FromFloat(0.25) {
		t.Errorf("FromFloat(-0.75) = %v, want FromFloat(0.25)", FromFloat(-0.75))
	}
}

func TestSiblingDistances(t *testing.T) {
	u := FromFloat(0.3)
	for i := 1; i <= MaxLevel; i++ {
		d := Dist(u, Sibling(u, i))
		want := uint64(1) << (64 - uint(i))
		if d != want {
			t.Fatalf("Dist(u, Sibling(u,%d)) = %d, want %d", i, d, want)
		}
	}
}

func TestSiblingLevelZero(t *testing.T) {
	u := ID(42)
	if Sibling(u, 0) != u {
		t.Errorf("Sibling(u,0) = %v, want u", Sibling(u, 0))
	}
	if Sibling(u, -3) != u {
		t.Errorf("Sibling(u,-3) = %v, want u", Sibling(u, -3))
	}
	if Sibling(u, 65) != u {
		t.Errorf("Sibling(u,65) = %v, want u (out of range level)", Sibling(u, 65))
	}
}

func TestSiblingWraparound(t *testing.T) {
	u := FromFloat(0.75)
	s := Sibling(u, 1) // 0.75 + 0.5 = 0.25 mod 1
	if got, want := s.Float(), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("Sibling(0.75, 1).Float() = %v, want %v", got, want)
	}
}

func TestDistWraparound(t *testing.T) {
	a, b := FromFloat(0.9), FromFloat(0.1)
	got := ID(Dist(a, b)).Float() // distance as a fraction of the ring
	if math.Abs(got-0.2) > 1e-9 {
		t.Errorf("Dist(0.9,0.1) = %v of ring, want 0.2", got)
	}
	if Dist(a, a) != 0 {
		t.Errorf("Dist(a,a) = %d, want 0", Dist(a, a))
	}
}

func TestDistPlusCCWDist(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := ID(a), ID(b)
		if x == y {
			return Dist(x, y) == 0 && CCWDist(x, y) == 0
		}
		// Clockwise plus counter-clockwise distance covers the ring.
		return Dist(x, y)+CCWDist(x, y) == 0 // uint64 wraparound: 2^64 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetween(t *testing.T) {
	tests := []struct {
		x, a, b float64
		want    bool
	}{
		{0.5, 0.3, 0.8, true},
		{0.3, 0.3, 0.8, false},
		{0.8, 0.3, 0.8, false},
		{0.9, 0.3, 0.8, false},
		{0.0, 0.8, 0.3, true},  // paper's example: 0 in [0.8, 0.3]
		{0.2, 0.8, 0.3, true},  // paper's example: 0.2 in [0.8, 0.3]
		{0.2, 0.3, 0.8, false}, // paper's example: 0.2 not in [0.3, 0.8]
		{0.9, 0.8, 0.3, true},
		{0.5, 0.8, 0.3, false},
	}
	for _, tc := range tests {
		got := Between(FromFloat(tc.x), FromFloat(tc.a), FromFloat(tc.b))
		if got != tc.want {
			t.Errorf("Between(%v, %v, %v) = %v, want %v", tc.x, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestBetweenDegenerate(t *testing.T) {
	a := FromFloat(0.4)
	if Between(a, a, a) {
		t.Error("Between(a,a,a) = true, want false")
	}
	if !Between(FromFloat(0.7), a, a) {
		t.Error("Between(x,a,a) = false for x != a, want true (whole ring minus a)")
	}
}

func TestBetweenProperty(t *testing.T) {
	// x in (a,b) clockwise iff Dist(a,x) < Dist(a,b), excluding endpoints.
	f := func(x, a, b uint64) bool {
		xi, ai, bi := ID(x), ID(a), ID(b)
		if ai == bi || xi == ai || xi == bi {
			return true // covered by other tests
		}
		want := Dist(ai, xi) < Dist(ai, bi)
		return Between(xi, ai, bi) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInRightHalfOpen(t *testing.T) {
	a, b := FromFloat(0.3), FromFloat(0.8)
	if !InRightHalfOpen(b, a, b) {
		t.Error("b must be in (a, b]")
	}
	if InRightHalfOpen(a, a, b) {
		t.Error("a must not be in (a, b]")
	}
	if !InRightHalfOpen(FromFloat(0.5), a, b) {
		t.Error("0.5 must be in (0.3, 0.8]")
	}
}

func TestLevelForDist(t *testing.T) {
	// LevelForDist(d) is the minimal m with 1/2^m strictly below d, so
	// that u_m lies strictly between u and its closest real neighbor
	// (the stable-state requirement of Section 3.1.6) and m grows like
	// log2(1/d), matching Lemma 3.1 and Figure 1.
	for _, tc := range []struct {
		d    uint64
		want int
	}{
		{uint64(1)<<63 + 1, 1}, // d just over 1/2: u_1 at distance 1/2 fits
		{math.MaxUint64, 1},
		{uint64(1) << 63, 2}, // d exactly 1/2: real node AT u+1/2 -> level 1 not free, level 2 free
		{uint64(1) << 62, 3}, // d = 1/4: levels 1,2 not free (1/4 <= 1/4), level 3 free
		{3, 62},              // tiny distance: capped at MaxLevel
		{1, 62},
		{0, 62},
	} {
		if got := LevelForDist(tc.d); got != tc.want {
			t.Errorf("LevelForDist(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestLevelFor(t *testing.T) {
	u := FromFloat(0.1)
	reals := []ID{FromFloat(0.35), FromFloat(0.9), u}
	// Closest real clockwise from 0.1 is 0.35, distance 0.25.
	// Levels 1,2 have 1/2,1/4 >= 0.25; level 3 has 1/8 < 0.25.
	if got := LevelFor(u, reals); got != 3 {
		t.Errorf("LevelFor = %d, want 3", got)
	}
}

func TestLevelForNoReals(t *testing.T) {
	u := FromFloat(0.1)
	if got := LevelFor(u, nil); got != MaxLevel {
		t.Errorf("LevelFor with no reals = %d, want MaxLevel", got)
	}
	if got := LevelFor(u, []ID{u}); got != MaxLevel {
		t.Errorf("LevelFor with only self = %d, want MaxLevel", got)
	}
}

func TestLevelForWraparound(t *testing.T) {
	u := FromFloat(0.9)
	reals := []ID{FromFloat(0.15)} // clockwise distance 0.25 across the wrap
	if got := LevelFor(u, reals); got != 3 {
		t.Errorf("LevelFor across wrap = %d, want 3", got)
	}
}

func TestLevelForPicksClosest(t *testing.T) {
	u := FromFloat(0)
	reals := []ID{FromFloat(0.6), FromFloat(0.26), FromFloat(0.7)}
	// closest is 0.26 -> levels 1 (0.5) and 2 (0.25 < 0.26!) ... 0.25 < 0.26
	// so interval (u, u+1/4] contains no real node -> m = 2.
	if got := LevelFor(u, reals); got != 2 {
		t.Errorf("LevelFor = %d, want 2", got)
	}
}

func TestLevelForDistMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == 0 || b == 0 {
			return true
		}
		la, lb := LevelForDist(a), LevelForDist(b)
		if a <= b {
			return la >= lb // closer real node -> more virtual levels
		}
		return la <= lb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelForDistSiblingFits(t *testing.T) {
	// For every distance d, the virtual node at level LevelForDist(d)
	// sits strictly closer to u than d (it fits before the real node).
	f := func(d uint64) bool {
		if d == 0 {
			return true
		}
		m := LevelForDist(d)
		if m == MaxLevel {
			return true // capped; the cap is documented
		}
		return uint64(1)<<(64-uint(m)) < d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	a := Hash("peer-1")
	if a != Hash("peer-1") {
		t.Error("Hash not deterministic")
	}
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		h := Hash(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i)))
		seen[h] = true
	}
	if len(seen) < 990 {
		t.Errorf("Hash spread too low: %d distinct of 1000", len(seen))
	}
}

func TestSortAndSuccessor(t *testing.T) {
	ids := []ID{FromFloat(0.7), FromFloat(0.1), FromFloat(0.4)}
	Sort(ids)
	if ids[0] != FromFloat(0.1) || ids[2] != FromFloat(0.7) {
		t.Fatalf("Sort failed: %v", ids)
	}
	if got := Successor(ids, FromFloat(0.2)); got != FromFloat(0.4) {
		t.Errorf("Successor(0.2) = %v, want 0.4", got)
	}
	if got := Successor(ids, FromFloat(0.4)); got != FromFloat(0.4) {
		t.Errorf("Successor(0.4) = %v, want 0.4 (inclusive)", got)
	}
	if got := Successor(ids, FromFloat(0.9)); got != FromFloat(0.1) {
		t.Errorf("Successor(0.9) = %v, want wraparound to 0.1", got)
	}
}

func TestSuccessorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		ids := make([]ID, n)
		for i := range ids {
			ids[i] = ID(rng.Uint64())
		}
		Sort(ids)
		x := ID(rng.Uint64())
		s := Successor(ids, x)
		// No identifier lies strictly between x and s clockwise.
		for _, id := range ids {
			if id != s && Between(id, x, s) && x != s {
				t.Fatalf("Successor(%v) = %v but %v is closer clockwise", x, s, id)
			}
		}
	}
}

func TestStringFormat(t *testing.T) {
	if got := FromFloat(0.5).String(); got != "0.500000" {
		t.Errorf("String() = %q, want %q", got, "0.500000")
	}
}
