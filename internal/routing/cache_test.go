package routing

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/churn"
	"repro/internal/ident"
	"repro/internal/rechord"
)

// tablesEqual compares the Chord-visible content of two tables.
func tablesEqual(a, b *Table) bool {
	if a.Self != b.Self || a.HasSucc != b.HasSucc ||
		(a.HasSucc && a.Successor != b.Successor) || len(a.Fingers) != len(b.Fingers) {
		return false
	}
	for lvl, f := range a.Fingers {
		if b.Fingers[lvl] != f {
			return false
		}
	}
	return true
}

func TestRouteTablesMatchesConsistentHashing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw, ids, err := churn.StableNetwork(context.Background(), 64, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nw)
	for i := 0; i < 500; i++ {
		key := ident.ID(rng.Uint64())
		from := ids[rng.Intn(len(ids))]
		want, _ := Owner(nw, key)

		got, hops, err := RouteUncached(nw, from, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("RouteUncached(%s) = %s, want %s", key, got, want)
		}
		cgot, chops, err := cache.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if cgot != want {
			t.Fatalf("Cache.Route(%s) = %s, want %s", key, cgot, want)
		}
		if chops != hops {
			t.Fatalf("cached hops %d != uncached hops %d for key %s", chops, hops, key)
		}
		if hops > 20 {
			t.Fatalf("lookup took %d hops on a stable 64-peer network", hops)
		}
	}
}

// TestCacheNeverStaleUnderChurn steps a network through joins, leaves
// and failures and, after every single round, checks every cached
// table against a freshly derived TableOf: the epoch invalidation must
// make the two agree at all times, including mid-stabilization.
func TestCacheNeverStaleUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw, _, err := churn.StableNetwork(context.Background(), 24, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nw)
	checkAll := func(when string) {
		for _, id := range nw.Peers() {
			cached, err := cache.Table(id)
			if err != nil {
				t.Fatalf("%s: cache.Table(%s): %v", when, id, err)
			}
			fresh, err := TableOf(nw, id)
			if err != nil {
				t.Fatalf("%s: TableOf(%s): %v", when, id, err)
			}
			if !tablesEqual(cached, fresh) {
				t.Fatalf("%s: cache served a stale table for %s:\n  cached %+v\n  fresh  %+v",
					when, id, cached, fresh)
			}
		}
	}
	checkAll("stable")

	for _, ev := range churn.RandomEvents(nw, 6, rng) {
		switch ev.Kind {
		case "join":
			err = nw.Join(ev.ID, ev.Contact)
		case "leave":
			err = nw.Leave(ev.ID)
		case "fail":
			err = nw.Fail(ev.ID)
		}
		if err != nil {
			t.Fatal(err)
		}
		checkAll("after " + ev.Kind)
		for r := 0; r < 4000 && !nw.Quiescent(); r++ {
			nw.Step()
			checkAll(ev.Kind + " mid-stabilization")
		}
		if !nw.Quiescent() {
			t.Fatalf("network did not re-stabilize after %s", ev.Kind)
		}
	}
}

func TestCacheHitsWhenQuiescent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw, ids, err := churn.StableNetwork(context.Background(), 32, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nw)
	for _, id := range ids {
		if _, err := cache.Table(id); err != nil {
			t.Fatal(err)
		}
	}
	_, misses := cache.Stats()
	if int(misses) != len(ids) {
		t.Fatalf("first pass: %d misses, want %d", misses, len(ids))
	}
	// A quiescent network bumps no epochs: the second pass is all hits.
	for _, id := range ids {
		if _, err := cache.Table(id); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses2 := cache.Stats()
	if misses2 != misses || int(hits) != len(ids) {
		t.Fatalf("quiescent pass: hits=%d misses=%d, want hits=%d misses=%d",
			hits, misses2, len(ids), misses)
	}
}

func TestCachePruneDropsDepartedAndStale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nw, ids, err := churn.StableNetwork(context.Background(), 16, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nw)
	for _, id := range ids {
		if _, err := cache.Table(id); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != len(ids) {
		t.Fatalf("cache holds %d tables, want %d", cache.Len(), len(ids))
	}
	if err := nw.Fail(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Table(ids[0]); err == nil {
		t.Fatal("Table of a departed peer must error")
	}
	if dropped := cache.Prune(); dropped == 0 {
		t.Fatal("Prune dropped nothing after a failure")
	}
	if cache.Len() >= len(ids) {
		t.Fatalf("cache still holds %d tables after prune", cache.Len())
	}
}

// TestRouteTablesExhaustiveAllHomes routes a dense key grid from EVERY
// home peer and checks the table router against consistent hashing.
// The exhaustive home sweep is the regression guard for the
// wrap-crossing bug: a lookup whose home lies clockwise past its key
// strands at the top peer (linear rr leaves it successorless and its
// fingers are too coarse to name the first peers after zero) and used
// to terminate the descent at the global minimum's owner as if the key
// were a wrap-segment key, returning the wrong owner for keys that do
// have real peers below them.
func TestRouteTablesExhaustiveAllHomes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	nw, ids, err := churn.StableNetwork(context.Background(), 24, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nw)
	const grid = 256
	for i := 0; i < grid; i++ {
		key := ident.ID(uint64(i) << 56) // evenly spaced around the ring
		want, _ := Owner(nw, key)
		for _, from := range ids {
			got, _, err := cache.Route(from, key)
			if err != nil {
				t.Fatalf("key %s from %s: %v", key, from, err)
			}
			if got != want {
				t.Fatalf("key %s from %s: routed to %s, consistent hashing says %s", key, from, got, want)
			}
		}
	}
}
