package routing

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
)

// TableSource resolves a peer's current routing table. Both the cache
// and the uncached per-hop TableOf fit this shape, so RouteTables is
// the single lookup implementation benchmarked against itself.
type TableSource func(id ident.ID) (*Table, error)

// RouteTables performs a classic Chord lookup using only per-peer
// routing tables: at each peer, if the key falls in (self, successor]
// the successor owns it; otherwise the lookup forwards to the closest
// candidate preceding the key (the finger that bisects the remaining
// distance). On a stable network this is exactly Chord's O(log n)
// greedy routing over the fingers Theorem 1.1 guarantees. numPeers
// bounds the walk; hops counts inter-peer forwards.
//
// Tables extracted mid-stabilization can be incomplete (no successor
// yet) or stale (a finger naming a departed peer); both surface as an
// error, and callers that must survive churn fall back to the
// state-walk Route, which tolerates partially repaired state.
func RouteTables(tables TableSource, numPeers int, from, key ident.ID) (owner ident.ID, hops int, err error) {
	return routeTables(tables, numPeers, from, key, nil)
}

// RouteTablesTraced is RouteTables with a per-lookup trace: the
// visited path is recorded hop by hop, so obs.PathHops(tr.Path)
// always equals the returned hop count — the single definition both
// the table lookup and the state-walk Route report through (hops =
// inter-peer forwards; the terminal owner is known to, not forwarded
// by, the last visited peer). A nil trace is the untraced fast path.
func RouteTablesTraced(tables TableSource, numPeers int, from, key ident.ID, tr *obs.LookupTrace) (owner ident.ID, hops int, err error) {
	owner, hops, err = routeTables(tables, numPeers, from, key, tr)
	if tr != nil && err != nil {
		tr.Err = err.Error()
	}
	return owner, hops, err
}

func routeTables(tables TableSource, numPeers int, from, key ident.ID, tr *obs.LookupTrace) (owner ident.ID, hops int, err error) {
	cur := from
	if tr != nil {
		tr.From, tr.Key = from, key
		tr.Path = append(tr.Path[:0], from)
	}
	arrive := func(owner ident.ID) (ident.ID, int, error) {
		if tr != nil {
			tr.Owner = owner
		}
		return owner, hops, nil
	}
	forward := func(to ident.ID) {
		cur = to
		hops++
		if tr != nil {
			tr.Path = append(tr.Path, to)
		}
	}
	limit := 8*numPeers + 16
	// A lookup stranded in the top identifier segment — where rr, being
	// linear, leaves the uppermost peer without a successor — switches
	// to descent mode: hop along each table's MinKnown toward the
	// global minimum node. This mirrors Route's routeToGlobalMin on
	// raw state; the floor enforces strict monotone progress so a
	// mid-churn table cannot cycle the descent.
	//
	// Reaching the minimum node's owner does NOT yet decide the key: a
	// lookup whose home lies clockwise past its key must cross the zero
	// point, and it strands at the top exactly like a wrap-segment key
	// does, because the top peer's fingers are too coarse to name the
	// first peers after zero. So the first descent resumes greedy
	// routing from the minimum's owner (ascending toward the key
	// without wrapping again); only a lookup that strands a second time
	// has no real peer between zero and its key and belongs to the wrap
	// owner the descent recorded.
	descending := false
	wrapped := false       // a completed descent already crossed zero
	var wrapOwner ident.ID // owner recorded at the min node's owner
	floor := ^ident.ID(0)
	for iter := 0; iter <= limit; iter++ {
		if key == cur || numPeers == 1 {
			return arrive(cur)
		}
		t, err := tables(cur)
		if err != nil {
			return 0, hops, err
		}
		if t.HasWrap && ident.InRightHalfOpen(key, t.WrapFrom, t.WrapTo) {
			return arrive(t.WrapOwner)
		}
		// Termination on the successor interval applies in both modes: a
		// descent can land on the peer just below the key's owner (the
		// global minimum peer, when the key sits right above it).
		if t.HasSucc && ident.InRightHalfOpen(key, cur, t.Successor) {
			return arrive(t.Successor)
		}
		if !descending {
			var best ident.ID
			found := false
			for _, c := range t.hops {
				if c == key {
					// A candidate sitting exactly on the key owns it
					// (it is its own successor).
					return arrive(c)
				}
				if !ident.Between(c, cur, key) {
					continue
				}
				if !found || ident.Dist(cur, c) > ident.Dist(cur, best) {
					best, found = c, true
				}
			}
			if found {
				forward(best)
				continue
			}
			descending = true
		}
		if t.OwnsMinNode {
			if wrapped {
				return arrive(t.MinNodeOwner)
			}
			// First arrival at the zero point: record the wrap owner and
			// go back to greedy mode on this same peer's table.
			wrapped = true
			wrapOwner = t.MinNodeOwner
			descending = false
			continue
		}
		if wrapped {
			// Stranded again after crossing zero: no real peer lies
			// between zero and the key, so the key is in the wrap
			// segment and belongs to the owner recorded there.
			return arrive(wrapOwner)
		}
		if t.MinKnownOwner != cur && t.MinKnownID < floor {
			floor = t.MinKnownID
			forward(t.MinKnownOwner)
			continue
		}
		// A correct table always lets the lookup either terminate or
		// make progress; reaching here means the table is still being
		// repaired.
		return 0, hops, fmt.Errorf("routing: no progress from %s toward %s", cur, key)
	}
	return 0, hops, fmt.Errorf("routing: table lookup for %s exceeded %d hops", key, limit)
}

// RouteUncached is the baseline table lookup: every hop re-derives the
// peer's table from its Re-Chord state via TableOf. It exists to be
// measured against Cache.Route (see BenchmarkTableLookup).
func RouteUncached(nw *rechord.Network, from, key ident.ID) (ident.ID, int, error) {
	return RouteTables(func(id ident.ID) (*Table, error) { return TableOf(nw, id) }, nw.NumPeers(), from, key)
}

type cacheEntry struct {
	gen   uint32 // incarnation the table was built for
	epoch int
	table *Table
}

// Cache memoizes per-peer routing tables and invalidates them through
// the network's change epochs instead of rebuilding per lookup: a
// cached table is served only while rechord.Network.PeerEpoch still
// returns the epoch the table was derived under. On a quiescent
// network every epoch is stable, so lookups stop touching Re-Chord
// state entirely; after churn, exactly the peers whose state the
// re-stabilization rewrote are rebuilt.
//
// Storage is a dense slot-indexed slice, addressed by the network's
// interner slot for the peer (rechord.Network.PeerSlot) rather than an
// id-keyed map: a lookup is a slice index plus a generation check, and
// the cache's footprint is one entry per slot ever used. The entry's
// generation guards slot reuse — a table built for one incarnation is
// never served to a later tenant of the same slot.
//
// The cache itself is safe for concurrent use. Reads of the underlying
// network are NOT synchronized here: callers that interleave lookups
// with Step/Join/Leave/Fail must serialize them externally (readers
// share, mutators exclude — see internal/workload for the pattern).
type Cache struct {
	nw *rechord.Network

	mu    sync.RWMutex
	slots []cacheEntry

	hits, misses atomic.Uint64
	// invalidations counts cached tables found stale at lookup time —
	// the entry existed but its peer's generation or change epoch had
	// moved. It is the churn-pressure signal: misses on never-cached
	// slots are warmup, invalidations are rebuild work the network's
	// mutations forced.
	invalidations atomic.Uint64
}

// NewCache creates an empty cache over the network.
func NewCache(nw *rechord.Network) *Cache {
	return &Cache{nw: nw, slots: make([]cacheEntry, nw.SlotSpan())}
}

// Table returns the peer's current routing table, rebuilding it only
// when the peer's change epoch moved since the cached copy was built.
// The returned table is shared and must not be mutated.
func (c *Cache) Table(id ident.ID) (*Table, error) {
	t, _, err := c.table(id)
	return t, err
}

// table is Table plus whether the fetch was served from the cache,
// for per-lookup trace attribution.
func (c *Cache) table(id ident.ID) (*Table, bool, error) {
	slot, gen, epoch, ok := c.nw.PeerSlotEpoch(id)
	if !ok {
		return nil, false, fmt.Errorf("routing: unknown peer %s", id)
	}
	c.mu.RLock()
	var e cacheEntry
	if slot < len(c.slots) {
		e = c.slots[slot]
	}
	c.mu.RUnlock()
	if e.table != nil {
		if e.gen == gen && e.epoch == epoch {
			c.hits.Add(1)
			return e.table, true, nil
		}
		c.invalidations.Add(1)
	}
	t, err := TableOf(c.nw, id)
	if err != nil {
		return nil, false, err
	}
	c.misses.Add(1)
	c.mu.Lock()
	for slot >= len(c.slots) {
		c.slots = append(c.slots, cacheEntry{})
	}
	c.slots[slot] = cacheEntry{gen: gen, epoch: epoch, table: t}
	c.mu.Unlock()
	return t, false, nil
}

// Route performs a table-based Chord lookup through the cache.
func (c *Cache) Route(from, key ident.ID) (owner ident.ID, hops int, err error) {
	return RouteTables(c.Table, c.nw.NumPeers(), from, key)
}

// RouteTraced is Route with a per-lookup trace: besides the visited
// path, every table fetch along the lookup is attributed to the trace
// as a cache hit or miss.
func (c *Cache) RouteTraced(from, key ident.ID, tr *obs.LookupTrace) (owner ident.ID, hops int, err error) {
	if tr == nil {
		return c.Route(from, key)
	}
	src := func(id ident.ID) (*Table, error) {
		t, hit, err := c.table(id)
		if err == nil {
			if hit {
				tr.CacheHits++
			} else {
				tr.CacheMisses++
			}
		}
		return t, err
	}
	return RouteTablesTraced(src, c.nw.NumPeers(), from, key, tr)
}

// Resolve is Route under the name the DHT's resolver plug expects.
func (c *Cache) Resolve(from, key ident.ID) (owner ident.ID, hops int, err error) {
	return c.Route(from, key)
}

// Prune drops entries for peers that have departed (their slot's
// generation moved on) or whose epoch moved, bounding the live tables
// under sustained churn. It returns how many entries were dropped.
func (c *Cache) Prune() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for slot := range c.slots {
		e := &c.slots[slot]
		if e.table == nil {
			continue
		}
		cur, gen, epoch, ok := c.nw.PeerSlotEpoch(e.table.Self)
		if !ok || cur != slot || gen != e.gen || epoch != e.epoch {
			*e = cacheEntry{}
			dropped++
		}
	}
	return dropped
}

// Len returns the number of cached tables.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for i := range c.slots {
		if c.slots[i].table != nil {
			n++
		}
	}
	return n
}

// Stats returns the hit/miss counters since creation.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Invalidations returns how many cached tables were found stale at
// lookup time since creation (a subset of the misses).
func (c *Cache) Invalidations() uint64 {
	return c.invalidations.Load()
}

// Walker adapts the state-walk Route (which hops along raw Re-Chord
// edges and tolerates mid-stabilization state) to the same Resolve
// shape as Cache, so the DHT and the workload engine can swap between
// them.
type Walker struct {
	NW *rechord.Network
}

// Resolve routes from the home peer to the key's owner, returning the
// number of inter-peer hops (obs.PathHops of the walk's visited path
// — the same definition RouteTables counts directly).
func (w Walker) Resolve(from, key ident.ID) (owner ident.ID, hops int, err error) {
	return w.ResolveTraced(from, key, nil)
}

// ResolveTraced is Resolve with a per-lookup trace carrying the
// visited path. The state walk never consults the table cache, so the
// trace's cache counters stay zero.
func (w Walker) ResolveTraced(from, key ident.ID, tr *obs.LookupTrace) (owner ident.ID, hops int, err error) {
	owner, path, routeErr := Route(w.NW, from, key)
	if tr != nil {
		tr.From, tr.Key, tr.Owner = from, key, owner
		tr.Path = append(tr.Path[:0], path...)
		if routeErr != nil {
			tr.Err = routeErr.Error()
		}
	}
	hops = obs.PathHops(path)
	if routeErr != nil {
		return 0, hops, routeErr
	}
	return owner, hops, nil
}
