// Package routing emulates Chord on top of a stabilized Re-Chord
// network, demonstrating the paper's claim that "the final state of
// Re-Chord contains Chord as a subgraph, so it can faithfully emulate
// any applications on top of Chord" (Theorem 1.1).
//
// A real node's routing table is derived purely from its own Re-Chord
// state: for every virtual node u_i, the closest right real neighbor
// rr(u_i) is exactly Chord's finger p_i(u) (the first real node
// clockwise of u + 1/2^i), and rr(u_0) is the Chord successor.
package routing

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
)

// Table is one peer's Chord view extracted from its Re-Chord state.
type Table struct {
	Self ident.ID
	// Successor is the first real node clockwise (rr of the real
	// node).
	Successor ident.ID
	HasSucc   bool
	// Fingers maps level i to rr(u_i), the peer following self+1/2^i.
	Fingers map[int]ident.ID

	// Wrap captures the ring-closing rule when this peer owns the
	// globally smallest node v: v has no left unmarked neighbor and a
	// ring edge to the globally largest node t, so the wrap segment
	// (t, v] contains no node at all and its keys belong to WrapOwner
	// (v's peer when v is real, else v's closest right real). Only the
	// global minimum node's owner has it set.
	WrapOwner        ident.ID
	WrapFrom, WrapTo ident.ID
	HasWrap          bool

	// OwnsMinNode marks the peer that owns the globally smallest node
	// (no unmarked neighbor to its left), whether or not the ring edge
	// needed for the interval rule above is present; MinNodeOwner is
	// the peer answering for that node. A descent terminates here
	// unconditionally — any key stranded above every real peer belongs
	// to the global minimum's closest right real (Route's
	// routeToGlobalMin does exactly this on raw state).
	MinNodeOwner ident.ID
	OwnsMinNode  bool

	// MinKnown is the smallest-identifier node this peer knows (own
	// virtual nodes, unmarked and ring neighbors, closest left reals)
	// and its owner. Lookups stranded in the top identifier segment —
	// where rr, being linear, is undefined — descend along MinKnown
	// hops toward the global minimum node, exactly the monotone
	// descent Route performs on raw state.
	MinKnownID    ident.ID
	MinKnownOwner ident.ID

	// hops is the deduplicated union of successor and fingers, the
	// candidate next-hop set table-based routing scans.
	hops []ident.ID
}

// TableOf extracts the routing table of the peer. The network should
// be stable for the table to equal Chord's.
func TableOf(nw *rechord.Network, id ident.ID) (*Table, error) {
	n := nw.Peer(id)
	if n == nil {
		return nil, fmt.Errorf("routing: unknown peer %s", id)
	}
	t := &Table{Self: id, Fingers: make(map[int]ident.ID)}
	for _, lvl := range n.Levels() {
		v := n.VNode(lvl)
		if !v.HasRR {
			// A virtual node in the top of the identifier space has no
			// real node linearly to its right; Chord's corresponding
			// finger wraps to the smallest peer, which is covered by
			// the wrapped deeper virtual nodes below.
			continue
		}
		if lvl != 0 {
			t.Fingers[lvl] = v.RR.Owner
		}
	}
	// The Chord successor is rr(u_m): in the stable state the deepest
	// virtual node lies strictly between the peer and its clockwise
	// successor — including across the 1.0 wraparound, where u_m is a
	// wrapped identifier just below the successor.
	if um := n.VNode(n.MaxLevel()); um != nil && um.HasRR {
		t.Successor = um.RR.Owner
		t.HasSucc = true
	} else if u0 := n.VNode(0); u0 != nil && u0.HasRR {
		t.Successor = u0.RR.Owner
		t.HasSucc = true
	}
	// Wrap rule and descent hop (see the field docs): both are read off
	// the peer's own state only, like everything else in the table.
	t.MinKnownID, t.MinKnownOwner = id, id
	for _, lvl := range n.Levels() {
		v := n.VNode(lvl)
		vpos := v.Self.ID()
		if own, ok := globalMinOwner(v); ok {
			if _, hasLeft := v.Nu.MaxBelow(vpos); !hasLeft {
				t.MinNodeOwner, t.OwnsMinNode = own, true
				for _, r := range v.Nr.Slice() {
					if r.ID() > vpos {
						t.WrapFrom, t.WrapTo = r.ID(), vpos
						t.WrapOwner, t.HasWrap = own, true
					}
				}
			}
		}
		consider := func(y ref.Ref) {
			if y.ID() < t.MinKnownID {
				t.MinKnownID, t.MinKnownOwner = y.ID(), y.Owner
			}
		}
		consider(v.Self)
		for _, y := range v.Nu.Slice() {
			consider(y)
		}
		for _, y := range v.Nr.Slice() {
			consider(y)
		}
		if v.HasRL {
			consider(v.RL)
		}
	}
	t.buildHops()
	return t, nil
}

// buildHops precomputes the deduplicated candidate next-hop set so
// table-based routing pays the collection cost once per table build,
// not once per hop.
func (t *Table) buildHops() {
	seen := make(map[ident.ID]bool, len(t.Fingers)+1)
	t.hops = t.hops[:0]
	if t.HasSucc && t.Successor != t.Self {
		seen[t.Successor] = true
		t.hops = append(t.hops, t.Successor)
	}
	for _, f := range t.Fingers {
		if f != t.Self && !seen[f] {
			seen[f] = true
			t.hops = append(t.hops, f)
		}
	}
}

// NextHops returns the peers the table can forward to (successor plus
// fingers, deduplicated).
func (t *Table) NextHops() []ident.ID { return t.hops }

// Route performs a Chord-style lookup for key starting at from,
// hopping only along edges present in the Re-Chord state (a hop is a
// move to a different peer; a peer consults all of the virtual nodes
// it simulates, including moving the lookup onto one of its own
// wrapped virtual nodes, for free). It returns the peer responsible
// for the key (its ring successor) and the path of peers visited, of
// length O(log n) on a stable network.
//
// Termination rules, both locally checkable and globally sound on a
// stable network:
//
//   - key in (v, rr(v)]: rr(v) is the first real node linearly above
//     v, so no real node lies strictly between — rr(v) owns the key.
//   - v has no left neighbor (v is the global minimum node) and holds
//     a ring edge to t > v (the global maximum): the wrap segment
//     (t, v] contains no node at all, so keys there belong to rr(v).
//
// When the lookup sits in the top identifier segment with no real node
// linearly above (rr undefined), the owner is the globally smallest
// real node, and the lookup descends along ring edges and minimum
// known nodes to the global minimum, whose rr is exactly that peer.
func Route(nw *rechord.Network, from ident.ID, key ident.ID) (owner ident.ID, path []ident.ID, err error) {
	if nw.Peer(from) == nil {
		return 0, nil, fmt.Errorf("routing: unknown peer %s", from)
	}
	if nw.NumPeers() == 1 {
		return from, []ident.ID{from}, nil
	}
	if key == from {
		return from, []ident.ID{from}, nil
	}
	peer := from
	pos := from // position of the node the lookup currently sits at
	path = []ident.ID{from}
	limit := 8*nw.NumPeers() + 16

	terminate := func(n *rechord.RealNode) (ident.ID, bool) {
		for _, lvl := range n.Levels() {
			v := n.VNode(lvl)
			vpos := v.Self.ID()
			if v.HasRR && ident.InRightHalfOpen(key, vpos, v.RR.ID()) {
				return v.RR.Owner, true
			}
			// Wrap rule at the global minimum node: nothing lies in
			// (t, v], so keys there belong to v itself if it is real,
			// otherwise to the first real above it.
			if own, ok := globalMinOwner(v); ok {
				if _, hasLeft := v.Nu.MaxBelow(vpos); !hasLeft {
					for _, t := range v.Nr.Slice() {
						if t.ID() > vpos && ident.InRightHalfOpen(key, t.ID(), vpos) {
							return own, true
						}
					}
				}
			}
		}
		return 0, false
	}

	for iter := 0; iter <= limit; iter++ {
		n := nw.Peer(peer)
		if n == nil {
			// A stale edge forwarded the walk to a departed peer: the
			// state is mid-repair and this lookup cannot complete. An
			// error (not a panic) lets callers retry or fall back.
			return 0, path, fmt.Errorf("routing: walk reached departed peer %s", peer)
		}
		if own, ok := terminate(n); ok {
			return own, path, nil
		}
		// Greedy step over everything the peer knows, including its
		// own sibling virtual nodes (free intra-peer moves).
		var best ref.Ref
		bestOK := false
		consider := func(y ref.Ref) {
			if y.ID() == pos {
				return
			}
			if !ident.Between(y.ID(), pos, key) && y.ID() != key {
				return
			}
			if !bestOK || ident.Dist(pos, y.ID()) > ident.Dist(pos, best.ID()) {
				best, bestOK = y, true
			}
		}
		for _, lvl := range n.Levels() {
			v := n.VNode(lvl)
			consider(v.Self)
			for _, y := range v.Nu.Slice() {
				consider(y)
			}
			for _, y := range v.Nr.Slice() {
				consider(y)
			}
			if v.HasRL {
				consider(v.RL)
			}
			if v.HasRR {
				consider(v.RR)
			}
		}
		if bestOK {
			pos = best.ID()
			if best.Owner != peer {
				peer = best.Owner
				path = append(path, peer)
			}
			continue
		}
		// Stuck: on a stable network this means the current position
		// lies in the top segment (no real node linearly above), so
		// the key belongs to the globally smallest real node. Descend
		// to the global minimum node, whose rr names that peer.
		return routeToGlobalMin(nw, peer, pos, path, limit-iter)
	}
	return 0, path, fmt.Errorf("routing: lookup for %s exceeded %d steps", key, limit)
}

// routeToGlobalMin walks from the given position to the global minimum
// node by always moving to the smallest node the current peer knows
// (the same monotone descent ring-edge forwarding uses), and returns
// that node's closest right real — the globally smallest peer.
func routeToGlobalMin(nw *rechord.Network, peer ident.ID, pos ident.ID, path []ident.ID, budget int) (ident.ID, []ident.ID, error) {
	for iter := 0; iter <= budget+len(path)*2+8; iter++ {
		n := nw.Peer(peer)
		if n == nil {
			return 0, path, fmt.Errorf("routing: descent reached departed peer %s", peer)
		}
		var best ref.Ref
		bestOK := false
		for _, lvl := range n.Levels() {
			v := n.VNode(lvl)
			vpos := v.Self.ID()
			if own, ok := globalMinOwner(v); ok {
				if _, hasLeft := v.Nu.MaxBelow(vpos); !hasLeft {
					// v is the global minimum node: the smallest real
					// peer is v itself or its closest right real.
					return own, path, nil
				}
			}
			consider := func(y ref.Ref) {
				if y.ID() >= pos {
					return
				}
				if !bestOK || y.ID() < best.ID() {
					best, bestOK = y, true
				}
			}
			consider(v.Self)
			for _, y := range v.Nu.Slice() {
				consider(y)
			}
			for _, y := range v.Nr.Slice() {
				consider(y)
			}
			if v.HasRL {
				consider(v.RL)
			}
		}
		if !bestOK {
			return 0, path, fmt.Errorf("routing: descent stuck at peer %s (pos %s)", peer, pos)
		}
		pos = best.ID()
		if best.Owner != peer {
			peer = best.Owner
			path = append(path, peer)
		}
	}
	return 0, path, fmt.Errorf("routing: descent did not reach the global minimum")
}

// globalMinOwner returns the peer that owns all keys at or below the
// node v, assuming v is the global minimum node: v's own peer when v
// is real, else v's closest right real.
func globalMinOwner(v *rechord.VNode) (ident.ID, bool) {
	if v.Self.IsReal() {
		return v.Self.Owner, true
	}
	if v.HasRR {
		return v.RR.Owner, true
	}
	return 0, false
}

// Owner returns the peer responsible for the key: its clockwise
// successor among all peers. This is the consistent-hashing contract
// the DHT builds on.
func Owner(nw *rechord.Network, key ident.ID) (ident.ID, error) {
	peers := nw.Peers()
	if len(peers) == 0 {
		return 0, fmt.Errorf("routing: empty network")
	}
	return ident.Successor(peers, key), nil
}
