package routing

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/churn"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
)

// TestHopAccountingUnified pins the one hop definition every layer
// reports through: the table lookup's forward counter, the traced
// path's obs.PathHops, and the state walk's path-based count must all
// agree on a stable network — a hop is an inter-peer forward, and the
// terminal owner is known to (not forwarded by) the last visited
// peer.
func TestHopAccountingUnified(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw, ids, err := churn.StableNetwork(context.Background(), 96, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nw)
	walker := Walker{NW: nw}
	tr := &obs.LookupTrace{}
	for i := 0; i < 400; i++ {
		key := ident.ID(rng.Uint64())
		from := ids[rng.Intn(len(ids))]
		want, _ := Owner(nw, key)

		*tr = obs.LookupTrace{Path: tr.Path[:0]}
		owner, hops, err := cache.RouteTraced(from, key, tr)
		if err != nil {
			t.Fatal(err)
		}
		if owner != want {
			t.Fatalf("RouteTraced(%s) = %s, want %s", key, owner, want)
		}
		if tr.Owner != owner || tr.From != from || tr.Key != key {
			t.Fatalf("trace endpoints %+v do not match lookup (%s -> %s, owner %s)", tr, from, key, owner)
		}
		if got := tr.Hops(); got != hops {
			t.Fatalf("PathHops(trace path) = %d, RouteTables hops = %d (path %v)", got, hops, tr.Path)
		}
		if len(tr.Path) == 0 || tr.Path[0] != from {
			t.Fatalf("trace path %v does not start at %s", tr.Path, from)
		}
		if tr.CacheHits+tr.CacheMisses == 0 {
			t.Fatal("traced lookup attributed no table fetches")
		}

		wtr := &obs.LookupTrace{}
		wowner, whops, err := walker.ResolveTraced(from, key, wtr)
		if err != nil {
			t.Fatal(err)
		}
		if wowner != want {
			t.Fatalf("walker owner %s, want %s", wowner, want)
		}
		if got := wtr.Hops(); got != whops {
			t.Fatalf("walker PathHops = %d, Resolve hops = %d", got, whops)
		}
	}
	if inv := cache.Invalidations(); inv != 0 {
		t.Fatalf("stable network produced %d cache invalidations", inv)
	}
}

// TestCacheInvalidationsCounted pins the invalidation counter: a
// cached table whose peer's epoch moved is counted once when the
// stale entry is found, and the rebuilt table serves hits again.
func TestCacheInvalidationsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nw, ids, err := churn.StableNetwork(context.Background(), 32, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nw)
	for _, id := range ids {
		if _, err := cache.Table(id); err != nil {
			t.Fatal(err)
		}
	}
	if inv := cache.Invalidations(); inv != 0 {
		t.Fatalf("warmup misses counted as invalidations (%d)", inv)
	}
	// Fail a peer and re-stabilize: the repair rewrites its neighbors'
	// state (and epochs), so at least those cached tables must be
	// detected stale on the next fetch.
	if err := nw.Fail(ids[1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500 && !nw.Quiescent(); i++ {
		nw.Step()
	}
	if !nw.Quiescent() {
		t.Fatal("network did not re-stabilize")
	}
	for _, id := range nw.Peers() {
		if _, err := cache.Table(id); err != nil {
			t.Fatal(err)
		}
	}
	inv := cache.Invalidations()
	if inv == 0 {
		t.Fatal("churn repair produced no cache invalidations")
	}
	// Rebuilt tables serve hits again: a second sweep adds no misses.
	_, misses0 := cache.Stats()
	for _, id := range nw.Peers() {
		if _, err := cache.Table(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, misses := cache.Stats(); misses != misses0 {
		t.Fatal("rebuilt tables did not serve hits")
	}
	if got := cache.Invalidations(); got != inv {
		t.Fatalf("hit sweep moved the invalidation counter (%d -> %d)", inv, got)
	}
}
