package routing

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/churn"
	"repro/internal/ident"
	"repro/internal/rechord"
)

// TestWrapKeysOwnedBySmallestPeer: keys above the largest peer wrap to
// the smallest peer; the route must cross the 1.0 boundary through the
// ring-edge machinery regardless of the start peer.
func TestWrapKeysOwnedBySmallestPeer(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nw, ids, err := churn.StableNetwork(context.Background(), 32, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]ident.ID(nil), ids...)
	ident.Sort(sorted)
	smallest, largest := sorted[0], sorted[len(sorted)-1]
	// Keys strictly above the largest peer, including the extreme top
	// of the space.
	keys := []ident.ID{
		largest + 1,
		largest + (0-largest)/2, // midway to the wrap
		^ident.ID(0),            // the very top
	}
	// Keys strictly below the smallest peer also belong to it.
	if smallest > 1 {
		keys = append(keys, smallest-1, smallest/2, 1)
	}
	for _, key := range keys {
		for _, from := range []ident.ID{smallest, largest, sorted[len(sorted)/2]} {
			got, path, err := Route(nw, from, key)
			if err != nil {
				t.Fatalf("Route(%s from %s): %v (path %v)", key, from, err, path)
			}
			if got != smallest {
				t.Fatalf("Route(%s from %s) = %s, want smallest peer %s (path %v)",
					key, from, got, smallest, path)
			}
		}
	}
}

// TestExhaustiveOwnersSmallNetwork routes a dense grid of keys on a
// small network and cross-checks every owner against the
// consistent-hashing oracle.
func TestExhaustiveOwnersSmallNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	nw, ids, err := churn.StableNetwork(context.Background(), 9, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const grid = 512
	for i := 0; i < grid; i++ {
		key := ident.ID(uint64(i) << 55) // evenly spaced around the ring
		want, _ := Owner(nw, key)
		got, path, err := Route(nw, ids[i%len(ids)], key)
		if err != nil {
			t.Fatalf("key %s: %v (path %v)", key, err, path)
		}
		if got != want {
			t.Fatalf("key %s: got %s, want %s (path %v)", key, got, want, path)
		}
	}
}

// TestRouteAfterChurn: routing stays correct on the re-stabilized
// network after joins and failures.
func TestRouteAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	nw, ids, err := churn.StableNetwork(context.Background(), 20, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	events := []churn.Event{
		{Kind: "join", ID: ident.ID(rng.Uint64() | 1), Contact: ids[2]},
		{Kind: "fail", ID: ids[5]},
		{Kind: "leave", ID: ids[11]},
	}
	if _, err := churn.RunSequence(context.Background(), nw, events, 0); err != nil {
		t.Fatal(err)
	}
	peers := nw.Peers()
	for trial := 0; trial < 100; trial++ {
		key := ident.ID(rng.Uint64())
		want, _ := Owner(nw, key)
		got, _, err := Route(nw, peers[rng.Intn(len(peers))], key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-churn lookup(%s) = %s, want %s", key, got, want)
		}
	}
}
