package routing

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/churn"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/sim"
)

func stable(t *testing.T, n int, seed int64) (*rechord.Network, []ident.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw, ids, err := churn.StableNetwork(context.Background(), n, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nw, ids
}

func TestTableMatchesChordFingers(t *testing.T) {
	nw, ids := stable(t, 40, 1)
	sorted := append([]ident.ID(nil), ids...)
	ident.Sort(sorted)
	for _, id := range ids {
		tab, err := TableOf(nw, id)
		if err != nil {
			t.Fatal(err)
		}
		wantSucc := sorted[(idxOf(sorted, id)+1)%len(sorted)]
		if !tab.HasSucc || tab.Successor != wantSucc {
			t.Fatalf("peer %s: successor = %v(%v), want %s", id, tab.Successor, tab.HasSucc, wantSucc)
		}
		n := nw.Peer(id)
		for _, lvl := range n.Levels() {
			if lvl == 0 {
				continue
			}
			want := ident.Successor(sorted, ident.Sibling(id, lvl))
			if f, ok := tab.Fingers[lvl]; ok {
				if f != want {
					t.Errorf("peer %s finger %d = %s, want %s", id, lvl, f, want)
				}
			} else if want > ident.Sibling(id, lvl) {
				// A finger may only be absent when Chord's definition
				// wraps (no real node linearly above the virtual node).
				t.Errorf("peer %s finger %d missing but target %s has linear successor %s",
					id, lvl, ident.Sibling(id, lvl), want)
			}
		}
	}
}

func idxOf(sorted []ident.ID, id ident.ID) int {
	for i, x := range sorted {
		if x == id {
			return i
		}
	}
	return -1
}

func TestRouteFindsOwner(t *testing.T) {
	nw, ids := stable(t, 40, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		key := ident.ID(rng.Uint64())
		want, err := Owner(nw, key)
		if err != nil {
			t.Fatal(err)
		}
		got, path, err := Route(nw, ids[rng.Intn(len(ids))], key)
		if err != nil {
			t.Fatalf("route: %v (path %v)", err, path)
		}
		if got != want {
			t.Fatalf("Route(%s) = %s, want %s", key, got, want)
		}
	}
}

func TestRouteLogarithmicHops(t *testing.T) {
	nw, ids := stable(t, 96, 4)
	rng := rand.New(rand.NewSource(5))
	total, trials := 0, 300
	for i := 0; i < trials; i++ {
		_, path, err := Route(nw, ids[rng.Intn(len(ids))], ident.ID(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		total += len(path)
	}
	mean := float64(total) / float64(trials)
	if bound := 3 * math.Log2(96); mean > bound {
		t.Errorf("mean path length %.2f exceeds 3 log2 n = %.2f", mean, bound)
	}
	t.Logf("mean path length n=96: %.2f", mean)
}

func TestRouteSelfKey(t *testing.T) {
	nw, ids := stable(t, 10, 6)
	// A key equal to a peer's id is owned by that peer.
	got, _, err := Route(nw, ids[3], ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != ids[0] {
		t.Errorf("Route to existing id = %s, want %s", got, ids[0])
	}
}

func TestSingletonNetwork(t *testing.T) {
	nw, ids := stable(t, 1, 7)
	got, _, err := Route(nw, ids[0], ident.ID(12345))
	if err != nil {
		t.Fatal(err)
	}
	if got != ids[0] {
		t.Errorf("singleton route = %s, want %s", got, ids[0])
	}
}

func TestTableOfUnknownPeer(t *testing.T) {
	nw, _ := stable(t, 5, 8)
	if _, err := TableOf(nw, ident.ID(424242)); err == nil {
		t.Error("TableOf on unknown peer must error")
	}
	if _, _, err := Route(nw, ident.ID(424242), ident.ID(1)); err == nil {
		t.Error("Route from unknown peer must error")
	}
}

func TestOwnerEmptyNetwork(t *testing.T) {
	nw := rechord.NewNetwork(rechord.Config{})
	if _, err := Owner(nw, ident.ID(1)); err == nil {
		t.Error("Owner on empty network must error")
	}
}

// TestRouteSurvivesDanglingReferences: immediately after a crash
// failure (before any repair round) other peers still hold edges to
// the departed peer, and a walk can be forwarded into it. The walk
// must surface a routing error, never dereference the missing peer.
// After re-stabilization every lookup must succeed again.
func TestRouteSurvivesDanglingReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	nw, ids, err := churn.StableNetwork(context.Background(), 16, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, victim := range []ident.ID{ids[3], ids[9], ids[14]} {
		if err := nw.Fail(victim); err != nil {
			t.Fatal(err)
		}
	}
	alive := nw.Peers()
	for i := 0; i < 64; i++ {
		key := ident.ID(rng.Uint64())
		for _, from := range alive {
			// Errors are legal mid-repair; panics are not.
			_, _, _ = Route(nw, from, key)
		}
	}
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		key := ident.ID(rng.Uint64())
		want, _ := Owner(nw, key)
		got, _, err := Route(nw, alive[i%len(alive)], key)
		if err != nil {
			t.Fatalf("route %s after repair: %v", key, err)
		}
		if got != want {
			t.Fatalf("route %s after repair = %s, want %s", key, got, want)
		}
	}
}
