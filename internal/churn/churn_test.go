package churn

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/rechord"
)

func TestStableNetworkIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw, ids, err := StableNetwork(context.Background(), 20, rng, rechord.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPeers() != 20 || len(ids) != 20 {
		t.Fatalf("got %d peers, want 20", nw.NumPeers())
	}
	if err := VerifyStable(nw); err != nil {
		t.Fatal(err)
	}
}

func TestJoinRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nw, ids, err := StableNetwork(context.Background(), 25, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	newID := ident.ID(rng.Uint64() | 1)
	rec, err := Apply(context.Background(), nw, Event{Kind: "join", ID: newID, Contact: ids[rng.Intn(len(ids))]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Stable {
		t.Fatal("network did not re-stabilize after join")
	}
	if err := VerifyStable(nw); err != nil {
		t.Fatalf("wrong state after join: %v", err)
	}
	t.Logf("join absorbed in %d rounds", rec.Rounds)
}

func TestJoinSmallerAndLargerContact(t *testing.T) {
	// Section 4.1 distinguishes joining via a smaller vs. a larger
	// peer; both must work.
	rng := rand.New(rand.NewSource(3))
	nw, ids, err := StableNetwork(context.Background(), 15, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]ident.ID(nil), ids...)
	ident.Sort(sorted)
	// New peer in the middle, contacting the smallest peer (contact <
	// joiner) — then another contacting the largest (contact > joiner).
	mid := sorted[len(sorted)/2] + (sorted[len(sorted)/2+1]-sorted[len(sorted)/2])/2
	for i, contact := range []ident.ID{sorted[0], sorted[len(sorted)-1]} {
		id := mid + ident.ID(i+1)
		rec, err := Apply(context.Background(), nw, Event{Kind: "join", ID: id, Contact: contact}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Stable {
			t.Fatalf("join %d did not re-stabilize", i)
		}
		if err := VerifyStable(nw); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
}

func TestLeaveRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nw, ids, err := StableNetwork(context.Background(), 25, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Apply(context.Background(), nw, Event{Kind: "leave", ID: ids[rng.Intn(len(ids))]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Stable {
		t.Fatal("network did not re-stabilize after leave")
	}
	if err := VerifyStable(nw); err != nil {
		t.Fatalf("wrong state after leave: %v", err)
	}
	t.Logf("leave absorbed in %d rounds", rec.Rounds)
}

func TestFailRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nw, ids, err := StableNetwork(context.Background(), 25, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Apply(context.Background(), nw, Event{Kind: "fail", ID: ids[rng.Intn(len(ids))]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Stable {
		t.Fatal("network did not re-stabilize after failure")
	}
	if err := VerifyStable(nw); err != nil {
		t.Fatalf("wrong state after failure: %v", err)
	}
}

func TestFailExtremePeers(t *testing.T) {
	// Failing the global minimum or maximum peer breaks both ring
	// edges at once — the hardest single failure.
	for trial, pick := range []string{"min", "max"} {
		rng := rand.New(rand.NewSource(int64(60 + trial)))
		nw, ids, err := StableNetwork(context.Background(), 15, rng, rechord.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]ident.ID(nil), ids...)
		ident.Sort(sorted)
		victim := sorted[0]
		if pick == "max" {
			victim = sorted[len(sorted)-1]
		}
		rec, err := Apply(context.Background(), nw, Event{Kind: "fail", ID: victim}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Stable {
			t.Fatalf("network did not re-stabilize after failing %s peer", pick)
		}
		if err := VerifyStable(nw); err != nil {
			t.Fatalf("failing %s peer: %v", pick, err)
		}
	}
}

func TestRandomChurnSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nw, _, err := StableNetwork(context.Background(), 12, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	events := RandomEvents(nw, 10, rng)
	recs, err := RunSequence(context.Background(), nw, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(events) {
		t.Fatalf("got %d recoveries for %d events", len(recs), len(events))
	}
}

func TestApplyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw, ids, err := StableNetwork(context.Background(), 5, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(context.Background(), nw, Event{Kind: "bogus"}, 1); err == nil {
		t.Error("unknown event kind must error")
	}
	if _, err := Apply(context.Background(), nw, Event{Kind: "join", ID: ids[0], Contact: ids[1]}, 1); err == nil {
		t.Error("joining an existing id must error")
	}
	if _, err := Apply(context.Background(), nw, Event{Kind: "leave", ID: ident.ID(12345)}, 1); err == nil {
		t.Error("leaving an absent id must error")
	}
	if _, err := Apply(context.Background(), nw, Event{Kind: "fail", ID: ident.ID(12345)}, 1); err == nil {
		t.Error("failing an absent id must error")
	}
}

func TestConcurrentJoins(t *testing.T) {
	// Two peers joining in the same round — beyond the paper's
	// "isolated join" analysis but the protocol must still converge.
	rng := rand.New(rand.NewSource(8))
	nw, ids, err := StableNetwork(context.Background(), 10, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := ident.ID(rng.Uint64()|1), ident.ID(rng.Uint64()|1)
	if err := nw.Join(a, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := nw.Join(b, ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	rec, err := Apply(context.Background(), nw, Event{Kind: "join", ID: ident.ID(rng.Uint64() | 1), Contact: a}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Stable {
		t.Fatal("no fixed point after concurrent joins")
	}
	if err := VerifyStable(nw); err != nil {
		t.Fatalf("wrong state after concurrent joins: %v", err)
	}
}
