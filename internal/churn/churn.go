// Package churn drives join/leave/failure workloads against stable
// Re-Chord networks and measures recovery, reproducing the claims of
// Section 4: isolated joins re-stabilize in O(log^2 n) rounds
// (Theorem 4.1) and leaves/failures in O(log n) rounds (Theorem 4.2).
package churn

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// Event is one membership change.
type Event struct {
	// Kind is "join", "leave" or "fail".
	Kind string
	// ID is the peer joining or departing.
	ID ident.ID
	// Contact is the peer a joiner connects to (unused otherwise).
	Contact ident.ID
}

// Recovery reports how a single event was absorbed.
type Recovery struct {
	Event  Event
	Rounds int // rounds until the network reached the new stable state
	Stable bool
}

// StableNetwork builds a network of n random peers already in the
// stable state (seeded from the oracle and verified by one fixed-point
// check).
func StableNetwork(ctx context.Context, n int, rng *rand.Rand, cfg rechord.Config) (*rechord.Network, []ident.ID, error) {
	ids := topogen.RandomIDs(n, rng)
	nw := topogen.PreStabilized().Build(ids, rng, cfg)
	// Let the seeded state settle into the true fixed point (the seed
	// lacks the steady-state message flow).
	res, err := sim.RunToStable(ctx, nw, sim.Options{MaxRounds: sim.DefaultMaxRounds(n)})
	if err != nil {
		return nil, nil, err
	}
	_ = res
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		return nil, nil, fmt.Errorf("churn: seeded network not in stable state: %w", err)
	}
	return nw, ids, nil
}

// Apply executes one event and runs the scheduler to the next fixed
// point, returning the recovery cost. Passing the network itself
// repairs under synchronous rounds; passing a rechord.AsyncRunner
// repairs under the asynchronous adversary (Rounds then counts
// asynchronous steps).
func Apply(ctx context.Context, s rechord.Scheduler, ev Event, maxRounds int) (Recovery, error) {
	nw := s.Network()
	switch ev.Kind {
	case "join":
		if err := nw.Join(ev.ID, ev.Contact); err != nil {
			return Recovery{}, err
		}
	case "leave":
		if err := nw.Leave(ev.ID); err != nil {
			return Recovery{}, err
		}
	case "fail":
		if err := nw.Fail(ev.ID); err != nil {
			return Recovery{}, err
		}
	default:
		return Recovery{}, fmt.Errorf("churn: unknown event kind %q", ev.Kind)
	}
	if maxRounds <= 0 {
		maxRounds = sim.DefaultBudget(s)
	}
	res := sim.Run(ctx, s, sim.Options{MaxRounds: maxRounds})
	if res.Canceled {
		return Recovery{Event: ev, Rounds: res.Rounds}, ctx.Err()
	}
	return Recovery{Event: ev, Rounds: res.Rounds, Stable: res.Stable}, nil
}

// VerifyStable checks that the network sits in the exact stable state
// for its current membership.
func VerifyStable(nw *rechord.Network) error {
	return rechord.ComputeIdeal(nw.Peers()).Matches(nw)
}

// RunSequence applies a series of events, verifying convergence to the
// correct stable state after each one, under whichever scheduler is
// active.
func RunSequence(ctx context.Context, s rechord.Scheduler, events []Event, maxRounds int) ([]Recovery, error) {
	out := make([]Recovery, 0, len(events))
	for _, ev := range events {
		rec, err := Apply(ctx, s, ev, maxRounds)
		if err != nil {
			return out, err
		}
		if !rec.Stable {
			return out, fmt.Errorf("churn: network did not re-stabilize after %v", ev)
		}
		if err := VerifyStable(s.Network()); err != nil {
			return out, fmt.Errorf("churn: wrong state after %v: %w", ev, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// RandomEvents generates a mixed workload over the current membership:
// joins of fresh ids and leaves/failures of random existing peers,
// never emptying the network below two peers.
func RandomEvents(nw *rechord.Network, count int, rng *rand.Rand) []Event {
	existing := append([]ident.ID(nil), nw.Peers()...)
	var out []Event
	for i := 0; i < count; i++ {
		switch {
		case len(existing) < 3 || rng.Intn(2) == 0:
			id := ident.ID(rng.Uint64() | 1)
			contact := existing[rng.Intn(len(existing))]
			out = append(out, Event{Kind: "join", ID: id, Contact: contact})
			existing = append(existing, id)
		default:
			j := rng.Intn(len(existing))
			kind := "leave"
			if rng.Intn(2) == 0 {
				kind = "fail"
			}
			out = append(out, Event{Kind: kind, ID: existing[j]})
			existing = append(existing[:j], existing[j+1:]...)
		}
	}
	return out
}
