package rechord

import "repro/internal/ident"

// This file is the incremental settle check: a 64-bit content hash per
// (peer slot, virtual level) replacing the per-barrier deep clone of
// every active peer's virtual nodes.
//
// The invariant is that between batches, vhash[slot][lvl] equals
// hashVNode of the peer's current level-lvl state. Phase 2 of runBatch
// recomputes the hashes of the peers it just ran (only those — that is
// what makes the check frontier-proportional) and "the peer's round was
// a state no-op" becomes "no level hash changed and the level count is
// the same". Every out-of-band mutation point (AddPeer, SeedEdge, the
// white-box fixture rebuilds) refreshes the stored hashes, so the
// stored value always describes the pre-round state the old
// clone-and-compare check captured in phase 1.
//
// A hash collision — a state change whose 64-bit hash collides with the
// previous state's — would settle a peer that is not at a local fixed
// point. The collision probability per comparison is ~2^-64 and a
// settled peer is re-woken by any later input change, so the failure
// mode is a (vanishingly unlikely) stall, not corruption.
// Config.ParanoidSettle keeps the clone-and-compare check alive and
// cross-checks every settle decision against it, panicking on
// disagreement; the lockstep tests run with it enabled, and the
// testVNodeHash hook below injects forced collisions to prove the
// paranoid mode actually catches them.

// testVNodeHash, when non-nil, overrides the content hash of a virtual
// node. It exists solely so tests can inject hash collisions
// (TestSettleHashMatchesClone); it must never be set outside tests, and
// only between Steps.
var testVNodeHash func(v *VNode) (uint64, bool)

// mixWord folds one 64-bit word into the running hash. The chain
// (h^w)*odd with a feedback shift is order-sensitive, so permuted edge
// sets and moved levels hash differently.
func mixWord(h, w uint64) uint64 {
	h ^= w
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// hashVNode computes the content hash of one virtual node over exactly
// the state vnodesEqual compares: Self, the three edge sets, and the
// rl/rr variables (only when their Has flag is set, mirroring
// VNode.equal). A nil hole hashes to a fixed marker.
func hashVNode(v *VNode) uint64 {
	if testVNodeHash != nil {
		if h, ok := testVNodeHash(v); ok {
			return h
		}
	}
	if v == nil {
		return 0x9E3779B97F4A7C15
	}
	h := uint64(0x517CC1B727220A95)
	h = mixWord(mixWord(h, uint64(v.Self.Owner)), uint64(v.Self.Level))
	h = mixWord(h, uint64(v.Nu.Len()))
	for _, r := range v.Nu.Slice() {
		h = mixWord(mixWord(h, uint64(r.Owner)), uint64(r.Level))
	}
	h = mixWord(h, uint64(v.Nr.Len()))
	for _, r := range v.Nr.Slice() {
		h = mixWord(mixWord(h, uint64(r.Owner)), uint64(r.Level))
	}
	h = mixWord(h, uint64(v.Nc.Len()))
	for _, r := range v.Nc.Slice() {
		h = mixWord(mixWord(h, uint64(r.Owner)), uint64(r.Level))
	}
	var flags uint64
	if v.HasRL {
		flags |= 1
	}
	if v.HasRR {
		flags |= 2
	}
	h = mixWord(h, flags)
	if v.HasRL {
		h = mixWord(mixWord(h, uint64(v.RL.Owner)), uint64(v.RL.Level))
	}
	if v.HasRR {
		h = mixWord(mixWord(h, uint64(v.RR.Owner)), uint64(v.RR.Level))
	}
	return h
}

// refreshHashSlot recomputes the per-level hashes of the peer in the
// slot, stores them, and reports whether anything changed (a level
// hash, or the level count itself). Safe to call from the parallel rule
// phase: distinct slots touch distinct inner slices, and the outer
// vhash slice is only grown between batches (AddPeer).
func (nw *Network) refreshHashSlot(slot uint32, n *RealNode) bool {
	old := nw.vhash[slot]
	changed := len(old) != len(n.vnodes)
	hs := old
	if cap(hs) < len(n.vnodes) {
		hs = make([]uint64, len(n.vnodes))
	} else {
		hs = hs[:len(n.vnodes)]
	}
	for l, v := range n.vnodes {
		nh := hashVNode(v)
		// hs may alias old; within one iteration the read of old[l]
		// precedes the write of hs[l], so the comparison is sound.
		if !changed && old[l] != nh {
			changed = true
		}
		hs[l] = nh
	}
	nw.vhash[slot] = hs
	return changed
}

// rebuildHashes recomputes every live peer's stored hashes from
// scratch. The engine maintains them incrementally; the white-box rule
// fixtures refresh them wholesale after mutating peer state directly
// (see rebuildLevels).
func (nw *Network) rebuildHashes() {
	for len(nw.vhash) < len(nw.pt.nodes) {
		nw.vhash = append(nw.vhash, nil)
	}
	for slot, n := range nw.pt.nodes {
		if n == nil {
			nw.vhash[slot] = nw.vhash[slot][:0]
			continue
		}
		nw.refreshHashSlot(uint32(slot), n)
	}
}

// StateFingerprint digests the protocol state of every live peer the
// filter accepts (all peers when filter is nil): per peer, an
// order-sensitive chain over its identifier, level count and per-level
// content hashes; across peers, XOR — so fingerprints of disjoint
// partitions of one network combine into the whole-network value, and
// two networks holding the same peers in the same protocol state agree
// regardless of slot assignment. Only protocol state (the virtual
// nodes) is digested: standing buckets, pending inboxes and last
// outputs are schedule artifacts, empty or redundant at quiescence.
func (nw *Network) StateFingerprint(filter func(ident.ID) bool) uint64 {
	var fp uint64
	for _, n := range nw.pt.nodes {
		if n == nil || (filter != nil && !filter(n.id)) {
			continue
		}
		h := mixWord(0x243F6A8885A308D3, uint64(n.id))
		h = mixWord(h, uint64(len(n.vnodes)))
		for _, v := range n.vnodes {
			h = mixWord(h, hashVNode(v))
		}
		fp ^= h
	}
	return fp
}
