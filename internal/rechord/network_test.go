package rechord_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
	"repro/internal/sim"
	"repro/internal/topogen"
)

func TestAddPeerDuplicatePanics(t *testing.T) {
	nw := rechord.NewNetwork(rechord.Config{})
	nw.AddPeer(ident.FromFloat(0.5))
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddPeer did not panic")
		}
	}()
	nw.AddPeer(ident.FromFloat(0.5))
}

func TestSeedEdgeUnknownPeerPanics(t *testing.T) {
	nw := rechord.NewNetwork(rechord.Config{})
	defer func() {
		if recover() == nil {
			t.Error("SeedEdge from unknown peer did not panic")
		}
	}()
	nw.SeedEdge(ref.Real(ident.FromFloat(0.1)), ref.Real(ident.FromFloat(0.2)), graph.Unmarked)
}

func TestPeersSorted(t *testing.T) {
	nw := rechord.NewNetwork(rechord.Config{})
	for _, x := range []float64{0.7, 0.1, 0.4} {
		nw.AddPeer(ident.FromFloat(x))
	}
	peers := nw.Peers()
	for i := 1; i < len(peers); i++ {
		if peers[i-1] >= peers[i] {
			t.Fatalf("Peers not sorted: %v", peers)
		}
	}
	if nw.NumPeers() != 3 {
		t.Errorf("NumPeers = %d, want 3", nw.NumPeers())
	}
}

// TestWorkerCountInvariance verifies the parallel round execution is
// deterministic: the same initial state converges to the same state
// trajectory regardless of the worker count.
func TestWorkerCountInvariance(t *testing.T) {
	build := func(workers int) *rechord.Network {
		rng := rand.New(rand.NewSource(99))
		ids := topogen.RandomIDs(40, rng)
		return topogen.Garbage().Build(ids, rng, rechord.Config{Workers: workers})
	}
	nw1 := build(1)
	nw8 := build(8)
	for round := 0; round < 40; round++ {
		s1 := nw1.TakeSnapshot()
		s8 := nw8.TakeSnapshot()
		if !s1.Equal(s8) {
			t.Fatalf("states diverged at round %d between 1 and 8 workers", round)
		}
		nw1.Step()
		nw8.Step()
	}
}

// TestFixedPointIsForever runs 50 extra rounds past convergence and
// asserts the state never changes again ("no more state changes are
// taking place", Section 2.1).
func TestFixedPointIsForever(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ids := topogen.RandomIDs(25, rng)
	nw := topogen.Random().Build(ids, rng, rechord.Config{})
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	fixed := nw.TakeSnapshot()
	for i := 0; i < 50; i++ {
		nw.Step()
		if !nw.TakeSnapshot().Equal(fixed) {
			t.Fatalf("state changed %d rounds after the fixed point", i+1)
		}
	}
}

// TestStableStateIsFixedPoint seeds the oracle topology directly and
// verifies the rules preserve it (Section 3.1.6).
func TestStableStateIsFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ids := topogen.RandomIDs(30, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	// The seeded state lacks the steady-state in-flight flows, so let
	// it settle briefly; it must reach the exact ideal state quickly
	// (a handful of rounds), not re-run a full stabilization.
	res, err := sim.RunToStable(context.Background(), nw, sim.Options{MaxRounds: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 16 {
		t.Errorf("seeded stable state took %d rounds to settle, want few", res.Rounds)
	}
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatal(err)
	}
}

func TestMessagesToDepartedPeersAreDropped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := topogen.RandomIDs(10, rng)
	nw := topogen.Random().Build(ids, rng, rechord.Config{})
	nw.Step()
	// Fail a peer mid-convergence; the network must still stabilize to
	// the reduced ideal.
	victim := ids[3]
	if err := nw.Fail(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rechord.ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
		t.Fatalf("network wrong after mid-convergence failure: %v", err)
	}
}

func TestGraphIncludesInFlightEdges(t *testing.T) {
	// A freshly stepped network has pending messages; the graph export
	// must include them as edges (they are part of the global state).
	nw := rechord.NewNetwork(rechord.Config{Workers: 1})
	a, b := ident.FromFloat(0.2), ident.FromFloat(0.7)
	nw.AddPeer(a)
	nw.AddPeer(b)
	nw.SeedEdge(ref.Real(a), ref.Real(b), graph.Unmarked)
	nw.Step()
	g := nw.Graph()
	// Mirroring announced a to b (in flight after round 1): the edge
	// (b, a) must already be visible in the exported graph.
	if !g.HasEdge(ref.Real(b), ref.Real(a), graph.Unmarked) {
		t.Error("in-flight mirrored edge missing from Graph()")
	}
}

func TestReChordGraphProjectsOwners(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ids := topogen.RandomIDs(12, rng)
	nw := topogen.Random().Build(ids, rng, rechord.Config{})
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	rg := nw.ReChordGraph()
	if rg.NumNodes() != 12 {
		t.Errorf("projection has %d nodes, want 12 real peers", rg.NumNodes())
	}
	for _, e := range rg.AllEdges() {
		if !e.From.IsReal() || !e.To.IsReal() {
			t.Fatal("projection contains virtual nodes")
		}
		if e.From == e.To {
			t.Fatal("projection contains self-loop")
		}
	}
	if !rg.WeaklyConnected() {
		t.Error("stable projection must be weakly connected")
	}
}

func TestLeaveGracefulFasterThanFail(t *testing.T) {
	// Not a strict theorem, but graceful leave hands neighbors to each
	// other, so recovery must never be dramatically slower than the
	// crash case on the same network.
	rng := rand.New(rand.NewSource(9))
	ids := topogen.RandomIDs(20, rng)

	build := func() *rechord.Network {
		r := rand.New(rand.NewSource(10))
		nw := topogen.PreStabilized().Build(ids, r, rechord.Config{})
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			t.Fatal(err)
		}
		return nw
	}
	victim := ids[7]

	nwLeave := build()
	if err := nwLeave.Leave(victim); err != nil {
		t.Fatal(err)
	}
	resLeave, err := sim.RunToStable(context.Background(), nwLeave, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	nwFail := build()
	if err := nwFail.Fail(victim); err != nil {
		t.Fatal(err)
	}
	resFail, err := sim.RunToStable(context.Background(), nwFail, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("leave: %d rounds, fail: %d rounds", resLeave.Rounds, resFail.Rounds)
	if resLeave.Rounds > 3*resFail.Rounds+8 {
		t.Errorf("graceful leave (%d) much slower than crash (%d)", resLeave.Rounds, resFail.Rounds)
	}
}

func TestChurnErrors(t *testing.T) {
	nw := rechord.NewNetwork(rechord.Config{})
	nw.AddPeer(ident.FromFloat(0.5))
	if err := nw.Join(ident.FromFloat(0.5), ident.FromFloat(0.5)); err == nil {
		t.Error("joining existing id must error")
	}
	if err := nw.Join(ident.FromFloat(0.6), ident.FromFloat(0.9)); err == nil {
		t.Error("joining via unknown contact must error")
	}
	if err := nw.Leave(ident.FromFloat(0.9)); err == nil {
		t.Error("leaving unknown peer must error")
	}
	if err := nw.Fail(ident.FromFloat(0.9)); err == nil {
		t.Error("failing unknown peer must error")
	}
}
