package rechord_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

func TestScale105(t *testing.T) {
	for _, gen := range topogen.All() {
		rng := rand.New(rand.NewSource(7))
		ids := topogen.RandomIDs(105, rng)
		nw := gen.Build(ids, rng, rechord.Config{})
		idl := rechord.ComputeIdeal(ids)
		start := time.Now()
		res, err := sim.RunToStable(context.Background(), nw, sim.Options{Ideal: idl})
		if err != nil {
			t.Fatalf("%s: %v", gen.Name, err)
		}
		if err := idl.Matches(nw); err != nil {
			t.Errorf("%s: wrong state: %v", gen.Name, err)
		}
		t.Logf("%s: n=105 stable after %d rounds (almost %d), %d msgs, %v",
			gen.Name, res.Rounds, res.AlmostStableRound, res.TotalMessages, time.Since(start))
	}
}
