package rechord

import (
	"math"
	"math/rand"

	"repro/internal/ident"
)

// DelayModel draws the delivery delay, in scheduler steps, of one
// message batch from one peer to another under the asynchronous
// adversary. Implementations must return at least 1 (a delay of 1 is
// the synchronous timing: sent at step t, processed at step t+1) and
// must draw all randomness from the supplied rng, so a run is
// reproducible from its seed.
//
// A model with a finite maximum (or a finite mean and the runner's
// internal cap) preserves the fairness premise of asynchronous
// self-stabilization: every message is eventually delivered.
type DelayModel interface {
	Delay(rng *rand.Rand, from, to ident.ID) int
}

// maxModelDelay caps every model's draw so one heavy-tail outlier
// cannot stall fairness (or the event queue) indefinitely.
const maxModelDelay = 1 << 16

func clampDelay(d, max int) int {
	if max >= 1 && d > max {
		d = max
	}
	if d > maxModelDelay {
		d = maxModelDelay
	}
	if d < 1 {
		d = 1
	}
	return d
}

// UniformDelay delays every message uniformly in 1..Max — the classic
// bounded-delay adversary (and the model the original AsyncRunner
// implemented). Max < 2 means every delay is exactly 1.
type UniformDelay struct {
	Max int
}

// Delay draws uniformly from 1..Max.
func (u UniformDelay) Delay(rng *rand.Rand, _, _ ident.ID) int {
	if u.Max < 2 {
		return 1
	}
	return 1 + rng.Intn(u.Max)
}

// geometricDraw returns the number of failures before the first
// success of a Bernoulli(p), via inversion (one rng draw), capped at
// maxModelDelay. p outside (0, 1) draws nothing and returns 0 — the
// degenerate always-succeeds coin.
func geometricDraw(rng *rand.Rand, p float64) int {
	if p <= 0 || p >= 1 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	w := int(math.Floor(math.Log(u) / math.Log(1-p)))
	if w < 0 {
		w = 0
	}
	if w > maxModelDelay {
		w = maxModelDelay
	}
	return w
}

// GeometricDelay delays each message 1 + Geometric(P) steps: most
// messages arrive promptly, a geometric tail arrives late. P in (0,1]
// is the per-step delivery probability (mean delay 1/P); Max, when
// positive, caps the draw.
type GeometricDelay struct {
	P   float64
	Max int
}

// Delay draws 1 + the number of failures before the first success of a
// Bernoulli(P), via inversion (one rng draw).
func (g GeometricDelay) Delay(rng *rand.Rand, _, _ ident.ID) int {
	return clampDelay(1+geometricDraw(rng, g.P), g.Max)
}

// ParetoDelay delays messages by a heavy-tailed Pareto(Alpha) draw:
// the adversary that occasionally holds a message back for a very long
// time, the regime where self-stabilization arguments are most
// stressed. Alpha > 1 keeps the mean finite (smaller Alpha = heavier
// tail); Max, when positive, caps the draw.
type ParetoDelay struct {
	Alpha float64
	Max   int
}

// Delay draws ceil(U^(-1/Alpha)) via inversion.
func (p ParetoDelay) Delay(rng *rand.Rand, _, _ ident.ID) int {
	a := p.Alpha
	if a <= 0 {
		a = 1.5
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return clampDelay(int(math.Ceil(math.Pow(u, -1/a))), p.Max)
}

// LinkDelay derives each message's delay from the (from, to) pair via
// a deterministic latency function — a per-link latency map, e.g. a
// topology where some region pairs are far apart. The function's
// result is clamped to at least 1 (and to Max when positive). Max also
// tells the runner the map's largest latency so default step budgets
// scale with it; leave it 0 only if the latencies are small or callers
// set explicit budgets.
type LinkDelay struct {
	Fn  func(from, to ident.ID) int
	Max int
}

// Delay applies the latency function (no randomness consumed).
func (l LinkDelay) Delay(_ *rand.Rand, from, to ident.ID) int {
	if l.Fn == nil {
		return 1
	}
	return clampDelay(l.Fn(from, to), l.Max)
}
