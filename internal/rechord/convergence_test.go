package rechord_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// TestConvergenceSmall is the core integration test: from the paper's
// random weakly connected initialization the network must reach the
// exact stable Re-Chord topology.
func TestConvergenceSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 12} {
		rng := rand.New(rand.NewSource(int64(100 + n)))
		ids := topogen.RandomIDs(n, rng)
		nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 1})
		idl := rechord.ComputeIdeal(ids)
		res, err := sim.RunToStable(context.Background(), nw, sim.Options{Ideal: idl})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := idl.Matches(nw); err != nil {
			t.Errorf("n=%d: converged to wrong state: %v", n, err)
		}
		t.Logf("n=%d: stable after %d rounds (almost stable %d), %d msgs",
			n, res.Rounds, res.AlmostStableRound, res.TotalMessages)
	}
}
