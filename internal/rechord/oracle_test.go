package rechord

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

func randomReals(n int, rng *rand.Rand) []ident.ID {
	seen := map[ident.ID]bool{}
	var out []ident.ID
	for len(out) < n {
		id := ident.ID(rng.Uint64())
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

func TestIdealEmpty(t *testing.T) {
	idl := ComputeIdeal(nil)
	if len(idl.Nodes()) != 0 || idl.NumVirtual() != 0 {
		t.Error("empty ideal should have no nodes")
	}
}

func TestIdealSinglePeer(t *testing.T) {
	idl := ComputeIdeal([]ident.ID{ident.FromFloat(0.3)})
	if got := idl.Level(ident.FromFloat(0.3)); got != ident.MaxLevel {
		t.Errorf("single-peer m = %d, want MaxLevel", got)
	}
	if got := len(idl.Nodes()); got != ident.MaxLevel+1 {
		t.Errorf("node count = %d, want %d", got, ident.MaxLevel+1)
	}
}

func TestIdealSortedListStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idl := ComputeIdeal(randomReals(20, rng))
	nodes := idl.Nodes()
	for k, x := range nodes {
		nu := idl.Nu(x)
		// Every node's desired neighborhood contains its list
		// neighbors.
		if k > 0 && !nu.Contains(nodes[k-1]) {
			t.Fatalf("node %s missing left neighbor %s", x, nodes[k-1])
		}
		if k+1 < len(nodes) && !nu.Contains(nodes[k+1]) {
			t.Fatalf("node %s missing right neighbor %s", x, nodes[k+1])
		}
		// At most 4 outgoing unmarked edges (Section 2.2).
		if nu.Len() > 4 {
			t.Fatalf("node %s has %d desired edges, max 4", x, nu.Len())
		}
	}
}

func TestIdealClosestRealsAreReal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	idl := ComputeIdeal(randomReals(15, rng))
	for _, x := range idl.Nodes() {
		for _, y := range idl.Nu(x).Slice() {
			if y == x {
				t.Fatalf("self-loop in ideal at %s", x)
			}
		}
	}
}

func TestIdealLevelsMatchSuccessorDistance(t *testing.T) {
	// m per peer must equal LevelForDist of the clockwise distance to
	// the real successor.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reals := randomReals(2+rng.Intn(20), rng)
		idl := ComputeIdeal(reals)
		sorted := append([]ident.ID(nil), reals...)
		ident.Sort(sorted)
		for i, u := range sorted {
			succ := sorted[(i+1)%len(sorted)]
			want := ident.LevelForDist(ident.Dist(u, succ))
			if idl.Level(u) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIdealGraphRingEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	idl := ComputeIdeal(randomReals(10, rng))
	g := idl.Graph()
	nodes := idl.Nodes()
	mn, mx := nodes[0], nodes[len(nodes)-1]
	if !g.HasEdge(mx, mn, graph.Ring) || !g.HasEdge(mn, mx, graph.Ring) {
		t.Error("ideal graph missing the two ring edges between extremes")
	}
	if g.NumEdges(graph.Ring) != 2 {
		t.Errorf("ideal ring edges = %d, want 2", g.NumEdges(graph.Ring))
	}
}

func TestChordGraphProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	reals := randomReals(30, rng)
	idl := ComputeIdeal(reals)
	cg := idl.ChordGraph()
	sorted := append([]ident.ID(nil), reals...)
	ident.Sort(sorted)
	// Every peer has its ring successor edge.
	for i, u := range sorted {
		succ := sorted[(i+1)%len(sorted)]
		if !cg.HasEdge(ref.Real(u), ref.Real(succ), graph.Unmarked) {
			t.Fatalf("chord graph missing successor edge %s -> %s", u, succ)
		}
	}
	// Every finger points at the ring successor of u + 1/2^i.
	for _, e := range cg.Edges(graph.Unmarked) {
		if !e.From.IsReal() || !e.To.IsReal() {
			t.Fatal("chord graph must contain only real nodes")
		}
	}
	if cg.NumEdges(graph.Unmarked) < len(reals) {
		t.Error("chord graph has fewer edges than peers")
	}
	if slots := idl.ChordEdgeSlots(); slots != len(reals)+idl.NumVirtual() {
		t.Errorf("ChordEdgeSlots = %d, want peers+virtuals = %d", slots, len(reals)+idl.NumVirtual())
	}
}

func TestMatchesDetectsDeviations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ids := randomReals(8, rng)
	nw := NewNetwork(Config{Workers: 1})
	for _, id := range ids {
		nw.AddPeer(id)
	}
	for i := 1; i < len(ids); i++ {
		nw.SeedEdge(ref.Real(ids[i-1]), ref.Real(ids[i]), graph.Unmarked)
	}
	idl := ComputeIdeal(ids)
	if err := idl.Matches(nw); err == nil {
		t.Fatal("Matches accepted an unconverged network")
	}
	// Converge, then Matches must accept.
	prev := nw.TakeSnapshot()
	for i := 0; i < 5000; i++ {
		nw.Step()
		cur := nw.TakeSnapshot()
		if cur.Equal(prev) {
			break
		}
		prev = cur
	}
	if err := idl.Matches(nw); err != nil {
		t.Fatalf("Matches rejected the converged state: %v", err)
	}
	// Damage one edge: Matches must notice.
	n := nw.Peer(ids[0])
	v := n.VNode(0)
	if rm, ok := v.Nu.Max(); ok {
		v.Nu.Remove(rm)
	}
	if err := idl.Matches(nw); err == nil {
		t.Fatal("Matches accepted a damaged network")
	}
}

func TestMatchesPeerSetMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ids := randomReals(4, rng)
	nw := NewNetwork(Config{})
	for _, id := range ids[:3] {
		nw.AddPeer(id)
	}
	if err := ComputeIdeal(ids).Matches(nw); err == nil {
		t.Fatal("Matches accepted wrong peer count")
	}
	nw.AddPeer(ids[3] + 1) // same count, different id
	if err := ComputeIdeal(ids).Matches(nw); err == nil {
		t.Fatal("Matches accepted wrong peer set")
	}
}

func TestAlmostStableSubset(t *testing.T) {
	// AlmostStable must hold for the exact converged state and fail
	// for a fresh network.
	rng := rand.New(rand.NewSource(7))
	ids := randomReals(6, rng)
	nw := NewNetwork(Config{Workers: 1})
	for _, id := range ids {
		nw.AddPeer(id)
	}
	for i := 1; i < len(ids); i++ {
		nw.SeedEdge(ref.Real(ids[0]), ref.Real(ids[i]), graph.Unmarked)
	}
	idl := ComputeIdeal(ids)
	if idl.AlmostStable(nw) {
		t.Fatal("fresh star network cannot be almost stable")
	}
	prev := nw.TakeSnapshot()
	for i := 0; i < 5000; i++ {
		nw.Step()
		cur := nw.TakeSnapshot()
		if cur.Equal(prev) {
			break
		}
		prev = cur
	}
	if !idl.AlmostStable(nw) {
		t.Fatal("converged network must be almost stable")
	}
}
