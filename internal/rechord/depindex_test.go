package rechord

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// Lockstep tests for the inverted dependency index and the hash-based
// settle check: the incremental implementations must reproduce the
// full-scan wake sets and the clone-and-compare settle decisions
// round for round, under convergence and churn, in both schedulers.
// Config.ParanoidSettle does the per-barrier comparison inside the
// engine; these tests drive enough schedule diversity through it and
// add direct comparisons of their own.

// stableNetCfg is stableNet with a caller-chosen config.
func stableNetCfg(t *testing.T, n int, seed int64, cfg Config) (*Network, []ident.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]ident.ID, 0, n)
	seen := map[ident.ID]bool{}
	for len(ids) < n {
		id := ident.ID(rng.Uint64())
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	nw := NewNetwork(cfg)
	for _, id := range ids {
		nw.AddPeer(id)
	}
	for i := 1; i < len(ids); i++ {
		nw.SeedEdge(ref.Real(ids[i-1]), ref.Real(ids[i]), graph.Unmarked)
	}
	for r := 0; r < 8000; r++ {
		nw.Step()
		if nw.Quiescent() {
			return nw, ids
		}
	}
	t.Fatalf("network of %d peers did not quiesce", n)
	return nil, nil
}

// checkDepIndex rebuilds the expected dependency counts from the
// peers' actual state (edge sets plus standing buckets) and compares
// them against the live index, both directions.
func checkDepIndex(t *testing.T, nw *Network, when string) {
	t.Helper()
	want := map[ident.ID]map[uint32]uint32{}
	bump := func(id ident.ID, slot uint32) {
		m := want[id]
		if m == nil {
			m = map[uint32]uint32{}
			want[id] = m
		}
		m[slot]++
	}
	for slot, n := range nw.pt.nodes {
		if n == nil {
			continue
		}
		for _, v := range n.vnodes {
			if v == nil {
				continue
			}
			for _, r := range v.Nu.Slice() {
				bump(r.Owner, uint32(slot))
			}
			for _, r := range v.Nr.Slice() {
				bump(r.Owner, uint32(slot))
			}
			for _, r := range v.Nc.Slice() {
				bump(r.Owner, uint32(slot))
			}
		}
		for _, b := range n.in {
			sp := b.flow.spans[b.span]
			for _, pm := range b.flow.packed[sp.start:sp.end] {
				bump(b.flow.syms[pm.sym], uint32(slot))
			}
		}
	}
	for id, m := range want {
		got := nw.deps.dependents(id)
		if len(got) != len(m) {
			t.Fatalf("%s: index for %s has %d dependents, want %d", when, id, len(got), len(m))
		}
		for _, e := range got {
			if m[e.peer] != e.cnt {
				t.Fatalf("%s: index for %s slot %d count %d, want %d", when, id, e.peer, e.cnt, m[e.peer])
			}
		}
	}
	for si := range nw.deps.shards {
		for id, key := range nw.deps.shards[si].keyOf {
			if want[id] == nil {
				t.Fatalf("%s: index holds %s (%d dependents) not present in the state", when, id, len(nw.deps.shards[si].deps[key]))
			}
		}
	}
}

// checkWakeSets compares the indexed and scan wake sets directly for a
// batch of synthetic change sets: live owners, a departed owner,
// unknown owners, and exact virtual refs at several levels.
func checkWakeSets(t *testing.T, nw *Network, ids []ident.ID, departed ident.ID, rng *rand.Rand) {
	t.Helper()
	cases := []struct {
		owners map[ident.ID]bool
		refs   map[ref.Ref]bool
	}{
		{owners: map[ident.ID]bool{ids[rng.Intn(len(ids))]: true}},
		{owners: map[ident.ID]bool{departed: true}},
		{owners: map[ident.ID]bool{ident.ID(rng.Uint64() | 1): true}},
		{refs: map[ref.Ref]bool{ref.Real(ids[rng.Intn(len(ids))]): true}},
		{refs: map[ref.Ref]bool{ref.Virtual(ids[rng.Intn(len(ids))], 1+rng.Intn(4)): true}},
		{
			owners: map[ident.ID]bool{ids[rng.Intn(len(ids))]: true, departed: true},
			refs: map[ref.Ref]bool{
				ref.Virtual(ids[rng.Intn(len(ids))], 2): true,
				ref.Real(ids[rng.Intn(len(ids))]):       true,
			},
		},
	}
	for i, c := range cases {
		idx := nw.wakeSetIndexed(c.owners, c.refs, nil)
		scan := nw.wakeSetScan(c.owners, c.refs, nil)
		sortSlots(idx)
		sortSlots(scan)
		if !slotsEqual(idx, scan) {
			t.Fatalf("case %d: indexed wake set %v != scan %v (owners=%v refs=%v)", i, idx, scan, c.owners, c.refs)
		}
	}
}

// TestWakeIndexMatchesScan drives convergence and churn through both
// schedulers with ParanoidSettle on (every barrier cross-checks the
// indexed wake set against the full scan and the hashed settle
// decision against the clone) and adds direct wake-set and index
// consistency checks at the quiescent points.
func TestWakeIndexMatchesScan(t *testing.T) {
	t.Run("sync", func(t *testing.T) {
		nw, ids := stableNetCfg(t, 48, 17, Config{Workers: 1, ParanoidSettle: true})
		checkDepIndex(t, nw, "settled")
		rng := rand.New(rand.NewSource(5))
		departed := ids[7]
		if err := nw.Fail(departed); err != nil {
			t.Fatal(err)
		}
		if err := nw.Leave(ids[20]); err != nil {
			t.Fatal(err)
		}
		joiner := ident.ID(rng.Uint64() | 1)
		if err := nw.Join(joiner, ids[3]); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 8000 && !nw.Quiescent(); r++ {
			nw.Step()
		}
		if !nw.Quiescent() {
			t.Fatal("did not re-quiesce after churn")
		}
		if err := ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("wrong state after churn: %v", err)
		}
		checkDepIndex(t, nw, "after churn")
		checkWakeSets(t, nw, nw.Peers(), departed, rng)
		// Rejoin under a departed identifier: the index must wake the
		// peers still holding stale references to it.
		if err := nw.Join(departed, nw.Peers()[0]); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 8000 && !nw.Quiescent(); r++ {
			nw.Step()
		}
		if err := ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("wrong state after rejoin: %v", err)
		}
		checkDepIndex(t, nw, "after rejoin")
	})

	t.Run("fullsweep-churn", func(t *testing.T) {
		// FullSweep skips the settle path but still routes churn wakes
		// through the index; the wake cross-check covers those.
		nw, ids := stableNetCfg(t, 24, 29, Config{Workers: 1, FullSweep: true, ParanoidSettle: true})
		if err := nw.Fail(ids[5]); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2000 && !nw.Quiescent(); r++ {
			nw.Step()
		}
		if err := ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("wrong state after fullsweep churn: %v", err)
		}
		checkDepIndex(t, nw, "fullsweep after churn")
	})

	t.Run("async", func(t *testing.T) {
		nw, ids := stableNetCfg(t, 32, 41, Config{Workers: 1, ParanoidSettle: true})
		rng := rand.New(rand.NewSource(43))
		a := NewAsyncRunner(nw, AsyncConfig{ActivationProb: 0.5, MaxDelay: 3}, rng)
		if err := nw.Fail(ids[9]); err != nil {
			t.Fatal(err)
		}
		joiner := ident.ID(rng.Uint64() | 1)
		if err := nw.Join(joiner, ids[2]); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 60000 && !a.Quiescent(); s++ {
			a.Step()
		}
		if !a.Quiescent() {
			t.Fatal("async run did not quiesce after churn")
		}
		if err := ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("wrong async state after churn: %v", err)
		}
		checkDepIndex(t, nw, "async after churn")
		checkWakeSets(t, nw, nw.Peers(), ids[9], rng)
	})
}

// TestSettleHashMatchesClone proves the hashed settle decision agrees
// with the clone-and-compare baseline (the paranoid engine panics on
// the first disagreement) and that an injected hash collision IS
// caught: with the victim's hash pinned to its stored value, its next
// real state change must trip the cross-check.
func TestSettleHashMatchesClone(t *testing.T) {
	t.Run("agrees-under-churn", func(t *testing.T) {
		nw, ids := stableNetCfg(t, 40, 53, Config{Workers: 1, ParanoidSettle: true})
		for _, victim := range []ident.ID{ids[4], ids[13]} {
			if err := nw.Fail(victim); err != nil {
				t.Fatal(err)
			}
		}
		for r := 0; r < 8000 && !nw.Quiescent(); r++ {
			nw.Step()
		}
		if err := ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("wrong state after churn: %v", err)
		}
	})

	t.Run("forced-collision-caught", func(t *testing.T) {
		nw, ids := stableNetCfg(t, 24, 61, Config{Workers: 1, ParanoidSettle: true})
		// Pin the victim's per-level hashes to their stored values: from
		// now on every recomputation "collides" with the pre-change
		// state, so the hash path can never see the victim change.
		victim := ids[10]
		slot, _, ok := nw.PeerSlot(victim)
		if !ok {
			t.Fatal("victim not in network")
		}
		testVNodeHash = func(v *VNode) (uint64, bool) {
			if v == nil || v.Self.Owner != victim {
				return 0, false
			}
			stored := nw.vhash[slot]
			if v.Self.Level < len(stored) {
				return stored[v.Self.Level], true
			}
			return 0, false
		}
		defer func() { testVNodeHash = nil }()

		// A join next to the victim changes its closest-neighbor state
		// during reconvergence; the first barrier at which the victim's
		// state really changes must panic, because the pinned hash
		// claims it did not.
		live := nw.Peers()
		var contact ident.ID
		for i, id := range live {
			if id == victim {
				contact = live[(i+1)%len(live)]
			}
		}
		joiner := victim + 1 // immediately clockwise of the victim
		if err := nw.Join(joiner, contact); err != nil {
			t.Fatal(err)
		}

		caught := ""
		func() {
			defer func() {
				if r := recover(); r != nil {
					caught, _ = r.(string)
				}
			}()
			for r := 0; r < 8000 && !nw.Quiescent(); r++ {
				nw.Step()
			}
		}()
		if caught == "" {
			t.Fatal("forced hash collision was not caught by ParanoidSettle")
		}
		if !strings.Contains(caught, "rechord:") {
			t.Fatalf("unexpected panic: %s", caught)
		}
	})
}

// TestWakeUnknownNoOp pins Wake's contract for identifiers that do not
// resolve: never present, or departed.
func TestWakeUnknownNoOp(t *testing.T) {
	nw, ids := stableNet(t, 8, 77)
	never := ident.ID(0xdeadbeefcafe)
	nw.Wake(never)
	if !nw.Quiescent() {
		t.Fatal("waking an unknown identifier dirtied the network")
	}
	departed := ids[3]
	if err := nw.Fail(departed); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4000 && !nw.Quiescent(); r++ {
		nw.Step()
	}
	if !nw.Quiescent() {
		t.Fatal("did not re-quiesce after failure")
	}
	nw.Wake(departed)
	if !nw.Quiescent() {
		t.Fatal("waking a departed identifier dirtied the network")
	}
	if got := nw.FrontierSize(); got != 0 {
		t.Fatalf("FrontierSize = %d after no-op wakes, want 0", got)
	}
}
