package rechord

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// White-box regressions for the asynchronous scheduler's churn
// handling. The original AsyncRunner silently dropped any message
// addressed to a departed peer and bypassed removePeer's bookkeeping
// entirely; the event-driven runner must match the synchronous
// engine's semantics: a departed peer's standing flow arrives exactly
// once more as one-shots, in-flight contributions from a departed (or
// re-incarnated) sender arrive as one-shots instead of resurrecting a
// standing bucket nobody will ever clean, and a peer re-joining under
// a still-targeted identifier sees the senders' repeating flow again.

// asyncBucketInvariant checks that every standing bucket belongs to a
// live sender: a bucket from a departed peer would replay its stale
// flow forever, since only the sender's own runs can replace it.
func asyncBucketInvariant(t *testing.T, nw *Network) {
	t.Helper()
	for _, dst := range nw.pt.nodes {
		if dst == nil {
			continue
		}
		for _, b := range dst.in {
			if nw.pt.byHandle(b.sender) == nil {
				t.Fatalf("peer %s holds a standing bucket from a departed sender incarnation (slot %d gen %d)",
					dst.id, b.sender.slot(), b.sender.gen())
			}
		}
	}
}

// buildAsyncLine seeds a weakly connected line of n random peers.
func buildAsyncLine(n int, seed int64) (*Network, []ident.ID, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]ident.ID, 0, n)
	seen := map[ident.ID]bool{}
	for len(ids) < n {
		id := ident.ID(rng.Uint64() | 1)
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	nw := NewNetwork(Config{Workers: 1})
	for _, id := range ids {
		nw.AddPeer(id)
	}
	for i := 1; i < n; i++ {
		nw.SeedEdge(ref.Real(ids[i-1]), ref.Real(ids[i]), graph.Unmarked)
	}
	return nw, ids, rng
}

// TestAsyncDepartedPeerChurn fails and re-joins peers while delayed
// contributions are in flight and demands (a) re-convergence to the
// exact ideal state for the surviving membership and (b) no standing
// bucket left behind from any dead sender incarnation. The churn is
// applied from the settled state: the paper's convergence guarantee
// (and hence the test's expectation) requires the knowledge graph to
// stay weakly connected, which a failure mid-convergence of a sparse
// topology can violate for any execution model.
func TestAsyncDepartedPeerChurn(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		nw, ids, rng := buildAsyncLine(12, seed)
		a := NewAsyncRunner(nw, AsyncConfig{ActivationProb: 0.5, MaxDelay: 4}, rng)
		if _, ok := a.RunUntilLegal(ComputeIdeal(ids), 60000, 8); !ok {
			t.Fatalf("seed=%d: initial convergence failed", seed)
		}

		// Crash one peer; while its repair is in flight, remove another
		// gracefully and re-join a fresh peer under the crashed peer's
		// identifier — the new incarnation must not inherit the old
		// one's in-flight output as standing state.
		victim := ids[4]
		if err := nw.Fail(victim); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 3; s++ {
			a.Step()
		}
		if err := nw.Leave(ids[7]); err != nil {
			t.Fatal(err)
		}
		if err := nw.Join(victim, ids[0]); err != nil {
			t.Fatal(err)
		}

		idl := ComputeIdeal(nw.Peers())
		steps, ok := a.RunUntilLegal(idl, 60000, 8)
		if !ok {
			t.Fatalf("seed=%d: async churn did not restabilize in %d steps", seed, steps)
		}
		// Drain the remaining in-flight events so every channel settled.
		for !a.Quiescent() {
			a.Step()
		}
		asyncBucketInvariant(t, nw)
		if err := idl.Matches(nw); err != nil {
			t.Fatalf("seed=%d: wrong state after churn: %v", seed, err)
		}
	}
}

// TestAsyncRemovePeerFinalOutput pins the final-output semantics: when
// a peer departs, its standing flow is delivered exactly once more as
// one-shots (the synchronous removePeer contract), and the recipients
// are woken to consume it — the messages are not silently dropped.
func TestAsyncRemovePeerFinalOutput(t *testing.T) {
	nw, ids, rng := buildAsyncLine(8, 99)
	a := NewAsyncRunner(nw, AsyncConfig{ActivationProb: 1, MaxDelay: 1}, rng)
	for !a.Quiescent() {
		a.Step()
	}
	// At the fixed point every peer holds standing buckets. Pick a
	// recipient of the victim's flow before failing it.
	victim := ids[3]
	vicH := nw.node(victim).h()
	var recipient ident.ID
	found := false
	for _, dst := range nw.pt.nodes {
		// A peer can hold a standing bucket from itself (messages to its
		// own virtual nodes); the victim is no recipient of its own
		// final output.
		if dst != nil && dst.id != victim {
			if bi := dst.findBucket(vicH); bi >= 0 && dst.in[bi].flow.spanLen(dst.in[bi].span) > 0 {
				recipient, found = dst.id, true
				break
			}
		}
	}
	if !found {
		t.Fatalf("victim %s has no standing flow at the fixed point", victim)
	}
	rcp := nw.node(recipient)
	rb := rcp.in[rcp.findBucket(vicH)]
	want := rb.flow.spanLen(rb.span)
	if err := nw.Fail(victim); err != nil {
		t.Fatal(err)
	}
	dst := nw.node(recipient)
	if dst.findBucket(vicH) >= 0 {
		t.Fatal("departed sender's bucket not removed")
	}
	if len(dst.inbox) < want {
		t.Fatalf("final output not delivered as one-shots: inbox %d, want >= %d", len(dst.inbox), want)
	}
	if !dst.dirty {
		t.Fatal("recipient of the final output was not woken")
	}
	idl := ComputeIdeal(nw.Peers())
	if steps, ok := a.RunUntilLegal(idl, 10000, 4); !ok {
		t.Fatalf("did not restabilize after failure in %d steps", steps)
	}
	asyncBucketInvariant(t, nw)
}

// TestAsyncStaleFrontierCompaction: a long async run with repeated
// wake/settle cycles must not grow the frontier list without bound
// (the synchronous engine truncates it each round; the runner owns its
// compaction instead).
func TestAsyncStaleFrontierCompaction(t *testing.T) {
	nw, ids, rng := buildAsyncLine(10, 7)
	a := NewAsyncRunner(nw, AsyncConfig{ActivationProb: 0.5, MaxDelay: 2}, rng)
	for !a.Quiescent() {
		a.Step()
	}
	for i := 0; i < 200; i++ {
		nw.Wake(ids[i%len(ids)])
		for !a.Quiescent() {
			a.Step()
		}
	}
	if got, limit := len(nw.frontier), 4*nw.NumPeers()+65; got > limit {
		t.Fatalf("frontier grew to %d entries (> %d) across wake/settle cycles", got, limit)
	}
}
