// Package compact holds the compact-handle core's scale acceptance
// tests: convergence to the exact oracle topology at n = 131072, two
// doublings past the previous suite ceiling. Two engine layers make
// the rung reachable: the dense slot-addressed state (this package's
// original n=65536 target — the map-keyed layout ran ~2.2x slower
// with ~1.5x the resident state) and the incremental dependency
// machinery (inverted wake index + per-level settle hashing), which
// removed the last two per-barrier terms that scaled with n instead
// of with the frontier. The runs are single-core
// memory-bandwidth-bound (every active round sweeps every active
// peer's standing flow), so the tests live in their own package and
// never crowd the rest of the largescale suite; the multi-minute
// rungs budget-check the binary's deadline (see needBudget) and skip
// when it cannot fit them, so a plain `go test ./...` stays green at
// the go tool's 10-minute default.
package compact

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"math"

	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/scaletable"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topogen"
)

// needBudget skips the calling test when the binary's deadline cannot
// fit it. A test binary cannot widen its own budget (an earlier
// revision reset the test.timeout flag from TestMain): the go tool
// enforces -timeout from outside the process too, sending SIGQUIT one
// minute past the deadline it injected, so the only honest move is to
// measure the time remaining via t.Deadline and skip rungs that will
// not finish. A plain `go test ./...` therefore passes at the
// 10-minute default with the scale rungs skipped, and an explicit
// generous -timeout (or -timeout=0) unlocks them — that is how the
// full ladder is run by hand or by a scheduled job.
func needBudget(t *testing.T, need time.Duration) {
	t.Helper()
	deadline, ok := t.Deadline()
	if !ok {
		return // -timeout=0: no deadline
	}
	if remain := time.Until(deadline); remain < need {
		t.Skipf("rung needs ~%v of single-core settle work but the test binary's deadline is %v away; rerun with -timeout=150m (or -timeout=0) to include it",
			need, remain.Round(time.Second))
	}
}

// record appends a rung to the SCALE_JSON ladder (no-op unless CI
// exports the variable); a write failure is a test failure so a
// broken artifact pipeline is noticed, not silently published empty.
func record(t *testing.T, e scaletable.Entry) {
	t.Helper()
	if err := scaletable.RecordEnv(e); err != nil {
		t.Errorf("recording scale entry: %v", err)
	}
}

// recordMetrics dumps the rung's full telemetry snapshot to the
// METRICS_JSON artifact (no-op unless CI exports the variable): the
// engine counters and per-phase barrier timings accumulated by the
// settle, plus a lookup-hop histogram from a post-settle sample of
// routed lookups — which is also sanity-checked against the O(log n)
// hop bound the table router guarantees on the stable topology.
func recordMetrics(t *testing.T, label string, nw *rechord.Network, ids []ident.ID, rng *rand.Rand) {
	t.Helper()
	const sample = 256
	cache := routing.NewCache(nw)
	var hops stats.Histogram
	for i := 0; i < sample; i++ {
		from := ids[rng.Intn(len(ids))]
		_, h, err := cache.Route(from, ident.ID(rng.Uint64()))
		if err != nil {
			t.Fatalf("sample lookup: %v", err)
		}
		hops.Observe(float64(h))
	}
	logN := math.Log2(float64(len(ids)))
	if mean := hops.Mean(); mean > 4*logN {
		t.Errorf("sampled lookups average %.1f hops at n=%d, not ~log n (%.1f)", mean, len(ids), logN)
	}
	t.Logf("%s: %d sampled lookups, mean %.2f hops (log2 n = %.1f), p99 %.0f",
		label, sample, hops.Mean(), logN, hops.Percentile(99))

	snap := obs.Snapshot{Engine: nw.Obs().Snapshot()}
	snap.Routing.CacheHits, snap.Routing.CacheMisses = cache.Stats()
	snap.Routing.CacheInvalidations = cache.Invalidations()
	snap.Routing.CacheEntries = cache.Len()
	snap.Routing.LookupHops = obs.SummarizeHist(&hops)
	if err := obs.RecordEnv(label, snap); err != nil {
		t.Errorf("recording metrics snapshot: %v", err)
	}
}

// settle builds the pre-stabilized network of n random peers and runs
// it to quiescence, returning the network, ids, and bytes of heap the
// settled network (standing flows included) holds per peer. The rung
// is recorded to the SCALE_JSON ladder on the way out.
func settle(t *testing.T, n int) (*rechord.Network, []ident.ID, float64) {
	t.Helper()
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	rng := rand.New(rand.NewSource(int64(n)))
	ids := topogen.RandomIDs(n, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	start := time.Now()
	res, err := sim.RunToStable(context.Background(), nw, sim.Options{SkipFinalMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Quiescent() {
		t.Fatal("stable network not quiescent")
	}
	wall := time.Since(start)
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	perPeer := float64(m1.HeapAlloc-m0.HeapAlloc) / float64(n)
	t.Logf("n=%d: settled in %d rounds, %v, %.0f bytes/peer", n, res.Rounds, wall, perPeer)
	record(t, scaletable.Entry{N: n, Model: "sync", Rounds: res.Rounds, WallSeconds: wall.Seconds(), BytesPerPeer: perPeer})
	return nw, ids, perPeer
}

// churnAndReconverge fails and joins a few peers, then demands exact
// re-convergence to the new membership's ideal state. Joiners contact
// the live peer closest to their own identifier — the deployment
// pattern (route to your own id, join there); contacting a random
// far-away peer instead makes integration linear in n (knowledge
// travels hop by hop), which is a property of the protocol, not of
// the engine under test.
func churnAndReconverge(t *testing.T, nw *rechord.Network, ids []ident.ID, rng *rand.Rand) {
	t.Helper()
	n := len(ids)
	for i := 1; i <= 3; i++ {
		if err := nw.Fail(ids[(i*n)/5]); err != nil {
			t.Fatal(err)
		}
	}
	woken := nw.FrontierSize()
	if woken == 0 || woken > n/4 {
		t.Errorf("3 failures woke %d peers, want a local neighborhood (0 < woken <= %d)", woken, n/4)
	}
	for i := 0; i < 3; i++ {
		id := ident.ID(rng.Uint64() | 1)
		live := nw.Peers() // sorted
		contact := live[ident.SuccessorIndex(live, id)]
		if contact == id {
			continue
		}
		if err := nw.Join(id, contact); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	res, err := sim.RunToStable(context.Background(), nw, sim.Options{SkipFinalMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rechord.ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
		t.Fatalf("wrong state after churn: %v", err)
	}
	t.Logf("churn (3 fail + 3 join, woke %d/%d) re-settled in %d rounds, %v", woken, n, res.Rounds, time.Since(start))
}

// TestCompactHandleSmoke is the CI tier: it runs even under -short,
// proving the dense layout converges, survives churn, and matches the
// oracle at a size that takes seconds.
func TestCompactHandleSmoke(t *testing.T) {
	const n = 2048
	nw, ids, _ := settle(t, n)
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("n=%d converged to wrong state: %v", n, err)
	}
	recordMetrics(t, "sync-n2048", nw, ids, rand.New(rand.NewSource(7)))
	churnAndReconverge(t, nw, ids, rand.New(rand.NewSource(99)))
}

// TestN131072ConvergesToIdeal is the headline scale test: the network
// must settle to the exact oracle topology at n = 131072 — two
// doublings past the n=65536 rung the compact-handle relayout bought,
// reachable because a barrier now costs O(frontier), not O(n): the
// inverted wake index finds the dependents of the round's changed
// peers directly, and the per-level settle hash replaced the
// per-barrier deep clone. Churn handling at scale is exercised by
// TestCompactHandleSmoke (and the largescale suite's n=1024 failure
// test); repeating it here adds tens of minutes of runtime without
// adding coverage, and the whole binary must stay inside one go-test
// timeout.
func TestN131072ConvergesToIdeal(t *testing.T) {
	if testing.Short() {
		t.Skip("n=131072 convergence skipped with -short (see TestCompactHandleSmoke for the CI tier)")
	}
	// ~67 minutes measured on the reference machine; demand headroom
	// for slower or contended ones.
	needBudget(t, 90*time.Minute)
	const n = 131072
	nw, ids, perPeer := settle(t, n)
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("n=%d converged to wrong state: %v", n, err)
	}
	// The dense layout's whole point: the settled per-peer footprint —
	// dominated by the standing message flows (~300 messages per peer),
	// with the protocol state, per-level hashes, and the inverted
	// index's dependent lists on top — must stay small enough that
	// n=131072 fits comfortably in memory. The map layout measured
	// ~72 KiB/peer at n=16384 where this layout (with settled peers
	// releasing their rule scratch and right-sized flow buffers)
	// measures ~47 KiB; footprint grows ~log n with the level count,
	// so the ceiling catches a regression without tripping on
	// allocator noise.
	if perPeer > 80*1024 {
		t.Errorf("resident state = %.0f bytes/peer, want well under the map layout's footprint", perPeer)
	}

	// Steady state stays free at this scale too.
	start := time.Now()
	const extra = 1000
	for i := 0; i < extra; i++ {
		nw.Step()
	}
	if per := time.Since(start) / extra; per > time.Millisecond {
		t.Errorf("quiescent round cost %v at n=%d, want O(1)", per, n)
	}
	if nw.FrontierSize() != 0 {
		t.Fatal("quiescent rounds re-dirtied peers")
	}
}

// TestN262144ConvergesToIdeal is the rung the sharded barrier opens:
// one doubling past n=131072. The bound resource at this size is the
// phase-3 publish — every active peer rewriting its standing
// contributions into its recipients' buckets — which the barrier now
// splits into a parallel prepare (per-peer diffing, no shared writes)
// and an ownership-partitioned commit (recipients sharded by slot
// across workers), so wall-clock scales down with cores while the
// result stays bit-identical to Workers=1 (see
// TestWorkersLockstepChurn). On a single core the rung is ~2.5-3h of
// settle work; the budget check keeps a plain `go test ./...` green.
func TestN262144ConvergesToIdeal(t *testing.T) {
	if testing.Short() {
		t.Skip("n=262144 convergence skipped with -short (see TestCompactHandleSmoke for the CI tier)")
	}
	needBudget(t, 210*time.Minute)
	const n = 262144
	nw, ids, perPeer := settle(t, n)
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("n=%d converged to wrong state: %v", n, err)
	}
	// Same ceiling as n=131072: footprint grows ~log n with the level
	// count, and a doubling adds one level, so the 80 KiB/peer bound
	// still holds with margin (~12 GiB resident total at this size).
	if perPeer > 80*1024 {
		t.Errorf("resident state = %.0f bytes/peer, want well under the map layout's footprint", perPeer)
	}

	start := time.Now()
	const extra = 1000
	for i := 0; i < extra; i++ {
		nw.Step()
	}
	if per := time.Since(start) / extra; per > time.Millisecond {
		t.Errorf("quiescent round cost %v at n=%d, want O(1)", per, n)
	}
	if nw.FrontierSize() != 0 {
		t.Fatal("quiescent rounds re-dirtied peers")
	}
}

// TestAsyncN8192ConvergesToIdeal raises the asynchronous tier past
// the largescale suite's n=2048: the event-driven runner — activation
// probability 0.5, messages delayed up to 3 steps — must settle
// n=8192 to the exact oracle state. The async barrier shares the
// synchronous engine's incremental machinery (the wake index and
// settle hashes are maintained by the same runBatch), so the rung
// also pins that the index survives the async delivery paths at
// scale.
func TestAsyncN8192ConvergesToIdeal(t *testing.T) {
	if testing.Short() {
		t.Skip("n=8192 async convergence skipped with -short")
	}
	// ~4 minutes measured on the reference machine.
	needBudget(t, 15*time.Minute)
	const n = 8192
	rng := rand.New(rand.NewSource(int64(n)))
	ids := topogen.RandomIDs(n, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.5, MaxDelay: 3}, rng)
	start := time.Now()
	res, err := sim.RunToStable(context.Background(), runner, sim.Options{SkipFinalMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if !runner.Quiescent() {
		t.Fatal("stable async network not quiescent")
	}
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("n=%d async converged to wrong state: %v", n, err)
	}
	wall := time.Since(start)
	t.Logf("n=%d: settled in %d async steps, %v", n, res.Rounds, wall)
	record(t, scaletable.Entry{N: n, Model: "async", Rounds: res.Rounds, WallSeconds: wall.Seconds()})
	recordMetrics(t, "async-n8192", nw, ids, rng)

	// Quiescent async steps stay frontier-proportional at this scale.
	start = time.Now()
	const extra = 1000
	for i := 0; i < extra; i++ {
		runner.Step()
	}
	if per := time.Since(start) / extra; per > time.Millisecond {
		t.Errorf("quiescent async step cost %v at n=%d, want O(1)", per, n)
	}
	if nw.FrontierSize() != 0 {
		t.Fatal("quiescent async steps re-dirtied peers")
	}
}
