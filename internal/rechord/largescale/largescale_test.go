// Package largescale holds convergence tests beyond the sizes the
// rest of the suite exercises. They exist to pin down the scaling win
// of the activity-tracked round engine: an N=4096 network is far past
// what the exhaustive full-sweep schedule (rules at every peer every
// round, plus a deep-copy snapshot comparison per round for fixed-point
// detection) can finish within a test-timeout budget, while the
// incremental engine settles it in seconds because the frontier
// collapses to the still-active region and quiescence is detected in
// O(1).
package largescale

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/rechord"
	"repro/internal/scaletable"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// record appends a rung to the SCALE_JSON ladder (no-op unless CI
// exports the variable); a write failure is a test failure so a broken
// artifact pipeline is noticed, not silently published empty.
func record(t *testing.T, e scaletable.Entry) {
	t.Helper()
	if err := scaletable.RecordEnv(e); err != nil {
		t.Errorf("recording scale entry: %v", err)
	}
}

func TestN4096ConvergesToIdeal(t *testing.T) {
	if testing.Short() {
		t.Skip("N=4096 convergence skipped with -short")
	}
	const n = 4096
	rng := rand.New(rand.NewSource(4096))
	ids := topogen.RandomIDs(n, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	start := time.Now()
	res, err := sim.RunToStable(context.Background(), nw, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Quiescent() {
		t.Fatal("stable network not quiescent")
	}
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("n=%d converged to wrong state: %v", n, err)
	}
	t.Logf("n=%d: settled in %d rounds, %v", n, res.Rounds, time.Since(start))
	record(t, scaletable.Entry{N: n, Model: "sync", Rounds: res.Rounds, WallSeconds: time.Since(start).Seconds()})

	// Steady state must be free: rounds past the fixed point touch
	// nothing (the full sweep would re-run 4096 peers each time).
	start = time.Now()
	const extra = 1000
	for i := 0; i < extra; i++ {
		nw.Step()
	}
	perRound := time.Since(start) / extra
	t.Logf("quiescent round cost: %v", perRound)
	if nw.FrontierSize() != 0 {
		t.Fatal("quiescent rounds re-dirtied peers")
	}
}

// TestN1024ChurnAbsorbedLocally: a single failure in a quiescent
// N=1024 network must wake only a small neighborhood, not the whole
// ring, and the network must return to the exact ideal state.
func TestN1024ChurnAbsorbedLocally(t *testing.T) {
	if testing.Short() {
		t.Skip("N=1024 churn test skipped with -short")
	}
	const n = 1024
	rng := rand.New(rand.NewSource(1024))
	ids := topogen.RandomIDs(n, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Fail(ids[n/2]); err != nil {
		t.Fatal(err)
	}
	woken := nw.FrontierSize()
	if woken == 0 || woken > n/4 {
		t.Errorf("failure woke %d peers, want a small local neighborhood (0 < woken <= %d)", woken, n/4)
	}
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rechord.ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
		t.Fatalf("wrong state after failure: %v", err)
	}
	t.Logf("failure woke %d/%d peers", woken, n)
}

// TestAsyncN2048Converges: the event-driven asynchronous scheduler
// settles a large network too — the acceptance bar for the scheduler
// layer. The run goes through sim.RunToStable exactly like the
// synchronous path (the unified scheduler interface), with activation
// probability 0.5 and messages delayed up to 3 steps. Beyond
// convergence to the exact ideal state, quiescent async steps must
// stay frontier-proportional: stepping a settled network re-dirties
// nobody and costs microseconds, not an O(n) rebuild.
func TestAsyncN2048Converges(t *testing.T) {
	if testing.Short() {
		t.Skip("N=2048 async convergence skipped with -short")
	}
	const n = 2048
	rng := rand.New(rand.NewSource(2048))
	ids := topogen.RandomIDs(n, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.5, MaxDelay: 3}, rng)
	start := time.Now()
	res, err := sim.RunToStable(context.Background(), runner, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !runner.Quiescent() {
		t.Fatal("stable async network not quiescent")
	}
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("n=%d async converged to wrong state: %v", n, err)
	}
	t.Logf("n=%d: settled in %d async steps, %v", n, res.Rounds, time.Since(start))
	record(t, scaletable.Entry{N: n, Model: "async", Rounds: res.Rounds, WallSeconds: time.Since(start).Seconds()})

	start = time.Now()
	const extra = 1000
	for i := 0; i < extra; i++ {
		runner.Step()
	}
	perStep := time.Since(start) / extra
	t.Logf("quiescent async step cost: %v", perStep)
	if nw.FrontierSize() != 0 {
		t.Fatal("quiescent async steps re-dirtied peers")
	}
	if nw.Round() != 0 {
		t.Fatalf("async run advanced the synchronous round counter to %d", nw.Round())
	}
}
