package rechord_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// TestMultipleSimultaneousFailures: several peers crash in the same
// round of a stable network; the survivors must reconverge to their
// exact stable topology as long as they remain weakly connected.
func TestMultipleSimultaneousFailures(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		ids := topogen.RandomIDs(24, rng)
		nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			t.Fatal(err)
		}
		// Crash 4 random peers at once.
		perm := rng.Perm(len(ids))
		for _, i := range perm[:4] {
			if err := nw.Fail(ids[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !nw.Graph().RealWeaklyConnected() {
			// The stable topology is far denser than a ring; in these
			// trials 4 of 24 failures must not disconnect it.
			t.Fatalf("trial %d: survivors disconnected (unlucky cut)", trial)
		}
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := rechord.ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("trial %d: wrong state after mass failure: %v", trial, err)
		}
	}
}

// TestFailuresDuringConvergence injects crashes at random rounds while
// the network is still stabilizing from a garbage state.
func TestFailuresDuringConvergence(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		ids := topogen.RandomIDs(20, rng)
		nw := topogen.Garbage().Build(ids, rng, rechord.Config{})
		// Let it run a random prefix, then crash a peer, three times.
		for k := 0; k < 3; k++ {
			for r := 0; r < 2+rng.Intn(4); r++ {
				nw.Step()
			}
			peers := nw.Peers()
			if err := nw.Fail(peers[rng.Intn(len(peers))]); err != nil {
				t.Fatal(err)
			}
			if !nw.Graph().RealWeaklyConnected() {
				t.Skipf("trial %d: failure cut the still-converging graph; premise void", trial)
			}
		}
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := rechord.ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("trial %d: wrong state: %v", trial, err)
		}
	}
}

// TestJoinStormThenStable: many peers join a small stable core in the
// same round (beyond the paper's isolated-join analysis) and the
// network still converges to the enlarged stable topology.
func TestJoinStormThenStable(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	ids := topogen.RandomIDs(6, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	joiners := topogen.RandomIDs(12, rng)
	for _, j := range joiners {
		if err := nw.Join(j, ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if nw.NumPeers() != 18 {
		t.Fatalf("NumPeers = %d, want 18", nw.NumPeers())
	}
	if err := rechord.ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
		t.Fatalf("wrong state after join storm: %v", err)
	}
}

// TestShrinkToOnePeer drains the network down to a single peer through
// alternating leaves and failures; every intermediate state must
// reconverge.
func TestShrinkToOnePeer(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	ids := topogen.RandomIDs(8, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	for nw.NumPeers() > 1 {
		peers := nw.Peers()
		victim := peers[rng.Intn(len(peers))]
		var err error
		if rng.Intn(2) == 0 {
			err = nw.Leave(victim)
		} else {
			err = nw.Fail(victim)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			t.Fatalf("at %d peers: %v", nw.NumPeers(), err)
		}
		if err := rechord.ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("at %d peers: %v", nw.NumPeers(), err)
		}
	}
}
