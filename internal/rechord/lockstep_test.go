package rechord_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/topogen"
)

// The incremental (activity-tracked) engine claims exact equivalence
// with the exhaustive full-sweep schedule: for any seed topology and
// any churn, the round-by-round global states — edge sets, rl/rr, and
// pending messages, hence the Graph()/ReChordGraph() exports — are
// identical. These tests execute both engines in lockstep and compare
// after every single round.

// lockstepEvent is one membership change applied to both engines at
// the same round.
type lockstepEvent struct {
	round   int
	kind    int // 0 join, 1 leave, 2 fail
	fresh   ident.ID
	victim  int // index into the peer list at event time
	contact int
}

func runLockstep(t *testing.T, seed int64, n int, gen topogen.Generator, workers, rounds int, events []lockstepEvent) bool {
	t.Helper()
	build := func(cfg rechord.Config) *rechord.Network {
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(n, rng)
		return gen.Build(ids, rng, cfg)
	}
	inc := build(rechord.Config{Workers: workers})
	full := build(rechord.Config{Workers: workers, FullSweep: true})

	apply := func(nw *rechord.Network, ev lockstepEvent) error {
		peers := nw.Peers()
		switch {
		case ev.kind == 0 || len(peers) < 3:
			return nw.Join(ev.fresh, peers[ev.contact%len(peers)])
		case ev.kind == 1:
			return nw.Leave(peers[ev.victim%len(peers)])
		default:
			return nw.Fail(peers[ev.victim%len(peers)])
		}
	}

	for r := 0; r < rounds; r++ {
		for _, ev := range events {
			if ev.round == r {
				if err := apply(inc, ev); err != nil {
					t.Logf("seed=%d round=%d: inc event: %v", seed, r, err)
					return false
				}
				if err := apply(full, ev); err != nil {
					t.Logf("seed=%d round=%d: full event: %v", seed, r, err)
					return false
				}
			}
		}
		inc.Step()
		full.Step()
		if !inc.TakeSnapshot().Equal(full.TakeSnapshot()) {
			t.Logf("seed=%d n=%d gen=%s workers=%d: global state diverged at round %d (frontier=%d)",
				seed, n, gen.Name, workers, r+1, inc.FrontierSize())
			return false
		}
		if !inc.Graph().Equal(full.Graph()) {
			t.Logf("seed=%d n=%d gen=%s workers=%d: Graph() diverged at round %d",
				seed, n, gen.Name, workers, r+1)
			return false
		}
	}
	if !inc.ReChordGraph().Equal(full.ReChordGraph()) {
		t.Logf("seed=%d n=%d gen=%s workers=%d: ReChordGraph() diverged", seed, n, gen.Name, workers)
		return false
	}
	return true
}

// TestLockstepIncrementalMatchesFullSweep is the equivalence property
// over random topologies without churn, for serial and parallel
// execution alike. The round budget runs well past stabilization, so
// the quiescent schedule (empty frontier, identity rounds) is compared
// against full sweeps over the fixed point too.
func TestLockstepIncrementalMatchesFullSweep(t *testing.T) {
	gens := topogen.All()
	f := func(seed int64, sizeRaw, genRaw, workerRaw uint8) bool {
		n := 2 + int(sizeRaw)%14
		gen := gens[int(genRaw)%len(gens)]
		workers := 1 + 3*(int(workerRaw)%2) // 1 or 4
		return runLockstep(t, seed, n, gen, workers, 60, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestLockstepUnderChurn interleaves joins, graceful leaves and crash
// failures at fixed rounds — including mid-convergence and after the
// fixed point — and demands the engines stay identical throughout.
func TestLockstepUnderChurn(t *testing.T) {
	gens := []topogen.Generator{topogen.Random(), topogen.Garbage(), topogen.PreStabilized()}
	f := func(seed int64, sizeRaw, genRaw, workerRaw uint8, evRaw [4]uint8) bool {
		n := 4 + int(sizeRaw)%10
		gen := gens[int(genRaw)%len(gens)]
		workers := 1 + 3*(int(workerRaw)%2)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		events := make([]lockstepEvent, 0, len(evRaw))
		for i, raw := range evRaw {
			events = append(events, lockstepEvent{
				round:   2 + i*11 + int(raw)%5,
				kind:    int(raw) % 3,
				fresh:   ident.ID(rng.Uint64() | 1),
				victim:  rng.Intn(64),
				contact: rng.Intn(64),
			})
		}
		return runLockstep(t, seed, n, gen, workers, 72, events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestLockstepRoundCountsAgree: beyond state equivalence, the
// quiescence-based fixed-point detector must report the same
// rounds-to-stable as the full-sweep snapshot detector.
func TestLockstepRoundCountsAgree(t *testing.T) {
	for _, n := range []int{3, 9, 17, 33} {
		seed := int64(1000 + n)
		build := func(cfg rechord.Config) *rechord.Network {
			rng := rand.New(rand.NewSource(seed))
			ids := topogen.RandomIDs(n, rng)
			return topogen.Random().Build(ids, rng, cfg)
		}
		inc := build(rechord.Config{})
		full := build(rechord.Config{FullSweep: true})

		fullRounds := -1
		prev := full.TakeSnapshot()
		for r := 0; r < 4000; r++ {
			full.Step()
			cur := full.TakeSnapshot()
			if cur.Equal(prev) {
				fullRounds = full.Round() - 1
				break
			}
			prev = cur
		}
		incRounds := -1
		for r := 0; r < 4000; r++ {
			inc.Step()
			if inc.Quiescent() {
				incRounds = inc.LastChangeRound()
				break
			}
		}
		if fullRounds < 0 || incRounds != fullRounds {
			t.Errorf("n=%d: rounds-to-stable %d (incremental) vs %d (full sweep)", n, incRounds, fullRounds)
		}
	}
}
