package rechord

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

func TestMessageString(t *testing.T) {
	m := Message{
		To:   ref.Real(ident.FromFloat(0.5)),
		Kind: graph.Ring,
		Add:  ref.Virtual(ident.FromFloat(0.25), 2),
	}
	s := m.String()
	for _, want := range []string{"R(0.5", "ring", "V(0.25"} {
		if !strings.Contains(s, want) {
			t.Errorf("Message.String() = %q missing %q", s, want)
		}
	}
}

func TestSortedMessagesCanonical(t *testing.T) {
	a := Message{To: ref.Real(1), Kind: graph.Unmarked, Add: ref.Real(2)}
	b := Message{To: ref.Real(1), Kind: graph.Ring, Add: ref.Real(2)}
	c := Message{To: ref.Real(3), Kind: graph.Unmarked, Add: ref.Real(2)}
	d := Message{To: ref.Real(1), Kind: graph.Unmarked, Add: ref.Real(9)}
	x := sortedMessages([]Message{c, d, b, a})
	y := sortedMessages([]Message{a, b, c, d})
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("sortedMessages not canonical: %v vs %v", x, y)
		}
	}
	if x[0] != a {
		t.Errorf("first sorted message = %v, want %v", x[0], a)
	}
}

func TestSnapshotEqualDetectsInboxDifference(t *testing.T) {
	build := func() *Network {
		nw := NewNetwork(Config{})
		nw.AddPeer(ident.FromFloat(0.5))
		return nw
	}
	nw1, nw2 := build(), build()
	if !nw1.TakeSnapshot().Equal(nw2.TakeSnapshot()) {
		t.Fatal("identical fresh networks not Equal")
	}
	nw2.Peer(ident.FromFloat(0.5)).inbox = append(nw2.Peer(ident.FromFloat(0.5)).inbox,
		Message{To: ref.Real(ident.FromFloat(0.5)), Kind: graph.Unmarked, Add: ref.Real(ident.FromFloat(0.9))})
	if nw1.TakeSnapshot().Equal(nw2.TakeSnapshot()) {
		t.Fatal("differing inboxes compared Equal (the round-16 bug)")
	}
}

func TestSnapshotEqualOrderInsensitiveInbox(t *testing.T) {
	msg1 := Message{To: ref.Real(1), Kind: graph.Unmarked, Add: ref.Real(2)}
	msg2 := Message{To: ref.Real(1), Kind: graph.Ring, Add: ref.Real(3)}
	build := func(ms ...Message) *Network {
		nw := NewNetwork(Config{})
		nw.AddPeer(ident.ID(1))
		nw.Peer(ident.ID(1)).inbox = append(nw.Peer(ident.ID(1)).inbox, ms...)
		return nw
	}
	a := build(msg1, msg2)
	b := build(msg2, msg1)
	if !a.TakeSnapshot().Equal(b.TakeSnapshot()) {
		t.Error("inbox order must not affect state equality (delivery is set-union)")
	}
}

func TestVNodeAddGuardsSelfLoop(t *testing.T) {
	v := newVNode(ident.FromFloat(0.5), 2)
	v.addNu(v.Self)
	v.addNr(v.Self)
	v.addNc(v.Self)
	if !v.Nu.Empty() || !v.Nr.Empty() || !v.Nc.Empty() {
		t.Error("self-loop slipped into an edge set")
	}
	other := ref.Real(ident.FromFloat(0.7))
	v.addNu(other)
	if !v.Nu.Contains(other) {
		t.Error("legitimate edge rejected")
	}
}

func TestVNodeCloneIndependent(t *testing.T) {
	v := newVNode(ident.FromFloat(0.5), 1)
	v.addNu(ref.Real(ident.FromFloat(0.7)))
	v.HasRL = true
	v.RL = ref.Real(ident.FromFloat(0.3))
	c := v.clone()
	c.addNu(ref.Real(ident.FromFloat(0.9)))
	if v.Nu.Len() != 1 {
		t.Error("clone shares Nu storage")
	}
	if !v.equal(v.clone()) {
		t.Error("vnode not equal to its own clone")
	}
	if v.equal(c) {
		t.Error("differing vnodes compare equal")
	}
}

func TestRealNodeAccessors(t *testing.T) {
	n := &RealNode{id: ident.FromFloat(0.5), vnodes: []*VNode{
		newVNode(ident.FromFloat(0.5), 0),
		newVNode(ident.FromFloat(0.5), 1),
		newVNode(ident.FromFloat(0.5), 2),
	}}
	if n.ID() != ident.FromFloat(0.5) {
		t.Error("ID accessor wrong")
	}
	if got := n.Levels(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Levels = %v", got)
	}
	if n.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d, want 2", n.MaxLevel())
	}
	sibs := n.siblings()
	if len(sibs) != 3 {
		t.Fatalf("siblings = %v", sibs)
	}
	for i := 1; i < len(sibs); i++ {
		if !sibs[i-1].Less(sibs[i]) {
			t.Error("siblings not sorted")
		}
	}
}

func TestKnownRealsExcludesSelfAndVirtuals(t *testing.T) {
	u := ident.FromFloat(0.5)
	n := &RealNode{id: u, vnodes: []*VNode{newVNode(u, 0)}}
	v := n.vnodes[0]
	v.addNu(ref.Real(ident.FromFloat(0.7)))       // real: counted
	v.addNu(ref.Virtual(ident.FromFloat(0.3), 1)) // virtual: not an edge to a real node
	v.addNr(ref.Real(ident.FromFloat(0.2)))       // ring edges count too
	reals := n.knownReals()
	if len(reals) != 2 {
		t.Fatalf("knownReals = %v, want two entries", reals)
	}
	for _, r := range reals {
		if r == u {
			t.Error("knownReals contains self")
		}
	}
}
