package rechord

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// White-box tests for the activity-tracked scheduler's bookkeeping:
// which events put peers on the frontier, and that a quiescent network
// really is left untouched by Step.

// stableNet builds a small network and runs it to quiescence.
func stableNet(t *testing.T, n int, seed int64) (*Network, []ident.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]ident.ID, 0, n)
	seen := map[ident.ID]bool{}
	for len(ids) < n {
		id := ident.ID(rng.Uint64())
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	nw := NewNetwork(Config{Workers: 1})
	for _, id := range ids {
		nw.AddPeer(id)
	}
	for i := 1; i < len(ids); i++ {
		nw.SeedEdge(ref.Real(ids[i-1]), ref.Real(ids[i]), graph.Unmarked)
	}
	for r := 0; r < 4000; r++ {
		nw.Step()
		if nw.Quiescent() {
			return nw, ids
		}
	}
	t.Fatalf("network of %d peers did not quiesce", n)
	return nil, nil
}

func TestFrontierStartsFullAndDrains(t *testing.T) {
	nw := NewNetwork(Config{Workers: 1})
	for _, x := range []float64{0.1, 0.4, 0.8} {
		nw.AddPeer(ident.FromFloat(x))
	}
	nw.SeedEdge(ref.Real(ident.FromFloat(0.1)), ref.Real(ident.FromFloat(0.4)), graph.Unmarked)
	nw.SeedEdge(ref.Real(ident.FromFloat(0.4)), ref.Real(ident.FromFloat(0.8)), graph.Unmarked)
	if nw.Quiescent() {
		t.Fatal("fresh network must not be quiescent: every peer starts dirty")
	}
	if got := nw.FrontierSize(); got != 3 {
		t.Fatalf("FrontierSize = %d, want all 3 peers", got)
	}
	for r := 0; r < 4000 && !nw.Quiescent(); r++ {
		nw.Step()
	}
	if !nw.Quiescent() {
		t.Fatal("network did not quiesce")
	}
	if got := nw.FrontierSize(); got != 0 {
		t.Fatalf("quiescent FrontierSize = %d, want 0", got)
	}
}

func TestQuiescentStepIsIdentity(t *testing.T) {
	nw, _ := stableNet(t, 12, 42)
	before := nw.TakeSnapshot()
	flow := nw.bucketMsgs
	for i := 0; i < 5; i++ {
		stats := nw.Step()
		if stats.MessagesSent != flow {
			t.Fatalf("quiescent round %d reported %d messages, want steady flow %d",
				i, stats.MessagesSent, flow)
		}
		if stats.VirtualMade != 0 || stats.VirtualKilled != 0 {
			t.Fatalf("quiescent round churned virtual nodes: %+v", stats)
		}
	}
	if !nw.TakeSnapshot().Equal(before) {
		t.Fatal("quiescent Step changed the global state")
	}
}

// TestFrontierRedirtyOnLateMessage: a one-shot message arriving at a
// settled peer must put exactly the affected region back on the
// frontier, and the network must absorb it and quiesce again.
func TestFrontierRedirtyOnLateMessage(t *testing.T) {
	nw, ids := stableNet(t, 10, 7)
	target := ids[3]
	// An edge insertion the stable state does not contain: point the
	// peer at some far-away node it has no business keeping.
	var other ident.ID
	for _, id := range ids {
		if id != target {
			other = id
		}
	}
	nw.routeMessage(Message{To: ref.Real(target), Kind: graph.Unmarked, Add: ref.Real(other)})
	if nw.Quiescent() {
		t.Fatal("late inbox message did not re-dirty the recipient")
	}
	if !nw.node(target).dirty {
		t.Fatal("recipient of one-shot message not on the frontier")
	}
	for r := 0; r < 4000 && !nw.Quiescent(); r++ {
		nw.Step()
	}
	if !nw.Quiescent() {
		t.Fatal("network did not re-quiesce after the late message")
	}
	if err := ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("state wrong after absorbing late message: %v", err)
	}
}

func TestFrontierDirtyOnJoin(t *testing.T) {
	nw, ids := stableNet(t, 8, 11)
	joiner := ident.ID(rand.New(rand.NewSource(99)).Uint64() | 1)
	if err := nw.Join(joiner, ids[0]); err != nil {
		t.Fatal(err)
	}
	if nw.Quiescent() {
		t.Fatal("join did not dirty the frontier")
	}
	if !nw.node(joiner).dirty {
		t.Fatal("joiner not on the frontier")
	}
	for r := 0; r < 4000 && !nw.Quiescent(); r++ {
		nw.Step()
	}
	if err := ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
		t.Fatalf("state wrong after join: %v", err)
	}
}

func TestFrontierDirtyOnLeaveAndFail(t *testing.T) {
	for name, depart := range map[string]func(*Network, ident.ID) error{
		"leave": (*Network).Leave,
		"fail":  (*Network).Fail,
	} {
		nw, ids := stableNet(t, 9, 23)
		victim := ids[4]
		// At the fixed point the victim's closest neighbors reference
		// it; after departure they must be woken for the purge.
		if err := depart(nw, victim); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if nw.Quiescent() {
			t.Fatalf("%s did not dirty any peer", name)
		}
		woke := 0
		for _, n := range nw.pt.nodes {
			if n != nil && n.dirty {
				woke++
			}
		}
		if woke == 0 {
			t.Fatalf("%s: no referencing peer woken", name)
		}
		for r := 0; r < 4000 && !nw.Quiescent(); r++ {
			nw.Step()
		}
		if err := ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Fatalf("%s: state wrong after departure: %v", name, err)
		}
	}
}

// TestFrontierBucketAccounting: the standing-bucket message counter
// matches a direct count at quiescence and after churn re-settles.
func TestFrontierBucketAccounting(t *testing.T) {
	nw, ids := stableNet(t, 10, 31)
	count := func() int {
		c := 0
		for _, n := range nw.pt.nodes {
			if n == nil {
				continue
			}
			for _, b := range n.in {
				c += b.flow.spanLen(b.span)
			}
		}
		return c
	}
	if got := count(); got != nw.bucketMsgs {
		t.Fatalf("bucketMsgs = %d, direct count = %d", nw.bucketMsgs, got)
	}
	if err := nw.Fail(ids[2]); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4000 && !nw.Quiescent(); r++ {
		nw.Step()
	}
	if got := count(); got != nw.bucketMsgs {
		t.Fatalf("after churn: bucketMsgs = %d, direct count = %d", nw.bucketMsgs, got)
	}
}
