package rechord

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// Config controls protocol variants and execution.
type Config struct {
	// DisableRing turns off rule 5, for the linearization-only
	// ablation: the network converges to a sorted list, never a ring.
	DisableRing bool
	// DisableConnection turns off rule 6, demonstrating why connection
	// edges are needed (sibling clusters can stay disconnected).
	DisableConnection bool
	// Workers sets the number of goroutines that execute node rules in
	// parallel within a round. 0 means GOMAXPROCS; 1 forces serial
	// execution. Results are identical for any value: nodes only read
	// their own state plus an immutable snapshot, and all cross-node
	// effects are delayed messages merged at the round barrier.
	Workers int
}

// RoundStats reports what happened during one Step.
type RoundStats struct {
	Round         int // the round number just executed (1-based)
	MessagesSent  int
	VirtualMade   int
	VirtualKilled int
}

// Network is the synchronous-round simulation of a Re-Chord system:
// the set of peers, their virtual nodes and edge sets, and the message
// queues between rounds. It implements the standard synchronous
// message-passing model of Section 2.1.
type Network struct {
	cfg   Config
	nodes map[ident.ID]*RealNode
	order []ident.ID // sorted, for deterministic iteration
	round int

	// levelOf snapshots each peer's current max level at the start of
	// a round so that stale references to deleted virtual nodes can be
	// detected (see purge).
	levelOf map[ident.ID]int
}

// NewNetwork creates an empty network.
func NewNetwork(cfg Config) *Network {
	return &Network{
		cfg:     cfg,
		nodes:   make(map[ident.ID]*RealNode),
		levelOf: make(map[ident.ID]int),
	}
}

// AddPeer inserts a real node with the identifier and no edges. It is
// the caller's job (topogen, Join) to give it initial knowledge.
func (nw *Network) AddPeer(id ident.ID) *RealNode {
	if _, ok := nw.nodes[id]; ok {
		panic(fmt.Sprintf("rechord: duplicate peer id %s", id))
	}
	n := &RealNode{id: id, vnodes: map[int]*VNode{0: newVNode(id, 0)}}
	nw.nodes[id] = n
	nw.insertOrder(id)
	return n
}

func (nw *Network) insertOrder(id ident.ID) {
	i := 0
	for i < len(nw.order) && nw.order[i] < id {
		i++
	}
	nw.order = append(nw.order, 0)
	copy(nw.order[i+1:], nw.order[i:])
	nw.order[i] = id
}

func (nw *Network) removeOrder(id ident.ID) {
	for i, x := range nw.order {
		if x == id {
			nw.order = append(nw.order[:i], nw.order[i+1:]...)
			return
		}
	}
}

// SeedEdge gives the peer owning `from` initial knowledge of `to` as an
// edge of the kind, creating the source virtual node if needed. Used to
// build arbitrary initial states.
func (nw *Network) SeedEdge(from, to ref.Ref, k graph.Kind) {
	n, ok := nw.nodes[from.Owner]
	if !ok {
		panic(fmt.Sprintf("rechord: SeedEdge from unknown peer %s", from.Owner))
	}
	v, ok := n.vnodes[from.Level]
	if !ok {
		v = newVNode(from.Owner, from.Level)
		n.vnodes[from.Level] = v
	}
	switch k {
	case graph.Unmarked:
		v.addNu(to)
	case graph.Ring:
		v.addNr(to)
	case graph.Connection:
		v.addNc(to)
	}
}

// Peers returns the identifiers of all real nodes in increasing order.
func (nw *Network) Peers() []ident.ID {
	return append([]ident.ID(nil), nw.order...)
}

// Peer returns the real node with the identifier, or nil.
func (nw *Network) Peer(id ident.ID) *RealNode { return nw.nodes[id] }

// NumPeers returns the number of real nodes.
func (nw *Network) NumPeers() int { return len(nw.nodes) }

// Round returns the number of rounds executed so far.
func (nw *Network) Round() int { return nw.round }

// snapshotLevels records each peer's simulated levels for stale-ref
// detection during this round.
func (nw *Network) snapshotLevels() {
	for id := range nw.levelOf {
		delete(nw.levelOf, id)
	}
	for id, n := range nw.nodes {
		nw.levelOf[id] = n.MaxLevel()
	}
}

// resolve maps a reference onto a node that currently exists: dead
// peers yield ok=false; references to deleted virtual levels of a live
// peer fall back to the peer's real node, which in a deployment is the
// process that answers for all of the peer's virtual addresses.
func (nw *Network) resolve(r ref.Ref) (ref.Ref, bool) {
	max, ok := nw.levelOf[r.Owner]
	if !ok {
		return ref.Ref{}, false
	}
	if r.Level > max {
		return ref.Real(r.Owner), true
	}
	return r, true
}

// purge rewrites every edge set of n, dropping references to departed
// peers and redirecting references to deleted virtual nodes to the
// owning peer (perfect failure detection, the substitution documented
// in DESIGN.md for the paper's implicit fault model).
func (nw *Network) purge(n *RealNode) {
	for _, v := range n.vnodes {
		for _, s := range []*ref.Set{&v.Nu, &v.Nr, &v.Nc} {
			var fixed []ref.Ref
			dirty := false
			for _, r := range s.Slice() {
				rr, ok := nw.resolve(r)
				if !ok || rr != r {
					dirty = true
					if ok {
						fixed = append(fixed, rr)
					}
					continue
				}
				fixed = append(fixed, r)
			}
			if dirty {
				s.Clear()
				for _, r := range fixed {
					if r != v.Self {
						s.Add(r)
					}
				}
			}
		}
	}
}

// deliver applies the inbox of n: delayed edge insertions from last
// round. Messages to virtual levels the peer no longer simulates are
// merged into the closest surviving virtual node u_m, per rule 1's
// merge semantics.
func (nw *Network) deliver(n *RealNode) {
	for _, msg := range n.inbox {
		lvl := msg.To.Level
		v, ok := n.vnodes[lvl]
		if !ok {
			v = n.vnodes[n.MaxLevel()]
		}
		switch msg.Kind {
		case graph.Unmarked:
			v.addNu(msg.Add)
		case graph.Ring:
			v.addNr(msg.Add)
		case graph.Connection:
			v.addNc(msg.Add)
		}
	}
	n.inbox = n.inbox[:0]
}

// neighborView is the immutable published state other nodes may read
// in guards (the state-reading model): rl/rr per node as of the round
// start, used by rule 3's "v > rl(y)" guard.
type neighborView struct {
	rl, rr       map[ref.Ref]ref.Ref
	hasRL, hasRR map[ref.Ref]bool
}

func (nw *Network) buildView() *neighborView {
	view := &neighborView{
		rl:    make(map[ref.Ref]ref.Ref),
		rr:    make(map[ref.Ref]ref.Ref),
		hasRL: make(map[ref.Ref]bool),
		hasRR: make(map[ref.Ref]bool),
	}
	for _, n := range nw.nodes {
		for _, v := range n.vnodes {
			if v.HasRL {
				view.rl[v.Self] = v.RL
				view.hasRL[v.Self] = true
			}
			if v.HasRR {
				view.rr[v.Self] = v.RR
				view.hasRR[v.Self] = true
			}
		}
	}
	return view
}

// Step executes one synchronous round: deliver last round's messages,
// purge dead references, then run rules 1-6 at every peer (in parallel
// across peers) and enqueue the generated messages for the next round.
func (nw *Network) Step() RoundStats {
	nw.round++
	stats := RoundStats{Round: nw.round}

	nw.snapshotLevels()
	for _, id := range nw.order {
		n := nw.nodes[id]
		nw.deliver(n)
		nw.purge(n)
	}
	view := nw.buildView()

	workers := nw.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nw.order) {
		workers = len(nw.order)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]nodeResult, len(nw.order))
	if workers == 1 {
		for i, id := range nw.order {
			results[i] = nw.runRules(nw.nodes[id], view)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int, len(nw.order))
		for i := range nw.order {
			next <- i
		}
		close(next)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = nw.runRules(nw.nodes[nw.order[i]], view)
				}
			}()
		}
		wg.Wait()
	}

	// Round barrier: route all messages to their destination inboxes.
	for i, res := range results {
		nw.nodes[nw.order[i]].lastOut = res.out
		stats.VirtualMade += res.made
		stats.VirtualKilled += res.killed
		for _, msg := range res.out {
			dst, ok := nw.nodes[msg.To.Owner]
			if !ok {
				continue // destination departed this round
			}
			dst.inbox = append(dst.inbox, msg)
			stats.MessagesSent++
		}
	}
	return stats
}

// nodeResult carries one peer's delayed effects out of the parallel
// section.
type nodeResult struct {
	out          []Message
	made, killed int
}

// Snapshot is a deep copy of the network state at a round boundary,
// used for fixed-point detection and analysis.
type Snapshot struct {
	Round int
	nodes map[ident.ID]*RealNode
}

// TakeSnapshot deep-copies the current state (including pending
// inboxes, which are part of the global state of the synchronous
// model).
func (nw *Network) TakeSnapshot() *Snapshot {
	s := &Snapshot{Round: nw.round, nodes: make(map[ident.ID]*RealNode, len(nw.nodes))}
	for id, n := range nw.nodes {
		s.nodes[id] = n.clone()
	}
	return s
}

// Equal reports whether two snapshots are identical global states.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if len(s.nodes) != len(o.nodes) {
		return false
	}
	for id, n := range s.nodes {
		on, ok := o.nodes[id]
		if !ok || !n.equal(on) {
			return false
		}
	}
	return true
}

// Graph exports the current state as a graph snapshot over all real
// and virtual nodes with their marked edges. Edges pending in inboxes
// (delayed assignments already issued, visible next round) are
// included: in the synchronous model they are part of the global
// state, and the steady-state connection- and ring-edge flows live
// there at round boundaries.
func (nw *Network) Graph() *graph.Graph {
	g := graph.New()
	for _, id := range nw.order {
		n := nw.nodes[id]
		for _, v := range n.vnodesByLevel() {
			g.AddNode(v.Self)
			for _, r := range v.Nu.Slice() {
				g.AddEdge(v.Self, r, graph.Unmarked)
			}
			for _, r := range v.Nr.Slice() {
				g.AddEdge(v.Self, r, graph.Ring)
			}
			for _, r := range v.Nc.Slice() {
				g.AddEdge(v.Self, r, graph.Connection)
			}
		}
	}
	for _, id := range nw.order {
		for _, msg := range nw.nodes[id].inbox {
			if msg.To != msg.Add {
				g.AddEdge(msg.To, msg.Add, msg.Kind)
			}
		}
	}
	return g
}

// ReChordGraph exports E_ReChord (Section 2.2): the projection of the
// unmarked and ring edges onto the real nodes — edge (u,v) whenever
// some (u_i, v) is in E_u or E_r. Self-loops from edges between a
// peer's own virtual nodes are omitted.
func (nw *Network) ReChordGraph() *graph.Graph {
	g := graph.New()
	for _, id := range nw.order {
		g.AddNode(ref.Real(id))
	}
	for _, id := range nw.order {
		n := nw.nodes[id]
		for _, v := range n.vnodes {
			for _, set := range []ref.Set{v.Nu, v.Nr} {
				for _, r := range set.Slice() {
					if r.Owner != id {
						g.AddEdge(ref.Real(id), ref.Real(r.Owner), graph.Unmarked)
					}
				}
			}
		}
	}
	return g
}
