package rechord

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/ref"
)

// Config controls protocol variants and execution.
type Config struct {
	// DisableRing turns off rule 5, for the linearization-only
	// ablation: the network converges to a sorted list, never a ring.
	DisableRing bool
	// DisableConnection turns off rule 6, demonstrating why connection
	// edges are needed (sibling clusters can stay disconnected).
	DisableConnection bool
	// Workers sets the number of goroutines that execute node rules in
	// parallel within a round. 0 means GOMAXPROCS; 1 forces serial
	// execution. Results are identical for any value: nodes only read
	// their own state plus an immutable snapshot, and all cross-node
	// effects are delayed messages merged at the round barrier.
	Workers int
	// FullSweep disables the activity-tracked scheduler and runs rules
	// 1-6 at every peer every round, the paper's literal execution
	// model. The default incremental schedule produces the identical
	// round-by-round global state (see DESIGN.md for the argument and
	// the lockstep property test for the proof-by-execution); FullSweep
	// keeps the exhaustive schedule available as the equivalence
	// baseline and for debugging.
	FullSweep bool
	// DeepCopyFlows disables copy-on-write flow sharing: every standing
	// bucket stores a private single-span copy of the sender's
	// contribution instead of referencing the sender's immutable flow
	// template. Purely a storage fallback — settle decisions, wakes, and
	// delivery are identical — kept as the equivalence baseline the
	// shared-flow lockstep suite compares against.
	DeepCopyFlows bool
	// ParanoidSettle cross-checks the incremental barrier machinery
	// against its O(n) baselines on every batch: the hash-based settle
	// decision against the old clone-and-compare, and the inverted
	// dependency index's wake set against the full-peer scan. Any
	// disagreement panics. Intended for tests (the lockstep suites run
	// with it on); it restores the per-barrier clone cost the hashes
	// exist to remove.
	ParanoidSettle bool
}

// RoundStats reports what happened during one Step of a Scheduler:
// one synchronous round, or one asynchronous time step.
type RoundStats struct {
	Round         int // the round or step number just executed (1-based)
	Activated     int // peers whose rules ran this step
	MessagesSent  int
	VirtualMade   int
	VirtualKilled int
}

// viewEntry is one virtual node's published rl/rr state, readable by
// other peers' rule-3 guards (the state-reading model). The zero value
// means "nothing published".
type viewEntry struct {
	rl, rr       ref.Ref
	hasRL, hasRR bool
}

// publish extracts the published tuple of a virtual node, normalized
// so that unset sides carry a zero ref and absent == zero entry.
func publish(v *VNode) viewEntry {
	var e viewEntry
	if v.HasRL {
		e.hasRL, e.rl = true, v.RL
	}
	if v.HasRR {
		e.hasRR, e.rr = true, v.RR
	}
	return e
}

// Network is the synchronous-round simulation of a Re-Chord system:
// the set of peers, their virtual nodes and edge sets, and the message
// queues between rounds. It implements the standard synchronous
// message-passing model of Section 2.1.
//
// Step runs an activity-tracked (dirty-set) schedule: only peers whose
// inputs changed since their last execution run rules 1-6; peers at a
// local fixed point are skipped entirely, and their repeating output
// flow is represented by the standing per-sender inbox buckets (see
// RealNode.in). A network with an empty frontier is quiescent: Step
// degenerates to a counter increment, giving O(1) fixed-point
// detection.
type Network struct {
	cfg   Config
	pt    interner   // id ↔ dense slot registry; all hot per-peer state hangs off it
	order []ident.ID // sorted, for deterministic iteration
	round int

	// view is the published rl/rr state of every virtual node,
	// slot-indexed: view[slot][level] is the entry other peers' rule-3
	// guards read. Inner slices track each peer's level span and are
	// maintained incrementally at round barriers; rules read them
	// concurrently during the parallel phase, writes happen only
	// between phases. A zero entry means "nothing published" (the old
	// map representation only stored non-zero entries).
	view [][]viewEntry

	// vhash is the per-(slot, level) content hash of every peer's
	// virtual nodes, the incremental settle check's state (see
	// hash.go). Between batches vhash[slot] describes the peer's
	// current state; phase 2 recomputes it for the peers that ran.
	vhash [][]uint64

	// deps is the inverted dependency index (see depindex.go):
	// referenced owner identifier -> peers whose edge sets or standing
	// buckets mention it. stateDeps[slot] is the peer's own edge-set
	// contribution (sorted owner multiset), diffed against the index at
	// the barrier when the peer's content hash changed.
	deps      depIndex
	stateDeps [][]ownerCount

	// depOwners/depCounts are refreshStateDeps scratch (serial-route
	// schedulers' barriers and out-of-band mutation points only; the
	// synchronous engine diffs into per-index prep scratch instead, see
	// barrier.go).
	depOwners []ident.ID
	depCounts []ownerCount

	// frontier lists the slots of peers whose dirty flag is set.
	// Entries may be stale (peer departed, slot re-collected); Step
	// filters by liveness and the flag.
	frontier []uint32

	// lastChange is the most recent round whose execution changed the
	// global state, the quantity convergence experiments report.
	lastChange int

	// epochClock issues peer change epochs (RealNode.epoch): it is
	// incremented on every bump, so two changes to the same peer are
	// never stamped equal even within one round (AddPeer followed by
	// SeedEdge before the first Step, for instance).
	epochClock int

	// bucketMsgs counts the messages across all standing buckets: the
	// per-round message flow of the current schedule.
	bucketMsgs int

	// flow is the authoritative flow-storage accounting (live templates,
	// resident bytes, shared vs unique bucket bytes, install tallies).
	// Serial mutation points update it directly; the sharded commit
	// accumulates per-worker tallies merged at the barrier. Flushed to
	// the telemetry gauges by flushFlowGauges.
	flow flowTally

	// routeFlow exposes the running batch peer's freshly built flow
	// template (prepOut.newFlow) to the serial route callbacks, which
	// install recipient buckets from its spans. Set by the epilogue
	// before each route call; nil when the peer's output did not change.
	routeFlow *flowTemplate

	pool    *workerPool
	active  []uint32
	results []nodeResult
	pres    [][]*VNode

	// prep holds the per-active-index scratch of the parallel prepare
	// sub-phase and commit the per-worker commit outputs (see
	// barrier.go); both reuse their buffers across batches and are
	// dropped together with results/pres when the frontier contracts.
	prep   []prepOut
	commit []commitShard

	// br is the persistent batch fan-out machinery (task closure,
	// WaitGroup, work counter, per-phase bodies) reused across batches;
	// bActive/bSettle/bSync/commitW are the running batch's parameters,
	// read by br's persistent closures instead of being captured fresh
	// every batch.
	br      batchRun
	bActive []uint32
	bSettle bool
	bSync   bool
	commitW int

	// ownerChangedB/viewChangedB are the reusable per-barrier change
	// sets feeding wakeDependents and onBarrier — cleared, never
	// reallocated, after each batch.
	ownerChangedB map[ident.ID]bool
	viewChangedB  map[ref.Ref]bool

	// rrMsgs is rerouteWith's span-decode scratch (serial-route
	// schedulers only): the reconstituted contribution handed to the
	// onChange mirror callback, recycled across calls.
	rrMsgs []Message

	// met is the engine's always-on telemetry (shared with any
	// AsyncRunner driving this network). The hot-path contract: a
	// quiescent Step adds exactly one atomic increment; a non-quiescent
	// batch tallies into plain integers and flushes one atomic add per
	// counter at the barrier. Embedded by value so a zero-constructed
	// Network is still safe to step.
	met obs.EngineMetrics

	// onBarrier, when set, observes the batch barrier's change sets
	// right where wakeDependents consumes them: the owners whose level
	// span moved and the virtual refs whose published view changed this
	// batch. Partitioned schedulers hook it to forward view updates to
	// the processes hosting the dependents (see partition.go); the maps
	// are the barrier's own and must not be retained.
	onBarrier func(owners map[ident.ID]bool, refs map[ref.Ref]bool)
}

// Obs returns the engine's telemetry counters. The returned metrics
// are live and safe to read concurrently with stepping.
func (nw *Network) Obs() *obs.EngineMetrics { return &nw.met }

// rrGroup is one recipient's slice of a rerouted output.
type rrGroup struct {
	owner ident.ID
	msgs  []Message
}

// NewNetwork creates an empty network.
func NewNetwork(cfg Config) *Network {
	return &Network{cfg: cfg}
}

// Reserve pre-sizes the per-peer tables for n additional peers, so
// bulk topology builds (topogen, large-scale experiments) do not grow
// the dense state peer by peer.
func (nw *Network) Reserve(n int) {
	nw.pt.reserve(n)
	if cap(nw.view)-len(nw.view) < n {
		nw.view = append(make([][]viewEntry, 0, len(nw.view)+n), nw.view...)
	}
	if cap(nw.vhash)-len(nw.vhash) < n {
		nw.vhash = append(make([][]uint64, 0, len(nw.vhash)+n), nw.vhash...)
	}
	if cap(nw.stateDeps)-len(nw.stateDeps) < n {
		nw.stateDeps = append(make([][]ownerCount, 0, len(nw.stateDeps)+n), nw.stateDeps...)
	}
	if cap(nw.order)-len(nw.order) < n {
		nw.order = append(make([]ident.ID, 0, len(nw.order)+n), nw.order...)
	}
}

// node returns the live peer registered under the identifier, or nil.
func (nw *Network) node(id ident.ID) *RealNode { return nw.pt.node(id) }

// AddPeer inserts a real node with the identifier and no edges. It is
// the caller's job (topogen, Join) to give it initial knowledge.
func (nw *Network) AddPeer(id ident.ID) *RealNode {
	if _, ok := nw.pt.lookup(id); ok {
		panic(fmt.Sprintf("rechord: duplicate peer id %s", id))
	}
	n := &RealNode{id: id, vnodes: []*VNode{newVNode(id, 0)}}
	slot := nw.pt.intern(n)
	for int(slot) >= len(nw.view) {
		nw.view = append(nw.view, nil)
		nw.vhash = append(nw.vhash, nil)
		nw.stateDeps = append(nw.stateDeps, nil)
	}
	nw.view[slot] = nw.view[slot][:0]
	nw.view[slot] = append(nw.view[slot], viewEntry{})
	nw.vhash[slot] = append(nw.vhash[slot][:0], hashVNode(n.vnodes[0]))
	nw.stateDeps[slot] = nw.stateDeps[slot][:0] // a fresh peer references nothing
	nw.bumpEpoch(n)
	nw.insertOrder(id)
	nw.markDirtyIdx(slot)
	if nw.round > 0 {
		// Re-materialize standing flow addressed to this identifier: a
		// peer re-joining under an id that live senders still target
		// must see their repeating messages, exactly as a full sweep
		// would re-deliver them. Peers that merely hold stale
		// references to the id behave differently now that it resolves
		// again, so they are woken too.
		for _, s := range nw.pt.nodes {
			if s == nil || s == n || s.lastFlow == nil {
				continue
			}
			si := s.lastFlow.findSpan(id)
			if si < 0 {
				continue
			}
			nw.bucketMsgs += s.lastFlow.spanLen(si)
			nw.depAddSpan(slot, s.lastFlow, si)
			nw.installBucket(n, s.h(), s.lastFlow, si, &nw.flow)
		}
		nw.flushFlowGauges()
		nw.wakeDependents(map[ident.ID]bool{id: true}, nil)
	}
	return n
}

func (nw *Network) insertOrder(id ident.ID) {
	i := 0
	for i < len(nw.order) && nw.order[i] < id {
		i++
	}
	nw.order = append(nw.order, 0)
	copy(nw.order[i+1:], nw.order[i:])
	nw.order[i] = id
}

func (nw *Network) removeOrder(id ident.ID) {
	for i, x := range nw.order {
		if x == id {
			nw.order = append(nw.order[:i], nw.order[i+1:]...)
			return
		}
	}
}

// markDirtyIdx puts the peer in the slot on the frontier: its inputs
// (inbox, purge environment, or published neighbor state) may have
// changed, so the next Step must run its rules.
func (nw *Network) markDirtyIdx(slot uint32) {
	if n := nw.pt.nodes[slot]; n != nil && !n.dirty {
		n.dirty = true
		nw.frontier = append(nw.frontier, slot)
	}
}

// markDirty is markDirtyIdx for callers holding only the identifier.
func (nw *Network) markDirty(id ident.ID) {
	if slot, ok := nw.pt.lookup(id); ok {
		nw.markDirtyIdx(slot)
	}
}

// Wake schedules the peer to run in the next round. State reached
// through the public API (Step, Join, Leave, Fail, SeedEdge) wakes the
// affected peers automatically; callers that mutate a peer's state out
// of band (fault injection, perturbation tests) must Wake it so the
// activity scheduler notices the change. Waking an identifier that is
// unknown — never present, or departed (including via a now-stale
// rejoin) — is an explicit no-op: there is no peer to schedule, and a
// later AddPeer under the same identifier starts dirty anyway.
func (nw *Network) Wake(id ident.ID) {
	slot, ok := nw.pt.lookup(id)
	if !ok {
		return
	}
	nw.markDirtyIdx(slot)
}

// Quiescent reports whether the frontier is empty: no peer's inputs
// have changed since it last reached a local fixed point. A quiescent
// network is at the global fixed point, and every further Step is the
// identity on the global state.
func (nw *Network) Quiescent() bool {
	for _, slot := range nw.frontier {
		if n := nw.pt.nodes[slot]; n != nil && n.dirty {
			return false
		}
	}
	return true
}

// FrontierSize returns the number of peers currently scheduled to run
// in the next round. Stale frontier entries (a peer that departed
// while dirty, its slot possibly re-tenanted) are deduplicated the
// same way Step's collection pass is: by the dirty flag, counting each
// slot once.
func (nw *Network) FrontierSize() int {
	seen := make(map[uint32]bool, len(nw.frontier))
	c := 0
	for _, slot := range nw.frontier {
		if seen[slot] {
			continue
		}
		seen[slot] = true
		if n := nw.pt.nodes[slot]; n != nil && n.dirty {
			c++
		}
	}
	return c
}

// Incremental reports whether the activity-tracked scheduler is in
// effect (false under Config.FullSweep).
func (nw *Network) Incremental() bool { return !nw.cfg.FullSweep }

// LastChangeRound returns the most recent round whose execution
// changed the global state (0 if no round changed anything yet).
func (nw *Network) LastChangeRound() int { return nw.lastChange }

// bumpEpoch stamps the peer with a fresh change epoch.
func (nw *Network) bumpEpoch(n *RealNode) {
	nw.epochClock++
	n.epoch = nw.epochClock
}

// PeerEpoch returns the peer's current change epoch: a monotone stamp
// that advances whenever the peer's own protocol state (virtual nodes,
// edge sets, rl/rr) may have changed. Derived per-peer state — a
// routing table read off the peer's virtual nodes, say — is fresh
// exactly as long as the epoch it was computed under still equals the
// current one. The second result is false when the peer is not in the
// network. The incremental scheduler stamps only peers whose state
// actually changed; under Config.FullSweep every executed peer is
// stamped every round (conservative, so caches merely lose their
// effectiveness, never their correctness).
func (nw *Network) PeerEpoch(id ident.ID) (int, bool) {
	n := nw.pt.node(id)
	if n == nil {
		return 0, false
	}
	return n.epoch, true
}

// PeerSlot exposes the peer's dense interner slot and the generation
// of its current incarnation. Slot-indexed side tables (the routing
// table cache, say) use the pair instead of an id-keyed map: the slot
// addresses the entry, the generation guards against a slot reused by
// a later peer. ok is false when the peer is not in the network.
func (nw *Network) PeerSlot(id ident.ID) (slot int, gen uint32, ok bool) {
	i, ok := nw.pt.lookup(id)
	if !ok {
		return 0, 0, false
	}
	return int(i), nw.pt.gens[i], true
}

// SlotSpan returns the size of the interner's slot space (live plus
// free slots): the bound consumers sizing slot-indexed tables need.
func (nw *Network) SlotSpan() int { return nw.pt.span() }

// PeerSlotEpoch is PeerSlot and PeerEpoch in one resolution: slot,
// generation and change epoch of the peer's current incarnation.
func (nw *Network) PeerSlotEpoch(id ident.ID) (slot int, gen uint32, epoch int, ok bool) {
	i, ok := nw.pt.lookup(id)
	if !ok {
		return 0, 0, 0, false
	}
	return int(i), nw.pt.gens[i], nw.pt.nodes[i].epoch, true
}

// EpochClock returns the current value of the global epoch clock: the
// monotone counter that stamps per-peer change epochs. It advances
// whenever any peer's protocol state changes, so observing it move
// between two points in time means some peer's state (and any derived
// cache entry) changed in between.
func (nw *Network) EpochClock() int { return nw.epochClock }

// SeedEdge gives the peer owning `from` initial knowledge of `to` as an
// edge of the kind, creating the source virtual node if needed. Used to
// build arbitrary initial states.
func (nw *Network) SeedEdge(from, to ref.Ref, k graph.Kind) {
	slot, ok := nw.pt.lookup(from.Owner)
	if !ok {
		panic(fmt.Sprintf("rechord: SeedEdge from unknown peer %s", from.Owner))
	}
	n := nw.pt.nodes[slot]
	v := n.ensureLevel(from.Level)
	if int32(from.Level) > nw.pt.maxLv[slot] {
		nw.pt.maxLv[slot] = int32(from.Level)
	}
	added := false
	if to != v.Self {
		switch k {
		case graph.Unmarked:
			added = v.Nu.Add(to)
		case graph.Ring:
			added = v.Nr.Add(to)
		case graph.Connection:
			added = v.Nc.Add(to)
		}
	}
	// Out-of-band state mutation: keep the stored content hashes and
	// the inverted dependency index describing the current state. Bulk
	// seeding (topogen) calls SeedEdge once per edge, so the update is
	// incremental — new levels are hashed as they appear, the touched
	// level is rehashed, and the one new reference enters the index —
	// instead of a whole-peer refresh per call.
	hs := nw.vhash[slot]
	for len(hs) < len(n.vnodes) {
		hs = append(hs, hashVNode(n.vnodes[len(hs)]))
	}
	hs[from.Level] = hashVNode(v)
	nw.vhash[slot] = hs
	if added {
		nw.deps.add(to.Owner, slot, 1)
		nw.stateDepAdd(slot, to.Owner)
	}
	nw.bumpEpoch(n)
	nw.markDirtyIdx(slot)
}

// Peers returns the identifiers of all real nodes in increasing order.
func (nw *Network) Peers() []ident.ID {
	return append([]ident.ID(nil), nw.order...)
}

// Peer returns the real node with the identifier, or nil.
func (nw *Network) Peer(id ident.ID) *RealNode { return nw.pt.node(id) }

// NumPeers returns the number of real nodes.
func (nw *Network) NumPeers() int { return nw.pt.live }

// Round returns the number of rounds executed so far.
func (nw *Network) Round() int { return nw.round }

// rebuildLevels recomputes the per-slot max levels from scratch. The
// engine maintains them incrementally; the white-box rule fixtures
// refresh them wholesale after mutating peer state directly.
func (nw *Network) rebuildLevels() {
	for slot, n := range nw.pt.nodes {
		if n != nil {
			nw.pt.maxLv[slot] = int32(n.MaxLevel())
		}
	}
}

// rebuildView recomputes the published rl/rr view from scratch (see
// rebuildLevels for when this is needed instead of the incremental
// maintenance).
func (nw *Network) rebuildView() {
	for slot, n := range nw.pt.nodes {
		if n == nil {
			nw.view[slot] = nil
			continue
		}
		vs := nw.view[slot][:0]
		for _, v := range n.vnodes {
			e := viewEntry{}
			if v != nil {
				e = publish(v)
			}
			vs = append(vs, e)
		}
		nw.view[slot] = vs
	}
}

// viewOf reads the published rl/rr entry of the referenced virtual
// node: the round-start state rule 3's guards consult. Unknown peers
// and out-of-span levels read as the zero entry, exactly like the
// absent keys of the old ref-keyed map.
func (nw *Network) viewOf(r ref.Ref) viewEntry {
	slot, ok := nw.pt.lookup(r.Owner)
	if !ok {
		return viewEntry{}
	}
	vs := nw.view[slot]
	if r.Level >= len(vs) {
		return viewEntry{}
	}
	return vs[r.Level]
}

// resolve maps a reference onto a node that currently exists: dead
// peers yield ok=false; references to deleted virtual levels of a live
// peer fall back to the peer's real node, which in a deployment is the
// process that answers for all of the peer's virtual addresses.
func (nw *Network) resolve(r ref.Ref) (ref.Ref, bool) {
	slot, ok := nw.pt.lookup(r.Owner)
	if !ok {
		return ref.Ref{}, false
	}
	if int32(r.Level) > nw.pt.maxLv[slot] {
		return ref.Real(r.Owner), true
	}
	return r, true
}

// purge rewrites every edge set of n, dropping references to departed
// peers and redirecting references to deleted virtual nodes to the
// owning peer (perfect failure detection, the substitution documented
// in DESIGN.md for the paper's implicit fault model).
func (nw *Network) purge(n *RealNode) {
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		for _, s := range []*ref.Set{&v.Nu, &v.Nr, &v.Nc} {
			var fixed []ref.Ref
			dirty := false
			for _, r := range s.Slice() {
				rr, ok := nw.resolve(r)
				if !ok || rr != r {
					dirty = true
					if ok {
						fixed = append(fixed, rr)
					}
					continue
				}
				fixed = append(fixed, r)
			}
			if dirty {
				s.Clear()
				for _, r := range fixed {
					if r != v.Self {
						s.Add(r)
					}
				}
			}
		}
	}
}

// deliver applies the pending inbox of n: the one-shot messages (which
// are consumed) and the standing per-sender buckets (which persist,
// representing the senders' repeating output flow). Messages to
// virtual levels the peer no longer simulates are merged into the
// closest surviving virtual node u_m, per rule 1's merge semantics.
// Delivery is a commutative, idempotent set-union, so the iteration
// order over buckets does not matter.
func (nw *Network) deliver(n *RealNode) int {
	delivered := len(n.inbox)
	apply := func(msg Message) {
		var v *VNode
		if msg.To.Level < len(n.vnodes) {
			v = n.vnodes[msg.To.Level]
		}
		if v == nil {
			v = n.vnodes[n.MaxLevel()]
		}
		switch msg.Kind {
		case graph.Unmarked:
			v.addNu(msg.Add)
		case graph.Ring:
			v.addNr(msg.Add)
		case graph.Connection:
			v.addNc(msg.Add)
		}
	}
	for _, msg := range n.inbox {
		apply(msg)
	}
	n.inbox = n.inbox[:0]
	for _, b := range n.in {
		sp := b.flow.spans[b.span]
		delivered += int(sp.end - sp.start)
		for i := sp.start; i < sp.end; i++ {
			apply(b.flow.msgAt(sp.owner, i))
		}
	}
	return delivered
}

// workerPool is a persistent set of goroutines executing the parallel
// rule phase, so Step does not respawn goroutines every round. The
// workers reference only the task channel, never the Network, so the
// Network stays collectable; a runtime cleanup closes the channel and
// lets the workers exit when the Network is garbage collected.
type workerPool struct {
	tasks chan func()
	size  int
}

// defaultWorkers is the Config.Workers=0 parallelism: one worker per
// schedulable CPU.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (nw *Network) ensurePool(workers int) *workerPool {
	if nw.pool == nil {
		p := &workerPool{tasks: make(chan func()), size: workers}
		for i := 0; i < workers; i++ {
			go func() {
				for f := range p.tasks {
					f()
				}
			}()
		}
		nw.pool = p
		runtime.AddCleanup(nw, func(ch chan func()) { close(ch) }, p.tasks)
	}
	return nw.pool
}

// Step executes one synchronous round over the current frontier:
// deliver pending messages, purge dead references, then run rules 1-6
// at every dirty peer (in parallel) and merge the effects at the round
// barrier. Clean peers are skipped; their state and standing output
// are provably what a full sweep would recompute. Under
// Config.FullSweep every peer is dirtied first, reproducing the
// paper's literal schedule.
func (nw *Network) Step() RoundStats {
	nw.round++
	nw.met.Steps.Inc()
	stats := RoundStats{Round: nw.round}

	if nw.cfg.FullSweep {
		for slot, n := range nw.pt.nodes {
			if n != nil {
				nw.markDirtyIdx(uint32(slot))
			}
		}
	}

	active := nw.collectFrontier()
	stats.Activated = len(active)
	if len(active) == 0 {
		// Quiescent: the round is the identity on the global state.
		// The standing buckets are exactly the messages every peer
		// keeps regenerating, so the per-round flow is their count.
		stats.MessagesSent = nw.bucketMsgs
		return stats
	}

	if nw.runBatch(active, !nw.cfg.FullSweep, nil, &stats) {
		nw.lastChange = nw.round
	}
	stats.MessagesSent = nw.bucketMsgs
	return stats
}

// collectFrontier drains the frontier into a deterministic active list
// of slots (sorted by peer identifier), clearing dirty flags so that
// barrier-time re-dirtying schedules peers for the NEXT round. The
// returned slice is owned by the network and reused across rounds.
func (nw *Network) collectFrontier() []uint32 {
	active := nw.active[:0]
	for _, slot := range nw.frontier {
		if n := nw.pt.nodes[slot]; n != nil && n.dirty {
			n.dirty = false
			active = append(active, slot)
		}
	}
	nw.frontier = nw.frontier[:0]
	nw.active = active
	nw.sortSlotsByID(active)
	return active
}

// sortSlotsByID orders live slots by their peers' identifiers: the
// deterministic execution order every barrier and rng-consuming
// schedule relies on.
func (nw *Network) sortSlotsByID(slots []uint32) {
	if len(slots) > 1 {
		ids := nw.pt.ids
		sort.Slice(slots, func(i, j int) bool { return ids[slots[i]] < ids[slots[j]] })
	}
}

// runBatch executes one phased batch over the active (sorted) peers:
// deliver and purge in parallel, run rules 1-6 in parallel, prepare the
// publish/settle/reroute diffs in parallel, commit them through the
// sharded barrier (see barrier.go), then settle unchanged peers and
// wake dependents in the serial epilogue. It reports whether the global
// state changed.
//
// The route callback is the only point where the synchronous and
// asynchronous schedulers differ. nil selects the synchronous engine:
// changed outputs are committed into the recipients' standing buckets
// by the sharded commit (the output is visible at every recipient next
// round). A non-nil callback — the asynchronous scheduler's delay-model
// routing, the partitioned scheduler's sink mirroring — runs serially
// in the epilogue, in active order, for every executed peer with its
// output and whether that output changed: RNG consumption and sink
// emission order must not depend on the worker count. With settle=false
// (the full sweep) no settle decision is made: every executed peer is
// re-stamped and none leaves the frontier early.
func (nw *Network) runBatch(active []uint32, settle bool, route func(n *RealNode, out []Message, outChanged, stateChanged bool), stats *RoundStats) bool {
	t0 := time.Now()
	syncCommit := route == nil
	if cap(nw.results) < len(active) {
		nw.results = make([]nodeResult, len(active))
		pres := make([][]*VNode, len(active))
		copy(pres, nw.pres)
		nw.pres = pres
		prep := make([]prepOut, len(active))
		copy(prep, nw.prep)
		nw.prep = prep
	}
	results := nw.results[:len(active)]
	changed := false

	workers := nw.parallelism()
	nw.bActive, nw.bSettle, nw.bSync = active, settle, syncCommit
	if nw.ownerChangedB == nil {
		nw.ownerChangedB = make(map[ident.ID]bool)
		nw.viewChangedB = make(map[ref.Ref]bool)
	}
	br := &nw.br

	// Phase 1 (parallel): deliver and purge the active peers. The
	// settle check compares the stored content hashes (which describe
	// the pre-round state by invariant) against a phase-2
	// recomputation, so no pre-round copy is needed; under
	// ParanoidSettle the old deep clone is kept alongside to
	// cross-check every settle decision. Every step touches only the
	// peer's own state (purge reads the interner's tables, which phase
	// 1 never writes), so large batches fan out over the pool like the
	// rule phase does.
	if br.phase1 == nil {
		br.phase1 = func(i int) {
			n := nw.pt.nodes[nw.bActive[i]]
			if nw.bSettle && nw.cfg.ParanoidSettle {
				nw.pres[i] = n.cloneVNodes(nw.pres[i])
			}
			if len(n.inbox) > 0 {
				// Consuming a one-shot message changes the global state
				// even when the peer's own state ends up unchanged.
				br.anyInbox.Store(true)
			}
			nw.results[i].delivered = nw.deliver(n)
			nw.purge(n)
		}
	}
	br.anyInbox.Store(false)
	nw.runParallel(workers, workers, len(active), br.phase1)
	if br.anyInbox.Load() {
		changed = true
	}
	tDeliver := time.Now()

	// Phase 2 (parallel): run rules 1-6 on the active peers, then
	// recompute each peer's content hashes — hchanged is the settle
	// decision. Each peer reads only its own state and the immutable
	// view of published rl/rr values (the hash refresh writes only the
	// peer's own vhash slot), so execution order is irrelevant. The
	// phase-1 delivery tally rides through the overwrite.
	if br.phase2 == nil {
		br.phase2 = func(i int) {
			slot := nw.bActive[i]
			n := nw.pt.nodes[slot]
			d := nw.results[i].delivered
			nw.results[i] = nw.runRules(n, n.scratch.out[:0])
			nw.results[i].delivered = d
			nw.results[i].hchanged = nw.refreshHashSlot(slot, n)
		}
	}
	nw.runParallel(workers, workers, len(active), br.phase2)
	tExecute := time.Now()

	// Phase 3a (parallel): prepare — publish each peer's own view and
	// level slot, take the settle and output-change verdicts, and (for
	// the synchronous engine) turn the output and edge-set diffs into
	// bucket ops and dep-index deltas in per-index scratch. See
	// barrier.go for the ownership story.
	if br.prepare == nil {
		br.prepare = func(i int) { nw.prepareIndex(i) }
	}
	nw.runParallel(workers, workers, len(active), br.prepare)
	tPrepare := time.Now()

	// Phase 3b (parallel, synchronous engine only): the sharded commit.
	// Recipient slots and dep-index shards are partitioned across the
	// commit workers, so every standing bucket, dirty flag and index
	// shard has exactly one writer; per-worker frontier appends and
	// bucketMsgs tallies merge serially right after. The commit span is
	// the engine's reroute time.
	var rerouteNS time.Duration
	if syncCommit {
		C := workers
		nw.commitW = C
		if len(nw.commit) < C {
			commit := make([]commitShard, C)
			copy(commit, nw.commit)
			nw.commit = commit
		}
		if br.commit == nil {
			br.commit = func(w int) { nw.commitWorker(w) }
		}
		nw.runParallel(C, workers, C, br.commit)
		for w := 0; w < C; w++ {
			sh := &nw.commit[w]
			nw.bucketMsgs += sh.bucketMsgs
			nw.frontier = append(nw.frontier, sh.frontier...)
			nw.flow.add(&sh.flow)
		}
		rerouteNS = time.Since(tPrepare)
	}

	// Phase 3c (serial epilogue, active order): everything that is
	// ordered state — epoch stamps, settle bookkeeping, the change-set
	// merge, the serial route callbacks — plus the paranoid verdicts
	// deferred out of the pool goroutines.
	ownerChanged, viewChanged := nw.ownerChangedB, nw.viewChangedB
	// Batch-local telemetry tallies: plain integers here, one atomic
	// add per counter at the barrier flush below.
	var ruleFired [obs.NumRules]uint64
	var deliveredN, settledN, unsettledN, epochBumpN int
	for i, slot := range active {
		n := nw.pt.nodes[slot]
		res := &results[i]
		p := &nw.prep[i]
		stats.VirtualMade += res.made
		stats.VirtualKilled += res.killed
		deliveredN += res.delivered
		for k, f := range res.fired {
			ruleFired[k] += uint64(f)
		}
		if p.paranoidBad {
			panic(fmt.Sprintf("rechord: settle hash says changed=%v but clone compare says %v for peer %s", p.stateChanged, !p.stateChanged, n.id))
		}
		if settle && nw.cfg.ParanoidSettle {
			nw.pres[i] = nw.pres[i][:0] // keep the buffer for the next batch
		}
		if p.ownerChanged {
			ownerChanged[n.id] = true
		}
		for _, r := range p.viewRefs {
			viewChanged[r] = true
		}
		if !syncCommit {
			if res.hchanged {
				// The peer's edge sets changed: re-derive its dependency
				// contribution and diff it into the inverted index.
				nw.refreshStateDeps(slot, n)
			}
			nw.routeFlow = p.newFlow
			rt := time.Now()
			route(n, res.out, p.outChanged, p.stateChanged)
			rerouteNS += time.Since(rt)
			nw.routeFlow = nil
		}
		out := res.out
		if p.outChanged {
			changed = true
		}
		if settle {
			if p.stateChanged {
				nw.bumpEpoch(n)
				epochBumpN++
			}
			if p.outChanged || p.stateChanged {
				// Not a local fixed point yet: stay on the frontier.
				nw.markDirtyIdx(slot)
				changed = true
				unsettledN++
			} else {
				settledN++
			}
		} else {
			// The full sweep keeps no pre-round copy to diff against, so
			// every executed peer is stamped (conservative: epoch-keyed
			// caches rebuild each round but never serve stale state).
			nw.bumpEpoch(n)
			epochBumpN++
		}
		// lastFlow adopts the batch template (taking over the builder's
		// reference); the old generation loses its sender reference and
		// dies once the commit's quiet repoints have migrated every
		// surviving bucket. The scratch output buffer is recycled for
		// the peer's next run, right-sized when its capacity is a
		// transient-peak leftover.
		if p.outChanged {
			if n.lastFlow != nil {
				releaseFlow(n.lastFlow, &nw.flow)
			}
			n.lastFlow = p.newFlow
			nw.flow.tallyBirth(p.newFlow)
			p.newFlow = nil
		}
		if settle && !p.outChanged && !p.stateChanged {
			// Local fixed point: the peer just left the frontier, and
			// its rule scratch is re-derivable on the next wake.
			// Releasing it means a settled peer holds only protocol
			// state, its standing flow, and its last output — the
			// number bench-mem tracks.
			n.scratch = ruleScratch{}
		} else if cap(out) > 4*len(out)+8 {
			n.scratch.out = nil
		} else {
			n.scratch.out = out[:0]
		}
		results[i] = nodeResult{} // release the output alias
	}

	woken := 0
	if len(ownerChanged) > 0 || len(viewChanged) > 0 {
		fBefore := len(nw.frontier)
		nw.wakeDependents(ownerChanged, viewChanged)
		woken = len(nw.frontier) - fBefore
		if nw.onBarrier != nil {
			nw.onBarrier(ownerChanged, viewChanged)
		}
		clear(ownerChanged)
		clear(viewChanged)
	}
	// Drop the batch arrays (and the vnode clones pinned by the settle
	// buffers, and the message buffers pinned by the prep scratch) once
	// the frontier has contracted well below their capacity: keeping
	// them would retain a near-full copy of the network's peak-round
	// state for the rest of the run.
	if len(active)*4 < cap(nw.results) {
		nw.results, nw.pres, nw.prep = nil, nil, nil
	}

	// Barrier flush: one atomic add per counter for the whole batch.
	// The publish series is the serial epilogue minus the time spent
	// inside the scheduler's route callback; it still includes the
	// settle bookkeeping and the dependent wakes, which share the
	// serial barrier with the change-set merge.
	m := &nw.met
	m.Batches.Inc()
	m.Activated.Add(uint64(len(active)))
	m.Delivered.Add(uint64(deliveredN))
	m.Settled.Add(uint64(settledN))
	m.Unsettled.Add(uint64(unsettledN))
	m.EpochBumps.Add(uint64(epochBumpN))
	m.Woken.Add(uint64(woken))
	for k, f := range ruleFired {
		if f != 0 {
			m.RuleFired[k].Add(f)
		}
	}
	nw.flushFlowGauges()
	tEnd := time.Now()
	m.PhaseDeliver.Observe(float64(tDeliver.Sub(t0)))
	m.PhaseExecute.Observe(float64(tExecute.Sub(tDeliver)))
	m.PhasePrepare.Observe(float64(tPrepare.Sub(tExecute)))
	m.PhaseReroute.Observe(float64(rerouteNS))
	m.PhasePublish.Observe(float64(tEnd.Sub(tPrepare) - rerouteNS))
	return changed
}

// flushFlowGauges publishes the flow-storage accounting to the
// telemetry gauges: one atomic store per gauge per batch (or churn
// operation), never on the per-message path. A quiescent Step does not
// reach this — its telemetry cost stays one atomic increment.
func (nw *Network) flushFlowGauges() {
	m := &nw.met
	m.FlowTemplates.Set(int64(nw.flow.births - nw.flow.deaths))
	m.FlowResidentBytes.Set(int64(nw.flow.residentBytes))
	m.FlowSharedBytes.Set(int64(nw.flow.sharedBytes))
	m.FlowUniqueBytes.Set(int64(nw.flow.uniqueBytes))
	m.FlowInstallsShared.Set(int64(nw.flow.installsShared))
	m.FlowInstallsCopied.Set(int64(nw.flow.installsCopied))
}

// rerouteWith replaces sender n's standing contributions with the
// spans of its new flow template t (the batch's routeFlow): per
// recipient, the bucket is rewritten (and the recipient woken) only
// when the contribution actually changed; content-identical buckets
// are quietly repointed at the new generation. It is the serial-route
// schedulers' form of what the synchronous engine does through
// prepFlowOps + the sharded commit (see barrier.go). onChange fires
// once per recipient whose standing bucket this call actually rewrote,
// with the new contribution (nil for a deletion); partitioned
// schedulers use it to mirror bucket rewrites to the recipient's
// hosting process. The msgs slice aliases network scratch and must be
// copied if kept.
func (nw *Network) rerouteWith(n *RealNode, t *flowTemplate, onChange func(dst ident.ID, msgs []Message)) {
	h := n.h()
	// Previous recipients with no new contribution get their bucket
	// deleted. Spans are unique per owner, so no deduplication is
	// needed; processing order is free here, since bucket rewrites are
	// per-recipient independent and the frontier is re-sorted at
	// collection.
	if old := n.lastFlow; old != nil {
		for _, sp := range old.spans {
			if t.findSpan(sp.owner) < 0 {
				if nw.rerouteSpan(h, sp.owner, nil, -1) && onChange != nil {
					onChange(sp.owner, nil)
				}
			}
		}
	}
	for si := range t.spans {
		if nw.rerouteSpan(h, t.spans[si].owner, t, int32(si)) && onChange != nil {
			nw.rrMsgs = t.appendSpan(nw.rrMsgs[:0], int32(si))
			onChange(t.spans[si].owner, nw.rrMsgs)
		}
	}
}

// rerouteSpan replaces one sender's standing contribution at one
// recipient with span si of template t, waking the recipient only when
// the contribution actually changed. si < 0 deletes the bucket; a
// departed recipient is a no-op. A content-identical bucket on an
// older template is quietly repointed so only one generation per
// sender stays live. The return reports whether the bucket's content
// actually changed.
func (nw *Network) rerouteSpan(sender handle, dstID ident.ID, t *flowTemplate, si int32) bool {
	slot, ok := nw.pt.lookup(dstID)
	if !ok {
		return false // destination departed
	}
	dst := nw.pt.nodes[slot]
	bi := dst.findBucket(sender)
	if si < 0 {
		if bi < 0 {
			return false
		}
		old := dst.in[bi]
		nw.bucketMsgs -= old.flow.spanLen(old.span)
		nw.depRemoveSpan(slot, old.flow, old.span)
		dst.delBucketAt(bi)
		releaseBucket(old, &nw.flow)
		nw.markDirtyIdx(slot)
		return true
	}
	if bi >= 0 {
		old := dst.in[bi]
		if spansEqual(old.flow, old.span, t, si) {
			// Repoint only shared storage: a private bucket (deep-copy
			// mode, partition stubs) pins no old template generation.
			if old.flow != t && !old.flow.private {
				nw.installBucket(dst, sender, t, si, &nw.flow)
			}
			return false
		}
		nw.bucketMsgs += t.spanLen(si) - old.flow.spanLen(old.span)
		nw.depRemoveSpan(slot, old.flow, old.span)
	} else {
		nw.bucketMsgs += t.spanLen(si)
	}
	nw.depAddSpan(slot, t, si)
	nw.installBucket(dst, sender, t, si, &nw.flow)
	nw.markDirtyIdx(slot)
	return true
}

// installBucketQuiet points the sender's standing bucket at span si of
// t without waking the recipient: the asynchronous scheduler calls
// this for run-stable contributions, whose content already reached the
// recipient as one-shot messages when it last changed — the bucket is
// just the repeating representation from then on. Content-identical
// buckets on an older template are repointed (storage-only move).
func (nw *Network) installBucketQuiet(dst *RealNode, sender handle, t *flowTemplate, si int32) {
	if bi := dst.findBucket(sender); bi >= 0 {
		old := dst.in[bi]
		if spansEqual(old.flow, old.span, t, si) {
			if old.flow != t && !old.flow.private {
				nw.installBucket(dst, sender, t, si, &nw.flow)
			}
			return
		}
		nw.bucketMsgs += t.spanLen(si) - old.flow.spanLen(old.span)
		nw.depRemoveSpan(dst.idx, old.flow, old.span)
	} else {
		nw.bucketMsgs += t.spanLen(si)
	}
	nw.depAddSpan(dst.idx, t, si)
	nw.installBucket(dst, sender, t, si, &nw.flow)
}

// dropBucket revokes the sender's standing bucket at the recipient,
// reporting whether one existed. The asynchronous scheduler revokes a
// bucket whenever the sender's contribution changes: the new version
// travels as one-shot messages instead, because replaying transient
// versions out of standing buckets re-perturbs settled regions.
func (nw *Network) dropBucket(dst *RealNode, alive bool, sender handle) bool {
	if !alive || dst == nil {
		return false
	}
	bi := dst.findBucket(sender)
	if bi < 0 {
		return false
	}
	b := dst.in[bi]
	nw.bucketMsgs -= b.flow.spanLen(b.span)
	nw.depRemoveSpan(dst.idx, b.flow, b.span)
	dst.delBucketAt(bi)
	releaseBucket(b, &nw.flow)
	return true
}

// nodeResult carries one peer's delayed effects out of the parallel
// section.
type nodeResult struct {
	out          []Message
	made, killed int
	// delivered counts the messages phase 1 applied at this peer
	// (one-shot inbox entries plus standing-bucket messages); fired
	// tallies rules 1-6 actions from phase 2. Both are plain batch-local
	// integers, summed serially at the barrier and flushed to the
	// telemetry counters with one atomic add each — the hot path never
	// touches shared state.
	delivered int
	fired     [obs.NumRules]uint32
	// hchanged reports whether the peer's content hashes changed over
	// the run: the settle decision (see hash.go).
	hchanged bool
}

// Snapshot is a deep copy of the network state at a round boundary,
// used for fixed-point detection and analysis.
type Snapshot struct {
	Round int
	nodes map[ident.ID]*RealNode
}

// TakeSnapshot deep-copies the current state (including pending
// inboxes, which are part of the global state of the synchronous
// model).
func (nw *Network) TakeSnapshot() *Snapshot {
	s := &Snapshot{Round: nw.round, nodes: make(map[ident.ID]*RealNode, nw.pt.live)}
	for _, n := range nw.pt.nodes {
		if n != nil {
			s.nodes[n.id] = n.clone()
		}
	}
	return s
}

// Equal reports whether two snapshots are identical global states.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if len(s.nodes) != len(o.nodes) {
		return false
	}
	for id, n := range s.nodes {
		on, ok := o.nodes[id]
		if !ok || !n.equal(on) {
			return false
		}
	}
	return true
}

// Graph exports the current state as a graph snapshot over all real
// and virtual nodes with their marked edges. Edges pending in inboxes
// (delayed assignments already issued, visible next round) are
// included: in the synchronous model they are part of the global
// state, and the steady-state connection- and ring-edge flows live
// there at round boundaries.
func (nw *Network) Graph() *graph.Graph {
	g := graph.New()
	for _, id := range nw.order {
		n := nw.pt.node(id)
		for _, v := range n.vnodesByLevel() {
			g.AddNode(v.Self)
			for _, r := range v.Nu.Slice() {
				g.AddEdge(v.Self, r, graph.Unmarked)
			}
			for _, r := range v.Nr.Slice() {
				g.AddEdge(v.Self, r, graph.Ring)
			}
			for _, r := range v.Nc.Slice() {
				g.AddEdge(v.Self, r, graph.Connection)
			}
		}
	}
	for _, id := range nw.order {
		for _, msg := range nw.pt.node(id).inboxMessages() {
			if msg.To != msg.Add {
				g.AddEdge(msg.To, msg.Add, msg.Kind)
			}
		}
	}
	return g
}

// ReChordGraph exports E_ReChord (Section 2.2): the projection of the
// unmarked and ring edges onto the real nodes — edge (u,v) whenever
// some (u_i, v) is in E_u or E_r. Self-loops from edges between a
// peer's own virtual nodes are omitted.
func (nw *Network) ReChordGraph() *graph.Graph {
	g := graph.New()
	for _, id := range nw.order {
		g.AddNode(ref.Real(id))
	}
	for _, id := range nw.order {
		n := nw.pt.node(id)
		for _, v := range n.vnodes {
			if v == nil {
				continue
			}
			for _, set := range []ref.Set{v.Nu, v.Nr} {
				for _, r := range set.Slice() {
					if r.Owner != id {
						g.AddEdge(ref.Real(id), ref.Real(r.Owner), graph.Unmarked)
					}
				}
			}
		}
	}
	return g
}
