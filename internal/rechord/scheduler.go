package rechord

import "repro/internal/ident"

// Scheduler is the execution layer of the simulation: the policy that
// decides which peers run their rules when, and when the messages they
// emit become visible. The protocol itself (rules 1-6, the edge sets,
// the message semantics) lives below this interface; everything above
// it — the sim runner, the workload engine, the churn drivers, the
// cluster facade — steps "the scheduler", not "the round engine", so
// the same experiment runs unchanged under the paper's synchronous
// model or under an asynchronous adversary.
//
// Two implementations exist:
//
//   - *Network itself: the synchronous round engine. Step executes one
//     synchronous round over the activity-tracked frontier (or over
//     every peer, under Config.FullSweep).
//   - *AsyncRunner: the event-driven asynchronous scheduler. Step
//     advances one tick of virtual time, delivering due messages and
//     activating the frontier peers whose (geometric) activation draw
//     came up.
//
// Both share the dirty-set infrastructure: a peer at a local fixed
// point is skipped and its repeating output flow is represented by its
// standing per-sender inbox buckets, so the cost of a step is
// proportional to the frontier, never to the network size.
type Scheduler interface {
	// Network returns the underlying protocol state. Membership
	// operations (Join, Leave, Fail, SeedEdge) and all introspection go
	// through it; only stepping goes through the scheduler.
	Network() *Network

	// Step executes one scheduling unit — a synchronous round or one
	// asynchronous time step — and reports what happened.
	Step() RoundStats

	// Time returns the number of scheduling units executed so far
	// (rounds for the synchronous engine, steps for the asynchronous
	// one).
	Time() int

	// LastChange returns the most recent time whose execution changed
	// the global state (0 if nothing changed yet): the quantity
	// convergence experiments report.
	LastChange() int

	// Quiescent reports whether the execution is at its fixed point: no
	// peer's inputs changed since it last reached a local fixed point
	// and no in-flight delivery can still change anything. Every
	// further Step is the identity on the global state.
	Quiescent() bool

	// InFlight returns the number of messages currently in flight:
	// standing buckets, one-shot inbox entries, and (for event-driven
	// schedulers) messages inside pending delivery events.
	InFlight() int

	// Wake schedules the peer to run again, for callers that mutate
	// peer state out of band (fault injection, perturbation tests).
	Wake(id ident.ID)
}

// Network returns the network itself: the synchronous round engine is
// its own scheduler.
func (nw *Network) Network() *Network { return nw }

// Time returns the number of rounds executed so far (same as Round; the
// name the Scheduler interface uses for its unit-agnostic clock).
func (nw *Network) Time() int { return nw.round }

// LastChange returns the most recent round whose execution changed the
// global state (same as LastChangeRound, under the Scheduler
// interface's unit-agnostic name).
func (nw *Network) LastChange() int { return nw.lastChange }

// InFlight returns the number of messages pending delivery: the
// standing per-sender buckets plus the one-shot inboxes.
func (nw *Network) InFlight() int {
	c := nw.bucketMsgs
	for _, n := range nw.pt.nodes {
		if n != nil {
			c += len(n.inbox)
		}
	}
	return c
}

var _ Scheduler = (*Network)(nil)
