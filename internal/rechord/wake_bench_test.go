package rechord

import (
	"fmt"
	"testing"

	"repro/internal/ident"
	"repro/internal/ref"
)

// BenchmarkWakeDependents pins the tentpole property of the inverted
// dependency index: the cost of waking the dependents of a single
// changed peer must not scale with n. The "indexed" series is the
// production path (wakeDependents) and should be flat across the two
// sizes; the "scan" series is the old full-peer sweep kept as the
// equivalence baseline, and grows linearly — the gap is what the index
// buys every barrier of every large-scale run.

// settledBenchNet builds a pre-stabilized network (ideal topology
// seeded directly, as topogen.PreStabilized does — the generator
// itself lives upstream of this package) and runs it to quiescence.
var settledBenchNets = map[int]*Network{}

func settledBenchNet(b *testing.B, n int) *Network {
	if nw, ok := settledBenchNets[n]; ok {
		return nw
	}
	nw, idl := idealSeededNet(Config{Workers: 1}, n)
	for r := 0; r < 200 && !nw.Quiescent(); r++ {
		nw.Step()
	}
	if !nw.Quiescent() {
		b.Fatalf("pre-stabilized n=%d did not quiesce", n)
	}
	if err := idl.Matches(nw); err != nil {
		b.Fatalf("n=%d settled to wrong state: %v", n, err)
	}
	settledBenchNets[n] = nw
	return nw
}

// unmarkFrontier reverts the dirty marks a benchmarked wake made, so
// every iteration starts from the same quiescent state.
func (nw *Network) unmarkFrontier() {
	for _, slot := range nw.frontier {
		if n := nw.pt.nodes[slot]; n != nil {
			n.dirty = false
		}
	}
	nw.frontier = nw.frontier[:0]
}

func BenchmarkWakeDependents(b *testing.B) {
	for _, n := range []int{2048, 8192} {
		nw := settledBenchNet(b, n)
		victim := nw.Peers()[n/2]
		owners := map[ident.ID]bool{victim: true}
		refs := map[ref.Ref]bool{ref.Real(victim): true}

		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nw.wakeDependents(owners, refs)
				nw.unmarkFrontier()
			}
		})

		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var buf []uint32
			for i := 0; i < b.N; i++ {
				buf = nw.wakeSetScan(owners, refs, buf[:0])
			}
		})
	}
}
