package rechord

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/ref"
)

// This file is the inverted dependency index: for every identifier that
// appears as the owner of a reference somewhere in the network, the set
// of peer slots whose state mentions it — in their virtual nodes' edge
// sets (Nu/Nr/Nc) or in the standing inbox buckets stored at them. The
// index turns wakeDependents from a full scan over every clean peer's
// edge sets into O(|changed| x avg-fanin) lookups, which is what keeps
// barrier cost frontier-proportional as n grows.
//
// Granularity is the referenced OWNER identifier, not the exact ref:
// references can target identifiers that are not (or no longer) in the
// network, so keying by interner slot would lose exactly the
// departed-peer and rejoin wakes that matter most. For owner-level
// changes (departure, arrival, level-set change) the dependents list is
// precisely the scan's wake set; for published rl/rr changes of a
// single virtual node the list is a superset of candidates, and each
// candidate is verified with holdsRef before waking — so the indexed
// wake set equals the scan's exactly, which the lockstep test and
// Config.ParanoidSettle assert.
//
// The one-shot inbox is intentionally NOT indexed: a peer with a
// non-empty inbox is always dirty (routeMessage, delivery events and
// removePeer's final flush all mark the recipient), and wakeDependents
// only considers clean peers. The scan reads the inbox only to cover
// the same (vacuous) case.
//
// Maintenance points:
//   - edge sets: recomputed per peer at the barrier (refreshStateDeps),
//     gated on the peer's content hash having changed, and at the
//     out-of-band mutation points (AddPeer, SeedEdge, fixture rebuilds);
//   - buckets: updated incrementally wherever buckets are written
//     (rerouteSpan, installBucketQuiet, dropBucket, removePeer's flush,
//     AddPeer's re-materialization).

// depEntry is one dependent peer slot with the number of references it
// holds to the indexed identifier.
type depEntry struct {
	peer uint32
	cnt  uint32
}

// depShardCount fixes the number of internal index shards. It is a
// property of the data structure, not of Config.Workers: the sharded
// barrier commit (see barrier.go) partitions the shard space over
// however many commit workers a batch runs, so the stored state is
// identical for every worker count. 16 shards keep the partition
// balanced for any plausible core count while the per-shard maps stay
// dense.
const depShardCount = 16

// depShardOf maps a referenced identifier to its index shard. The
// multiplicative mix spreads structured test identifiers as well as the
// uniform random ones; the function is pure, so shard ownership is a
// static property of the identifier.
func depShardOf(id ident.ID) uint32 {
	return uint32((uint64(id) * 0x9E3779B97F4A7C15) >> 60)
}

// depIndex maps identifiers to their dependents, split into
// depShardCount independent shards keyed by depShardOf. Within a shard,
// identifiers get dense keys through keyOf (recycled via a free list
// when their last dependent disappears); each dependents list is kept
// sorted by slot so updates are binary searches. Two mutations touching
// different shards are independent — the property the barrier's
// parallel commit relies on (each commit worker owns a disjoint set of
// shards). Reference counts commute, so the stored state after a batch
// of deltas is independent of application order within a shard too.
type depIndex struct {
	shards [depShardCount]depShard
}

// depShard is one independent slice of the index.
type depShard struct {
	keyOf map[ident.ID]uint32
	deps  [][]depEntry
	free  []uint32
}

// add records k more references from the peer slot to id.
func (d *depIndex) add(id ident.ID, peer uint32, k uint32) {
	d.shards[depShardOf(id)].add(id, peer, k)
}

func (s *depShard) add(id ident.ID, peer uint32, k uint32) {
	if k == 0 {
		return
	}
	if s.keyOf == nil {
		s.keyOf = make(map[ident.ID]uint32)
	}
	key, ok := s.keyOf[id]
	if !ok {
		if n := len(s.free); n > 0 {
			key = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			key = uint32(len(s.deps))
			s.deps = append(s.deps, nil)
		}
		s.keyOf[id] = key
	}
	l := s.deps[key]
	i := sort.Search(len(l), func(i int) bool { return l[i].peer >= peer })
	if i < len(l) && l[i].peer == peer {
		l[i].cnt += k
		return
	}
	l = append(l, depEntry{})
	copy(l[i+1:], l[i:])
	l[i] = depEntry{peer: peer, cnt: k}
	s.deps[key] = l
}

// remove forgets k references from the peer slot to id, panicking on
// underflow: an underflow means some maintenance point missed an update
// and the index no longer mirrors the true state.
func (d *depIndex) remove(id ident.ID, peer uint32, k uint32) {
	d.shards[depShardOf(id)].remove(id, peer, k)
}

func (s *depShard) remove(id ident.ID, peer uint32, k uint32) {
	if k == 0 {
		return
	}
	key, ok := s.keyOf[id]
	var l []depEntry
	var i int
	if ok {
		l = s.deps[key]
		i = sort.Search(len(l), func(i int) bool { return l[i].peer >= peer })
	}
	if !ok || i >= len(l) || l[i].peer != peer || l[i].cnt < k {
		panic(fmt.Sprintf("rechord: dep index underflow for %s at slot %d (-%d)", id, peer, k))
	}
	l[i].cnt -= k
	if l[i].cnt == 0 {
		l = append(l[:i], l[i+1:]...)
		s.deps[key] = l
		if len(l) == 0 {
			delete(s.keyOf, id)
			s.free = append(s.free, key)
		}
	}
}

// dependents returns the peers referencing id (sorted by slot). The
// returned slice aliases the index; callers must not hold it across
// mutations.
func (d *depIndex) dependents(id ident.ID) []depEntry {
	s := &d.shards[depShardOf(id)]
	if key, ok := s.keyOf[id]; ok {
		return s.deps[key]
	}
	return nil
}

// ownerCount is one (referenced owner, reference count) entry of a
// peer's edge-set dependency multiset, kept sorted by owner.
type ownerCount struct {
	owner ident.ID
	cnt   uint32
}

// depAddMsgs / depRemoveMsgs adjust the index for a standing bucket's
// messages stored at the peer slot: each message carries exactly one
// reference (the node being introduced).
func (nw *Network) depAddMsgs(peer uint32, ms []Message) {
	for _, m := range ms {
		nw.deps.add(m.Add.Owner, peer, 1)
	}
}

func (nw *Network) depRemoveMsgs(peer uint32, ms []Message) {
	for _, m := range ms {
		nw.deps.remove(m.Add.Owner, peer, 1)
	}
}

// depAddSpan / depRemoveSpan are the packed-storage forms: adjust the
// index for span si of the flow template, read straight off the
// template's symbol table without reconstituting messages.
func (nw *Network) depAddSpan(peer uint32, t *flowTemplate, si int32) {
	sp := t.spans[si]
	for i := sp.start; i < sp.end; i++ {
		nw.deps.add(t.syms[t.packed[i].sym], peer, 1)
	}
}

func (nw *Network) depRemoveSpan(peer uint32, t *flowTemplate, si int32) {
	sp := t.spans[si]
	for i := sp.start; i < sp.end; i++ {
		nw.deps.remove(t.syms[t.packed[i].sym], peer, 1)
	}
}

// refreshStateDeps recomputes the peer's edge-set dependency multiset
// and applies the delta against the stored one to the inverted index.
// Called at the barrier for peers whose content hash changed (the
// serial-route schedulers; the synchronous engine's sharded barrier
// computes the same delta in parallel via prepStateDeps, see
// barrier.go) and at every out-of-band state mutation. Serial only (it
// mutates index shards directly); the cost is linear in the peer's own
// edge sets — the same work the old full scan spent on this one peer,
// now spent only when the peer actually changed.
func (nw *Network) refreshStateDeps(slot uint32, n *RealNode) {
	buf := nw.depOwners[:0]
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		for _, r := range v.Nu.Slice() {
			buf = append(buf, r.Owner)
		}
		for _, r := range v.Nr.Slice() {
			buf = append(buf, r.Owner)
		}
		for _, r := range v.Nc.Slice() {
			buf = append(buf, r.Owner)
		}
	}
	ident.Sort(buf)
	nw.depOwners = buf

	nc := nw.depCounts[:0]
	for i := 0; i < len(buf); {
		j := i
		for j < len(buf) && buf[j] == buf[i] {
			j++
		}
		nc = append(nc, ownerCount{owner: buf[i], cnt: uint32(j - i)})
		i = j
	}
	nw.depCounts = nc

	old := nw.stateDeps[slot]
	i, j := 0, 0
	for i < len(old) || j < len(nc) {
		switch {
		case j == len(nc) || (i < len(old) && old[i].owner < nc[j].owner):
			nw.deps.remove(old[i].owner, slot, old[i].cnt)
			i++
		case i == len(old) || nc[j].owner < old[i].owner:
			nw.deps.add(nc[j].owner, slot, nc[j].cnt)
			j++
		default:
			if nc[j].cnt > old[i].cnt {
				nw.deps.add(nc[j].owner, slot, nc[j].cnt-old[i].cnt)
			} else if nc[j].cnt < old[i].cnt {
				nw.deps.remove(nc[j].owner, slot, old[i].cnt-nc[j].cnt)
			}
			i++
			j++
		}
	}
	nw.stateDeps[slot] = append(old[:0], nc...)
}

// stateDepAdd records one more edge-set reference from the peer slot
// to the owner in the stored per-peer multiset (the index itself is
// updated by the caller). Used by SeedEdge's incremental path.
func (nw *Network) stateDepAdd(slot uint32, owner ident.ID) {
	l := nw.stateDeps[slot]
	i := sort.Search(len(l), func(i int) bool { return l[i].owner >= owner })
	if i < len(l) && l[i].owner == owner {
		l[i].cnt++
		return
	}
	l = append(l, ownerCount{})
	copy(l[i+1:], l[i:])
	l[i] = ownerCount{owner: owner, cnt: 1}
	nw.stateDeps[slot] = l
}

// dropStateDeps removes the peer's entire edge-set contribution from
// the index (departure).
func (nw *Network) dropStateDeps(slot uint32) {
	for _, oc := range nw.stateDeps[slot] {
		nw.deps.remove(oc.owner, slot, oc.cnt)
	}
	nw.stateDeps[slot] = nw.stateDeps[slot][:0]
}

// rebuildDeps reconstructs the whole index from scratch; the white-box
// fixtures use it after mutating peer state directly (see
// rebuildLevels for the pattern).
func (nw *Network) rebuildDeps() {
	nw.deps = depIndex{}
	for len(nw.stateDeps) < len(nw.pt.nodes) {
		nw.stateDeps = append(nw.stateDeps, nil)
	}
	for slot := range nw.stateDeps {
		nw.stateDeps[slot] = nw.stateDeps[slot][:0]
	}
	for slot, n := range nw.pt.nodes {
		if n == nil {
			continue
		}
		nw.refreshStateDeps(uint32(slot), n)
		for _, b := range n.in {
			nw.depAddSpan(uint32(slot), b.flow, b.span)
		}
	}
}

// holdsRef reports whether the peer's own state — edge sets, pending
// one-shot inbox, standing buckets — contains the exact reference. It
// is the verification step that turns the owner-granular candidate list
// into the scan-exact wake set for published-view changes.
func (n *RealNode) holdsRef(r ref.Ref) bool {
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		if v.Nu.Contains(r) || v.Nr.Contains(r) || v.Nc.Contains(r) {
			return true
		}
	}
	for _, m := range n.inbox {
		if m.Add == r {
			return true
		}
	}
	for _, b := range n.in {
		sp := b.flow.spans[b.span]
		for i := sp.start; i < sp.end; i++ {
			pm := b.flow.packed[i]
			if b.flow.syms[pm.sym] == r.Owner && int(pm.meta&pmLevelMask) == r.Level {
				return true
			}
		}
	}
	return false
}

// holdsDependent is the per-peer body of the full-scan wakeDependents:
// whether any reference in the peer's state is covered by the change
// sets. Kept as the equivalence baseline the paranoid mode and the
// lockstep tests compare the index against.
func (n *RealNode) holdsDependent(owners map[ident.ID]bool, refs map[ref.Ref]bool) bool {
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		for _, r := range v.Nu.Slice() {
			if owners[r.Owner] || refs[r] {
				return true
			}
		}
		for _, r := range v.Nr.Slice() {
			if owners[r.Owner] || refs[r] {
				return true
			}
		}
		for _, r := range v.Nc.Slice() {
			if owners[r.Owner] || refs[r] {
				return true
			}
		}
	}
	for _, m := range n.inbox {
		if owners[m.Add.Owner] || refs[m.Add] {
			return true
		}
	}
	for _, b := range n.in {
		sp := b.flow.spans[b.span]
		for i := sp.start; i < sp.end; i++ {
			pm := b.flow.packed[i]
			add := ref.Ref{Owner: b.flow.syms[pm.sym], Level: int(pm.meta & pmLevelMask)}
			if owners[add.Owner] || refs[add] {
				return true
			}
		}
	}
	return false
}

// wakeSetScan returns the slots the full-peer scan would wake,
// appended to buf (unsorted).
func (nw *Network) wakeSetScan(owners map[ident.ID]bool, refs map[ref.Ref]bool, buf []uint32) []uint32 {
	for slot, n := range nw.pt.nodes {
		if n == nil || n.dirty {
			continue
		}
		if n.holdsDependent(owners, refs) {
			buf = append(buf, uint32(slot))
		}
	}
	return buf
}

// wakeSetIndexed returns the slots the inverted index wakes, appended
// to buf (unsorted, deduplicated).
func (nw *Network) wakeSetIndexed(owners map[ident.ID]bool, refs map[ref.Ref]bool, buf []uint32) []uint32 {
	start := len(buf)
	seen := func(slot uint32) bool {
		for _, s := range buf[start:] {
			if s == slot {
				return true
			}
		}
		return false
	}
	for id := range owners {
		for _, e := range nw.deps.dependents(id) {
			n := nw.pt.nodes[e.peer]
			if n == nil || n.dirty || seen(e.peer) {
				continue
			}
			buf = append(buf, e.peer)
		}
	}
	for r := range refs {
		if owners[r.Owner] {
			continue
		}
		for _, e := range nw.deps.dependents(r.Owner) {
			n := nw.pt.nodes[e.peer]
			if n == nil || n.dirty || seen(e.peer) {
				continue
			}
			if n.holdsRef(r) {
				buf = append(buf, e.peer)
			}
		}
	}
	return buf
}

// wakeDependents dirties every clean peer whose behavior can depend on
// the given changes: owners whose liveness or level set changed (their
// references purge differently now) and refs whose published rl/rr
// changed (rule 3's guards read them). Owner changes wake the indexed
// dependents directly; ref changes verify each candidate with holdsRef
// first, so the woken set is exactly what the old full scan computed.
// Under Config.ParanoidSettle both implementations run and must agree.
func (nw *Network) wakeDependents(owners map[ident.ID]bool, refs map[ref.Ref]bool) {
	if nw.cfg.ParanoidSettle {
		idx := nw.wakeSetIndexed(owners, refs, nil)
		scan := nw.wakeSetScan(owners, refs, nil)
		sortSlots(idx)
		sortSlots(scan)
		if !slotsEqual(idx, scan) {
			panic(fmt.Sprintf("rechord: indexed wake set %v != scan wake set %v (owners=%v refs=%v)", idx, scan, owners, refs))
		}
		for _, slot := range idx {
			nw.markDirtyIdx(slot)
		}
		return
	}
	for id := range owners {
		for _, e := range nw.deps.dependents(id) {
			nw.markDirtyIdx(e.peer)
		}
	}
	for r := range refs {
		if owners[r.Owner] {
			continue
		}
		for _, e := range nw.deps.dependents(r.Owner) {
			n := nw.pt.nodes[e.peer]
			if n == nil || n.dirty {
				continue
			}
			if n.holdsRef(r) {
				nw.markDirtyIdx(e.peer)
			}
		}
	}
}

func sortSlots(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func slotsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
