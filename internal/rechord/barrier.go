package rechord

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ident"
	"repro/internal/ref"
)

// This file is the sharded round barrier: phase 3 of runBatch, split
// into a parallel *prepare* sub-phase and an ownership-partitioned
// *commit*, with a short serial epilogue. The ROADMAP's "serial
// publish/reroute phase" — the last serial section of a batch — is
// gone; what remains serial is O(frontier) bookkeeping (epoch stamps,
// settle decisions, map merges), not the O(frontier x fanout) bucket
// and index rewriting.
//
// The phases and their ownership story:
//
//   - Prepare (parallel over active indexes): each active peer i
//     publishes its own view/level slot (view[slot], maxLv[slot] — no
//     other peer's prepare reads them, rules only read the view during
//     phase 2), computes outChanged/stateChanged and the paranoid
//     cross-check verdict, and — for the synchronous engine — diffs
//     its output against the recipients' standing buckets and its edge
//     sets against its stored dependency multiset, writing the
//     resulting bucket ops and index deltas ONLY into its own prepOut
//     scratch. Buckets and the dep index are read, never written.
//   - Commit (parallel over commit workers): recipients are
//     partitioned by slot (slot % workers) and dependency-index shards
//     by depShardOf(id) % workers, so every standing bucket, dirty
//     flag and index shard has exactly one writing worker. Per-worker
//     frontier appends and bucketMsgs tallies merge serially after.
//   - Epilogue (serial, active order): epoch bumps (the global epoch
//     clock is ordered state), settle bookkeeping, lastOut swaps,
//     paranoid panics deferred out of pool goroutines, and the merge
//     of per-index change sets into the reusable viewChanged/
//     ownerChanged maps feeding wakeDependents.
//
// Why Workers=1 and Workers=N stay snapshot-for-snapshot identical:
// every commit write is keyed by (sender handle, recipient slot) or
// (referenced id, dependent slot) and each key is written at most once
// per batch by construction (prepare emits at most one op per sender/
// recipient pair), so the final buckets are order-independent; dep
// index counts commute; the frontier is an order-insensitive SET (both
// collectFrontier and the async drainFrontier sort by identifier
// before consuming it); and everything order-sensitive — epoch stamps,
// RNG-consuming route callbacks, telemetry — runs in the serial
// epilogue in active (identifier) order, exactly as the old serial
// phase 3 did. The event-driven schedulers (async, partition) keep
// their route callbacks in the epilogue for the same reason: the async
// route draws RNG per changed recipient and the partition route emits
// ordered sink traffic, both of which must not depend on worker count.
//
// Dep-index deltas tolerate any application order within a shard: every
// remove emitted by prepare refers to a reference that was counted in
// the index before the batch (old bucket contents, old stateDeps
// entries — disjoint categories), so at any prefix of any interleaving
// the entry's count is at least the remaining removes and the underflow
// panic cannot fire spuriously.

// batchRun is the persistent fan-out machinery of runBatch: one task
// closure, WaitGroup and work counter reused across every batch (the
// old per-batch runOnPool closure allocated all three each round), plus
// the lazily built per-phase closures, which read the batch parameters
// from the Network's batch fields instead of capturing them.
type batchRun struct {
	wg   sync.WaitGroup
	next atomic.Int64
	n    int
	f    func(i int)
	task func()

	// per-phase bodies, built once on first use
	phase1, phase2, prepare, commit func(i int)

	// anyInbox records that phase 1 consumed a one-shot message
	// somewhere (a global-state change even when no peer state moved).
	anyInbox atomic.Bool
}

// parallelism resolves Config.Workers: the worker count requested and
// the pool size to lazily spawn (sized from the configuration, not
// from any one round's frontier, so a small first round does not cap
// later large rounds).
func (nw *Network) parallelism() int {
	w := nw.cfg.Workers
	if w <= 0 {
		w = defaultWorkers()
	}
	return w
}

// runParallel fans f(i) for i in [0, n) over the worker pool; f must
// only touch per-index/per-peer state (or, for the commit phase,
// state its index exclusively owns). w <= 1 — or a single item — runs
// inline on the caller's goroutine, which is also what keeps paranoid
// panics recoverable in the serial configuration.
func (nw *Network) runParallel(w, poolSize, n int, f func(i int)) {
	if n == 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	pool := nw.ensurePool(poolSize)
	if w > pool.size {
		w = pool.size
	}
	br := &nw.br
	if br.task == nil {
		br.task = func() {
			defer br.wg.Done()
			for {
				i := int(br.next.Add(1)) - 1
				if i >= br.n {
					return
				}
				br.f(i)
			}
		}
	}
	br.n, br.f = n, f
	br.next.Store(0)
	br.wg.Add(w)
	for k := 0; k < w; k++ {
		pool.tasks <- br.task
	}
	br.wg.Wait()
	br.f = nil // do not pin a stale closure between batches
}

// prepOut is the per-active-index output of the parallel prepare
// sub-phase. Entries are reused across batches (sized alongside
// results/pres and dropped with them when the frontier contracts).
type prepOut struct {
	ownerChanged bool // the peer's level span moved
	outChanged   bool // total output differs from lastOut
	stateChanged bool // the settle decision (content hashes moved)
	paranoidBad  bool // clone cross-check disagreed; panic in epilogue

	// viewRefs lists the virtual refs whose published rl/rr entry
	// changed this batch (merged into the barrier's viewChanged map by
	// the epilogue).
	viewRefs []ref.Ref

	// newFlow is the freshly frozen template of this batch's output,
	// built whenever outChanged (for every engine: the sync commit's ops
	// point into it, the serial-route schedulers read it through
	// Network.routeFlow). It carries one reference that the epilogue
	// hands to the peer's lastFlow.
	newFlow *flowTemplate

	// Synchronous-engine commit payload (empty for serial-route
	// schedulers): the bucket rewrites this sender wants and the
	// dep-index deltas they plus the peer's edge-set diff imply.
	ops  []bucketOp
	deps []depDelta

	// scratch: recipient grouping (frozen into newFlow before the
	// commit), the output-diff cursors, the template symbol collector,
	// and the stateDeps diff buffers.
	groups  []rrGroup
	cursors []uint32
	symbuf  []ident.ID
	owners  []ident.ID
	counts  []ownerCount
}

// bucketOp is one standing-bucket rewrite: sender (implied by the
// prepOut's index) points the recipient's bucket at span `span` of the
// batch template (prepOut.newFlow); span -1 deletes the bucket. quiet
// ops repoint a content-identical bucket at the new template without
// waking the recipient or touching the dep index — they exist so that
// at most one template generation per sender stays live at rest.
type bucketOp struct {
	dstSlot uint32
	delta   int32 // bucketMsgs adjustment (new len - old len)
	span    int32
	quiet   bool
}

// depDelta is one inverted-index adjustment: k > 0 adds, k < 0 removes
// references from the dependent slot to the identifier.
type depDelta struct {
	id   ident.ID
	slot uint32
	k    int32
}

// commitShard is one commit worker's private output: the frontier
// slots it dirtied, its bucketMsgs adjustment, and its flow-storage
// accounting, merged serially after the commit barrier.
type commitShard struct {
	frontier   []uint32
	bucketMsgs int
	flow       flowTally
}

// prepareIndex is the parallel prepare body for active index i: the
// publish diff, the settle verdicts, and (synchronous engine only) the
// bucket ops and dep deltas the commit will apply. Writes touch only
// the peer's own view/maxLv/stateDeps slots and prep[i].
func (nw *Network) prepareIndex(i int) {
	slot := nw.bActive[i]
	n := nw.pt.nodes[slot]
	res := &nw.results[i]
	p := &nw.prep[i]
	p.viewRefs = p.viewRefs[:0]
	p.ops = p.ops[:0]
	p.deps = p.deps[:0]
	p.ownerChanged, p.paranoidBad = false, false

	id := n.id
	// Publish the peer's level so other peers' purges detect stale
	// references to its deleted virtual nodes. Own-slot write: nothing
	// else reads maxLv or the view during prepare.
	oldMax := int(nw.pt.maxLv[slot])
	newMax := n.MaxLevel()
	if newMax != oldMax {
		nw.pt.maxLv[slot] = int32(newMax)
		p.ownerChanged = true
	}
	// Publish rl/rr changes (including entries of deleted levels).
	vs := nw.view[slot]
	for lvl := newMax + 1; lvl < len(vs); lvl++ {
		if vs[lvl] != (viewEntry{}) {
			p.viewRefs = append(p.viewRefs, ref.Virtual(id, lvl))
		}
	}
	if len(vs) > newMax+1 {
		vs = vs[:newMax+1]
	}
	for len(vs) <= newMax {
		vs = append(vs, viewEntry{})
	}
	for lvl, v := range n.vnodes {
		cur := viewEntry{}
		if v != nil {
			cur = publish(v)
		}
		if vs[lvl] != cur {
			vs[lvl] = cur
			p.viewRefs = append(p.viewRefs, ref.Virtual(id, lvl))
		}
	}
	nw.view[slot] = vs

	// The settle decision is the phase-2 hash comparison; ParanoidSettle
	// re-derives it from the deep clone and insists they agree. The
	// panic is deferred to the serial epilogue: a panic raised on a pool
	// goroutine could not be recovered by the tests that prove the
	// paranoid mode catches injected collisions.
	p.stateChanged = false
	if nw.bSettle {
		p.stateChanged = res.hchanged
		if nw.cfg.ParanoidSettle {
			if cloneChanged := !n.vnodesEqual(nw.pres[i]); cloneChanged != p.stateChanged {
				p.paranoidBad = true
			}
		}
	}
	if nw.cfg.ParanoidSettle && n.lastFlow != nil {
		// Write barrier over the shared representation: any in-place
		// mutation of the (immutable) template since build panics here.
		n.lastFlow.verify("lastFlow of " + id.String())
	}
	p.outChanged = !flowEqualsOutput(n.lastFlow, res.out, &p.cursors)
	p.newFlow = nil
	if p.outChanged {
		// Freeze the new output for every engine: the sync commit's ops
		// index into it, the serial-route schedulers install from it.
		nw.prepFlow(res.out, p)
	}

	if nw.bSync {
		if res.hchanged {
			// The peer's edge sets changed: re-derive its dependency
			// contribution and turn the diff into commit deltas.
			nw.prepStateDeps(slot, n, p)
		}
		if p.outChanged {
			nw.prepFlowOps(n, p)
		}
	}
}

// prepStateDeps is refreshStateDeps recast for the parallel prepare:
// the recomputed multiset replaces the peer's own stateDeps slot (an
// own-slot write), and the index-side adjustments become deltas for
// the sharded commit instead of direct mutations.
func (nw *Network) prepStateDeps(slot uint32, n *RealNode, p *prepOut) {
	buf := p.owners[:0]
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		for _, r := range v.Nu.Slice() {
			buf = append(buf, r.Owner)
		}
		for _, r := range v.Nr.Slice() {
			buf = append(buf, r.Owner)
		}
		for _, r := range v.Nc.Slice() {
			buf = append(buf, r.Owner)
		}
	}
	ident.Sort(buf)
	p.owners = buf

	nc := p.counts[:0]
	for i := 0; i < len(buf); {
		j := i
		for j < len(buf) && buf[j] == buf[i] {
			j++
		}
		nc = append(nc, ownerCount{owner: buf[i], cnt: uint32(j - i)})
		i = j
	}
	p.counts = nc

	old := nw.stateDeps[slot]
	i, j := 0, 0
	for i < len(old) || j < len(nc) {
		switch {
		case j == len(nc) || (i < len(old) && old[i].owner < nc[j].owner):
			p.deps = append(p.deps, depDelta{id: old[i].owner, slot: slot, k: -int32(old[i].cnt)})
			i++
		case i == len(old) || nc[j].owner < old[i].owner:
			p.deps = append(p.deps, depDelta{id: nc[j].owner, slot: slot, k: int32(nc[j].cnt)})
			j++
		default:
			if nc[j].cnt != old[i].cnt {
				p.deps = append(p.deps, depDelta{id: nc[j].owner, slot: slot, k: int32(nc[j].cnt) - int32(old[i].cnt)})
			}
			i++
			j++
		}
	}
	nw.stateDeps[slot] = append(old[:0], nc...)
}

// groupByRecipient sorts out into per-recipient groups (preserving
// per-recipient emission order) using groups as reusable storage.
// Returns the grown storage and the number of live groups.
func groupByRecipient(groups []rrGroup, out []Message) ([]rrGroup, int) {
	ng := 0
	for _, m := range out {
		owner := m.To.Owner
		lo, hi := 0, ng
		for lo < hi {
			mid := (lo + hi) / 2
			if groups[mid].owner < owner {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == ng || groups[lo].owner != owner {
			if ng == len(groups) {
				groups = append(groups, rrGroup{})
			}
			ins := groups[ng] // recycle the spare entry's msgs buffer
			copy(groups[lo+1:ng+1], groups[lo:ng])
			ins.owner = owner
			ins.msgs = ins.msgs[:0]
			groups[lo] = ins
			ng++
		}
		groups[lo].msgs = append(groups[lo].msgs, m)
	}
	return groups, ng
}

// prepFlow freezes the sender's new output into p.newFlow. The
// template is born with one reference, which the epilogue hands to the
// peer's lastFlow; bucket installs take their own.
func (nw *Network) prepFlow(out []Message, p *prepOut) {
	var ng int
	p.groups, ng = groupByRecipient(p.groups, out)
	p.newFlow, p.symbuf = buildFlow(p.groups, ng, len(out), p.symbuf)
}

// prepFlowOps is the read-only half of the old reroute: diff each
// recipient span of the new template against the current standing
// bucket and emit one bucketOp plus the implied dep deltas. Recipients
// of the old flow with no new contribution get a delete op; unchanged
// contributions get a quiet repoint op so the old template generation
// can die. Buckets are only read here — concurrent prepares may read
// the same recipient's table.
func (nw *Network) prepFlowOps(n *RealNode, p *prepOut) {
	nf := p.newFlow
	if old := n.lastFlow; old != nil {
		for _, sp := range old.spans {
			if nf.findSpan(sp.owner) < 0 {
				nw.prepOneOp(n.h(), sp.owner, nf, -1, p)
			}
		}
	}
	for si := range nf.spans {
		nw.prepOneOp(n.h(), nf.spans[si].owner, nf, int32(si), p)
	}
}

// prepOneOp diffs one (sender, recipient) contribution — span si of nf,
// or a deletion when si < 0 — and records the rewrite and its dep
// deltas. Mirrors rerouteSpan's decisions exactly, split at the
// read/write boundary.
func (nw *Network) prepOneOp(sender handle, dstID ident.ID, nf *flowTemplate, si int32, p *prepOut) {
	slot, ok := nw.pt.lookup(dstID)
	if !ok {
		return // destination departed
	}
	dst := nw.pt.nodes[slot]
	bi := dst.findBucket(sender)
	if si < 0 {
		if bi < 0 {
			return
		}
		old := dst.in[bi]
		p.ops = append(p.ops, bucketOp{dstSlot: slot, delta: -int32(old.flow.spanLen(old.span)), span: -1})
		appendSpanDeps(&p.deps, old.flow, old.span, slot, -1)
		return
	}
	if bi >= 0 {
		old := dst.in[bi]
		if spansEqual(old.flow, old.span, nf, si) {
			// Content identical: repoint storage to the new generation
			// without waking the recipient, so the old generation can
			// die. (old.flow == nf is impossible here — nf was built
			// this batch.) Private buckets pin no generation, so
			// deep-copy mode skips the op entirely, like the
			// pre-sharing engine did.
			if !old.flow.private {
				p.ops = append(p.ops, bucketOp{dstSlot: slot, span: si, quiet: true})
			}
			return
		}
		p.ops = append(p.ops, bucketOp{dstSlot: slot, delta: int32(nf.spanLen(si) - old.flow.spanLen(old.span)), span: si})
		appendSpanDeps(&p.deps, old.flow, old.span, slot, -1)
		appendSpanDeps(&p.deps, nf, si, slot, 1)
		return
	}
	p.ops = append(p.ops, bucketOp{dstSlot: slot, delta: int32(nf.spanLen(si)), span: si})
	appendSpanDeps(&p.deps, nf, si, slot, 1)
}

// appendSpanDeps emits one dep delta of weight k per message in span si
// of t, keyed by the message's Add owner.
func appendSpanDeps(deps *[]depDelta, t *flowTemplate, si int32, slot uint32, k int32) {
	sp := t.spans[si]
	for i := sp.start; i < sp.end; i++ {
		*deps = append(*deps, depDelta{id: t.syms[t.packed[i].sym], slot: slot, k: k})
	}
}

// commitWorker applies the shard owned by commit worker w: bucket ops
// whose recipient slot it owns and dep deltas whose index shard it
// owns. Scanning every prepOut is cheap relative to applying (ops are
// only emitted for changed buckets); the writes are the expensive part
// and they are perfectly partitioned.
func (nw *Network) commitWorker(w int) {
	C := nw.commitW
	sh := &nw.commit[w]
	sh.bucketMsgs = 0
	sh.frontier = sh.frontier[:0]
	sh.flow = flowTally{}
	uw := uint32(w)
	uc := uint32(C)
	for i := range nw.bActive {
		p := &nw.prep[i]
		if len(p.ops) > 0 {
			h := nw.pt.nodes[nw.bActive[i]].h()
			for k := range p.ops {
				op := &p.ops[k]
				if op.dstSlot%uc != uw {
					continue
				}
				nw.commitBucketOp(w, h, p.newFlow, op, sh)
			}
		}
		for _, d := range p.deps {
			if depShardOf(d.id)%uc != uw {
				continue
			}
			nw.commitDepDelta(w, d)
		}
	}
}

// commitBucketOp rewrites one standing bucket. The ownership audit
// (under ParanoidSettle) re-derives the op's owner from the slot
// partition and panics on a cross-shard write: the selection filter in
// commitWorker and this check must agree by construction, so a firing
// audit means the partitioning itself regressed.
func (nw *Network) commitBucketOp(w int, sender handle, nf *flowTemplate, op *bucketOp, sh *commitShard) {
	if nw.cfg.ParanoidSettle && int(op.dstSlot)%nw.commitW != w {
		panic(fmt.Sprintf("rechord: cross-shard bucket write: slot %d belongs to commit worker %d, written by %d",
			op.dstSlot, int(op.dstSlot)%nw.commitW, w))
	}
	dst := nw.pt.nodes[op.dstSlot]
	sh.bucketMsgs += int(op.delta)
	if op.span < 0 {
		if bi := dst.findBucket(sender); bi >= 0 {
			old := dst.in[bi]
			dst.delBucketAt(bi)
			releaseBucket(old, &sh.flow)
		}
	} else {
		nw.installBucket(dst, sender, nf, op.span, &sh.flow)
		if op.quiet {
			// Content-identical repoint: storage moved to the new
			// template generation, the recipient's state did not change.
			return
		}
	}
	if !dst.dirty {
		dst.dirty = true
		sh.frontier = append(sh.frontier, op.dstSlot)
	}
}

// commitDepDelta applies one inverted-index adjustment, with the same
// cross-shard audit as the bucket path.
func (nw *Network) commitDepDelta(w int, d depDelta) {
	if nw.cfg.ParanoidSettle && int(depShardOf(d.id))%nw.commitW != w {
		panic(fmt.Sprintf("rechord: cross-shard dep write: id %s belongs to commit worker %d, written by %d",
			d.id, int(depShardOf(d.id))%nw.commitW, w))
	}
	if d.k > 0 {
		nw.deps.add(d.id, d.slot, uint32(d.k))
	} else {
		nw.deps.remove(d.id, d.slot, uint32(-d.k))
	}
}
