package rechord

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ident"
	"repro/internal/ref"
)

// This file is the sharded round barrier: phase 3 of runBatch, split
// into a parallel *prepare* sub-phase and an ownership-partitioned
// *commit*, with a short serial epilogue. The ROADMAP's "serial
// publish/reroute phase" — the last serial section of a batch — is
// gone; what remains serial is O(frontier) bookkeeping (epoch stamps,
// settle decisions, map merges), not the O(frontier x fanout) bucket
// and index rewriting.
//
// The phases and their ownership story:
//
//   - Prepare (parallel over active indexes): each active peer i
//     publishes its own view/level slot (view[slot], maxLv[slot] — no
//     other peer's prepare reads them, rules only read the view during
//     phase 2), computes outChanged/stateChanged and the paranoid
//     cross-check verdict, and — for the synchronous engine — diffs
//     its output against the recipients' standing buckets and its edge
//     sets against its stored dependency multiset, writing the
//     resulting bucket ops and index deltas ONLY into its own prepOut
//     scratch. Buckets and the dep index are read, never written.
//   - Commit (parallel over commit workers): recipients are
//     partitioned by slot (slot % workers) and dependency-index shards
//     by depShardOf(id) % workers, so every standing bucket, dirty
//     flag and index shard has exactly one writing worker. Per-worker
//     frontier appends and bucketMsgs tallies merge serially after.
//   - Epilogue (serial, active order): epoch bumps (the global epoch
//     clock is ordered state), settle bookkeeping, lastOut swaps,
//     paranoid panics deferred out of pool goroutines, and the merge
//     of per-index change sets into the reusable viewChanged/
//     ownerChanged maps feeding wakeDependents.
//
// Why Workers=1 and Workers=N stay snapshot-for-snapshot identical:
// every commit write is keyed by (sender handle, recipient slot) or
// (referenced id, dependent slot) and each key is written at most once
// per batch by construction (prepare emits at most one op per sender/
// recipient pair), so the final buckets are order-independent; dep
// index counts commute; the frontier is an order-insensitive SET (both
// collectFrontier and the async drainFrontier sort by identifier
// before consuming it); and everything order-sensitive — epoch stamps,
// RNG-consuming route callbacks, telemetry — runs in the serial
// epilogue in active (identifier) order, exactly as the old serial
// phase 3 did. The event-driven schedulers (async, partition) keep
// their route callbacks in the epilogue for the same reason: the async
// route draws RNG per changed recipient and the partition route emits
// ordered sink traffic, both of which must not depend on worker count.
//
// Dep-index deltas tolerate any application order within a shard: every
// remove emitted by prepare refers to a reference that was counted in
// the index before the batch (old bucket contents, old stateDeps
// entries — disjoint categories), so at any prefix of any interleaving
// the entry's count is at least the remaining removes and the underflow
// panic cannot fire spuriously.

// batchRun is the persistent fan-out machinery of runBatch: one task
// closure, WaitGroup and work counter reused across every batch (the
// old per-batch runOnPool closure allocated all three each round), plus
// the lazily built per-phase closures, which read the batch parameters
// from the Network's batch fields instead of capturing them.
type batchRun struct {
	wg   sync.WaitGroup
	next atomic.Int64
	n    int
	f    func(i int)
	task func()

	// per-phase bodies, built once on first use
	phase1, phase2, prepare, commit func(i int)

	// anyInbox records that phase 1 consumed a one-shot message
	// somewhere (a global-state change even when no peer state moved).
	anyInbox atomic.Bool
}

// parallelism resolves Config.Workers: the worker count requested and
// the pool size to lazily spawn (sized from the configuration, not
// from any one round's frontier, so a small first round does not cap
// later large rounds).
func (nw *Network) parallelism() int {
	w := nw.cfg.Workers
	if w <= 0 {
		w = defaultWorkers()
	}
	return w
}

// runParallel fans f(i) for i in [0, n) over the worker pool; f must
// only touch per-index/per-peer state (or, for the commit phase,
// state its index exclusively owns). w <= 1 — or a single item — runs
// inline on the caller's goroutine, which is also what keeps paranoid
// panics recoverable in the serial configuration.
func (nw *Network) runParallel(w, poolSize, n int, f func(i int)) {
	if n == 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	pool := nw.ensurePool(poolSize)
	if w > pool.size {
		w = pool.size
	}
	br := &nw.br
	if br.task == nil {
		br.task = func() {
			defer br.wg.Done()
			for {
				i := int(br.next.Add(1)) - 1
				if i >= br.n {
					return
				}
				br.f(i)
			}
		}
	}
	br.n, br.f = n, f
	br.next.Store(0)
	br.wg.Add(w)
	for k := 0; k < w; k++ {
		pool.tasks <- br.task
	}
	br.wg.Wait()
	br.f = nil // do not pin a stale closure between batches
}

// prepOut is the per-active-index output of the parallel prepare
// sub-phase. Entries are reused across batches (sized alongside
// results/pres and dropped with them when the frontier contracts).
type prepOut struct {
	ownerChanged bool // the peer's level span moved
	outChanged   bool // total output differs from lastOut
	stateChanged bool // the settle decision (content hashes moved)
	paranoidBad  bool // clone cross-check disagreed; panic in epilogue

	// viewRefs lists the virtual refs whose published rl/rr entry
	// changed this batch (merged into the barrier's viewChanged map by
	// the epilogue).
	viewRefs []ref.Ref

	// Synchronous-engine commit payload (empty for serial-route
	// schedulers): the bucket rewrites this sender wants and the
	// dep-index deltas they plus the peer's edge-set diff imply.
	ops  []bucketOp
	deps []depDelta

	// scratch: recipient grouping (ops alias its msgs storage until the
	// commit has run), deletion dedup, and the stateDeps diff buffers.
	groups []rrGroup
	dels   []ident.ID
	owners []ident.ID
	counts []ownerCount
}

// bucketOp is one standing-bucket rewrite: sender (implied by the
// prepOut's index) replaces its contribution at the recipient slot.
// nil msgs deletes the bucket. Ops exist only for buckets that
// actually change, so applying one unconditionally rewrites.
type bucketOp struct {
	dstSlot uint32
	delta   int32     // bucketMsgs adjustment (new len - old len)
	msgs    []Message // aliases the prepOut's group storage
}

// depDelta is one inverted-index adjustment: k > 0 adds, k < 0 removes
// references from the dependent slot to the identifier.
type depDelta struct {
	id   ident.ID
	slot uint32
	k    int32
}

// commitShard is one commit worker's private output: the frontier
// slots it dirtied and its bucketMsgs adjustment, merged serially
// after the commit barrier.
type commitShard struct {
	frontier   []uint32
	bucketMsgs int
}

// prepareIndex is the parallel prepare body for active index i: the
// publish diff, the settle verdicts, and (synchronous engine only) the
// bucket ops and dep deltas the commit will apply. Writes touch only
// the peer's own view/maxLv/stateDeps slots and prep[i].
func (nw *Network) prepareIndex(i int) {
	slot := nw.bActive[i]
	n := nw.pt.nodes[slot]
	res := &nw.results[i]
	p := &nw.prep[i]
	p.viewRefs = p.viewRefs[:0]
	p.ops = p.ops[:0]
	p.deps = p.deps[:0]
	p.ownerChanged, p.paranoidBad = false, false

	id := n.id
	// Publish the peer's level so other peers' purges detect stale
	// references to its deleted virtual nodes. Own-slot write: nothing
	// else reads maxLv or the view during prepare.
	oldMax := int(nw.pt.maxLv[slot])
	newMax := n.MaxLevel()
	if newMax != oldMax {
		nw.pt.maxLv[slot] = int32(newMax)
		p.ownerChanged = true
	}
	// Publish rl/rr changes (including entries of deleted levels).
	vs := nw.view[slot]
	for lvl := newMax + 1; lvl < len(vs); lvl++ {
		if vs[lvl] != (viewEntry{}) {
			p.viewRefs = append(p.viewRefs, ref.Virtual(id, lvl))
		}
	}
	if len(vs) > newMax+1 {
		vs = vs[:newMax+1]
	}
	for len(vs) <= newMax {
		vs = append(vs, viewEntry{})
	}
	for lvl, v := range n.vnodes {
		cur := viewEntry{}
		if v != nil {
			cur = publish(v)
		}
		if vs[lvl] != cur {
			vs[lvl] = cur
			p.viewRefs = append(p.viewRefs, ref.Virtual(id, lvl))
		}
	}
	nw.view[slot] = vs

	// The settle decision is the phase-2 hash comparison; ParanoidSettle
	// re-derives it from the deep clone and insists they agree. The
	// panic is deferred to the serial epilogue: a panic raised on a pool
	// goroutine could not be recovered by the tests that prove the
	// paranoid mode catches injected collisions.
	p.stateChanged = false
	if nw.bSettle {
		p.stateChanged = res.hchanged
		if nw.cfg.ParanoidSettle {
			if cloneChanged := !n.vnodesEqual(nw.pres[i]); cloneChanged != p.stateChanged {
				p.paranoidBad = true
			}
		}
	}
	p.outChanged = !sameMessages(res.out, n.lastOut)

	if nw.bSync {
		if res.hchanged {
			// The peer's edge sets changed: re-derive its dependency
			// contribution and turn the diff into commit deltas.
			nw.prepStateDeps(slot, n, p)
		}
		if p.outChanged {
			nw.prepReroute(n, res.out, p)
		}
	}
}

// prepStateDeps is refreshStateDeps recast for the parallel prepare:
// the recomputed multiset replaces the peer's own stateDeps slot (an
// own-slot write), and the index-side adjustments become deltas for
// the sharded commit instead of direct mutations.
func (nw *Network) prepStateDeps(slot uint32, n *RealNode, p *prepOut) {
	buf := p.owners[:0]
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		for _, r := range v.Nu.Slice() {
			buf = append(buf, r.Owner)
		}
		for _, r := range v.Nr.Slice() {
			buf = append(buf, r.Owner)
		}
		for _, r := range v.Nc.Slice() {
			buf = append(buf, r.Owner)
		}
	}
	ident.Sort(buf)
	p.owners = buf

	nc := p.counts[:0]
	for i := 0; i < len(buf); {
		j := i
		for j < len(buf) && buf[j] == buf[i] {
			j++
		}
		nc = append(nc, ownerCount{owner: buf[i], cnt: uint32(j - i)})
		i = j
	}
	p.counts = nc

	old := nw.stateDeps[slot]
	i, j := 0, 0
	for i < len(old) || j < len(nc) {
		switch {
		case j == len(nc) || (i < len(old) && old[i].owner < nc[j].owner):
			p.deps = append(p.deps, depDelta{id: old[i].owner, slot: slot, k: -int32(old[i].cnt)})
			i++
		case i == len(old) || nc[j].owner < old[i].owner:
			p.deps = append(p.deps, depDelta{id: nc[j].owner, slot: slot, k: int32(nc[j].cnt)})
			j++
		default:
			if nc[j].cnt != old[i].cnt {
				p.deps = append(p.deps, depDelta{id: nc[j].owner, slot: slot, k: int32(nc[j].cnt) - int32(old[i].cnt)})
			}
			i++
			j++
		}
	}
	nw.stateDeps[slot] = append(old[:0], nc...)
}

// prepReroute is the read-only half of the old reroute: group the
// sender's output by recipient (preserving per-recipient emission
// order), diff each contribution against the current standing bucket,
// and emit one bucketOp plus the implied dep deltas per changed
// recipient. Buckets are only read here — concurrent prepares may read
// the same recipient's map — and the op msgs alias this prepOut's own
// group storage, which stays untouched until the commit has run.
func (nw *Network) prepReroute(n *RealNode, out []Message, p *prepOut) {
	groups := p.groups
	ng := 0
	for _, m := range out {
		owner := m.To.Owner
		lo, hi := 0, ng
		for lo < hi {
			mid := (lo + hi) / 2
			if groups[mid].owner < owner {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == ng || groups[lo].owner != owner {
			if ng == len(groups) {
				groups = append(groups, rrGroup{})
			}
			ins := groups[ng] // recycle the spare entry's msgs buffer
			copy(groups[lo+1:ng+1], groups[lo:ng])
			ins.owner = owner
			ins.msgs = ins.msgs[:0]
			groups[lo] = ins
			ng++
		}
		groups[lo].msgs = append(groups[lo].msgs, m)
	}
	p.groups = groups
	// Previous recipients with no new contribution get their bucket
	// deleted. lastOut may repeat an owner, so deletions are
	// deduplicated here (the serial rerouteOne absorbed duplicates as
	// no-ops; an op stream must not double-count the delta).
	dels := p.dels[:0]
	for _, m := range n.lastOut {
		owner := m.To.Owner
		lo, hi := 0, ng
		for lo < hi {
			mid := (lo + hi) / 2
			if groups[mid].owner < owner {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < ng && groups[lo].owner == owner {
			continue
		}
		lo, hi = 0, len(dels)
		for lo < hi {
			mid := (lo + hi) / 2
			if dels[mid] < owner {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(dels) && dels[lo] == owner {
			continue
		}
		dels = append(dels, 0)
		copy(dels[lo+1:], dels[lo:])
		dels[lo] = owner
	}
	p.dels = dels
	h := n.h()
	for _, owner := range dels {
		nw.prepOneOp(h, owner, nil, p)
	}
	for g := 0; g < ng; g++ {
		nw.prepOneOp(h, groups[g].owner, groups[g].msgs, p)
	}
}

// prepOneOp diffs one (sender, recipient) contribution and, if it
// changed, records the rewrite and its dep deltas. Mirrors rerouteOne's
// decisions exactly, split at the read/write boundary.
func (nw *Network) prepOneOp(sender handle, dstID ident.ID, newB []Message, p *prepOut) {
	slot, ok := nw.pt.lookup(dstID)
	if !ok {
		return // destination departed
	}
	oldB := nw.pt.nodes[slot].in[sender]
	if sameMessages(oldB, newB) {
		return
	}
	p.ops = append(p.ops, bucketOp{dstSlot: slot, delta: int32(len(newB) - len(oldB)), msgs: newB})
	for _, m := range oldB {
		p.deps = append(p.deps, depDelta{id: m.Add.Owner, slot: slot, k: -1})
	}
	for _, m := range newB {
		p.deps = append(p.deps, depDelta{id: m.Add.Owner, slot: slot, k: 1})
	}
}

// commitWorker applies the shard owned by commit worker w: bucket ops
// whose recipient slot it owns and dep deltas whose index shard it
// owns. Scanning every prepOut is cheap relative to applying (ops are
// only emitted for changed buckets); the writes are the expensive part
// and they are perfectly partitioned.
func (nw *Network) commitWorker(w int) {
	C := nw.commitW
	sh := &nw.commit[w]
	sh.bucketMsgs = 0
	sh.frontier = sh.frontier[:0]
	uw := uint32(w)
	uc := uint32(C)
	for i := range nw.bActive {
		p := &nw.prep[i]
		if len(p.ops) > 0 {
			h := nw.pt.nodes[nw.bActive[i]].h()
			for k := range p.ops {
				op := &p.ops[k]
				if op.dstSlot%uc != uw {
					continue
				}
				nw.commitBucketOp(w, h, op, sh)
			}
		}
		for _, d := range p.deps {
			if depShardOf(d.id)%uc != uw {
				continue
			}
			nw.commitDepDelta(w, d)
		}
	}
}

// commitBucketOp rewrites one standing bucket. The ownership audit
// (under ParanoidSettle) re-derives the op's owner from the slot
// partition and panics on a cross-shard write: the selection filter in
// commitWorker and this check must agree by construction, so a firing
// audit means the partitioning itself regressed.
func (nw *Network) commitBucketOp(w int, sender handle, op *bucketOp, sh *commitShard) {
	if nw.cfg.ParanoidSettle && int(op.dstSlot)%nw.commitW != w {
		panic(fmt.Sprintf("rechord: cross-shard bucket write: slot %d belongs to commit worker %d, written by %d",
			op.dstSlot, int(op.dstSlot)%nw.commitW, w))
	}
	dst := nw.pt.nodes[op.dstSlot]
	sh.bucketMsgs += int(op.delta)
	if len(op.msgs) == 0 {
		delete(dst.in, sender)
	} else {
		if dst.in == nil {
			dst.in = make(map[handle][]Message)
		}
		b := dst.in[sender][:0]
		if cap(b) > 2*len(op.msgs)+8 {
			// The convergence transient can leave buckets with peak
			// capacities far above their steady content; right-size
			// instead of pinning the spike forever.
			b = nil
		}
		dst.in[sender] = append(b, op.msgs...)
	}
	if !dst.dirty {
		dst.dirty = true
		sh.frontier = append(sh.frontier, op.dstSlot)
	}
}

// commitDepDelta applies one inverted-index adjustment, with the same
// cross-shard audit as the bucket path.
func (nw *Network) commitDepDelta(w int, d depDelta) {
	if nw.cfg.ParanoidSettle && int(depShardOf(d.id))%nw.commitW != w {
		panic(fmt.Sprintf("rechord: cross-shard dep write: id %s belongs to commit worker %d, written by %d",
			d.id, int(depShardOf(d.id))%nw.commitW, w))
	}
	if d.k > 0 {
		nw.deps.add(d.id, d.slot, uint32(d.k))
	} else {
		nw.deps.remove(d.id, d.slot, uint32(-d.k))
	}
}
