package rechord_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// TestBeyondPaperScale extends the evaluation beyond the paper's
// n = 105 ceiling: the network must still converge to the exact
// oracle topology, and rounds-to-almost-stable must stay sublinear
// (comfortably below n/2).
func TestBeyondPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale sweep skipped with -short")
	}
	for _, n := range []int{155, 205} {
		rng := rand.New(rand.NewSource(int64(n)))
		ids := topogen.RandomIDs(n, rng)
		nw := topogen.Random().Build(ids, rng, rechord.Config{})
		idl := rechord.ComputeIdeal(ids)
		res, err := sim.RunToStable(context.Background(), nw, sim.Options{Ideal: idl})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := idl.Matches(nw); err != nil {
			t.Fatalf("n=%d: wrong state: %v", n, err)
		}
		if res.AlmostStableRound > n/2 {
			t.Errorf("n=%d: almost-stable after %d rounds, want sublinear (< n/2)",
				n, res.AlmostStableRound)
		}
		t.Logf("n=%d: stable %d rounds, almost stable %d, %d msgs",
			n, res.Rounds, res.AlmostStableRound, res.TotalMessages)
	}
}
