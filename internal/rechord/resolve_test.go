package rechord

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// Regression coverage for Network.resolve's stale-level fallback: a
// reference to a deleted (or never-created) virtual level of a live
// peer must redirect to the peer's real node — the process that
// answers for all of the peer's virtual addresses — and must not be
// dropped like a reference to a departed peer. The incremental
// scheduler's purge path depends on this: a woken peer purges against
// the maintained level table, and losing the reference instead of
// redirecting it could disconnect the graph.

func TestResolveStaleLevelFallsBackToRealNode(t *testing.T) {
	nw := NewNetwork(Config{Workers: 1})
	a := ident.FromFloat(0.2)
	b := ident.FromFloat(0.7)
	nw.AddPeer(a)
	nw.AddPeer(b)

	// a simulates only level 0; a reference to its level 5 is stale.
	got, ok := nw.resolve(ref.Virtual(a, 5))
	if !ok {
		t.Fatal("reference to stale level of a live peer was dropped")
	}
	if got != ref.Real(a) {
		t.Fatalf("stale-level reference resolved to %s, want %s", got, ref.Real(a))
	}

	// A valid level resolves to itself.
	nw.SeedEdge(ref.Virtual(a, 2), ref.Real(b), graph.Unmarked)
	if got, ok := nw.resolve(ref.Virtual(a, 2)); !ok || got != ref.Virtual(a, 2) {
		t.Fatalf("valid reference resolved to %s (ok=%v), want itself", got, ok)
	}

	// A departed peer's references are dropped, not redirected.
	if _, ok := nw.resolve(ref.Real(ident.FromFloat(0.9))); ok {
		t.Fatal("reference to unknown peer resolved")
	}
}

func TestPurgeRedirectsStaleLevel(t *testing.T) {
	nw := NewNetwork(Config{Workers: 1})
	a := ident.FromFloat(0.2)
	b := ident.FromFloat(0.7)
	nw.AddPeer(a)
	nw.AddPeer(b)
	// b holds edges of every kind to a's nonexistent level 6.
	stale := ref.Virtual(a, 6)
	nw.SeedEdge(ref.Real(b), stale, graph.Unmarked)
	nw.SeedEdge(ref.Real(b), stale, graph.Ring)
	nw.SeedEdge(ref.Real(b), stale, graph.Connection)

	nw.purge(nw.node(b))

	v := nw.node(b).VNode(0)
	for name, s := range map[string]*ref.Set{"Nu": &v.Nu, "Nr": &v.Nr, "Nc": &v.Nc} {
		if s.Contains(stale) {
			t.Errorf("%s still holds the stale reference %s", name, stale)
		}
		if !s.Contains(ref.Real(a)) {
			t.Errorf("%s lost the reference entirely: %s, want redirect to %s", name, s, ref.Real(a))
		}
	}
}

// TestPurgeRedirectAfterLevelShrink drives the same fallback through
// the engine: peer a grows virtual levels, b references a deep one,
// then a's knowledge changes so the level disappears — b's reference
// must collapse to a's real node during the next rounds rather than
// vanish, and the network must still converge.
func TestPurgeRedirectAfterLevelShrink(t *testing.T) {
	nw := NewNetwork(Config{Workers: 1})
	a := ident.FromFloat(0.2)
	b := ident.FromFloat(0.7)
	nw.AddPeer(a)
	nw.AddPeer(b)
	nw.SeedEdge(ref.Real(a), ref.Real(b), graph.Unmarked)
	// b starts out knowing only a deep (stale) virtual address of a.
	nw.SeedEdge(ref.Real(b), ref.Virtual(a, 9), graph.Unmarked)

	for r := 0; r < 200 && !nw.Quiescent(); r++ {
		nw.Step()
	}
	if !nw.Quiescent() {
		t.Fatal("two-peer network did not quiesce")
	}
	if err := ComputeIdeal([]ident.ID{a, b}).Matches(nw); err != nil {
		t.Fatalf("converged to wrong state: %v", err)
	}
}
