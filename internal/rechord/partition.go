package rechord

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/ref"
)

// This file is the partitioned scheduler: the piece that lets one
// Re-Chord network be executed by several processes, each running the
// rules for a subset of the peers ("hosted" peers) while holding the
// full membership as passive stubs.
//
// The design exploits two properties of the round engine. First, a
// peer's rules read only its own state, the published view of the
// peers it references (viewOf), and the static config — so a process
// that keeps its stubs' published views and max levels up to date can
// execute its hosted peers exactly as the monolith would. Second, the
// route callback and the barrier's wakeDependents call are the only
// points where one peer's execution touches another peer's inputs — so
// mirroring standing-bucket rewrites (rerouteWith's onChange), one-shot
// deliveries, and per-owner view publishes to the recipients' hosting
// processes is sufficient for semantic equivalence. Churn-free runs
// are round-for-round identical to the monolith; runs with churn skew
// by at most the op round and converge to the same unique stable
// topology (the paper's self-stabilization theorem), which the wire
// equivalence gate checks via StateFingerprint.
//
// Each round, every process: applies the round's membership ops, steps
// its hosted frontier, hands the resulting cross-partition effects to
// its PartitionSink, and then applies the effects received from every
// other process before the next round begins. The exchange protocol
// itself (frames, transports, the lockstep barrier) lives in
// internal/wire; this file only defines the effect payloads and their
// local application.

// BucketUpdate mirrors one sender's standing contribution at one
// recipient: the partitioned form of rerouteSpan. Empty Msgs deletes
// the bucket.
type BucketUpdate struct {
	From, To ident.ID
	Msgs     []Message
}

// OneShot delivers messages to one peer's one-shot inbox: goodbye
// introductions from a graceful leave and final flushes of a departed
// sender's standing flow travel this way.
type OneShot struct {
	To   ident.ID
	Msgs []Message
}

// PublishedView is one virtual level's published rl/rr tuple, the wire
// form of the engine's internal view entry.
type PublishedView struct {
	RL, RR       ref.Ref
	HasRL, HasRR bool
}

// PeerPublish replicates one hosted peer's published state — max
// virtual level and the full per-level view — to the processes holding
// it as a stub. Receivers diff it against their replica, so applying
// it reproduces the monolith barrier's exact wake set.
type PeerPublish struct {
	Owner    ident.ID
	MaxLevel int
	Views    []PublishedView
}

// PartitionSink receives the cross-partition effects of one local
// round. Buckets and one-shots are addressed (the recipient's hosting
// process applies them; applying them everywhere is also sound, since
// bucket rewrites are idempotent and one-shot application is
// hosted-gated); publishes are broadcast. Slices passed in are owned
// by the callee.
type PartitionSink interface {
	SendBucket(u BucketUpdate)
	SendOneShot(u OneShot)
	PublishState(p PeerPublish)
}

// Partition executes the hosted subset of a replicated Network. The
// network must be built identically at every process (same topology
// generator, same seed, same op sequence) so that membership, slot
// assignment and initial state agree everywhere.
type Partition struct {
	nw     *Network
	hosted func(ident.ID) bool
	sink   PartitionSink

	// pub accumulates, during a batch, the hosted owners whose
	// published state (view or max level) changed and must be
	// broadcast after the batch.
	pub map[ident.ID]bool
}

var _ Scheduler = (*Partition)(nil)

// NewPartition wraps the network for partitioned execution. hosted
// decides which peers this process runs; sink (may be nil for
// single-process use) receives the cross-partition effects. The
// network's barrier hook is claimed by the partition.
func NewPartition(nw *Network, hosted func(ident.ID) bool, sink PartitionSink) *Partition {
	p := &Partition{nw: nw, hosted: hosted, sink: sink, pub: make(map[ident.ID]bool)}
	nw.onBarrier = p.captureBarrier
	return p
}

// Network returns the underlying (replicated) network.
func (p *Partition) Network() *Network { return p.nw }

// Time returns the global round counter.
func (p *Partition) Time() int { return p.nw.round }

// LastChange returns the last round whose local execution changed
// hosted state.
func (p *Partition) LastChange() int { return p.nw.lastChange }

// InFlight counts locally standing messages (hosted and shadow
// buckets plus pending inboxes).
func (p *Partition) InFlight() int { return p.nw.InFlight() }

// Wake schedules a hosted peer; waking a stub is a no-op at this
// process (its host wakes it).
func (p *Partition) Wake(id ident.ID) {
	if p.hosted(id) {
		p.nw.Wake(id)
	}
}

// Quiescent reports whether any HOSTED peer is scheduled to run.
// Stubs on the frontier don't count: they were woken as bookkeeping
// side effects and are filtered out of every batch anyway.
func (p *Partition) Quiescent() bool {
	for _, slot := range p.nw.frontier {
		if n := p.nw.pt.nodes[slot]; n != nil && n.dirty && p.hosted(n.id) {
			return false
		}
	}
	return true
}

// Fingerprint digests this partition's hosted protocol state. XOR of
// every partition's value equals the monolith's StateFingerprint(nil).
func (p *Partition) Fingerprint() uint64 { return p.nw.StateFingerprint(p.hosted) }

// HostedPeers counts the peers this process executes.
func (p *Partition) HostedPeers() int {
	c := 0
	for _, n := range p.nw.pt.nodes {
		if n != nil && p.hosted(n.id) {
			c++
		}
	}
	return c
}

// Step runs one global round's hosted share: collect the frontier,
// keep the hosted slots, and run the batch with the partition route.
// Cross-partition effects stream into the sink during the call; the
// caller exchanges them and applies the other processes' effects
// (ApplyBucket/ApplyOneShot/ApplyPublish) before the next Step.
func (p *Partition) Step() RoundStats {
	nw := p.nw
	nw.round++
	nw.met.Steps.Inc()
	stats := RoundStats{Round: nw.round}

	active := nw.collectFrontier()
	// Drop the stubs: their hosting processes run them. The filter
	// preserves the sorted order collectFrontier established.
	hosted := active[:0]
	for _, slot := range active {
		if p.hosted(nw.pt.ids[slot]) {
			hosted = append(hosted, slot)
		}
	}
	nw.active = hosted
	stats.Activated = len(hosted)
	if len(hosted) == 0 {
		stats.MessagesSent = nw.bucketMsgs
		return stats
	}
	if nw.runBatch(hosted, true, p.route, &stats) {
		nw.lastChange = nw.round
	}
	p.flushPublishes()
	stats.MessagesSent = nw.bucketMsgs
	return stats
}

// route is the partition's barrier routing: standing buckets are
// rewritten locally exactly as the monolith does (stubs carry shadow
// buckets, so the sender-side dedup state is complete), and every
// rewrite whose recipient lives elsewhere is mirrored to the sink.
func (p *Partition) route(n *RealNode, _ []Message, outChanged, _ bool) {
	if !outChanged {
		return
	}
	p.nw.rerouteWith(n, p.nw.routeFlow, func(dst ident.ID, msgs []Message) {
		if p.sink == nil || p.hosted(dst) {
			return
		}
		var cp []Message
		if len(msgs) > 0 {
			cp = append(cp, msgs...)
		}
		p.sink.SendBucket(BucketUpdate{From: n.id, To: dst, Msgs: cp})
	})
}

// captureBarrier is the Network.onBarrier hook: it records which
// hosted owners must re-broadcast their published state. Both an
// owner-level change (max level moved) and any per-level view change
// funnel into one full-state publish — receivers diff, so the wake
// sets stay exact.
func (p *Partition) captureBarrier(owners map[ident.ID]bool, refs map[ref.Ref]bool) {
	for id := range owners {
		if p.hosted(id) {
			p.pub[id] = true
		}
	}
	for r := range refs {
		if p.hosted(r.Owner) {
			p.pub[r.Owner] = true
		}
	}
}

// flushPublishes emits the batch's accumulated state publishes.
func (p *Partition) flushPublishes() {
	if p.sink == nil {
		clear(p.pub)
		return
	}
	for id := range p.pub {
		slot, ok := p.nw.pt.lookup(id)
		if !ok {
			continue // departed between batch and flush (same-round op cannot happen, but stay safe)
		}
		src := p.nw.view[slot]
		views := make([]PublishedView, len(src))
		for i, e := range src {
			views[i] = PublishedView{RL: e.rl, RR: e.rr, HasRL: e.hasRL, HasRR: e.hasRR}
		}
		p.sink.PublishState(PeerPublish{
			Owner:    id,
			MaxLevel: int(p.nw.pt.maxLv[slot]),
			Views:    views,
		})
	}
	clear(p.pub)
}

// ApplyBucket installs a remote sender's standing contribution. Safe
// to apply at every process: at the sender's own host the shadow was
// already written and the rewrite dedups to a no-op; elsewhere it
// keeps the stub-to-stub shadows consistent. The contribution lives in
// a private single-span template — the stub sender has no local flow
// generation to share.
func (p *Partition) ApplyBucket(u BucketUpdate) {
	nw := p.nw
	slot, ok := nw.pt.lookup(u.From)
	if !ok {
		return // sender departed via an op this process already applied
	}
	h := nw.pt.nodes[slot].h()
	if len(u.Msgs) == 0 {
		nw.rerouteSpan(h, u.To, nil, -1)
		return
	}
	t := buildPrivateFlow(u.To, u.Msgs)
	nw.flow.tallyBirth(t)
	nw.rerouteSpan(h, u.To, t, 0)
	releaseFlow(t, &nw.flow)
}

// ApplyOneShot delivers messages to a hosted recipient's inbox.
// Non-hosted recipients are skipped: their own host applies its copy,
// and accepting it here would re-enter the stub-inbox sweep.
func (p *Partition) ApplyOneShot(u OneShot) {
	if !p.hosted(u.To) {
		return
	}
	nw := p.nw
	slot, ok := nw.pt.lookup(u.To)
	if !ok {
		return
	}
	n := nw.pt.nodes[slot]
	n.inbox = append(n.inbox, u.Msgs...)
	nw.markDirtyIdx(slot)
}

// ApplyPublish updates a stub's replicated published state, diffing it
// against the current replica and waking exactly the local dependents
// the monolith barrier would have woken. Publishes about peers hosted
// here are ignored (the local copy is authoritative).
func (p *Partition) ApplyPublish(u PeerPublish) {
	if p.hosted(u.Owner) {
		return
	}
	nw := p.nw
	slot, ok := nw.pt.lookup(u.Owner)
	if !ok {
		return
	}
	var owners map[ident.ID]bool
	if int32(u.MaxLevel) != nw.pt.maxLv[slot] {
		nw.pt.maxLv[slot] = int32(u.MaxLevel)
		owners = map[ident.ID]bool{u.Owner: true}
	}
	var refs map[ref.Ref]bool
	markRef := func(lvl int) {
		if refs == nil {
			refs = make(map[ref.Ref]bool)
		}
		refs[ref.Virtual(u.Owner, lvl)] = true
	}
	vs := nw.view[slot]
	for lvl := len(u.Views); lvl < len(vs); lvl++ {
		if vs[lvl] != (viewEntry{}) {
			markRef(lvl)
		}
	}
	if len(u.Views) < len(vs) {
		vs = vs[:len(u.Views)]
	}
	for lvl, pv := range u.Views {
		e := viewEntry{rl: pv.RL, rr: pv.RR, hasRL: pv.HasRL, hasRR: pv.HasRR}
		if lvl < len(vs) {
			if vs[lvl] != e {
				vs[lvl] = e
				markRef(lvl)
			}
		} else {
			vs = append(vs, e)
			if e != (viewEntry{}) {
				markRef(lvl)
			}
		}
	}
	nw.view[slot] = vs
	if len(owners) > 0 || len(refs) > 0 {
		nw.wakeDependents(owners, refs)
	}
}

// ApplyJoin integrates a scripted join: the membership change is
// replicated everywhere (Join), and if the joiner is hosted elsewhere,
// the hosted senders' standing flow that AddPeer re-materialized into
// the local stub is mirrored to the joiner's host, which cannot see
// those senders' flow templates.
func (p *Partition) ApplyJoin(id, contact ident.ID) error {
	if err := p.nw.Join(id, contact); err != nil {
		return err
	}
	if p.hosted(id) || p.sink == nil {
		return nil
	}
	for _, s := range p.nw.pt.nodes {
		if s == nil || s.id == id || !p.hosted(s.id) || s.lastFlow == nil {
			continue
		}
		si := s.lastFlow.findSpan(id)
		if si < 0 {
			continue
		}
		p.sink.SendBucket(BucketUpdate{From: s.id, To: id, Msgs: s.lastFlow.appendSpan(nil, si)})
	}
	return nil
}

// ApplyLeave integrates a scripted graceful leave. Only the departing
// peer's host generates the goodbye introductions (it holds the live
// state they are derived from); every other process performs the
// scan-based removal. Goodbyes and final bucket flushes addressed to
// remote peers land in stub inboxes and are swept to the sink.
func (p *Partition) ApplyLeave(id ident.ID) error {
	if p.hosted(id) {
		if err := p.nw.Leave(id); err != nil {
			return err
		}
	} else if err := p.removeStub(id, "leave"); err != nil {
		return err
	}
	p.sweepStubInboxes()
	return nil
}

// ApplyFail integrates a scripted abrupt failure: removal everywhere,
// no goodbyes.
func (p *Partition) ApplyFail(id ident.ID) error {
	if p.hosted(id) {
		if err := p.nw.Fail(id); err != nil {
			return err
		}
	} else if err := p.removeStub(id, "fail"); err != nil {
		return err
	}
	p.sweepStubInboxes()
	return nil
}

// removeStub is removePeer for a peer hosted elsewhere. The departed
// stub has no trustworthy flow template, so the final-delivery walk is
// a scan over every local peer's standing buckets for the departed
// handle instead: hosted recipients get the flush-to-inbox the
// monolith performs, stub recipients just drop the shadow (their own
// hosts flush their copies).
func (p *Partition) removeStub(id ident.ID, op string) error {
	nw := p.nw
	n := nw.pt.node(id)
	if n == nil {
		return fmt.Errorf("rechord: partition %s: peer %s not in network", op, id)
	}
	h := n.h()
	nw.view[n.idx] = nil
	nw.vhash[n.idx] = nw.vhash[n.idx][:0]
	nw.dropStateDeps(n.idx)
	nw.pt.release(n)
	nw.removeOrder(id)
	for _, b := range n.in {
		nw.bucketMsgs -= b.flow.spanLen(b.span)
		nw.depRemoveSpan(n.idx, b.flow, b.span)
		releaseBucket(b, &nw.flow)
	}
	n.in = nil
	if n.lastFlow != nil {
		releaseFlow(n.lastFlow, &nw.flow)
		n.lastFlow = nil
	}
	for slot, dst := range nw.pt.nodes {
		if dst == nil {
			continue
		}
		bi := dst.findBucket(h)
		if bi < 0 {
			continue
		}
		b := dst.in[bi]
		nw.bucketMsgs -= b.flow.spanLen(b.span)
		nw.depRemoveSpan(uint32(slot), b.flow, b.span)
		dst.delBucketAt(bi)
		if p.hosted(dst.id) {
			dst.inbox = b.flow.appendSpan(dst.inbox, b.span)
			nw.markDirtyIdx(uint32(slot))
		}
		releaseBucket(b, &nw.flow)
	}
	nw.flushFlowGauges()
	nw.wakeDependents(map[ident.ID]bool{id: true}, nil)
	return nil
}

// sweepStubInboxes forwards one-shot messages that churn handling
// parked on local stubs to the sink (their hosts deliver them for
// real). Only op application parks messages on stubs, so the sweep
// runs after ops, not every round.
func (p *Partition) sweepStubInboxes() {
	if p.sink == nil {
		return
	}
	for _, n := range p.nw.pt.nodes {
		if n == nil || len(n.inbox) == 0 || p.hosted(n.id) {
			continue
		}
		p.sink.SendOneShot(OneShot{To: n.id, Msgs: append([]Message(nil), n.inbox...)})
		n.inbox = n.inbox[:0]
	}
}
