package rechord_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// TestPropertyConvergesFromAnyConnectedState is the central property
// of Theorem 1.1 as a randomized test: any weakly connected initial
// state over random peers converges to the exact oracle topology.
func TestPropertyConvergesFromAnyConnectedState(t *testing.T) {
	gens := topogen.All()
	f := func(seed int64, sizeRaw, genRaw uint8) bool {
		n := 2 + int(sizeRaw)%24
		gen := gens[int(genRaw)%len(gens)]
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(n, rng)
		nw := gen.Build(ids, rng, rechord.Config{Workers: 2})
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			t.Logf("seed=%d n=%d gen=%s: %v", seed, n, gen.Name, err)
			return false
		}
		if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
			t.Logf("seed=%d n=%d gen=%s: %v", seed, n, gen.Name, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWeakConnectivityPreserved: the protocol never
// disconnects the real-node graph (edges are only handed over, never
// silently dropped while still needed).
func TestPropertyWeakConnectivityPreserved(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := 2 + int(sizeRaw)%16
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(n, rng)
		nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 1})
		for round := 0; round < 30; round++ {
			if !nw.Graph().RealWeaklyConnected() {
				t.Logf("seed=%d n=%d: disconnected at round %d", seed, n, round)
				return false
			}
			nw.Step()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyChurnClosure: after any random sequence of joins,
// leaves and failures (run to quiescence after each), the network is
// in the exact stable state for the surviving membership.
func TestPropertyChurnClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(6+rng.Intn(6), rng)
		nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{Workers: 2})
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			peers := nw.Peers()
			switch {
			case len(peers) < 3 || rng.Intn(2) == 0:
				if err := nw.Join(ident.ID(rng.Uint64()|1), peers[rng.Intn(len(peers))]); err != nil {
					return false
				}
			case rng.Intn(2) == 0:
				if err := nw.Leave(peers[rng.Intn(len(peers))]); err != nil {
					return false
				}
			default:
				if err := nw.Fail(peers[rng.Intn(len(peers))]); err != nil {
					return false
				}
			}
			if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
				t.Logf("seed=%d step=%d: %v", seed, i, err)
				return false
			}
		}
		if err := rechord.ComputeIdeal(nw.Peers()).Matches(nw); err != nil {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNoSelfLoops: no rule ever creates a self-loop edge.
func TestPropertyNoSelfLoops(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(2+rng.Intn(12), rng)
		nw := topogen.Garbage().Build(ids, rng, rechord.Config{Workers: 1})
		for round := 0; round < 20; round++ {
			nw.Step()
			for _, e := range nw.Graph().AllEdges() {
				if e.From == e.To {
					t.Logf("seed=%d: self-loop %v at round %d", seed, e, round)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVirtualLevelsContiguous: after every round each peer
// simulates exactly the levels 0..m for some m (rule 1 keeps the
// sibling set contiguous).
func TestPropertyVirtualLevelsContiguous(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(2+rng.Intn(12), rng)
		nw := topogen.Garbage().Build(ids, rng, rechord.Config{Workers: 1})
		for round := 0; round < 15; round++ {
			nw.Step()
			for _, id := range nw.Peers() {
				levels := nw.Peer(id).Levels()
				for i, l := range levels {
					if l != i {
						t.Logf("seed=%d: peer %s has non-contiguous levels %v", seed, id, levels)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMonotoneAlmostStability: once all desired edges exist
// they are never lost again on the way to the fixed point.
func TestPropertyMonotoneAlmostStability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(2+rng.Intn(14), rng)
		nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 2})
		idl := rechord.ComputeIdeal(ids)
		reached := false
		for round := 0; round < sim.DefaultMaxRounds(len(ids)); round++ {
			prev := nw.TakeSnapshot()
			nw.Step()
			almost := idl.AlmostStable(nw)
			if reached && !almost {
				t.Logf("seed=%d: almost-stability lost at round %d", seed, nw.Round())
				return false
			}
			if almost {
				reached = true
			}
			if nw.TakeSnapshot().Equal(prev) {
				return reached
			}
		}
		t.Logf("seed=%d: did not stabilize", seed)
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestGarbageWithAllEdgeKinds: ring and connection edges in the
// initial state keep the graph weakly connected for the premise, and
// the protocol absorbs them.
func TestGarbageWithAllEdgeKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ids := topogen.RandomIDs(18, rng)
	nw := rechord.NewNetwork(rechord.Config{})
	for _, id := range ids {
		nw.AddPeer(id)
	}
	// A tree built purely from ring and connection edges.
	kinds := []graph.Kind{graph.Ring, graph.Connection}
	for i := 1; i < len(ids); i++ {
		nw.SeedEdge(refAt(ids[i], rng.Intn(4)), refAt(ids[rng.Intn(i)], rng.Intn(4)), kinds[i%2])
	}
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("marked-edges-only initial state: %v", err)
	}
}

func refAt(id ident.ID, lvl int) ref.Ref { return ref.Virtual(id, lvl) }
