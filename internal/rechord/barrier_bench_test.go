package rechord

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
)

// barrierBenchRounds fixes the measured window: the first rounds of a
// convergence from the ideal-seeded state, during which (nearly) every
// peer is on the frontier and rewriting its standing contributions —
// exactly the regime the old serial phase 3 dominated. A fixed window
// instead of run-to-quiescence keeps the series comparable across
// engine changes and immune to seed-specific settle tails (some id
// sets ride a flow-settling wave for thousands of rounds — see
// TestSeed4096FlowWave and DESIGN §2; the largescale suites hold the
// convergence proofs).
const barrierBenchRounds = 48

// BenchmarkBarrierCommit pins the phase-3 split the sharded barrier
// introduced: prepare (parallel publish + output/dependency diffing)
// versus commit (the ownership-partitioned bucket/index rewrite),
// under the hot frontier of the ideal-seeded transient. The serial
// series runs Workers=1 (prepare, commit and the epilogue all on the
// caller), the sharded series Workers=4; ns/op is the whole window,
// and the per-batch phase means come from the engine's own telemetry
// so the split is visible in BENCH_rounds.json next to the wall-clock.
func BenchmarkBarrierCommit(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		for _, bc := range []struct {
			name    string
			workers int
		}{
			{"serial", 1},
			{"sharded", 4},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", bc.name, n), func(b *testing.B) {
				b.ReportAllocs()
				var prepNS, commitNS, publishNS, batches float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					nw, _ := idealSeededNet(Config{Workers: bc.workers}, n)
					b.StartTimer()
					for r := 0; r < barrierBenchRounds && !nw.Quiescent(); r++ {
						nw.Step()
					}
					b.StopTimer()
					s := nw.met.Snapshot()
					if s.Batches == 0 || nw.InFlight() == 0 {
						b.Fatalf("n=%d: transient did not run (batches=%d, inflight=%d)", n, s.Batches, nw.InFlight())
					}
					prep, com, pub := s.PhaseNS["prepare"], s.PhaseNS["reroute"], s.PhaseNS["publish"]
					prepNS += prep.Mean * float64(prep.Count)
					commitNS += com.Mean * float64(com.Count)
					publishNS += pub.Mean * float64(pub.Count)
					batches += float64(prep.Count)
					b.StartTimer()
				}
				b.StopTimer()
				if batches > 0 {
					b.ReportMetric(prepNS/batches, "prepare-ns/batch")
					b.ReportMetric(commitNS/batches, "commit-ns/batch")
					b.ReportMetric(publishNS/batches, "publish-ns/batch")
				}
			})
		}
	}
}

// idealSeededNet builds a network holding the exact ideal Re-Chord
// topology for n random identifiers, un-converged: the first Steps run
// the all-peers transient (every peer active, buckets materializing)
// before settling. The seeding matches topogen.PreStabilized, which
// lives upstream of this package.
func idealSeededNet(cfg Config, n int) (*Network, *Ideal) {
	rng := rand.New(rand.NewSource(int64(n)))
	ids := make([]ident.ID, 0, n)
	seen := map[ident.ID]bool{}
	for len(ids) < n {
		id := ident.ID(rng.Uint64())
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	nw := NewNetwork(cfg)
	nw.Reserve(n)
	for _, id := range ids {
		nw.AddPeer(id)
	}
	idl := ComputeIdeal(ids)
	for _, x := range idl.Nodes() {
		for _, y := range idl.Nu(x).Slice() {
			nw.SeedEdge(x, y, graph.Unmarked)
		}
	}
	nodes := idl.Nodes()
	mn, mx := nodes[0], nodes[len(nodes)-1]
	nw.SeedEdge(mx, mn, graph.Ring)
	nw.SeedEdge(mn, mx, graph.Ring)
	return nw, idl
}
