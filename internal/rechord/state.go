// Package rechord implements the Re-Chord self-stabilizing overlay
// network of Kniesburges, Koutsopoulos and Scheideler (SPAA 2011).
//
// Every peer (real node) simulates a set of virtual nodes u_i at
// identifiers u + 1/2^i (mod 1); the protocol maintains, per virtual
// node, three outgoing edge sets — unmarked (N_u), ring (N_r) and
// connection (N_c) — and repairs them with six purely local rules per
// synchronous round:
//
//  1. Virtual Nodes: create u_1..u_m, delete levels beyond m.
//  2. Overlapping Neighborhood: hand edges to the sibling closest to
//     the target.
//  3. Closest Real Neighbor: find and propagate rl/rr, the closest
//     real nodes to the left and right.
//  4. Linearization: sort the unmarked neighborhood, forward far edges
//     toward their endpoints, mirror the closest ones.
//  5. Ring Edge: let the extreme nodes close the sorted list into a
//     ring via marked ring edges.
//  6. Connection Edges: keep contiguous virtual siblings connected
//     through the nodes between them.
//
// From any state in which the peers are weakly connected, the network
// converges to the unique stable Re-Chord topology, which contains
// Chord as a subgraph (Fact 2.1).
package rechord

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// VNode is the state of one virtual node (level 0 is the real node
// itself): its three outgoing edge sets and its current belief about
// its closest real neighbors.
type VNode struct {
	Self ref.Ref
	Nu   ref.Set // unmarked edges E_u
	Nr   ref.Set // ring edges E_r
	Nc   ref.Set // connection edges E_c

	// RL/RR are the node's variables rl(u_i) and rr(u_i): the closest
	// real node to the left resp. right, recomputed by rule 3 every
	// round. HasRL/HasRR report whether they are set.
	RL, RR       ref.Ref
	HasRL, HasRR bool
}

func newVNode(owner ident.ID, level int) *VNode {
	return &VNode{Self: ref.Virtual(owner, level)}
}

// addNu inserts r into N_u, refusing self-loops.
func (v *VNode) addNu(r ref.Ref) {
	if r != v.Self {
		v.Nu.Add(r)
	}
}

func (v *VNode) addNr(r ref.Ref) {
	if r != v.Self {
		v.Nr.Add(r)
	}
}

func (v *VNode) addNc(r ref.Ref) {
	if r != v.Self {
		v.Nc.Add(r)
	}
}

func (v *VNode) clone() *VNode {
	c := &VNode{
		Self:  v.Self,
		Nu:    v.Nu.Clone(),
		Nr:    v.Nr.Clone(),
		Nc:    v.Nc.Clone(),
		RL:    v.RL,
		RR:    v.RR,
		HasRL: v.HasRL,
		HasRR: v.HasRR,
	}
	return c
}

func (v *VNode) equal(o *VNode) bool {
	return v.Self == o.Self &&
		v.HasRL == o.HasRL && v.HasRR == o.HasRR &&
		(!v.HasRL || v.RL == o.RL) &&
		(!v.HasRR || v.RR == o.RR) &&
		v.Nu.Equal(o.Nu) && v.Nr.Equal(o.Nr) && v.Nc.Equal(o.Nc)
}

// RealNode is a peer: its immutable identifier and the virtual nodes
// it currently simulates. vnodes is indexed by level; entries can be
// nil holes between seeding and the peer's first rule execution (rule
// 1 makes levels 0..m contiguous), but level 0 and the last entry are
// always present, so MaxLevel is len(vnodes)-1.
type RealNode struct {
	id     ident.ID
	vnodes []*VNode

	// idx/gen are the peer's slot in the network's interner: together
	// they form its handle, the compact incarnation-safe reference the
	// execution layer addresses it by (see intern.go).
	idx, gen uint32

	// in holds the peer's standing inbox as per-sender buckets, sorted
	// by the sender's handle: the bucket for sender s references s's
	// contribution (one span of s's immutable flow template, see
	// flow.go) as emitted at its most recently executed round. In the
	// synchronous model a peer at a local fixed point regenerates the
	// same output every round, so the bucket doubles as that repeating
	// flow: the scheduler replaces a bucket only when the sender's
	// output actually changes, and a skipped (clean) peer's pending
	// inbox is exactly the union of its buckets — identical to what a
	// full sweep would have delivered. Handle keys make a bucket from a
	// departed incarnation impossible to confuse with its slot's next
	// tenant.
	in []bucket
	// inbox holds one-shot messages outside the standing flow: leave
	// goodbyes and the final output of a departed peer. They are
	// consumed on delivery; buckets are not.
	inbox []Message
	// lastFlow records the messages generated in the peer's most recent
	// executed round as an immutable template (grouped by recipient),
	// for the local stability check and the scheduler's output diff;
	// recipients' buckets alias its spans. Derived state, not part of
	// global-state equality.
	lastFlow *flowTemplate

	// dirty marks the peer as a member of the round frontier: its
	// inputs may have changed since it last ran, so the next Step must
	// run its rules. Managed by Network.markDirty and Step.
	dirty bool

	// epoch is the peer's change epoch: a network-wide monotone stamp
	// taken whenever the peer's own protocol state (its virtual nodes
	// with their edge sets and rl/rr) may have changed. Consumers such
	// as routing.Cache compare epochs for equality to decide whether
	// derived state (a routing table) is still fresh. Like lastOut and
	// scratch it is derived scheduler state, outside global-state
	// equality.
	epoch int

	// scratch holds buffers reused across this peer's rule executions;
	// never cloned, compared, or shared between peers.
	scratch ruleScratch
}

// ruleScratch is per-peer reusable working memory for runRules, so
// steady-state rounds allocate (almost) nothing on the hot path.
type ruleScratch struct {
	out    []Message
	known  ref.Set
	reals  ref.Set
	cand   ref.Set
	sibSet ref.Set
	sibs   []ref.Ref
	levels []int
	snap   []ref.Ref
	lefts  []ref.Ref
	rights []ref.Ref
	realID []ident.ID
	ksSibs []ref.Ref // knownSetInto's private sibling buffer
	ksTmp  ref.Set   // knownSetInto's merge ping-pong buffer
}

// ID returns the peer's identifier.
func (n *RealNode) ID() ident.ID { return n.id }

// h returns the peer's handle: its interner slot plus the generation
// of its current incarnation.
func (n *RealNode) h() handle { return mkHandle(n.idx, n.gen) }

// Levels returns the levels of the currently simulated virtual nodes
// in increasing order (0 is always present).
func (n *RealNode) Levels() []int {
	return n.levelsInto(make([]int, 0, len(n.vnodes)))
}

// levelsInto is Levels reusing the given buffer.
func (n *RealNode) levelsInto(buf []int) []int {
	buf = buf[:0]
	for l, v := range n.vnodes {
		if v != nil {
			buf = append(buf, l)
		}
	}
	return buf
}

// MaxLevel returns the current m: the highest simulated level. The
// last vnodes entry is non-nil by invariant.
func (n *RealNode) MaxLevel() int { return len(n.vnodes) - 1 }

// VNode returns the virtual node at the level, or nil.
func (n *RealNode) VNode(level int) *VNode {
	if level < 0 || level >= len(n.vnodes) {
		return nil
	}
	return n.vnodes[level]
}

// ensureLevel grows the vnode slice (with nil holes) so that `level`
// is indexable, returning the (possibly fresh) virtual node there.
func (n *RealNode) ensureLevel(level int) *VNode {
	for len(n.vnodes) <= level {
		n.vnodes = append(n.vnodes, nil)
	}
	v := n.vnodes[level]
	if v == nil {
		v = newVNode(n.id, level)
		n.vnodes[level] = v
	}
	return v
}

// siblings returns refs to all currently simulated virtual nodes
// (including level 0), sorted by identifier.
func (n *RealNode) siblings() []ref.Ref {
	return n.siblingsInto(nil)
}

// siblingsInto is siblings reusing the given buffer.
func (n *RealNode) siblingsInto(buf []ref.Ref) []ref.Ref {
	buf = buf[:0]
	for l, v := range n.vnodes {
		if v != nil {
			buf = append(buf, ref.Virtual(n.id, l))
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].Less(buf[j]) })
	return buf
}

// vnodesByLevel returns the virtual nodes ordered by level.
func (n *RealNode) vnodesByLevel() []*VNode {
	out := make([]*VNode, 0, len(n.vnodes))
	for _, v := range n.vnodes {
		if v != nil {
			out = append(out, v)
		}
	}
	return out
}

// knownSet computes N(u): the refs of all siblings plus the union of
// the unmarked neighborhoods of all virtual nodes (Section 2.2).
func (n *RealNode) knownSet() ref.Set {
	var known ref.Set
	n.knownSetInto(&known)
	return known
}

// knownSetInto fills s with N(u), reusing its storage. The union is
// built by linear merges of the (already sorted) per-level
// neighborhoods instead of element-wise sorted insertion: at large m
// this is the single hottest operation of a round.
func (n *RealNode) knownSetInto(s *ref.Set) {
	n.scratch.ksSibs = n.siblingsInto(n.scratch.ksSibs)
	s.MergeSorted(n.scratch.ksSibs, nil)
	cur, other := s, &n.scratch.ksTmp
	for _, v := range n.vnodes {
		if v == nil || v.Nu.Empty() {
			continue
		}
		other.MergeSorted(cur.Slice(), v.Nu.Slice())
		cur, other = other, cur
	}
	if cur != s {
		s.CopyFrom(*cur)
	}
}

// knownReals lists the identifiers of all real nodes this peer has an
// outgoing edge to (any marking), used to compute m.
func (n *RealNode) knownReals() []ident.ID {
	seen := map[ident.ID]bool{}
	add := func(s ref.Set) {
		for _, r := range s.Slice() {
			if r.IsReal() && r.Owner != n.id {
				seen[r.Owner] = true
			}
		}
	}
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		add(v.Nu)
		add(v.Nr)
		add(v.Nc)
	}
	out := make([]ident.ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}

// knownRealsInto collects the same identifiers into buf without
// deduplicating (ident.LevelFor takes a minimum, so duplicates are
// harmless) to keep rule 1 allocation-free.
func (n *RealNode) knownRealsInto(buf []ident.ID) []ident.ID {
	buf = buf[:0]
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		for _, s := range []*ref.Set{&v.Nu, &v.Nr, &v.Nc} {
			for _, r := range s.Slice() {
				if r.IsReal() && r.Owner != n.id {
					buf = append(buf, r.Owner)
				}
			}
		}
	}
	return buf
}

// inboxMessages flattens the peer's pending inbox: the one-shot
// messages plus the standing per-sender buckets. The order is
// unspecified; delivery is a commutative set-union, and consumers that
// need a canonical order sort the result.
func (n *RealNode) inboxMessages() []Message {
	if len(n.in) == 0 {
		return n.inbox
	}
	out := make([]Message, 0, n.pendingInbox())
	out = append(out, n.inbox...)
	for _, b := range n.in {
		out = b.flow.appendSpan(out, b.span)
	}
	return out
}

// pendingInbox reports how many messages are pending for the peer.
func (n *RealNode) pendingInbox() int {
	c := len(n.inbox)
	for _, b := range n.in {
		c += b.flow.spanLen(b.span)
	}
	return c
}

func (n *RealNode) clone() *RealNode {
	c := &RealNode{id: n.id, idx: n.idx, gen: n.gen, vnodes: make([]*VNode, len(n.vnodes))}
	for l, v := range n.vnodes {
		if v != nil {
			c.vnodes[l] = v.clone()
		}
	}
	if len(n.in) > 0 {
		// Buckets are rematerialized as private single-span templates so
		// the clone neither pins the engine's shared templates alive nor
		// appears in its flow accounting.
		c.in = make([]bucket, 0, len(n.in))
		for _, b := range n.in {
			c.in = append(c.in, bucket{sender: b.sender, span: 0, flow: b.flow.cloneSpan(b.span)})
		}
	}
	c.inbox = append([]Message(nil), n.inbox...)
	// lastFlow is derived scheduler state with no consumer on clones;
	// it stays nil.
	return c
}

// cloneVNodes copies only the peer's own protocol state (virtual nodes
// with their edge sets and rl/rr), for the scheduler's settle check.
// The copy recycles buf's VNode objects and their set storage (the
// barrier keeps one buffer per active index, so steady batches stop
// allocating for the pre-round copies entirely).
func (n *RealNode) cloneVNodes(buf []*VNode) []*VNode {
	spare := buf[:cap(buf)] // retired clones beyond len(buf) are reusable
	c := buf[:0]
	for l, v := range n.vnodes {
		if v == nil {
			c = append(c, nil)
			continue
		}
		var dst *VNode
		if l < len(spare) {
			dst = spare[l]
		}
		if dst == nil {
			dst = &VNode{}
		}
		dst.Self = v.Self
		dst.Nu.CopyFrom(v.Nu)
		dst.Nr.CopyFrom(v.Nr)
		dst.Nc.CopyFrom(v.Nc)
		dst.RL, dst.RR = v.RL, v.RR
		dst.HasRL, dst.HasRR = v.HasRL, v.HasRR
		c = append(c, dst)
	}
	return c
}

// vnodesEqual compares the peer's own protocol state against a
// cloneVNodes copy.
func (n *RealNode) vnodesEqual(o []*VNode) bool {
	if len(n.vnodes) != len(o) {
		return false
	}
	for l, v := range n.vnodes {
		ov := o[l]
		if (v == nil) != (ov == nil) {
			return false
		}
		if v != nil && !v.equal(ov) {
			return false
		}
	}
	return true
}

func (n *RealNode) equal(o *RealNode) bool {
	if n.id != o.id || !n.vnodesEqual(o.vnodes) {
		return false
	}
	// The global state of the synchronous model includes the messages
	// in flight: two states with equal edge sets but different pending
	// deliveries evolve differently.
	if n.pendingInbox() != o.pendingInbox() {
		return false
	}
	a := sortedMessages(n.inboxMessages())
	b := sortedMessages(o.inboxMessages())
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedMessages returns a canonically ordered copy, so inbox
// comparison is order-insensitive (delivery is set-union, hence
// commutative).
func sortedMessages(ms []Message) []Message {
	out := append([]Message(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.To != b.To {
			return a.To.Less(b.To)
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Add.Less(b.Add)
	})
	return out
}

// sameMessages reports whether two message slices are element-wise
// identical. The rules are deterministic, so an unchanged peer output
// repeats in the same order; a false negative only costs a spurious
// re-run, never correctness.
func sameMessages(a, b []Message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Message is a delayed assignment (the paper's "A <= B"): an edge
// insertion that becomes visible at the target at the start of the
// next round.
type Message struct {
	To   ref.Ref    // destination node (may be virtual)
	Kind graph.Kind // which edge set of the destination to extend
	Add  ref.Ref    // the node to insert
}

// String renders the message for traces.
func (m Message) String() string {
	return fmt.Sprintf("%s: add %s to %s", m.To, m.Add, m.Kind)
}
