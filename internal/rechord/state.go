// Package rechord implements the Re-Chord self-stabilizing overlay
// network of Kniesburges, Koutsopoulos and Scheideler (SPAA 2011).
//
// Every peer (real node) simulates a set of virtual nodes u_i at
// identifiers u + 1/2^i (mod 1); the protocol maintains, per virtual
// node, three outgoing edge sets — unmarked (N_u), ring (N_r) and
// connection (N_c) — and repairs them with six purely local rules per
// synchronous round:
//
//  1. Virtual Nodes: create u_1..u_m, delete levels beyond m.
//  2. Overlapping Neighborhood: hand edges to the sibling closest to
//     the target.
//  3. Closest Real Neighbor: find and propagate rl/rr, the closest
//     real nodes to the left and right.
//  4. Linearization: sort the unmarked neighborhood, forward far edges
//     toward their endpoints, mirror the closest ones.
//  5. Ring Edge: let the extreme nodes close the sorted list into a
//     ring via marked ring edges.
//  6. Connection Edges: keep contiguous virtual siblings connected
//     through the nodes between them.
//
// From any state in which the peers are weakly connected, the network
// converges to the unique stable Re-Chord topology, which contains
// Chord as a subgraph (Fact 2.1).
package rechord

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// VNode is the state of one virtual node (level 0 is the real node
// itself): its three outgoing edge sets and its current belief about
// its closest real neighbors.
type VNode struct {
	Self ref.Ref
	Nu   ref.Set // unmarked edges E_u
	Nr   ref.Set // ring edges E_r
	Nc   ref.Set // connection edges E_c

	// RL/RR are the node's variables rl(u_i) and rr(u_i): the closest
	// real node to the left resp. right, recomputed by rule 3 every
	// round. HasRL/HasRR report whether they are set.
	RL, RR       ref.Ref
	HasRL, HasRR bool
}

func newVNode(owner ident.ID, level int) *VNode {
	return &VNode{Self: ref.Virtual(owner, level)}
}

// addNu inserts r into N_u, refusing self-loops.
func (v *VNode) addNu(r ref.Ref) {
	if r != v.Self {
		v.Nu.Add(r)
	}
}

func (v *VNode) addNr(r ref.Ref) {
	if r != v.Self {
		v.Nr.Add(r)
	}
}

func (v *VNode) addNc(r ref.Ref) {
	if r != v.Self {
		v.Nc.Add(r)
	}
}

func (v *VNode) clone() *VNode {
	c := *v
	c.Nu = v.Nu.Clone()
	c.Nr = v.Nr.Clone()
	c.Nc = v.Nc.Clone()
	return &c
}

func (v *VNode) equal(o *VNode) bool {
	return v.Self == o.Self &&
		v.HasRL == o.HasRL && v.HasRR == o.HasRR &&
		(!v.HasRL || v.RL == o.RL) &&
		(!v.HasRR || v.RR == o.RR) &&
		v.Nu.Equal(o.Nu) && v.Nr.Equal(o.Nr) && v.Nc.Equal(o.Nc)
}

// RealNode is a peer: its immutable identifier and the virtual nodes
// it currently simulates (levels 0..m, always contiguous after rule 1).
type RealNode struct {
	id     ident.ID
	vnodes map[int]*VNode
	inbox  []Message
	// lastOut records the messages generated in the peer's previous
	// round, for the local stability check; it is derived state and
	// not part of global-state equality.
	lastOut []Message
}

// ID returns the peer's identifier.
func (n *RealNode) ID() ident.ID { return n.id }

// Levels returns the levels of the currently simulated virtual nodes
// in increasing order (0 is always present).
func (n *RealNode) Levels() []int {
	ls := make([]int, 0, len(n.vnodes))
	for l := range n.vnodes {
		ls = append(ls, l)
	}
	sort.Ints(ls)
	return ls
}

// MaxLevel returns the current m: the highest simulated level.
func (n *RealNode) MaxLevel() int {
	m := 0
	for l := range n.vnodes {
		if l > m {
			m = l
		}
	}
	return m
}

// VNode returns the virtual node at the level, or nil.
func (n *RealNode) VNode(level int) *VNode { return n.vnodes[level] }

// siblings returns refs to all currently simulated virtual nodes
// (including level 0), sorted by identifier.
func (n *RealNode) siblings() []ref.Ref {
	out := make([]ref.Ref, 0, len(n.vnodes))
	for l := range n.vnodes {
		out = append(out, ref.Virtual(n.id, l))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// vnodesByLevel returns the virtual nodes ordered by level.
func (n *RealNode) vnodesByLevel() []*VNode {
	out := make([]*VNode, 0, len(n.vnodes))
	for _, l := range n.Levels() {
		out = append(out, n.vnodes[l])
	}
	return out
}

// knownSet computes N(u): the refs of all siblings plus the union of
// the unmarked neighborhoods of all virtual nodes (Section 2.2).
func (n *RealNode) knownSet() ref.Set {
	var known ref.Set
	for l := range n.vnodes {
		known.Add(ref.Virtual(n.id, l))
	}
	for _, v := range n.vnodes {
		known.AddAll(v.Nu)
	}
	return known
}

// knownReals lists the identifiers of all real nodes this peer has an
// outgoing edge to (any marking), used to compute m.
func (n *RealNode) knownReals() []ident.ID {
	seen := map[ident.ID]bool{}
	add := func(s ref.Set) {
		for _, r := range s.Slice() {
			if r.IsReal() && r.Owner != n.id {
				seen[r.Owner] = true
			}
		}
	}
	for _, v := range n.vnodes {
		add(v.Nu)
		add(v.Nr)
		add(v.Nc)
	}
	out := make([]ident.ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}

func (n *RealNode) clone() *RealNode {
	c := &RealNode{id: n.id, vnodes: make(map[int]*VNode, len(n.vnodes))}
	for l, v := range n.vnodes {
		c.vnodes[l] = v.clone()
	}
	c.inbox = append([]Message(nil), n.inbox...)
	c.lastOut = append([]Message(nil), n.lastOut...)
	return c
}

func (n *RealNode) equal(o *RealNode) bool {
	if n.id != o.id || len(n.vnodes) != len(o.vnodes) {
		return false
	}
	for l, v := range n.vnodes {
		ov, ok := o.vnodes[l]
		if !ok || !v.equal(ov) {
			return false
		}
	}
	// The global state of the synchronous model includes the messages
	// in flight: two states with equal edge sets but different pending
	// deliveries evolve differently.
	if len(n.inbox) != len(o.inbox) {
		return false
	}
	a := sortedMessages(n.inbox)
	b := sortedMessages(o.inbox)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedMessages returns a canonically ordered copy, so inbox
// comparison is order-insensitive (delivery is set-union, hence
// commutative).
func sortedMessages(ms []Message) []Message {
	out := append([]Message(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.To != b.To {
			return a.To.Less(b.To)
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Add.Less(b.Add)
	})
	return out
}

// Message is a delayed assignment (the paper's "A <= B"): an edge
// insertion that becomes visible at the target at the start of the
// next round.
type Message struct {
	To   ref.Ref    // destination node (may be virtual)
	Kind graph.Kind // which edge set of the destination to extend
	Add  ref.Ref    // the node to insert
}

// String renders the message for traces.
func (m Message) String() string {
	return fmt.Sprintf("%s: add %s to %s", m.To, m.Add, m.Kind)
}
