package rechord_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// TestAsyncConvergesFromRandomStates: under random activation and
// message delays, the network still reaches the legal topology from
// weakly connected initial states.
func TestAsyncConvergesFromRandomStates(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  rechord.AsyncConfig
	}{
		{"half-activation", rechord.AsyncConfig{ActivationProb: 0.5, MaxDelay: 1}},
		{"delayed-messages", rechord.AsyncConfig{ActivationProb: 1.0, MaxDelay: 4}},
		{"slow-and-delayed", rechord.AsyncConfig{ActivationProb: 0.3, MaxDelay: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(91))
			ids := topogen.RandomIDs(16, rng)
			nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 1})
			runner := rechord.NewAsyncRunner(nw, tc.cfg, rng)
			idl := rechord.ComputeIdeal(ids)
			steps, ok := runner.RunUntilLegal(idl, 20*sim.DefaultMaxRounds(len(ids)), 4)
			if !ok {
				t.Fatalf("async run did not reach the legal state in %d steps", steps)
			}
			t.Logf("legal state after %d async steps (%d pending msgs)", steps, runner.PendingMessages())
		})
	}
}

// TestAsyncDegeneratesToSynchronous: activation 1.0 with delay 1
// follows the synchronous schedule, so it must converge in a
// comparable number of steps.
func TestAsyncDegeneratesToSynchronous(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	ids := topogen.RandomIDs(12, rng)

	syncNW := topogen.Line().Build(ids, rand.New(rand.NewSource(93)), rechord.Config{Workers: 1})
	res, err := sim.RunToStable(context.Background(), syncNW, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	asyncNW := topogen.Line().Build(ids, rand.New(rand.NewSource(93)), rechord.Config{Workers: 1})
	runner := rechord.NewAsyncRunner(asyncNW, rechord.AsyncConfig{ActivationProb: 1.0, MaxDelay: 1}, rng)
	steps, ok := runner.RunUntilLegal(rechord.ComputeIdeal(ids), 10*sim.DefaultMaxRounds(len(ids)), 1)
	if !ok {
		t.Fatal("degenerate async did not converge")
	}
	if steps > 4*res.Rounds+16 {
		t.Errorf("degenerate async took %d steps vs %d synchronous rounds", steps, res.Rounds)
	}
}

// TestAsyncChurn: a join and a failure under asynchronous execution
// still land in the legal state for the surviving peers.
func TestAsyncChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	ids := topogen.RandomIDs(10, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{Workers: 1})
	runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.6, MaxDelay: 2}, rng)
	if _, ok := runner.RunUntilLegal(rechord.ComputeIdeal(ids), 4000, 4); !ok {
		t.Fatal("async settling failed")
	}
	joiner := topogen.RandomIDs(1, rng)[0]
	if err := nw.Join(joiner, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := nw.Fail(ids[3]); err != nil {
		t.Fatal(err)
	}
	if steps, ok := runner.RunUntilLegal(rechord.ComputeIdeal(nw.Peers()), 8000, 4); !ok {
		t.Fatalf("async churn did not restabilize in %d steps", steps)
	}
}

// TestAsyncLockstepMatchesSyncUnderChurn is the degenerate-equivalence
// property in its strongest form: with ActivationProb 1 and every
// delay 1, the event-driven scheduler must reproduce the synchronous
// engine's global state — edge sets, rl/rr, and every pending message
// — after every single step, including steps at which peers join,
// leave gracefully, or crash.
func TestAsyncLockstepMatchesSyncUnderChurn(t *testing.T) {
	for _, gen := range []topogen.Generator{topogen.Random(), topogen.Garbage(), topogen.PreStabilized()} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed ^ 0xA51C))
			n := 4 + int(seed)%9
			build := func() *rechord.Network {
				r := rand.New(rand.NewSource(seed))
				ids := topogen.RandomIDs(n, r)
				return gen.Build(ids, r, rechord.Config{Workers: 1})
			}
			syncNW := build()
			runner := rechord.NewAsyncRunner(build(),
				rechord.AsyncConfig{ActivationProb: 1, MaxDelay: 1}, rand.New(rand.NewSource(7)))
			asyncNW := runner.Network()

			churnAt := map[int]int{9: 0, 21: 1, 33: 2} // step -> event kind
			fresh := ident.ID(rng.Uint64() | 1)
			victim := rng.Intn(64)
			apply := func(nw *rechord.Network, kind int) error {
				peers := nw.Peers()
				switch {
				case kind == 0 || len(peers) < 3:
					return nw.Join(fresh, peers[victim%len(peers)])
				case kind == 1:
					return nw.Leave(peers[victim%len(peers)])
				default:
					return nw.Fail(peers[victim%len(peers)])
				}
			}
			for s := 0; s < 60; s++ {
				if kind, ok := churnAt[s]; ok {
					if err := apply(syncNW, kind); err != nil {
						t.Fatalf("gen=%s seed=%d: sync churn: %v", gen.Name, seed, err)
					}
					if err := apply(asyncNW, kind); err != nil {
						t.Fatalf("gen=%s seed=%d: async churn: %v", gen.Name, seed, err)
					}
				}
				syncNW.Step()
				runner.Step()
				if !syncNW.TakeSnapshot().Equal(asyncNW.TakeSnapshot()) {
					t.Fatalf("gen=%s seed=%d n=%d: global state diverged at step %d",
						gen.Name, seed, n, s+1)
				}
			}
			if !syncNW.Graph().Equal(asyncNW.Graph()) {
				t.Fatalf("gen=%s seed=%d: Graph() diverged", gen.Name, seed)
			}
		}
	}
}

// TestAsyncDeterminism: the same seed and configuration produce the
// same event order (fingerprinted), the same step counts, and the same
// final state — including under churn and delayed messages. A
// different seed produces a different schedule.
func TestAsyncDeterminism(t *testing.T) {
	run := func(seed int64) (*rechord.AsyncRunner, uint64) {
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(14, rng)
		nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 2})
		runner := rechord.NewAsyncRunner(nw,
			rechord.AsyncConfig{ActivationProb: 0.4, MaxDelay: 3}, rand.New(rand.NewSource(seed+1)))
		for s := 0; s < 160; s++ {
			if s == 30 {
				if err := nw.Join(ident.ID(0x7777777777777777), ids[0]); err != nil {
					t.Fatal(err)
				}
			}
			if s == 70 {
				if err := nw.Fail(ids[5]); err != nil {
					t.Fatal(err)
				}
			}
			runner.Step()
		}
		return runner, runner.EventFingerprint()
	}
	a1, fp1 := run(41)
	a2, fp2 := run(41)
	if fp1 != fp2 {
		t.Fatalf("same seed, different event order: %016x vs %016x", fp1, fp2)
	}
	if a1.Steps() != a2.Steps() || a1.InFlight() != a2.InFlight() {
		t.Fatalf("same seed, different telemetry: steps %d/%d inflight %d/%d",
			a1.Steps(), a2.Steps(), a1.InFlight(), a2.InFlight())
	}
	if !a1.Network().TakeSnapshot().Equal(a2.Network().TakeSnapshot()) {
		t.Fatal("same seed, different final state")
	}
	if _, fp3 := run(42); fp3 == fp1 {
		t.Fatal("different seeds produced the identical event order")
	}
}

// TestAsyncDelayModels: convergence to the ideal topology holds under
// every delay model, including heavy tails and per-link latency maps.
func TestAsyncDelayModels(t *testing.T) {
	for _, tc := range []struct {
		name  string
		delay rechord.DelayModel
	}{
		{"geometric", rechord.GeometricDelay{P: 0.5, Max: 12}},
		{"pareto-heavy-tail", rechord.ParetoDelay{Alpha: 1.5, Max: 24}},
		{"per-link", rechord.LinkDelay{Fn: func(from, to ident.ID) int {
			return 1 + int((uint64(from)^uint64(to))%5)
		}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(611))
			ids := topogen.RandomIDs(16, rng)
			nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 1})
			runner := rechord.NewAsyncRunner(nw,
				rechord.AsyncConfig{ActivationProb: 0.5, Delay: tc.delay}, rng)
			res, err := sim.RunToStable(context.Background(), runner, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
				t.Fatalf("converged to wrong state: %v", err)
			}
			t.Logf("stable after %d async steps", res.Rounds)
		})
	}
}

// TestAsyncEpochsTrackStateChanges: the asynchronous scheduler stamps
// peer change epochs only when a peer's state actually changes —
// activations that are no-ops must not bump the clock, so epoch-keyed
// routing caches stay warm under async exactly as they do under the
// round engine (the original implementation stamped every activated
// peer every step, keeping caches permanently cold).
func TestAsyncEpochsTrackStateChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ids := topogen.RandomIDs(12, rng)
	nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 1})
	runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.6, MaxDelay: 3}, rng)
	if _, err := sim.RunToStable(context.Background(), runner, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if nw.EpochClock() == 0 {
		t.Fatal("convergence bumped no epochs")
	}
	clock := nw.EpochClock()
	round := nw.Round()
	for s := 0; s < 200; s++ {
		runner.Step()
	}
	if got := nw.EpochClock(); got != clock {
		t.Errorf("steady-state async steps bumped the epoch clock: %d -> %d (caches would run cold)", clock, got)
	}
	if got := nw.Round(); got != round {
		t.Errorf("async steps advanced the synchronous round counter: %d -> %d", round, got)
	}
	if runner.Steps() < 200 {
		t.Errorf("Steps = %d, want the async steps counted separately", runner.Steps())
	}
}

func TestAsyncConfigDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	nw := rechord.NewNetwork(rechord.Config{})
	nw.AddPeer(1)
	runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: -1, MaxDelay: 0}, rng)
	// Defaults applied; stepping must not panic and must count.
	runner.Step()
	if runner.Steps() != 1 {
		t.Errorf("Steps = %d, want 1", runner.Steps())
	}
	if runner.PendingMessages() < 0 {
		t.Error("PendingMessages negative")
	}
	_ = runner.PendingByKind()
	if runner.Network() != nw {
		t.Error("Network accessor broken")
	}
}
