package rechord_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// TestAsyncConvergesFromRandomStates: under random activation and
// message delays, the network still reaches the legal topology from
// weakly connected initial states.
func TestAsyncConvergesFromRandomStates(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  rechord.AsyncConfig
	}{
		{"half-activation", rechord.AsyncConfig{ActivationProb: 0.5, MaxDelay: 1}},
		{"delayed-messages", rechord.AsyncConfig{ActivationProb: 1.0, MaxDelay: 4}},
		{"slow-and-delayed", rechord.AsyncConfig{ActivationProb: 0.3, MaxDelay: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(91))
			ids := topogen.RandomIDs(16, rng)
			nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 1})
			runner := rechord.NewAsyncRunner(nw, tc.cfg, rng)
			idl := rechord.ComputeIdeal(ids)
			steps, ok := runner.RunUntilLegal(idl, 20*sim.DefaultMaxRounds(len(ids)), 4)
			if !ok {
				t.Fatalf("async run did not reach the legal state in %d steps", steps)
			}
			t.Logf("legal state after %d async steps (%d pending msgs)", steps, runner.PendingMessages())
		})
	}
}

// TestAsyncDegeneratesToSynchronous: activation 1.0 with delay 1
// follows the synchronous schedule, so it must converge in a
// comparable number of steps.
func TestAsyncDegeneratesToSynchronous(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	ids := topogen.RandomIDs(12, rng)

	syncNW := topogen.Line().Build(ids, rand.New(rand.NewSource(93)), rechord.Config{Workers: 1})
	res, err := sim.RunToStable(context.Background(), syncNW, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	asyncNW := topogen.Line().Build(ids, rand.New(rand.NewSource(93)), rechord.Config{Workers: 1})
	runner := rechord.NewAsyncRunner(asyncNW, rechord.AsyncConfig{ActivationProb: 1.0, MaxDelay: 1}, rng)
	steps, ok := runner.RunUntilLegal(rechord.ComputeIdeal(ids), 10*sim.DefaultMaxRounds(len(ids)), 1)
	if !ok {
		t.Fatal("degenerate async did not converge")
	}
	if steps > 4*res.Rounds+16 {
		t.Errorf("degenerate async took %d steps vs %d synchronous rounds", steps, res.Rounds)
	}
}

// TestAsyncChurn: a join and a failure under asynchronous execution
// still land in the legal state for the surviving peers.
func TestAsyncChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	ids := topogen.RandomIDs(10, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{Workers: 1})
	runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.6, MaxDelay: 2}, rng)
	if _, ok := runner.RunUntilLegal(rechord.ComputeIdeal(ids), 4000, 4); !ok {
		t.Fatal("async settling failed")
	}
	joiner := topogen.RandomIDs(1, rng)[0]
	if err := nw.Join(joiner, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := nw.Fail(ids[3]); err != nil {
		t.Fatal(err)
	}
	if steps, ok := runner.RunUntilLegal(rechord.ComputeIdeal(nw.Peers()), 8000, 4); !ok {
		t.Fatalf("async churn did not restabilize in %d steps", steps)
	}
}

func TestAsyncConfigDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	nw := rechord.NewNetwork(rechord.Config{})
	nw.AddPeer(1)
	runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: -1, MaxDelay: 0}, rng)
	// Defaults applied; stepping must not panic and must count.
	runner.Step()
	if runner.Steps() != 1 {
		t.Errorf("Steps = %d, want 1", runner.Steps())
	}
	if runner.PendingMessages() < 0 {
		t.Error("PendingMessages negative")
	}
	_ = runner.PendingByKind()
	if runner.Network() != nw {
		t.Error("Network accessor broken")
	}
}
