package rechord

import "repro/internal/ident"

// The paper's central structural insight is that Re-Chord, unlike
// Chord, is locally checkable: "the self-stabilization mechanism is
// purely local in that a node only has to inspect its local state"
// (Section 1.3). This file makes that concrete: LocallyStable asks a
// single peer whether replaying its own round — delivering its pending
// messages and running rules 1-6 on a copy — reproduces its current
// state and last output. The conjunction of this purely per-peer
// predicate over all peers is exactly global stability (proved as a
// test invariant in localcheck_test.go): if every peer's state and
// outgoing messages repeat, every inbox repeats, so the global state
// repeats; and since the rules are deterministic, a global fixed point
// makes every local replay a no-op.
//
// The incremental scheduler in network.go is this predicate turned
// into an execution strategy: a peer is skipped exactly while the
// replay is known to be a no-op because none of its inputs changed.

// LocallyStable reports whether the peer is at a local fixed point:
// delivering its pending messages and executing the rules would leave
// its own state unchanged and regenerate exactly the messages it sent
// in the previous round. It inspects only the peer's own state (plus
// the published rl/rr view that rule 3's guards read in the
// state-reading model). Peers unknown to the network report false.
func (nw *Network) LocallyStable(id ident.ID) bool {
	n := nw.pt.node(id)
	if n == nil {
		return false
	}
	clone := n.clone()
	nw.deliver(clone)
	nw.purge(clone)
	res := nw.runRules(clone, nil)

	// The replayed state must match the current one: after a no-op
	// round the peer's sets must look exactly as they do now. The
	// pending inbox is input, not part of the compared state (the
	// standing buckets regenerate from the neighbors' repeated
	// outputs).
	if !n.vnodesEqual(clone.vnodes) {
		return false
	}
	// The regenerated output must match what the peer actually sent
	// last round; otherwise neighbors would observe different inboxes
	// next round.
	var last []Message
	if n.lastFlow != nil {
		last = n.lastFlow.appendAll(nil)
	}
	if len(res.out) != len(last) {
		return false
	}
	a := sortedMessages(res.out)
	b := sortedMessages(last)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CountLocallyStable returns how many peers currently pass the local
// stability check; the network is globally stable iff the count equals
// NumPeers (after at least one executed round).
func (nw *Network) CountLocallyStable() int {
	c := 0
	for _, id := range nw.order {
		if nw.LocallyStable(id) {
			c++
		}
	}
	return c
}
