package rechord

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/ident"
)

// TestSeed4096FlowWave is a skipped-by-default diagnostic that
// characterizes the ROADMAP-noted quirk: the ideal-seeded id set drawn
// from seed 4096 (idealSeededNet's rng.Uint64 stream, NOT
// topogen.RandomIDs — the two differ, which is why the topogen suites
// never see this) takes ~2000 rounds to quiesce even though it is
// seeded with the exact ideal topology. The note called it a
// "persistent 2-peer oscillation"; instrumenting it shows something
// more interesting, and less alarming:
//
//   - The *views* are at the rules' fixed point from round 1. The
//     global state fingerprint — which hashes every virtual node's
//     edge sets — never changes across the entire run. No topology
//     oscillation exists, so nothing contradicts the paper's
//     uniqueness proof.
//   - What takes 2078 rounds to settle is the *message* layer: a
//     flow-level wave. Ideal seeding installs edges, not standing
//     flows, so each peer's first activation builds its standing
//     output from scratch; for this id set the resulting deliveries
//     keep re-waking exactly one next peer, whose regenerated flow
//     differs from its previous one, waking the next — a disturbance
//     of frontier width ~2 (one peer rewriting its flow, one
//     re-settling) that travels peer-to-peer down the identifier
//     space for two thousand rounds before dying out.
//
// The wave is deterministic and engine-independent: the serial,
// sharded, and deep-copy-flow engines all quiesce at exactly the same
// round (the lockstep suites pin this), and the round count is
// identical before and after the shared-flow storage (DESIGN §2).
// Only the round-capped harnesses ever mistook it for a persistent
// oscillation — and the benchmarks that use ideal seeding measure
// fixed round windows rather than run-to-quiescence so that this tail
// stays out of their variance either way.
//
// Run with RECHORD_OSCILLATION_DIAG=1 (and a -timeout generous enough
// for ~2100 n=4096 rounds, ~5 minutes) to reproduce and measure it.
func TestSeed4096FlowWave(t *testing.T) {
	if os.Getenv("RECHORD_OSCILLATION_DIAG") == "" {
		t.Skip("diagnostic for the seed-4096 flow-settling wave; set RECHORD_OSCILLATION_DIAG=1 to run")
	}
	nw, _ := idealSeededNet(Config{Workers: 4}, 4096)

	nw.Step()
	fixed := nw.StateFingerprint(nil)

	const maxRounds = 20000
	visited := map[ident.ID]bool{}
	maxWidth, widthGT2Until := 0, 0
	var lastActive []ident.ID
	r := 1
	for ; r < maxRounds && !nw.Quiescent(); r++ {
		width := 0
		lastActive = lastActive[:0]
		for _, slot := range nw.frontier {
			if n := nw.pt.nodes[slot]; n != nil && n.dirty {
				width++
				visited[n.id] = true
				lastActive = append(lastActive, n.id)
			}
		}
		if width > maxWidth {
			maxWidth = width
		}
		if width > 2 {
			widthGT2Until = r
		}
		nw.Step()
		if fp := nw.StateFingerprint(nil); fp != fixed {
			t.Fatalf("view fingerprint moved at round %d: %x vs %x — the views are supposed to be at the fixed point throughout", r+1, fp, fixed)
		}
	}
	t.Logf("quiescent after %d rounds; wave visited %d distinct peers, max frontier width %d, width>2 last seen at round %d",
		r, len(visited), maxWidth, widthGT2Until)

	if !nw.Quiescent() {
		t.Fatalf("not quiescent after %d rounds — the wave is no longer a transient; re-characterize (last active: %v)", maxRounds, lastActive)
	}
	// The settling tail is a *traveling* disturbance, not a stationary
	// pair: it marches through a large fraction of the id space …
	if len(visited) < 50 {
		t.Errorf("wave visited only %d peers — expected a traveling disturbance, not a localized one", len(visited))
	}
	// … at the narrow steady width that made it look like a "2-peer
	// oscillation" in round-capped runs.
	if widthGT2Until > r/4 {
		t.Errorf("frontier width stayed >2 until round %d of %d — not the narrow wave this documents", widthGT2Until, r)
	}
	// The exact extinction round is deterministic; the lockstep suites
	// guarantee it is engine-independent. If a legitimate protocol
	// change moves it, update this constant and DESIGN §2.
	if r != 2078 {
		t.Errorf("wave died at round %d, previously 2078 — deterministic tail changed; update DESIGN §2 if intentional", r)
	}
	for _, id := range nw.Peers() {
		if !nw.LocallyStable(id) {
			t.Errorf("quiescent network: peer %v is not locally stable", id)
			break
		}
	}
}

// dumpPeer renders one peer's full protocol state: per-level virtual
// node edge sets and the standing output flow. Kept for offline use
// from this diagnostic.
func dumpPeer(nw *Network, id ident.ID) string {
	n := nw.pt.node(id)
	if n == nil {
		return fmt.Sprintf("peer %v: departed", id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "peer %v dirty=%v\n", id, n.dirty)
	for lvl, v := range n.vnodes {
		if v == nil {
			continue
		}
		fmt.Fprintf(&b, "  v%d: Nu=%v Nr=%v Nc=%v", lvl, v.Nu.Slice(), v.Nr.Slice(), v.Nc.Slice())
		if v.HasRL {
			fmt.Fprintf(&b, " rl=%v", v.RL)
		}
		if v.HasRR {
			fmt.Fprintf(&b, " rr=%v", v.RR)
		}
		b.WriteByte('\n')
	}
	if n.lastFlow != nil {
		fmt.Fprintf(&b, "  out (%d msgs):", len(n.lastFlow.packed))
		for _, m := range n.lastFlow.appendAll(nil) {
			fmt.Fprintf(&b, " {to %v kind %v add %v}", m.To, m.Kind, m.Add)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
