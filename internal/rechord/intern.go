package rechord

import (
	"fmt"

	"repro/internal/ident"
)

// This file is the peer interner: the registry that maps the protocol's
// public identifiers (ident.ID, carried inside every ref.Ref and
// message) onto dense uint32 peer indices, so that all hot per-peer
// state — the node table, the per-peer max level, the published rl/rr
// view, frontier membership, standing inbox buckets — lives in slices
// addressed by index instead of hash maps keyed by 8-byte IDs or
// 16-byte refs. One uint64-keyed map (idxOf) remains as the single
// point where an external reference is resolved to an index; everything
// past that resolution is slice indexing.
//
// Slots are recycled through a free-list. Each slot carries a
// generation counter, bumped when the slot is released: a handle
// (index, generation) taken for one incarnation of a peer can never
// accidentally resolve to a later tenant of the same slot, which is
// what keeps Leave/Fail + rejoin-under-the-same-identifier scenarios
// exactly as addressable as they were under the id-keyed maps. The
// protocol itself stays id-addressed (ref.Ref is public and stable);
// handles are an internal execution-layer currency.

// handle packs a peer slot index and its generation into one word: the
// compact, incarnation-safe reference the schedulers and the standing
// inbox buckets key on.
type handle uint64

func mkHandle(idx, gen uint32) handle { return handle(uint64(idx)<<32 | uint64(gen)) }

func (h handle) slot() uint32 { return uint32(h >> 32) }
func (h handle) gen() uint32  { return uint32(h) }

// interner is the registry. The zero value is ready to use.
type interner struct {
	// idxOf is the one remaining id-keyed map: identifier → live slot.
	idxOf map[ident.ID]uint32

	// Dense per-slot state. nodes[i] is nil while slot i is free;
	// ids[i]/gens[i] stay valid for the current tenant. maxLv[i] is the
	// peer's current maximum virtual level (-1 while free): the old
	// levelOf map, consulted on every reference resolution.
	nodes []*RealNode
	ids   []ident.ID
	gens  []uint32
	maxLv []int32

	free []uint32 // released slots, reused LIFO
	live int
}

// reserve pre-sizes the registry for n peers, so bulk builds do not
// rehash and re-grow the dense tables peer by peer.
func (pt *interner) reserve(n int) {
	if pt.idxOf == nil {
		pt.idxOf = make(map[ident.ID]uint32, n)
	}
	if cap(pt.nodes)-len(pt.nodes) < n {
		grow := func(k int) {
			pt.nodes = append(make([]*RealNode, 0, k), pt.nodes...)
			pt.ids = append(make([]ident.ID, 0, k), pt.ids...)
			pt.gens = append(make([]uint32, 0, k), pt.gens...)
			pt.maxLv = append(make([]int32, 0, k), pt.maxLv...)
		}
		grow(len(pt.nodes) + n)
	}
}

// intern assigns the peer a slot (recycling a released one when
// available) and registers it under its identifier. The caller must
// have checked the identifier is not already present.
func (pt *interner) intern(n *RealNode) uint32 {
	if pt.idxOf == nil {
		pt.idxOf = make(map[ident.ID]uint32)
	}
	var i uint32
	if k := len(pt.free); k > 0 {
		i = pt.free[k-1]
		pt.free = pt.free[:k-1]
		pt.nodes[i] = n
		pt.ids[i] = n.id
		pt.maxLv[i] = 0
	} else {
		i = uint32(len(pt.nodes))
		pt.nodes = append(pt.nodes, n)
		pt.ids = append(pt.ids, n.id)
		pt.gens = append(pt.gens, 0)
		pt.maxLv = append(pt.maxLv, 0)
	}
	n.idx = i
	n.gen = pt.gens[i]
	pt.idxOf[n.id] = i
	pt.live++
	return i
}

// release frees the peer's slot and bumps its generation, so every
// handle issued for this incarnation stops resolving immediately. The
// node object keeps its idx/gen fields: its own handle (now stale) is
// still needed by removePeer to find the buckets it installed.
func (pt *interner) release(n *RealNode) {
	i := n.idx
	if pt.nodes[i] != n {
		panic(fmt.Sprintf("rechord: releasing peer %s from slot %d it does not hold", n.id, i))
	}
	delete(pt.idxOf, n.id)
	pt.nodes[i] = nil
	pt.gens[i]++
	pt.maxLv[i] = -1
	pt.free = append(pt.free, i)
	pt.live--
}

// lookup resolves an identifier to its live slot.
func (pt *interner) lookup(id ident.ID) (uint32, bool) {
	i, ok := pt.idxOf[id]
	return i, ok
}

// node returns the live peer registered under the identifier, or nil.
func (pt *interner) node(id ident.ID) *RealNode {
	if i, ok := pt.idxOf[id]; ok {
		return pt.nodes[i]
	}
	return nil
}

// byHandle resolves a handle strictly: it returns the node only while
// the slot still holds the same incarnation the handle was taken for.
func (pt *interner) byHandle(h handle) *RealNode {
	i := h.slot()
	if uint64(i) < uint64(len(pt.nodes)) && pt.gens[i] == h.gen() {
		return pt.nodes[i]
	}
	return nil
}

// span is the current size of the slot space (live + free), the bound
// consumers sizing slot-indexed side tables need.
func (pt *interner) span() int { return len(pt.nodes) }
