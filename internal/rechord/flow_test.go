package rechord

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// White-box regressions for the shared flow-template storage: the
// ParanoidSettle write barrier, the refcount/tally bookkeeping, and the
// packed round-trip.

// stableFlowNet builds a small line network and runs it to quiescence.
func stableFlowNet(t *testing.T, n int, cfg Config) (*Network, []ident.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ids := make([]ident.ID, 0, n)
	seen := map[ident.ID]bool{}
	for len(ids) < n {
		id := ident.ID(rng.Uint64() | 1)
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	nw := NewNetwork(cfg)
	for _, id := range ids {
		nw.AddPeer(id)
	}
	for i := 1; i < n; i++ {
		nw.SeedEdge(ref.Real(ids[i-1]), ref.Real(ids[i]), graph.Unmarked)
	}
	for r := 0; r < 4000 && !nw.Quiescent(); r++ {
		nw.Step()
	}
	if !nw.Quiescent() {
		t.Fatal("network did not stabilize")
	}
	return nw, ids
}

// TestParanoidFlowWriteBarrier: mutating a shared template in place
// must panic at the next settle check of the owning peer. Templates are
// immutable by construction (buckets are replaced, never edited); the
// barrier turns any future violation of that invariant into a loud
// failure instead of silent cross-peer corruption.
func TestParanoidFlowWriteBarrier(t *testing.T) {
	nw, _ := stableFlowNet(t, 8, Config{Workers: 2, ParanoidSettle: true})
	var victim *RealNode
	for _, n := range nw.pt.nodes {
		if n != nil && n.lastFlow != nil && len(n.lastFlow.packed) > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Fatal("no peer with a standing flow at quiescence")
	}
	victim.lastFlow.packed[0].meta ^= 1 // the forbidden in-place write
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mutated template did not trip the write barrier")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "mutated in place") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	nw.Wake(victim.id)
	nw.Step()
}

// TestFlowTallyMatchesRecount: after stabilization and churn, the
// engine's incremental flow accounting must equal a from-scratch walk
// over every live template and bucket.
func TestFlowTallyMatchesRecount(t *testing.T) {
	for _, deep := range []bool{false, true} {
		nw, ids := stableFlowNet(t, 12, Config{Workers: 2, DeepCopyFlows: deep})
		if err := nw.Fail(ids[3]); err != nil {
			t.Fatal(err)
		}
		if err := nw.Leave(ids[7]); err != nil {
			t.Fatal(err)
		}
		if err := nw.Join(ident.ID(0x1234567), ids[0]); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4000 && !nw.Quiescent(); r++ {
			nw.Step()
		}

		live := map[*flowTemplate]bool{}
		shared, unique := 0, 0
		for _, n := range nw.pt.nodes {
			if n == nil {
				continue
			}
			if n.lastFlow != nil {
				live[n.lastFlow] = true
			}
			for _, b := range n.in {
				live[b.flow] = true
				if b.flow.private {
					unique += b.flow.spanLen(b.span) * msgBytes
				} else {
					shared += b.flow.spanLen(b.span) * msgBytes
				}
			}
		}
		resident := 0
		for tpl := range live {
			resident += tpl.footprint()
		}
		if got := nw.flow.births - nw.flow.deaths; got != len(live) {
			t.Errorf("deep=%v: live templates %d, tally %d", deep, len(live), got)
		}
		if nw.flow.residentBytes != resident {
			t.Errorf("deep=%v: resident bytes %d, tally %d", deep, resident, nw.flow.residentBytes)
		}
		if nw.flow.sharedBytes != shared || nw.flow.uniqueBytes != unique {
			t.Errorf("deep=%v: shared/unique bytes %d/%d, tally %d/%d",
				deep, shared, unique, nw.flow.sharedBytes, nw.flow.uniqueBytes)
		}
		if deep {
			if nw.flow.installsShared != 0 {
				t.Errorf("deep-copy mode recorded %d shared installs", nw.flow.installsShared)
			}
		} else if nw.flow.installsShared == 0 {
			t.Error("shared mode recorded no shared installs")
		}
		// The gauges mirror the tally after every batch and churn op.
		if got := nw.met.FlowTemplates.Value(); got != int64(len(live)) {
			t.Errorf("deep=%v: FlowTemplates gauge %d, live %d", deep, got, len(live))
		}
		if got := nw.met.FlowResidentBytes.Value(); got != int64(resident) {
			t.Errorf("deep=%v: FlowResidentBytes gauge %d, recount %d", deep, got, resident)
		}
	}
}

// TestPackedMessageRoundTrip: every standing message reconstitutes
// bit-identically from the packed form at quiescence (delivery reads go
// through msgAt, so the equivalence suite exercises this indirectly;
// this pins it directly against the sender's regenerated output).
func TestPackedMessageRoundTrip(t *testing.T) {
	nw, _ := stableFlowNet(t, 10, Config{Workers: 1})
	checked := 0
	for _, n := range nw.pt.nodes {
		if n == nil || n.lastFlow == nil {
			continue
		}
		clone := n.clone()
		nw.deliver(clone)
		nw.purge(clone)
		res := nw.runRules(clone, nil)
		got := sortedMessages(n.lastFlow.appendAll(nil))
		want := sortedMessages(res.out)
		if len(got) != len(want) {
			t.Fatalf("peer %s: template carries %d messages, replay produced %d", n.id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("peer %s: packed round-trip mismatch: %+v != %+v", n.id, got[i], want[i])
			}
		}
		checked += len(got)
	}
	if checked == 0 {
		t.Fatal("no standing messages checked")
	}
}
