package rechord

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// fx is a small white-box fixture for exercising single rules.
type fx struct {
	nw *Network
}

func newFx(cfg Config, peers ...float64) *fx {
	nw := NewNetwork(cfg)
	for _, p := range peers {
		nw.AddPeer(ident.FromFloat(p))
	}
	return &fx{nw: nw}
}

func (f *fx) peer(x float64) *RealNode { return f.nw.Peer(ident.FromFloat(x)) }

func (f *fx) run(x float64) nodeResult {
	// The fixture mutates peer state directly between runs, so the
	// incrementally maintained caches are rebuilt wholesale.
	f.nw.rebuildLevels()
	f.nw.rebuildView()
	f.nw.rebuildHashes()
	f.nw.rebuildDeps()
	return f.nw.runRules(f.peer(x), nil)
}

func TestRule1CreatesVirtualNodes(t *testing.T) {
	f := newFx(Config{}, 0.1, 0.35)
	// 0.1 knows the real node 0.35 at clockwise distance 0.25: m = 3.
	f.nw.SeedEdge(ref.Real(ident.FromFloat(0.1)), ref.Real(ident.FromFloat(0.35)), graph.Unmarked)
	res := f.run(0.1)
	if res.made != 3 {
		t.Errorf("made %d virtual nodes, want 3", res.made)
	}
	n := f.peer(0.1)
	if got := n.MaxLevel(); got != 3 {
		t.Errorf("m = %d, want 3", got)
	}
	for _, l := range []int{0, 1, 2, 3} {
		if n.VNode(l) == nil {
			t.Errorf("virtual node level %d missing", l)
		}
	}
}

func TestRule1NoKnownRealsCapsAtMaxLevel(t *testing.T) {
	f := newFx(Config{}, 0.5)
	res := f.run(0.5)
	if res.made != ident.MaxLevel {
		t.Errorf("made %d, want MaxLevel=%d", res.made, ident.MaxLevel)
	}
}

func TestRule1DeletesAndMergesNeighborhoods(t *testing.T) {
	f := newFx(Config{}, 0.1, 0.35)
	u := ident.FromFloat(0.1)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.35)), graph.Unmarked)
	// Garbage state: a stale virtual node at level 9 (beyond m=3) with
	// edges of all three kinds.
	w := ident.FromFloat(0.35)
	f.nw.SeedEdge(ref.Virtual(u, 9), ref.Virtual(w, 1), graph.Unmarked)
	f.nw.SeedEdge(ref.Virtual(u, 9), ref.Virtual(w, 2), graph.Ring)
	f.nw.SeedEdge(ref.Virtual(u, 9), ref.Virtual(w, 3), graph.Connection)
	// The targets must exist for the purge to keep them.
	f.nw.SeedEdge(ref.Real(w), ref.Real(u), graph.Unmarked)
	fw := f.nw.Peer(w)
	for _, l := range []int{1, 2, 3} {
		fw.ensureLevel(l)
	}

	res := f.run(0.1)
	if res.killed != 1 {
		t.Errorf("killed %d, want 1", res.killed)
	}
	n := f.peer(0.1)
	if n.VNode(9) != nil {
		t.Error("stale level 9 not deleted")
	}
	// The inherited references must not be lost: after the merge the
	// later rules redistribute them, so each must appear either in some
	// sibling's neighborhood or in an outgoing message.
	for _, tgt := range []ref.Ref{ref.Virtual(w, 1), ref.Virtual(w, 2), ref.Virtual(w, 3)} {
		found := false
		for _, l := range n.Levels() {
			if n.VNode(l).Nu.Contains(tgt) {
				found = true
			}
		}
		for _, m := range res.out {
			if m.Add == tgt || m.To == tgt {
				found = true
			}
		}
		if !found {
			t.Errorf("reference %s lost during merge", tgt)
		}
	}
}

func TestRule2MovesEdgeToCloserSibling(t *testing.T) {
	f := newFx(Config{}, 0.1, 0.12, 0.5)
	u := ident.FromFloat(0.1)
	// Closest real at 0.12 -> distance 0.02 -> m = 6 -> siblings at
	// 0.6, 0.35, 0.225, 0.1625, 0.13125, 0.115625.
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.12)), graph.Unmarked)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.5)), graph.Unmarked)
	f.run(0.1)
	n := f.peer(0.1)
	if n.VNode(0).Nu.Contains(ref.Real(ident.FromFloat(0.5))) {
		t.Errorf("edge to 0.5 stayed at u_0: %s", n.VNode(0).Nu.String())
	}
	// The sibling closest to 0.5 strictly between u_0=0.1 and w=0.5 is
	// u_2 at 0.35 (u_1=0.6 is beyond w).
	if v := n.VNode(2); !v.Nu.Contains(ref.Real(ident.FromFloat(0.5))) {
		t.Errorf("edge to 0.5 not at u_2 (0.35): %s", v.Nu.String())
	}
}

func TestRule3SetsClosestReals(t *testing.T) {
	f := newFx(Config{}, 0.3, 0.2, 0.4)
	u := ident.FromFloat(0.3)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.2)), graph.Unmarked)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.4)), graph.Unmarked)
	f.run(0.3)
	v := f.peer(0.3).VNode(0)
	if !v.HasRL || v.RL != ref.Real(ident.FromFloat(0.2)) {
		t.Errorf("rl = %v (%v), want 0.2", v.RL, v.HasRL)
	}
	if !v.HasRR || v.RR != ref.Real(ident.FromFloat(0.4)) {
		t.Errorf("rr = %v (%v), want 0.4", v.RR, v.HasRR)
	}
	if !v.Nu.Contains(v.RL) || !v.Nu.Contains(v.RR) {
		t.Errorf("rl/rr not kept in Nu: %s", v.Nu.String())
	}
}

func TestRule3InformsNeighbors(t *testing.T) {
	// u_0 = 0.3 knows real 0.2 (left real) and node y = 0.25 between
	// them; y must be told about 0.2.
	f := newFx(Config{}, 0.3, 0.2, 0.25)
	u := ident.FromFloat(0.3)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.2)), graph.Unmarked)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.25)), graph.Unmarked)
	res := f.run(0.3)
	found := false
	for _, m := range res.out {
		if m.To == ref.Real(ident.FromFloat(0.25)) && m.Kind == graph.Unmarked && m.Add == ref.Real(ident.FromFloat(0.2)) {
			found = true
		}
	}
	if !found {
		t.Errorf("no rl propagation message to y; out = %v", res.out)
	}
}

func TestRule3GuardSuppressesRedundantInfo(t *testing.T) {
	// Peer 0.3 knows reals 0.2, 0.6 and 0.85. Rule 2 hands the edge to
	// 0.85 to the sibling u_1 = 0.8, whose closest left real is 0.6;
	// rule 3 then informs 0.85 about 0.6 — unless 0.85 already
	// publishes a closer left real. The payload R(0.6) is produced by
	// no other rule, so the message identifies rule 3's propagation.
	build := func(publish bool) []Message {
		f := newFx(Config{}, 0.3, 0.2, 0.6, 0.85)
		u := ident.FromFloat(0.3)
		for _, x := range []float64{0.2, 0.6, 0.85} {
			f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(x)), graph.Unmarked)
		}
		if publish {
			yn := f.nw.Peer(ident.FromFloat(0.85)).VNode(0)
			yn.HasRL = true
			yn.RL = ref.Real(ident.FromFloat(0.7))
		}
		return f.run(0.3).out
	}
	isRLInfo := func(m Message) bool {
		return m.Kind == graph.Unmarked && m.To == ref.Real(ident.FromFloat(0.85)) &&
			m.Add == ref.Real(ident.FromFloat(0.6))
	}
	for _, m := range build(true) {
		if isRLInfo(m) {
			t.Errorf("redundant rl message sent despite better published rl: %v", m)
		}
	}
	found := false
	for _, m := range build(false) {
		if isRLInfo(m) {
			found = true
		}
	}
	if !found {
		t.Error("control: no rl info sent to neighbor without published rl")
	}
}

func TestRule4LinearizationKeepsClosest(t *testing.T) {
	f := newFx(Config{}, 0.5, 0.1, 0.3, 0.7, 0.9)
	u := ident.FromFloat(0.5)
	for _, x := range []float64{0.1, 0.3, 0.7, 0.9} {
		f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(x)), graph.Unmarked)
	}
	res := f.run(0.5)
	v := f.peer(0.5).VNode(0)
	// Closest left 0.3 and closest right 0.7 stay (as rl/rr they are
	// re-added too); 0.1 and 0.9 must be forwarded away.
	if v.Nu.Contains(ref.Real(ident.FromFloat(0.1))) || v.Nu.Contains(ref.Real(ident.FromFloat(0.9))) {
		t.Errorf("far neighbors kept: %s", v.Nu.String())
	}
	if !v.Nu.Contains(ref.Real(ident.FromFloat(0.3))) || !v.Nu.Contains(ref.Real(ident.FromFloat(0.7))) {
		t.Errorf("closest neighbors lost: %s", v.Nu.String())
	}
	// Forwarding: 0.3 must learn about 0.1 (descending chain), 0.7
	// about 0.9 (ascending chain).
	var fwd01, fwd09 bool
	for _, m := range res.out {
		if m.To == ref.Real(ident.FromFloat(0.3)) && m.Add == ref.Real(ident.FromFloat(0.1)) {
			fwd01 = true
		}
		if m.To == ref.Real(ident.FromFloat(0.7)) && m.Add == ref.Real(ident.FromFloat(0.9)) {
			fwd09 = true
		}
	}
	if !fwd01 || !fwd09 {
		t.Errorf("linearization forwarding missing (0.1->0.3: %v, 0.9->0.7: %v); out=%v", fwd01, fwd09, res.out)
	}
}

func TestRule4Mirroring(t *testing.T) {
	f := newFx(Config{}, 0.5, 0.3, 0.7)
	u := ident.FromFloat(0.5)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.3)), graph.Unmarked)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.7)), graph.Unmarked)
	res := f.run(0.5)
	var m03, m07 bool
	for _, m := range res.out {
		if m.Kind == graph.Unmarked && m.Add == ref.Real(u) {
			if m.To == ref.Real(ident.FromFloat(0.3)) {
				m03 = true
			}
			if m.To == ref.Real(ident.FromFloat(0.7)) {
				m07 = true
			}
		}
	}
	if !m03 || !m07 {
		t.Errorf("mirroring did not announce u to closest neighbors: %v", res.out)
	}
}

func TestRule5CreatesRingEdges(t *testing.T) {
	// A node with no left neighbor asks the largest known node to hold
	// a ring edge to it.
	f := newFx(Config{}, 0.1, 0.6)
	u := ident.FromFloat(0.1)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.6)), graph.Unmarked)
	res := f.run(0.1)
	found := false
	for _, m := range res.out {
		if m.Kind == graph.Ring && m.Add == ref.Real(u) {
			found = true
			// The holder must be the largest known node.
			if m.To.ID() <= u {
				t.Errorf("ring edge holder %s not larger than u", m.To)
			}
		}
	}
	if !found {
		t.Error("no ring edge created for node missing a left neighbor")
	}
}

func TestRule5ForwardDissolvesWhenBeyondKnown(t *testing.T) {
	// Holder u=0.5 has ring edge to w=0.8 (w thinks it is the max),
	// but u knows x=0.9 > w: the ring edge dissolves into an unmarked
	// edge (x, w).
	f := newFx(Config{}, 0.5, 0.8, 0.9)
	u := ident.FromFloat(0.5)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.8)), graph.Ring)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.9)), graph.Unmarked)
	res := f.run(0.5)
	var dissolved bool
	for _, m := range res.out {
		if m.Kind == graph.Unmarked && m.To == ref.Real(ident.FromFloat(0.9)) && m.Add == ref.Real(ident.FromFloat(0.8)) {
			dissolved = true
		}
	}
	if !dissolved {
		t.Errorf("ring edge not dissolved via known larger node: %v", res.out)
	}
	if f.peer(0.5).VNode(0).Nr.Contains(ref.Real(ident.FromFloat(0.8))) {
		t.Error("dissolved ring edge still held")
	}
}

func TestRule5ForwardTowardMin(t *testing.T) {
	// Holder u=0.4 has a ring edge to w=0.95 and knows nothing beyond
	// w (its only sibling is u_1=0.9 < w), so the edge is forwarded to
	// the smallest known node, 0.2.
	f := newFx(Config{}, 0.4, 0.95, 0.2)
	u := ident.FromFloat(0.4)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.95)), graph.Ring)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.2)), graph.Unmarked)
	res := f.run(0.4)
	var forwarded bool
	for _, m := range res.out {
		if m.Kind == graph.Ring && m.To == ref.Real(ident.FromFloat(0.2)) && m.Add == ref.Real(ident.FromFloat(0.95)) {
			forwarded = true
		}
	}
	if !forwarded {
		t.Errorf("ring edge not forwarded toward the minimum: %v", res.out)
	}
}

func TestRule6ConnectsSiblingsAndForwards(t *testing.T) {
	f := newFx(Config{}, 0.1, 0.35)
	u := ident.FromFloat(0.1)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.35)), graph.Unmarked)
	res := f.run(0.1)
	// m=3: siblings sorted 0.1(u0) < 0.225(u3)... levels: u1=0.6,
	// u2=0.35, u3=0.225 -> sorted: 0.1, 0.225, 0.35, 0.6.
	// Consecutive pairs connect; with empty Nu between siblings the
	// forwarding immediately falls to the backward-edge case, sending
	// "add me" to the target sibling (self-messages within the peer).
	var sawBackward bool
	for _, m := range res.out {
		if m.Kind == graph.Unmarked && m.To.Owner == u && m.Add.Owner == u {
			sawBackward = true
		}
	}
	if !sawBackward {
		t.Errorf("no backward edges between fresh siblings: %v", res.out)
	}
}

func TestRule6ForwardThroughIntermediate(t *testing.T) {
	// Peer 0.1 with siblings; a node w=0.3 sits between siblings
	// u_2=0.225... actually between 0.225 and 0.35: the connection
	// edge (u_3, u_2') must be forwarded to w when w is the largest
	// known node below the target.
	f := newFx(Config{}, 0.1, 0.35, 0.3)
	u := ident.FromFloat(0.1)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.35)), graph.Unmarked)
	// u_3 (0.225) knows w=0.3 < u_2 (0.35): seed after vnodes exist.
	f.run(0.1) // creates vnodes
	f.nw.SeedEdge(ref.Virtual(u, 3), ref.Real(ident.FromFloat(0.3)), graph.Unmarked)
	res := f.run(0.1)
	var forwarded bool
	for _, m := range res.out {
		if m.Kind == graph.Connection && m.To == ref.Real(ident.FromFloat(0.3)) && m.Add == ref.Virtual(u, 2) {
			forwarded = true
		}
	}
	if !forwarded {
		t.Errorf("connection edge not forwarded through intermediate node: %v", res.out)
	}
}

func TestDisableRingSkipsRule5(t *testing.T) {
	f := newFx(Config{DisableRing: true}, 0.1, 0.6)
	u := ident.FromFloat(0.1)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.6)), graph.Unmarked)
	res := f.run(0.1)
	for _, m := range res.out {
		if m.Kind == graph.Ring {
			t.Fatalf("ring message generated with DisableRing: %v", m)
		}
	}
}

func TestDisableConnectionSkipsRule6(t *testing.T) {
	f := newFx(Config{DisableConnection: true}, 0.1, 0.35)
	u := ident.FromFloat(0.1)
	f.nw.SeedEdge(ref.Real(u), ref.Real(ident.FromFloat(0.35)), graph.Unmarked)
	res := f.run(0.1)
	for _, m := range res.out {
		if m.Kind == graph.Connection {
			t.Fatalf("connection message generated with DisableConnection: %v", m)
		}
	}
	if !f.peer(0.1).VNode(0).Nc.Empty() {
		t.Error("Nc populated with DisableConnection")
	}
}
