package rechord_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/topogen"
)

// The sharded barrier (barrier.go) claims exact worker-count
// independence: Workers=1 and Workers=N must produce identical global
// state at every round boundary, under any churn, in every scheduler.
// These tests run the two configurations in lockstep — with
// ParanoidSettle on, so the clone cross-check, the wake-set
// equivalence check and the commit's cross-shard write audits are all
// armed — and compare snapshots and state fingerprints at phase-3
// granularity (after every single Step), not just at quiescence.

// wlEvent is one membership change applied to both worker
// configurations at the same round. kind 3 is a REJOIN: a previously
// departed identifier comes back, which exercises AddPeer's standing-
// flow re-materialization against the sharded commit's index deltas.
type wlEvent struct {
	round  int
	kind   int // 0 join, 1 leave, 2 fail, 3 rejoin
	fresh  ident.ID
	victim int
}

func runWorkersLockstep(t *testing.T, seed int64, n int, gen topogen.Generator, mode string, rounds int, events []wlEvent) bool {
	t.Helper()
	build := func(workers int) *rechord.Network {
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(n, rng)
		cfg := rechord.Config{Workers: workers, ParanoidSettle: true, FullSweep: mode == "fullsweep"}
		return gen.Build(ids, rng, cfg)
	}
	serial, sharded := build(1), build(8)
	var aSerial, aSharded *rechord.AsyncRunner
	if mode == "async" {
		acfg := rechord.AsyncConfig{ActivationProb: 0.5, MaxDelay: 3}
		aSerial = rechord.NewAsyncRunner(serial, acfg, rand.New(rand.NewSource(seed+99)))
		aSharded = rechord.NewAsyncRunner(sharded, acfg, rand.New(rand.NewSource(seed+99)))
	}

	// The two networks hold identical peer sets by induction, so one
	// departed list serves both sides.
	var departed []ident.ID
	apply := func(nw *rechord.Network, ev wlEvent, record bool) error {
		peers := nw.Peers()
		switch {
		case ev.kind == 0 || len(peers) < 3:
			return nw.Join(ev.fresh, peers[ev.victim%len(peers)])
		case ev.kind == 3 && len(departed) > 0:
			back := departed[ev.victim%len(departed)]
			if record {
				i := ev.victim % len(departed)
				departed = append(departed[:i], departed[i+1:]...)
			}
			return nw.Join(back, peers[ev.victim%len(peers)])
		default:
			victim := peers[ev.victim%len(peers)]
			if record {
				departed = append(departed, victim)
			}
			if ev.kind == 1 || ev.kind == 3 {
				return nw.Leave(victim)
			}
			return nw.Fail(victim)
		}
	}

	for r := 0; r < rounds; r++ {
		for _, ev := range events {
			if ev.round != r {
				continue
			}
			if err := apply(sharded, ev, false); err != nil {
				t.Logf("seed=%d round=%d: sharded event: %v", seed, r, err)
				return false
			}
			if err := apply(serial, ev, true); err != nil {
				t.Logf("seed=%d round=%d: serial event: %v", seed, r, err)
				return false
			}
		}
		if mode == "async" {
			aSerial.Step()
			aSharded.Step()
		} else {
			serial.Step()
			sharded.Step()
		}
		if fa, fb := serial.StateFingerprint(nil), sharded.StateFingerprint(nil); fa != fb {
			t.Logf("seed=%d n=%d gen=%s mode=%s: fingerprint diverged at round %d: %x vs %x",
				seed, n, gen.Name, mode, r+1, fa, fb)
			return false
		}
		if !serial.TakeSnapshot().Equal(sharded.TakeSnapshot()) {
			t.Logf("seed=%d n=%d gen=%s mode=%s: global state diverged at round %d (frontier=%d)",
				seed, n, gen.Name, mode, r+1, serial.FrontierSize())
			return false
		}
	}
	if serial.LastChangeRound() != sharded.LastChangeRound() {
		t.Logf("seed=%d mode=%s: last-change round %d (serial) vs %d (sharded)",
			seed, mode, serial.LastChangeRound(), sharded.LastChangeRound())
		return false
	}
	if !serial.Graph().Equal(sharded.Graph()) || !serial.ReChordGraph().Equal(sharded.ReChordGraph()) {
		t.Logf("seed=%d n=%d gen=%s mode=%s: graph exports diverged", seed, n, gen.Name, mode)
		return false
	}
	if mode == "async" && aSerial.EventFingerprint() != aSharded.EventFingerprint() {
		t.Logf("seed=%d: async event fingerprint diverged: %x vs %x — the sharded barrier consumed RNG",
			seed, aSerial.EventFingerprint(), aSharded.EventFingerprint())
		return false
	}
	return true
}

// TestWorkersLockstepChurn is the worker-count equivalence property
// under join/leave/fail/rejoin churn, for the synchronous engine, the
// asynchronous adversary (whose RNG consumption must be byte-identical
// across worker counts) and the FullSweep baseline.
func TestWorkersLockstepChurn(t *testing.T) {
	gens := []topogen.Generator{topogen.Random(), topogen.Garbage(), topogen.PreStabilized()}
	for _, mode := range []string{"sync", "async", "fullsweep"} {
		t.Run(mode, func(t *testing.T) {
			f := func(seed int64, sizeRaw, genRaw uint8, evRaw [5]uint8) bool {
				n := 4 + int(sizeRaw)%12
				gen := gens[int(genRaw)%len(gens)]
				rng := rand.New(rand.NewSource(seed ^ 0x713c))
				events := make([]wlEvent, 0, len(evRaw))
				for i, raw := range evRaw {
					events = append(events, wlEvent{
						round:  2 + i*9 + int(raw)%4,
						kind:   int(raw) % 4,
						fresh:  ident.ID(rng.Uint64() | 1),
						victim: rng.Intn(64),
					})
				}
				rounds := 60
				if mode == "async" {
					rounds = 90 // activation prob 0.5 stretches convergence
				}
				return runWorkersLockstep(t, seed, n, gen, mode, rounds, events)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Error(err)
			}
		})
	}
}
