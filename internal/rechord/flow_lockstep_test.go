package rechord_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/topogen"
)

// The shared-flow engine claims storage-only status: pointing standing
// buckets at refcounted spans of the sender's flow template instead of
// deep-copying []Message must not change a single observable bit.
// These tests run the shared engine against the Config.DeepCopyFlows
// fallback (same code paths, private per-bucket copies) in lockstep
// under join/leave/fail/rejoin churn and compare the full global state
// — snapshots, fingerprints, in-flight counts, and (for the
// asynchronous scheduler) the event digest and RNG consumption — after
// every single round, across the synchronous, full-sweep, and
// asynchronous schedulers.

// flowChurnEvents builds a deterministic churn script that exercises
// join, graceful leave, crash failure, and a rejoin under a previously
// failed identifier.
func flowChurnEvents(seed int64) []lockstepEvent {
	rng := rand.New(rand.NewSource(seed ^ 0xf10e))
	evs := make([]lockstepEvent, 0, 6)
	rejoin := ident.ID(rng.Uint64() | 1)
	for i := 0; i < 4; i++ {
		evs = append(evs, lockstepEvent{
			round:   2 + i*9 + int(rng.Intn(4)),
			kind:    i % 3,
			fresh:   ident.ID(rng.Uint64() | 1),
			victim:  rng.Intn(64),
			contact: rng.Intn(64),
		})
	}
	// A fail followed by a rejoin of the same identifier: the stalest
	// standing-bucket path (handle generation bump plus AddPeer
	// rematerialization from live templates).
	evs = append(evs,
		lockstepEvent{round: 40, kind: 2, fresh: rejoin, victim: 1, contact: 1},
		lockstepEvent{round: 46, kind: 0, fresh: rejoin, contact: 0},
	)
	return evs
}

// runFlowLockstep steps the shared-storage engine and its deep-copy
// twin for `rounds` rounds under the event script and fails the test on
// the first observable divergence.
func runFlowLockstep(t *testing.T, name string, seed int64, n, rounds int, cfg rechord.Config, events []lockstepEvent) {
	t.Helper()
	build := func(deep bool) *rechord.Network {
		c := cfg
		c.DeepCopyFlows = deep
		rng := rand.New(rand.NewSource(seed))
		ids := topogen.RandomIDs(n, rng)
		return topogen.Random().Build(ids, rng, c)
	}
	shared, deep := build(false), build(true)

	apply := func(nw *rechord.Network, ev lockstepEvent) error {
		peers := nw.Peers()
		switch {
		case ev.kind == 0 || len(peers) < 3:
			// A failing join (identifier still present) is fine as long
			// as it fails on both twins — membership is identical.
			_ = nw.Join(ev.fresh, peers[ev.contact%len(peers)])
			return nil
		case ev.kind == 1:
			return nw.Leave(peers[ev.victim%len(peers)])
		default:
			return nw.Fail(peers[ev.victim%len(peers)])
		}
	}

	for r := 0; r < rounds; r++ {
		for _, ev := range events {
			if ev.round != r {
				continue
			}
			if err := apply(shared, ev); err != nil {
				t.Fatalf("%s seed=%d round=%d: shared event: %v", name, seed, r, err)
			}
			if err := apply(deep, ev); err != nil {
				t.Fatalf("%s seed=%d round=%d: deep-copy event: %v", name, seed, r, err)
			}
		}
		shared.Step()
		deep.Step()
		if sf, df := shared.StateFingerprint(nil), deep.StateFingerprint(nil); sf != df {
			t.Fatalf("%s seed=%d: fingerprint diverged at round %d: shared %x, deep-copy %x", name, seed, r+1, sf, df)
		}
		if !shared.TakeSnapshot().Equal(deep.TakeSnapshot()) {
			t.Fatalf("%s seed=%d: global state diverged at round %d", name, seed, r+1)
		}
		if si, di := shared.InFlight(), deep.InFlight(); si != di {
			t.Fatalf("%s seed=%d: in-flight diverged at round %d: shared %d, deep-copy %d", name, seed, r+1, si, di)
		}
	}
	if !shared.Graph().Equal(deep.Graph()) {
		t.Fatalf("%s seed=%d: Graph() diverged after %d rounds", name, seed, rounds)
	}
}

// TestFlowSharedMatchesDeepCopySync: the synchronous activity-tracked
// engine, serial and sharded-parallel, with the ParanoidSettle write
// barrier armed on the shared side of one variant.
func TestFlowSharedMatchesDeepCopySync(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  rechord.Config
	}{
		{"serial", rechord.Config{Workers: 1}},
		{"parallel", rechord.Config{Workers: 4}},
		{"paranoid", rechord.Config{Workers: 4, ParanoidSettle: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 1011} {
				runFlowLockstep(t, tc.name, seed, 12, 60, tc.cfg, flowChurnEvents(seed))
			}
		})
	}
}

// TestFlowSharedMatchesDeepCopyFullSweep: the exhaustive scheduler
// rewrites every bucket every round — the worst case for template
// generation turnover.
func TestFlowSharedMatchesDeepCopyFullSweep(t *testing.T) {
	for _, seed := range []int64{3, 501} {
		runFlowLockstep(t, "fullsweep", seed, 10, 50, rechord.Config{Workers: 2, FullSweep: true}, flowChurnEvents(seed))
	}
}

// TestFlowSharedMatchesDeepCopyAsync runs the event-driven scheduler on
// both storage modes with identical RNGs and compares state, event
// digest, and RNG consumption each step — the bucket representation
// must not influence a single coin flip or delay draw.
func TestFlowSharedMatchesDeepCopyAsync(t *testing.T) {
	for _, seed := range []int64{5, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			build := func(deep bool) (*rechord.Network, *rechord.AsyncRunner, *rand.Rand) {
				rng := rand.New(rand.NewSource(seed))
				ids := topogen.RandomIDs(10, rng)
				nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 2, DeepCopyFlows: deep})
				arng := rand.New(rand.NewSource(seed ^ 0xa57))
				a := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{ActivationProb: 0.7, MaxDelay: 3}, arng)
				return nw, a, arng
			}
			sharedNW, shared, sharedRNG := build(false)
			deepNW, deep, deepRNG := build(true)
			events := flowChurnEvents(seed)

			apply := func(nw *rechord.Network, ev lockstepEvent) {
				peers := nw.Peers()
				switch {
				case ev.kind == 0 || len(peers) < 3:
					_ = nw.Join(ev.fresh, peers[ev.contact%len(peers)])
				case ev.kind == 1:
					_ = nw.Leave(peers[ev.victim%len(peers)])
				default:
					_ = nw.Fail(peers[ev.victim%len(peers)])
				}
			}
			for s := 0; s < 220; s++ {
				for _, ev := range events {
					if ev.round*3 == s { // spread the script over async time
						apply(sharedNW, ev)
						apply(deepNW, ev)
					}
				}
				shared.Step()
				deep.Step()
				if sf, df := sharedNW.StateFingerprint(nil), deepNW.StateFingerprint(nil); sf != df {
					t.Fatalf("fingerprint diverged at step %d: shared %x, deep-copy %x", s+1, sf, df)
				}
				if se, de := shared.EventFingerprint(), deep.EventFingerprint(); se != de {
					t.Fatalf("event digest diverged at step %d: shared %x, deep-copy %x", s+1, se, de)
				}
				if si, di := shared.InFlight(), deep.InFlight(); si != di {
					t.Fatalf("in-flight diverged at step %d: shared %d, deep-copy %d", s+1, si, di)
				}
			}
			if !sharedNW.TakeSnapshot().Equal(deepNW.TakeSnapshot()) {
				t.Fatal("global state diverged after the run")
			}
			// Identical RNG consumption: both runners must draw their
			// next random word from the same stream position.
			if sv, dv := sharedRNG.Uint64(), deepRNG.Uint64(); sv != dv {
				t.Fatalf("RNG consumption diverged: next draw %x (shared) vs %x (deep-copy)", sv, dv)
			}
		})
	}
}
