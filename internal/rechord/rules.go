package rechord

import (
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// ruleContext carries one peer's in-round working state: the rules'
// immediate assignments mutate the node directly, delayed assignments
// append to res.out. The scratch buffers live on the RealNode, so a
// peer's repeated executions do not reallocate them. cur is the index
// (0-based, obs.RuleNames order) of the rule currently executing, so
// send can attribute each message to its rule with a plain local
// increment.
type ruleContext struct {
	nw  *Network
	n   *RealNode
	cur int
	res nodeResult
}

// send enqueues a delayed edge insertion ("A <= B"): the destination
// only becomes aware of the edge in the next round.
func (c *ruleContext) send(to ref.Ref, k graph.Kind, add ref.Ref) {
	if to == add {
		return
	}
	c.res.fired[c.cur]++
	c.res.out = append(c.res.out, Message{To: to, Kind: k, Add: add})
}

// runRules executes rules 1-6 in the paper's order for one peer,
// appending the generated messages to buf (usually the peer's
// recycled output scratch). The receiver only reads its own state and
// the round-start view of other nodes' published variables, so peers
// can run concurrently.
func (nw *Network) runRules(n *RealNode, buf []Message) nodeResult {
	c := ruleContext{nw: nw, n: n, res: nodeResult{out: buf}}
	c.cur = 0
	c.ruleVirtualNodes()
	c.cur = 1
	c.ruleOverlappingNeighborhood()
	c.cur = 2
	c.ruleClosestRealNeighbor()
	c.cur = 3
	c.ruleLinearization()
	if !nw.cfg.DisableRing {
		c.cur = 4
		c.ruleRingEdges()
	}
	if !nw.cfg.DisableConnection {
		c.cur = 5
		c.ruleConnectionEdges()
	}
	return c.res
}

// ruleVirtualNodes implements rule 1: recompute m from the peer's
// outgoing edges to real nodes, create the missing virtual nodes
// u_1..u_m, and delete levels beyond m, merging each deleted node's
// neighborhoods into N_u(u_m).
func (c *ruleContext) ruleVirtualNodes() {
	n := c.n
	n.scratch.realID = n.knownRealsInto(n.scratch.realID)
	m := ident.LevelFor(n.id, n.scratch.realID)
	// create-virtualnodes: fill levels 1..m (including any seeding
	// holes below m).
	for i := 1; i <= m; i++ {
		if n.VNode(i) == nil {
			n.ensureLevel(i)
			c.res.made++
			c.res.fired[c.cur]++
		}
	}
	// delete-virtualnodes: inform u_m of each deleted node's
	// neighborhood (N_u ∪ N_r ∪ N_c), then drop the node.
	um := n.vnodes[m]
	for l := m + 1; l < len(n.vnodes); l++ {
		v := n.vnodes[l]
		if v == nil {
			continue
		}
		for _, s := range []ref.Set{v.Nu, v.Nr, v.Nc} {
			for _, r := range s.Slice() {
				if r.Owner == n.id && r.Level > m {
					continue // reference to a sibling also being deleted
				}
				um.addNu(r)
			}
		}
		c.res.killed++
		c.res.fired[c.cur]++
		n.vnodes[l] = nil // release before the truncation below
	}
	n.vnodes = n.vnodes[:m+1]
	// Drop references to the peer's own no-longer-existing levels: the
	// peer knows its own virtual node set exactly. After the create
	// and delete passes the level set is contiguous 0..m.
	for _, v := range n.vnodes {
		for _, s := range []*ref.Set{&v.Nu, &v.Nr, &v.Nc} {
			s.RemoveIf(func(r ref.Ref) bool {
				return r.Owner == n.id && r.Level > m
			})
		}
	}
	// The level set is final for this round: cache the derived orders
	// the later rules iterate.
	n.scratch.levels = n.levelsInto(n.scratch.levels)
	n.scratch.sibs = n.siblingsInto(n.scratch.sibs)
}

// ruleOverlappingNeighborhood implements rule 2: if a neighbor w of
// u_i has a sibling u_j strictly between w and u_i, the edge is handed
// to the sibling closest to w — both nodes belong to the same peer, so
// the move is immediate.
func (c *ruleContext) ruleOverlappingNeighborhood() {
	n := c.n
	sibs := n.scratch.sibs
	for _, level := range n.scratch.levels {
		ui := n.vnodes[level]
		uiID := ui.Self.ID()
		n.scratch.snap = append(n.scratch.snap[:0], ui.Nu.Slice()...)
		for _, w := range n.scratch.snap {
			wID := w.ID()
			// Find the sibling closest to w strictly between w and u_i
			// in the linear order.
			var best ref.Ref
			found := false
			for _, s := range sibs {
				sID := s.ID()
				if s == ui.Self {
					continue
				}
				inLeft := wID < sID && sID < uiID  // w < u_j < u_i
				inRight := wID > sID && sID > uiID // w > u_j > u_i
				if !inLeft && !inRight {
					continue
				}
				if !found {
					best, found = s, true
					continue
				}
				// closest to w: minimal |s - w| on the line
				if absDiff(sID, wID) < absDiff(best.ID(), wID) {
					best = s
				}
			}
			if found {
				// An immediate intra-peer handoff is rule 2's action.
				c.res.fired[c.cur]++
				ui.Nu.Remove(w)
				n.vnodes[best.Level].addNu(w)
			}
		}
	}
}

func absDiff(a, b ident.ID) uint64 {
	if a > b {
		return uint64(a - b)
	}
	return uint64(b - a)
}

// ruleClosestRealNeighbor implements rule 3: every virtual node finds
// the closest real node to its left and right within the peer's known
// neighborhood N(u_i), stores them in rl/rr, keeps them in N_u, and
// informs the unmarked neighbors for which the find is an improvement
// over their published rl/rr.
func (c *ruleContext) ruleClosestRealNeighbor() {
	n := c.n
	n.knownSetInto(&n.scratch.known)
	// The closest real candidates are the same for all siblings except
	// for the strict </> constraint; scan the ordered known set once.
	reals := &n.scratch.reals
	reals.Clear()
	for _, r := range n.scratch.known.Slice() {
		if r.IsReal() {
			reals.Add(r)
		}
	}
	nw := c.nw
	for _, level := range n.scratch.levels {
		ui := n.vnodes[level]
		uiID := ui.Self.ID()

		// left-realneighbor
		if v, ok := reals.MaxBelow(uiID); ok {
			ui.HasRL = true
			ui.RL = v
			ui.addNu(v)
			for _, y := range ui.Nu.Slice() {
				yID := y.ID()
				if !(yID > uiID || (v.ID() < yID && yID < uiID)) {
					continue
				}
				if e := nw.viewOf(y); e.hasRL && e.rl.ID() >= v.ID() {
					continue // y already knows an equal or closer left real
				}
				c.send(y, graph.Unmarked, v)
			}
		} else {
			ui.HasRL = false
		}

		// right-realneighbor
		if v, ok := reals.MinAbove(uiID); ok {
			ui.HasRR = true
			ui.RR = v
			ui.addNu(v)
			for _, y := range ui.Nu.Slice() {
				yID := y.ID()
				if !(yID < uiID || (v.ID() > yID && yID > uiID)) {
					continue
				}
				if e := nw.viewOf(y); e.hasRR && e.rr.ID() <= v.ID() {
					continue // y already knows an equal or closer right real
				}
				c.send(y, graph.Unmarked, v)
			}
		} else {
			ui.HasRR = false
		}
	}
}

// ruleLinearization implements rule 4: each virtual node keeps only
// its closest unmarked neighbor on each side, forwarding every farther
// edge one hop toward its endpoint (sorted order), then mirrors itself
// to the closest neighbors and re-adds rl/rr.
func (c *ruleContext) ruleLinearization() {
	n := c.n
	for _, level := range n.scratch.levels {
		ui := n.vnodes[level]
		uiID := ui.Self.ID()

		// lin-left: neighbors smaller than u_i in descending order
		// w_1 > w_2 > ...; edge to w_{l+1} is forwarded to w_l.
		lefts, rights := n.scratch.lefts[:0], n.scratch.rights[:0]
		for _, w := range ui.Nu.Slice() {
			if w.ID() < uiID {
				lefts = append(lefts, w)
			} else if w.ID() > uiID {
				rights = append(rights, w)
			} else if w != ui.Self {
				// Equal identifier, distinct node (hash collision):
				// treat as a right neighbor at distance zero.
				rights = append(rights, w)
			}
		}
		n.scratch.lefts, n.scratch.rights = lefts, rights
		// Slice() is ascending; lefts ascending means the last element
		// is the closest left neighbor, which is kept.
		for i := 0; i+1 < len(lefts); i++ {
			v, w := lefts[i], lefts[i+1] // v = max{y < w}
			c.send(w, graph.Unmarked, v)
			ui.Nu.Remove(v)
		}
		// rights ascending: first element is closest and kept.
		for i := len(rights) - 1; i > 0; i-- {
			v, w := rights[i], rights[i-1] // v = min{y > w}
			c.send(w, graph.Unmarked, v)
			ui.Nu.Remove(v)
		}

		// mirroring: the surviving closest neighbors learn about u_i,
		// and rl/rr stay in N_u so the closest-real knowledge is never
		// lost to forwarding.
		for _, v := range ui.Nu.Slice() {
			c.send(v, graph.Unmarked, ui.Self)
		}
		if ui.HasRL {
			ui.addNu(ui.RL)
		}
		if ui.HasRR {
			ui.addNu(ui.RR)
		}
	}
}

// ruleRingEdges implements rule 5: a virtual node missing a left
// (right) neighbor asks the largest (smallest) known node to hold a
// ring edge to it; ring-edge holders forward the edge toward the
// global maximum (minimum) or dissolve it into an unmarked edge when
// they know a node beyond the edge's target.
func (c *ruleContext) ruleRingEdges() {
	n := c.n
	n.knownSetInto(&n.scratch.known)
	known := &n.scratch.known

	// create-all-ring-edges
	for _, level := range n.scratch.levels {
		ui := n.vnodes[level]
		uiID := ui.Self.ID()
		if _, hasLeft := ui.Nu.MaxBelow(uiID); !hasLeft {
			if v, ok := known.Max(); ok && v != ui.Self {
				c.send(v, graph.Ring, ui.Self)
			}
		}
		if _, hasRight := ui.Nu.MinAbove(uiID); !hasRight {
			if v, ok := known.Min(); ok && v != ui.Self {
				c.send(v, graph.Ring, ui.Self)
			}
		}
	}

	// forward-all-ring-edges
	for _, level := range n.scratch.levels {
		ui := n.vnodes[level]
		uiID := ui.Self.ID()
		n.scratch.snap = append(n.scratch.snap[:0], ui.Nr.Slice()...)
		for _, w := range n.scratch.snap {
			wID := w.ID()
			// candidates x come from N(u_i) ∪ N_r(u_i)
			cand := &n.scratch.cand
			cand.MergeSorted(known.Slice(), ui.Nr.Slice())
			switch {
			case wID > uiID:
				// w believes it is the global maximum. If someone
				// beyond w is known, hand w that connection; else
				// forward the ring edge toward the global minimum.
				if x, ok := cand.MinAbove(wID); ok {
					c.send(x, graph.Unmarked, w)
					ui.Nr.Remove(w)
				} else if v, ok := known.Min(); ok && v != ui.Self {
					c.send(v, graph.Ring, w)
					ui.Nr.Remove(w)
				}
			case wID < uiID:
				if x, ok := cand.MaxBelow(wID); ok {
					c.send(x, graph.Unmarked, w)
					ui.Nr.Remove(w)
				} else if v, ok := known.Max(); ok && v != ui.Self {
					c.send(v, graph.Ring, w)
					ui.Nr.Remove(w)
				}
			default:
				// Identifier collision with the holder: dissolve into
				// an unmarked edge so the pair linearizes locally.
				c.send(w, graph.Unmarked, ui.Self)
				ui.Nr.Remove(w)
			}
		}
	}
}

// ruleConnectionEdges implements rule 6: contiguous virtual siblings
// are linked by connection edges, which are then routed through the
// network toward their target, leaving behind the unmarked backward
// edge that glues the sibling's interval to its predecessor.
func (c *ruleContext) ruleConnectionEdges() {
	n := c.n
	sibs := n.scratch.sibs

	// connect-virtual-nodes: consecutive siblings in sorted order.
	for i := 0; i+1 < len(sibs); i++ {
		n.vnodes[sibs[i].Level].addNc(sibs[i+1])
	}

	// forward-all-cedges
	sibSet := &n.scratch.sibSet
	sibSet.Clear()
	for _, s := range sibs {
		sibSet.Add(s)
	}
	for _, level := range n.scratch.levels {
		ui := n.vnodes[level]
		if ui.Nc.Empty() {
			continue
		}
		// w = max{x in N_u(u_i) ∪ S(u_i) : x < v}. The candidate set is
		// loop-invariant: forwarding removes connection edges and sends
		// messages, but never touches N_u or the sibling set.
		cand := &n.scratch.cand
		cand.MergeSorted(ui.Nu.Slice(), sibSet.Slice())
		n.scratch.snap = append(n.scratch.snap[:0], ui.Nc.Slice()...)
		for _, v := range n.scratch.snap {
			w, ok := cand.MaxBelow(v.ID())
			switch {
			case ok && w != ui.Self:
				c.send(w, graph.Connection, v)
				ui.Nc.Remove(v)
			default:
				// u_i itself is the largest known node below v (or
				// nothing below v is known): create the unmarked
				// backward edge (v, u_i) and retire the connection
				// edge.
				c.send(v, graph.Unmarked, ui.Self)
				ui.Nc.Remove(v)
			}
		}
	}
}
