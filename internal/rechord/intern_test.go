package rechord

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// Property test for the peer interner's generation semantics: under
// any sequence of Join/Leave/Fail/rejoin-same-id (interleaved with
// enough rounds to keep the schedule realistic), a handle taken for a
// departed incarnation must never resolve again — not even when its
// identifier re-joins, and not when its slot is re-tenanted by a
// different peer — and the slot space must stay exactly partitioned
// into live slots and free-list slots (no leak, no double-free).
func TestInternerGenerationProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nw := NewNetwork(Config{Workers: 1})

		// Seed population, weakly connected.
		var ids []ident.ID
		for len(ids) < 12 {
			id := ident.ID(rng.Uint64() | 1)
			if nw.node(id) == nil {
				nw.AddPeer(id)
				ids = append(ids, id)
			}
		}
		for i := 1; i < len(ids); i++ {
			nw.SeedEdge(ref.Real(ids[i-1]), ref.Real(ids[i]), graph.Unmarked)
		}

		// stale holds handles of departed incarnations; they must stay
		// dead forever.
		stale := make(map[handle]ident.ID)
		live := make(map[ident.ID]handle)
		for _, id := range ids {
			live[id] = nw.node(id).h()
		}
		depart := func(id ident.ID) {
			stale[live[id]] = id
			delete(live, id)
		}

		for op := 0; op < 300; op++ {
			switch k := rng.Intn(10); {
			case k < 3 && len(live) > 2: // fail
				id := ids[rng.Intn(len(ids))]
				if _, ok := live[id]; ok {
					if err := nw.Fail(id); err != nil {
						t.Fatal(err)
					}
					depart(id)
				}
			case k < 5 && len(live) > 2: // leave
				id := ids[rng.Intn(len(ids))]
				if _, ok := live[id]; ok {
					if err := nw.Leave(id); err != nil {
						t.Fatal(err)
					}
					depart(id)
				}
			case k < 8: // rejoin a departed id, or join a fresh one
				var id ident.ID
				if rng.Intn(2) == 0 {
					for _, cand := range ids {
						if _, ok := live[cand]; !ok {
							id = cand
							break
						}
					}
				}
				if id == 0 {
					id = ident.ID(rng.Uint64() | 1)
					if nw.node(id) != nil {
						continue
					}
					ids = append(ids, id)
				}
				var contact ident.ID
				for c := range live {
					contact = c
					break
				}
				if err := nw.Join(id, contact); err != nil {
					t.Fatal(err)
				}
				h := nw.node(id).h()
				if _, wasStale := stale[h]; wasStale {
					t.Fatalf("seed=%d op=%d: rejoin of %s resurrected a stale handle (slot %d gen %d)",
						seed, op, id, h.slot(), h.gen())
				}
				live[id] = h
			default:
				nw.Step()
			}

			// Invariant 1: live handles resolve to their peers, stale
			// handles resolve to nothing.
			for id, h := range live {
				n := nw.pt.byHandle(h)
				if n == nil || n.id != id {
					t.Fatalf("seed=%d op=%d: live handle of %s does not resolve to it", seed, op, id)
				}
			}
			for h, id := range stale {
				if n := nw.pt.byHandle(h); n != nil {
					t.Fatalf("seed=%d op=%d: stale handle of departed %s resolves to %s (slot %d gen %d)",
						seed, op, id, n.id, h.slot(), h.gen())
				}
			}

			// Invariant 2: the slot space partitions into live slots and
			// free-list slots — every slot accounted for exactly once.
			onFree := make(map[uint32]bool, len(nw.pt.free))
			for _, s := range nw.pt.free {
				if onFree[s] {
					t.Fatalf("seed=%d op=%d: slot %d double-freed", seed, op, s)
				}
				onFree[s] = true
			}
			liveSlots := 0
			for s, n := range nw.pt.nodes {
				switch {
				case n == nil && !onFree[uint32(s)]:
					t.Fatalf("seed=%d op=%d: empty slot %d leaked off the free-list", seed, op, s)
				case n != nil && onFree[uint32(s)]:
					t.Fatalf("seed=%d op=%d: live slot %d is on the free-list", seed, op, s)
				case n != nil:
					liveSlots++
					if got, ok := nw.pt.lookup(n.id); !ok || got != uint32(s) {
						t.Fatalf("seed=%d op=%d: idxOf out of sync for %s", seed, op, n.id)
					}
				}
			}
			if liveSlots != nw.pt.live || liveSlots != len(live) || len(nw.pt.free) != nw.pt.span()-liveSlots {
				t.Fatalf("seed=%d op=%d: slot accounting off: live=%d pt.live=%d free=%d span=%d",
					seed, op, liveSlots, nw.pt.live, len(nw.pt.free), nw.pt.span())
			}
		}

		// The network must still be steppable to quiescence afterwards.
		for r := 0; r < 20000 && !nw.Quiescent(); r++ {
			nw.Step()
		}
		if !nw.Quiescent() {
			t.Fatalf("seed=%d: network did not quiesce after churn sequence", seed)
		}
	}
}

// TestHandlePacking pins the handle bit layout.
func TestHandlePacking(t *testing.T) {
	h := mkHandle(7, 42)
	if h.slot() != 7 || h.gen() != 42 {
		t.Fatalf("mkHandle(7,42) unpacked to (%d,%d)", h.slot(), h.gen())
	}
	if mkHandle(7, 43) == h || mkHandle(8, 42) == h {
		t.Fatal("distinct (slot, gen) pairs pack to the same handle")
	}
}
