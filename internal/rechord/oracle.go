package rechord

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// Ideal is the unique stable Re-Chord topology for a fixed set of
// peers, computed directly from the sorted identifiers (the oracle the
// experiments compare converged states against, and the basis of the
// "almost stable" detector of Section 5).
type Ideal struct {
	reals []ident.ID // sorted peer identifiers
	nodes []ref.Ref  // all real+virtual nodes, sorted by Less
	level map[ident.ID]int

	// nu holds the desired unmarked out-neighborhood per node; ring
	// the desired ring edges; rl/rr the desired closest-real values.
	nu   map[ref.Ref]ref.Set
	ring map[ref.Ref]ref.Set
	rl   map[ref.Ref]ref.Ref
	rr   map[ref.Ref]ref.Ref
}

// ComputeIdeal builds the stable topology for the given peers.
func ComputeIdeal(reals []ident.ID) *Ideal {
	id := &Ideal{
		reals: append([]ident.ID(nil), reals...),
		level: make(map[ident.ID]int),
		nu:    make(map[ref.Ref]ref.Set),
		ring:  make(map[ref.Ref]ref.Set),
		rl:    make(map[ref.Ref]ref.Ref),
		rr:    make(map[ref.Ref]ref.Ref),
	}
	ident.Sort(id.reals)
	if len(id.reals) == 0 {
		return id
	}

	// m per peer is determined by the distance to the clockwise real
	// successor (the closest real node the peer knows in the stable
	// state).
	for i, u := range id.reals {
		succ := id.reals[(i+1)%len(id.reals)]
		m := ident.MaxLevel
		if succ != u {
			m = ident.LevelForDist(ident.Dist(u, succ))
		}
		id.level[u] = m
		for l := 0; l <= m; l++ {
			id.nodes = append(id.nodes, ref.Virtual(u, l))
		}
	}
	sort.Slice(id.nodes, func(i, j int) bool { return id.nodes[i].Less(id.nodes[j]) })

	// Sorted-list neighborhoods plus closest reals.
	for k, x := range id.nodes {
		var nu ref.Set
		if k > 0 {
			nu.Add(id.nodes[k-1])
		}
		if k+1 < len(id.nodes) {
			nu.Add(id.nodes[k+1])
		}
		if v, ok := id.closestRealLeft(k); ok {
			nu.Add(v)
			id.rl[x] = v
		}
		if v, ok := id.closestRealRight(k); ok {
			nu.Add(v)
			id.rr[x] = v
		}
		nu.Remove(x)
		id.nu[x] = nu
	}

	// Ring edges: the global maximum holds a ring edge to the global
	// minimum (which misses a left neighbor) and vice versa.
	if len(id.nodes) > 1 {
		mn, mx := id.nodes[0], id.nodes[len(id.nodes)-1]
		s := ref.NewSet(mn)
		id.ring[mx] = s
		s2 := ref.NewSet(mx)
		id.ring[mn] = s2
	}
	return id
}

func (id *Ideal) closestRealLeft(k int) (ref.Ref, bool) {
	x := id.nodes[k].ID()
	// reals is sorted; find max real strictly below x.
	i := sort.Search(len(id.reals), func(i int) bool { return id.reals[i] >= x })
	if i == 0 {
		return ref.Ref{}, false
	}
	return ref.Real(id.reals[i-1]), true
}

func (id *Ideal) closestRealRight(k int) (ref.Ref, bool) {
	x := id.nodes[k].ID()
	i := sort.Search(len(id.reals), func(i int) bool { return id.reals[i] > x })
	if i == len(id.reals) {
		return ref.Ref{}, false
	}
	return ref.Real(id.reals[i]), true
}

// Nodes returns all nodes of the stable topology in increasing order.
func (id *Ideal) Nodes() []ref.Ref { return id.nodes }

// Level returns the stable m of the peer.
func (id *Ideal) Level(u ident.ID) int { return id.level[u] }

// NumVirtual returns the total number of virtual nodes (levels >= 1).
func (id *Ideal) NumVirtual() int {
	n := 0
	for _, m := range id.level {
		n += m
	}
	return n
}

// Nu returns the desired unmarked out-neighborhood of a node.
func (id *Ideal) Nu(x ref.Ref) ref.Set { return id.nu[x] }

// Graph returns the desired topology as a graph over all nodes, with
// unmarked and ring edges (connection edges are transient flow and not
// part of the target).
func (id *Ideal) Graph() *graph.Graph {
	g := graph.New()
	for _, x := range id.nodes {
		g.AddNode(x)
		for _, y := range id.nu[x].Slice() {
			g.AddEdge(x, y, graph.Unmarked)
		}
		for _, y := range id.ring[x].Slice() {
			g.AddEdge(x, y, graph.Ring)
		}
	}
	return g
}

// AlmostStable reports whether every desired edge of the stable
// topology is already present in the network — the paper's "almost
// stable" state of Figure 6 (extra edges are allowed).
func (id *Ideal) AlmostStable(nw *Network) bool {
	for _, x := range id.nodes {
		n := nw.Peer(x.Owner)
		if n == nil {
			return false
		}
		v := n.VNode(x.Level)
		if v == nil {
			return false
		}
		for _, y := range id.nu[x].Slice() {
			if !v.Nu.Contains(y) {
				return false
			}
		}
		for _, y := range id.ring[x].Slice() {
			if !v.Nr.Contains(y) {
				return false
			}
		}
	}
	return true
}

// Matches verifies that the network state is exactly the stable
// topology: the same virtual nodes, exactly the desired unmarked and
// ring edges, and correct rl/rr everywhere. Connection edges are
// steady-state flow and only checked for plausibility (they must point
// from below to an existing node). A nil error means the state is the
// legal stable state.
func (id *Ideal) Matches(nw *Network) error {
	peers := nw.Peers()
	if len(peers) != len(id.reals) {
		return fmt.Errorf("peer count %d, want %d", len(peers), len(id.reals))
	}
	for i, u := range id.reals {
		if peers[i] != u {
			return fmt.Errorf("peer set mismatch at %d: %s vs %s", i, peers[i], u)
		}
	}
	exists := make(map[ref.Ref]bool, len(id.nodes))
	for _, x := range id.nodes {
		exists[x] = true
	}
	for _, u := range id.reals {
		n := nw.Peer(u)
		if got, want := n.MaxLevel(), id.level[u]; got != want {
			return fmt.Errorf("peer %s: m = %d, want %d", u, got, want)
		}
		for _, l := range n.Levels() {
			x := ref.Virtual(u, l)
			v := n.VNode(l)
			if !v.Nu.Equal(id.nu[x]) {
				return fmt.Errorf("node %s: Nu = %s, want %s", x, &v.Nu, id.nu[x].String())
			}
			// Ring edges: the two edges between the global extremes are
			// required; additionally, the stable state carries in-flight
			// ring edges — the extremes re-create their edge every round
			// at their locally known max/min, and the edge travels hop by
			// hop to the true extreme where it is absorbed — so any other
			// ring edge must target one of the two global extremes.
			wantRing := id.ring[x]
			for _, y := range wantRing.Slice() {
				if !v.Nr.Contains(y) {
					return fmt.Errorf("node %s: missing ring edge to %s", x, y)
				}
			}
			if len(id.nodes) > 1 {
				mn, mx := id.nodes[0], id.nodes[len(id.nodes)-1]
				for _, y := range v.Nr.Slice() {
					if y != mn && y != mx {
						return fmt.Errorf("node %s: stray ring edge to %s", x, y)
					}
				}
			}
			if wrl, ok := id.rl[x]; ok {
				if !v.HasRL || v.RL != wrl {
					return fmt.Errorf("node %s: rl = %v(%v), want %s", x, v.RL, v.HasRL, wrl)
				}
			} else if v.HasRL {
				return fmt.Errorf("node %s: rl set to %s, want unset", x, v.RL)
			}
			if wrr, ok := id.rr[x]; ok {
				if !v.HasRR || v.RR != wrr {
					return fmt.Errorf("node %s: rr = %v(%v), want %s", x, v.RR, v.HasRR, wrr)
				}
			} else if v.HasRR {
				return fmt.Errorf("node %s: rr set to %s, want unset", x, v.RR)
			}
			for _, y := range v.Nc.Slice() {
				if !exists[y] {
					return fmt.Errorf("node %s: connection edge to nonexistent %s", x, y)
				}
				if x.ID() >= y.ID() {
					// Connection edges always point from below: created
					// between consecutive siblings and forwarded to nodes
					// strictly below the target.
					return fmt.Errorf("node %s: connection edge to %s points the wrong way", x, y)
				}
			}
		}
	}
	return nil
}

// ChordEdgeSlots counts Chord's edge slots with multiplicity: one
// successor pointer per peer plus one finger slot per virtual level.
// Section 2.2's budget |E_u ∪ E_r| <= 4 |E_Chord| counts slots this
// way (each Re-Chord node contributes at most 4 outgoing unmarked
// edges, and there is one Re-Chord node per Chord slot).
func (id *Ideal) ChordEdgeSlots() int {
	slots := len(id.reals)
	for _, m := range id.level {
		slots += m
	}
	return slots
}

// ChordGraph builds the classic Chord topology (Section 1.1) over the
// peers: successor edges plus the fingers p_i(v), the node closest
// clockwise to v + 1/2^i. Used to verify Fact 2.1 (Chord is a subgraph
// of stable Re-Chord projected on real nodes).
func (id *Ideal) ChordGraph() *graph.Graph {
	g := graph.New()
	for _, u := range id.reals {
		g.AddNode(ref.Real(u))
	}
	if len(id.reals) < 2 {
		return g
	}
	for i, u := range id.reals {
		succ := id.reals[(i+1)%len(id.reals)]
		g.AddEdge(ref.Real(u), ref.Real(succ), graph.Unmarked)
		for lvl := 1; lvl <= id.level[u]; lvl++ {
			target := ident.Sibling(u, lvl)
			f := ident.Successor(id.reals, target)
			if f != u {
				g.AddEdge(ref.Real(u), ref.Real(f), graph.Unmarked)
			}
		}
	}
	return g
}
