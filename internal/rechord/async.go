package rechord

import (
	"container/heap"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ident"
)

// AsyncRunner executes the protocol under an asynchronous adversary,
// one step beyond the paper's synchronous model (its conclusion asks
// whether the approach extends; Clouser et al. treat linearization
// asynchronously). Per step, each frontier peer is activated with
// probability ActivationProb — idle peers neither read nor send — and
// messages are delivered after a delay drawn from the pluggable
// DelayModel. Rule guards read whatever the other peers' published
// state happens to be at activation time, so all the staleness the
// synchronous model forbids is exercised here.
//
// The runner is an event-driven Scheduler over the same dirty-set
// infrastructure as the synchronous round engine: a priority queue of
// activation and delivery events. Only frontier peers hold a pending
// activation event (the per-step Bernoulli(p) coin flips collapse into
// one geometric draw per wake-up), and the level and published-rl/rr
// caches update by diff at every batch barrier — the wholesale
// rebuildLevels/rebuildView plus full peer scan of the original
// implementation is gone from the hot path entirely. A quiescent
// network with an empty delivery queue makes Step O(1).
//
// Message flow is two-tier, matching how the activity-tracked engine
// models the paper's repeating output flow:
//
//   - A link contribution that CHANGED at a sender's run travels as
//     one-shot messages with a drawn delay, consumed exactly once by
//     the recipient — the faithful per-emission semantics. Replaying
//     changing (transient) versions out of a standing bucket instead
//     provably destabilizes the system: when the delay spread is
//     comparable to the inter-activation gap, repeated re-consumption
//     of already superseded flow keeps re-perturbing settled regions
//     and the network never quiesces.
//   - A link contribution that survived two consecutive runs unchanged
//     is run-stable: it is installed as the sender's standing
//     per-sender inbox bucket (without waking the recipient, which
//     already received the version's one-shots) and from then on
//     represents the sender's repeating flow — recipients re-consume
//     it at every activation, and a peer at a local fixed point costs
//     nothing while still "sending" every step.
//
// With ActivationProb = 1 and every delay equal to 1, the runner
// executes the synchronous schedule step for step: the global state —
// edge sets, rl/rr, and the pending-message multiset (a one-shot in
// flight and a standing bucket carry the same messages) — agrees with
// Network.Step round for round, churn included (the lockstep property
// test proves it).
//
// Fairness (every awake peer activated in finite expected time, every
// message delivered after a bounded draw) holds for any ActivationProb
// > 0 and any delay model with a finite cap, which is the standard
// premise for asynchronous self-stabilization.
type AsyncRunner struct {
	nw  *Network
	cfg AsyncConfig
	rng *rand.Rand

	step       int // asynchronous steps executed; independent of nw.round
	lastChange int // most recent step whose execution changed the state

	events eventQueue
	seq    uint64 // deterministic heap tiebreak

	// sched marks peers holding a pending activation event, as a
	// slot-indexed generation stamp (gen+1; 0 = none): a slot released
	// and re-tenanted invalidates the stamp by construction, without
	// the runner having to observe the departure.
	sched []uint32

	deliveries int                    // pending delivery events
	inflight   int                    // messages inside pending delivery events
	fIdx       int                    // prefix of nw.frontier already drained
	active     []uint32               // batch scratch (slots)
	pend       []uint32               // drain scratch (slots)
	newBy      map[ident.ID][]Message // routing scratch
	oldBy      map[ident.ID][]Message // routing scratch
	touched    []ident.ID             // routing scratch
	fp         uint64                 // event-order fingerprint
}

// AsyncConfig parameterizes the adversary.
type AsyncConfig struct {
	// ActivationProb is the per-step probability that a frontier peer
	// executes its rules. 1 with delay 1 degenerates to the synchronous
	// schedule.
	ActivationProb float64
	// MaxDelay is the maximum message delay in steps (minimum 1) of the
	// default uniform delay model. Ignored when Delay is set.
	MaxDelay int
	// Delay, when non-nil, replaces the uniform 1..MaxDelay model; see
	// UniformDelay, GeometricDelay, ParetoDelay and LinkDelay.
	Delay DelayModel
}

const (
	evActivation = iota
	evDelivery
)

// asyncEvent is one entry of the scheduler's priority queue: either
// "peer activates at step `at`" or "these one-shot messages reach the
// recipient at step `at`". The target peer is addressed by its handle
// (slot + generation) for the O(1) common case, with the identifier
// kept alongside: a peer that departed and re-joined under the same
// identifier before the event fired still receives it, exactly like
// the id-keyed queue did.
type asyncEvent struct {
	at         int
	seq        uint64
	kind       int
	peer       ident.ID // activation: who runs; delivery: the recipient
	hidx, hgen uint32   // the target incarnation's handle
	msgs       []Message
}

// eventQueue is a min-heap ordered by (at, seq): virtual time first,
// then deterministic insertion order.
type eventQueue []*asyncEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*asyncEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// NewAsyncRunner wraps a network for asynchronous execution. The
// network must not be stepped synchronously while the runner is used;
// Config.FullSweep is ignored (the asynchronous scheduler is always
// incremental). Standing buckets left by earlier synchronous rounds
// remain valid: they are the senders' repeating flow under any
// schedule.
func NewAsyncRunner(nw *Network, cfg AsyncConfig, rng *rand.Rand) *AsyncRunner {
	if cfg.ActivationProb <= 0 || cfg.ActivationProb > 1 {
		cfg.ActivationProb = 0.5
	}
	if cfg.MaxDelay < 1 {
		cfg.MaxDelay = 1
	}
	if cfg.Delay == nil {
		cfg.Delay = UniformDelay{Max: cfg.MaxDelay}
	} else {
		// MaxDelay only sizes step budgets when a custom model is set;
		// infer a typical delay from the known models so callers need
		// not duplicate their parameters.
		switch m := cfg.Delay.(type) {
		case UniformDelay:
			if m.Max > cfg.MaxDelay {
				cfg.MaxDelay = m.Max
			}
		case GeometricDelay:
			if m.P > 0 && m.P < 1 {
				if d := int(2 / m.P); d > cfg.MaxDelay {
					cfg.MaxDelay = d
				}
			}
		case ParetoDelay:
			if d := m.Max; d > 0 && d > cfg.MaxDelay {
				cfg.MaxDelay = d
			} else if m.Max <= 0 && cfg.MaxDelay < 8 {
				cfg.MaxDelay = 8
			}
		case LinkDelay:
			if m.Max > cfg.MaxDelay {
				cfg.MaxDelay = m.Max
			}
		}
	}
	return &AsyncRunner{nw: nw, cfg: cfg, rng: rng}
}

// eventTarget resolves an event's target peer: the handle while the
// incarnation is alive, falling back to the identifier for a peer that
// re-joined under the same id (today's tenant of the name receives
// what was addressed to it, as under the id-keyed queue).
func (a *AsyncRunner) eventTarget(ev *asyncEvent) (*RealNode, uint32, bool) {
	pt := &a.nw.pt
	if int(ev.hidx) < len(pt.nodes) && pt.gens[ev.hidx] == ev.hgen {
		if n := pt.nodes[ev.hidx]; n != nil {
			return n, ev.hidx, true
		}
	}
	if slot, ok := pt.lookup(ev.peer); ok {
		return pt.nodes[slot], slot, true
	}
	return nil, 0, false
}

// isScheduled/setScheduled/clearScheduled manage the slot-indexed
// activation stamps (see the sched field).
func (a *AsyncRunner) isScheduled(n *RealNode) bool {
	return int(n.idx) < len(a.sched) && a.sched[n.idx] == n.gen+1
}

func (a *AsyncRunner) setScheduled(n *RealNode) {
	for int(n.idx) >= len(a.sched) {
		a.sched = append(a.sched, 0)
	}
	a.sched[n.idx] = n.gen + 1
}

func (a *AsyncRunner) clearScheduled(n *RealNode) {
	if int(n.idx) < len(a.sched) && a.sched[n.idx] == n.gen+1 {
		a.sched[n.idx] = 0
	}
}

// Network returns the wrapped network.
func (a *AsyncRunner) Network() *Network { return a.nw }

// Steps returns the number of asynchronous steps executed. The
// network's synchronous round counter is untouched by the runner, so
// round-based telemetry (epochs, event timestamps) never conflates
// rounds with steps.
func (a *AsyncRunner) Steps() int { return a.step }

// Time is Steps under the Scheduler interface's name.
func (a *AsyncRunner) Time() int { return a.step }

// LastChange returns the most recent step whose execution changed the
// global state (0 if none did yet).
func (a *AsyncRunner) LastChange() int { return a.lastChange }

// Wake schedules the peer to run, like Network.Wake; the activation
// coin is first flipped on the next step.
func (a *AsyncRunner) Wake(id ident.ID) { a.nw.Wake(id) }

// Quiescent reports whether the asynchronous execution is at its fixed
// point: no frontier peer and no pending delivery that could still
// change anything. Every further Step is the identity on the global
// state.
func (a *AsyncRunner) Quiescent() bool {
	return a.deliveries == 0 && a.nw.Quiescent()
}

// InFlight returns the number of messages currently in flight:
// standing buckets, one-shot inbox entries, and messages inside
// pending delivery events.
func (a *AsyncRunner) InFlight() int { return a.inflight + a.nw.InFlight() }

// StepBudgetScale reports how many asynchronous steps one synchronous
// round is worth, for sizing run budgets: activation slows the
// frontier by 1/p and deliveries add up to MaxDelay steps of latency.
func (a *AsyncRunner) StepBudgetScale() float64 {
	d := float64(a.cfg.MaxDelay)
	if d < 1 {
		d = 1
	}
	return (d + 1) / a.cfg.ActivationProb
}

// EventFingerprint returns a hash over the ordered stream of executed
// events (activations and deliveries with their step stamps). Two runs
// with the same seed, configuration and operation sequence produce the
// same fingerprint — the determinism contract's checkable form.
func (a *AsyncRunner) EventFingerprint() uint64 { return a.fp }

func (a *AsyncRunner) mixEvent(kind, at int, id ident.ID) {
	h := a.fp
	if h == 0 {
		h = 14695981039346656037
	}
	for _, w := range [...]uint64{uint64(kind), uint64(at), uint64(id)} {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= 1099511628211
		}
	}
	a.fp = h
}

// activationWait draws the number of steps until a newly woken peer's
// Bernoulli(p) activation coin first comes up, starting with the
// current step: 0 means "activates immediately". One inversion draw
// replaces the per-step coin flips, which is what makes idle time free.
func (a *AsyncRunner) activationWait() int {
	return geometricDraw(a.rng, a.cfg.ActivationProb)
}

// drainFrontier scans the frontier entries appended since the last
// drain and gives every newly dirty peer an activation event. start is
// the step of the peer's first coin flip; when immediate is non-nil a
// zero wait activates the peer in the current batch (its flip at
// `start` came up heads), otherwise the event goes through the queue.
func (a *AsyncRunner) drainFrontier(start int, immediate *[]uint32) {
	nw := a.nw
	fr := nw.frontier
	if a.fIdx < len(fr) {
		// The frontier is appended to in peer-scan order by
		// wakeDependents; sort the new entries by identifier so the rng
		// draw sequence (and hence the whole schedule) is
		// seed-deterministic.
		pend := a.pend[:0]
		for _, slot := range fr[a.fIdx:] {
			if n := nw.pt.nodes[slot]; n != nil && n.dirty && !a.isScheduled(n) {
				pend = append(pend, slot)
			}
		}
		a.fIdx = len(fr)
		nw.sortSlotsByID(pend)
		for _, slot := range pend {
			n := nw.pt.nodes[slot]
			if n == nil || !n.dirty || a.isScheduled(n) {
				continue
			}
			at := start + a.activationWait()
			if immediate != nil && at <= start {
				n.dirty = false
				*immediate = append(*immediate, slot)
				continue
			}
			a.setScheduled(n)
			a.seq++
			heap.Push(&a.events, &asyncEvent{at: at, seq: a.seq, kind: evActivation, peer: n.id, hidx: n.idx, hgen: n.gen})
		}
		a.pend = pend
	}
	// Compact the frontier once the stale prefix dominates, so a long
	// asynchronous run cannot grow it without bound (the synchronous
	// engine truncates it every round; the runner owns it instead).
	if len(fr) > 4*nw.NumPeers()+64 {
		kept := fr[:0]
		for _, slot := range fr {
			if n := nw.pt.nodes[slot]; n != nil && n.dirty {
				kept = append(kept, slot)
			}
		}
		nw.frontier = kept
		a.fIdx = len(kept)
	}
}

// route is the runner's barrier output routing, called for every
// active peer with whether the run changed its total output and its
// own protocol state. Per recipient link:
//
//   - An unchanged contribution is (if not yet) installed as the
//     standing bucket, silently: its content already reached the
//     recipient when it last changed, the bucket is just the repeating
//     representation from then on.
//   - A changed contribution of a STATE-CHANGING run revokes the
//     standing bucket and travels as one-shot messages after a drawn
//     delay (delay 1 lands in the recipient's inbox at this barrier,
//     the synchronous timing: it is consumed next step). This is the
//     faithful per-emission semantics for knowledge handoffs: a rule-4
//     forward moves an edge out of the sender's state into the
//     message, so it must arrive exactly once and never be destroyed
//     by a bucket rewrite — and, conversely, must not be replayed out
//     of a bucket after the system moved past it.
//   - A changed contribution of a STATE-STABLE run is rewritten into
//     the standing bucket exactly like the synchronous barrier does.
//     These are the self-regenerating relay flows (rules 3, 5 and 6
//     keep re-deriving them from unchanged state every run); carrying
//     them in buckets gives every downstream run the same input view,
//     so relay chains stop flapping with arrival phases and the
//     network can actually quiesce. Either failure mode is real:
//     one-shot relays never settle (phase-dependent outputs forever),
//     bucket-carried handoffs destabilize convergence (stale replays).
//
// Recipients are visited in identifier order so the rng draw sequence
// is reproducible.
func (a *AsyncRunner) route(n *RealNode, out []Message, outChanged, stateChanged bool) {
	nw := a.nw
	if a.newBy == nil {
		a.newBy = make(map[ident.ID][]Message)
		a.oldBy = make(map[ident.ID][]Message)
	}
	newBy, oldBy, touched := a.newBy, a.oldBy, a.touched[:0]
	for _, m := range out {
		if _, ok := newBy[m.To.Owner]; !ok {
			touched = append(touched, m.To.Owner)
		}
		newBy[m.To.Owner] = append(newBy[m.To.Owner], m)
	}
	// tpl is the template the standing buckets will reference: the batch
	// template when the output changed (Network.routeFlow, adopted as
	// lastFlow right after this callback), the current lastFlow
	// otherwise (its spans are the unchanged output, by the settle
	// predicate).
	tpl := nw.routeFlow
	if tpl == nil {
		tpl = n.lastFlow
	}
	if outChanged && n.lastFlow != nil {
		lf := n.lastFlow
		for siOld := range lf.spans {
			owner := lf.spans[siOld].owner
			if _, inNew := newBy[owner]; !inNew {
				touched = append(touched, owner)
			}
			oldBy[owner] = lf.appendSpan(oldBy[owner], int32(siOld))
		}
	}
	ident.Sort(touched)
	h := n.h()
	for _, dstID := range touched {
		newC := newBy[dstID]
		changed := outChanged && !sameMessages(oldBy[dstID], newC)
		dstSlot, alive := nw.pt.lookup(dstID)
		var dst *RealNode
		if alive {
			dst = nw.pt.nodes[dstSlot]
		}
		switch {
		case !changed:
			// Run-stable contribution: ensure the standing bucket holds
			// it, without waking the recipient.
			if alive && len(newC) > 0 {
				nw.installBucketQuiet(dst, h, tpl, tpl.findSpan(dstID))
			}
		case !stateChanged:
			// Relay flow: synchronous bucket rewrite, waking the
			// recipient when its standing input changed (an absent span
			// deletes the bucket).
			nw.rerouteSpan(h, dstID, tpl, tpl.findSpan(dstID))
		case len(newC) == 0:
			if nw.dropBucket(dst, alive, h) {
				nw.markDirtyIdx(dstSlot)
			}
		default:
			nw.dropBucket(dst, alive, h)
			if !alive {
				continue
			}
			d := clampDelay(a.cfg.Delay.Delay(a.rng, n.id, dstID), 0)
			if d <= 1 {
				// Synchronous timing: lands now, consumed next step.
				a.mixEvent(evDelivery, a.step, dstID)
				dst.inbox = append(dst.inbox, newC...)
				nw.markDirtyIdx(dstSlot)
				continue
			}
			a.seq++
			a.deliveries++
			a.inflight += len(newC)
			heap.Push(&a.events, &asyncEvent{at: a.step + d, seq: a.seq, kind: evDelivery, peer: dstID, hidx: dst.idx, hgen: dst.gen, msgs: newC})
		}
	}
	for _, dstID := range touched {
		delete(newBy, dstID)
		delete(oldBy, dstID)
	}
	a.touched = touched
}

// Step advances virtual time by one: deliver the due one-shot
// messages, activate the frontier peers whose coin came up, run their
// rules as one phased batch (identical to a synchronous round barrier
// over that subset), and route the outputs through the delay model. A
// step with nothing due is O(1).
func (a *AsyncRunner) Step() RoundStats {
	a.step++
	now := a.step
	nw := a.nw
	nw.met.Steps.Inc()
	stats := RoundStats{Round: now}
	changed := false

	// Fire due events: deliveries land in the recipients' inboxes and
	// wake them; due activations form this step's batch. Delivery
	// events are tallied locally and flushed with one atomic add below
	// — a quiescent step (empty heap, empty frontier) pays only the
	// Steps increment above.
	fired := 0
	active := a.active[:0]
	for len(a.events) > 0 && a.events[0].at <= now {
		ev := heap.Pop(&a.events).(*asyncEvent)
		switch ev.kind {
		case evDelivery:
			a.deliveries--
			a.inflight -= len(ev.msgs)
			fired++
			if dst, slot, ok := a.eventTarget(ev); ok {
				a.mixEvent(evDelivery, ev.at, ev.peer)
				dst.inbox = append(dst.inbox, ev.msgs...)
				nw.markDirtyIdx(slot)
				changed = true
			}
		case evActivation:
			n, slot, ok := a.eventTarget(ev)
			if ok {
				a.clearScheduled(n)
				if n.dirty {
					n.dirty = false
					active = append(active, slot)
				}
			}
		}
	}

	// Peers woken since the last step — external churn and seeding, and
	// the deliveries just applied — flip their first coin at this step:
	// a zero wait joins the current batch.
	a.drainFrontier(now, &active)

	if len(active) > 0 {
		nw.sortSlotsByID(active)
		// Dedup: a peer whose activation event fired can re-enter via
		// the immediate path when a same-step delivery re-dirtied it
		// after its dirty flag was already cleared — the flag-based
		// dedup cannot catch that, and a duplicate slot would run the
		// same node concurrently in the batch. One activation per peer
		// per step; the delivered messages are consumed by that run.
		uniq := active[:1]
		for _, slot := range active[1:] {
			if slot != uniq[len(uniq)-1] {
				uniq = append(uniq, slot)
			}
		}
		active = uniq
		for _, slot := range active {
			a.mixEvent(evActivation, now, nw.pt.ids[slot])
		}
		stats.Activated = len(active)
		if nw.runBatch(active, true, a.route, &stats) {
			changed = true
		}
	}
	a.active = active[:0]

	// Peers re-dirtied at the barrier (their own unsettled run, bucket
	// revocations, wakeDependents) flip their first coin next step.
	a.drainFrontier(now+1, nil)

	if fired > 0 {
		nw.met.AsyncDeliveries.Add(uint64(fired))
	}
	if changed {
		a.lastChange = now
	}
	stats.MessagesSent = nw.bucketMsgs
	return stats
}

// RunUntilLegal executes steps until the network state matches the
// ideal stable topology for its current peers (checked at quiescence
// or every `every` steps), or the step budget runs out. It reports the
// total steps taken and whether the legal state was reached.
func (a *AsyncRunner) RunUntilLegal(idl *Ideal, maxSteps, every int) (int, bool) {
	if every < 1 {
		every = 1
	}
	for s := 0; s < maxSteps; s++ {
		a.Step()
		if (s%every == 0 || a.Quiescent()) && idl.Matches(a.nw) == nil {
			return a.step, true
		}
	}
	return a.step, idl.Matches(a.nw) == nil
}

// PendingMessages returns the number of messages currently in flight
// (InFlight under the legacy name).
func (a *AsyncRunner) PendingMessages() int { return a.InFlight() }

// PendingByKind breaks the in-flight messages down by edge kind, for
// the async experiments.
func (a *AsyncRunner) PendingByKind() map[graph.Kind]int {
	out := map[graph.Kind]int{}
	for _, ev := range a.events {
		if ev.kind != evDelivery {
			continue
		}
		for _, msg := range ev.msgs {
			out[msg.Kind]++
		}
	}
	for _, node := range a.nw.pt.nodes {
		if node == nil {
			continue
		}
		for _, msg := range node.inbox {
			out[msg.Kind]++
		}
		for _, b := range node.in {
			sp := b.flow.spans[b.span]
			for _, pm := range b.flow.packed[sp.start:sp.end] {
				out[graph.Kind(pm.meta>>pmKindShift)]++
			}
		}
	}
	return out
}

var _ Scheduler = (*AsyncRunner)(nil)
