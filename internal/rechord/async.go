package rechord

import (
	"math/rand"

	"repro/internal/graph"
)

// AsyncRunner executes the protocol under an asynchronous adversary,
// one step beyond the paper's synchronous model (its conclusion asks
// whether the approach extends; Clouser et al. treat linearization
// asynchronously). Per step, each peer is activated independently with
// probability ActivationProb — idle peers neither read nor send — and
// every message is delivered after a random delay of 1..MaxDelay
// steps. Rule guards read whatever the other peers' published state
// happens to be at activation time, so all the staleness the
// synchronous model forbids is exercised here.
//
// Fairness (every peer activated infinitely often, every message
// eventually delivered) is guaranteed in expectation for any
// ActivationProb > 0 and finite MaxDelay, which is the standard
// premise for asynchronous self-stabilization.
type AsyncRunner struct {
	nw  *Network
	cfg AsyncConfig
	rng *rand.Rand

	pending []delayedMessage
	step    int
}

// AsyncConfig parameterizes the adversary.
type AsyncConfig struct {
	// ActivationProb is the per-step probability that a peer executes
	// its rules. 1 with MaxDelay 1 degenerates to the synchronous
	// model.
	ActivationProb float64
	// MaxDelay is the maximum message delay in steps (minimum 1).
	MaxDelay int
}

type delayedMessage struct {
	msg     Message
	readyAt int
}

// NewAsyncRunner wraps a network for asynchronous execution. The
// network must not be stepped synchronously while the runner is used.
func NewAsyncRunner(nw *Network, cfg AsyncConfig, rng *rand.Rand) *AsyncRunner {
	if cfg.ActivationProb <= 0 || cfg.ActivationProb > 1 {
		cfg.ActivationProb = 0.5
	}
	if cfg.MaxDelay < 1 {
		cfg.MaxDelay = 1
	}
	// Absorb any standing flow left by synchronous rounds into one-shot
	// deliveries: the asynchronous adversary has no repeating-output
	// schedule, so buckets would otherwise replay stale messages.
	for _, n := range nw.nodes {
		if len(n.in) > 0 {
			for _, ms := range n.in {
				n.inbox = append(n.inbox, ms...)
			}
			n.in = nil
		}
	}
	nw.bucketMsgs = 0
	return &AsyncRunner{nw: nw, cfg: cfg, rng: rng}
}

// Network returns the wrapped network.
func (a *AsyncRunner) Network() *Network { return a.nw }

// Steps returns the number of asynchronous steps executed.
func (a *AsyncRunner) Steps() int { return a.step }

// Step executes one asynchronous step: deliver due messages, activate
// a random peer subset, collect their output with fresh random delays.
// It returns the number of peers activated.
func (a *AsyncRunner) Step() int {
	a.step++
	nw := a.nw

	// Deliver messages whose delay expired into the peers' inboxes.
	keep := a.pending[:0]
	for _, dm := range a.pending {
		if dm.readyAt > a.step {
			keep = append(keep, dm)
			continue
		}
		if dst, ok := nw.nodes[dm.msg.To.Owner]; ok {
			dst.inbox = append(dst.inbox, dm.msg)
		}
	}
	a.pending = keep

	// The asynchronous runner bypasses the synchronous scheduler, so
	// the level and published-state caches are refreshed wholesale to
	// whatever the peers' states happen to be at this step.
	nw.rebuildLevels()
	nw.rebuildView()
	activated := 0
	for _, id := range nw.order {
		if a.rng.Float64() >= a.cfg.ActivationProb {
			continue
		}
		activated++
		n := nw.nodes[id]
		nw.deliver(n)
		nw.purge(n)
		// The async runner keeps no pre-activation copy; stamp every
		// activated peer so epoch-keyed caches stay conservative.
		nw.bumpEpoch(n)
		res := nw.runRules(n, nil)
		n.lastOut = res.out
		for _, msg := range res.out {
			a.pending = append(a.pending, delayedMessage{
				msg:     msg,
				readyAt: a.step + 1 + a.rng.Intn(a.cfg.MaxDelay),
			})
		}
	}
	nw.round++
	return activated
}

// RunUntilLegal executes steps until the network state matches the
// ideal stable topology for its current peers (checked every `every`
// steps), or the step budget runs out. It reports the steps taken and
// whether the legal state was reached.
func (a *AsyncRunner) RunUntilLegal(idl *Ideal, maxSteps, every int) (int, bool) {
	if every < 1 {
		every = 1
	}
	for s := 0; s < maxSteps; s++ {
		a.Step()
		if s%every == 0 && idl.Matches(a.nw) == nil {
			return a.step, true
		}
	}
	return a.step, idl.Matches(a.nw) == nil
}

// PendingMessages returns the number of messages currently in flight.
func (a *AsyncRunner) PendingMessages() int {
	n := len(a.pending)
	for _, node := range a.nw.nodes {
		n += len(node.inbox)
	}
	return n
}

// PendingByKind breaks the in-flight messages down by edge kind, for
// the async experiments.
func (a *AsyncRunner) PendingByKind() map[graph.Kind]int {
	out := map[graph.Kind]int{}
	for _, dm := range a.pending {
		out[dm.msg.Kind]++
	}
	for _, node := range a.nw.nodes {
		for _, msg := range node.inbox {
			out[msg.Kind]++
		}
	}
	return out
}
