package rechord

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// Join inserts a new peer that initially knows exactly one existing
// peer (Section 4.1: "a peer connects to one peer in the network").
// The network integrates it within O(log^2 n) rounds from a stable
// state (Theorem 4.1). The joiner enters the frontier dirty; existing
// peers wake up as its messages reach them.
func (nw *Network) Join(id ident.ID, contact ident.ID) error {
	if _, ok := nw.pt.lookup(id); ok {
		return fmt.Errorf("rechord: join: peer %s already present", id)
	}
	if _, ok := nw.pt.lookup(contact); !ok {
		return fmt.Errorf("rechord: join: contact %s not in network", contact)
	}
	nw.AddPeer(id)
	nw.SeedEdge(ref.Real(id), ref.Real(contact), graph.Unmarked)
	return nil
}

// Leave removes a peer gracefully (Section 4.2): before departing,
// each of its virtual nodes introduces its unmarked neighbors to one
// another, so the sorted order survives without the departed node, and
// the closest-real knowledge is handed over too. The introductions are
// delivered as ordinary next-round messages.
func (nw *Network) Leave(id ident.ID) error {
	n := nw.pt.node(id)
	if n == nil {
		return fmt.Errorf("rechord: leave: peer %s not in network", id)
	}
	for _, v := range n.vnodes {
		if v == nil {
			continue
		}
		// Everything this virtual node can introduce: its unmarked
		// neighbors plus closest reals, excluding its own siblings
		// (they depart too).
		var know ref.Set
		know.AddAll(v.Nu)
		if v.HasRL {
			know.Add(v.RL)
		}
		if v.HasRR {
			know.Add(v.RR)
		}
		know.RemoveIf(func(r ref.Ref) bool { return r.Owner == id })
		peers := know.Slice()
		for _, a := range peers {
			for _, b := range peers {
				if a != b {
					nw.routeMessage(Message{To: a, Kind: graph.Unmarked, Add: b})
				}
			}
		}
		// Ring and connection edges it held are handed to a neighbor
		// rather than silently dropped.
		for _, w := range v.Nr.Slice() {
			if w.Owner == id {
				continue
			}
			for _, a := range peers {
				if a != w {
					nw.routeMessage(Message{To: a, Kind: graph.Ring, Add: w})
					break
				}
			}
		}
	}
	nw.removePeer(id)
	return nil
}

// Fail removes a peer abruptly: no goodbyes, its edges dangle until
// the failure detector purges them (Section 4.2's fault case).
func (nw *Network) Fail(id ident.ID) error {
	if _, ok := nw.pt.lookup(id); !ok {
		return fmt.Errorf("rechord: fail: peer %s not in network", id)
	}
	nw.removePeer(id)
	return nil
}

// removePeer deletes the peer and reconciles the scheduler state: the
// peer's slot is released (bumping its generation, so every handle to
// this incarnation stops resolving), its published view entries
// vanish, its standing output is delivered exactly once more (as
// one-shots, matching the full-sweep timeline where messages sent in
// the final round still arrive), and every peer that references the
// departed identifier is woken so its next purge drops the stale
// references.
func (nw *Network) removePeer(id ident.ID) {
	n := nw.pt.node(id)
	h := n.h() // the incarnation's handle, before the generation bump
	nw.view[n.idx] = nil
	nw.vhash[n.idx] = nw.vhash[n.idx][:0]
	// The departed peer's own references leave the dependency index.
	nw.dropStateDeps(n.idx)
	nw.pt.release(n)
	nw.removeOrder(id)
	// The buckets stored on the departed peer die with it.
	for _, b := range n.in {
		nw.bucketMsgs -= b.flow.spanLen(b.span)
		nw.depRemoveSpan(n.idx, b.flow, b.span)
		releaseBucket(b, &nw.flow)
	}
	n.in = nil
	// Its standing flow to others becomes a final one-shot delivery.
	// The moved messages leave the index with the bucket: the recipient
	// is dirty from here on, and one-shot inboxes are not indexed.
	if n.lastFlow != nil {
		for _, sp := range n.lastFlow.spans {
			dstSlot, ok := nw.pt.lookup(sp.owner)
			if !ok {
				continue
			}
			dst := nw.pt.nodes[dstSlot]
			bi := dst.findBucket(h)
			if bi < 0 {
				continue
			}
			b := dst.in[bi]
			dst.inbox = b.flow.appendSpan(dst.inbox, b.span)
			nw.bucketMsgs -= b.flow.spanLen(b.span)
			nw.depRemoveSpan(dstSlot, b.flow, b.span)
			dst.delBucketAt(bi)
			releaseBucket(b, &nw.flow)
			nw.markDirtyIdx(dstSlot)
		}
		releaseFlow(n.lastFlow, &nw.flow)
		n.lastFlow = nil
	}
	nw.flushFlowGauges()
	nw.wakeDependents(map[ident.ID]bool{id: true}, nil)
}

// routeMessage enqueues a one-shot message directly (used by graceful
// leave, whose goodbyes are delivered like any other delayed
// assignment) and wakes the recipient.
func (nw *Network) routeMessage(msg Message) {
	if slot, ok := nw.pt.lookup(msg.To.Owner); ok {
		nw.pt.nodes[slot].inbox = append(nw.pt.nodes[slot].inbox, msg)
		nw.markDirtyIdx(slot)
	}
}
