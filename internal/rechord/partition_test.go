package rechord_test

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/topogen"
)

// These tests are the in-memory half of the sim-vs-wire equivalence
// gate: they run the same network as one monolithic Network and as P
// Partitions exchanging effect payloads by hand (no codec, no
// transport), which isolates the partitioned-execution semantics from
// the wire layer built on top of them (internal/wire).

// memSink buffers one partition's outgoing effects for the test's
// exchange step, preserving emission order per kind (the order the
// wire protocol preserves too).
type memSink struct {
	buckets   []rechord.BucketUpdate
	oneShots  []rechord.OneShot
	publishes []rechord.PeerPublish
}

func (s *memSink) SendBucket(u rechord.BucketUpdate)  { s.buckets = append(s.buckets, u) }
func (s *memSink) SendOneShot(u rechord.OneShot)      { s.oneShots = append(s.oneShots, u) }
func (s *memSink) PublishState(p rechord.PeerPublish) { s.publishes = append(s.publishes, p) }
func (s *memSink) empty() bool {
	return len(s.buckets) == 0 && len(s.oneShots) == 0 && len(s.publishes) == 0
}
func (s *memSink) clear() { s.buckets, s.oneShots, s.publishes = nil, nil, nil }

// partedNetwork is a P-way partitioned replica set plus its sinks.
type partedNetwork struct {
	parts []*rechord.Partition
	sinks []*memSink
}

func buildParted(nprocs, n int, seed int64, gen topogen.Generator, cfg rechord.Config) ([]ident.ID, *partedNetwork) {
	pn := &partedNetwork{}
	var ids []ident.ID
	for k := 0; k < nprocs; k++ {
		rng := rand.New(rand.NewSource(seed))
		ids = topogen.RandomIDs(n, rng)
		nw := gen.Build(ids, rng, cfg)
		rank := uint64(k)
		hosted := func(id ident.ID) bool { return uint64(id)%uint64(nprocs) == rank }
		sink := &memSink{}
		pn.sinks = append(pn.sinks, sink)
		pn.parts = append(pn.parts, rechord.NewPartition(nw, hosted, sink))
	}
	return ids, pn
}

// exchange applies every partition's buffered effects at every
// partition (the Apply methods gate by hosting where needed, exactly
// as the wire node does with the broadcast bundle) and reports whether
// anything was exchanged.
func (pn *partedNetwork) exchange() bool {
	any := false
	for _, s := range pn.sinks {
		if !s.empty() {
			any = true
		}
		for _, p := range pn.parts {
			for _, u := range s.buckets {
				p.ApplyBucket(u)
			}
			for _, u := range s.oneShots {
				p.ApplyOneShot(u)
			}
			for _, u := range s.publishes {
				p.ApplyPublish(u)
			}
		}
	}
	for _, s := range pn.sinks {
		s.clear()
	}
	return any
}

func (pn *partedNetwork) fingerprint() uint64 {
	var fp uint64
	for _, p := range pn.parts {
		fp ^= p.Fingerprint()
	}
	return fp
}

func (pn *partedNetwork) quiescent() bool {
	for _, p := range pn.parts {
		if !p.Quiescent() {
			return false
		}
	}
	return true
}

// TestPartitionLockstepMatchesMonolith: with no churn, partitioned
// execution is round-for-round identical to the monolith — same
// fingerprint after every round and quiescence on the same round.
// ParanoidSettle keeps the settle decisions clone-checked throughout.
func TestPartitionLockstepMatchesMonolith(t *testing.T) {
	for _, gen := range []topogen.Generator{
		topogen.Random(), topogen.Line(), topogen.Garbage(), topogen.Star(),
	} {
		t.Run(gen.Name, func(t *testing.T) {
			const (
				n      = 20
				nprocs = 3
				seed   = 1701
				maxR   = 4000
			)
			cfg := rechord.Config{Workers: 1, ParanoidSettle: true}
			rng := rand.New(rand.NewSource(seed))
			ids := topogen.RandomIDs(n, rng)
			mono := gen.Build(ids, rng, cfg)
			_, pn := buildParted(nprocs, n, seed, gen, cfg)

			if got, want := pn.fingerprint(), mono.StateFingerprint(nil); got != want {
				t.Fatalf("initial fingerprint mismatch: parted %016x, monolith %016x", got, want)
			}
			for r := 1; ; r++ {
				if r > maxR {
					t.Fatalf("no convergence in %d rounds", maxR)
				}
				mono.Step()
				for _, p := range pn.parts {
					p.Step()
				}
				exchanged := pn.exchange()
				if got, want := pn.fingerprint(), mono.StateFingerprint(nil); got != want {
					t.Fatalf("round %d: fingerprint mismatch: parted %016x, monolith %016x", r, got, want)
				}
				monoQ := mono.Quiescent()
				partQ := pn.quiescent() && !exchanged
				if monoQ != partQ {
					t.Fatalf("round %d: monolith quiescent=%v but partitions quiescent=%v", r, monoQ, partQ)
				}
				if monoQ {
					break
				}
			}
			if err := rechord.ComputeIdeal(mono.Peers()).Matches(mono); err != nil {
				t.Fatalf("monolith did not reach the ideal topology: %v", err)
			}
		})
	}
}

// partOp is one scripted membership change.
type partOp struct {
	round   int
	kind    int // 0 join, 1 leave, 2 fail
	id      ident.ID
	contact ident.ID
}

// TestPartitionChurnConvergesToMonolith: with joins, graceful leaves
// and abrupt failures in the schedule, partitioned delivery timing
// skews from the monolith by a round around each op (goodbyes and
// re-materialized flow cross the exchange), but both executions
// self-stabilize to the same unique topology — equal fingerprints and
// the exact oracle.
func TestPartitionChurnConvergesToMonolith(t *testing.T) {
	const (
		n      = 18
		nprocs = 4
		seed   = 424242
		maxR   = 6000
	)
	cfg := rechord.Config{Workers: 1, ParanoidSettle: true}
	rng := rand.New(rand.NewSource(seed))
	ids := topogen.RandomIDs(n, rng)
	mono := topogen.Random().Build(ids, rng, cfg)
	_, pn := buildParted(nprocs, n, seed, topogen.Random(), cfg)

	joinA := ident.ID(0x5A5A_0000_0000_0001)
	joinB := ident.ID(0xA5A5_0000_0000_0002)
	ops := []partOp{
		{round: 3, kind: 0, id: joinA, contact: ids[0]},
		{round: 6, kind: 1, id: ids[3]},
		{round: 9, kind: 2, id: ids[7]},
		{round: 12, kind: 0, id: joinB, contact: joinA},
		{round: 15, kind: 1, id: ids[11]},
	}

	applyMono := func(op partOp) error {
		switch op.kind {
		case 0:
			return mono.Join(op.id, op.contact)
		case 1:
			return mono.Leave(op.id)
		default:
			return mono.Fail(op.id)
		}
	}
	applyPart := func(p *rechord.Partition, op partOp) error {
		switch op.kind {
		case 0:
			return p.ApplyJoin(op.id, op.contact)
		case 1:
			return p.ApplyLeave(op.id)
		default:
			return p.ApplyFail(op.id)
		}
	}

	// Monolith run.
	next := 0
	for r := 1; ; r++ {
		if r > maxR {
			t.Fatalf("monolith: no convergence in %d rounds", maxR)
		}
		for next < len(ops) && ops[next].round == r {
			if err := applyMono(ops[next]); err != nil {
				t.Fatalf("monolith op %d: %v", next, err)
			}
			next++
		}
		mono.Step()
		if next == len(ops) && mono.Quiescent() {
			break
		}
	}

	// Partitioned run of the same schedule.
	next = 0
	for r := 1; ; r++ {
		if r > maxR {
			t.Fatalf("partitions: no convergence in %d rounds", maxR)
		}
		opsAt := 0
		for next < len(ops) && ops[next].round == r {
			for _, p := range pn.parts {
				if err := applyPart(p, ops[next]); err != nil {
					t.Fatalf("partition op %d: %v", next, err)
				}
			}
			next++
			opsAt++
		}
		for _, p := range pn.parts {
			p.Step()
		}
		exchanged := pn.exchange()
		if next == len(ops) && opsAt == 0 && !exchanged && pn.quiescent() {
			break
		}
	}

	if got, want := pn.fingerprint(), mono.StateFingerprint(nil); got != want {
		t.Fatalf("converged fingerprints differ: parted %016x, monolith %016x", got, want)
	}
	if err := rechord.ComputeIdeal(mono.Peers()).Matches(mono); err != nil {
		t.Fatalf("monolith did not reach the ideal topology: %v", err)
	}
}
