package rechord

import (
	"strings"
	"testing"

	"repro/internal/ident"
)

// The commit phase's ownership partition is what makes the sharded
// barrier safe: worker w may only write buckets at slots with
// slot % commitW == w and dep-index shards with depShardOf(id) %
// commitW == w. Under ParanoidSettle, commitBucketOp and commitDepDelta
// re-derive the owner and panic on a cross-shard write. These tests
// drive the audit directly: the in-band path can never trip it (the
// selection filter and the audit are the same predicate), so the panic
// is provoked by calling the commit helpers with a mismatched worker
// id, exactly what a future regression in the partitioning would do.

func auditNet(t *testing.T) *Network {
	t.Helper()
	nw := NewNetwork(Config{Workers: 2, ParanoidSettle: true})
	nw.AddPeer(ident.ID(0x11)) // slot 0
	nw.AddPeer(ident.ID(0x22)) // slot 1
	nw.commitW = 2
	return nw
}

func wantPanic(t *testing.T, fragment string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", fragment)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, fragment) {
			t.Fatalf("panic %v does not mention %q", r, fragment)
		}
	}()
	f()
}

func TestCommitShardAuditBucket(t *testing.T) {
	nw := auditNet(t)
	sender := nw.pt.nodes[0].h()
	var sh commitShard
	// Slot 1 belongs to commit worker 1; worker 0 writing it must trip
	// the audit before any state is touched.
	op := bucketOp{dstSlot: 1, span: -1}
	wantPanic(t, "cross-shard bucket write", func() {
		nw.commitBucketOp(0, sender, nil, &op, &sh)
	})
	// The owning worker passes: a delete op for a (non-existent)
	// bucket is a no-op that still marks the recipient dirty. Fresh
	// peers start dirty (AddPeer), so clear the flag to observe the
	// wake.
	nw.pt.nodes[1].dirty = false
	nw.commitBucketOp(1, sender, nil, &op, &sh)
	if len(sh.frontier) != 1 || sh.frontier[0] != 1 {
		t.Fatalf("owning worker did not mark the recipient: frontier=%v", sh.frontier)
	}
}

func TestCommitShardAuditDep(t *testing.T) {
	nw := auditNet(t)
	// Find an identifier whose index shard is NOT owned by worker 0.
	id := ident.ID(1)
	for depShardOf(id)%2 == 0 {
		id += 2
	}
	wantPanic(t, "cross-shard dep write", func() {
		nw.commitDepDelta(0, depDelta{id: id, slot: 0, k: 1})
	})
	// The owning worker applies the delta.
	w := int(depShardOf(id)) % 2
	nw.commitDepDelta(w, depDelta{id: id, slot: 0, k: 1})
	deps := nw.deps.dependents(id)
	if len(deps) != 1 || deps[0].peer != 0 || deps[0].cnt != 1 {
		t.Fatalf("owning worker's delta not applied: %v", deps)
	}
	nw.commitDepDelta(w, depDelta{id: id, slot: 0, k: -1})
	if got := nw.deps.dependents(id); len(got) != 0 {
		t.Fatalf("negative delta not applied: %v", got)
	}
}
