package rechord

import (
	"fmt"
	"sort"
	"sync/atomic"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/ref"
)

// Shared flow templates: the compact at-rest representation of
// standing flows. At stability a sender's relay output repeats
// verbatim every round, so the recipient-side deep copies of those
// messages are pure duplication. A flowTemplate freezes one batch's
// output into an immutable, refcounted object; the sender's lastFlow
// and every recipient bucket reference spans of the same template
// instead of each holding a []Message copy.
//
// Immutability is what makes the sharing safe: the engine only ever
// *replaces* a bucket (the bucket-replace invariant — rules never edit
// standing messages in place), so once built, a template's bytes are
// never written again. ParanoidSettle additionally checksums each
// template at build time and re-verifies it before diffing, turning
// any in-place mutation into a panic.
//
// Messages are stored packed: the Add owner (the only full ident.ID a
// standing message carries besides its recipient) is interned into a
// per-template sorted symbol table, and the two levels plus the edge
// kind share one meta word. A packed record is 8 bytes against
// Message's 40; the recipient owner is stored once per span, not per
// message.

const (
	// pmLevelBits is wide enough for ident.MaxLevel (62) with room to
	// spare; two level fields and the kind share one uint32.
	pmLevelBits = 14
	pmLevelMask = 1<<pmLevelBits - 1
	pmKindShift = 2 * pmLevelBits

	// msgBytes is the deep-copy cost of one standing message — the
	// unit the shared-vs-unique telemetry reports so the numbers are
	// directly comparable with the pre-sharing representation.
	msgBytes = int(unsafe.Sizeof(Message{}))
)

// packedMsg is one standing message at rest: the Add owner as an index
// into the template's symbol table, and kind + To.Level + Add.Level
// packed into meta. The To owner is implicit in the enclosing span.
type packedMsg struct {
	sym  uint32
	meta uint32
}

// flowSpan is one recipient's contiguous slice of the packed stream,
// in emission order.
type flowSpan struct {
	owner      ident.ID
	start, end uint32
}

// flowTemplate is an immutable snapshot of one sender's per-round
// output, grouped by recipient. refs counts the sender's lastFlow
// reference plus one per recipient bucket; it is atomic because the
// sharded commit releases old buckets from parallel workers.
type flowTemplate struct {
	refs    atomic.Int32
	private bool // deep-copy or snapshot-owned; never shared across peers
	packed  []packedMsg
	spans   []flowSpan // sorted by owner
	syms    []ident.ID // sorted, deduped Add owners
	sum     uint64     // build-time checksum (ParanoidSettle write barrier)
}

// footprint is the resident size of the template itself.
func (t *flowTemplate) footprint() int {
	return int(unsafe.Sizeof(*t)) +
		len(t.packed)*int(unsafe.Sizeof(packedMsg{})) +
		len(t.spans)*int(unsafe.Sizeof(flowSpan{})) +
		len(t.syms)*8
}

// retain takes one reference and returns t for call-site convenience.
func (t *flowTemplate) retain() *flowTemplate {
	t.refs.Add(1)
	return t
}

// release drops one reference and reports whether it was the last; the
// caller owns the accounting, the garbage collector owns the bytes.
func (t *flowTemplate) release() bool {
	return t.refs.Add(-1) == 0
}

// findSpan returns the index of owner's span, or -1.
func (t *flowTemplate) findSpan(owner ident.ID) int32 {
	lo, hi := 0, len(t.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.spans[mid].owner < owner {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.spans) && t.spans[lo].owner == owner {
		return int32(lo)
	}
	return -1
}

// spanLen is the number of messages in span si.
func (t *flowTemplate) spanLen(si int32) int {
	sp := t.spans[si]
	return int(sp.end - sp.start)
}

// msgAt reconstitutes the full Message at packed index i, addressed to
// owner (the enclosing span's recipient).
func (t *flowTemplate) msgAt(owner ident.ID, i uint32) Message {
	pm := t.packed[i]
	return Message{
		To:   ref.Ref{Owner: owner, Level: int(pm.meta >> pmLevelBits & pmLevelMask)},
		Kind: graph.Kind(pm.meta >> pmKindShift),
		Add:  ref.Ref{Owner: t.syms[pm.sym], Level: int(pm.meta & pmLevelMask)},
	}
}

// appendSpan reconstitutes span si onto dst in emission order.
func (t *flowTemplate) appendSpan(dst []Message, si int32) []Message {
	sp := t.spans[si]
	for i := sp.start; i < sp.end; i++ {
		dst = append(dst, t.msgAt(sp.owner, i))
	}
	return dst
}

// appendAll reconstitutes the whole template onto dst.
func (t *flowTemplate) appendAll(dst []Message) []Message {
	for si := range t.spans {
		dst = t.appendSpan(dst, int32(si))
	}
	return dst
}

// spanEqualMsgs reports whether span si carries exactly ms, in order.
func (t *flowTemplate) spanEqualMsgs(si int32, ms []Message) bool {
	sp := t.spans[si]
	if int(sp.end-sp.start) != len(ms) {
		return false
	}
	for k, m := range ms {
		if t.msgAt(sp.owner, sp.start+uint32(k)) != m {
			return false
		}
	}
	return true
}

// spansEqual compares span ai of a with span bi of b element-wise.
func spansEqual(a *flowTemplate, ai int32, b *flowTemplate, bi int32) bool {
	if a == b && ai == bi {
		return true
	}
	sa, sb := a.spans[ai], b.spans[bi]
	if sa.end-sa.start != sb.end-sb.start {
		return false
	}
	for k := uint32(0); k < sa.end-sa.start; k++ {
		if a.msgAt(sa.owner, sa.start+k) != b.msgAt(sb.owner, sb.start+k) {
			return false
		}
	}
	return true
}

// checksum folds packed records, spans, and symbols into one word.
func (t *flowTemplate) checksum() uint64 {
	h := uint64(1469598103934665603)
	for _, pm := range t.packed {
		h = mixWord(h, uint64(pm.sym)<<32|uint64(pm.meta))
	}
	for _, sp := range t.spans {
		h = mixWord(h, uint64(sp.owner))
		h = mixWord(h, uint64(sp.start)<<32|uint64(sp.end))
	}
	for _, s := range t.syms {
		h = mixWord(h, uint64(s))
	}
	return h
}

// verify panics if the template's bytes changed since build — the
// ParanoidSettle write barrier over the shared representation.
func (t *flowTemplate) verify(where string) {
	if got := t.checksum(); got != t.sum {
		panic(fmt.Sprintf("rechord: shared flow template mutated in place (%s): checksum %x, recorded %x", where, got, t.sum))
	}
}

// packMsg encodes m against the sorted symbol table.
func packMsg(m Message, syms []ident.ID) packedMsg {
	lo, hi := 0, len(syms)
	for lo < hi {
		mid := (lo + hi) / 2
		if syms[mid] < m.Add.Owner {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if uint(m.To.Level) > pmLevelMask || uint(m.Add.Level) > pmLevelMask {
		panic("rechord: message level exceeds packed-storage range")
	}
	return packedMsg{
		sym:  uint32(lo),
		meta: uint32(m.Kind)<<pmKindShift | uint32(m.To.Level)<<pmLevelBits | uint32(m.Add.Level),
	}
}

// buildFlow freezes the first ng recipient groups (sorted by owner,
// each in emission order, total messages across them) into a fresh
// template carrying one reference for the caller. symbuf is reusable
// scratch for symbol collection; the grown buffer is returned.
func buildFlow(groups []rrGroup, ng, total int, symbuf []ident.ID) (*flowTemplate, []ident.ID) {
	symbuf = symbuf[:0]
	for g := 0; g < ng; g++ {
		for _, m := range groups[g].msgs {
			symbuf = append(symbuf, m.Add.Owner)
		}
	}
	sort.Slice(symbuf, func(i, j int) bool { return symbuf[i] < symbuf[j] })
	syms := make([]ident.ID, 0, len(symbuf))
	for i, id := range symbuf {
		if i == 0 || id != symbuf[i-1] {
			syms = append(syms, id)
		}
	}
	t := &flowTemplate{
		packed: make([]packedMsg, 0, total),
		spans:  make([]flowSpan, 0, ng),
		syms:   syms,
	}
	for g := 0; g < ng; g++ {
		start := uint32(len(t.packed))
		for _, m := range groups[g].msgs {
			t.packed = append(t.packed, packMsg(m, syms))
		}
		t.spans = append(t.spans, flowSpan{owner: groups[g].owner, start: start, end: uint32(len(t.packed))})
	}
	t.refs.Store(1)
	t.sum = t.checksum()
	return t, symbuf
}

// buildPrivateFlow freezes one recipient's contribution into a
// single-span private template (ref 1). Used for deep-copy installs,
// partition shadow buckets, and snapshot clones — never shared.
func buildPrivateFlow(owner ident.ID, ms []Message) *flowTemplate {
	symbuf := make([]ident.ID, 0, len(ms))
	for _, m := range ms {
		symbuf = append(symbuf, m.Add.Owner)
	}
	sort.Slice(symbuf, func(i, j int) bool { return symbuf[i] < symbuf[j] })
	syms := symbuf[:0]
	for i, id := range symbuf {
		if i == 0 || id != symbuf[i-1] {
			syms = append(syms, id)
		}
	}
	t := &flowTemplate{
		private: true,
		packed:  make([]packedMsg, 0, len(ms)),
		spans:   []flowSpan{{owner: owner, end: uint32(len(ms))}},
		syms:    syms,
	}
	for _, m := range ms {
		t.packed = append(t.packed, packMsg(m, syms))
	}
	t.refs.Store(1)
	t.sum = t.checksum()
	return t
}

// cloneSpan freezes span si of t into a fresh private single-span
// template that *shares* t's packed records and symbol table — safe
// because template bytes are immutable once built (the bucket-replace
// invariant), and release only drops refcounts, never frees or edits
// storage. Snapshot clones use it: they take no reference, so they
// don't appear in the engine's flow accounting, and the GC keeps the
// shared arrays alive for as long as the snapshot needs them.
func (t *flowTemplate) cloneSpan(si int32) *flowTemplate {
	sp := t.spans[si]
	c := &flowTemplate{
		private: true,
		packed:  t.packed[sp.start:sp.end:sp.end],
		spans:   []flowSpan{{owner: sp.owner, end: sp.end - sp.start}},
		syms:    t.syms,
	}
	c.refs.Store(1)
	c.sum = c.checksum()
	return c
}

// flowEqualsOutput reports whether out carries exactly t's messages
// with per-recipient order preserved. Cross-recipient interleaving is
// not compared: delivery is per-recipient (each bucket replays its own
// span), so outputs that agree group-by-group produce identical
// behavior, and the deterministic rules emit per-recipient sequences
// in a fixed order anyway. This is the settle predicate for both the
// shared and DeepCopyFlows engines, so the two stay in lockstep.
// cursors is reusable per-span scratch.
func flowEqualsOutput(t *flowTemplate, out []Message, cursors *[]uint32) bool {
	if t == nil {
		return len(out) == 0
	}
	if len(out) != len(t.packed) {
		return false
	}
	cur := (*cursors)[:0]
	for range t.spans {
		cur = append(cur, 0)
	}
	*cursors = cur
	for _, m := range out {
		si := t.findSpan(m.To.Owner)
		if si < 0 {
			return false
		}
		sp := t.spans[si]
		i := sp.start + cur[si]
		if i >= sp.end || t.msgAt(sp.owner, i) != m {
			return false
		}
		cur[si]++
	}
	// Total lengths match and no span overflowed, so every span is
	// exactly consumed.
	return true
}

// bucket is one standing contribution at a recipient: span si of the
// sender's flow template. ~24 bytes against the former map entry plus
// []Message backing.
type bucket struct {
	sender handle
	span   int32
	flow   *flowTemplate
}

// findBucket returns the index of sender's bucket in the sorted table,
// or -1.
func (n *RealNode) findBucket(sender handle) int {
	lo, hi := 0, len(n.in)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.in[mid].sender < sender {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.in) && n.in[lo].sender == sender {
		return lo
	}
	return -1
}

// setBucket inserts or replaces sender's bucket, keeping the table
// sorted. Returns the replaced bucket, if any. Refcounts are the
// caller's responsibility.
func (n *RealNode) setBucket(sender handle, t *flowTemplate, si int32) (old bucket, existed bool) {
	lo, hi := 0, len(n.in)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.in[mid].sender < sender {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.in) && n.in[lo].sender == sender {
		old = n.in[lo]
		n.in[lo] = bucket{sender: sender, span: si, flow: t}
		return old, true
	}
	n.in = append(n.in, bucket{})
	copy(n.in[lo+1:], n.in[lo:])
	n.in[lo] = bucket{sender: sender, span: si, flow: t}
	return bucket{}, false
}

// delBucketAt removes the bucket at index bi. Refcounts are the
// caller's responsibility.
func (n *RealNode) delBucketAt(bi int) {
	copy(n.in[bi:], n.in[bi+1:])
	n.in[len(n.in)-1] = bucket{}
	n.in = n.in[:len(n.in)-1]
}

// flowTally accumulates flow-storage accounting. The Network holds the
// authoritative copy; each commitShard accumulates a local one during
// the parallel commit, merged at the barrier.
type flowTally struct {
	births, deaths int // templates created / fully released
	residentBytes  int // footprint delta of created minus released
	sharedBytes    int // deep-equivalent bytes of buckets on shared templates
	uniqueBytes    int // deep-equivalent bytes of buckets on private templates
	installsShared int
	installsCopied int
}

func (ft *flowTally) add(o *flowTally) {
	ft.births += o.births
	ft.deaths += o.deaths
	ft.residentBytes += o.residentBytes
	ft.sharedBytes += o.sharedBytes
	ft.uniqueBytes += o.uniqueBytes
	ft.installsShared += o.installsShared
	ft.installsCopied += o.installsCopied
}

// tallyBirth records a freshly built template.
func (ft *flowTally) tallyBirth(t *flowTemplate) {
	ft.births++
	ft.residentBytes += t.footprint()
}

// releaseFlow drops a non-bucket reference (lastFlow, or a builder's
// handoff reference) and accounts the death if it was the last.
func releaseFlow(t *flowTemplate, ft *flowTally) {
	fp := t.footprint()
	if t.release() {
		ft.deaths++
		ft.residentBytes -= fp
	}
}

// releaseBucket drops a bucket's reference including its
// shared/unique byte classification.
func releaseBucket(b bucket, ft *flowTally) {
	bytes := b.flow.spanLen(b.span) * msgBytes
	if b.flow.private {
		ft.uniqueBytes -= bytes
	} else {
		ft.sharedBytes -= bytes
	}
	releaseFlow(b.flow, ft)
}

// installBucket points dst's bucket for sender at span si of t. Under
// DeepCopyFlows a shared template is copied into a private single-span
// one instead — the storage fallback the lockstep suite compares
// against. Handles refcounts and tally only; deps, bucketMsgs, and
// dirty are the caller's.
func (nw *Network) installBucket(dst *RealNode, sender handle, t *flowTemplate, si int32, ft *flowTally) {
	use, usi := t, si
	if nw.cfg.DeepCopyFlows && !t.private {
		use = buildPrivateFlow(t.spans[si].owner, t.appendSpan(nil, si))
		usi = 0
		ft.tallyBirth(use)
	} else {
		use.retain()
	}
	bytes := use.spanLen(usi) * msgBytes
	if use.private {
		ft.uniqueBytes += bytes
		ft.installsCopied++
	} else {
		ft.sharedBytes += bytes
		ft.installsShared++
	}
	if old, existed := dst.setBucket(sender, use, usi); existed {
		releaseBucket(old, ft)
	}
}
