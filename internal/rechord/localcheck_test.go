package rechord_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

// TestLocalCheckEquivalence is the paper's local-checkability claim as
// an executable invariant: at every round, the network is at the
// global fixed point if and only if every peer passes the purely local
// stability check.
func TestLocalCheckEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ids := topogen.RandomIDs(15, rng)
	nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 1})

	stableAt := -1
	nw.Step() // the check needs one executed round so lastOut is defined
	for round := 0; round < sim.DefaultMaxRounds(len(ids)); round++ {
		// The local check asks "is the current state a fixed point?",
		// i.e. whether the NEXT round will change anything; verify its
		// verdict by actually executing that round.
		allLocal := nw.CountLocallyStable() == nw.NumPeers()
		before := nw.TakeSnapshot()
		nw.Step()
		fixedPoint := nw.TakeSnapshot().Equal(before)
		if fixedPoint != allLocal {
			t.Fatalf("round %d: fixed point = %v but all-local = %v (%d/%d peers pass)",
				nw.Round(), fixedPoint, allLocal, nw.CountLocallyStable(), nw.NumPeers())
		}
		if fixedPoint {
			stableAt = nw.Round()
			break
		}
	}
	if stableAt < 0 {
		t.Fatal("network did not stabilize")
	}
}

// TestLocalCheckDetectsPerturbation: damaging one peer's state flips
// at least that peer's local check to false.
func TestLocalCheckDetectsPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	ids := topogen.RandomIDs(12, rng)
	nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: 1})
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if nw.CountLocallyStable() != nw.NumPeers() {
		t.Fatalf("stable network: only %d/%d peers locally stable",
			nw.CountLocallyStable(), nw.NumPeers())
	}
	// Remove a closest-neighbor edge from one peer.
	victim := nw.Peer(ids[4])
	v := victim.VNode(0)
	target, ok := v.Nu.Max()
	if !ok {
		t.Fatal("victim has empty neighborhood")
	}
	v.Nu.Remove(target)
	nw.Wake(ids[4]) // out-of-band mutation: tell the scheduler
	if nw.LocallyStable(ids[4]) {
		t.Fatal("peer with damaged neighborhood passes the local check")
	}
	// And the protocol repairs it.
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
		t.Fatalf("network did not repair the perturbation: %v", err)
	}
}

func TestLocallyStableUnknownPeer(t *testing.T) {
	nw := rechord.NewNetwork(rechord.Config{})
	if nw.LocallyStable(ident.FromFloat(0.5)) {
		t.Error("unknown peer reported locally stable")
	}
}

// TestLocalCheckMonotoneCount: the number of locally stable peers is
// low during early convergence and reaches n exactly at the fixed
// point (not necessarily monotonically, but it must end at n and start
// below n for a non-trivial initial state).
func TestLocalCheckMonotoneCount(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ids := topogen.RandomIDs(18, rng)
	nw := topogen.Line().Build(ids, rng, rechord.Config{Workers: 1})
	nw.Step()
	if got := nw.CountLocallyStable(); got == nw.NumPeers() {
		t.Fatalf("all %d peers locally stable right after round 1 of a line", got)
	}
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := nw.CountLocallyStable(); got != nw.NumPeers() {
		t.Fatalf("only %d/%d locally stable at the fixed point", got, nw.NumPeers())
	}
}
