// Package sim runs Re-Chord networks to convergence and records the
// per-round metrics the paper's evaluation (Section 5) reports: the
// number of rounds to the stable and "almost stable" states, and the
// evolution of edge and node counts.
package sim

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/rechord"
)

// RoundMetrics captures the network state at the start of a round.
type RoundMetrics struct {
	Round           int
	RealNodes       int
	VirtualNodes    int // virtual nodes only (levels >= 1)
	UnmarkedEdges   int
	RingEdges       int
	ConnectionEdges int
	Messages        int // messages generated during this round
}

// NormalEdges returns the paper's "normal edges": every edge except
// the connection edges.
func (m RoundMetrics) NormalEdges() int { return m.UnmarkedEdges + m.RingEdges }

// TotalEdges returns all edges of all kinds.
func (m RoundMetrics) TotalEdges() int { return m.NormalEdges() + m.ConnectionEdges }

// TotalNodes returns real plus virtual nodes.
func (m RoundMetrics) TotalNodes() int { return m.RealNodes + m.VirtualNodes }

// Options configures a run.
type Options struct {
	// MaxRounds bounds the run; 0 means a generous default derived
	// from the network size (the paper's bound is O(n log n)).
	MaxRounds int
	// TrackSeries records RoundMetrics for every round.
	TrackSeries bool
	// Ideal, when set, is used to detect the "almost stable" state.
	Ideal *rechord.Ideal
	// SkipFinalMetrics leaves Result.Final at the cheap subset (round
	// and peer count) instead of exporting the full graph. Measure
	// materializes every node and edge into map-backed graph state —
	// fine at the paper's scale, but at n=65536 (≈1M virtual nodes,
	// several million edges) it costs more memory than the network
	// itself; the large-scale suite opts out.
	SkipFinalMetrics bool
}

// Result reports a run's outcome.
type Result struct {
	// Stable reports whether a global fixed point was reached within
	// MaxRounds.
	Stable bool
	// Canceled reports that the run stopped early because the context
	// was done; Stable is false in that case.
	Canceled bool
	// Rounds is the number of rounds until the fixed point (the round
	// after which the state stopped changing), or MaxRounds if not
	// stable.
	Rounds int
	// AlmostStableRound is the first round after which every desired
	// edge existed; -1 if never observed (or no Ideal given).
	AlmostStableRound int
	// TotalMessages counts all messages across the run.
	TotalMessages int
	// Final is the metrics snapshot of the converged state.
	Final RoundMetrics
	// Series holds per-round metrics when requested.
	Series []RoundMetrics
}

// DefaultMaxRounds returns the run bound for n peers: comfortably
// above the paper's O(n log n) bound with a floor for small n.
func DefaultMaxRounds(n int) int {
	if n < 1 {
		n = 1
	}
	log := 1
	for v := n; v > 1; v >>= 1 {
		log++
	}
	r := 40*n*log + 200
	return r
}

// budgetHint is implemented by schedulers whose steps are worth less
// than one synchronous round (the asynchronous runner: activation
// probability and message delays stretch convergence by a constant
// factor), so default budgets scale instead of spuriously expiring.
type budgetHint interface {
	StepBudgetScale() float64
}

// DefaultBudget returns the step budget for running the scheduler to
// its fixed point: DefaultMaxRounds for the synchronous round engine,
// scaled by the scheduler's own hint for event-driven executions.
func DefaultBudget(s rechord.Scheduler) int {
	b := DefaultMaxRounds(s.Network().NumPeers())
	if h, ok := s.(budgetHint); ok {
		if f := h.StepBudgetScale(); f > 1 {
			b = int(float64(b) * f)
		}
	}
	return b
}

// Measure computes the current metrics of the network.
func Measure(nw *rechord.Network) RoundMetrics {
	g := nw.Graph()
	return RoundMetrics{
		Round:           nw.Round(),
		RealNodes:       nw.NumPeers(),
		VirtualNodes:    g.NumNodes() - nw.NumPeers(),
		UnmarkedEdges:   g.NumEdges(graph.Unmarked),
		RingEdges:       g.NumEdges(graph.Ring),
		ConnectionEdges: g.NumEdges(graph.Connection),
	}
}

// Run executes scheduler steps until the global state reaches a fixed
// point, the step bound is hit, or the context is done. The scheduler
// decides what a step is: passing the network itself runs synchronous
// rounds, passing a rechord.AsyncRunner runs the asynchronous
// adversary — the measurement loop is identical. Cancellation is
// observed between steps: the network is always left at a barrier,
// consistent and steppable, so a canceled run can be resumed by
// calling Run again with the same scheduler.
//
// Under the incremental engine (the default), the fixed point is
// detected by quiescence: an empty frontier and no in-flight delivery
// means no peer's inputs changed since it last reached a local fixed
// point, which is exactly global stability — an O(1) check. Under
// rechord.Config.FullSweep the synchronous engine has no frontier, so
// Run falls back to the classic deep-copy snapshot comparison.
func Run(ctx context.Context, s rechord.Scheduler, opt Options) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	nw := s.Network()
	maxSteps := opt.MaxRounds
	if maxSteps <= 0 {
		maxSteps = DefaultBudget(s)
	}
	res := Result{AlmostStableRound: -1}
	measure := func() RoundMetrics {
		if opt.SkipFinalMetrics {
			return RoundMetrics{Round: nw.Round(), RealNodes: nw.NumPeers()}
		}
		return Measure(nw)
	}
	start := s.Time() // steps are counted relative to this run
	var prev *rechord.Snapshot
	if snw, ok := s.(*rechord.Network); ok && !snw.Incremental() {
		prev = snw.TakeSnapshot()
	}
	for r := 0; r < maxSteps; r++ {
		if ctx.Err() != nil {
			res.Canceled = true
			res.Rounds = s.Time() - start
			res.Final = measure()
			return res
		}
		if opt.TrackSeries {
			m := Measure(nw)
			m.Round = s.Time()
			res.Series = append(res.Series, m)
		}
		stats := s.Step()
		res.TotalMessages += stats.MessagesSent
		if opt.TrackSeries {
			res.Series[len(res.Series)-1].Messages = stats.MessagesSent
		}
		if res.AlmostStableRound < 0 && opt.Ideal != nil && opt.Ideal.AlmostStable(nw) {
			res.AlmostStableRound = s.Time() - start
		}
		if prev == nil {
			if s.Quiescent() {
				res.Stable = true
				// Rounds counts up to the last state change, matching
				// the snapshot path's "round after which the state
				// stopped changing".
				res.Rounds = s.LastChange() - start
				if res.Rounds < 0 {
					res.Rounds = 0
				}
				res.Final = measure()
				return res
			}
			continue
		}
		snw := s.(*rechord.Network)
		cur := snw.TakeSnapshot()
		if cur.Equal(prev) {
			res.Stable = true
			// The state was already fixed before this (unchanged) round.
			res.Rounds = s.Time() - 1 - start
			res.Final = measure()
			return res
		}
		prev = cur
	}
	res.Rounds = s.Time() - start
	res.Final = measure()
	return res
}

// RunToStable is Run with a hard failure when the network does not
// stabilize, for tests and experiments that require convergence. A
// canceled run returns the context's error.
func RunToStable(ctx context.Context, s rechord.Scheduler, opt Options) (Result, error) {
	res := Run(ctx, s, opt)
	if res.Canceled {
		return res, ctx.Err()
	}
	if !res.Stable {
		return res, fmt.Errorf("sim: network of %d peers did not stabilize within %d steps",
			s.Network().NumPeers(), s.Time())
	}
	return res, nil
}
