package sim

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
)

func lineNetwork(n int, seed int64) (*rechord.Network, []ident.ID) {
	rng := rand.New(rand.NewSource(seed))
	seen := map[ident.ID]bool{}
	var ids []ident.ID
	for len(ids) < n {
		id := ident.ID(rng.Uint64())
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	nw := rechord.NewNetwork(rechord.Config{Workers: 1})
	for _, id := range ids {
		nw.AddPeer(id)
	}
	for i := 1; i < len(ids); i++ {
		nw.SeedEdge(ref.Real(ids[i-1]), ref.Real(ids[i]), graph.Unmarked)
	}
	return nw, ids
}

func TestRunReachesFixedPoint(t *testing.T) {
	nw, ids := lineNetwork(12, 1)
	idl := rechord.ComputeIdeal(ids)
	res := Run(context.Background(), nw, Options{Ideal: idl, TrackSeries: true})
	if !res.Stable {
		t.Fatal("network did not stabilize")
	}
	if res.Rounds <= 0 {
		t.Errorf("Rounds = %d, want positive", res.Rounds)
	}
	if res.AlmostStableRound < 0 || res.AlmostStableRound > res.Rounds+1 {
		t.Errorf("AlmostStableRound = %d, Rounds = %d", res.AlmostStableRound, res.Rounds)
	}
	if res.TotalMessages <= 0 {
		t.Error("no messages counted")
	}
	if len(res.Series) == 0 {
		t.Fatal("series not tracked")
	}
	if res.Series[0].RealNodes != 12 {
		t.Errorf("series real nodes = %d, want 12", res.Series[0].RealNodes)
	}
}

func TestRunMaxRoundsBound(t *testing.T) {
	nw, _ := lineNetwork(30, 2)
	res := Run(context.Background(), nw, Options{MaxRounds: 2})
	if res.Stable {
		t.Error("2 rounds cannot stabilize 30 peers from a line")
	}
	if res.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", res.Rounds)
	}
}

func TestRunToStableError(t *testing.T) {
	nw, _ := lineNetwork(30, 3)
	if _, err := RunToStable(context.Background(), nw, Options{MaxRounds: 2}); err == nil {
		t.Error("RunToStable must report non-convergence")
	}
}

func TestMeasureCountsKinds(t *testing.T) {
	nw, _ := lineNetwork(8, 4)
	Run(context.Background(), nw, Options{})
	m := Measure(nw)
	if m.RealNodes != 8 {
		t.Errorf("RealNodes = %d, want 8", m.RealNodes)
	}
	if m.VirtualNodes <= 0 {
		t.Error("no virtual nodes at stabilization")
	}
	if m.UnmarkedEdges <= 0 {
		t.Error("no unmarked edges at stabilization")
	}
	if m.RingEdges < 2 {
		t.Errorf("RingEdges = %d, want >= 2", m.RingEdges)
	}
	if m.NormalEdges() != m.UnmarkedEdges+m.RingEdges {
		t.Error("NormalEdges mismatch")
	}
	if m.TotalEdges() != m.NormalEdges()+m.ConnectionEdges {
		t.Error("TotalEdges mismatch")
	}
	if m.TotalNodes() != m.RealNodes+m.VirtualNodes {
		t.Error("TotalNodes mismatch")
	}
}

func TestDefaultMaxRounds(t *testing.T) {
	if DefaultMaxRounds(0) <= 0 || DefaultMaxRounds(1) <= 0 {
		t.Error("DefaultMaxRounds must be positive")
	}
	if DefaultMaxRounds(100) <= DefaultMaxRounds(10) {
		t.Error("DefaultMaxRounds must grow with n")
	}
	// Must exceed the paper's O(n log n) with slack.
	if DefaultMaxRounds(105) < 105*7 {
		t.Errorf("DefaultMaxRounds(105) = %d, too small", DefaultMaxRounds(105))
	}
}

func TestSeriesMessagesRecorded(t *testing.T) {
	nw, _ := lineNetwork(6, 5)
	res := Run(context.Background(), nw, Options{TrackSeries: true})
	total := 0
	for _, m := range res.Series {
		total += m.Messages
	}
	if total != res.TotalMessages {
		t.Errorf("series messages %d != total %d", total, res.TotalMessages)
	}
}
