package ref

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

func TestRefID(t *testing.T) {
	u := ident.FromFloat(0.25)
	if got := Real(u).ID(); got != u {
		t.Errorf("Real(u).ID() = %v, want %v", got, u)
	}
	v := Virtual(u, 1)
	if got := v.ID(); got != ident.FromFloat(0.75) {
		t.Errorf("Virtual(u,1).ID() = %v, want 0.75", got)
	}
	if v.IsReal() {
		t.Error("virtual node reports IsReal")
	}
	if !Real(u).IsReal() {
		t.Error("real node reports !IsReal")
	}
}

func TestLessTotalOrder(t *testing.T) {
	u1, u2 := ident.FromFloat(0.1), ident.FromFloat(0.2)
	a, b := Real(u1), Real(u2)
	if !a.Less(b) || b.Less(a) {
		t.Error("order by identifier broken")
	}
	// Identifier tie: virtual node of one owner colliding with a real
	// node of another must still order deterministically.
	c := Virtual(u1, 0) // same as Real(u1)
	if a.Less(c) || c.Less(a) {
		t.Error("identical refs must not be Less in either direction")
	}
	// Same ID via different construction: u1 + 1/2 vs. a real at 0.6.
	v := Virtual(u1, 1) // id 0.6
	r := Real(ident.FromFloat(0.1) + ident.ID(uint64(1)<<63))
	if v.ID() != r.ID() {
		t.Fatal("test setup: ids must collide")
	}
	if v.Less(r) == r.Less(v) {
		t.Error("tie-break must order colliding ids strictly")
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	f := func(o1, o2 uint64, l1, l2 uint8) bool {
		a := Ref{Owner: ident.ID(o1), Level: int(l1 % 63)}
		b := Ref{Owner: ident.ID(o2), Level: int(l2 % 63)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a) // exactly one direction
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAddRemoveContains(t *testing.T) {
	var s Set
	a := Real(ident.FromFloat(0.3))
	b := Virtual(ident.FromFloat(0.3), 2)
	if !s.Add(a) {
		t.Error("first Add returned false")
	}
	if s.Add(a) {
		t.Error("duplicate Add returned true")
	}
	s.Add(b)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Error("Contains missing inserted element")
	}
	if !s.Remove(a) {
		t.Error("Remove returned false for present element")
	}
	if s.Remove(a) {
		t.Error("Remove returned true for absent element")
	}
	if s.Contains(a) {
		t.Error("removed element still present")
	}
}

func TestSetOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Set
	for i := 0; i < 200; i++ {
		s.Add(Ref{Owner: ident.ID(rng.Uint64()), Level: rng.Intn(5)})
	}
	rs := s.Slice()
	if !sort.SliceIsSorted(rs, func(i, j int) bool { return rs[i].Less(rs[j]) }) {
		t.Error("Slice() not sorted by Less")
	}
}

func TestSetMinMax(t *testing.T) {
	var s Set
	if _, ok := s.Min(); ok {
		t.Error("Min on empty set reported ok")
	}
	if _, ok := s.Max(); ok {
		t.Error("Max on empty set reported ok")
	}
	ids := []float64{0.4, 0.1, 0.9, 0.5}
	for _, x := range ids {
		s.Add(Real(ident.FromFloat(x)))
	}
	mn, _ := s.Min()
	mx, _ := s.Max()
	if mn.ID() != ident.FromFloat(0.1) {
		t.Errorf("Min = %v, want 0.1", mn)
	}
	if mx.ID() != ident.FromFloat(0.9) {
		t.Errorf("Max = %v, want 0.9", mx)
	}
}

func TestMaxBelowMinAbove(t *testing.T) {
	var s Set
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8} {
		s.Add(Real(ident.FromFloat(x)))
	}
	if r, ok := s.MaxBelow(ident.FromFloat(0.5)); !ok || r.ID() != ident.FromFloat(0.4) {
		t.Errorf("MaxBelow(0.5) = %v,%v, want 0.4", r, ok)
	}
	if r, ok := s.MaxBelow(ident.FromFloat(0.4)); !ok || r.ID() != ident.FromFloat(0.2) {
		t.Errorf("MaxBelow(0.4) = %v,%v, want 0.2 (strict)", r, ok)
	}
	if _, ok := s.MaxBelow(ident.FromFloat(0.1)); ok {
		t.Error("MaxBelow below all elements reported ok")
	}
	if r, ok := s.MinAbove(ident.FromFloat(0.5)); !ok || r.ID() != ident.FromFloat(0.6) {
		t.Errorf("MinAbove(0.5) = %v,%v, want 0.6", r, ok)
	}
	if r, ok := s.MinAbove(ident.FromFloat(0.6)); !ok || r.ID() != ident.FromFloat(0.8) {
		t.Errorf("MinAbove(0.6) = %v,%v, want 0.8 (strict)", r, ok)
	}
	if _, ok := s.MinAbove(ident.FromFloat(0.9)); ok {
		t.Error("MinAbove above all elements reported ok")
	}
}

func TestSetCloneIndependent(t *testing.T) {
	var s Set
	s.Add(Real(ident.FromFloat(0.5)))
	c := s.Clone()
	c.Add(Real(ident.FromFloat(0.7)))
	if s.Len() != 1 {
		t.Error("Clone shares storage with original")
	}
	if !s.Equal(s.Clone()) {
		t.Error("set not Equal to its own clone")
	}
	if s.Equal(c) {
		t.Error("differing sets compare Equal")
	}
}

func TestSetAddAll(t *testing.T) {
	a := NewSet(Real(ident.FromFloat(0.1)), Real(ident.FromFloat(0.2)))
	b := NewSet(Real(ident.FromFloat(0.2)), Real(ident.FromFloat(0.3)))
	a.AddAll(b)
	if a.Len() != 3 {
		t.Errorf("AddAll union size = %d, want 3", a.Len())
	}
}

func TestSetFilterRemoveIf(t *testing.T) {
	var s Set
	for _, x := range []float64{0.1, 0.2, 0.3, 0.4} {
		s.Add(Real(ident.FromFloat(x)))
	}
	f := s.Filter(func(r Ref) bool { return r.ID() < ident.FromFloat(0.25) })
	if f.Len() != 2 {
		t.Errorf("Filter size = %d, want 2", f.Len())
	}
	if s.Len() != 4 {
		t.Error("Filter mutated receiver")
	}
	n := s.RemoveIf(func(r Ref) bool { return r.ID() > ident.FromFloat(0.25) })
	if n != 2 || s.Len() != 2 {
		t.Errorf("RemoveIf removed %d leaving %d, want 2 and 2", n, s.Len())
	}
}

func TestSetClear(t *testing.T) {
	s := NewSet(Real(ident.FromFloat(0.1)))
	s.Clear()
	if !s.Empty() {
		t.Error("Clear left elements behind")
	}
}

func TestSetInvariantsQuick(t *testing.T) {
	// Random operation sequences keep the set sorted, deduplicated and
	// consistent with a reference map implementation.
	f := func(ops []uint64) bool {
		var s Set
		refm := map[Ref]bool{}
		for _, op := range ops {
			r := Ref{Owner: ident.ID(op >> 2), Level: int(op % 4)}
			if op%2 == 0 {
				s.Add(r)
				refm[r] = true
			} else {
				s.Remove(r)
				delete(refm, r)
			}
		}
		if s.Len() != len(refm) {
			return false
		}
		prev := Ref{}
		for i, r := range s.Slice() {
			if !refm[r] {
				return false
			}
			if i > 0 && !prev.Less(r) {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	refs := make([]Ref, 64)
	for i := range refs {
		refs[i] = Ref{Owner: ident.ID(rng.Uint64()), Level: rng.Intn(6)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s Set
		for _, r := range refs {
			s.Add(r)
		}
	}
}

func BenchmarkSetContains(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var s Set
	refs := make([]Ref, 64)
	for i := range refs {
		refs[i] = Ref{Owner: ident.ID(rng.Uint64()), Level: rng.Intn(6)}
		s.Add(refs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(refs[i%len(refs)])
	}
}
