// Package ref defines references to Re-Chord nodes (real and virtual)
// and the ordered sets used to represent the neighborhoods N_u, N_r and
// N_c of Section 2.2.
//
// A node in the Re-Chord graph is either a real node (a peer) or one of
// its simulated virtual nodes u_i = u + 1/2^i (mod 1). An edge endpoint
// therefore needs more than a bare identifier: two distinct virtual
// nodes of different owners can in principle share an identifier. A Ref
// carries the owner's identifier and the virtual level, from which the
// node's own identifier is derived. Equality is on (owner, level);
// ordering is by identifier with (owner, level) tie-breaking so that
// every min/max/sort operation in the protocol rules is total and
// deterministic.
package ref

import (
	"fmt"
	"sort"

	"repro/internal/ident"
)

// Ref identifies a node in the Re-Chord graph.
type Ref struct {
	// Owner is the identifier of the real node (peer) this node
	// belongs to. For a real node, Owner is the node's own identifier.
	Owner ident.ID
	// Level is the virtual-node level i in u_i = u + 1/2^i; level 0 is
	// the real node itself.
	Level int
}

// Real constructs a reference to the real node with identifier u.
func Real(u ident.ID) Ref { return Ref{Owner: u} }

// Virtual constructs a reference to the level-i virtual node of u.
func Virtual(u ident.ID, level int) Ref { return Ref{Owner: u, Level: level} }

// ID returns the node's position in the identifier space.
func (r Ref) ID() ident.ID { return ident.Sibling(r.Owner, r.Level) }

// IsReal reports whether the reference denotes a real node (a peer).
func (r Ref) IsReal() bool { return r.Level == 0 }

// Less imposes the total order used by all protocol rules: by
// identifier first (the linear order on [0,1) the linearization rules
// sort by), breaking identifier ties by owner and level so distinct
// nodes never compare equal.
func (r Ref) Less(o Ref) bool {
	a, b := r.ID(), o.ID()
	if a != b {
		return a < b
	}
	if r.Owner != o.Owner {
		return r.Owner < o.Owner
	}
	return r.Level < o.Level
}

// String renders the reference for logs and test failures.
func (r Ref) String() string {
	if r.IsReal() {
		return fmt.Sprintf("R(%s)", r.Owner)
	}
	return fmt.Sprintf("V(%s@%d=%s)", r.Owner, r.Level, r.ID())
}

// Set is an ordered set of Refs, sorted by Ref.Less. The zero value is
// an empty set ready to use. Sets are small (neighborhoods hold a
// handful of nodes), so a sorted slice beats a map on every operation
// the protocol performs, and iteration order is deterministic for free.
type Set struct {
	rs []Ref
}

// NewSet returns a set containing the given refs.
func NewSet(rs ...Ref) Set {
	var s Set
	for _, r := range rs {
		s.Add(r)
	}
	return s
}

// Len returns the number of elements.
func (s Set) Len() int { return len(s.rs) }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s.rs) == 0 }

func (s Set) search(r Ref) int {
	return sort.Search(len(s.rs), func(i int) bool { return !s.rs[i].Less(r) })
}

// Contains reports whether r is in the set.
func (s Set) Contains(r Ref) bool {
	i := s.search(r)
	return i < len(s.rs) && s.rs[i] == r
}

// Add inserts r, reporting whether the set changed.
func (s *Set) Add(r Ref) bool {
	i := s.search(r)
	if i < len(s.rs) && s.rs[i] == r {
		return false
	}
	s.rs = append(s.rs, Ref{})
	copy(s.rs[i+1:], s.rs[i:])
	s.rs[i] = r
	return true
}

// Remove deletes r, reporting whether it was present.
func (s *Set) Remove(r Ref) bool {
	i := s.search(r)
	if i >= len(s.rs) || s.rs[i] != r {
		return false
	}
	s.rs = append(s.rs[:i], s.rs[i+1:]...)
	return true
}

// AddAll inserts every element of o.
func (s *Set) AddAll(o Set) {
	for _, r := range o.rs {
		s.Add(r)
	}
}

// MergeSorted sets s to the deduplicated union of the two sorted ref
// slices (both ordered by Less, duplicates within an input allowed),
// reusing s's storage. A linear two-pointer merge: unions of many sets
// build in O(total) instead of Add's per-element binary search plus
// insertion shift. The inputs must not alias s's storage.
func (s *Set) MergeSorted(a, b []Ref) {
	out := s.rs[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		var r Ref
		switch {
		case a[i] == b[j]:
			r = a[i]
			i++
			j++
		case a[i].Less(b[j]):
			r = a[i]
			i++
		default:
			r = b[j]
			j++
		}
		if len(out) == 0 || out[len(out)-1] != r {
			out = append(out, r)
		}
	}
	for ; i < len(a); i++ {
		if len(out) == 0 || out[len(out)-1] != a[i] {
			out = append(out, a[i])
		}
	}
	for ; j < len(b); j++ {
		if len(out) == 0 || out[len(out)-1] != b[j] {
			out = append(out, b[j])
		}
	}
	s.rs = out
}

// Slice returns the elements in increasing order. The returned slice
// aliases the set's storage; callers must not mutate it or hold it
// across set mutations.
func (s Set) Slice() []Ref { return s.rs }

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{rs: make([]Ref, len(s.rs))}
	copy(c.rs, s.rs)
	return c
}

// CopyFrom makes s an exact copy of o, reusing s's storage.
func (s *Set) CopyFrom(o Set) {
	s.rs = append(s.rs[:0], o.rs...)
}

// Equal reports whether both sets hold exactly the same elements.
func (s Set) Equal(o Set) bool {
	if len(s.rs) != len(o.rs) {
		return false
	}
	for i := range s.rs {
		if s.rs[i] != o.rs[i] {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() { s.rs = s.rs[:0] }

// Min returns the smallest element; ok is false when the set is empty.
func (s Set) Min() (r Ref, ok bool) {
	if len(s.rs) == 0 {
		return Ref{}, false
	}
	return s.rs[0], true
}

// Max returns the largest element; ok is false when the set is empty.
func (s Set) Max() (r Ref, ok bool) {
	if len(s.rs) == 0 {
		return Ref{}, false
	}
	return s.rs[len(s.rs)-1], true
}

// MaxBelow returns the largest element whose identifier is strictly
// smaller than id (linear order), as used by guards of the form
// "max{x : x < v}".
func (s Set) MaxBelow(id ident.ID) (Ref, bool) {
	var best Ref
	ok := false
	for i := len(s.rs) - 1; i >= 0; i-- {
		if s.rs[i].ID() < id {
			// Slice is ordered by (id, owner, level); the first hit
			// scanning from the top is the maximum below id.
			best, ok = s.rs[i], true
			break
		}
	}
	return best, ok
}

// MinAbove returns the smallest element whose identifier is strictly
// greater than id (linear order).
func (s Set) MinAbove(id ident.ID) (Ref, bool) {
	for _, r := range s.rs {
		if r.ID() > id {
			return r, true
		}
	}
	return Ref{}, false
}

// Filter returns a new set with the elements for which keep returns
// true.
func (s Set) Filter(keep func(Ref) bool) Set {
	var out Set
	for _, r := range s.rs {
		if keep(r) {
			out.rs = append(out.rs, r)
		}
	}
	return out
}

// RemoveIf deletes every element for which drop returns true and
// reports how many were removed.
func (s *Set) RemoveIf(drop func(Ref) bool) int {
	kept := s.rs[:0]
	removed := 0
	for _, r := range s.rs {
		if drop(r) {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	s.rs = kept
	return removed
}

// String renders the set for logs and test failures.
func (s Set) String() string {
	return fmt.Sprintf("%v", s.rs)
}

// MaxWireLevel bounds Ref.Level in compact wire encodings: protocol
// refs never exceed ident.MaxLevel, and the one-byte headroom keeps
// the bound cheap for a strict decoder to enforce before it trusts a
// level to size anything.
const MaxWireLevel = 255

// WireValid reports whether the reference may appear on the wire: a
// non-negative level within MaxWireLevel. Encoders check it before
// emitting, decoders after reading.
func (r Ref) WireValid() bool { return r.Level >= 0 && r.Level <= MaxWireLevel }
