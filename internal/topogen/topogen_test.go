package topogen

import (
	"math/rand"
	"testing"

	"repro/internal/rechord"
)

func TestRandomIDsDistinctNonZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := RandomIDs(500, rng)
	if len(ids) != 500 {
		t.Fatalf("got %d ids", len(ids))
	}
	seen := map[uint64]bool{}
	for _, id := range ids {
		if id == 0 {
			t.Fatal("zero id generated")
		}
		if seen[uint64(id)] {
			t.Fatal("duplicate id generated")
		}
		seen[uint64(id)] = true
	}
}

// TestAllGeneratorsWeaklyConnected checks the premise of Theorem 1.1:
// every generator must produce a weakly connected real-node graph.
func TestAllGeneratorsWeaklyConnected(t *testing.T) {
	for _, gen := range All() {
		for _, n := range []int{2, 3, 10, 33} {
			rng := rand.New(rand.NewSource(int64(n)))
			ids := RandomIDs(n, rng)
			nw := gen.Build(ids, rng, rechord.Config{})
			if !nw.Graph().RealWeaklyConnected() {
				t.Errorf("%s with n=%d is not weakly connected", gen.Name, n)
			}
			if nw.NumPeers() != n {
				t.Errorf("%s built %d peers, want %d", gen.Name, nw.NumPeers(), n)
			}
		}
	}
}

func TestPreStabilizedConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids := RandomIDs(12, rng)
	nw := PreStabilized().Build(ids, rng, rechord.Config{})
	if !nw.Graph().RealWeaklyConnected() {
		t.Error("prestabilized network not weakly connected")
	}
	// It must match the oracle almost immediately (see rechord tests
	// for the settling bound); here just verify the seeded edges exist.
	idl := rechord.ComputeIdeal(ids)
	if !idl.AlmostStable(nw) {
		t.Error("prestabilized network missing desired edges")
	}
}

func TestBridgedPartitionsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{0, 1, 5, 100} {
		ids := RandomIDs(7, rng)
		nw := BridgedPartitions(k).Build(ids, rng, rechord.Config{})
		if !nw.Graph().RealWeaklyConnected() {
			t.Errorf("bridged-%d not weakly connected", k)
		}
	}
}

func TestGeneratorsDeterministicGivenSeed(t *testing.T) {
	for _, gen := range All() {
		build := func() string {
			rng := rand.New(rand.NewSource(7))
			ids := RandomIDs(9, rng)
			nw := gen.Build(ids, rng, rechord.Config{})
			return nw.Graph().DOT()
		}
		if build() != build() {
			t.Errorf("%s not deterministic for a fixed seed", gen.Name)
		}
	}
}

func TestLineIsSingleChain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ids := RandomIDs(10, rng)
	nw := Line().Build(ids, rng, rechord.Config{})
	g := nw.Graph()
	if got := g.TotalEdges(); got != 9 {
		t.Errorf("line has %d edges, want 9", got)
	}
}

func TestCliqueEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ids := RandomIDs(6, rng)
	nw := Clique().Build(ids, rng, rechord.Config{})
	if got := nw.Graph().TotalEdges(); got != 30 {
		t.Errorf("clique has %d edges, want 30", got)
	}
}

func TestGarbageSurvivesPurge(t *testing.T) {
	// The garbage generator seeds dangling references; one round of
	// the protocol must absorb them without panicking and keep the
	// real graph connected.
	rng := rand.New(rand.NewSource(6))
	ids := RandomIDs(15, rng)
	nw := Garbage().Build(ids, rng, rechord.Config{})
	for i := 0; i < 3; i++ {
		nw.Step()
	}
	if !nw.Graph().RealWeaklyConnected() {
		t.Error("garbage network disconnected after purge rounds")
	}
}
