// Package topogen builds initial network states for the experiments:
// the paper's "random undirected weakly connected graph" initialization
// (Section 5) plus a collection of adversarial weakly connected states
// that exercise self-stabilization from structured corners (lines,
// stars, cliques, bridged partitions) and garbage states with stale
// virtual nodes and arbitrary edge markings.
package topogen

import (
	"fmt"
	"math/rand"

	"repro/internal/chord"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
)

// RandomIDs draws n distinct identifiers uniformly at random, the
// paper's id assignment ("chosen uniformly at random from (0,1)").
func RandomIDs(n int, rng *rand.Rand) []ident.ID {
	seen := make(map[ident.ID]bool, n)
	out := make([]ident.ID, 0, n)
	for len(out) < n {
		id := ident.ID(rng.Uint64())
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// newNet creates a network pre-sized for the peer set (reserving the
// interner's dense per-peer tables in one step) and adds every peer.
// ids are inserted in the given order; pass a sorted copy for
// generators that want deterministic slot assignment by identifier.
func newNet(cfg rechord.Config, ids []ident.ID) *rechord.Network {
	nw := rechord.NewNetwork(cfg)
	nw.Reserve(len(ids))
	for _, id := range ids {
		nw.AddPeer(id)
	}
	return nw
}

// Generator produces an initial network over the given peer ids. The
// produced state must leave the real nodes weakly connected; anything
// else about it may be arbitrary.
type Generator struct {
	Name  string
	Build func(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network
}

// Random is the paper's initialization: a random spanning tree over
// the peers (guaranteeing weak connectivity) plus extra random edges,
// all unmarked, attached to the peers' real nodes.
func Random() Generator {
	return Generator{Name: "random", Build: buildRandom}
}

func buildRandom(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network {
	nw := newNet(cfg, ids)
	// Random spanning tree: attach each node to a random earlier node
	// with a random direction, mirroring an undirected random graph.
	perm := rng.Perm(len(ids))
	for i := 1; i < len(ids); i++ {
		a, b := ids[perm[i]], ids[perm[rng.Intn(i)]]
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		nw.SeedEdge(ref.Real(a), ref.Real(b), graph.Unmarked)
	}
	// Extra random edges: about one per node.
	for i := 0; i < len(ids); i++ {
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if a != b {
			nw.SeedEdge(ref.Real(a), ref.Real(b), graph.Unmarked)
		}
	}
	return nw
}

// Line connects the peers in one directed chain in random order: the
// worst case for linearization-style protocols.
func Line() Generator {
	return Generator{Name: "line", Build: func(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network {
		nw := newNet(cfg, ids)
		perm := rng.Perm(len(ids))
		for i := 1; i < len(ids); i++ {
			nw.SeedEdge(ref.Real(ids[perm[i-1]]), ref.Real(ids[perm[i]]), graph.Unmarked)
		}
		return nw
	}}
}

// Star connects every peer to one random center, which knows nobody.
func Star() Generator {
	return Generator{Name: "star", Build: func(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network {
		nw := newNet(cfg, ids)
		center := ids[rng.Intn(len(ids))]
		for _, id := range ids {
			if id != center {
				nw.SeedEdge(ref.Real(id), ref.Real(center), graph.Unmarked)
			}
		}
		return nw
	}}
}

// Clique gives every peer an edge to every other peer: maximal initial
// degree, stressing the pruning rules.
func Clique() Generator {
	return Generator{Name: "clique", Build: func(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network {
		nw := newNet(cfg, ids)
		for _, a := range ids {
			for _, b := range ids {
				if a != b {
					nw.SeedEdge(ref.Real(a), ref.Real(b), graph.Unmarked)
				}
			}
		}
		return nw
	}}
}

// BridgedPartitions splits the peers into k id-contiguous groups,
// wires each group densely, and joins consecutive groups by a single
// bridge edge — the "network partition healed by one link" scenario
// from the introduction.
func BridgedPartitions(k int) Generator {
	return Generator{Name: fmt.Sprintf("bridged-%d", k), Build: func(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network {
		sorted := append([]ident.ID(nil), ids...)
		ident.Sort(sorted)
		nw := newNet(cfg, sorted)
		groups := k
		if groups < 1 {
			groups = 1
		}
		if groups > len(sorted) {
			groups = len(sorted)
		}
		size := (len(sorted) + groups - 1) / groups
		var prevRep ident.ID
		for g := 0; g*size < len(sorted); g++ {
			lo, hi := g*size, (g+1)*size
			if hi > len(sorted) {
				hi = len(sorted)
			}
			grp := sorted[lo:hi]
			for i := 1; i < len(grp); i++ {
				nw.SeedEdge(ref.Real(grp[i-1]), ref.Real(grp[i]), graph.Unmarked)
				nw.SeedEdge(ref.Real(grp[rng.Intn(i)]), ref.Real(grp[i]), graph.Unmarked)
			}
			if g > 0 {
				nw.SeedEdge(ref.Real(prevRep), ref.Real(grp[0]), graph.Unmarked)
			}
			prevRep = grp[len(grp)-1]
		}
		return nw
	}}
}

// Garbage produces a hostile but weakly connected state: a random
// spanning tree whose edges are randomly marked as unmarked, ring or
// connection edges, attached to random (possibly absurd) virtual
// levels, plus stale virtual nodes with random neighborhoods and
// dangling references to nonexistent peers.
func Garbage() Generator {
	return Generator{Name: "garbage", Build: func(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network {
		nw := newNet(cfg, ids)
		kinds := graph.Kinds()
		randRef := func(id ident.ID) ref.Ref {
			return ref.Virtual(id, rng.Intn(8))
		}
		perm := rng.Perm(len(ids))
		for i := 1; i < len(ids); i++ {
			a, b := ids[perm[i]], ids[perm[rng.Intn(i)]]
			nw.SeedEdge(randRef(a), randRef(b), kinds[rng.Intn(len(kinds))])
		}
		// Stale virtual nodes with junk neighborhoods: edges to random
		// peers at random levels and to peers that do not exist.
		for _, id := range ids {
			for j := 0; j < 3; j++ {
				tgt := ids[rng.Intn(len(ids))]
				nw.SeedEdge(randRef(id), randRef(tgt), kinds[rng.Intn(len(kinds))])
			}
			// Dangling reference to a nonexistent peer.
			nw.SeedEdge(ref.Real(id), ref.Real(ident.ID(rng.Uint64())|1), graph.Unmarked)
		}
		return nw
	}}
}

// PreStabilized builds the network already in its stable state (via
// one oracle-seeded convergence would be circular, so it seeds the
// ideal topology directly). Used to measure join/leave recovery from a
// stable base and to verify the stable state is a fixed point.
func PreStabilized() Generator {
	return Generator{Name: "prestabilized", Build: func(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network {
		nw := newNet(cfg, ids)
		idl := rechord.ComputeIdeal(ids)
		for _, x := range idl.Nodes() {
			nu := idl.Nu(x)
			for _, y := range nu.Slice() {
				nw.SeedEdge(x, y, graph.Unmarked)
			}
		}
		nodes := idl.Nodes()
		if len(nodes) > 1 {
			mn, mx := nodes[0], nodes[len(nodes)-1]
			nw.SeedEdge(mx, mn, graph.Ring)
			nw.SeedEdge(mn, mx, graph.Ring)
		}
		return nw
	}}
}

// Loopy seeds the state that defeats classic Chord's maintenance
// (Section 1's motivation): every peer's successor pointer is the peer
// stride positions clockwise, with the stride chosen coprime to n so
// the pointers form a single cycle winding stride times around the
// identifier circle. Classic Chord can never untangle it; Re-Chord
// recovers the correct topology from it like from any other weakly
// connected state.
func Loopy() Generator {
	return Generator{Name: "loopy", Build: func(ids []ident.ID, rng *rand.Rand, cfg rechord.Config) *rechord.Network {
		sorted := append([]ident.ID(nil), ids...)
		ident.Sort(sorted)
		nw := newNet(cfg, sorted)
		n := len(sorted)
		if n < 2 {
			return nw
		}
		stride := chord.LoopyStride(n)
		for i, id := range sorted {
			nw.SeedEdge(ref.Real(id), ref.Real(sorted[(i+stride)%n]), graph.Unmarked)
		}
		return nw
	}}
}

// All returns every generator, for sweep experiments. k for
// BridgedPartitions defaults to 3.
func All() []Generator {
	return []Generator{Random(), Line(), Star(), Clique(), BridgedPartitions(3), Garbage()}
}
