// Package workload is the serving layer of the reproduction: an
// open/closed-loop traffic generator that fires concurrent Get/Put/
// Delete operations at a live Re-Chord network from a pool of client
// workers, with pluggable key distributions (uniform, Zipf, shifting
// hotspot), deterministic per-worker RNG seeding, and optional churn
// interleaved with the traffic so lookups race against
// re-stabilization — the regime the self-stabilization protocol exists
// for (Theorem 1.1's "faithfully emulate any applications on top of
// Chord", under the churn of Section 4).
//
// The hot path is built on the two layers refactored for it: the
// sharded dht.Store (per-peer buckets behind fine-grained locks) and
// the epoch-cached routing.Cache (tables invalidated by peer change
// epochs instead of rebuilt per lookup). Per-op latency and hop counts
// are recorded into per-worker stats.Histogram shards and merged after
// the run, so the measurement itself adds no cross-worker contention.
//
// Concurrency model: client workers only read the network (routing)
// and share the store's shard locks; the churn driver is the only
// network mutator. A single RWMutex serializes the two — workers hold
// the read side per operation, the driver takes the write side to
// apply a membership event or step the protocol a few rounds, then
// releases it so lookups interleave with a network that is mid-repair.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/churn"
	"repro/internal/dht"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ErrConfig reports an invalid Config, distinguishable with errors.Is
// from runtime failures (routing errors, empty network) so callers can
// keep configuration mistakes and serving faults in separate buckets.
var ErrConfig = errors.New("workload: invalid configuration")

// ChurnConfig interleaves membership events with the traffic.
type ChurnConfig struct {
	// Events is the number of membership events (random mix of join,
	// leave, fail) applied during the run; 0 disables churn.
	Events int
	// EveryOps is how many completed operations separate consecutive
	// events (default: spread evenly across the run).
	EveryOps int
	// StepChunk is how many protocol rounds the driver executes per
	// write-lock acquisition while the network re-stabilizes; smaller
	// chunks give lookups more interleavings with mid-repair state
	// (default 4).
	StepChunk int
	// OnApply, when non-nil, is called after each membership event is
	// successfully applied (from the churn-driver goroutine, no locks
	// held). The cluster facade uses it to publish lifecycle events.
	OnApply func(ev churn.Event)
	// OnSettle, when non-nil, is called after the network re-stabilizes
	// following an applied event, with the number of protocol rounds
	// the repair took (from the churn-driver goroutine, no locks held).
	OnSettle func(rounds int)
}

// Config parameterizes one workload run.
type Config struct {
	// Workers is the number of concurrent client workers (default 4).
	Workers int
	// Ops is the total operation count, split across workers.
	Ops int
	// Duration, when positive, replaces Ops as the stop condition:
	// workers run until the deadline. Duration runs are not
	// reproducible op-for-op (the count depends on timing).
	Duration time.Duration
	// Keyspace is the number of distinct keys (default 4096; must be
	// at least Workers).
	Keyspace int
	// Distribution is uniform, zipf or hotspot (default uniform).
	Distribution string
	// ZipfS, ZipfV parameterize the zipf distribution (default 1.2, 1).
	ZipfS, ZipfV float64
	// HotFraction, HotKeys, HotShiftEvery parameterize the shifting
	// hotspot (defaults 0.9, Keyspace/64, 1000 ops).
	HotFraction   float64
	HotKeys       int
	HotShiftEvery int
	// GetFrac, PutFrac, DeleteFrac is the op mix (default .80/.15/.05;
	// must sum to ~1).
	GetFrac, PutFrac, DeleteFrac float64
	// Preload stores this many keys before the measured run.
	Preload int
	// Seed drives every random choice. Same seed + same config =>
	// identical per-worker op sequences and identical final store
	// contents (writes are owner-partitioned per worker, see below).
	Seed int64
	// Rate, when positive, paces the run as an open loop targeting
	// this many ops/sec across all workers; 0 is a closed loop (each
	// worker fires its next op as soon as the previous returns).
	Rate float64
	// NoCache disables the epoch-cached table router and routes every
	// operation through the state-walk router (the baseline the cache
	// is measured against).
	NoCache bool
	// Churn interleaves membership events with the traffic.
	Churn ChurnConfig
	// Cache, when non-nil (and NoCache unset), is the router cache to
	// serve table lookups from instead of a fresh per-run one — the
	// cluster facade injects its long-lived cache so hit/miss/
	// invalidation telemetry spans the cache's whole life while the
	// run's report stays a per-run delta.
	Cache *routing.Cache
	// Obs, when non-nil, receives live serving-path telemetry during
	// the run (in-flight gauge, error taxonomy, sharded latency/hop
	// histograms) in addition to the per-run Result. It must have at
	// least numOps op slots, in OpGet/OpPut/OpDelete order; the
	// cluster facade passes one long-lived set so metrics accumulate
	// across runs and can be snapshotted mid-run without locks.
	Obs *obs.WorkloadMetrics
}

// withDefaults validates and fills in defaults.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Keyspace <= 0 {
		cfg.Keyspace = 4096
	}
	if cfg.Keyspace < cfg.Workers {
		return cfg, fmt.Errorf("%w: keyspace %d smaller than %d workers", ErrConfig, cfg.Keyspace, cfg.Workers)
	}
	if cfg.Ops <= 0 && cfg.Duration <= 0 {
		return cfg, fmt.Errorf("%w: need Ops or Duration", ErrConfig)
	}
	if cfg.GetFrac == 0 && cfg.PutFrac == 0 && cfg.DeleteFrac == 0 {
		cfg.GetFrac, cfg.PutFrac, cfg.DeleteFrac = 0.80, 0.15, 0.05
	}
	sum := cfg.GetFrac + cfg.PutFrac + cfg.DeleteFrac
	if sum < 0.999 || sum > 1.001 {
		return cfg, fmt.Errorf("%w: op mix %.3f+%.3f+%.3f does not sum to 1",
			ErrConfig, cfg.GetFrac, cfg.PutFrac, cfg.DeleteFrac)
	}
	if _, err := newKeyGen(cfg, rand.New(rand.NewSource(0))); err != nil {
		return cfg, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if cfg.Churn.Events > 0 {
		if cfg.Churn.EveryOps <= 0 {
			if cfg.Ops <= 0 {
				// Duration mode has no op total to spread events over;
				// a derived default would fire them all at the start.
				return cfg, fmt.Errorf("%w: Duration mode with churn requires Churn.EveryOps", ErrConfig)
			}
			every := cfg.Ops / (cfg.Churn.Events + 1)
			if every < 1 {
				every = 1
			}
			cfg.Churn.EveryOps = every
		}
		if cfg.Churn.StepChunk <= 0 {
			cfg.Churn.StepChunk = 4
		}
	}
	return cfg, nil
}

// Op kinds, indexing Result.PerOp.
const (
	OpGet = iota
	OpPut
	OpDelete
	numOps
)

var opNames = [numOps]string{"get", "put", "delete"}

// OpStats is the telemetry of one operation kind.
type OpStats struct {
	Name    string
	Count   int
	Errors  int
	Latency *stats.Histogram // nanoseconds
	Hops    *stats.Histogram // inter-peer hops
}

// Result is the merged telemetry of a run.
type Result struct {
	Ops        int           // operations completed
	Errors     int           // routing failures surfaced to clients
	NotFound   int           // Gets that reached the owner but missed
	Fallbacks  int           // table-route failures recovered by the state walk
	Elapsed    time.Duration // wall-clock of the measured phase
	Throughput float64       // ops per second

	Latency *stats.Histogram // all ops, nanoseconds
	Hops    *stats.Histogram // all ops, inter-peer hops
	PerOp   [numOps]OpStats

	CacheHits, CacheMisses uint64 // routing.Cache counters (0 with NoCache)
	ChurnApplied           int    // membership events actually applied

	// OpsFingerprint hashes every worker's (kind, key) op sequence,
	// combined order-insensitively across workers; StoreFingerprint
	// hashes the final key -> value contents independent of bucket
	// placement. Same seed + config reproduce both (StoreFingerprint
	// additionally requires a churn-free run, since a mid-churn routing
	// failure can drop a write).
	OpsFingerprint   uint64
	StoreFingerprint uint64
	StoreLen         int
}

// Summary renders the headline numbers as one line.
func (r *Result) Summary() string {
	return fmt.Sprintf("%d ops in %v (%.0f ops/s), lat p50=%s p99=%s p99.9=%s, hops mean=%.2f p99=%.0f, errors=%d notfound=%d fallbacks=%d",
		r.Ops, r.Elapsed.Round(time.Millisecond), r.Throughput,
		time.Duration(r.Latency.Percentile(50)), time.Duration(r.Latency.Percentile(99)),
		time.Duration(r.Latency.Percentile(99.9)),
		r.Hops.Mean(), r.Hops.Percentile(99), r.Errors, r.NotFound, r.Fallbacks)
}

// failoverResolver routes through the epoch-cached table router and
// falls back to the state-walk router when a table is incomplete or
// stale mid-churn — table routing is the fast path, the walk is the
// one that tolerates partially repaired state.
type failoverResolver struct {
	cache     *routing.Cache
	walk      routing.Walker
	fallbacks *atomic.Int64
}

func (r failoverResolver) Resolve(from, key ident.ID) (ident.ID, int, error) {
	if owner, hops, err := r.cache.Resolve(from, key); err == nil {
		return owner, hops, nil
	}
	r.fallbacks.Add(1)
	return r.walk.Resolve(from, key)
}

// workerResult is one worker's private telemetry shard; merged after
// the run so the hot path shares nothing.
type workerResult struct {
	lat, hops stats.Histogram
	perLat    [numOps]stats.Histogram
	perHops   [numOps]stats.Histogram
	count     [numOps]int
	errs      [numOps]int
	notFound  int
	ops       int
	opsHash   uint64
}

type engine struct {
	sched rechord.Scheduler
	nw    *rechord.Network
	cfg   Config
	store *dht.Store
	cache *routing.Cache

	// netMu serializes network mutation (churn driver, write side)
	// against routing reads (workers, read side).
	netMu sync.RWMutex

	opsDone   atomic.Int64
	fallbacks atomic.Int64
	deadline  time.Time

	// Cache counters at run start, so the result reports a per-run
	// delta even over an injected long-lived cache.
	cacheHits0, cacheMisses0 uint64
}

// Run drives the workload against the scheduler's network and returns
// the merged telemetry. Passing the network itself serves traffic
// under the synchronous round engine; passing a rechord.AsyncRunner
// serves the same traffic while re-stabilization proceeds under the
// asynchronous adversary — lookups then race genuinely stale state
// mid-repair, delayed messages and all. The network must currently be
// stable; it is returned re-stabilized (the churn driver runs every
// event to quiescence before the run ends).
//
// Cancellation is honored end to end: workers stop before their next
// operation, and the churn driver stops both its event waiting and its
// re-stabilization stepping. A canceled Run returns the telemetry
// gathered so far together with ctx.Err(); the network is left at a
// step barrier, consistent and steppable (possibly mid-repair — run
// sim.Run on the same scheduler to finish the re-stabilization).
func Run(ctx context.Context, sched rechord.Scheduler, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw := sched.Network()
	e := &engine{sched: sched, nw: nw, cfg: cfg}

	var resolver dht.Resolver
	var hits0, misses0 uint64
	if cfg.NoCache {
		resolver = routing.Walker{NW: nw}
	} else {
		e.cache = cfg.Cache
		if e.cache == nil {
			e.cache = routing.NewCache(nw)
		}
		// The caller may hand in a long-lived, pre-warmed cache; the
		// run's report stays a per-run delta either way.
		hits0, misses0 = e.cache.Stats()
		resolver = failoverResolver{cache: e.cache, walk: routing.Walker{NW: nw}, fallbacks: &e.fallbacks}
	}
	e.cacheHits0, e.cacheMisses0 = hits0, misses0
	e.store = dht.NewWithResolver(nw, resolver)

	homes := nw.Peers()
	if len(homes) == 0 {
		return nil, fmt.Errorf("workload: empty network")
	}

	// Preload, unmeasured: key i gets a deterministic seed value. Its
	// later fate is deterministic too, because only the worker owning
	// i's residue class ever writes it.
	for i := 0; i < cfg.Preload && i < cfg.Keyspace; i++ {
		if _, _, err := e.store.Put(homes[i%len(homes)], keyName(i), fmt.Sprintf("seed#%d", i)); err != nil {
			return nil, fmt.Errorf("workload: preload: %w", err)
		}
	}

	// Pre-generate the churn sequence from the pre-run membership so
	// the event list itself is seed-deterministic.
	var events []churn.Event
	if cfg.Churn.Events > 0 {
		events = churn.RandomEvents(nw, cfg.Churn.Events, rand.New(rand.NewSource(cfg.Seed^0x5DEECE66D)))
	}

	results := make([]workerResult, cfg.Workers)
	start := time.Now()
	if cfg.Duration > 0 {
		e.deadline = start.Add(cfg.Duration)
	}

	workersDone := make(chan struct{})
	churnDone := make(chan int, 1)
	go func() {
		churnDone <- e.churnDriver(ctx, events, workersDone)
	}()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(ctx, w, homes, start, &results[w])
		}(w)
	}
	wg.Wait()
	close(workersDone)
	applied := <-churnDone
	elapsed := time.Since(start)

	// Merge the shards.
	res := &Result{
		Elapsed:      elapsed,
		ChurnApplied: applied,
		Fallbacks:    int(e.fallbacks.Load()),
		Latency:      &stats.Histogram{},
		Hops:         &stats.Histogram{},
	}
	for k := 0; k < numOps; k++ {
		res.PerOp[k] = OpStats{Name: opNames[k], Latency: &stats.Histogram{}, Hops: &stats.Histogram{}}
	}
	for w := range results {
		r := &results[w]
		res.Ops += r.ops
		res.NotFound += r.notFound
		res.Latency.Merge(&r.lat)
		res.Hops.Merge(&r.hops)
		for k := 0; k < numOps; k++ {
			res.PerOp[k].Count += r.count[k]
			res.PerOp[k].Errors += r.errs[k]
			res.Errors += r.errs[k]
			res.PerOp[k].Latency.Merge(&r.perLat[k])
			res.PerOp[k].Hops.Merge(&r.perHops[k])
		}
		res.OpsFingerprint ^= mix64(r.opsHash + uint64(w)*0x9E3779B97F4A7C15)
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	if e.cache != nil {
		hits, misses := e.cache.Stats()
		res.CacheHits, res.CacheMisses = hits-e.cacheHits0, misses-e.cacheMisses0
	}
	res.StoreFingerprint = e.store.Fingerprint()
	res.StoreLen = e.store.Len()
	return res, ctx.Err()
}

// worker runs one client: a deterministic op stream (seeded RNG per
// worker) executed against the store under the network read lock. It
// returns early when the context is done.
func (e *engine) worker(ctx context.Context, w int, homes []ident.ID, start time.Time, out *workerResult) {
	cfg := e.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + int64(w+1)*int64(0x9E3779B97F4A7C15>>1)))
	// The distribution was validated by withDefaults, so this cannot
	// fail.
	gen, _ := newKeyGen(cfg, rng)
	n := opsFor(cfg, w)
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(cfg.Workers) / cfg.Rate * float64(time.Second))
	}
	for i := 0; cfg.Duration > 0 || i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		if cfg.Duration > 0 && time.Now().After(e.deadline) {
			return
		}
		if interval > 0 {
			// Open loop: release op i at its scheduled time, measuring
			// the latency the op would impose on an arrival process
			// rather than the worker's own completion pace. The pacing
			// sleep stays interruptible so cancellation is not delayed
			// by a slow target rate.
			if !sleepCtx(ctx, time.Until(start.Add(time.Duration(i)*interval))) {
				return
			}
		}
		kind := pickOp(rng, cfg)
		idx := gen.next(i)
		if kind != OpGet {
			idx = writeSlot(idx, w, cfg)
		}
		key := keyName(idx)
		out.opsHash = fnvMix(out.opsHash, kind, idx)
		hi := rng.Intn(len(homes))

		if cfg.Obs != nil {
			cfg.Obs.InFlight.Add(1)
		}
		t0 := time.Now()
		e.netMu.RLock()
		home := e.aliveHome(homes, hi)
		var hops int
		var opErr error
		switch kind {
		case OpGet:
			_, hops, opErr = e.store.Get(home, key)
		case OpPut:
			_, hops, opErr = e.store.Put(home, key, fmt.Sprintf("w%d#%d", w, i))
		case OpDelete:
			_, hops, opErr = e.store.Delete(home, key)
		}
		e.netMu.RUnlock()
		lat := float64(time.Since(t0).Nanoseconds())
		if cfg.Obs != nil {
			cfg.Obs.InFlight.Add(-1)
		}

		out.ops++
		out.count[kind]++
		out.lat.Observe(lat)
		out.perLat[kind].Observe(lat)
		routed := opErr == nil || errorsIsNotFound(opErr)
		switch {
		case opErr == nil:
			out.hops.Observe(float64(hops))
			out.perHops[kind].Observe(float64(hops))
		case errorsIsNotFound(opErr):
			out.notFound++
			out.hops.Observe(float64(hops))
			out.perHops[kind].Observe(float64(hops))
		default:
			out.errs[kind]++
		}
		if cfg.Obs != nil {
			e.observeOp(w, kind, lat, hops, routed, opErr)
		}
		e.opsDone.Add(1)
	}
}

// observeOp mirrors one completed op into the live metrics set. It
// observes into worker-sharded histograms, so concurrent workers never
// contend, and routed ops (including not-found, which resolved an
// owner) contribute their hop count while routing failures feed the
// error taxonomy instead.
func (e *engine) observeOp(w, kind int, lat float64, hops int, routed bool, opErr error) {
	m := e.cfg.Obs
	m.Ops.Inc()
	m.LatencyNS.Observe(w, lat)
	op := m.Op(kind)
	op.Ops.Inc()
	op.LatencyNS.Observe(w, lat)
	if routed {
		m.Hops.Observe(w, float64(hops))
		op.Hops.Observe(w, float64(hops))
	}
	switch {
	case opErr == nil:
	case errorsIsNotFound(opErr):
		m.NotFound.Inc()
	case errors.Is(opErr, dht.ErrUnknownPeer):
		m.UnknownPeer.Inc()
		op.Errors.Inc()
	default:
		m.RouteErrors.Inc()
		op.Errors.Inc()
	}
}

// aliveHome returns homes[hi] or, when churn removed it, the next
// still-present home clockwise in the snapshot (callers hold the
// network read lock).
func (e *engine) aliveHome(homes []ident.ID, hi int) ident.ID {
	for range homes {
		if e.nw.Peer(homes[hi]) != nil {
			return homes[hi]
		}
		hi = (hi + 1) % len(homes)
	}
	// Every pre-run home departed; fall back to any current peer.
	return e.nw.Peers()[0]
}

// churnDriver applies the pre-generated events, spaced by completed
// ops, and steps whichever scheduler is active back to quiescence in
// small chunks so client lookups interleave with mid-repair state
// (under the asynchronous scheduler, with mid-flight delayed messages
// too). After each event it rebalances the store onto the new
// membership and prunes dead cache entries. Returns how many events
// were applied.
//
// Cancellation stops the driver at every stage: while waiting for the
// next event's op target, between re-stabilization chunks, and before
// the post-event rebalance — no churn step runs after the context is
// done and the current chunk finishes.
func (e *engine) churnDriver(ctx context.Context, events []churn.Event, done <-chan struct{}) int {
	applied := 0
	for i, ev := range events {
		target := int64(i+1) * int64(e.cfg.Churn.EveryOps)
		for e.opsDone.Load() < target {
			select {
			case <-ctx.Done():
				return applied
			case <-done:
				return applied
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
		if ctx.Err() != nil {
			return applied
		}
		e.netMu.Lock()
		var err error
		switch ev.Kind {
		case "join":
			err = e.nw.Join(ev.ID, ev.Contact)
		case "leave":
			err = e.nw.Leave(ev.ID)
		case "fail":
			err = e.nw.Fail(ev.ID)
		}
		e.netMu.Unlock()
		if err != nil {
			// The event list was generated against pre-run membership;
			// an event that no longer applies is skipped.
			continue
		}
		applied++
		if e.cfg.Churn.OnApply != nil {
			e.cfg.Churn.OnApply(ev)
		}

		maxRounds := sim.DefaultBudget(e.sched)
		stepped := 0
		canceled := false
		for {
			e.netMu.Lock()
			quiescent := e.sched.Quiescent()
			for c := 0; c < e.cfg.Churn.StepChunk && !quiescent; c++ {
				e.sched.Step()
				stepped++
				quiescent = e.sched.Quiescent()
			}
			e.netMu.Unlock()
			if quiescent || stepped > maxRounds {
				break
			}
			if ctx.Err() != nil {
				// Leave the network mid-repair but at a round barrier;
				// the caller resumes or finishes the stabilization.
				canceled = true
				break
			}
			runtime.Gosched()
		}
		if canceled {
			return applied
		}
		if e.cfg.Churn.OnSettle != nil {
			e.cfg.Churn.OnSettle(stepped)
		}

		// Hand the stored pairs to their new owners and drop cache
		// entries whose peers changed or departed.
		e.netMu.RLock()
		_, _ = e.store.Rebalance()
		if e.cache != nil {
			e.cache.Prune()
		}
		e.netMu.RUnlock()
	}
	return applied
}

// opsFor splits cfg.Ops across workers, remainder to the low indices.
func opsFor(cfg Config, w int) int {
	n := cfg.Ops / cfg.Workers
	if w < cfg.Ops%cfg.Workers {
		n++
	}
	return n
}

// pickOp draws the op kind from the configured mix.
func pickOp(rng *rand.Rand, cfg Config) int {
	x := rng.Float64()
	switch {
	case x < cfg.GetFrac:
		return OpGet
	case x < cfg.GetFrac+cfg.PutFrac:
		return OpPut
	default:
		return OpDelete
	}
}

// writeSlot snaps a key index to worker w's residue class, making w
// the only writer of that key: concurrent runs then agree on every
// key's final value regardless of scheduling, which is what makes the
// store fingerprint reproducible. Reads are unrestricted.
func writeSlot(idx, w int, cfg Config) int {
	slot := idx - idx%cfg.Workers + w
	if slot >= cfg.Keyspace {
		slot -= cfg.Workers
	}
	return slot
}

// keyName renders a key index as the stored key.
func keyName(idx int) string { return fmt.Sprintf("key-%06d", idx) }

// fnvMix folds one (kind, key index) op into a running FNV-1a hash.
func fnvMix(h uint64, kind, idx int) uint64 {
	if h == 0 {
		h = 14695981039346656037 // FNV offset basis
	}
	for _, b := range [...]byte{byte(kind), byte(idx), byte(idx >> 8), byte(idx >> 16), byte(idx >> 24)} {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// mix64 finalizes a hash (splitmix64 finalizer) before the
// order-insensitive XOR combine across workers.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// errorsIsNotFound reports whether the op failed only because the key
// was absent at its owner.
func errorsIsNotFound(err error) bool { return errors.Is(err, dht.ErrNotFound) }

// sleepCtx sleeps for d or until the context is done, reporting true
// when the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
