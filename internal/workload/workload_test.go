package workload

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/churn"
	"repro/internal/dht"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/sim"
)

func stableNet(t testing.TB, n int, seed int64) (*rechord.Network, []ident.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw, ids, err := churn.StableNetwork(context.Background(), n, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nw, ids
}

func TestRunSmoke(t *testing.T) {
	nw, _ := stableNet(t, 24, 1)
	res, err := Run(context.Background(), nw, Config{Workers: 4, Ops: 800, Keyspace: 256, Preload: 128, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 800 {
		t.Fatalf("Ops = %d, want 800", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("%d routing errors on a stable network", res.Errors)
	}
	if res.Latency.N() != 800 || res.Hops.N() == 0 {
		t.Fatalf("telemetry incomplete: lat n=%d hops n=%d", res.Latency.N(), res.Hops.N())
	}
	if res.CacheMisses == 0 || res.CacheHits == 0 {
		t.Fatalf("cache untouched: hits=%d misses=%d", res.CacheHits, res.CacheMisses)
	}
	// On a quiescent network the cache converges to one table build per
	// peer: hits must dominate.
	if res.CacheHits < res.CacheMisses {
		t.Errorf("cache hits %d < misses %d on a churn-free run", res.CacheHits, res.CacheMisses)
	}
	perOpTotal := 0
	for _, op := range res.PerOp {
		perOpTotal += op.Count
	}
	if perOpTotal != res.Ops {
		t.Errorf("per-op counts sum to %d, want %d", perOpTotal, res.Ops)
	}
}

func TestRunReproducible(t *testing.T) {
	// Same seed + config on identically seeded networks => identical op
	// sequences and identical final store contents, for every
	// distribution and any worker count.
	for _, dist := range []string{DistUniform, DistZipf, DistHotspot} {
		cfg := Config{
			Workers: 6, Ops: 1200, Keyspace: 300, Preload: 100,
			Distribution: dist, Seed: 7,
		}
		nw1, _ := stableNet(t, 20, 3)
		r1, err := Run(context.Background(), nw1, cfg)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		nw2, _ := stableNet(t, 20, 3)
		r2, err := Run(context.Background(), nw2, cfg)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if r1.OpsFingerprint != r2.OpsFingerprint {
			t.Errorf("%s: op sequences diverged: %x vs %x", dist, r1.OpsFingerprint, r2.OpsFingerprint)
		}
		if r1.StoreFingerprint != r2.StoreFingerprint || r1.StoreLen != r2.StoreLen {
			t.Errorf("%s: final store contents diverged: %x/%d vs %x/%d",
				dist, r1.StoreFingerprint, r1.StoreLen, r2.StoreFingerprint, r2.StoreLen)
		}
		// A different seed must actually change the stream.
		cfg.Seed = 8
		nw3, _ := stableNet(t, 20, 3)
		r3, err := Run(context.Background(), nw3, cfg)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if r3.OpsFingerprint == r1.OpsFingerprint {
			t.Errorf("%s: different seed, same op fingerprint", dist)
		}
	}
}

// TestRaceWorkersAgainstChurn is the subsystem's race gate: >= 8
// concurrent client workers hammering the sharded store and the cached
// router while the churn driver mutates and re-stabilizes the network
// under them. Run with -race (the CI race job does).
func TestRaceWorkersAgainstChurn(t *testing.T) {
	nw, _ := stableNet(t, 48, 5)
	res, err := Run(context.Background(), nw, Config{
		Workers: 8, Ops: 2400, Keyspace: 512, Preload: 256, Seed: 11,
		Distribution: DistZipf,
		Churn:        ChurnConfig{Events: 4, EveryOps: 400, StepChunk: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnApplied == 0 {
		t.Fatal("churn driver applied no events; the race exercised nothing")
	}
	if res.Ops != 2400 {
		t.Fatalf("Ops = %d, want 2400", res.Ops)
	}
	// Lookups racing a re-stabilizing network may fail transiently, but
	// the fallback walk keeps the failure rate marginal.
	if res.Errors > res.Ops/10 {
		t.Errorf("%d/%d ops failed under churn", res.Errors, res.Ops)
	}
	if !nw.Quiescent() {
		t.Error("network not re-stabilized after the run")
	}
	if err := churn.VerifyStable(nw); err != nil {
		t.Errorf("network left the legal state: %v", err)
	}
	t.Log(res.Summary())
}

// TestCancelMidRunLeavesNetworkSteppable is the context-shutdown
// regression test: canceling a run with active churn must stop the
// workers AND the churn driver (no orphaned churn steps), return the
// partial telemetry with ctx.Err(), and leave the network at a round
// barrier from which stabilization can be finished normally.
func TestCancelMidRunLeavesNetworkSteppable(t *testing.T) {
	nw, _ := stableNet(t, 32, 9)
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		// Effectively unbounded ops with churn spaced tightly, so the
		// run is mid-traffic and mid-churn whenever the cancel lands.
		res, err := Run(ctx, nw, Config{
			Workers: 4, Ops: 50_000_000, Keyspace: 512, Preload: 128, Seed: 7,
			Churn: ChurnConfig{Events: 1000, EveryOps: 200, StepChunk: 1},
		})
		done <- outcome{res, err}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	roundAtCancel := -1
	var out outcome
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return within 10s of cancellation")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("Run returned err = %v, want context.Canceled", out.err)
	}
	if out.res == nil || out.res.Ops == 0 {
		t.Fatal("canceled Run returned no partial telemetry")
	}
	// No goroutine of the run may keep stepping the network: the round
	// counter must be frozen once Run has returned.
	roundAtCancel = nw.Round()
	time.Sleep(50 * time.Millisecond)
	if r := nw.Round(); r != roundAtCancel {
		t.Fatalf("network stepped from round %d to %d after Run returned: orphaned churn driver", roundAtCancel, r)
	}
	// The network must be left steppable: finish the interrupted
	// re-stabilization and verify the legal state is reached.
	nw.Step()
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatalf("network not steppable to the fixed point after cancellation: %v", err)
	}
	if err := churn.VerifyStable(nw); err != nil {
		t.Fatalf("network cannot reach the legal state after cancellation: %v", err)
	}
}

// TestKeysSurviveChurnBurst is the routing-under-churn property: every
// key stored before a join/leave/fail burst is resolvable again, via
// the cached router, once Quiescent() holds and the store has
// rebalanced.
func TestKeysSurviveChurnBurst(t *testing.T) {
	nw, ids := stableNet(t, 32, 9)
	rng := rand.New(rand.NewSource(99))
	cache := routing.NewCache(nw)
	store := dht.NewWithResolver(nw, cache)
	const keys = 150
	for i := 0; i < keys; i++ {
		if _, _, err := store.Put(ids[rng.Intn(len(ids))], keyName(i), "pre-burst"); err != nil {
			t.Fatal(err)
		}
	}
	// The burst: three joins, two leaves, one failure, applied
	// back-to-back with no stabilization in between.
	for i := 0; i < 3; i++ {
		if err := nw.Join(ident.ID(rng.Uint64()|1), ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	for _, victim := range []ident.ID{ids[3], ids[17]} {
		if err := nw.Leave(victim); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Fail(ids[25]); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if !nw.Quiescent() {
		t.Fatal("RunToStable returned but the network is not quiescent")
	}
	if _, err := store.Rebalance(); err != nil {
		t.Fatal(err)
	}
	peers := nw.Peers()
	for i := 0; i < keys; i++ {
		key := keyName(i)
		v, _, err := store.Get(peers[rng.Intn(len(peers))], key)
		if err != nil {
			t.Fatalf("key %q unresolvable after the burst: %v", key, err)
		}
		if v != "pre-burst" {
			t.Fatalf("key %q = %q after the burst", key, v)
		}
		if want := ident.Successor(peers, dht.KeyID(key)); true {
			owner, _, err := cache.Route(peers[0], dht.KeyID(key))
			if err != nil || owner != want {
				t.Fatalf("cached route for %q = %s,%v; want %s", key, owner, err, want)
			}
		}
	}
}

func TestOpenLoopPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("paced run sleeps on the wall clock")
	}
	nw, _ := stableNet(t, 16, 13)
	res, err := Run(context.Background(), nw, Config{Workers: 2, Ops: 200, Keyspace: 64, Seed: 1, Rate: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// 200 ops at 2000 ops/s should take ~100ms; a closed loop would
	// finish orders of magnitude faster.
	if res.Elapsed.Seconds() < 0.05 {
		t.Errorf("open loop finished in %v; pacing not applied", res.Elapsed)
	}
	if res.Throughput > 2600 {
		t.Errorf("throughput %.0f ops/s exceeds the 2000 ops/s target", res.Throughput)
	}
}

func TestConfigValidation(t *testing.T) {
	nw, _ := stableNet(t, 8, 17)
	if _, err := Run(context.Background(), nw, Config{Workers: 4, Ops: 10, Keyspace: 2}); err == nil {
		t.Error("keyspace < workers must error")
	}
	if _, err := Run(context.Background(), nw, Config{Workers: 2}); err == nil {
		t.Error("no Ops and no Duration must error")
	}
	if _, err := Run(context.Background(), nw, Config{Ops: 10, GetFrac: 0.5, PutFrac: 0.1, DeleteFrac: 0.1}); err == nil {
		t.Error("op mix not summing to 1 must error")
	}
	if _, err := Run(context.Background(), nw, Config{Ops: 10, Distribution: "pareto"}); err == nil {
		t.Error("unknown distribution must error")
	}
	if _, err := Run(context.Background(), nw, Config{Duration: time.Second, Churn: ChurnConfig{Events: 3}}); err == nil {
		t.Error("duration mode with churn but no EveryOps must error")
	}
	if _, err := Run(context.Background(), rechord.NewNetwork(rechord.Config{}), Config{Ops: 10}); err == nil {
		t.Error("empty network must error")
	}
}

func TestWriteSlotPartition(t *testing.T) {
	cfg := Config{Workers: 5, Keyspace: 103}
	for idx := 0; idx < cfg.Keyspace; idx++ {
		for w := 0; w < cfg.Workers; w++ {
			slot := writeSlot(idx, w, cfg)
			if slot < 0 || slot >= cfg.Keyspace {
				t.Fatalf("writeSlot(%d, %d) = %d out of range", idx, w, slot)
			}
			if slot%cfg.Workers != w {
				t.Fatalf("writeSlot(%d, %d) = %d not in worker's residue class", idx, w, slot)
			}
		}
	}
}

func TestZipfSkewsTraffic(t *testing.T) {
	// The zipf stream must concentrate on few keys relative to uniform.
	cfg := Config{Keyspace: 1000, Distribution: DistZipf}
	rng := rand.New(rand.NewSource(1))
	gen, err := newKeyGen(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[gen.next(i)]++
	}
	// Under uniform the head key would draw ~draws/keyspace (= 20);
	// zipf must concentrate an order of magnitude more on it, and the
	// ten hottest keys must carry a disproportionate share.
	if counts[0] < 10*draws/cfg.Keyspace {
		t.Errorf("zipf head key drew %d of %d; expected heavy head", counts[0], draws)
	}
	hot := 0
	for k := 0; k < 10; k++ {
		hot += counts[k]
	}
	if hot < draws/5 {
		t.Errorf("zipf 10 hottest keys drew %d of %d; expected > 20%%", hot, draws)
	}
}

func TestNotFoundNotCountedAsError(t *testing.T) {
	nw, ids := stableNet(t, 12, 21)
	store := dht.New(nw)
	_, _, err := store.Get(ids[0], "absent")
	if !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	// A pure-Get run over an empty store: all misses, zero errors.
	res, err := Run(context.Background(), nw, Config{Workers: 2, Ops: 100, Keyspace: 50, Seed: 3, GetFrac: 1, PutFrac: 0, DeleteFrac: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("misses counted as errors: %d", res.Errors)
	}
	if res.NotFound != 100 {
		t.Errorf("NotFound = %d, want 100", res.NotFound)
	}
}
