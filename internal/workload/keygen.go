package workload

import (
	"fmt"
	"math/rand"
)

// Key distributions. A keyGen maps a worker's op index to a key index
// in [0, Keyspace), drawing randomness from the worker's own seeded
// RNG — the sequence is a pure function of (seed, worker, op index),
// which is what makes runs reproducible.
type keyGen interface {
	next(i int) int
}

// Distribution names accepted by Config.Distribution.
const (
	DistUniform = "uniform"
	DistZipf    = "zipf"
	DistHotspot = "hotspot"
)

type uniformGen struct {
	rng *rand.Rand
	n   int
}

func (g *uniformGen) next(int) int { return g.rng.Intn(g.n) }

// zipfGen skews toward low key indices with the standard Zipf-Mandelbrot
// law; s and v are the generator's exponent and offset.
type zipfGen struct {
	z *rand.Zipf
}

func (g *zipfGen) next(int) int { return int(g.z.Uint64()) }

// hotspotGen sends hotFrac of the traffic to a window of hotKeys
// contiguous keys whose position jumps every shiftEvery ops — the
// shifting-hotspot model: caches and buckets that tuned themselves to
// one hot set see it move out from under them mid-run.
type hotspotGen struct {
	rng        *rand.Rand
	n          int
	hotKeys    int
	hotFrac    float64
	shiftEvery int
}

func (g *hotspotGen) next(i int) int {
	if g.rng.Float64() < g.hotFrac {
		// The window start strides by a large odd constant so
		// successive windows land far apart on the keyspace.
		base := (i / g.shiftEvery) * (g.hotKeys*7 + 1) % g.n
		return (base + g.rng.Intn(g.hotKeys)) % g.n
	}
	return g.rng.Intn(g.n)
}

// newKeyGen builds the generator the config names. The rng must be the
// worker's private RNG.
func newKeyGen(cfg Config, rng *rand.Rand) (keyGen, error) {
	switch cfg.Distribution {
	case DistUniform, "":
		return &uniformGen{rng: rng, n: cfg.Keyspace}, nil
	case DistZipf:
		s, v := cfg.ZipfS, cfg.ZipfV
		if s <= 1 {
			s = 1.2
		}
		if v < 1 {
			v = 1
		}
		return &zipfGen{z: rand.NewZipf(rng, s, v, uint64(cfg.Keyspace-1))}, nil
	case DistHotspot:
		hot := cfg.HotKeys
		if hot <= 0 {
			hot = cfg.Keyspace / 64
			if hot < 1 {
				hot = 1
			}
		}
		frac := cfg.HotFraction
		if frac <= 0 || frac > 1 {
			frac = 0.9
		}
		shift := cfg.HotShiftEvery
		if shift <= 0 {
			shift = 1000
		}
		return &hotspotGen{rng: rng, n: cfg.Keyspace, hotKeys: hot, hotFrac: frac, shiftEvery: shift}, nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q (want %s, %s or %s)",
			cfg.Distribution, DistUniform, DistZipf, DistHotspot)
	}
}
