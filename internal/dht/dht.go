// Package dht is a consistent-hashing key-value store running on top
// of a stabilized Re-Chord network — the kind of application the paper
// means by "faithfully emulate any applications on top of Chord"
// (Theorem 1.1). Every operation is routed over the overlay (by
// default through routing.Route; callers serving traffic plug in the
// epoch-cached table router), so it exercises exactly the edges the
// self-stabilization protocol maintains.
//
// Storage is sharded: keys live in per-peer buckets, and the buckets
// are spread over fixed shards each guarded by its own lock, so
// concurrent clients touching different owners never contend. Routing
// reads the network; callers that mutate the network concurrently
// (churn) must serialize against operations externally (see
// internal/workload).
package dht

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
)

// Typed operation errors, matchable with errors.Is.
var (
	// ErrUnknownPeer reports an operation issued from a home peer that
	// is not in the network.
	ErrUnknownPeer = errors.New("dht: unknown home peer")
	// ErrNotFound reports a Get whose routing succeeded but whose key
	// is absent at the owner — distinct from a routing failure, after
	// which nothing is known about the key.
	ErrNotFound = errors.New("dht: key not found")
)

// Resolver locates the owner of a key starting from a home peer,
// returning the number of inter-peer hops the lookup took. Both
// routing.Walker (state-walk) and routing.Cache (epoch-cached table
// routing) implement it.
type Resolver interface {
	Resolve(from, key ident.ID) (owner ident.ID, hops int, err error)
}

// numShards spreads the per-peer buckets over independently locked
// shards. Peer identifiers are uniform in [0,1), so the top bits give
// an even spread.
const numShards = 64

type shard struct {
	mu      sync.RWMutex
	buckets map[ident.ID]map[string]string // peer -> key -> value
}

// Store is the distributed key-value store: sharded per-peer buckets
// plus the network used for routing.
type Store struct {
	nw      *rechord.Network
	resolve Resolver
	shards  [numShards]shard
}

// New creates a store over the network, routed by the state-walk
// router. The network should be stable; operations return errors when
// routing cannot complete.
func New(nw *rechord.Network) *Store {
	return NewWithResolver(nw, routing.Walker{NW: nw})
}

// NewWithResolver creates a store with a custom routing strategy (the
// workload engine plugs in the epoch-cached table router with a
// state-walk fallback).
func NewWithResolver(nw *rechord.Network, r Resolver) *Store {
	s := &Store{nw: nw, resolve: r}
	for i := range s.shards {
		s.shards[i].buckets = make(map[ident.ID]map[string]string)
	}
	return s
}

// KeyID returns the identifier a key hashes to.
func KeyID(key string) ident.ID { return ident.Hash(key) }

func (s *Store) shardOf(owner ident.ID) *shard {
	return &s.shards[uint64(owner)>>(64-6)] // top 6 bits: numShards = 64
}

func (s *Store) checkHome(home ident.ID) error {
	// Membership via the interner slot: one uint64-keyed lookup, no
	// node state touched. Every operation pays this check, so it rides
	// the same compact-handle path the resolver's table cache uses.
	if _, _, ok := s.nw.PeerSlot(home); !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, home)
	}
	return nil
}

// ResolveKey routes from the home peer to the key's owner without
// touching stored data, returning the owner and the number of
// inter-peer hops the lookup took.
func (s *Store) ResolveKey(home ident.ID, key string) (ident.ID, int, error) {
	if err := s.checkHome(home); err != nil {
		return 0, 0, fmt.Errorf("dht: lookup %q: %w", key, err)
	}
	owner, hops, err := s.resolve.Resolve(home, KeyID(key))
	if err != nil {
		return 0, hops, fmt.Errorf("dht: lookup %q: %w", key, err)
	}
	return owner, hops, nil
}

// Put stores the key-value pair, routing from the given home peer to
// the key's owner. It returns the owner and the number of inter-peer
// hops the lookup took.
func (s *Store) Put(home ident.ID, key, value string) (ident.ID, int, error) {
	if err := s.checkHome(home); err != nil {
		return 0, 0, fmt.Errorf("dht: put %q: %w", key, err)
	}
	owner, hops, err := s.resolve.Resolve(home, KeyID(key))
	if err != nil {
		return 0, hops, fmt.Errorf("dht: put %q: %w", key, err)
	}
	sh := s.shardOf(owner)
	sh.mu.Lock()
	b := sh.buckets[owner]
	if b == nil {
		b = make(map[string]string)
		sh.buckets[owner] = b
	}
	b[key] = value
	sh.mu.Unlock()
	return owner, hops, nil
}

// Get fetches the value for a key, routing from the home peer. A nil
// error means the key was found; ErrNotFound means routing reached the
// owner but the key is absent there; any other error is a routing
// failure, after which nothing is known about the key.
func (s *Store) Get(home ident.ID, key string) (string, int, error) {
	if err := s.checkHome(home); err != nil {
		return "", 0, fmt.Errorf("dht: get %q: %w", key, err)
	}
	owner, hops, err := s.resolve.Resolve(home, KeyID(key))
	if err != nil {
		return "", hops, fmt.Errorf("dht: get %q: %w", key, err)
	}
	sh := s.shardOf(owner)
	sh.mu.RLock()
	v, ok := sh.buckets[owner][key]
	sh.mu.RUnlock()
	if !ok {
		return "", hops, fmt.Errorf("dht: get %q at %s: %w", key, owner, ErrNotFound)
	}
	return v, hops, nil
}

// Delete removes a key, routing from the home peer. It reports whether
// the key existed.
func (s *Store) Delete(home ident.ID, key string) (bool, int, error) {
	if err := s.checkHome(home); err != nil {
		return false, 0, fmt.Errorf("dht: delete %q: %w", key, err)
	}
	owner, hops, err := s.resolve.Resolve(home, KeyID(key))
	if err != nil {
		return false, hops, fmt.Errorf("dht: delete %q: %w", key, err)
	}
	sh := s.shardOf(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.buckets[owner][key]; !ok {
		return false, hops, nil
	}
	delete(sh.buckets[owner], key)
	return true, hops, nil
}

// Len returns the total number of stored pairs.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, b := range sh.buckets {
			n += len(b)
		}
		sh.mu.RUnlock()
	}
	return n
}

// BucketSizes returns how many keys each peer holds, for load-balance
// analysis (consistent hashing spreads keys evenly in expectation).
func (s *Store) BucketSizes() map[ident.ID]int {
	out := make(map[ident.ID]int)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for p, b := range sh.buckets {
			if len(b) > 0 {
				out[p] = len(b)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Contents flattens the store into one key -> value map, independent
// of bucket placement.
func (s *Store) Contents() map[string]string {
	out := make(map[string]string)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, b := range sh.buckets {
			for k, v := range b {
				out[k] = v
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Fingerprint returns an order-insensitive hash of the key -> value
// contents, deliberately ignoring which peer's bucket a pair sits in:
// two runs that stored the same data fingerprint identically even if
// churn timing placed pairs differently. The workload engine uses it
// to assert reproducibility.
func (s *Store) Fingerprint() uint64 {
	var fp uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, b := range sh.buckets {
			for k, v := range b {
				h := fnv.New64a()
				h.Write([]byte(k))
				h.Write([]byte{0})
				h.Write([]byte(v))
				fp ^= h.Sum64()
			}
		}
		sh.mu.RUnlock()
	}
	return fp
}

// Rebalance reassigns every stored pair to its current owner, used
// after membership changes (the data-movement step Chord performs on
// join/leave). It reports how many pairs moved. Rebalance excludes
// concurrent store operations by taking every shard lock.
func (s *Store) Rebalance() (moved int, err error) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}()
	peers := s.nw.Peers()
	if len(peers) == 0 {
		return 0, fmt.Errorf("dht: rebalance on empty network")
	}
	type pair struct{ k, v string }
	fresh := make(map[ident.ID][]pair)
	for i := range s.shards {
		for oldOwner, b := range s.shards[i].buckets {
			for k, v := range b {
				owner := ident.Successor(peers, KeyID(k))
				fresh[owner] = append(fresh[owner], pair{k, v})
				if owner != oldOwner {
					moved++
				}
			}
		}
		s.shards[i].buckets = make(map[ident.ID]map[string]string)
	}
	for owner, pairs := range fresh {
		sh := s.shardOf(owner)
		b := make(map[string]string, len(pairs))
		for _, p := range pairs {
			b[p.k] = p.v
		}
		sh.buckets[owner] = b
	}
	return moved, nil
}
