// Package dht is a consistent-hashing key-value store running on top
// of a stabilized Re-Chord network — the kind of application the paper
// means by "faithfully emulate any applications on top of Chord"
// (Theorem 1.1). Every operation is routed through routing.Route, so
// it exercises exactly the edges the self-stabilization protocol
// maintains.
package dht

import (
	"fmt"
	"sync"

	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
)

// Store is the distributed key-value store: per-peer buckets plus the
// network used for routing.
type Store struct {
	nw *rechord.Network

	mu      sync.RWMutex
	buckets map[ident.ID]map[string]string // peer -> key -> value
}

// New creates a store over the network. The network should be stable;
// operations return errors when routing cannot complete.
func New(nw *rechord.Network) *Store {
	return &Store{nw: nw, buckets: make(map[ident.ID]map[string]string)}
}

// KeyID returns the identifier a key hashes to.
func KeyID(key string) ident.ID { return ident.Hash(key) }

// Put stores the key-value pair, routing from the given home peer to
// the key's owner. It returns the owner and the number of peers
// visited.
func (s *Store) Put(home ident.ID, key, value string) (ident.ID, int, error) {
	owner, path, err := routing.Route(s.nw, home, KeyID(key))
	if err != nil {
		return 0, len(path), fmt.Errorf("dht: put %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[owner]
	if b == nil {
		b = make(map[string]string)
		s.buckets[owner] = b
	}
	b[key] = value
	return owner, len(path), nil
}

// Get fetches the value for a key, routing from the home peer.
func (s *Store) Get(home ident.ID, key string) (string, bool, error) {
	owner, path, err := routing.Route(s.nw, home, KeyID(key))
	if err != nil {
		return "", false, fmt.Errorf("dht: get %q: %w", key, err)
	}
	_ = path
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.buckets[owner][key]
	return v, ok, nil
}

// Delete removes a key, routing from the home peer.
func (s *Store) Delete(home ident.ID, key string) (bool, error) {
	owner, _, err := routing.Route(s.nw, home, KeyID(key))
	if err != nil {
		return false, fmt.Errorf("dht: delete %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[owner][key]; !ok {
		return false, nil
	}
	delete(s.buckets[owner], key)
	return true, nil
}

// Len returns the total number of stored pairs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, b := range s.buckets {
		n += len(b)
	}
	return n
}

// BucketSizes returns how many keys each peer holds, for load-balance
// analysis (consistent hashing spreads keys evenly in expectation).
func (s *Store) BucketSizes() map[ident.ID]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[ident.ID]int, len(s.buckets))
	for p, b := range s.buckets {
		out[p] = len(b)
	}
	return out
}

// Rebalance reassigns every stored pair to its current owner, used
// after membership changes (the data-movement step Chord performs on
// join/leave). It reports how many pairs moved.
func (s *Store) Rebalance() (moved int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	peers := s.nw.Peers()
	if len(peers) == 0 {
		return 0, fmt.Errorf("dht: rebalance on empty network")
	}
	fresh := make(map[ident.ID]map[string]string)
	for oldOwner, b := range s.buckets {
		for k, v := range b {
			owner := ident.Successor(peers, KeyID(k))
			nb := fresh[owner]
			if nb == nil {
				nb = make(map[string]string)
				fresh[owner] = nb
			}
			nb[k] = v
			if owner != oldOwner {
				moved++
			}
		}
	}
	s.buckets = fresh
	return moved, nil
}
