package dht

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/churn"
	"repro/internal/ident"
	"repro/internal/rechord"
)

func TestPutGetDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw, ids, err := churn.StableNetwork(20, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	home := ids[0]
	if _, _, err := s.Put(home, "alpha", "1"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get(ids[7], "alpha")
	if err != nil || !ok || v != "1" {
		t.Fatalf("Get = %q,%v,%v; want 1,true,nil", v, ok, err)
	}
	ok, err = s.Delete(ids[3], "alpha")
	if err != nil || !ok {
		t.Fatalf("Delete = %v,%v; want true,nil", ok, err)
	}
	if _, ok, _ := s.Get(home, "alpha"); ok {
		t.Error("deleted key still present")
	}
	if ok, _ := s.Delete(home, "alpha"); ok {
		t.Error("double delete reported true")
	}
}

func TestOwnerConsistentAcrossHomes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nw, ids, err := churn.StableNetwork(30, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner1, _, err := s.Put(ids[rng.Intn(len(ids))], key, "x")
		if err != nil {
			t.Fatal(err)
		}
		owner2, _, err := s.Put(ids[rng.Intn(len(ids))], key, "x")
		if err != nil {
			t.Fatal(err)
		}
		if owner1 != owner2 {
			t.Fatalf("key %q routed to %s and %s from different homes", key, owner1, owner2)
		}
		want := ident.Successor(nw.Peers(), KeyID(key))
		if owner1 != want {
			t.Fatalf("key %q owned by %s, want consistent-hashing successor %s", key, owner1, want)
		}
	}
}

func TestLoadSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw, ids, err := churn.StableNetwork(16, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	const keys = 800
	for i := 0; i < keys; i++ {
		if _, _, err := s.Put(ids[i%len(ids)], fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	sizes := s.BucketSizes()
	max := 0
	for _, n := range sizes {
		if n > max {
			max = n
		}
	}
	// Consistent hashing with random ids is uneven but the max bucket
	// must stay well below the whole keyspace.
	if max > keys/2 {
		t.Errorf("max bucket %d of %d keys: hashing badly skewed", max, keys)
	}
}

func TestRebalanceAfterJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nw, ids, err := churn.StableNetwork(10, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	for i := 0; i < 200; i++ {
		if _, _, err := s.Put(ids[0], fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// A new peer joins and the network re-stabilizes.
	rec, err := churn.Apply(nw, churn.Event{Kind: "join", ID: ident.ID(rng.Uint64() | 1), Contact: ids[0]}, 0)
	if err != nil || !rec.Stable {
		t.Fatalf("join failed: %v (stable=%v)", err, rec.Stable)
	}
	moved, err := s.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rebalance moved %d of 200 keys", moved)
	// After rebalancing, every key must be retrievable from any home.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		v, ok, err := s.Get(nw.Peers()[i%nw.NumPeers()], key)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q,%v,%v after rebalance", key, v, ok, err)
		}
	}
}

func TestRebalanceEmptyNetworkErrors(t *testing.T) {
	s := New(rechord.NewNetwork(rechord.Config{}))
	if _, err := s.Rebalance(); err == nil {
		t.Error("rebalance on empty network must error")
	}
}
