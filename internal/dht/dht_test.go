package dht

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/churn"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
)

func TestPutGetDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw, ids, err := churn.StableNetwork(context.Background(), 20, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	home := ids[0]
	if _, _, err := s.Put(home, "alpha", "1"); err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Get(ids[7], "alpha")
	if err != nil || v != "1" {
		t.Fatalf("Get = %q,%v; want 1,nil", v, err)
	}
	ok, _, err := s.Delete(ids[3], "alpha")
	if err != nil || !ok {
		t.Fatalf("Delete = %v,%v; want true,nil", ok, err)
	}
	if _, _, err := s.Get(home, "alpha"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get of deleted key = %v, want ErrNotFound", err)
	}
	if ok, _, _ := s.Delete(home, "alpha"); ok {
		t.Error("double delete reported true")
	}
}

func TestTypedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nw, ids, err := churn.StableNetwork(context.Background(), 8, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	bogus := ident.ID(424242)
	if _, _, err := s.Put(bogus, "k", "v"); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Put from unknown peer = %v, want ErrUnknownPeer", err)
	}
	if _, _, err := s.Get(bogus, "k"); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Get from unknown peer = %v, want ErrUnknownPeer", err)
	}
	if _, _, err := s.Delete(bogus, "k"); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Delete from unknown peer = %v, want ErrUnknownPeer", err)
	}
	// A missing key on a healthy network is ErrNotFound, never
	// ErrUnknownPeer or a routing failure.
	_, _, err = s.Get(ids[0], "never-stored")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("Get of absent key = %v, want ErrNotFound", err)
	}
	if errors.Is(err, ErrUnknownPeer) {
		t.Error("ErrNotFound must not match ErrUnknownPeer")
	}
}

func TestOwnerConsistentAcrossHomes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nw, ids, err := churn.StableNetwork(context.Background(), 30, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner1, _, err := s.Put(ids[rng.Intn(len(ids))], key, "x")
		if err != nil {
			t.Fatal(err)
		}
		owner2, _, err := s.Put(ids[rng.Intn(len(ids))], key, "x")
		if err != nil {
			t.Fatal(err)
		}
		if owner1 != owner2 {
			t.Fatalf("key %q routed to %s and %s from different homes", key, owner1, owner2)
		}
		want := ident.Successor(nw.Peers(), KeyID(key))
		if owner1 != want {
			t.Fatalf("key %q owned by %s, want consistent-hashing successor %s", key, owner1, want)
		}
	}
}

func TestCachedResolverAgreesWithWalker(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nw, ids, err := churn.StableNetwork(context.Background(), 24, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	walk := New(nw)
	cached := NewWithResolver(nw, routing.NewCache(nw))
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("obj-%d", i)
		o1, _, err := walk.Put(ids[rng.Intn(len(ids))], key, "v")
		if err != nil {
			t.Fatal(err)
		}
		o2, _, err := cached.Put(ids[rng.Intn(len(ids))], key, "v")
		if err != nil {
			t.Fatal(err)
		}
		if o1 != o2 {
			t.Fatalf("key %q: walker owner %s != cached owner %s", key, o1, o2)
		}
	}
}

func TestLoadSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw, ids, err := churn.StableNetwork(context.Background(), 16, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	const keys = 800
	for i := 0; i < keys; i++ {
		if _, _, err := s.Put(ids[i%len(ids)], fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	sizes := s.BucketSizes()
	max := 0
	for _, n := range sizes {
		if n > max {
			max = n
		}
	}
	// Consistent hashing with random ids is uneven but the max bucket
	// must stay well below the whole keyspace.
	if max > keys/2 {
		t.Errorf("max bucket %d of %d keys: hashing badly skewed", max, keys)
	}
}

func TestConcurrentClientsShardedStore(t *testing.T) {
	// Many clients hammering disjoint and overlapping keys through the
	// sharded store; run under -race this pins down the fine-grained
	// locking. The network is stable and only read, so no external
	// serialization is needed.
	rng := rand.New(rand.NewSource(8))
	nw, ids, err := churn.StableNetwork(context.Background(), 16, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithResolver(nw, routing.NewCache(nw))
	const workers = 8
	const opsEach = 150
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("k%d", i%40*workers+w) // per-worker write ownership
				home := ids[(i+w)%len(ids)]
				if _, _, err := s.Put(home, key, fmt.Sprintf("v%d-%d", w, i)); err != nil {
					errs <- err
					return
				}
				if _, _, err := s.Get(home, fmt.Sprintf("k%d", i%40*workers)); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- err
					return
				}
				if i%10 == 9 {
					if _, _, err := s.Delete(home, key); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFingerprintIgnoresBucketPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nw, ids, err := churn.StableNetwork(context.Background(), 10, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	for i := 0; i < 100; i++ {
		if _, _, err := s.Put(ids[0], fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Fingerprint()
	// A join plus rebalance moves pairs between buckets without
	// changing the key -> value contents.
	rec, err := churn.Apply(context.Background(), nw, churn.Event{Kind: "join", ID: ident.ID(rng.Uint64() | 1), Contact: ids[0]}, 0)
	if err != nil || !rec.Stable {
		t.Fatalf("join failed: %v (stable=%v)", err, rec.Stable)
	}
	if _, err := s.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if after := s.Fingerprint(); after != before {
		t.Errorf("fingerprint changed across rebalance: %x -> %x", before, after)
	}
	s.Put(ids[0], "k0", "different")
	if s.Fingerprint() == before {
		t.Error("fingerprint blind to a value change")
	}
}

func TestRebalanceAfterJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nw, ids, err := churn.StableNetwork(context.Background(), 10, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nw)
	for i := 0; i < 200; i++ {
		if _, _, err := s.Put(ids[0], fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// A new peer joins and the network re-stabilizes.
	rec, err := churn.Apply(context.Background(), nw, churn.Event{Kind: "join", ID: ident.ID(rng.Uint64() | 1), Contact: ids[0]}, 0)
	if err != nil || !rec.Stable {
		t.Fatalf("join failed: %v (stable=%v)", err, rec.Stable)
	}
	moved, err := s.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rebalance moved %d of 200 keys", moved)
	// After rebalancing, every key must be retrievable from any home.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		v, _, err := s.Get(nw.Peers()[i%nw.NumPeers()], key)
		if err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q,%v after rebalance", key, v, err)
		}
	}
}

func TestRebalanceEmptyNetworkErrors(t *testing.T) {
	s := New(rechord.NewNetwork(rechord.Config{}))
	if _, err := s.Rebalance(); err == nil {
		t.Error("rebalance on empty network must error")
	}
}
