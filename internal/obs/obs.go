// Package obs is the telemetry layer: allocation-free counters and
// gauges for the engine's hot path, mutex-sharded histograms for the
// concurrent serving path, and JSON-ready snapshot types that every
// exposure surface (cluster.Metrics, the rechord-dht /metrics
// endpoint, the largescale METRICS_JSON artifact) shares.
//
// The design contract, enforced by BenchmarkObsHotPath and the CI
// bench-diff gate: recording on the hot path is a single atomic add
// (Counter, Gauge) or one uncontended mutex acquisition plus a
// histogram bucket increment (Hist, ShardedHist) — never an
// allocation, never a map lookup, never formatting. All aggregation
// (merging shards, computing percentiles, building snapshots) is lazy
// and happens only when a reader asks. The round engine goes further:
// it tallies into plain shard-local integers inside a batch and
// flushes one atomic add per counter per batch (see
// rechord.Network.runBatch), so a quiescent Step pays exactly one
// atomic increment.
package obs

import (
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (in-flight operations, queue
// depths). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Hist is a mutex-guarded stats.Histogram: safe for concurrent
// Observe and Snapshot, allocation-free after the first Observe (the
// histogram's bucket slice grows once, then stays). The zero value is
// ready to use. Writers that already serialize (the round engine's
// barrier) pay only an uncontended lock.
type Hist struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one value.
func (h *Hist) Observe(v float64) {
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Snapshot returns an independent copy of the histogram.
func (h *Hist) Snapshot() *stats.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Clone()
}

// Summary returns the headline figures of the histogram.
func (h *Hist) Summary() HistSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return SummarizeHist(&h.h)
}

// ShardedHist spreads observations over per-worker histogram shards so
// concurrent writers (workload workers) never contend on one mutex;
// readers merge the shards lazily. Merging stats.Histograms is exact —
// all shards share the same fixed bucket boundaries — so the merged
// view equals what a single observer would have recorded.
type ShardedHist struct {
	shards []Hist
}

// NewShardedHist returns a histogram with n shards (minimum 1).
func NewShardedHist(n int) *ShardedHist {
	if n < 1 {
		n = 1
	}
	return &ShardedHist{shards: make([]Hist, n)}
}

// Observe records v into the worker's shard. Callers pass a stable
// per-worker index; any int is safe (reduced modulo the shard count).
func (s *ShardedHist) Observe(worker int, v float64) {
	if worker < 0 {
		worker = -worker
	}
	s.shards[worker%len(s.shards)].Observe(v)
}

// Merged folds every shard into one fresh histogram.
func (s *ShardedHist) Merged() *stats.Histogram {
	out := &stats.Histogram{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Merge(&sh.h)
		sh.mu.Unlock()
	}
	return out
}

// Summary returns the headline figures of the merged shards.
func (s *ShardedHist) Summary() HistSummary {
	return SummarizeHist(s.Merged())
}

// HistSummary is the JSON-ready digest of a histogram: the figures a
// dashboard or a CI artifact wants, without shipping raw buckets.
type HistSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p99_9"`
	Max   float64 `json:"max"`
}

// SummarizeHist digests a histogram (nil or empty yields zeros).
func SummarizeHist(h *stats.Histogram) HistSummary {
	if h == nil || h.N() == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: uint64(h.N()),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}
