package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// RoutingSnapshot is the routing layer's slice of a metrics snapshot:
// epoch-cache effectiveness, failovers to the state walk, and the
// lookup-hop distribution (paper target: ~log n).
type RoutingSnapshot struct {
	CacheHits          uint64      `json:"cache_hits"`
	CacheMisses        uint64      `json:"cache_misses"`
	CacheInvalidations uint64      `json:"cache_invalidations"`
	CacheEntries       int         `json:"cache_entries"`
	Fallbacks          int64       `json:"fallbacks"`
	LookupHops         HistSummary `json:"lookup_hops"`
}

// Snapshot is one structured cut across every instrumented layer —
// what cluster.Metrics returns, what /metrics serves, and what the
// largescale suites dump next to SCALE.json. It marshals to stable
// JSON and round-trips losslessly (pinned by TestSnapshotJSONRoundTrip).
type Snapshot struct {
	Engine        EngineSnapshot   `json:"engine"`
	Routing       RoutingSnapshot  `json:"routing"`
	Workload      WorkloadSnapshot `json:"workload"`
	Wire          WireSnapshot     `json:"wire"`
	EventsDropped uint64           `json:"events_dropped"`
}

// Record appends the labeled snapshot to the JSON object stored at
// path (read-modify-write, last writer per label wins), creating the
// file on first use. The file maps label -> Snapshot so one run can
// collect several rungs ("sync-n2048", "async-n8192", ...) into a
// single artifact.
func Record(path, label string, s Snapshot) error {
	all := map[string]Snapshot{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			return fmt.Errorf("parsing existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	all[label] = s
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RecordEnv records the snapshot to the file named by the
// METRICS_JSON environment variable, or does nothing when unset —
// the same opt-in pattern as scaletable.RecordEnv/SCALE_JSON, so the
// largescale suites stay silent locally and publish in CI.
func RecordEnv(label string, s Snapshot) error {
	path := os.Getenv("METRICS_JSON")
	if path == "" {
		return nil
	}
	return Record(path, label, s)
}
