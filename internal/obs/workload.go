package obs

// WorkloadMetrics is the serving path's live metric set: an in-flight
// gauge, an error taxonomy, and sharded latency/hop histograms that
// concurrent workers write without contending. The workload engine
// (and the cluster facade's KV methods, for hops) feed it; readers
// merge shards lazily via Snapshot. Construct with
// NewWorkloadMetrics; the instance is long-lived and cumulative
// across workload runs.
type WorkloadMetrics struct {
	// InFlight is the number of operations currently executing.
	InFlight Gauge
	// Ops counts completed operations (successful or not).
	Ops Counter
	// Error taxonomy. NotFound is a semantic miss (the key has no
	// value at its owner), UnknownPeer a request through a departed
	// home, RouteErrors everything else the routing layer refused.
	NotFound    Counter
	UnknownPeer Counter
	RouteErrors Counter
	// LatencyNS and Hops are the aggregate distributions over all op
	// types (latency in nanoseconds; hops as defined by PathHops).
	LatencyNS *ShardedHist
	Hops      *ShardedHist

	perOp []OpMetrics
}

// OpMetrics is one op type's slice of the workload metrics.
type OpMetrics struct {
	Name      string
	Ops       Counter
	Errors    Counter
	LatencyNS *ShardedHist
	Hops      *ShardedHist
}

// NewWorkloadMetrics builds a metric set with the given histogram
// shard count and one OpMetrics per name (e.g. "get", "put",
// "delete").
func NewWorkloadMetrics(shards int, opNames ...string) *WorkloadMetrics {
	m := &WorkloadMetrics{
		LatencyNS: NewShardedHist(shards),
		Hops:      NewShardedHist(shards),
		perOp:     make([]OpMetrics, len(opNames)),
	}
	for i, name := range opNames {
		m.perOp[i] = OpMetrics{
			Name:      name,
			LatencyNS: NewShardedHist(shards),
			Hops:      NewShardedHist(shards),
		}
	}
	return m
}

// Op returns the metrics for op type i (indexes follow the opNames
// given at construction).
func (m *WorkloadMetrics) Op(i int) *OpMetrics { return &m.perOp[i] }

// NumOps returns the number of op types.
func (m *WorkloadMetrics) NumOps() int { return len(m.perOp) }

// WorkloadSnapshot is the JSON form of WorkloadMetrics.
type WorkloadSnapshot struct {
	InFlight    int64        `json:"in_flight"`
	Ops         uint64       `json:"ops"`
	NotFound    uint64       `json:"not_found"`
	UnknownPeer uint64       `json:"unknown_peer"`
	RouteErrors uint64       `json:"route_errors"`
	LatencyNS   HistSummary  `json:"latency_ns"`
	Hops        HistSummary  `json:"hops"`
	PerOp       []OpSnapshot `json:"per_op,omitempty"`
}

// OpSnapshot is the JSON form of one op type's metrics.
type OpSnapshot struct {
	Name      string      `json:"name"`
	Ops       uint64      `json:"ops"`
	Errors    uint64      `json:"errors"`
	LatencyNS HistSummary `json:"latency_ns"`
	Hops      HistSummary `json:"hops"`
}

// Snapshot digests the metric set. Nil-safe (a nil receiver yields
// the zero snapshot), so callers without a workload layer can embed
// the result unconditionally.
func (m *WorkloadMetrics) Snapshot() WorkloadSnapshot {
	if m == nil {
		return WorkloadSnapshot{}
	}
	s := WorkloadSnapshot{
		InFlight:    m.InFlight.Value(),
		Ops:         m.Ops.Value(),
		NotFound:    m.NotFound.Value(),
		UnknownPeer: m.UnknownPeer.Value(),
		RouteErrors: m.RouteErrors.Value(),
		LatencyNS:   m.LatencyNS.Summary(),
		Hops:        m.Hops.Summary(),
	}
	for i := range m.perOp {
		op := &m.perOp[i]
		s.PerOp = append(s.PerOp, OpSnapshot{
			Name:      op.Name,
			Ops:       op.Ops.Value(),
			Errors:    op.Errors.Value(),
			LatencyNS: op.LatencyNS.Summary(),
			Hops:      op.Hops.Summary(),
		})
	}
	return s
}
