package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ident"
	"repro/internal/stats"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

// TestShardedHistMergeExact pins the sharding contract: observations
// spread over shards merge to exactly what a single histogram would
// have recorded.
func TestShardedHistMergeExact(t *testing.T) {
	sh := NewShardedHist(4)
	want := &stats.Histogram{}
	for i := 0; i < 1000; i++ {
		v := float64(i * 7 % 911)
		sh.Observe(i, v)
		want.Observe(v)
	}
	got := sh.Merged()
	if got.N() != want.N() || got.Mean() != want.Mean() || got.Max() != want.Max() ||
		got.Percentile(99) != want.Percentile(99) {
		t.Fatalf("merged shards = %v, want %v", got, want)
	}
}

func TestShardedHistConcurrent(t *testing.T) {
	sh := NewShardedHist(8)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sh.Observe(w, float64(i))
				if i%100 == 0 {
					_ = sh.Summary()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := sh.Merged().N(); got != 16*500 {
		t.Fatalf("merged N = %d, want %d", got, 16*500)
	}
}

func TestPathHops(t *testing.T) {
	cases := []struct {
		path []ident.ID
		want int
	}{
		{nil, 0},
		{[]ident.ID{1}, 0},
		{[]ident.ID{1, 2}, 1},
		{[]ident.ID{1, 2, 3, 4}, 3},
	}
	for _, c := range cases {
		if got := PathHops(c.path); got != c.want {
			t.Errorf("PathHops(%v) = %d, want %d", c.path, got, c.want)
		}
	}
}

func TestLookupTraceString(t *testing.T) {
	tr := &LookupTrace{
		From: 1, Key: 10, Owner: 3,
		Path:       []ident.ID{1, 2, 3},
		CacheHits:  2,
		Failover:   true,
		DelaySteps: []int{1, 2},
	}
	if tr.Hops() != 2 {
		t.Fatalf("hops = %d, want 2", tr.Hops())
	}
	if tr.TotalDelay() != 3 {
		t.Fatalf("total delay = %d, want 3", tr.TotalDelay())
	}
	s := tr.String()
	for _, want := range []string{"2 hops", "failover", "delay 3 steps"} {
		if !contains(s, want) {
			t.Errorf("trace string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// sampleSnapshot builds a snapshot with every field populated, so the
// round-trip test covers the full shape.
func sampleSnapshot() Snapshot {
	var em EngineMetrics
	em.Steps.Add(100)
	em.Batches.Add(40)
	em.Activated.Add(900)
	em.Woken.Add(12)
	em.Delivered.Add(3000)
	em.Settled.Add(800)
	em.Unsettled.Add(100)
	em.EpochBumps.Add(7)
	em.AsyncDeliveries.Add(5)
	for i := range em.RuleFired {
		em.RuleFired[i].Add(uint64(10 * (i + 1)))
	}
	for _, h := range []*Hist{&em.PhaseDeliver, &em.PhaseExecute, &em.PhasePrepare, &em.PhasePublish, &em.PhaseReroute} {
		h.Observe(1000)
		h.Observe(2000)
	}
	em.FlowTemplates.Set(42)
	em.FlowResidentBytes.Set(81920)
	em.FlowSharedBytes.Set(65536)
	em.FlowUniqueBytes.Set(4096)
	em.FlowInstallsShared.Set(300)
	em.FlowInstallsCopied.Set(100)

	wm := NewWorkloadMetrics(2, "get", "put")
	wm.InFlight.Add(3)
	wm.Ops.Add(50)
	wm.NotFound.Add(4)
	wm.UnknownPeer.Add(1)
	wm.RouteErrors.Add(2)
	for i := 0; i < 20; i++ {
		wm.LatencyNS.Observe(i, float64(100+i))
		wm.Hops.Observe(i, float64(i%5))
	}
	wm.Op(0).Ops.Add(30)
	wm.Op(0).LatencyNS.Observe(0, 111)
	wm.Op(1).Errors.Add(2)
	wm.Op(1).Hops.Observe(1, 3)

	var hops stats.Histogram
	for i := 0; i < 64; i++ {
		hops.Observe(float64(i % 7))
	}
	return Snapshot{
		Engine: em.Snapshot(),
		Routing: RoutingSnapshot{
			CacheHits: 90, CacheMisses: 10, CacheInvalidations: 3,
			CacheEntries: 12, Fallbacks: 2,
			LookupHops: SummarizeHist(&hops),
		},
		Workload:      wm.Snapshot(),
		EventsDropped: 6,
	}
}

// TestSnapshotJSONRoundTrip pins that the full snapshot survives
// marshal/unmarshal unchanged — the contract the /metrics endpoint
// and the METRICS_JSON artifact rely on.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip changed the snapshot:\n got %+v\nwant %+v", got, want)
	}
	if got.Engine.QuiescentSteps != got.Engine.Steps-got.Engine.Batches {
		t.Fatalf("quiescent steps %d != steps %d - batches %d",
			got.Engine.QuiescentSteps, got.Engine.Steps, got.Engine.Batches)
	}
}

// TestRecordMergesLabels pins Record's read-modify-write behavior:
// labels accumulate, re-recording a label overwrites it.
func TestRecordMergesLabels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	a := sampleSnapshot()
	if err := Record(path, "sync-n2048", a); err != nil {
		t.Fatal(err)
	}
	b := sampleSnapshot()
	b.EventsDropped = 99
	if err := Record(path, "async-n8192", b); err != nil {
		t.Fatal(err)
	}
	if err := Record(path, "sync-n2048", b); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var all map[string]Snapshot
	if err := json.Unmarshal(raw, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("got %d labels, want 2", len(all))
	}
	if all["sync-n2048"].EventsDropped != 99 {
		t.Fatalf("re-record did not overwrite label: %+v", all["sync-n2048"])
	}
}

// TestRecordEnvDisabled pins that RecordEnv without METRICS_JSON is a
// no-op, and with it set writes the file.
func TestRecordEnvDisabled(t *testing.T) {
	t.Setenv("METRICS_JSON", "")
	if err := RecordEnv("x", Snapshot{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	t.Setenv("METRICS_JSON", path)
	if err := RecordEnv("x", sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var all map[string]Snapshot
	if err := json.Unmarshal(raw, &all); err != nil {
		t.Fatal(err)
	}
	if _, ok := all["x"]; !ok {
		t.Fatalf("label missing from %s: %v", path, all)
	}
}

func TestSummarizeHistEmpty(t *testing.T) {
	if got := SummarizeHist(nil); got != (HistSummary{}) {
		t.Fatalf("nil histogram summary = %+v, want zero", got)
	}
	var h stats.Histogram
	if got := SummarizeHist(&h); got != (HistSummary{}) {
		t.Fatalf("empty histogram summary = %+v, want zero", got)
	}
}

func TestEngineSnapshotRuleNames(t *testing.T) {
	var em EngineMetrics
	em.RuleFired[2].Add(9)
	s := em.Snapshot()
	if len(s.RuleFired) != NumRules {
		t.Fatalf("rule map has %d entries, want %d", len(s.RuleFired), NumRules)
	}
	if s.RuleFired["closest_real_neighbor"] != 9 {
		t.Fatalf("rule 3 count = %d, want 9 (%v)", s.RuleFired["closest_real_neighbor"], s.RuleFired)
	}
}

// TestEngineSnapshotFlowHitRate pins the derived template hit rate:
// shared installs over all installs, zero (not NaN) when nothing was
// installed — the zero-value EngineMetrics must snapshot cleanly.
func TestEngineSnapshotFlowHitRate(t *testing.T) {
	var em EngineMetrics
	if s := em.Snapshot(); s.FlowTemplateHit != 0 {
		t.Fatalf("zero-value hit rate = %v, want 0", s.FlowTemplateHit)
	}
	em.FlowInstallsShared.Set(3)
	em.FlowInstallsCopied.Set(1)
	if s := em.Snapshot(); s.FlowTemplateHit != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", s.FlowTemplateHit)
	}
}

func TestWorkloadMetricsNilSnapshot(t *testing.T) {
	var m *WorkloadMetrics
	if got := m.Snapshot(); !reflect.DeepEqual(got, WorkloadSnapshot{}) {
		t.Fatalf("nil workload snapshot = %+v, want zero", got)
	}
}

func TestShardedHistOverflowShard(t *testing.T) {
	sh := NewShardedHist(2)
	sh.Observe(17, 5) // reduced modulo shard count
	sh.Observe(-3, 5) // negative worker index is tolerated
	if got := sh.Merged().N(); got != 2 {
		t.Fatalf("N = %d, want 2", got)
	}
	_ = fmt.Sprintf("%v", sh.Summary())
}
