package obs

import "testing"

// BenchmarkObsHotPath is the telemetry layer's own regression gate,
// diffed by CI's bench-diff job with allocs pinned at zero: one
// counter add, one gauge move, and one sharded-histogram observation
// — the per-operation cost the workload engine pays — must stay
// allocation-free and a handful of nanoseconds.
func BenchmarkObsHotPath(b *testing.B) {
	var c Counter
	var g Gauge
	sh := NewShardedHist(4)
	for s := 0; s < 4; s++ {
		sh.Observe(s, 1023) // pre-grow every shard's bucket slice off the timed path
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Add(1)
		sh.Observe(i, float64(i&1023))
		g.Add(-1)
	}
}
