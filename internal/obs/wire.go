package obs

// WireMetrics counts the codec + transport layer's work (see
// internal/wire): frames and bytes in each direction, the payload
// items carried, and symbol-table interning. Same hot-path contract as
// the rest of the package — one atomic add per event, no allocation —
// and the zero value is ready to use, so a nil-checked optional
// attachment costs nothing when absent.
type WireMetrics struct {
	// FramesSent/BytesSent count encoded frames and their on-wire
	// bytes (length prefix included); FramesRecv/BytesRecv the
	// decoded side.
	FramesSent Counter
	BytesSent  Counter
	FramesRecv Counter
	BytesRecv  Counter

	// BucketUpdates, OneShots and Publishes count the effect payloads
	// encoded into round frames (sender side).
	BucketUpdates Counter
	OneShots      Counter
	Publishes     Counter

	// SymbolsInterned counts first mentions: identifiers that went on
	// the wire as 8-byte literals and entered a connection's symbol
	// table. Later mentions ship as 1-3 byte indices and aren't
	// counted.
	SymbolsInterned Counter
}

// Snapshot captures the current counter values.
func (w *WireMetrics) Snapshot() WireSnapshot {
	if w == nil {
		return WireSnapshot{}
	}
	return WireSnapshot{
		FramesSent:      w.FramesSent.Value(),
		BytesSent:       w.BytesSent.Value(),
		FramesRecv:      w.FramesRecv.Value(),
		BytesRecv:       w.BytesRecv.Value(),
		BucketUpdates:   w.BucketUpdates.Value(),
		OneShots:        w.OneShots.Value(),
		Publishes:       w.Publishes.Value(),
		SymbolsInterned: w.SymbolsInterned.Value(),
	}
}

// WireSnapshot is the wire layer's slice of a metrics snapshot.
type WireSnapshot struct {
	FramesSent      uint64 `json:"frames_sent"`
	BytesSent       uint64 `json:"bytes_sent"`
	FramesRecv      uint64 `json:"frames_recv"`
	BytesRecv       uint64 `json:"bytes_recv"`
	BucketUpdates   uint64 `json:"bucket_updates"`
	OneShots        uint64 `json:"one_shots"`
	Publishes       uint64 `json:"publishes"`
	SymbolsInterned uint64 `json:"symbols_interned"`
}
