package obs

import (
	"fmt"
	"strings"

	"repro/internal/ident"
)

// PathHops is the one hop definition every layer reports through: a
// lookup's hop count is the number of inter-peer forwards, i.e. the
// number of owner changes along the resolved path. A lookup answered
// by the home peer itself is 0 hops; a path of k peers is k-1 hops.
// routing.RouteTables counts forwards directly and routing.Route
// returns the path; the agreement of both with this definition is
// pinned by TestHopAccountingUnified.
func PathHops(path []ident.ID) int {
	if len(path) <= 1 {
		return 0
	}
	return len(path) - 1
}

// LookupTrace is the per-lookup flight record: the hop-by-hop path a
// key resolution took, what the routing cache did for it, whether the
// cluster fell back from the cached router to the state walk, and the
// simulated per-hop delay under the asynchronous model. Tracing is
// opt-in and off the hot path: untraced lookups pass a nil trace and
// pay nothing.
type LookupTrace struct {
	From  ident.ID   `json:"from"`
	Key   ident.ID   `json:"key"`
	Owner ident.ID   `json:"owner"`
	Path  []ident.ID `json:"path"`
	// CacheHits / CacheMisses count routing-table fetches along this
	// lookup that were served from (or rebuilt into) the epoch cache.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Failover reports that the cached route failed and the resolution
	// fell back to the direct state walk.
	Failover bool `json:"failover"`
	// DelaySteps is the simulated per-hop delay (in scheduler steps)
	// each forward would pay under the cluster's delay model; empty
	// under the synchronous model's implicit unit delay.
	DelaySteps []int  `json:"delay_steps,omitempty"`
	Err        string `json:"err,omitempty"`
}

// Hops returns the trace's hop count under the unified definition.
func (t *LookupTrace) Hops() int { return PathHops(t.Path) }

// TotalDelay sums the simulated per-hop delays.
func (t *LookupTrace) TotalDelay() int {
	total := 0
	for _, d := range t.DelaySteps {
		total += d
	}
	return total
}

// String renders the trace on one line for logs and demo output.
func (t *LookupTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "key %s: ", t.Key)
	if len(t.Path) == 0 {
		b.WriteString("(no path)")
	}
	for i, p := range t.Path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s", p)
	}
	fmt.Fprintf(&b, " (%d hops, cache %d/%d", t.Hops(), t.CacheHits, t.CacheHits+t.CacheMisses)
	if t.Failover {
		b.WriteString(", failover")
	}
	if len(t.DelaySteps) > 0 {
		fmt.Fprintf(&b, ", delay %d steps", t.TotalDelay())
	}
	if t.Err != "" {
		fmt.Fprintf(&b, ", err %q", t.Err)
	}
	b.WriteString(")")
	return b.String()
}
