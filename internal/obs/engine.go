package obs

// NumRules is the number of protocol rules the engine instruments
// (Re-Chord rules 1-6).
const NumRules = 6

// RuleNames keys the per-rule firing counters in snapshots, in rule
// order: 1 virtual-nodes, 2 overlapping-neighborhood, 3
// closest-real-neighbor, 4 linearization, 5 ring-edges, 6
// connection-edges.
var RuleNames = [NumRules]string{
	"virtual_nodes",
	"overlapping_neighborhood",
	"closest_real_neighbor",
	"linearization",
	"ring_edges",
	"connection_edges",
}

// EngineMetrics is the round/async engine's counter set. One instance
// lives inside every rechord.Network (always on); the engine tallies
// into plain batch-local integers and flushes each counter with one
// atomic add per non-quiescent batch, so a quiescent Step costs
// exactly one atomic increment (Steps). The zero value is ready to
// use.
type EngineMetrics struct {
	// Steps counts every scheduler step, quiescent ones included
	// (synchronous rounds and asynchronous time steps alike).
	Steps Counter
	// Batches counts non-quiescent steps: steps whose frontier was
	// non-empty and that therefore ran the three-phase barrier.
	Batches Counter
	// Activated counts peer rule executions (frontier size summed over
	// batches).
	Activated Counter
	// Woken counts clean peers dirtied by the inverted dependency
	// index after a batch published changes.
	Woken Counter
	// Delivered counts messages applied at delivery time: one-shot
	// inbox entries plus standing-bucket messages read in phase 1.
	Delivered Counter
	// Settled / Unsettled count the per-peer settle decisions at the
	// barrier: a settled peer reached a local fixed point and leaves
	// the frontier; an unsettled one stays dirty.
	Settled   Counter
	Unsettled Counter
	// EpochBumps counts routing-epoch invalidations published by
	// state-changing peers (what forces routing-table rebuilds).
	EpochBumps Counter
	// AsyncDeliveries counts delivery events fired by the asynchronous
	// scheduler (0 under the synchronous engine).
	AsyncDeliveries Counter
	// RuleFired counts protocol actions per rule, indexed like
	// RuleNames: messages sent by the rule, plus rule 1's virtual-node
	// creations/removals and rule 2's immediate edge handoffs.
	RuleFired [NumRules]Counter
	// Flow-storage gauges: the resident footprint of the shared flow
	// templates that back standing buckets. Set once per batch (or
	// churn operation) from the engine's serial accounting — never on
	// the per-message path. FlowTemplates is the number of live
	// templates; FlowResidentBytes their packed footprint;
	// FlowSharedBytes / FlowUniqueBytes classify the deep-copy
	// equivalent bytes of the standing buckets by whether they
	// reference a shared template or a private copy; the
	// FlowInstalls* pair counts bucket installs by the same split
	// (shared installs are the template hit rate's numerator).
	FlowTemplates      Gauge
	FlowResidentBytes  Gauge
	FlowSharedBytes    Gauge
	FlowUniqueBytes    Gauge
	FlowInstallsShared Gauge
	FlowInstallsCopied Gauge
	// Per-phase barrier wall-clock, in nanoseconds per batch. Deliver
	// is phase 1 (inbox/bucket application and reference purging),
	// Execute is phase 2 (the parallel rule run), Prepare is phase 3a
	// (the parallel view-publish and output/dependency diffing),
	// Reroute is phase 3b — the sharded bucket/index commit under the
	// synchronous engine, or the time spent inside a serial scheduler's
	// route callback — and Publish is the serial epilogue (settle
	// bookkeeping, change-set merge, dependent wakes). The ROADMAP's
	// "serial publish/reroute phase" is now the prepare+reroute pair,
	// parallel and measured.
	PhaseDeliver Hist
	PhaseExecute Hist
	PhasePrepare Hist
	PhasePublish Hist
	PhaseReroute Hist
}

// EngineSnapshot is the JSON form of EngineMetrics.
type EngineSnapshot struct {
	Steps           uint64                 `json:"steps"`
	QuiescentSteps  uint64                 `json:"quiescent_steps"`
	Batches         uint64                 `json:"batches"`
	Activated       uint64                 `json:"activated"`
	Woken           uint64                 `json:"woken"`
	Delivered       uint64                 `json:"delivered"`
	Settled         uint64                 `json:"settled"`
	Unsettled       uint64                 `json:"unsettled"`
	EpochBumps      uint64                 `json:"epoch_bumps"`
	AsyncDeliveries uint64                 `json:"async_deliveries"`
	RuleFired       map[string]uint64      `json:"rule_fired"`
	PhaseNS         map[string]HistSummary `json:"phase_ns"`
	// Flow-storage snapshot (see the FlowTemplates gauge group).
	FlowTemplates      int64   `json:"flow_templates"`
	FlowResidentBytes  int64   `json:"flow_resident_bytes"`
	FlowSharedBytes    int64   `json:"flow_shared_bytes"`
	FlowUniqueBytes    int64   `json:"flow_unique_bytes"`
	FlowInstallsShared int64   `json:"flow_installs_shared"`
	FlowInstallsCopied int64   `json:"flow_installs_copied"`
	FlowTemplateHit    float64 `json:"flow_template_hit_rate"`
}

// Snapshot digests the counters. Safe to call concurrently with the
// engine stepping; counters are read individually, so the snapshot is
// per-field atomic, not a global cut.
func (m *EngineMetrics) Snapshot() EngineSnapshot {
	steps := m.Steps.Value()
	batches := m.Batches.Value()
	s := EngineSnapshot{
		Steps:           steps,
		QuiescentSteps:  steps - batches,
		Batches:         batches,
		Activated:       m.Activated.Value(),
		Woken:           m.Woken.Value(),
		Delivered:       m.Delivered.Value(),
		Settled:         m.Settled.Value(),
		Unsettled:       m.Unsettled.Value(),
		EpochBumps:      m.EpochBumps.Value(),
		AsyncDeliveries: m.AsyncDeliveries.Value(),
		RuleFired:       make(map[string]uint64, NumRules),
		PhaseNS:         make(map[string]HistSummary, 5),
	}
	for i := range m.RuleFired {
		s.RuleFired[RuleNames[i]] = m.RuleFired[i].Value()
	}
	s.PhaseNS["deliver"] = m.PhaseDeliver.Summary()
	s.PhaseNS["execute"] = m.PhaseExecute.Summary()
	s.PhaseNS["prepare"] = m.PhasePrepare.Summary()
	s.PhaseNS["publish"] = m.PhasePublish.Summary()
	s.PhaseNS["reroute"] = m.PhaseReroute.Summary()
	s.FlowTemplates = m.FlowTemplates.Value()
	s.FlowResidentBytes = m.FlowResidentBytes.Value()
	s.FlowSharedBytes = m.FlowSharedBytes.Value()
	s.FlowUniqueBytes = m.FlowUniqueBytes.Value()
	s.FlowInstallsShared = m.FlowInstallsShared.Value()
	s.FlowInstallsCopied = m.FlowInstallsCopied.Value()
	if total := s.FlowInstallsShared + s.FlowInstallsCopied; total > 0 {
		s.FlowTemplateHit = float64(s.FlowInstallsShared) / float64(total)
	}
	return s
}
