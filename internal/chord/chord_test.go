package chord

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ident"
)

func randomIDs(n int, rng *rand.Rand) []ident.ID {
	seen := map[ident.ID]bool{}
	out := make([]ident.ID, 0, n)
	for len(out) < n {
		id := ident.ID(rng.Uint64())
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

func TestBuildCorrectIsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := BuildCorrect(randomIDs(50, rng))
	if !s.IsCorrectRing() {
		t.Fatal("BuildCorrect produced a wrong ring")
	}
	if got := len(s.SuccessorCycle()); got != 50 {
		t.Fatalf("successor cycle covers %d of 50 nodes", got)
	}
}

func TestLookupFindsResponsibleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids := randomIDs(64, rng)
	s := BuildCorrect(ids)
	sorted := append([]ident.ID(nil), ids...)
	ident.Sort(sorted)
	for trial := 0; trial < 200; trial++ {
		key := ident.ID(rng.Uint64())
		want := ident.Successor(sorted, key)
		from := ids[rng.Intn(len(ids))]
		got, hops, err := s.FindSuccessor(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("lookup(%s) = %s, want %s", key, got, want)
		}
		if hops < 1 {
			t.Fatalf("lookup took %d hops", hops)
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ids := randomIDs(256, rng)
	s := BuildCorrect(ids)
	total := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		from := ids[rng.Intn(len(ids))]
		_, hops, err := s.FindSuccessor(from, ident.ID(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / trials
	bound := 2 * math.Log2(256)
	if mean > bound {
		t.Errorf("mean hops %.2f exceeds 2 log2 n = %.2f", mean, bound)
	}
	t.Logf("mean lookup hops over n=256: %.2f (log2 n = 8)", mean)
}

func TestStabilizeMaintainsCorrectRing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := BuildCorrect(randomIDs(40, rng))
	for i := 0; i < 10; i++ {
		s.Stabilize()
	}
	if !s.IsCorrectRing() {
		t.Fatal("stabilize broke a correct ring")
	}
}

func TestJoinIntegratesViaStabilize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ids := randomIDs(30, rng)
	s := BuildCorrect(ids)
	for k := 0; k < 5; k++ {
		id := ident.ID(rng.Uint64() | 1)
		if err := s.Join(id, ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			s.Stabilize()
		}
	}
	if !s.IsCorrectRing() {
		t.Fatal("ring incorrect after joins plus stabilization")
	}
	if got, want := len(s.SuccessorCycle()), 35; got != want {
		t.Fatalf("cycle covers %d, want %d", got, want)
	}
}

// TestChordIsNotSelfStabilizing is the motivating experiment: from a
// loopy state — a weakly connected successor cycle winding twice
// around the identifier circle — Chord's maintenance protocol never
// recovers the sorted ring (Re-Chord does; see internal/experiments).
func TestChordIsNotSelfStabilizing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ids := randomIDs(25, rng)
	s := Loopy(ids)
	if s.IsCorrectRing() {
		t.Fatal("test setup: loopy state starts correct?")
	}
	if got := len(s.SuccessorCycle()); got != 25 {
		t.Fatalf("loopy construction: cycle covers %d, want 25 (single winding cycle)", got)
	}
	before := make(map[ident.ID]ident.ID)
	for _, id := range s.IDs() {
		before[id] = s.Node(id).Successor()
	}
	for i := 0; i < 200; i++ {
		s.Stabilize()
	}
	if s.IsCorrectRing() {
		t.Fatal("Chord unexpectedly self-stabilized from the loopy state")
	}
	for _, id := range s.IDs() {
		if s.Node(id).Successor() != before[id] {
			t.Fatalf("node %s changed successor: loopy state should be a maintenance fixed point", id)
		}
	}
}

func TestLoopyStride(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{25, 2}, {24, 5}, {9, 2}, {10, 3}, {7, 2},
	} {
		if got := LoopyStride(tc.n); got != tc.want {
			t.Errorf("LoopyStride(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestFindSuccessorErrors(t *testing.T) {
	s := NewSystem()
	if _, _, err := s.FindSuccessor(ident.ID(1), ident.ID(2)); err == nil {
		t.Error("lookup from unknown node must error")
	}
	// Single node pointing at itself resolves everything to itself.
	s.AddNode(ident.ID(10), ident.ID(10))
	got, _, err := s.FindSuccessor(ident.ID(10), ident.ID(99))
	if err != nil || got != ident.ID(10) {
		t.Errorf("single-node lookup = %v, %v; want self, nil", got, err)
	}
}

func TestJoinErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := randomIDs(5, rng)
	s := BuildCorrect(ids)
	if err := s.Join(ids[0], ids[1]); err == nil {
		t.Error("joining an existing id must error")
	}
}

func TestNodeAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ids := randomIDs(8, rng)
	s := BuildCorrect(ids)
	n := s.Node(ids[0])
	if n == nil || n.ID() != ids[0] {
		t.Fatal("Node accessor broken")
	}
	if _, ok := n.Predecessor(); !ok {
		t.Error("correct ring must have predecessors set")
	}
	if n.Successor() == n.ID() {
		t.Error("successor of a multi-node ring must differ from self")
	}
	foundFinger := false
	for lvl := 1; lvl <= MaxFinger; lvl++ {
		if _, ok := n.Finger(lvl); ok {
			foundFinger = true
		}
	}
	if !foundFinger {
		t.Error("correct ring with 8 nodes must have at least one finger")
	}
}
