// Package chord implements the classic Chord protocol of Stoica,
// Morris, Karger, Kaashoek and Balakrishnan (SIGCOMM 2001) as the
// baseline the paper compares against: successor/predecessor pointers,
// finger tables, iterative lookup, and the periodic
// stabilize/notify/fix-fingers maintenance protocol.
//
// The package exists for two experiments:
//
//   - Fact 2.1: every edge of the correct Chord topology must appear in
//     the stable Re-Chord network projected onto real nodes.
//   - Section 1 motivation: Chord's maintenance protocol is NOT
//     self-stabilizing — from particular weakly connected states (e.g.
//     two interleaved rings) stabilize/fix-fingers never recovers the
//     sorted ring, while Re-Chord does.
package chord

import (
	"fmt"

	"repro/internal/ident"
)

// MaxFinger is the deepest finger level, matching Re-Chord's virtual
// node cap so the two systems span the same distance scales.
const MaxFinger = ident.MaxLevel

// Node is one Chord peer's routing state.
type Node struct {
	id      ident.ID
	succ    ident.ID
	pred    ident.ID
	hasPred bool
	// fingers[i] (1-based level) is the peer believed to succeed
	// id + 1/2^i; level 1 is the farthest finger.
	fingers map[int]ident.ID
}

// ID returns the node's identifier.
func (n *Node) ID() ident.ID { return n.id }

// Successor returns the node's current successor pointer.
func (n *Node) Successor() ident.ID { return n.succ }

// Predecessor returns the predecessor pointer, if set.
func (n *Node) Predecessor() (ident.ID, bool) { return n.pred, n.hasPred }

// Finger returns the finger at the level, if set.
func (n *Node) Finger(level int) (ident.ID, bool) {
	f, ok := n.fingers[level]
	return f, ok
}

// System is a set of Chord nodes sharing an address space; method
// calls between nodes model Chord's RPCs.
type System struct {
	nodes map[ident.ID]*Node
	order []ident.ID
}

// NewSystem creates an empty Chord system.
func NewSystem() *System {
	return &System{nodes: make(map[ident.ID]*Node)}
}

// AddNode inserts a node with explicit successor state. pred may be
// zero with hasPred false.
func (s *System) AddNode(id, succ ident.ID) *Node {
	n := &Node{id: id, succ: succ, fingers: make(map[int]ident.ID)}
	s.nodes[id] = n
	i := 0
	for i < len(s.order) && s.order[i] < id {
		i++
	}
	s.order = append(s.order, 0)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = id
	return n
}

// Node returns the node with the identifier, or nil.
func (s *System) Node(id ident.ID) *Node { return s.nodes[id] }

// IDs returns all node identifiers in increasing order.
func (s *System) IDs() []ident.ID { return append([]ident.ID(nil), s.order...) }

// BuildCorrect constructs the correct Chord ring over the identifiers:
// successor and predecessor pointers follow the sorted order and every
// finger is exact.
func BuildCorrect(ids []ident.ID) *System {
	s := NewSystem()
	sorted := append([]ident.ID(nil), ids...)
	ident.Sort(sorted)
	for i, id := range sorted {
		s.AddNode(id, sorted[(i+1)%len(sorted)])
	}
	for i, id := range sorted {
		n := s.nodes[id]
		n.pred = sorted[(i+len(sorted)-1)%len(sorted)]
		n.hasPred = true
	}
	s.FixAllFingers()
	return s
}

// inHalfOpen reports x in (a, b] on the ring.
func inHalfOpen(x, a, b ident.ID) bool {
	return ident.Between(x, a, b) || (x == b && x != a)
}

// FindSuccessor routes a lookup for key starting at from, returning
// the responsible node and the number of hops taken (the paper's
// O(log n) binary-search path of Section 1.1).
func (s *System) FindSuccessor(from ident.ID, key ident.ID) (ident.ID, int, error) {
	n, ok := s.nodes[from]
	if !ok {
		return 0, 0, fmt.Errorf("chord: unknown start node %s", from)
	}
	hops := 0
	for {
		if inHalfOpen(key, n.id, n.succ) {
			return n.succ, hops + 1, nil
		}
		next := s.closestPreceding(n, key)
		if next == n.id {
			// No finger makes progress; fall back to the successor.
			next = n.succ
		}
		if next == n.id {
			return 0, hops, fmt.Errorf("chord: lookup for %s stuck at %s", key, n.id)
		}
		n = s.nodes[next]
		if n == nil {
			return 0, hops, fmt.Errorf("chord: route hit departed node %s", next)
		}
		hops++
		if hops > 4*len(s.nodes)+8 {
			return 0, hops, fmt.Errorf("chord: lookup for %s did not terminate", key)
		}
	}
}

// closestPreceding returns the finger (or successor) of n that most
// closely precedes key, Chord's greedy routing step.
func (s *System) closestPreceding(n *Node, key ident.ID) ident.ID {
	best := n.id
	consider := func(c ident.ID) {
		if _, ok := s.nodes[c]; !ok {
			return
		}
		if ident.Between(c, n.id, key) && (best == n.id || ident.Between(best, n.id, c) || best == n.id) {
			// c lies strictly between n and key and beyond the current
			// best: prefer the largest such step.
			if best == n.id || ident.Dist(n.id, c) > ident.Dist(n.id, best) {
				best = c
			}
		}
	}
	for _, f := range n.fingers {
		consider(f)
	}
	consider(n.succ)
	return best
}

// Join inserts a new node using the standard protocol: it asks the
// contact to find its successor and starts with no predecessor and no
// fingers; maintenance fills in the rest.
func (s *System) Join(id, contact ident.ID) error {
	if _, ok := s.nodes[id]; ok {
		return fmt.Errorf("chord: node %s already present", id)
	}
	succ, _, err := s.FindSuccessor(contact, id)
	if err != nil {
		return fmt.Errorf("chord: join via %s: %w", contact, err)
	}
	s.AddNode(id, succ)
	return nil
}

// Stabilize runs one round of Chord's periodic maintenance at every
// node: verify the successor via its predecessor, notify the
// successor, and refresh every finger.
func (s *System) Stabilize() {
	// All nodes run the protocol against the state at the start of the
	// round (synchronous model, like the paper's).
	type update struct {
		n    *Node
		succ ident.ID
	}
	var succUpdates []update
	for _, id := range s.order {
		n := s.nodes[id]
		succ := s.nodes[n.succ]
		if succ == nil {
			continue
		}
		if succ.hasPred {
			x := succ.pred
			if _, alive := s.nodes[x]; alive && ident.Between(x, n.id, n.succ) {
				succUpdates = append(succUpdates, update{n, x})
			}
		}
	}
	for _, u := range succUpdates {
		u.n.succ = u.succ
	}
	// notify: n tells its successor about itself.
	for _, id := range s.order {
		n := s.nodes[id]
		succ := s.nodes[n.succ]
		if succ == nil || succ == n {
			continue
		}
		if !succ.hasPred {
			succ.pred, succ.hasPred = n.id, true
			continue
		}
		if _, alive := s.nodes[succ.pred]; !alive || ident.Between(n.id, succ.pred, succ.id) {
			succ.pred, succ.hasPred = n.id, true
		}
	}
	s.FixAllFingers()
}

// FixAllFingers refreshes every finger of every node through lookups
// routed over the current state.
func (s *System) FixAllFingers() {
	for _, id := range s.order {
		n := s.nodes[id]
		for lvl := 1; lvl <= MaxFinger; lvl++ {
			target := ident.Sibling(n.id, lvl)
			// Stop refining once the finger target falls within
			// (n, successor]: deeper fingers all equal the successor.
			if inHalfOpen(target, n.id, n.succ) {
				delete(n.fingers, lvl)
				continue
			}
			f, _, err := s.FindSuccessor(n.id, target)
			if err != nil {
				continue
			}
			n.fingers[lvl] = f
		}
	}
}

// SuccessorCycle walks successor pointers from the smallest node and
// returns the distinct nodes visited before the walk repeats. A
// correct ring visits every node.
func (s *System) SuccessorCycle() []ident.ID {
	if len(s.order) == 0 {
		return nil
	}
	var out []ident.ID
	seen := make(map[ident.ID]bool)
	cur := s.order[0]
	for !seen[cur] {
		seen[cur] = true
		out = append(out, cur)
		n := s.nodes[cur]
		if n == nil {
			break
		}
		cur = n.succ
	}
	return out
}

// IsCorrectRing reports whether every node's successor is its true
// clockwise neighbor.
func (s *System) IsCorrectRing() bool {
	n := len(s.order)
	if n == 0 {
		return true
	}
	for i, id := range s.order {
		want := s.order[(i+1)%n]
		if s.nodes[id].succ != want {
			return false
		}
	}
	return true
}

// LoopyStride returns the smallest stride >= 2 that is coprime with n,
// so that the i -> i+stride successor assignment forms a single cycle
// winding stride times around the identifier circle.
func LoopyStride(n int) int {
	for k := 2; ; k++ {
		if gcd(k, n) == 1 {
			return k
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Loopy builds the classic "loopy" weakly connected state of
// Liben-Nowell et al.: every node's successor is its stride-th
// clockwise neighbor, forming one cycle that winds several times
// around the identifier circle. Predecessors are consistent with the
// successors, so stabilize/notify find nothing to fix: the state is a
// fixed point of Chord's maintenance protocol even though the ring is
// wrong. Re-Chord recovers from the same state (the motivating
// example of Section 1).
func Loopy(ids []ident.ID) *System {
	s := NewSystem()
	sorted := append([]ident.ID(nil), ids...)
	ident.Sort(sorted)
	n := len(sorted)
	stride := LoopyStride(n)
	for i, id := range sorted {
		s.AddNode(id, sorted[(i+stride)%n])
	}
	for i, id := range sorted {
		nd := s.nodes[id]
		nd.pred = sorted[(i+n-stride)%n]
		nd.hasPred = true
	}
	s.FixAllFingers()
	return s
}
