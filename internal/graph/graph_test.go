package graph

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ident"
	"repro/internal/ref"
)

func r(x float64) ref.Ref          { return ref.Real(ident.FromFloat(x)) }
func v(x float64, lvl int) ref.Ref { return ref.Virtual(ident.FromFloat(x), lvl) }

func TestAddEdgeAddsNodes(t *testing.T) {
	g := New()
	g.AddEdge(r(0.1), r(0.2), Unmarked)
	if !g.HasNode(r(0.1)) || !g.HasNode(r(0.2)) {
		t.Error("AddEdge did not add endpoints")
	}
	if !g.HasEdge(r(0.1), r(0.2), Unmarked) {
		t.Error("edge missing")
	}
	if g.HasEdge(r(0.2), r(0.1), Unmarked) {
		t.Error("reverse edge must not exist (directed)")
	}
	if g.HasEdge(r(0.1), r(0.2), Ring) {
		t.Error("edge kind must be distinguished")
	}
}

func TestMultigraphKinds(t *testing.T) {
	g := New()
	g.AddEdge(r(0.1), r(0.2), Unmarked)
	g.AddEdge(r(0.1), r(0.2), Ring)
	g.AddEdge(r(0.1), r(0.2), Connection)
	g.AddEdge(r(0.1), r(0.2), Unmarked) // duplicate, set semantics per kind
	if g.TotalEdges() != 3 {
		t.Errorf("TotalEdges = %d, want 3 (one per kind)", g.TotalEdges())
	}
	if g.NumEdges(Ring) != 1 || g.NumEdges(Connection) != 1 || g.NumEdges(Unmarked) != 1 {
		t.Error("per-kind counts wrong")
	}
}

func TestCounts(t *testing.T) {
	g := New()
	g.AddNode(r(0.5))
	g.AddNode(v(0.5, 1))
	g.AddNode(v(0.5, 2))
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumRealNodes() != 1 {
		t.Errorf("NumRealNodes = %d, want 1", g.NumRealNodes())
	}
}

func TestWeaklyConnected(t *testing.T) {
	g := New()
	if !g.WeaklyConnected() {
		t.Error("empty graph should count as connected")
	}
	g.AddEdge(r(0.1), r(0.2), Unmarked)
	g.AddEdge(r(0.3), r(0.2), Ring) // direction against the flow: weak connectivity ignores it
	if !g.WeaklyConnected() {
		t.Error("chain should be weakly connected")
	}
	g.AddNode(r(0.9))
	if g.WeaklyConnected() {
		t.Error("isolated node should break connectivity")
	}
	if g.NumComponents() != 2 {
		t.Errorf("NumComponents = %d, want 2", g.NumComponents())
	}
}

func TestRealWeaklyConnected(t *testing.T) {
	g := New()
	// Two real nodes connected only through their virtual nodes:
	// u_1 -> w_2 makes the REAL graph {u,w} connected even though u and
	// w themselves have no direct edge.
	g.AddNode(r(0.1))
	g.AddNode(r(0.6))
	g.AddEdge(v(0.1, 1), v(0.6, 2), Connection)
	if !g.RealWeaklyConnected() {
		t.Error("virtual-virtual edge must connect the owners' real graph")
	}
	// A third real node with no edges at all is disconnected.
	g.AddNode(r(0.9))
	if g.RealWeaklyConnected() {
		t.Error("isolated real node must break real connectivity")
	}
}

func TestUnmarkedWeaklyConnected(t *testing.T) {
	g := New()
	g.AddEdge(r(0.1), r(0.2), Ring)
	if g.UnmarkedWeaklyConnected() {
		t.Error("ring edge must not count for Phase-1 connectivity")
	}
	g.AddEdge(r(0.2), r(0.1), Unmarked)
	if !g.UnmarkedWeaklyConnected() {
		t.Error("unmarked edge should connect the two nodes")
	}
}

func TestOutDegree(t *testing.T) {
	g := New()
	g.AddEdge(r(0.1), r(0.2), Unmarked)
	g.AddEdge(r(0.1), r(0.3), Unmarked)
	g.AddEdge(r(0.1), r(0.2), Ring)
	g.AddEdge(r(0.2), r(0.1), Unmarked)
	if d := g.OutDegree(r(0.1)); d != 3 {
		t.Errorf("OutDegree = %d, want 3", d)
	}
	st := g.OutDegreeStats()
	if st.Max != 3 || st.Min != 0 {
		t.Errorf("OutDegreeStats = %+v, want Max 3 Min 0", st)
	}
	if st.Mean <= 0 {
		t.Errorf("Mean = %v, want positive", st.Mean)
	}
}

func TestEqualAndSubgraph(t *testing.T) {
	a, b := New(), New()
	a.AddEdge(r(0.1), r(0.2), Unmarked)
	b.AddEdge(r(0.1), r(0.2), Unmarked)
	if !a.Equal(b) {
		t.Error("identical graphs not Equal")
	}
	b.AddEdge(r(0.2), r(0.3), Ring)
	if a.Equal(b) {
		t.Error("different graphs compare Equal")
	}
	if !a.Subgraph(b) {
		t.Error("a must be subgraph of b")
	}
	if b.Subgraph(a) {
		t.Error("b must not be subgraph of a")
	}
}

func TestSubgraphKindSensitive(t *testing.T) {
	a, b := New(), New()
	a.AddEdge(r(0.1), r(0.2), Ring)
	b.AddEdge(r(0.1), r(0.2), Unmarked)
	if a.Subgraph(b) {
		t.Error("ring edge must not match unmarked edge in Subgraph")
	}
}

func TestNodesAndEdgesDeterministic(t *testing.T) {
	build := func(seed int64) *Graph {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < 50; i++ {
			g.AddEdge(
				ref.Real(ident.ID(rng.Uint64())),
				ref.Real(ident.ID(rng.Uint64())),
				Kind(rng.Intn(3)),
			)
		}
		return g
	}
	g1, g2 := build(42), build(42)
	n1, n2 := g1.Nodes(), g2.Nodes()
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("Nodes() order not deterministic")
		}
	}
	e1, e2 := g1.AllEdges(), g2.AllEdges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("AllEdges() order not deterministic")
		}
	}
}

func TestComponentsLargeRandom(t *testing.T) {
	// A random spanning tree is always weakly connected; removing the
	// bridge of a two-tree forest is not.
	rng := rand.New(rand.NewSource(11))
	g := New()
	nodes := make([]ref.Ref, 300)
	for i := range nodes {
		nodes[i] = ref.Real(ident.ID(rng.Uint64()))
		g.AddNode(nodes[i])
	}
	for i := 1; i < len(nodes); i++ {
		g.AddEdge(nodes[i], nodes[rng.Intn(i)], Kind(rng.Intn(3)))
	}
	if !g.WeaklyConnected() {
		t.Error("spanning tree should be weakly connected")
	}
}

func TestKindString(t *testing.T) {
	if Unmarked.String() != "unmarked" || Ring.String() != "ring" || Connection.String() != "connection" {
		t.Error("Kind.String names wrong")
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Error("unknown kind should render as Kind(n)")
	}
}

func TestDOT(t *testing.T) {
	g := New()
	g.AddEdge(r(0.1), v(0.2, 1), Ring)
	dot := g.DOT()
	for _, want := range []string{"digraph", "->", "style=bold", "shape=box", "shape=circle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
