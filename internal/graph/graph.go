// Package graph provides directed multigraph snapshots of the Re-Chord
// network state, with the three edge markings of Section 2.2 (unmarked,
// ring, connection), weak-connectivity checks, and structural
// statistics used by the experiments.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ref"
)

// Kind is the marking of an edge: E_u, E_r or E_c in the paper.
type Kind int

const (
	// Unmarked edges (E_u) carry the topology being linearized.
	Unmarked Kind = iota
	// Ring edges (E_r) close the sorted list into a ring (rule 5).
	Ring
	// Connection edges (E_c) keep sibling clusters connected (rule 6).
	Connection
	numKinds
)

// String names the edge kind.
func (k Kind) String() string {
	switch k {
	case Unmarked:
		return "unmarked"
	case Ring:
		return "ring"
	case Connection:
		return "connection"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all edge kinds in a stable order.
func Kinds() []Kind { return []Kind{Unmarked, Ring, Connection} }

// Edge is a directed, marked edge of the multigraph. The same (From,
// To) pair may appear once per Kind, as in the paper's multigraph.
type Edge struct {
	From, To ref.Ref
	Kind     Kind
}

// Graph is a snapshot of the network: the node set and all directed
// edges, grouped by kind. The zero value is an empty graph.
type Graph struct {
	nodes map[ref.Ref]bool
	edges map[Kind]map[Edge]bool
}

// New returns an empty graph.
func New() *Graph {
	g := &Graph{
		nodes: make(map[ref.Ref]bool),
		edges: make(map[Kind]map[Edge]bool),
	}
	for _, k := range Kinds() {
		g.edges[k] = make(map[Edge]bool)
	}
	return g
}

// AddNode inserts a node.
func (g *Graph) AddNode(r ref.Ref) { g.nodes[r] = true }

// HasNode reports whether r is a node of the graph.
func (g *Graph) HasNode(r ref.Ref) bool { return g.nodes[r] }

// AddEdge inserts a directed edge of the given kind, adding both
// endpoints as nodes.
func (g *Graph) AddEdge(from, to ref.Ref, k Kind) {
	g.AddNode(from)
	g.AddNode(to)
	g.edges[k][Edge{From: from, To: to, Kind: k}] = true
}

// HasEdge reports whether the directed edge exists with the kind.
func (g *Graph) HasEdge(from, to ref.Ref, k Kind) bool {
	return g.edges[k][Edge{From: from, To: to, Kind: k}]
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumRealNodes returns the number of real (level-0) nodes.
func (g *Graph) NumRealNodes() int {
	n := 0
	for r := range g.nodes {
		if r.IsReal() {
			n++
		}
	}
	return n
}

// NumEdges returns the number of edges of the given kind.
func (g *Graph) NumEdges(k Kind) int { return len(g.edges[k]) }

// TotalEdges returns the number of edges across all kinds.
func (g *Graph) TotalEdges() int {
	t := 0
	for _, k := range Kinds() {
		t += len(g.edges[k])
	}
	return t
}

// Nodes returns all nodes in a deterministic (sorted) order.
func (g *Graph) Nodes() []ref.Ref {
	out := make([]ref.Ref, 0, len(g.nodes))
	for r := range g.nodes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Edges returns all edges of the kind in a deterministic order.
func (g *Graph) Edges(k Kind) []Edge {
	out := make([]Edge, 0, len(g.edges[k]))
	for e := range g.edges[k] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From.Less(out[j].From)
		}
		return out[i].To.Less(out[j].To)
	})
	return out
}

// AllEdges returns every edge of every kind in a deterministic order.
func (g *Graph) AllEdges() []Edge {
	var out []Edge
	for _, k := range Kinds() {
		out = append(out, g.Edges(k)...)
	}
	return out
}

// union-find over node indices for weak connectivity.
type dsu struct {
	parent []int
	rank   []int
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int, n), rank: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
}

// components assigns each node to a weakly connected component id,
// treating all edges as undirected. project maps a node to the vertex
// it should be identified with (identity for the plain node graph, the
// owner's real node for the "graph given by the real nodes").
func (g *Graph) components(project func(ref.Ref) ref.Ref) map[ref.Ref]int {
	idx := make(map[ref.Ref]int)
	var order []ref.Ref
	add := func(r ref.Ref) int {
		r = project(r)
		if i, ok := idx[r]; ok {
			return i
		}
		i := len(order)
		idx[r] = i
		order = append(order, r)
		return i
	}
	for _, r := range g.Nodes() {
		add(r)
	}
	d := newDSU(len(order) + 2*g.TotalEdges())
	for _, k := range Kinds() {
		for e := range g.edges[k] {
			d.union(add(e.From), add(e.To))
		}
	}
	// Normalize roots to small component ids.
	compID := make(map[int]int)
	out := make(map[ref.Ref]int, len(idx))
	for r, i := range idx {
		root := d.find(i)
		id, ok := compID[root]
		if !ok {
			id = len(compID)
			compID[root] = id
		}
		out[r] = id
	}
	return out
}

// WeaklyConnected reports whether the graph, viewed as undirected, has
// at most one component over all its nodes.
func (g *Graph) WeaklyConnected() bool {
	return g.NumComponents() <= 1
}

// NumComponents returns the number of weakly connected components.
func (g *Graph) NumComponents() int {
	comp := g.components(func(r ref.Ref) ref.Ref { return r })
	max := -1
	for _, id := range comp {
		if id > max {
			max = id
		}
	}
	return max + 1
}

// RealWeaklyConnected reports whether the graph projected onto real
// nodes is weakly connected: there is an edge (u,v) between real nodes
// u and v whenever any edge (u_i, v_j) of any kind exists (Section
// 3.1.1). All real nodes participate even when isolated; virtual nodes
// are identified with their owners.
func (g *Graph) RealWeaklyConnected() bool {
	comp := g.components(func(r ref.Ref) ref.Ref { return ref.Real(r.Owner) })
	max := -1
	for _, id := range comp {
		if id > max {
			max = id
		}
	}
	return max+1 <= 1
}

// UnmarkedWeaklyConnected reports whether all nodes are weakly
// connected using unmarked edges only — the target of Phase 1 (Lemma
// 3.2).
func (g *Graph) UnmarkedWeaklyConnected() bool {
	sub := New()
	for r := range g.nodes {
		sub.AddNode(r)
	}
	for e := range g.edges[Unmarked] {
		sub.AddEdge(e.From, e.To, Unmarked)
	}
	return sub.WeaklyConnected()
}

// OutDegree returns the number of outgoing edges of r summed over all
// kinds.
func (g *Graph) OutDegree(r ref.Ref) int {
	d := 0
	for _, k := range Kinds() {
		for e := range g.edges[k] {
			if e.From == r {
				d++
			}
		}
	}
	return d
}

// DegreeStats summarizes the out-degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// OutDegreeStats computes out-degree statistics over all nodes.
func (g *Graph) OutDegreeStats() DegreeStats {
	if len(g.nodes) == 0 {
		return DegreeStats{}
	}
	deg := make(map[ref.Ref]int, len(g.nodes))
	for _, k := range Kinds() {
		for e := range g.edges[k] {
			deg[e.From]++
		}
	}
	st := DegreeStats{Min: int(^uint(0) >> 1)}
	sum := 0
	for r := range g.nodes {
		d := deg[r]
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		sum += d
	}
	st.Mean = float64(sum) / float64(len(g.nodes))
	return st
}

// Equal reports whether both graphs have identical node and edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if len(g.nodes) != len(o.nodes) {
		return false
	}
	for r := range g.nodes {
		if !o.nodes[r] {
			return false
		}
	}
	for _, k := range Kinds() {
		if len(g.edges[k]) != len(o.edges[k]) {
			return false
		}
		for e := range g.edges[k] {
			if !o.edges[k][e] {
				return false
			}
		}
	}
	return true
}

// Subgraph reports whether every edge of g is present in o (same kind,
// same direction) and every node of g is a node of o.
func (g *Graph) Subgraph(o *Graph) bool {
	for r := range g.nodes {
		if !o.nodes[r] {
			return false
		}
	}
	for _, k := range Kinds() {
		for e := range g.edges[k] {
			if !o.edges[k][e] {
				return false
			}
		}
	}
	return true
}

// DOT renders the graph in Graphviz DOT format for debugging.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph rechord {\n")
	for _, r := range g.Nodes() {
		shape := "circle"
		if !r.IsReal() {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", r.String(), shape)
	}
	style := map[Kind]string{Unmarked: "solid", Ring: "bold", Connection: "dashed"}
	for _, e := range g.AllEdges() {
		fmt.Fprintf(&b, "  %q -> %q [style=%s];\n", e.From.String(), e.To.String(), style[e.Kind])
	}
	b.WriteString("}\n")
	return b.String()
}
