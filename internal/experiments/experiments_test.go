package experiments

import (
	"strings"
	"testing"
)

func checkResult(t *testing.T, r *Result, err error, wantCols ...string) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if r.Table == nil || len(r.Table.Rows) == 0 {
		t.Fatalf("%s: empty table", r.Name)
	}
	var b strings.Builder
	if err := r.Table.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, c := range wantCols {
		if !strings.Contains(out, c) {
			t.Errorf("%s: table missing column %q:\n%s", r.Name, c, out)
		}
	}
	t.Logf("%s:\n%s", r.Name, out)
	for name, f := range r.Fits {
		t.Logf("%s fit: %s ~ %.3f * %s (R2 %.3f)", r.Name, name, f.C, f.Shape.Name, f.R2)
	}
	for _, n := range r.Notes {
		t.Logf("note: %s", n)
	}
}

func TestFig5Quick(t *testing.T) {
	r, err := Fig5(Quick())
	checkResult(t, r, err, "normal_edges", "connection_edges", "virtual_nodes")
}

func TestFig6Quick(t *testing.T) {
	r, err := Fig6(Quick())
	checkResult(t, r, err, "rounds_stable", "rounds_almost_stable")
}

func TestFig7Quick(t *testing.T) {
	r, err := Fig7(Quick())
	checkResult(t, r, err, "total_nodes", "total_edges")
	if len(r.Table.Rows) != len(Quick().Sizes)*Quick().Reps {
		t.Errorf("fig7 rows = %d, want one per run", len(r.Table.Rows))
	}
}

func TestConvergenceQuick(t *testing.T) {
	cfg := Quick()
	cfg.Reps = 2
	r, err := Convergence(cfg)
	checkResult(t, r, err, "random", "clique", "garbage")
}

func TestJoinLeaveFailQuick(t *testing.T) {
	cfg := Quick()
	cfg.Reps = 2
	for _, fn := range []func(Config) (*Result, error){Join, Leave, Fail} {
		r, err := fn(cfg)
		checkResult(t, r, err, "recovery_rounds_mean")
	}
}

func TestFact21Quick(t *testing.T) {
	r, err := Fact21(Quick())
	checkResult(t, r, err, "direct_in_rechord", "wrap_reachable")
	for _, row := range r.Table.Rows {
		if row[4] != "true" {
			t.Errorf("Fact 2.1 wrap edges not reachable: %v", row)
		}
	}
}

func TestChordFailQuick(t *testing.T) {
	cfg := Quick()
	cfg.Sizes = []int{9, 13}
	r, err := ChordFail(cfg)
	checkResult(t, r, err, "chord_recovered", "rechord_recovered")
	for _, row := range r.Table.Rows {
		if row[3] != "false" || row[5] != "true" {
			t.Errorf("chordfail row unexpected: %v", row)
		}
	}
}

func TestBudgetQuick(t *testing.T) {
	r, err := Budget(Quick())
	checkResult(t, r, err, "within_bound")
}

func TestLookupQuick(t *testing.T) {
	r, err := Lookup(Quick())
	checkResult(t, r, err, "mean_hops")
}

func TestAblationQuick(t *testing.T) {
	cfg := Quick()
	cfg.Sizes = []int{15}
	r, err := Ablation(cfg)
	checkResult(t, r, err, "variant", "matches_ideal")
	sawFullOK, sawNoRingBad := false, false
	for _, row := range r.Table.Rows {
		if row[1] == "full" && row[4] == "true" {
			sawFullOK = true
		}
		if row[1] == "no-ring" && row[4] == "false" {
			sawNoRingBad = true
		}
	}
	if !sawFullOK {
		t.Error("full variant should match ideal")
	}
	if !sawNoRingBad {
		t.Error("no-ring variant should not match ideal")
	}
}

func TestMessagesQuick(t *testing.T) {
	r, err := Messages(Quick())
	checkResult(t, r, err, "total_messages", "messages_per_round")
}

func TestHealingQuick(t *testing.T) {
	r, err := Healing(Quick())
	checkResult(t, r, err, "round_100pct", "almost_stable")
	for _, row := range r.Table.Rows {
		if row[1] == "-1" {
			t.Errorf("healing never reached 50%% routability: %v", row)
		}
	}
}

func TestAsyncQuick(t *testing.T) {
	cfg := Quick()
	cfg.Reps = 2
	r, err := Async(cfg)
	checkResult(t, r, err, "steps_p100", "steps_p50", "steps_p25")
	if len(r.Series) != len(asyncProbs) {
		t.Errorf("async series = %d, want one per activation probability", len(r.Series))
	}
}
