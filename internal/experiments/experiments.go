// Package experiments contains one runner per figure and theorem-level
// claim of the paper's evaluation (Section 5), mapped in DESIGN.md:
//
//	Fig5       — edges and virtual nodes vs. real nodes at stabilization
//	Fig6       — rounds to stable and "almost stable" vs. real nodes
//	Fig7       — total edges vs. total nodes in the final graph
//	Convergence — Theorem 1.1's O(n log n) bound across topologies
//	Join/Leave — Theorems 4.1 and 4.2 recovery costs
//	Fact21     — Chord subgraph check
//	ChordFail  — plain Chord does not self-stabilize; Re-Chord does
//	Budget     — Section 2.2 edge-count bounds
//	Lookup     — O(log n) routing over the stable network
//	Ablation   — what breaks without ring or connection edges
package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/chord"
	"repro/internal/churn"
	"repro/internal/export"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/ref"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topogen"
)

// Config controls an experiment sweep.
type Config struct {
	// Sizes is the list of real-node counts; the paper uses
	// {5,15,25,35,45,65,85,105}.
	Sizes []int
	// Reps is the number of random graphs per size; the paper uses 30.
	Reps int
	// Seed makes the whole sweep reproducible.
	Seed int64
	// Workers is passed to the protocol engine (0 = all cores).
	Workers int
}

// Default returns the paper's experimental setup.
func Default() Config {
	return Config{Sizes: []int{5, 15, 25, 35, 45, 65, 85, 105}, Reps: 30, Seed: 1}
}

// Quick returns a reduced setup for tests.
func Quick() Config {
	return Config{Sizes: []int{5, 15, 25}, Reps: 3, Seed: 1}
}

// Result bundles a regenerated figure: the data table, optional ASCII
// plot series, and shape fits named per measured column.
type Result struct {
	Name   string
	Table  *export.Table
	Series []export.Series
	Fits   map[string]stats.Fit
	Notes  []string
}

func (c Config) rng(size, rep int) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed + int64(size)*1_000_003 + int64(rep)*7919))
}

// runOne builds one random weakly connected network of n peers, runs
// it to the fixed point, and verifies it converged to the oracle
// state.
func (c Config) runOne(n, rep int, gen topogen.Generator) (sim.Result, *rechord.Network, error) {
	rng := c.rng(n, rep)
	ids := topogen.RandomIDs(n, rng)
	nw := gen.Build(ids, rng, rechord.Config{Workers: c.Workers})
	idl := rechord.ComputeIdeal(ids)
	res, err := sim.RunToStable(context.Background(), nw, sim.Options{Ideal: idl})
	if err != nil {
		return res, nw, err
	}
	if err := idl.Matches(nw); err != nil {
		return res, nw, fmt.Errorf("experiments: n=%d rep=%d converged to wrong state: %w", n, rep, err)
	}
	return res, nw, nil
}

// Fig5 regenerates Figure 5: mean normal edges, connection edges and
// virtual nodes at the stabilization state, per real-node count.
func Fig5(cfg Config) (*Result, error) {
	tab := export.NewTable("Figure 5: edges and nodes at stabilization (means over reps)",
		"real_nodes", "normal_edges", "connection_edges", "virtual_nodes")
	var xs, normal, conn, virt []float64
	for _, n := range cfg.Sizes {
		var ne, ce, vn []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			res, _, err := cfg.runOne(n, rep, topogen.Random())
			if err != nil {
				return nil, err
			}
			ne = append(ne, float64(res.Final.NormalEdges()))
			ce = append(ce, float64(res.Final.ConnectionEdges))
			vn = append(vn, float64(res.Final.VirtualNodes))
		}
		sne, sce, svn := stats.Summarize(ne), stats.Summarize(ce), stats.Summarize(vn)
		tab.AddRow(n, sne.Mean, sce.Mean, svn.Mean)
		xs = append(xs, float64(n))
		normal = append(normal, sne.Mean)
		conn = append(conn, sce.Mean)
		virt = append(virt, svn.Mean)
	}
	fits := map[string]stats.Fit{}
	for name, ys := range map[string][]float64{
		"normal_edges": normal, "connection_edges": conn, "virtual_nodes": virt,
	} {
		if f, err := stats.BestFit(xs, ys); err == nil {
			fits[name] = f
		}
	}
	return &Result{
		Name:  "fig5",
		Table: tab,
		Series: []export.Series{
			{Name: "normal edges", X: xs, Y: normal, Marker: 'n'},
			{Name: "connection edges", X: xs, Y: conn, Marker: 'c'},
			{Name: "virtual nodes", X: xs, Y: virt, Marker: 'v'},
		},
		Fits: fits,
		Notes: []string{
			"paper: normal edges slightly superlinear, connection edges ~ c*n*log^2(n) growing fastest, virtual nodes ~ n log n",
		},
	}, nil
}

// Fig6 regenerates Figure 6: rounds to the stable state and to the
// "almost stable" state (all desired edges present).
func Fig6(cfg Config) (*Result, error) {
	tab := export.NewTable("Figure 6: rounds to stable and almost-stable state (means over reps)",
		"real_nodes", "rounds_stable", "rounds_almost_stable")
	var xs, st, al []float64
	for _, n := range cfg.Sizes {
		var rs, ra []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			res, _, err := cfg.runOne(n, rep, topogen.Random())
			if err != nil {
				return nil, err
			}
			rs = append(rs, float64(res.Rounds))
			if res.AlmostStableRound >= 0 {
				ra = append(ra, float64(res.AlmostStableRound))
			}
		}
		srs, sra := stats.Summarize(rs), stats.Summarize(ra)
		tab.AddRow(n, srs.Mean, sra.Mean)
		xs = append(xs, float64(n))
		st = append(st, srs.Mean)
		al = append(al, sra.Mean)
	}
	fits := map[string]stats.Fit{}
	notes := []string{"paper: steps grow sublinearly (at most linearly), well below the O(n log n) bound"}
	if f, err := stats.BestFit(xs, st); err == nil {
		fits["rounds_stable"] = f
	}
	if f, err := stats.BestFit(xs, al); err == nil {
		fits["rounds_almost_stable"] = f
	}
	if p, err := stats.GrowthExponent(xs, st); err == nil {
		notes = append(notes, fmt.Sprintf("measured growth exponent of rounds_stable: %.2f (sublinear if < 1)", p))
	}
	return &Result{
		Name:  "fig6",
		Table: tab,
		Series: []export.Series{
			{Name: "rounds to stable", X: xs, Y: st, Marker: 's'},
			{Name: "rounds to almost stable", X: xs, Y: al, Marker: 'a'},
		},
		Fits:  fits,
		Notes: notes,
	}, nil
}

// Fig7 regenerates Figure 7: total edges against total nodes in the
// final graph, one point per run.
func Fig7(cfg Config) (*Result, error) {
	tab := export.NewTable("Figure 7: total edges vs total nodes in the final graph",
		"total_nodes", "total_edges")
	var xs, ys []float64
	for _, n := range cfg.Sizes {
		for rep := 0; rep < cfg.Reps; rep++ {
			res, _, err := cfg.runOne(n, rep, topogen.Random())
			if err != nil {
				return nil, err
			}
			tn := float64(res.Final.TotalNodes())
			te := float64(res.Final.TotalEdges())
			tab.AddRow(res.Final.TotalNodes(), res.Final.TotalEdges())
			xs = append(xs, tn)
			ys = append(ys, te)
		}
	}
	fits := map[string]stats.Fit{}
	if f, err := stats.BestFit(xs, ys); err == nil {
		fits["total_edges"] = f
	}
	return &Result{
		Name:   "fig7",
		Table:  tab,
		Series: []export.Series{{Name: "total edges", X: xs, Y: ys}},
		Fits:   fits,
		Notes:  []string{"paper: total edges grow proportionally to total nodes (Section 2.2 budget)"},
	}, nil
}

// Convergence exercises Theorem 1.1: rounds to stabilize from every
// adversarial topology generator, with growth-shape fits.
func Convergence(cfg Config) (*Result, error) {
	tab := export.NewTable("Theorem 1.1: rounds to stable state per initial topology (means over reps)",
		append([]string{"real_nodes"}, genNames()...)...)
	xs := make([]float64, 0, len(cfg.Sizes))
	perGen := map[string][]float64{}
	for _, n := range cfg.Sizes {
		row := []interface{}{n}
		for _, gen := range topogen.All() {
			var rs []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				res, _, err := cfg.runOne(n, rep, gen)
				if err != nil {
					return nil, err
				}
				rs = append(rs, float64(res.Rounds))
			}
			m := stats.Summarize(rs).Mean
			row = append(row, m)
			perGen[gen.Name] = append(perGen[gen.Name], m)
		}
		tab.AddRow(row...)
		xs = append(xs, float64(n))
	}
	fits := map[string]stats.Fit{}
	notes := []string{"paper bound: O(n log n) from any weakly connected state"}
	for name, ys := range perGen {
		if f, err := stats.BestFit(xs, ys); err == nil {
			fits[name] = f
		}
		if p, err := stats.GrowthExponent(xs, ys); err == nil {
			notes = append(notes, fmt.Sprintf("%s: growth exponent %.2f", name, p))
		}
	}
	return &Result{Name: "convergence", Table: tab, Fits: fits, Notes: notes}, nil
}

func genNames() []string {
	var out []string
	for _, g := range topogen.All() {
		out = append(out, g.Name)
	}
	return out
}

// Join exercises Theorem 4.1: rounds to re-stabilize after one join
// into a stable network, per network size.
func Join(cfg Config) (*Result, error) {
	return churnExperiment(cfg, "join", "Theorem 4.1: recovery rounds after an isolated join (O(log^2 n))")
}

// Leave exercises Theorem 4.2 for graceful leaves.
func Leave(cfg Config) (*Result, error) {
	return churnExperiment(cfg, "leave", "Theorem 4.2: recovery rounds after an isolated leave (O(log n))")
}

// Fail exercises Theorem 4.2 for crash failures.
func Fail(cfg Config) (*Result, error) {
	return churnExperiment(cfg, "fail", "Theorem 4.2: recovery rounds after a crash failure (O(log n))")
}

func churnExperiment(cfg Config, kind, title string) (*Result, error) {
	tab := export.NewTable(title, "real_nodes", "recovery_rounds_mean", "recovery_rounds_max")
	var xs, ys []float64
	for _, n := range cfg.Sizes {
		var rs []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := cfg.rng(n, rep)
			nw, ids, err := churn.StableNetwork(context.Background(), n, rng, rechord.Config{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			ev := churn.Event{Kind: kind}
			switch kind {
			case "join":
				ev.ID = ident.ID(rng.Uint64() | 1)
				ev.Contact = ids[rng.Intn(len(ids))]
			default:
				ev.ID = ids[rng.Intn(len(ids))]
			}
			rec, err := churn.Apply(context.Background(), nw, ev, 0)
			if err != nil {
				return nil, err
			}
			if !rec.Stable {
				return nil, fmt.Errorf("experiments: %s at n=%d rep=%d did not re-stabilize", kind, n, rep)
			}
			if err := churn.VerifyStable(nw); err != nil {
				return nil, fmt.Errorf("experiments: %s at n=%d rep=%d: %w", kind, n, rep, err)
			}
			rs = append(rs, float64(rec.Rounds))
		}
		s := stats.Summarize(rs)
		tab.AddRow(n, s.Mean, s.Max)
		xs = append(xs, float64(n))
		ys = append(ys, s.Mean)
	}
	fits := map[string]stats.Fit{}
	if f, err := stats.BestFit(xs, ys); err == nil {
		fits["recovery_rounds"] = f
	}
	return &Result{
		Name:   kind,
		Table:  tab,
		Series: []export.Series{{Name: "recovery rounds", X: xs, Y: ys}},
		Fits:   fits,
	}, nil
}

// Messages measures the communication cost of stabilization: total
// messages until the fixed point per network size (the paper bounds
// work, not messages, but the edge budgets of Section 2.2 imply the
// per-round message load; this quantifies it).
func Messages(cfg Config) (*Result, error) {
	tab := export.NewTable("Communication cost: messages until stabilization (means over reps)",
		"real_nodes", "total_messages", "messages_per_round")
	var xs, ys []float64
	for _, n := range cfg.Sizes {
		var total, perRound []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			res, _, err := cfg.runOne(n, rep, topogen.Random())
			if err != nil {
				return nil, err
			}
			total = append(total, float64(res.TotalMessages))
			if res.Rounds > 0 {
				perRound = append(perRound, float64(res.TotalMessages)/float64(res.Rounds))
			}
		}
		st, sp := stats.Summarize(total), stats.Summarize(perRound)
		tab.AddRow(n, st.Mean, sp.Mean)
		xs = append(xs, float64(n))
		ys = append(ys, st.Mean)
	}
	fits := map[string]stats.Fit{}
	if f, err := stats.BestFit(xs, ys); err == nil {
		fits["total_messages"] = f
	}
	return &Result{Name: "messages", Table: tab, Fits: fits,
		Series: []export.Series{{Name: "total messages", X: xs, Y: ys}}}, nil
}

// Fact21 verifies Fact 2.1 on converged networks: every edge of the
// correct Chord topology appears in E_ReChord (unmarked and ring edges
// projected onto real nodes). Chord edges that wrap around the 1.0
// boundary are a documented special case: the formal rules define the
// closest right real neighbor in the linear order, so a peer whose
// deepest virtual node does not itself wrap reaches its wrapped
// successor through the ring edges instead of a direct edge; for those
// edges the check verifies short-path reachability in E_ReChord and
// reports the maximum relay length.
func Fact21(cfg Config) (*Result, error) {
	tab := export.NewTable("Fact 2.1: Chord subgraph of stable Re-Chord",
		"real_nodes", "chord_edges", "direct_in_rechord", "wrap_edges", "wrap_reachable", "max_wrap_hops")
	for _, n := range cfg.Sizes {
		_, nw, err := cfg.runOne(n, 0, topogen.Random())
		if err != nil {
			return nil, err
		}
		idl := rechord.ComputeIdeal(nw.Peers())
		cg := idl.ChordGraph()
		rg := nw.ReChordGraph()
		direct, wraps, maxHops := 0, 0, 0
		for _, e := range cg.Edges(graph.Unmarked) {
			if rg.HasEdge(e.From, e.To, graph.Unmarked) {
				direct++
				continue
			}
			if e.To.ID() > e.From.ID() {
				return nil, fmt.Errorf("experiments: Fact 2.1 violated at n=%d: non-wrap edge %s->%s missing", n, e.From, e.To)
			}
			wraps++
			hops := bfsDistance(rg, e.From, e.To)
			if hops < 0 {
				return nil, fmt.Errorf("experiments: Fact 2.1 violated at n=%d: wrap edge %s->%s unreachable", n, e.From, e.To)
			}
			if hops > maxHops {
				maxHops = hops
			}
		}
		tab.AddRow(n, cg.NumEdges(graph.Unmarked), direct, wraps, true, maxHops)
	}
	return &Result{Name: "fact21", Table: tab,
		Notes: []string{
			"all non-wrapping Chord edges (successors and fingers) are directly present in the stable Re-Chord projection",
			"wrapping edges are emulated by a short relay over the ring edges (max_wrap_hops)",
		}}, nil
}

// bfsDistance returns the shortest directed path length from a to b in
// the projected graph, or -1.
func bfsDistance(g *graph.Graph, a, b ref.Ref) int {
	adj := map[ref.Ref][]ref.Ref{}
	for _, e := range g.AllEdges() {
		adj[e.From] = append(adj[e.From], e.To)
	}
	type qe struct {
		r ref.Ref
		d int
	}
	queue := []qe{{a, 0}}
	seen := map[ref.Ref]bool{a: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.r == b {
			return cur.d
		}
		for _, nx := range adj[cur.r] {
			if !seen[nx] {
				seen[nx] = true
				queue = append(queue, qe{nx, cur.d + 1})
			}
		}
	}
	return -1
}

// ChordFail reproduces the motivation of Section 1: from a weakly
// connected loopy state (one successor cycle winding several times
// around the identifier circle), classic Chord's stabilize/notify/
// fix-fingers protocol is at a fixed point and never recovers, while
// Re-Chord converges to the correct topology from the same peer set
// and the same initial connectivity.
func ChordFail(cfg Config) (*Result, error) {
	tab := export.NewTable("Chord vs Re-Chord from a loopy state",
		"real_nodes", "stride", "chord_rounds", "chord_recovered", "rechord_rounds", "rechord_recovered")
	for _, n := range cfg.Sizes {
		rng := cfg.rng(n, 0)
		ids := topogen.RandomIDs(n, rng)
		stride := chord.LoopyStride(n)

		cs := chord.Loopy(ids)
		// The loopy state is a fixed point of Chord's maintenance, so a
		// bounded number of rounds demonstrates non-recovery; the unit
		// tests additionally assert no successor pointer ever changes.
		chordRounds := 4 * n
		if chordRounds > 60 {
			chordRounds = 60
		}
		for i := 0; i < chordRounds; i++ {
			cs.Stabilize()
		}
		chordOK := cs.IsCorrectRing()

		// The same adversarial shape for Re-Chord: seed each peer with
		// an unmarked edge to its loopy "successor" only.
		nw := rechord.NewNetwork(rechord.Config{Workers: cfg.Workers})
		sorted := append([]ident.ID(nil), ids...)
		ident.Sort(sorted)
		for _, id := range sorted {
			nw.AddPeer(id)
		}
		for i, id := range sorted {
			nw.SeedEdge(ref.Real(id), ref.Real(sorted[(i+stride)%len(sorted)]), graph.Unmarked)
		}
		idl := rechord.ComputeIdeal(ids)
		res, err := sim.RunToStable(context.Background(), nw, sim.Options{Ideal: idl})
		if err != nil {
			return nil, err
		}
		reOK := idl.Matches(nw) == nil
		tab.AddRow(n, stride, chordRounds, chordOK, res.Rounds, reOK)
		if chordOK {
			return nil, fmt.Errorf("experiments: Chord unexpectedly recovered at n=%d", n)
		}
		if !reOK {
			return nil, fmt.Errorf("experiments: Re-Chord failed to recover at n=%d", n)
		}
	}
	return &Result{Name: "chordfail", Table: tab,
		Notes: []string{"Chord's maintenance is stuck in the loopy state forever; Re-Chord reaches the correct ring"}}, nil
}

// Budget checks the edge-count bounds of Section 2.2 on converged
// networks: |E_u ∪ E_r| <= 4 |E_Chord| with Chord edges counted as
// slots (successor plus one finger slot per virtual level, the
// counting under which each Re-Chord node contributes at most 4
// outgoing unmarked edges), and connection edges near c*n*log^2 n.
func Budget(cfg Config) (*Result, error) {
	tab := export.NewTable("Section 2.2 edge budgets at stabilization",
		"real_nodes", "eu_plus_er", "4x_chord_slots", "within_bound", "connection_edges", "n_log2_n")
	for _, n := range cfg.Sizes {
		res, nw, err := cfg.runOne(n, 0, topogen.Random())
		if err != nil {
			return nil, err
		}
		idl := rechord.ComputeIdeal(nw.Peers())
		slots := idl.ChordEdgeSlots()
		eur := res.Final.NormalEdges()
		within := eur <= 4*slots
		nl := nLog2(n)
		tab.AddRow(n, eur, 4*slots, within, res.Final.ConnectionEdges, nl)
		if !within {
			return nil, fmt.Errorf("experiments: edge budget violated at n=%d: %d > 4*%d", n, eur, slots)
		}
	}
	return &Result{Name: "budget", Table: tab}, nil
}

func nLog2(n int) float64 {
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return float64(n) * l * l
}

// Lookup measures routing hops over stable networks per size,
// reproducing the O(log n) Chord-emulation claim.
func Lookup(cfg Config) (*Result, error) {
	tab := export.NewTable("Chord emulation: lookup path length over stable Re-Chord",
		"real_nodes", "mean_hops", "p99_hops", "log2_n")
	var xs, ys []float64
	for _, n := range cfg.Sizes {
		rng := cfg.rng(n, 0)
		nw, ids, err := churn.StableNetwork(context.Background(), n, rng, rechord.Config{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		var hops []float64
		trials := 20 * n
		for i := 0; i < trials; i++ {
			key := ident.ID(rng.Uint64())
			want, _ := routing.Owner(nw, key)
			got, path, err := routing.Route(nw, ids[rng.Intn(len(ids))], key)
			if err != nil {
				return nil, err
			}
			if got != want {
				return nil, fmt.Errorf("experiments: lookup at n=%d found %s, want %s", n, got, want)
			}
			hops = append(hops, float64(len(path)-1))
		}
		s := stats.Summarize(hops)
		tab.AddRow(n, s.Mean, stats.Percentile(hops, 99), log2f(n))
		xs = append(xs, float64(n))
		ys = append(ys, s.Mean)
	}
	fits := map[string]stats.Fit{}
	if f, err := stats.BestFit(xs, ys); err == nil {
		fits["mean_hops"] = f
	}
	return &Result{Name: "lookup", Table: tab, Fits: fits,
		Series: []export.Series{{Name: "mean hops", X: xs, Y: ys}}}, nil
}

func log2f(n int) float64 {
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}

// Ablation disables rule 6 (connection edges) and rule 5 (ring edges)
// in turn, showing both are necessary: without connection edges the
// virtual-node graph can stay disconnected; without ring edges no ring
// forms (the state still linearizes into a sorted list).
func Ablation(cfg Config) (*Result, error) {
	tab := export.NewTable("Ablation: disabling rules 5/6 (per size, one run each)",
		"real_nodes", "variant", "fixed_point", "unmarked_connected", "matches_ideal")
	for _, n := range cfg.Sizes {
		for _, variant := range []struct {
			name string
			cfg  rechord.Config
		}{
			{"full", rechord.Config{Workers: cfg.Workers}},
			{"no-ring", rechord.Config{Workers: cfg.Workers, DisableRing: true}},
			{"no-connection", rechord.Config{Workers: cfg.Workers, DisableConnection: true}},
		} {
			rng := cfg.rng(n, 0)
			ids := topogen.RandomIDs(n, rng)
			nw := topogen.Random().Build(ids, rng, variant.cfg)
			idl := rechord.ComputeIdeal(ids)
			res := sim.Run(context.Background(), nw, sim.Options{MaxRounds: sim.DefaultMaxRounds(n)})
			g := nw.Graph()
			tab.AddRow(n, variant.name, res.Stable, g.UnmarkedWeaklyConnected(), idl.Matches(nw) == nil)
		}
	}
	return &Result{Name: "ablation", Table: tab,
		Notes: []string{
			"no-ring: converges to a sorted list, never the ring topology (matches_ideal=false)",
			"no-connection: sibling clusters can stay disconnected; the unmarked graph may not become connected",
		}}, nil
}

// Healing measures application-level routability while the network
// self-stabilizes (an extra experiment connecting Fig. 6's "almost
// stable" state to behaviour: lookups become universally correct at or
// before almost-stability, well before the full fixed point). One
// network per size; per round, a fixed sample of lookups is attempted
// and checked against the consistent-hashing oracle.
func Healing(cfg Config) (*Result, error) {
	tab := export.NewTable("Routability while healing (random init; lookups correct per round)",
		"real_nodes", "round_50pct", "round_100pct", "almost_stable", "stable")
	for _, n := range cfg.Sizes {
		rng := cfg.rng(n, 0)
		ids := topogen.RandomIDs(n, rng)
		nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: cfg.Workers})
		idl := rechord.ComputeIdeal(ids)

		const samples = 40
		keys := make([]ident.ID, samples)
		froms := make([]ident.ID, samples)
		for i := range keys {
			keys[i] = ident.ID(rng.Uint64())
			froms[i] = ids[rng.Intn(len(ids))]
		}
		measure := func() float64 {
			okCount := 0
			for i := range keys {
				want := ident.Successor(nw.Peers(), keys[i])
				got, _, err := routing.Route(nw, froms[i], keys[i])
				if err == nil && got == want {
					okCount++
				}
			}
			return float64(okCount) / samples
		}

		round50, round100, almostAt, stableAt := -1, -1, -1, -1
		for r := 0; r < sim.DefaultMaxRounds(n); r++ {
			nw.Step()
			frac := measure()
			if round50 < 0 && frac >= 0.5 {
				round50 = nw.Round()
			}
			if round100 < 0 && frac == 1.0 {
				round100 = nw.Round()
			}
			if almostAt < 0 && idl.AlmostStable(nw) {
				almostAt = nw.Round()
			}
			// Quiescence replaces the deep-copy snapshot comparison:
			// an empty frontier is the global fixed point.
			if nw.Quiescent() {
				stableAt = nw.LastChangeRound()
				break
			}
		}
		if stableAt < 0 {
			return nil, fmt.Errorf("experiments: healing at n=%d did not stabilize", n)
		}
		if round100 < 0 {
			return nil, fmt.Errorf("experiments: healing at n=%d never reached full routability", n)
		}
		tab.AddRow(n, round50, round100, almostAt, stableAt)
	}
	return &Result{Name: "healing", Table: tab,
		Notes: []string{"full routability arrives around the almost-stable state, long before the fixed point"}}, nil
}
