package experiments

import (
	"context"
	"fmt"

	"repro/internal/export"
	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topogen"
)

// asyncProbs is the activation-probability sweep of the async figure.
var asyncProbs = []float64{1.0, 0.5, 0.25}

// Async measures the paper's open question (its conclusion asks
// whether Re-Chord's self-stabilization extends beyond the synchronous
// model): convergence time under the asynchronous adversary, as
// event-scheduler steps to the stable state per peer count, across
// activation probabilities with messages delayed uniformly in 1..2
// steps. Activation probability 1 with those delays is the near-
// synchronous baseline; lower probabilities slow convergence by
// roughly the expected 1/p factor while still reaching the unique
// stable topology from every weakly connected start — the measured
// answer to the open question.
func Async(cfg Config) (*Result, error) {
	cols := []string{"real_nodes"}
	for _, p := range asyncProbs {
		cols = append(cols, fmt.Sprintf("steps_p%.0f", 100*p))
	}
	tab := export.NewTable("Async convergence: steps to the stable state vs activation probability (uniform delay 1..2, means over reps)", cols...)

	xs := make([]float64, 0, len(cfg.Sizes))
	perProb := make([][]float64, len(asyncProbs))
	for _, n := range cfg.Sizes {
		row := []interface{}{n}
		for pi, p := range asyncProbs {
			var steps []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := cfg.rng(n, rep)
				ids := topogen.RandomIDs(n, rng)
				nw := topogen.Random().Build(ids, rng, rechord.Config{Workers: cfg.Workers})
				runner := rechord.NewAsyncRunner(nw, rechord.AsyncConfig{
					ActivationProb: p,
					MaxDelay:       2,
				}, rng)
				res, err := sim.RunToStable(context.Background(), runner, sim.Options{})
				if err != nil {
					return nil, fmt.Errorf("async: n=%d p=%.2f rep=%d: %w", n, p, rep, err)
				}
				if err := rechord.ComputeIdeal(ids).Matches(nw); err != nil {
					return nil, fmt.Errorf("async: n=%d p=%.2f rep=%d converged to wrong state: %w", n, p, rep, err)
				}
				steps = append(steps, float64(res.Rounds))
			}
			m := stats.Summarize(steps).Mean
			row = append(row, m)
			perProb[pi] = append(perProb[pi], m)
		}
		tab.AddRow(row...)
		xs = append(xs, float64(n))
	}

	fits := map[string]stats.Fit{}
	notes := []string{"open question of the paper's conclusion, measured: the protocol converges under asynchrony"}
	series := make([]export.Series, 0, len(asyncProbs))
	for pi, p := range asyncProbs {
		name := fmt.Sprintf("steps_p%.0f", 100*p)
		series = append(series, export.Series{Name: name, X: xs, Y: perProb[pi]})
		if f, err := stats.BestFit(xs, perProb[pi]); err == nil {
			fits[name] = f
		}
		if g, err := stats.GrowthExponent(xs, perProb[pi]); err == nil {
			notes = append(notes, fmt.Sprintf("p=%.2f: growth exponent %.2f", p, g))
		}
	}
	return &Result{Name: "async", Table: tab, Series: series, Fits: fits, Notes: notes}, nil
}
