// Package export renders experiment results as aligned text tables,
// CSV, and ASCII line plots — the forms in which the harness
// regenerates the paper's figures on a terminal.
package export

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are rendered with %v, floats with %g.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (values are expected to be free of
// commas and quotes; the harness only emits numbers and plain labels).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// HistRow pairs a label with a histogram for PercentileTable.
type HistRow struct {
	Name string
	H    *stats.Histogram
}

// PercentileTable renders the workload telemetry convention: one row
// per histogram with count, mean and the serving-latency percentiles.
// fmtVal formats a value (e.g. nanoseconds as a duration); nil uses
// %.2f.
func PercentileTable(title string, rows []HistRow, fmtVal func(float64) string) *Table {
	if fmtVal == nil {
		fmtVal = func(v float64) string { return fmt.Sprintf("%.2f", v) }
	}
	t := NewTable(title, "series", "count", "mean", "p50", "p90", "p99", "p99.9", "max")
	for _, r := range rows {
		t.AddRow(r.Name, r.H.N(), fmtVal(r.H.Mean()), fmtVal(r.H.Percentile(50)),
			fmtVal(r.H.Percentile(90)), fmtVal(r.H.Percentile(99)),
			fmtVal(r.H.Percentile(99.9)), fmtVal(r.H.Max()))
	}
	return t
}

// Series is one named line of an ASCII plot.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Plot renders series as a crude ASCII scatter/line chart, enough to
// eyeball the shape of a figure in a terminal.
func Plot(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("export: no data to plot")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = marker
		}
	}
	if _, err := fmt.Fprintf(w, "%s  (y: %.1f..%.1f, x: %.0f..%.0f)\n", title, minY, maxY, minX, maxX); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "  |%s\n", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	var legend []string
	for _, s := range series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", m, s.Name))
	}
	_, err := fmt.Fprintf(w, "   %s\n", strings.Join(legend, "  "))
	return err
}
