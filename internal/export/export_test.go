package export

import (
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestTableText(t *testing.T) {
	tab := NewTable("Fig X", "n", "rounds", "note")
	tab.AddRow(5, 12.345, "ok")
	tab.AddRow(105, 30.0, "longer-cell-content")
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig X", "n", "rounds", "12.35", "longer-cell-content", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("text table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + sep + 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(1, 2)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestPercentileTable(t *testing.T) {
	var lat stats.Histogram
	for i := 1; i <= 1000; i++ {
		lat.Observe(float64(i) * 1000)
	}
	tab := PercentileTable("latency", []HistRow{{Name: "get", H: &lat}},
		func(v float64) string { return time.Duration(v).String() })
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"latency", "get", "p99.9", "1000", "1ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("percentile table missing %q:\n%s", want, out)
		}
	}
	// The empty histogram renders a zero row, not a panic.
	empty := PercentileTable("empty", []HistRow{{Name: "none", H: &stats.Histogram{}}}, nil)
	b.Reset()
	if err := empty.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "none") {
		t.Error("empty histogram row missing")
	}
}

func TestPlot(t *testing.T) {
	var b strings.Builder
	err := Plot(&b, "rounds vs n", 40, 10,
		Series{Name: "stable", X: []float64{5, 50, 105}, Y: []float64{10, 20, 30}, Marker: 'o'},
		Series{Name: "almost", X: []float64{5, 50, 105}, Y: []float64{5, 12, 16}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"rounds vs n", "o=stable", "*=almost", "o", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmpty(t *testing.T) {
	var b strings.Builder
	if err := Plot(&b, "empty", 20, 8); err == nil {
		t.Error("plotting no data must error")
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	var b strings.Builder
	err := Plot(&b, "flat", 20, 8, Series{Name: "s", X: []float64{1, 1}, Y: []float64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "flat") {
		t.Error("degenerate plot missing title")
	}
}
