// Package scaletable records and renders the scale ladder: for each
// (scheduler model, n) rung the largescale suites climb, how many
// rounds the settle took, how long it ran, and how much resident state
// it held per peer. The suites append entries into SCALE.json as they
// pass (gated on the SCALE_JSON environment variable so ordinary test
// runs stay write-free), CI uploads the file as an artifact, and
// cmd/scalemd turns it into the markdown table published in the job's
// step summary.
package scaletable

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Entry is one rung of the scale ladder.
type Entry struct {
	// N is the network size.
	N int `json:"n"`
	// Model names the scheduler: "sync" or "async".
	Model string `json:"model"`
	// Rounds is how many rounds (sync) or steps (async) the settle took.
	Rounds int `json:"rounds"`
	// WallSeconds is the settle's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// BytesPerPeer is the settled network's resident heap per peer;
	// zero when the suite did not measure it.
	BytesPerPeer float64 `json:"bytes_per_peer,omitempty"`
}

// Load reads a SCALE.json file. A missing file is an empty ladder,
// not an error: suites append rungs independently and any of them may
// be first.
func Load(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var es []Entry
	if err := json.Unmarshal(data, &es); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return es, nil
}

// Append merges e into the file at path, replacing any existing entry
// for the same (Model, N) rung, and writes the ladder back sorted by
// model then size. Read-modify-write, not append-only: re-runs update
// their rung in place instead of accumulating duplicates.
func Append(path string, e Entry) error {
	es, err := Load(path)
	if err != nil {
		return err
	}
	replaced := false
	for i := range es {
		if es[i].Model == e.Model && es[i].N == e.N {
			es[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Model != es[j].Model {
			return es[i].Model < es[j].Model
		}
		return es[i].N < es[j].N
	})
	data, err := json.MarshalIndent(es, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RecordEnv appends e to the ladder file named by the SCALE_JSON
// environment variable, and does nothing when it is unset — the hook
// the largescale suites call so ordinary test runs stay write-free
// while CI (which exports SCALE_JSON) collects the table.
func RecordEnv(e Entry) error {
	path := os.Getenv("SCALE_JSON")
	if path == "" {
		return nil
	}
	return Append(path, e)
}

// Markdown renders the ladder as a GitHub-flavored markdown table,
// suitable for $GITHUB_STEP_SUMMARY.
func Markdown(es []Entry) string {
	var b strings.Builder
	b.WriteString("| n | model | settle rounds | wall time | bytes/peer |\n")
	b.WriteString("|--:|:------|--------------:|----------:|-----------:|\n")
	for _, e := range es {
		bpp := "—"
		if e.BytesPerPeer > 0 {
			bpp = fmt.Sprintf("%.0f", e.BytesPerPeer)
		}
		wall := time.Duration(e.WallSeconds * float64(time.Second)).Round(10 * time.Millisecond)
		fmt.Fprintf(&b, "| %d | %s | %d | %v | %s |\n", e.N, e.Model, e.Rounds, wall, bpp)
	}
	return b.String()
}
