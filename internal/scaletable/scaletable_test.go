package scaletable

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestAppendSortsAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "SCALE.json")
	for _, e := range []Entry{
		{N: 65536, Model: "sync", Rounds: 40, WallSeconds: 120},
		{N: 2048, Model: "sync", Rounds: 12, WallSeconds: 2.5, BytesPerPeer: 30000},
		{N: 8192, Model: "async", Rounds: 90000, WallSeconds: 60},
		{N: 65536, Model: "sync", Rounds: 38, WallSeconds: 110}, // re-run replaces
	} {
		if err := Append(path, e); err != nil {
			t.Fatal(err)
		}
	}
	es, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 3 {
		t.Fatalf("got %d entries, want 3 (re-run must replace): %+v", len(es), es)
	}
	want := []struct {
		model string
		n     int
	}{{"async", 8192}, {"sync", 2048}, {"sync", 65536}}
	for i, w := range want {
		if es[i].Model != w.model || es[i].N != w.n {
			t.Errorf("entry %d = %s/%d, want %s/%d", i, es[i].Model, es[i].N, w.model, w.n)
		}
	}
	if es[2].Rounds != 38 {
		t.Errorf("sync/65536 rounds = %d, want the re-run's 38", es[2].Rounds)
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	es, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || es != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", es, err)
	}
}

func TestRecordEnv(t *testing.T) {
	t.Setenv("SCALE_JSON", "")
	if err := RecordEnv(Entry{N: 1, Model: "sync"}); err != nil {
		t.Fatalf("unset SCALE_JSON must be a no-op: %v", err)
	}
	path := filepath.Join(t.TempDir(), "SCALE.json")
	t.Setenv("SCALE_JSON", path)
	if err := RecordEnv(Entry{N: 4096, Model: "sync", Rounds: 20, WallSeconds: 9}); err != nil {
		t.Fatal(err)
	}
	es, err := Load(path)
	if err != nil || len(es) != 1 || es[0].N != 4096 {
		t.Fatalf("got (%+v, %v), want the recorded rung", es, err)
	}
}

func TestMarkdown(t *testing.T) {
	md := Markdown([]Entry{
		{N: 2048, Model: "sync", Rounds: 12, WallSeconds: 2.5, BytesPerPeer: 30000},
		{N: 8192, Model: "async", Rounds: 90000, WallSeconds: 60.2},
	})
	for _, want := range []string{
		"| n | model | settle rounds | wall time | bytes/peer |",
		"| 2048 | sync | 12 | 2.5s | 30000 |",
		"| 8192 | async | 90000 | 1m0.2s | — |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
