// Package repro is a from-scratch Go reproduction of "Re-Chord: A
// Self-stabilizing Chord Overlay Network" (Kniesburges, Koutsopoulos,
// Scheideler; SPAA 2011).
//
// The core protocol lives in internal/rechord; see README.md for the
// architecture and DESIGN.md for the system inventory, the
// activity-tracked round engine, and the experiment index. The
// benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation and track the engine's hot path (see BENCH_rounds.json)
// and the serving layer's lookup path (see BENCH_lookups.json); the
// binaries under cmd/ and the programs under examples/ exercise the
// public API end to end.
package repro
