// Package repro is a from-scratch Go reproduction of "Re-Chord: A
// Self-stabilizing Chord Overlay Network" (Kniesburges, Koutsopoulos,
// Scheideler; SPAA 2011).
//
// The core protocol lives in internal/rechord; see README.md for the
// architecture, DESIGN.md for the system inventory and experiment
// index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation; the binaries under cmd/ and the programs under examples/
// exercise the public API end to end.
package repro
