package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/rechord"
	"repro/internal/wire"
)

// TestMain doubles as the child-process entry point: the multi-process
// test re-executes this test binary with RECHORD_NODE_CHILD=1, turning
// it into the rechord-node binary proper (same run function).
func TestMain(m *testing.M) {
	if os.Getenv("RECHORD_NODE_CHILD") == "1" {
		args := strings.Split(os.Getenv("RECHORD_NODE_ARGS"), "\x1f")
		if err := run(args, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rechord-node child: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-procs", "0", "-script", "x"},
		{"-rank", "4", "-procs", "4", "-script", "x"},
		{"-rank", "-1", "-procs", "2", "-script", "x"},
		{"-rank", "0", "-procs", "2"},                                   // no script
		{"-rank", "1", "-procs", "2", "-script", "x"},                   // worker without -seed
		{"-rank", "0", "-procs", "2", "-script", "x", "-seed", "h:1"},   // seed with -seed
		{"-rank", "0", "-procs", "1", "-script", "/nonexistent/script"}, // unreadable script
		{"-rank", "0", "-procs", "1", "-script", "x", "-workers", "-1"}, // bad workers
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v): want error, got nil", args)
		}
	}
}

// gateScript builds the equivalence-gate run description by the same
// recipe as internal/wire's GateScript: a 20-peer random topology whose
// leave/fail/contact targets come from the generated membership.
func gateScript(t *testing.T) *wire.Script {
	t.Helper()
	base, err := wire.ParseScript(strings.NewReader(
		"rechord-wire-script v1\ntopo random 20 1701\n"))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := base.Build(rechord.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := nw.Peers()
	text := fmt.Sprintf(`rechord-wire-script v1
topo random 20 1701
maxrounds 2000
op 3 join 5a5a000000000001 contact %s
op 6 leave %s
op 9 fail %s
op 12 join a5a5000000000002 contact 5a5a000000000001
`, ids[0].Hex(), ids[3].Hex(), ids[7].Hex())
	s, err := wire.ParseScript(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTCPClusterEquivalence is the wire leg of the sim-vs-wire gate
// across real OS processes: 4 rechord-node processes (this test binary
// re-executed) run the gate script over loopback TCP, and the seed's
// combined fingerprint must equal the in-process monolithic run's.
func TestTCPClusterEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const procs = 4
	s := gateScript(t)

	wantFP, wantRounds, err := s.RunMonolith(rechord.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	scriptPath := filepath.Join(dir, "gate.rws")
	if err := os.WriteFile(scriptPath, s.Format(), 0o644); err != nil {
		t.Fatal(err)
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	child := func(args ...string) *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"RECHORD_NODE_CHILD=1",
			"RECHORD_NODE_ARGS="+strings.Join(args, "\x1f"))
		cmd.Stderr = os.Stderr
		return cmd
	}

	seed := child("-rank", "0", "-procs", fmt.Sprint(procs),
		"-listen", "127.0.0.1:0", "-script", scriptPath)
	seedOut, err := seed.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start(); err != nil {
		t.Fatal(err)
	}
	defer seed.Process.Kill()

	// The seed's first line carries the resolved listen address.
	sc := bufio.NewScanner(seedOut)
	if !sc.Scan() {
		t.Fatalf("seed produced no output: %v", sc.Err())
	}
	first := sc.Text()
	addr, ok := strings.CutPrefix(first, "listening ")
	if !ok {
		t.Fatalf("unexpected seed greeting %q", first)
	}

	var wg sync.WaitGroup
	workerErrs := make([]error, procs)
	workerOuts := make([]string, procs)
	for rank := 1; rank < procs; rank++ {
		w := child("-rank", fmt.Sprint(rank), "-procs", fmt.Sprint(procs),
			"-seed", addr, "-script", scriptPath)
		var out bytes.Buffer
		w.Stdout = &out
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			workerErrs[rank] = w.Wait()
			workerOuts[rank] = out.String()
		}(rank)
	}

	if !sc.Scan() {
		t.Fatalf("seed produced no result line: %v", sc.Err())
	}
	result := sc.Text()
	if err := seed.Wait(); err != nil {
		t.Fatalf("seed exited with %v", err)
	}
	wg.Wait()
	for rank := 1; rank < procs; rank++ {
		if workerErrs[rank] != nil {
			t.Fatalf("worker %d exited with %v (output %q)", rank, workerErrs[rank], workerOuts[rank])
		}
	}

	var gotFP uint64
	var gotPeers, gotRounds int
	if _, err := fmt.Sscanf(result, "fingerprint=%x peers=%d rounds=%d",
		&gotFP, &gotPeers, &gotRounds); err != nil {
		t.Fatalf("cannot parse seed result %q: %v", result, err)
	}
	if gotFP != wantFP {
		t.Fatalf("TCP cluster fingerprint %016x != monolith %016x", gotFP, wantFP)
	}
	if gotPeers != 20 {
		t.Fatalf("TCP cluster peers = %d, want 20", gotPeers)
	}
	t.Logf("tcp cluster: fingerprint=%016x rounds=%d (monolith rounds=%d)",
		gotFP, gotRounds, wantRounds)
}
