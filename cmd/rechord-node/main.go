// Command rechord-node runs one partition of a Re-Chord network as a
// real OS process, speaking the internal/wire codec over TCP. A
// cluster is rank 0 (the seed, which listens and coordinates the
// lockstep rounds) plus procs-1 workers that dial the seed's address:
//
//	rechord-node -rank 0 -procs 4 -listen 127.0.0.1:0 -script run.rws
//	rechord-node -rank 1 -procs 4 -seed 127.0.0.1:43210 -script run.rws
//	...
//
// Every process loads the same script (topology name, size, seed and
// churn schedule — see internal/wire.ParseScript) and rebuilds the
// identical replicated network; the wire protocol only carries each
// round's cross-partition effects. The seed prints "listening <addr>"
// once bound (so :0 works under scripts) and, after convergence, the
// combined cluster fingerprint — which equals the monolithic
// simulator's fingerprint for the same script, the property the
// sim-vs-wire equivalence gate enforces.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/rechord"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rechord-node: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rechord-node", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		rank       = fs.Int("rank", 0, "this process's rank in [0, procs)")
		procs      = fs.Int("procs", 1, "total processes in the cluster")
		listen     = fs.String("listen", "127.0.0.1:0", "rank 0: TCP address to listen on")
		seedAddr   = fs.String("seed", "", "rank >= 1: the seed's TCP address")
		scriptPath = fs.String("script", "", "path to the shared run script (required)")
		workers    = fs.Int("workers", 1, "rule-execution goroutines per round")
		dialWait   = fs.Duration("dial-wait", 5*time.Second, "rank >= 1: how long to retry dialing the seed")
		verbose    = fs.Bool("v", false, "log per-phase progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *procs < 1 {
		return fmt.Errorf("-procs %d: need at least 1", *procs)
	}
	if *rank < 0 || *rank >= *procs {
		return fmt.Errorf("-rank %d out of range [0, %d)", *rank, *procs)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d is negative", *workers)
	}
	if *scriptPath == "" {
		return fmt.Errorf("-script is required")
	}
	if *rank == 0 && *seedAddr != "" {
		return fmt.Errorf("-seed only applies to ranks >= 1")
	}
	if *rank != 0 && *seedAddr == "" {
		return fmt.Errorf("-seed is required for ranks >= 1")
	}

	f, err := os.Open(*scriptPath)
	if err != nil {
		return err
	}
	script, err := wire.ParseScript(f)
	f.Close()
	if err != nil {
		return err
	}

	met := &obs.WireMetrics{}
	nd := &wire.Node{
		Rank:    *rank,
		Procs:   *procs,
		Script:  script,
		Config:  rechord.Config{Workers: *workers},
		Metrics: met,
	}
	if *verbose {
		nd.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rechord-node: "+format+"\n", args...)
		}
	}
	tr := wire.NewTCP(met)

	var res *wire.Result
	if *rank == 0 {
		ln, err := tr.Listen(*listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "listening %s\n", ln.Addr())
		if res, err = nd.RunSeed(ln); err != nil {
			return err
		}
	} else {
		c, err := dialRetry(tr, *seedAddr, *dialWait)
		if err != nil {
			return err
		}
		defer c.Close()
		if res, err = nd.RunWorker(c); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "fingerprint=%016x peers=%d rounds=%d frames=%d bytes=%d\n",
		res.Fingerprint, res.Peers, res.Rounds,
		met.FramesSent.Value()+met.FramesRecv.Value(),
		met.BytesSent.Value()+met.BytesRecv.Value())
	return nil
}

// dialRetry dials the seed until it answers or the budget runs out:
// workers are typically launched in the same breath as the seed, so
// the first attempts can race its bind.
func dialRetry(tr wire.Transport, addr string, wait time.Duration) (wire.Conn, error) {
	deadline := time.Now().Add(wait)
	for {
		c, err := tr.Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
