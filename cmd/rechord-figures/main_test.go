package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig5", "fig6", "fig7", "convergence", "ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunQuickExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "fact21"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "note:") {
		t.Errorf("experiment produced no notes:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "nonexistent"},
		{"-fig", "4"},
		{"-reps", "-1"},
		{"-not-a-flag"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h) = %v, want nil", err)
	}
	if !strings.Contains(out.String(), "Usage") && !strings.Contains(out.String(), "-exp") {
		t.Errorf("help output missing usage text:\n%s", out.String())
	}
}
