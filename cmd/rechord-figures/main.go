// Command rechord-figures regenerates every figure and theorem-level
// experiment of the paper's evaluation (see DESIGN.md's experiment
// index and EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	rechord-figures                 # everything, paper-scale
//	rechord-figures -fig 5          # one figure
//	rechord-figures -exp join       # one experiment
//	rechord-figures -quick          # reduced sweep for smoke tests
//	rechord-figures -csv dir/       # also dump CSVs
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/experiments"
	"repro/internal/export"
)

var runners = map[string]func(experiments.Config) (*experiments.Result, error){
	"fig5":        experiments.Fig5,
	"fig6":        experiments.Fig6,
	"fig7":        experiments.Fig7,
	"convergence": experiments.Convergence,
	"join":        experiments.Join,
	"leave":       experiments.Leave,
	"fail":        experiments.Fail,
	"fact21":      experiments.Fact21,
	"chordfail":   experiments.ChordFail,
	"budget":      experiments.Budget,
	"lookup":      experiments.Lookup,
	"messages":    experiments.Messages,
	"healing":     experiments.Healing,
	"ablation":    experiments.Ablation,
	"async":       experiments.Async,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rechord-figures: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rechord-figures", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		fig    = fs.Int("fig", 0, "regenerate one figure (5, 6 or 7)")
		exp    = fs.String("exp", "", "run one experiment by name (see -list)")
		list   = fs.Bool("list", false, "list experiment names")
		quick  = fs.Bool("quick", false, "reduced sweep (for smoke testing)")
		seed   = fs.Int64("seed", 1, "sweep seed")
		reps   = fs.Int("reps", 0, "replications per size (0 = paper's 30, or 3 with -quick)")
		plot   = fs.Bool("plot", true, "render ASCII plots where available")
		csvDir = fs.String("csv", "", "directory to write CSV files to")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *list {
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	if *fig != 0 && *fig != 5 && *fig != 6 && *fig != 7 {
		return fmt.Errorf("-fig %d: the paper has figures 5, 6 and 7", *fig)
	}
	if *reps < 0 {
		return fmt.Errorf("-reps %d is negative", *reps)
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *reps > 0 {
		cfg.Reps = *reps
	}

	var names []string
	switch {
	case *fig != 0:
		names = []string{fmt.Sprintf("fig%d", *fig)}
	case *exp != "":
		names = []string{*exp}
	default:
		names = []string{"fig5", "fig6", "fig7", "convergence", "join", "leave", "fail",
			"fact21", "chordfail", "budget", "lookup", "messages", "healing", "ablation",
			"async"}
	}

	for _, name := range names {
		runner, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", name)
		}
		res, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(stdout)
		if err := res.Table.WriteText(stdout); err != nil {
			return err
		}
		if *plot && len(res.Series) > 0 {
			fmt.Fprintln(stdout)
			if err := export.Plot(stdout, res.Name, 64, 14, res.Series...); err != nil {
				fmt.Fprintln(stdout, err)
			}
		}
		keys := make([]string, 0, len(res.Fits))
		for k := range res.Fits {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f := res.Fits[k]
			fmt.Fprintf(stdout, "fit: %-22s ~ %8.3f * %-9s (R2 %.3f)\n", k, f.C, f.Shape.Name, f.R2)
		}
		for _, n := range res.Notes {
			fmt.Fprintf(stdout, "note: %s\n", n)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, res.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := res.Table.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "csv: %s\n", path)
		}
	}
	return nil
}
