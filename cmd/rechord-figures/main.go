// Command rechord-figures regenerates every figure and theorem-level
// experiment of the paper's evaluation (see DESIGN.md's experiment
// index and EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	rechord-figures                 # everything, paper-scale
//	rechord-figures -fig 5          # one figure
//	rechord-figures -exp join       # one experiment
//	rechord-figures -quick          # reduced sweep for smoke tests
//	rechord-figures -csv dir/       # also dump CSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/experiments"
	"repro/internal/export"
)

var runners = map[string]func(experiments.Config) (*experiments.Result, error){
	"fig5":        experiments.Fig5,
	"fig6":        experiments.Fig6,
	"fig7":        experiments.Fig7,
	"convergence": experiments.Convergence,
	"join":        experiments.Join,
	"leave":       experiments.Leave,
	"fail":        experiments.Fail,
	"fact21":      experiments.Fact21,
	"chordfail":   experiments.ChordFail,
	"budget":      experiments.Budget,
	"lookup":      experiments.Lookup,
	"messages":    experiments.Messages,
	"healing":     experiments.Healing,
	"ablation":    experiments.Ablation,
}

func main() {
	var (
		fig    = flag.Int("fig", 0, "regenerate one figure (5, 6 or 7)")
		exp    = flag.String("exp", "", "run one experiment by name (see -list)")
		list   = flag.Bool("list", false, "list experiment names")
		quick  = flag.Bool("quick", false, "reduced sweep (for smoke testing)")
		seed   = flag.Int64("seed", 1, "sweep seed")
		reps   = flag.Int("reps", 0, "replications per size (0 = paper's 30, or 3 with -quick)")
		plot   = flag.Bool("plot", true, "render ASCII plots where available")
		csvDir = flag.String("csv", "", "directory to write CSV files to")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *reps > 0 {
		cfg.Reps = *reps
	}

	var names []string
	switch {
	case *fig != 0:
		names = []string{fmt.Sprintf("fig%d", *fig)}
	case *exp != "":
		names = []string{*exp}
	default:
		names = []string{"fig5", "fig6", "fig7", "convergence", "join", "leave", "fail",
			"fact21", "chordfail", "budget", "lookup", "messages", "healing", "ablation"}
	}

	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "rechord-figures: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		res, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rechord-figures: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
		if err := res.Table.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *plot && len(res.Series) > 0 {
			fmt.Println()
			if err := export.Plot(os.Stdout, res.Name, 64, 14, res.Series...); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		keys := make([]string, 0, len(res.Fits))
		for k := range res.Fits {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f := res.Fits[k]
			fmt.Printf("fit: %-22s ~ %8.3f * %-9s (R2 %.3f)\n", k, f.C, f.Shape.Name, f.R2)
		}
		for _, n := range res.Notes {
			fmt.Printf("note: %s\n", n)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, res.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := res.Table.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("csv: %s\n", path)
		}
	}
}
