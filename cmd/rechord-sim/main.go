// Command rechord-sim runs one Re-Chord self-stabilization simulation
// through the public cluster facade and reports convergence: rounds to
// the almost-stable and stable states, per-round series, and the final
// topology statistics.
//
// Usage:
//
//	rechord-sim -n 105 -topology random -seed 7 [-series] [-dot out.dot]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/cluster"
	"repro/internal/export"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rechord-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rechord-sim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		n        = fs.Int("n", 25, "number of peers (real nodes)")
		topology = fs.String("topology", cluster.TopologyRandom,
			"initial topology: "+strings.Join(cluster.Topologies(), "|"))
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "parallel workers per round (0 = all cores)")
		series  = fs.Bool("series", false, "print the per-round metric series")
		maxR    = fs.Int("max-rounds", 0, "round/step budget (0 = derived from n)")
		dotFile = fs.String("dot", "", "write the final graph in DOT format to this file")
		model   = fs.String("model", "sync", "execution model: sync (synchronous rounds) or async (event-driven adversary)")
		asyncP  = fs.Float64("async-p", 0.5, "async: per-step activation probability in (0, 1]")
		delay   = fs.String("delay", "", "async: message delay model (uniform:MAX, geometric:P[:MAX], pareto:ALPHA[:MAX]; empty = delay 1)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n %d: need at least 1 peer", *n)
	}
	if *maxR < 0 {
		return fmt.Errorf("-max-rounds %d is negative", *maxR)
	}

	opts := []cluster.Option{
		cluster.WithSize(*n),
		cluster.WithSeed(*seed),
		cluster.WithTopology(*topology),
		cluster.WithWorkers(*workers),
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch *model {
	case "sync":
		if explicit["delay"] || explicit["async-p"] {
			return fmt.Errorf("-delay and -async-p only apply to -model async")
		}
	case "async":
		dm, err := cluster.ParseDelayModel(*delay)
		if err != nil {
			return err
		}
		opts = append(opts, cluster.WithAsync(*asyncP, dm))
	default:
		return fmt.Errorf("unknown model %q (want sync or async)", *model)
	}

	c, err := cluster.New(opts...)
	if err != nil {
		return err
	}
	defer c.Close()

	stabOpts := []cluster.StabilizeOption{
		cluster.StabilizeMaxRounds(*maxR),
		cluster.StabilizeAlmostStable(),
	}
	if *series {
		stabOpts = append(stabOpts, cluster.StabilizeSeries())
	}
	rep, err := c.Stabilize(context.Background(), stabOpts...)
	if err != nil && !errors.Is(err, cluster.ErrUnstable) {
		return err
	}

	unit := "rounds"
	if c.ExecutionModel() == "async" {
		unit = "async steps"
		fmt.Fprintf(stdout, "execution model: async (activation p=%.2f, delay %q)\n", *asyncP, *delay)
	}
	fmt.Fprintf(stdout, "peers: %d, topology: %s, seed: %d\n", *n, *topology, *seed)
	if rep.Stable {
		fmt.Fprintf(stdout, "stable after %d %s (almost stable after %d)\n", rep.Rounds, unit, rep.AlmostStableRound)
	} else {
		fmt.Fprintf(stdout, "NOT stable after %d %s\n", rep.Rounds, unit)
	}
	if verr := c.VerifyStable(); verr != nil {
		fmt.Fprintf(stdout, "final state deviates from the oracle: %v\n", verr)
	} else {
		fmt.Fprintln(stdout, "final state matches the oracle stable topology")
	}
	fmt.Fprintf(stdout, "messages: %d\n", rep.Messages)
	fmt.Fprintf(stdout, "final: %d real + %d virtual nodes, %d unmarked + %d ring + %d connection edges\n",
		rep.Final.RealNodes, rep.Final.VirtualNodes,
		rep.Final.UnmarkedEdges, rep.Final.RingEdges, rep.Final.ConnectionEdges)

	if *series {
		tab := export.NewTable("per-round series",
			"round", "unmarked", "ring", "connection", "virtual", "messages")
		for _, m := range rep.Series {
			tab.AddRow(m.Round, m.UnmarkedEdges, m.RingEdges, m.ConnectionEdges, m.VirtualNodes, m.Messages)
		}
		if err := tab.WriteText(stdout); err != nil {
			return err
		}
	}
	// The paper's local-checkability insight, demonstrated: at the
	// fixed point every peer's purely local check passes.
	stable, total := c.LocallyStable()
	fmt.Fprintf(stdout, "locally stable peers at the fixed point: %d/%d\n", stable, total)
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(c.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "final graph written to %s\n", *dotFile)
	}
	return err
}
