// Command rechord-sim runs one Re-Chord self-stabilization simulation
// and reports convergence: rounds to the almost-stable and stable
// states, per-round series, and the final topology statistics.
//
// Usage:
//
//	rechord-sim -n 105 -topology random -seed 7 [-series] [-dot out.dot]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/export"
	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

func main() {
	var (
		n        = flag.Int("n", 25, "number of peers (real nodes)")
		topology = flag.String("topology", "random", "initial topology: random|line|star|clique|bridged|garbage|prestabilized")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "parallel workers per round (0 = all cores)")
		series   = flag.Bool("series", false, "print the per-round metric series")
		maxR     = flag.Int("max-rounds", 0, "round budget (0 = derived from n)")
		dotFile  = flag.String("dot", "", "write the final graph in DOT format to this file")
	)
	flag.Parse()

	gen, ok := map[string]topogen.Generator{
		"random":        topogen.Random(),
		"line":          topogen.Line(),
		"star":          topogen.Star(),
		"clique":        topogen.Clique(),
		"bridged":       topogen.BridgedPartitions(3),
		"garbage":       topogen.Garbage(),
		"prestabilized": topogen.PreStabilized(),
	}[*topology]
	if !ok {
		fmt.Fprintf(os.Stderr, "rechord-sim: unknown topology %q\n", *topology)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	ids := topogen.RandomIDs(*n, rng)
	nw := gen.Build(ids, rng, rechord.Config{Workers: *workers})
	idl := rechord.ComputeIdeal(ids)

	res := sim.Run(nw, sim.Options{MaxRounds: *maxR, TrackSeries: *series, Ideal: idl})

	fmt.Printf("peers: %d, topology: %s, seed: %d\n", *n, *topology, *seed)
	if res.Stable {
		fmt.Printf("stable after %d rounds (almost stable after %d)\n", res.Rounds, res.AlmostStableRound)
	} else {
		fmt.Printf("NOT stable after %d rounds\n", res.Rounds)
	}
	if err := idl.Matches(nw); err != nil {
		fmt.Printf("final state deviates from the oracle: %v\n", err)
	} else {
		fmt.Println("final state matches the oracle stable topology")
	}
	fmt.Printf("messages: %d\n", res.TotalMessages)
	fmt.Printf("final: %d real + %d virtual nodes, %d unmarked + %d ring + %d connection edges\n",
		res.Final.RealNodes, res.Final.VirtualNodes,
		res.Final.UnmarkedEdges, res.Final.RingEdges, res.Final.ConnectionEdges)

	if *series {
		tab := export.NewTable("per-round series",
			"round", "unmarked", "ring", "connection", "virtual", "messages")
		for _, m := range res.Series {
			tab.AddRow(m.Round, m.UnmarkedEdges, m.RingEdges, m.ConnectionEdges, m.VirtualNodes, m.Messages)
		}
		if err := tab.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// The paper's local-checkability insight, demonstrated: at the
	// fixed point every peer's purely local check passes.
	fmt.Printf("locally stable peers at the fixed point: %d/%d\n",
		nw.CountLocallyStable(), nw.NumPeers())
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(nw.Graph().DOT()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rechord-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("final graph written to %s\n", *dotFile)
	}
	if !res.Stable {
		os.Exit(1)
	}
}
