package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "12", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"stable after",
		"matches the oracle stable topology",
		"locally stable peers at the fixed point: 12/12",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSeries(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "8", "-seed", "1", "-series"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "per-round series") {
		t.Errorf("series table missing:\n%s", out.String())
	}
}

func TestRunLoopyTopology(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "9", "-seed", "2", "-topology", "loopy"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stable after") {
		t.Errorf("loopy topology did not stabilize:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-n", "-3"},
		{"-topology", "moebius"},
		{"-max-rounds", "-1"},
		{"-definitely-not-a-flag"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h) = %v, want nil", err)
	}
	if !strings.Contains(out.String(), "Usage") && !strings.Contains(out.String(), "-n") {
		t.Errorf("help output missing usage text:\n%s", out.String())
	}
}

func TestRunAsyncModel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "12", "-seed", "3", "-model", "async", "-async-p", "0.5", "-delay", "uniform:3"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"execution model: async",
		"async steps",
		"matches the oracle stable topology",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunAsyncRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "turbo"},
		{"-model", "async", "-delay", "uniform:x"},
		{"-model", "sync", "-delay", "uniform:3"},
		{"-model", "sync", "-async-p", "0.3"},
		{"-model", "async", "-async-p", "7"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}
