// Command benchjson converts `go test -bench` output on stdin into a
// machine-diffable JSON array on stdout, so the benchmark trajectory
// (ns/op, allocs/op, custom metrics) can be compared across PRs. It
// has no dependencies beyond the standard library and tolerates
// arbitrary non-benchmark lines interleaved in the input.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkStepSteadyState -benchmem . | benchjson > BENCH_rounds.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in normalized form.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	sawNs := false
	// The remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			sawNs = true
		case "B/op":
			v := val
			res.BPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	return res, sawNs
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(stdin io.Reader, stdout io.Writer) error {
	var results []Result
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
