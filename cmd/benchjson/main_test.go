package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkStepSteadyState/n=2048-8   	 300000	      4.1 ns/op	       0 B/op	       0 allocs/op
some interleaved log line
BenchmarkWorkload/uniform-8         	     10	  1200000 ns/op	  98 lookup-p99-ns
PASS
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	if results[0].Name != "BenchmarkStepSteadyState/n=2048-8" || results[0].NsPerOp != 4.1 {
		t.Errorf("first result mismatched: %+v", results[0])
	}
	if results[1].Metrics["lookup-p99-ns"] != 98 {
		t.Errorf("custom metric not captured: %+v", results[1])
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(out.String()); s != "null" && s != "[]" {
		t.Errorf("empty input produced %q", s)
	}
}
