// Command scalemd renders a SCALE.json scale ladder (written by the
// largescale suites when SCALE_JSON is set) as a markdown table. CI
// pipes its output into $GITHUB_STEP_SUMMARY so every run publishes
// the ladder — n, settle rounds, wall time, bytes/peer — next to the
// logs.
//
// Usage: scalemd [SCALE.json]
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/scaletable"
)

func run(args []string, stdout io.Writer) error {
	path := "SCALE.json"
	if len(args) > 0 {
		path = args[0]
	}
	es, err := scaletable.Load(path)
	if err != nil {
		return err
	}
	if len(es) == 0 {
		fmt.Fprintf(stdout, "scalemd: no entries in %s\n", path)
		return nil
	}
	fmt.Fprint(stdout, scaletable.Markdown(es))
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "scalemd: %v\n", err)
		os.Exit(1)
	}
}
