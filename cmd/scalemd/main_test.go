package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scaletable"
)

func TestRunRendersLadder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "SCALE.json")
	for _, e := range []scaletable.Entry{
		{N: 2048, Model: "sync", Rounds: 65, WallSeconds: 5.7, BytesPerPeer: 35264},
		{N: 8192, Model: "async", Rounds: 120000, WallSeconds: 42.0},
	} {
		if err := scaletable.Append(path, e); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"2048", "8192", "sync", "async"} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "|") {
		t.Errorf("output is not a markdown table:\n%s", got)
	}
}

func TestRunEmptyLadder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "SCALE.json")
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no entries") {
		t.Errorf("empty ladder output: %q", out.String())
	}
}

func TestRunRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "SCALE.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err == nil {
		t.Fatal("corrupt ladder accepted")
	}
}
