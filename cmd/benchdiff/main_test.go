package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `[
  {"name": "BenchmarkStepSteadyState/n=512", "iterations": 100, "ns_per_op": 1000, "b_per_op": 0, "allocs_per_op": 0},
  {"name": "BenchmarkAsyncStep/n=2048", "iterations": 100, "ns_per_op": 2000, "b_per_op": 0, "allocs_per_op": 0},
  {"name": "BenchmarkRound/n=512", "iterations": 10, "ns_per_op": 50000, "b_per_op": 4096, "allocs_per_op": 12},
  {"name": "BenchmarkMemoryPerPeer/n=1024", "iterations": 1, "ns_per_op": 1e9, "metrics": {"bytes/peer": 30000}}
]`

func TestCleanRunPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", baseline)
	var out strings.Builder
	if err := run([]string{"-base", base, "-new", fresh, "-fail-allocs", "StepSteadyState|AsyncStep"}, &out); err != nil {
		t.Fatalf("identical files must pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 failing, 0 warnings") {
		t.Errorf("unexpected report:\n%s", out.String())
	}
}

func TestAllocRegressionOnGatedBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", strings.Replace(baseline,
		`"BenchmarkStepSteadyState/n=512", "iterations": 100, "ns_per_op": 1000, "b_per_op": 0, "allocs_per_op": 0`,
		`"BenchmarkStepSteadyState/n=512", "iterations": 100, "ns_per_op": 1000, "b_per_op": 16, "allocs_per_op": 2`, 1))
	var out strings.Builder
	err := run([]string{"-base", base, "-new", fresh, "-fail-allocs", "StepSteadyState|AsyncStep"}, &out)
	if err == nil {
		t.Fatalf("allocs 0 -> 2 on a gated benchmark must fail\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkStepSteadyState/n=512 allocs/op") {
		t.Errorf("missing FAIL line:\n%s", out.String())
	}
}

func TestAllocRegressionOnUngatedBenchmarkWarns(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", strings.Replace(baseline, `"allocs_per_op": 12`, `"allocs_per_op": 20`, 1))
	var out strings.Builder
	if err := run([]string{"-base", base, "-new", fresh, "-fail-allocs", "StepSteadyState|AsyncStep"}, &out); err != nil {
		t.Fatalf("ungated alloc regression must only warn: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "warn BenchmarkRound/n=512 allocs/op") {
		t.Errorf("missing warn line:\n%s", out.String())
	}
}

func TestNsDriftWarnsWithoutFailing(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", strings.Replace(baseline, `"ns_per_op": 2000`, `"ns_per_op": 3000`, 1))
	var out strings.Builder
	if err := run([]string{"-base", base, "-new", fresh, "-fail-allocs", "StepSteadyState|AsyncStep", "-github"}, &out); err != nil {
		t.Fatalf("ns drift must be non-blocking: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "warn BenchmarkAsyncStep/n=2048 ns/op") {
		t.Errorf("missing ns warning:\n%s", s)
	}
	if !strings.Contains(s, "::warning::benchdiff:") {
		t.Errorf("missing GitHub annotation:\n%s", s)
	}
}

func TestNsWithinToleranceIsSilent(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", strings.Replace(baseline, `"ns_per_op": 2000`, `"ns_per_op": 2400`, 1))
	var out strings.Builder
	if err := run([]string{"-base", base, "-new", fresh}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 failing, 0 warnings") {
		t.Errorf("+20%% at 25%% tolerance must be silent:\n%s", out.String())
	}
}

func TestCustomMetricCompared(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", strings.Replace(baseline, `"bytes/peer": 30000`, `"bytes/peer": 60000`, 1))
	var out strings.Builder
	if err := run([]string{"-base", base, "-new", fresh, "-metric", "bytes/peer"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warn BenchmarkMemoryPerPeer/n=1024 bytes/peer") {
		t.Errorf("missing metric warning:\n%s", out.String())
	}
}

func TestFailMetricGatesRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", strings.Replace(baseline, `"bytes/peer": 30000`, `"bytes/peer": 34000`, 1))
	var out strings.Builder
	err := run([]string{"-base", base, "-new", fresh, "-metric", "bytes/peer",
		"-metric-tol", "0.10", "-fail-metric", "BenchmarkMemoryPerPeer"}, &out)
	if err == nil {
		t.Fatalf("+13%% bytes/peer at 10%% gated tolerance must fail\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkMemoryPerPeer/n=1024 bytes/peer") {
		t.Errorf("missing FAIL line:\n%s", out.String())
	}
}

func TestFailMetricWithinToleranceIsSilent(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", strings.Replace(baseline, `"bytes/peer": 30000`, `"bytes/peer": 32000`, 1))
	var out strings.Builder
	if err := run([]string{"-base", base, "-new", fresh, "-metric", "bytes/peer",
		"-metric-tol", "0.10", "-fail-metric", "BenchmarkMemoryPerPeer"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 failing, 0 warnings") {
		t.Errorf("+7%% at 10%% tolerance must be silent:\n%s", out.String())
	}
}

func TestGatedBenchmarkDisappearingFails(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseline)
	fresh := writeJSON(t, dir, "new.json", `[
  {"name": "BenchmarkStepSteadyState/n=512", "iterations": 100, "ns_per_op": 1000, "b_per_op": 0, "allocs_per_op": 0}
]`)
	var out strings.Builder
	err := run([]string{"-base", base, "-new", fresh, "-fail-allocs", "StepSteadyState|AsyncStep"}, &out)
	if err == nil {
		t.Fatalf("gated benchmark missing from fresh run must fail\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkAsyncStep/n=2048: missing") {
		t.Errorf("missing FAIL line:\n%s", out.String())
	}
}

func TestMissingFlagsRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-base", "x.json"}, &out); err == nil {
		t.Fatal("missing -new must be rejected")
	}
}
