// Command benchdiff compares a freshly recorded benchmark JSON file
// (the cmd/benchjson format the repo's BENCH_*.json baselines use)
// against a committed baseline, with per-metric tolerance flags. It is
// the CI perf gate: allocation regressions on the gated benchmarks
// fail the build, time and size drift produce non-blocking warnings
// (benchmark machines are shared; wall-clock noise must not block
// merges, but an alloc count is deterministic).
//
// Usage:
//
//	benchdiff -base BENCH_rounds.json -new fresh.json \
//	    [-fail-allocs regex] [-allocs-tol 0] \
//	    [-ns-tol 0.25] [-fail-ns regex] \
//	    [-bytes-tol 0.25] [-metric bytes/peer] \
//	    [-fail-metric regex] [-metric-tol 0.10] [-github]
//
// Exit status 1 means at least one failing regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
)

// result mirrors cmd/benchjson's output entry.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func load(path string) (map[string]result, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]result, len(rs))
	order := make([]string, 0, len(rs))
	for _, r := range rs {
		if _, dup := m[r.Name]; !dup {
			order = append(order, r.Name)
		}
		m[r.Name] = r
	}
	return m, order, nil
}

// multiString collects repeatable -metric flags.
type multiString []string

func (m *multiString) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiString) Set(s string) error { *m = append(*m, s); return nil }

type reporter struct {
	w                  io.Writer
	github             bool
	failures, warnings int
}

func (rp *reporter) fail(format string, args ...interface{}) {
	rp.failures++
	msg := fmt.Sprintf(format, args...)
	fmt.Fprintf(rp.w, "FAIL %s\n", msg)
	if rp.github {
		fmt.Fprintf(rp.w, "::error::benchdiff: %s\n", msg)
	}
}

func (rp *reporter) warn(format string, args ...interface{}) {
	rp.warnings++
	msg := fmt.Sprintf(format, args...)
	fmt.Fprintf(rp.w, "warn %s\n", msg)
	if rp.github {
		fmt.Fprintf(rp.w, "::warning::benchdiff: %s\n", msg)
	}
}

// pct renders the relative change new/base-1, tolerating base 0.
func pct(base, new float64) string {
	if base == 0 {
		if new == 0 {
			return "+0%"
		}
		return "+inf%"
	}
	return fmt.Sprintf("%+.0f%%", 100*(new/base-1))
}

// regressed reports whether new exceeds base beyond the relative
// tolerance. A zero baseline admits no increase at any tolerance: the
// gated benchmarks pin "stays zero", and zero times any factor is zero.
func regressed(base, new, tol float64) bool {
	if math.IsNaN(base) || math.IsNaN(new) {
		return false
	}
	return new > base*(1+tol) && new > base
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		basePath   = fs.String("base", "", "committed baseline JSON (required)")
		newPath    = fs.String("new", "", "freshly recorded JSON (required)")
		failAllocs = fs.String("fail-allocs", "", "regex of benchmark names whose allocs/op regression fails the run")
		allocsTol  = fs.Float64("allocs-tol", 0, "allowed relative allocs/op increase")
		nsTol      = fs.Float64("ns-tol", 0.25, "allowed relative ns/op increase")
		failNs     = fs.String("fail-ns", "", "regex of benchmark names whose ns/op regression fails the run (default: warn only)")
		bytesTol   = fs.Float64("bytes-tol", 0.25, "allowed relative b/op and custom-metric increase")
		failMetric = fs.String("fail-metric", "", "regex of benchmark names whose custom-metric regression fails the run (default: warn only)")
		metricTol  = fs.Float64("metric-tol", -1, "allowed relative custom-metric increase (default: -bytes-tol)")
		github     = fs.Bool("github", false, "emit GitHub Actions ::warning::/::error:: annotations")
		metrics    multiString
	)
	fs.Var(&metrics, "metric", "custom metric key to compare (repeatable, e.g. bytes/peer)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *newPath == "" {
		fs.Usage()
		return fmt.Errorf("both -base and -new are required")
	}
	var reFailAllocs, reFailNs *regexp.Regexp
	var err error
	if *failAllocs != "" {
		if reFailAllocs, err = regexp.Compile(*failAllocs); err != nil {
			return fmt.Errorf("-fail-allocs: %w", err)
		}
	}
	if *failNs != "" {
		if reFailNs, err = regexp.Compile(*failNs); err != nil {
			return fmt.Errorf("-fail-ns: %w", err)
		}
	}
	var reFailMetric *regexp.Regexp
	if *failMetric != "" {
		if reFailMetric, err = regexp.Compile(*failMetric); err != nil {
			return fmt.Errorf("-fail-metric: %w", err)
		}
	}
	mTol := *bytesTol
	if *metricTol >= 0 {
		mTol = *metricTol
	}

	base, order, err := load(*basePath)
	if err != nil {
		return err
	}
	fresh, _, err := load(*newPath)
	if err != nil {
		return err
	}

	rp := &reporter{w: stdout, github: *github}
	compared := 0
	for _, name := range order {
		b := base[name]
		n, ok := fresh[name]
		if !ok {
			gated := (reFailAllocs != nil && reFailAllocs.MatchString(name)) ||
				(reFailNs != nil && reFailNs.MatchString(name)) ||
				(reFailMetric != nil && reFailMetric.MatchString(name))
			if gated {
				rp.fail("%s: missing from %s (gated benchmark disappeared)", name, *newPath)
			} else {
				rp.warn("%s: missing from %s", name, *newPath)
			}
			continue
		}
		compared++

		if b.AllocsPerOp != nil && n.AllocsPerOp != nil && regressed(*b.AllocsPerOp, *n.AllocsPerOp, *allocsTol) {
			msg := fmt.Sprintf("%s allocs/op: %.0f -> %.0f (%s, tol %.0f%%)",
				name, *b.AllocsPerOp, *n.AllocsPerOp, pct(*b.AllocsPerOp, *n.AllocsPerOp), 100**allocsTol)
			if reFailAllocs != nil && reFailAllocs.MatchString(name) {
				rp.fail("%s", msg)
			} else {
				rp.warn("%s", msg)
			}
		}
		if regressed(b.NsPerOp, n.NsPerOp, *nsTol) {
			msg := fmt.Sprintf("%s ns/op: %.0f -> %.0f (%s, tol %.0f%%)",
				name, b.NsPerOp, n.NsPerOp, pct(b.NsPerOp, n.NsPerOp), 100**nsTol)
			if reFailNs != nil && reFailNs.MatchString(name) {
				rp.fail("%s", msg)
			} else {
				rp.warn("%s", msg)
			}
		}
		if b.BPerOp != nil && n.BPerOp != nil && regressed(*b.BPerOp, *n.BPerOp, *bytesTol) {
			rp.warn("%s B/op: %.0f -> %.0f (%s, tol %.0f%%)",
				name, *b.BPerOp, *n.BPerOp, pct(*b.BPerOp, *n.BPerOp), 100**bytesTol)
		}
		for _, key := range metrics {
			bv, bok := b.Metrics[key]
			nv, nok := n.Metrics[key]
			if bok && nok && regressed(bv, nv, mTol) {
				msg := fmt.Sprintf("%s %s: %.0f -> %.0f (%s, tol %.0f%%)",
					name, key, bv, nv, pct(bv, nv), 100*mTol)
				if reFailMetric != nil && reFailMetric.MatchString(name) {
					rp.fail("%s", msg)
				} else {
					rp.warn("%s", msg)
				}
			}
		}
	}

	fmt.Fprintf(stdout, "benchdiff: %d benchmarks compared against %s: %d failing, %d warnings\n",
		compared, *basePath, rp.failures, rp.warnings)
	if rp.failures > 0 {
		return fmt.Errorf("%d failing benchmark regression(s)", rp.failures)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}
