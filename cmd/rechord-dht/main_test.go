package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDemoSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "16", "-keys", "40", "-churn", "2", "-seed", "1"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"stored 40 keys",
		"all 40 keys retrievable after churn",
		"event stream:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWorkloadSmoke(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-mode", "workload", "-n", "16", "-workers", "2",
		"-ops", "400", "-keyspace", "128", "-churn", "0", "-seed", "1"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"operation latency", "lookup hops", "ops fingerprint"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-ops", "-5"},
		{"-keys", "-1"},
		{"-churn", "-2"},
		{"-dist", "pareto"},
		{"-mode", "bogus"},
		{"-not-a-flag"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h) = %v, want nil", err)
	}
	if !strings.Contains(out.String(), "Usage") && !strings.Contains(out.String(), "-n") {
		t.Errorf("help output missing usage text:\n%s", out.String())
	}
}

func TestRunAsyncWorkload(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-mode", "workload", "-n", "12", "-workers", "4", "-ops", "600",
		"-keyspace", "128", "-churn", "1", "-model", "async", "-async-p", "0.6", "-delay", "uniform:2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "async execution") {
		t.Errorf("output missing async banner:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ops/s") {
		t.Errorf("output missing workload summary:\n%s", out.String())
	}
}

func TestRunAsyncRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "turbo"},
		{"-model", "async", "-delay", "pareto:0"},
		{"-delay", "uniform:3"},
		{"-async-p", "0.3"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}
