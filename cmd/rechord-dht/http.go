package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/cluster"
)

// obsMux builds the observability endpoint for a live cluster:
// /metrics serves the structured telemetry snapshot as JSON, and
// /debug/pprof the standard Go profiling handlers. Both are safe to
// scrape while a workload runs — the snapshot is lock-free by
// contract, so a scrape never blocks the serving path.
func obsMux(c *cluster.Cluster) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Encode into a buffer first: once any byte of the body has
		// been written, a late encoding error could only corrupt the
		// response (http.Error on a started body is a no-op on the
		// status and splices text into the JSON). Buffering makes the
		// error path a real 500 and provides Content-Length for free.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Metrics()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		_, _ = w.Write(buf.Bytes())
	})
	// The default pprof handlers register on http.DefaultServeMux; on
	// a private mux each one is wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// obsDrainTimeout bounds how long stopping the observability server
// waits for in-flight scrapes before cutting connections.
const obsDrainTimeout = 2 * time.Second

// serveObs starts the observability server on addr and returns the
// bound address (addr may end in :0) and a stop function. The server
// runs for the lifetime of the process's run — demo and workload modes
// both stay scrapeable while they execute. Stop drains gracefully: a
// scrape in flight when the run finishes gets obsDrainTimeout to
// complete (Close would sever it mid-body) before the server falls
// back to closing connections.
func serveObs(c *cluster.Cluster, addr string) (string, func(), error) {
	return serveObsHandler(obsMux(c), addr)
}

func serveObsHandler(h http.Handler, addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), obsDrainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
		}
	}
	return ln.Addr().String(), stop, nil
}
