package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/cluster"
)

// obsMux builds the observability endpoint for a live cluster:
// /metrics serves the structured telemetry snapshot as JSON, and
// /debug/pprof the standard Go profiling handlers. Both are safe to
// scrape while a workload runs — the snapshot is lock-free by
// contract, so a scrape never blocks the serving path.
func obsMux(c *cluster.Cluster) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Metrics()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// The default pprof handlers register on http.DefaultServeMux; on
	// a private mux each one is wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveObs starts the observability server on addr and returns the
// bound address (addr may end in :0) and a stop function. The server
// runs for the lifetime of the process's run — demo and workload modes
// both stay scrapeable while they execute.
func serveObs(c *cluster.Cluster, addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: obsMux(c)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
