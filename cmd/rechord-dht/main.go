// Command rechord-dht demonstrates the Chord emulation on top of a
// stabilized Re-Chord network, in two modes.
//
// The default demo mode builds a network, stores key-value pairs
// routed over the overlay, survives churn, and verifies every key
// stays reachable:
//
//	rechord-dht -n 32 -keys 200 -churn 4 -seed 1
//
// Workload mode drives the internal/workload traffic engine —
// concurrent client workers, pluggable key distributions, optional
// churn interleaved with the traffic — and prints the latency and
// hop-count percentile tables:
//
//	rechord-dht -mode workload -n 64 -workers 8 -ops 50000 \
//	    -dist zipf -churn 4 -seed 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/churn"
	"repro/internal/dht"
	"repro/internal/export"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		mode    = flag.String("mode", "demo", "demo or workload")
		n       = flag.Int("n", 32, "number of peers")
		seed    = flag.Int64("seed", 1, "random seed")
		events  = flag.Int("churn", 4, "churn events (join/leave/fail) to apply")
		keys    = flag.Int("keys", 200, "demo: number of key-value pairs")
		workers = flag.Int("workers", 8, "workload: concurrent client workers")
		ops     = flag.Int("ops", 20000, "workload: total operations")
		keysp   = flag.Int("keyspace", 4096, "workload: distinct keys")
		dist    = flag.String("dist", "uniform", "workload: key distribution (uniform, zipf, hotspot)")
		rate    = flag.Float64("rate", 0, "workload: open-loop target ops/sec (0 = closed loop)")
		nocache = flag.Bool("nocache", false, "workload: disable the epoch-cached table router")
	)
	flag.Parse()
	var err error
	switch *mode {
	case "demo":
		err = runDemo(*n, *keys, *events, *seed)
	case "workload":
		err = runWorkload(*n, *workers, *ops, *keysp, *events, *seed, *dist, *rate, *nocache)
	default:
		err = fmt.Errorf("unknown mode %q (want demo or workload)", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rechord-dht: %v\n", err)
		os.Exit(1)
	}
}

func runWorkload(n, workers, ops, keyspace, events int, seed int64, dist string, rate float64, nocache bool) error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("building a stable Re-Chord network of %d peers...\n", n)
	nw, _, err := churn.StableNetwork(n, rng, rechord.Config{})
	if err != nil {
		return err
	}
	cfg := workload.Config{
		Workers:      workers,
		Ops:          ops,
		Keyspace:     keyspace,
		Distribution: dist,
		Preload:      keyspace / 2,
		Seed:         seed,
		Rate:         rate,
		NoCache:      nocache,
		Churn:        workload.ChurnConfig{Events: events},
	}
	fmt.Printf("workload: %d workers, %d ops, %s keys over %d, churn %d, cache %v\n",
		cfg.Workers, cfg.Ops, dist, cfg.Keyspace, events, !nocache)
	res, err := workload.Run(nw, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Summary())
	fmt.Println()

	ns := func(v float64) string { return time.Duration(v).Round(10 * time.Nanosecond).String() }
	latRows := []export.HistRow{{Name: "all", H: res.Latency}}
	hopRows := []export.HistRow{{Name: "all", H: res.Hops}}
	for _, op := range res.PerOp {
		op := op
		latRows = append(latRows, export.HistRow{Name: op.Name, H: op.Latency})
		hopRows = append(hopRows, export.HistRow{Name: op.Name, H: op.Hops})
	}
	if err := export.PercentileTable("operation latency", latRows, ns).WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := export.PercentileTable("lookup hops", hopRows, nil).WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if !nocache {
		total := res.CacheHits + res.CacheMisses
		if total > 0 {
			fmt.Printf("routing cache: %d hits / %d misses (%.1f%% hit rate), %d table-route fallbacks\n",
				res.CacheHits, res.CacheMisses, 100*float64(res.CacheHits)/float64(total), res.Fallbacks)
		}
	}
	fmt.Printf("churn events applied: %d; final store: %d keys, fingerprint %016x; ops fingerprint %016x\n",
		res.ChurnApplied, res.StoreLen, res.StoreFingerprint, res.OpsFingerprint)
	return nil
}

func runDemo(n, keys, events int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("building a stable Re-Chord network of %d peers...\n", n)
	nw, ids, err := churn.StableNetwork(n, rng, rechord.Config{})
	if err != nil {
		return err
	}

	store := dht.New(nw)
	var hops []float64
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("object-%04d", i)
		home := ids[rng.Intn(len(ids))]
		_, h, err := store.Put(home, key, fmt.Sprintf("value-%04d", i))
		if err != nil {
			return err
		}
		hops = append(hops, float64(h))
	}
	s := stats.Summarize(hops)
	fmt.Printf("stored %d keys; routing hops: mean %.2f, max %.0f\n", store.Len(), s.Mean, s.Max)

	fmt.Printf("applying %d churn events...\n", events)
	for _, ev := range churn.RandomEvents(nw, events, rng) {
		rec, err := churn.Apply(nw, ev, 0)
		if err != nil {
			return err
		}
		if !rec.Stable {
			return fmt.Errorf("network did not re-stabilize after %s of %s", ev.Kind, ev.ID)
		}
		fmt.Printf("  %-5s %s: re-stabilized in %d rounds\n", ev.Kind, ev.ID, rec.Rounds)
	}
	if err := churn.VerifyStable(nw); err != nil {
		return fmt.Errorf("network left the legal state: %w", err)
	}
	moved, err := store.Rebalance()
	if err != nil {
		return err
	}
	fmt.Printf("rebalanced: %d keys moved\n", moved)

	// Every key must still be retrievable from a random home peer.
	peers := nw.Peers()
	missing := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("object-%04d", i)
		v, _, err := store.Get(peers[rng.Intn(len(peers))], key)
		switch {
		case errors.Is(err, dht.ErrNotFound):
			missing++
		case err != nil:
			return err
		case v != fmt.Sprintf("value-%04d", i):
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d keys lost after churn", missing)
	}
	fmt.Printf("all %d keys retrievable after churn; %d peers remain\n", keys, len(peers))

	// Show one lookup's path.
	key := "object-0000"
	owner, path, err := routeDemo(nw, peers[0], key)
	if err != nil {
		return err
	}
	fmt.Printf("lookup %q from %s: owner %s, path %v\n", key, peers[0], owner, path)
	return nil
}

func routeDemo(nw *rechord.Network, from ident.ID, key string) (ident.ID, []ident.ID, error) {
	return routing.Route(nw, from, dht.KeyID(key))
}
