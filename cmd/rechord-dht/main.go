// Command rechord-dht demonstrates the Chord emulation on top of a
// stabilized Re-Chord network, consumed entirely through the public
// cluster facade, in two modes.
//
// The default demo mode builds a cluster, stores key-value pairs
// routed over the overlay, survives churn, and verifies every key
// stays reachable:
//
//	rechord-dht -n 32 -keys 200 -churn 4 -seed 1
//
// Workload mode drives the concurrent traffic engine — client workers,
// pluggable key distributions, optional churn interleaved with the
// traffic — and prints the latency and hop-count percentile tables:
//
//	rechord-dht -mode workload -n 64 -workers 8 -ops 50000 \
//	    -dist zipf -churn 4 -seed 1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/cluster"
	"repro/internal/export"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rechord-dht: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rechord-dht", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		mode    = fs.String("mode", "demo", "demo or workload")
		n       = fs.Int("n", 32, "number of peers")
		seed    = fs.Int64("seed", 1, "random seed")
		events  = fs.Int("churn", 4, "churn events (join/leave/fail) to apply")
		keys    = fs.Int("keys", 200, "demo: number of key-value pairs")
		workers = fs.Int("workers", 8, "workload: concurrent client workers")
		ops     = fs.Int("ops", 20000, "workload: total operations")
		keysp   = fs.Int("keyspace", 4096, "workload: distinct keys")
		dist    = fs.String("dist", cluster.DistUniform, "workload: key distribution (uniform, zipf, hotspot)")
		rate    = fs.Float64("rate", 0, "workload: open-loop target ops/sec (0 = closed loop)")
		nocache = fs.Bool("nocache", false, "disable the epoch-cached table router")
		model   = fs.String("model", "sync", "execution model: sync or async (re-stabilization under the asynchronous adversary)")
		asyncP  = fs.Float64("async-p", 0.5, "async: per-step activation probability in (0, 1]")
		delay   = fs.String("delay", "", "async: message delay model (uniform:MAX, geometric:P[:MAX], pareto:ALPHA[:MAX]; empty = delay 1)")
		httpOn  = fs.String("http", "", "serve /metrics (JSON) and /debug/pprof on this address (e.g. :8080) for the run's lifetime")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n %d: need at least 1 peer", *n)
	}
	if *ops < 0 {
		return fmt.Errorf("-ops %d is negative", *ops)
	}
	if *keys < 0 {
		return fmt.Errorf("-keys %d is negative", *keys)
	}
	if *events < 0 {
		return fmt.Errorf("-churn %d is negative", *events)
	}
	switch *dist {
	case cluster.DistUniform, cluster.DistZipf, cluster.DistHotspot:
	default:
		return fmt.Errorf("-dist %q: want uniform, zipf or hotspot", *dist)
	}
	if *mode != "demo" && *mode != "workload" {
		return fmt.Errorf("unknown mode %q (want demo or workload)", *mode)
	}

	opts := []cluster.Option{
		cluster.WithSize(*n),
		cluster.WithSeed(*seed),
		cluster.WithRouterCache(!*nocache),
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch *model {
	case "sync":
		if explicit["delay"] || explicit["async-p"] {
			return fmt.Errorf("-delay and -async-p only apply to -model async")
		}
	case "async":
		dm, err := cluster.ParseDelayModel(*delay)
		if err != nil {
			return err
		}
		opts = append(opts, cluster.WithAsync(*asyncP, dm))
	default:
		return fmt.Errorf("unknown model %q (want sync or async)", *model)
	}

	fmt.Fprintf(stdout, "building a stable Re-Chord cluster of %d peers (%s execution)...\n", *n, *model)
	c, err := cluster.New(opts...)
	if err != nil {
		return err
	}
	defer c.Close()

	if *httpOn != "" {
		addr, stop, err := serveObs(c, *httpOn)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(stdout, "observability: http://%s/metrics and /debug/pprof\n", addr)
	}

	if *mode == "demo" {
		return runDemo(c, stdout, *keys, *events)
	}
	return runWorkload(c, stdout, cluster.WorkloadConfig{
		Workers:      *workers,
		Ops:          *ops,
		Keyspace:     *keysp,
		Distribution: *dist,
		Preload:      *keysp / 2,
		Seed:         *seed,
		Rate:         *rate,
		ChurnEvents:  *events,
	}, !*nocache)
}

func runWorkload(c *cluster.Cluster, stdout io.Writer, cfg cluster.WorkloadConfig, cached bool) error {
	fmt.Fprintf(stdout, "workload: %d workers, %d ops, %s keys over %d, churn %d, cache %v\n",
		cfg.Workers, cfg.Ops, cfg.Distribution, cfg.Keyspace, cfg.ChurnEvents, cached)
	res, err := c.RunWorkload(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, res.Summary())
	fmt.Fprintln(stdout)

	ns := func(v float64) string { return time.Duration(v).Round(10 * time.Nanosecond).String() }
	latRows := []export.HistRow{{Name: "all", H: res.Latency}}
	hopRows := []export.HistRow{{Name: "all", H: res.Hops}}
	for _, op := range res.PerOp {
		latRows = append(latRows, export.HistRow{Name: op.Name, H: op.Latency})
		hopRows = append(hopRows, export.HistRow{Name: op.Name, H: op.Hops})
	}
	if err := export.PercentileTable("operation latency", latRows, ns).WriteText(stdout); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	if err := export.PercentileTable("lookup hops", hopRows, nil).WriteText(stdout); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	if cached {
		total := res.CacheHits + res.CacheMisses
		if total > 0 {
			fmt.Fprintf(stdout, "routing cache: %d hits / %d misses (%.1f%% hit rate), %d table-route fallbacks\n",
				res.CacheHits, res.CacheMisses, 100*float64(res.CacheHits)/float64(total), res.Fallbacks)
		}
	}
	fmt.Fprintf(stdout, "churn events applied: %d; final store: %d keys, fingerprint %016x; ops fingerprint %016x\n",
		res.ChurnApplied, res.StoreLen, res.StoreFingerprint, res.OpsFingerprint)
	return nil
}

func runDemo(c *cluster.Cluster, stdout io.Writer, keys, events int) error {
	ctx := context.Background()

	// Watch the cluster's own event stream instead of polling.
	stream, cancel := c.Subscribe(4 * (events + 2))
	defer cancel()

	for i := 0; i < keys; i++ {
		if err := c.Put(ctx, fmt.Sprintf("object-%04d", i), fmt.Sprintf("value-%04d", i)); err != nil {
			return err
		}
	}
	// Hop statistics from a sample of routed lookups (up to 100), so
	// the demo does not re-route every stored key.
	var hops []float64
	step := keys / 100
	if step < 1 {
		step = 1
	}
	for i := 0; i < keys; i += step {
		_, h, err := c.Lookup(ctx, fmt.Sprintf("object-%04d", i))
		if err != nil {
			return err
		}
		hops = append(hops, float64(h))
	}
	s := stats.Summarize(hops)
	fmt.Fprintf(stdout, "stored %d keys; lookup hops: mean %.2f, max %.0f\n", c.Keys(), s.Mean, s.Max)

	fmt.Fprintf(stdout, "applying %d churn events...\n", events)
	recs, err := c.ChurnRandom(ctx, events)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		fmt.Fprintf(stdout, "  %-5s %s: re-stabilized in %d rounds\n", rec.Kind, rec.Peer, rec.Rounds)
	}
	if err := c.VerifyStable(); err != nil {
		return err
	}

	// Every key must still be retrievable after the churn.
	missing := 0
	for i := 0; i < keys; i++ {
		v, err := c.Get(ctx, fmt.Sprintf("object-%04d", i))
		switch {
		case errors.Is(err, cluster.ErrNotFound):
			missing++
		case err != nil:
			return err
		case v != fmt.Sprintf("value-%04d", i):
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d keys lost after churn", missing)
	}
	fmt.Fprintf(stdout, "all %d keys retrievable after churn; %d peers remain\n", keys, c.Size())

	// Show one traced lookup and what the event stream saw.
	tr, err := c.TraceLookup(ctx, "object-0000")
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trace %s\n", tr)
	counts := map[string]int{}
	for len(stream) > 0 {
		counts[(<-stream).Kind.String()]++
	}
	fmt.Fprintf(stdout, "event stream: %d joins, %d leaves, %d failures, %d settles, %d epoch bumps\n",
		counts["peer-joined"], counts["peer-left"], counts["peer-failed"],
		counts["region-settled"], counts["epoch-bumped"])
	return nil
}
