// Command rechord-dht demonstrates the Chord emulation on top of a
// stabilized Re-Chord network: it builds a network, stabilizes it,
// stores key-value pairs routed over the overlay, survives churn, and
// verifies every key stays reachable.
//
// Usage:
//
//	rechord-dht -n 32 -keys 200 -churn 4 -seed 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/churn"
	"repro/internal/dht"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/stats"
)

func main() {
	var (
		n      = flag.Int("n", 32, "number of peers")
		keys   = flag.Int("keys", 200, "number of key-value pairs")
		events = flag.Int("churn", 4, "churn events (join/leave/fail) to apply")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*n, *keys, *events, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "rechord-dht: %v\n", err)
		os.Exit(1)
	}
}

func run(n, keys, events int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("building a stable Re-Chord network of %d peers...\n", n)
	nw, ids, err := churn.StableNetwork(n, rng, rechord.Config{})
	if err != nil {
		return err
	}

	store := dht.New(nw)
	var hops []float64
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("object-%04d", i)
		home := ids[rng.Intn(len(ids))]
		_, h, err := store.Put(home, key, fmt.Sprintf("value-%04d", i))
		if err != nil {
			return err
		}
		hops = append(hops, float64(h-1))
	}
	s := stats.Summarize(hops)
	fmt.Printf("stored %d keys; routing hops: mean %.2f, max %.0f\n", store.Len(), s.Mean, s.Max)

	fmt.Printf("applying %d churn events...\n", events)
	for _, ev := range churn.RandomEvents(nw, events, rng) {
		rec, err := churn.Apply(nw, ev, 0)
		if err != nil {
			return err
		}
		if !rec.Stable {
			return fmt.Errorf("network did not re-stabilize after %s of %s", ev.Kind, ev.ID)
		}
		fmt.Printf("  %-5s %s: re-stabilized in %d rounds\n", ev.Kind, ev.ID, rec.Rounds)
	}
	if err := churn.VerifyStable(nw); err != nil {
		return fmt.Errorf("network left the legal state: %w", err)
	}
	moved, err := store.Rebalance()
	if err != nil {
		return err
	}
	fmt.Printf("rebalanced: %d keys moved\n", moved)

	// Every key must still be retrievable from a random home peer.
	peers := nw.Peers()
	missing := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("object-%04d", i)
		v, ok, err := store.Get(peers[rng.Intn(len(peers))], key)
		if err != nil {
			return err
		}
		if !ok || v != fmt.Sprintf("value-%04d", i) {
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d keys lost after churn", missing)
	}
	fmt.Printf("all %d keys retrievable after churn; %d peers remain\n", keys, len(peers))

	// Show one lookup's path.
	key := "object-0000"
	owner, path, err := routeDemo(nw, peers[0], key)
	if err != nil {
		return err
	}
	fmt.Printf("lookup %q from %s: owner %s, path %v\n", key, peers[0], owner, path)
	return nil
}

func routeDemo(nw *rechord.Network, from ident.ID, key string) (ident.ID, []ident.ID, error) {
	return routing.Route(nw, from, dht.KeyID(key))
}
