package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/cluster"
)

// TestObsEndpointDuringWorkload pins the acceptance contract: the
// /metrics and /debug/pprof endpoints answer while a workload holds
// the cluster's operation lock, because the snapshot path is
// lock-free.
func TestObsEndpointDuringWorkload(t *testing.T) {
	c, err := cluster.New(cluster.WithSize(16), cluster.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(obsMux(c))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		_, runErr = c.RunWorkload(context.Background(),
			cluster.WorkloadConfig{Ops: 5000, Preload: 256, Seed: 1})
	}()

	var snap cluster.MetricsSnapshot
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("/metrics is not the snapshot JSON: %v", err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	// After the run, a final scrape reflects it.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Workload.Ops == 0 {
		t.Fatal("post-run snapshot shows no ops")
	}
	if snap.Engine.Steps == 0 {
		t.Fatal("post-run snapshot shows no engine steps")
	}
}

// TestRunHTTPFlag wires the -http flag end to end: the demo run binds
// the observability server and reports where.
func TestRunHTTPFlag(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-n", "12", "-keys", "20", "-churn", "1", "-seed", "2", "-http", "127.0.0.1:0"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "observability: http://127.0.0.1:") {
		t.Errorf("output missing observability banner:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "trace key") {
		t.Errorf("output missing lookup trace:\n%s", out.String())
	}
}
