package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/cluster"
)

// TestObsEndpointDuringWorkload pins the acceptance contract: the
// /metrics and /debug/pprof endpoints answer while a workload holds
// the cluster's operation lock, because the snapshot path is
// lock-free.
func TestObsEndpointDuringWorkload(t *testing.T) {
	c, err := cluster.New(cluster.WithSize(16), cluster.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(obsMux(c))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		_, runErr = c.RunWorkload(context.Background(),
			cluster.WorkloadConfig{Ops: 5000, Preload: 256, Seed: 1})
	}()

	var snap cluster.MetricsSnapshot
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("/metrics is not the snapshot JSON: %v", err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	// After the run, a final scrape reflects it.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Workload.Ops == 0 {
		t.Fatal("post-run snapshot shows no ops")
	}
	if snap.Engine.Steps == 0 {
		t.Fatal("post-run snapshot shows no engine steps")
	}
}

// TestMetricsContentLength pins the buffered write path: the snapshot
// is encoded before any byte reaches the wire, so the response carries
// an exact Content-Length and an encoding failure could still become a
// clean 500 instead of text spliced into half-written JSON.
func TestMetricsContentLength(t *testing.T) {
	c, err := cluster.New(cluster.WithSize(8), cluster.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(obsMux(c))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(body)) {
		t.Fatalf("Content-Length %q, body is %d bytes", got, len(body))
	}
	var snap cluster.MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("body is not the snapshot JSON: %v", err)
	}
}

// TestStopDrainsInflightScrape pins the graceful-stop contract: a
// scrape that is mid-flight when the run finishes completes with its
// full body (Shutdown drains), instead of being severed by Close.
func TestStopDrainsInflightScrape(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	const slowBody = "slow-scrape-body"
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		_, _ = io.WriteString(w, slowBody)
	})
	addr, stop, err := serveObsHandler(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-entered // the scrape is now in flight

	stopped := make(chan struct{})
	go func() {
		stop()
		close(stopped)
	}()
	// Let Shutdown begin its drain, then let the handler finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape failed across stop: %v", r.err)
	}
	if r.body != slowBody {
		t.Fatalf("in-flight scrape body %q, want %q", r.body, slowBody)
	}
	<-stopped

	// Stopped means stopped: new connections must be refused.
	if resp, err := http.Get("http://" + addr + "/"); err == nil {
		resp.Body.Close()
		t.Fatal("server still accepting connections after stop")
	}
}

// TestRunHTTPFlag wires the -http flag end to end: the demo run binds
// the observability server and reports where.
func TestRunHTTPFlag(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-n", "12", "-keys", "20", "-churn", "1", "-seed", "2", "-http", "127.0.0.1:0"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "observability: http://127.0.0.1:") {
		t.Errorf("output missing observability banner:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "trace key") {
		t.Errorf("output missing lookup trace:\n%s", out.String())
	}
}
