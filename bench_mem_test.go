// Memory-footprint benchmark for the compact-handle core, tracked in
// BENCH_mem.json (make bench-mem): resident bytes per peer of a
// settled network, standing message flows included. The interner's
// slice-addressed layout (dense node/level/view tables, level-indexed
// vnode slices, handle-keyed buckets) replaced the id- and ref-keyed
// hash maps of the original engine; this benchmark is the regression
// guard that keeps the per-peer footprint from creeping back up, and
// the number that decides how large an n fits in one test budget.
package repro

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/rechord"
	"repro/internal/sim"
	"repro/internal/topogen"
)

func heapAlloc() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// BenchmarkMemoryPerPeer reports bytes/peer of a quiescent network at
// each size. ns/op is dominated by the settle run and is not the
// tracked number; bytes/peer is.
//
// The n=65536 rung does not fit the default 10-minute test deadline;
// like the compact scale ladder it skips itself when the binary's
// deadline cannot hold it, and unlocks under a generous -timeout (the
// bench-mem make target) or -timeout=0.
func BenchmarkMemoryPerPeer(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			if n > 16384 {
				// testing.B has no Deadline, so read the binary's
				// -test.timeout directly; the go tool enforces it from
				// outside the process too, so skipping is the only
				// honest move when the budget cannot hold the rung.
				if f := flag.Lookup("test.timeout"); f != nil {
					if d, err := time.ParseDuration(f.Value.String()); err == nil && d > 0 && d < 30*time.Minute {
						b.Skipf("n=%d needs a long settle run but -timeout is %v; rerun with -timeout=60m (or -timeout=0) to include it", n, d)
					}
				}
			}
			var perPeer float64
			for i := 0; i < b.N; i++ {
				base := heapAlloc()
				rng := rand.New(rand.NewSource(int64(n)))
				ids := topogen.RandomIDs(n, rng)
				nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
				if _, err := sim.RunToStable(context.Background(), nw, sim.Options{SkipFinalMetrics: true}); err != nil {
					b.Fatal(err)
				}
				perPeer = float64(heapAlloc()-base) / float64(n)
				runtime.KeepAlive(nw)
			}
			b.ReportMetric(perPeer, "bytes/peer")
		})
	}
}
