// Benchmarks regenerating the paper's evaluation, one per figure and
// theorem-level claim (see DESIGN.md's experiment index). Each bench
// reports the paper's metric as a custom unit alongside ns/op, so
// `go test -bench=.` reproduces the shape of every table and figure:
//
//	BenchmarkFig5Convergence/n=45  ... rounds/op, normal-edges, connection-edges, virtual-nodes
//	BenchmarkFig6Rounds/n=45       ... rounds-to-stable, rounds-to-almost-stable
//	BenchmarkFig7EdgeDensity/n=45  ... total-nodes, total-edges
//	BenchmarkJoin/n=45             ... recovery rounds after one join
//	...
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chord"
	"repro/internal/churn"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topogen"
	"repro/internal/workload"
)

// paperSizes is the sweep of Section 5.
var paperSizes = []int{5, 15, 25, 35, 45, 65, 85, 105}

// benchSizes trims the sweep so the full bench suite stays tractable;
// pass -bench-full via -args to use the paper's full range.
var benchSizes = []int{5, 15, 45, 105}

func buildRandom(n int, seed int64, workers int) (*rechord.Network, []ident.ID) {
	rng := rand.New(rand.NewSource(seed))
	ids := topogen.RandomIDs(n, rng)
	return topogen.Random().Build(ids, rng, rechord.Config{Workers: workers}), ids
}

// BenchmarkFig5Convergence regenerates Figure 5: edge and node counts
// of the stabilized network per peer count.
func BenchmarkFig5Convergence(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var normal, conn, virt, rounds float64
			for i := 0; i < b.N; i++ {
				nw, _ := buildRandom(n, int64(i), 0)
				res, err := sim.RunToStable(context.Background(), nw, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				normal += float64(res.Final.NormalEdges())
				conn += float64(res.Final.ConnectionEdges)
				virt += float64(res.Final.VirtualNodes)
				rounds += float64(res.Rounds)
			}
			div := float64(b.N)
			b.ReportMetric(normal/div, "normal-edges")
			b.ReportMetric(conn/div, "connection-edges")
			b.ReportMetric(virt/div, "virtual-nodes")
			b.ReportMetric(rounds/div, "rounds")
		})
	}
}

// BenchmarkFig6Rounds regenerates Figure 6: rounds to the stable and
// almost-stable states.
func BenchmarkFig6Rounds(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var stable, almost float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				ids := topogen.RandomIDs(n, rng)
				nw := topogen.Random().Build(ids, rng, rechord.Config{})
				idl := rechord.ComputeIdeal(ids)
				res, err := sim.RunToStable(context.Background(), nw, sim.Options{Ideal: idl})
				if err != nil {
					b.Fatal(err)
				}
				stable += float64(res.Rounds)
				almost += float64(res.AlmostStableRound)
			}
			b.ReportMetric(stable/float64(b.N), "rounds-to-stable")
			b.ReportMetric(almost/float64(b.N), "rounds-to-almost-stable")
		})
	}
}

// BenchmarkFig7EdgeDensity regenerates Figure 7: total edges against
// total nodes in the final graph.
func BenchmarkFig7EdgeDensity(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var nodes, edges float64
			for i := 0; i < b.N; i++ {
				nw, _ := buildRandom(n, int64(i), 0)
				res, err := sim.RunToStable(context.Background(), nw, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				nodes += float64(res.Final.TotalNodes())
				edges += float64(res.Final.TotalEdges())
			}
			b.ReportMetric(nodes/float64(b.N), "total-nodes")
			b.ReportMetric(edges/float64(b.N), "total-edges")
		})
	}
}

// BenchmarkConvergenceShapes measures Theorem 1.1 across adversarial
// initial topologies.
func BenchmarkConvergenceShapes(b *testing.B) {
	for _, gen := range topogen.All() {
		b.Run(fmt.Sprintf("%s/n=45", gen.Name), func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				ids := topogen.RandomIDs(45, rng)
				nw := gen.Build(ids, rng, rechord.Config{})
				res, err := sim.RunToStable(context.Background(), nw, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Rounds)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
		})
	}
}

// BenchmarkJoin measures Theorem 4.1: recovery after an isolated join
// into a stable network.
func BenchmarkJoin(b *testing.B) {
	benchChurn(b, "join")
}

// BenchmarkLeave measures Theorem 4.2 for graceful departures.
func BenchmarkLeave(b *testing.B) {
	benchChurn(b, "leave")
}

// BenchmarkFail measures Theorem 4.2 for crash failures.
func BenchmarkFail(b *testing.B) {
	benchChurn(b, "fail")
}

func benchChurn(b *testing.B, kind string) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rng := rand.New(rand.NewSource(int64(i)))
				nw, ids, err := churn.StableNetwork(context.Background(), n, rng, rechord.Config{})
				if err != nil {
					b.Fatal(err)
				}
				ev := churn.Event{Kind: kind}
				if kind == "join" {
					ev.ID = ident.ID(rng.Uint64() | 1)
					ev.Contact = ids[rng.Intn(len(ids))]
				} else {
					ev.ID = ids[rng.Intn(len(ids))]
				}
				b.StartTimer()
				rec, err := churn.Apply(context.Background(), nw, ev, 0)
				if err != nil || !rec.Stable {
					b.Fatalf("%v (stable=%v)", err, rec.Stable)
				}
				rounds += float64(rec.Rounds)
			}
			b.ReportMetric(rounds/float64(b.N), "recovery-rounds")
		})
	}
}

// BenchmarkFact21Check measures the Chord-subgraph verification of
// Fact 2.1 on a converged network.
func BenchmarkFact21Check(b *testing.B) {
	nw, ids := buildRandom(45, 1, 0)
	if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		b.Fatal(err)
	}
	idl := rechord.ComputeIdeal(ids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg := idl.ChordGraph()
		rg := nw.ReChordGraph()
		direct := 0
		for _, e := range cg.AllEdges() {
			if rg.HasEdge(e.From, e.To, e.Kind) {
				direct++
			}
		}
		if direct == 0 {
			b.Fatal("no chord edges found")
		}
	}
}

// BenchmarkLookup measures Chord-emulated lookups over the stable
// network (Section 1.1's O(log n) routing).
func BenchmarkLookup(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			nw, ids, err := churn.StableNetwork(context.Background(), n, rng, rechord.Config{})
			if err != nil {
				b.Fatal(err)
			}
			var hops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, path, err := routing.Route(nw, ids[i%len(ids)], ident.ID(rng.Uint64()))
				if err != nil {
					b.Fatal(err)
				}
				hops += float64(len(path) - 1)
			}
			b.ReportMetric(hops/float64(b.N), "hops")
		})
	}
}

// BenchmarkChordBaselineLookup measures the classic Chord baseline's
// lookup for comparison with BenchmarkLookup.
func BenchmarkChordBaselineLookup(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			ids := topogen.RandomIDs(n, rng)
			s := chord.BuildCorrect(ids)
			var hops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, h, err := s.FindSuccessor(ids[i%len(ids)], ident.ID(rng.Uint64()))
				if err != nil {
					b.Fatal(err)
				}
				hops += float64(h)
			}
			b.ReportMetric(hops/float64(b.N), "hops")
		})
	}
}

// BenchmarkTableLookup measures table-based Chord lookups at n=1024,
// cached (routing.Cache, epoch-invalidated) against the uncached
// baseline that re-derives every hop's table via TableOf — the
// serving-layer hot path internal/workload rides on. bench-lookups
// records both in BENCH_lookups.json; the cached side must stay >= 5x
// the uncached throughput.
func BenchmarkTableLookup(b *testing.B) {
	const n = 1024
	nw := steadyNet(b, n, false)
	ids := nw.Peers()
	rng := rand.New(rand.NewSource(1))
	cache := routing.NewCache(nw)
	route := func(b *testing.B, via func(from, key ident.ID) (ident.ID, int, error)) {
		var hops float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, h, err := via(ids[rng.Intn(len(ids))], ident.ID(rng.Uint64()))
			if err != nil {
				b.Fatal(err)
			}
			hops += float64(h)
		}
		b.ReportMetric(hops/float64(b.N), "hops")
	}
	b.Run(fmt.Sprintf("uncached/n=%d", n), func(b *testing.B) {
		route(b, func(from, key ident.ID) (ident.ID, int, error) {
			return routing.RouteUncached(nw, from, key)
		})
	})
	b.Run(fmt.Sprintf("cached/n=%d", n), func(b *testing.B) {
		route(b, cache.Route)
	})
}

// BenchmarkWorkload measures the full serving stack — concurrent
// workers, sharded store, cached routing — on a stable network,
// reporting the latency percentiles and mean hops the acceptance
// criteria track.
func BenchmarkWorkload(b *testing.B) {
	const n = 256
	const opsPerRun = 5000
	for _, dist := range []string{workload.DistUniform, workload.DistZipf} {
		b.Run(fmt.Sprintf("%s/n=%d", dist, n), func(b *testing.B) {
			nw := steadyNet(b, n, false)
			var p50, p99, hops, tput float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := workload.Run(context.Background(), nw, workload.Config{
					Workers:      8,
					Ops:          opsPerRun,
					Keyspace:     2048,
					Preload:      1024,
					Distribution: dist,
					Seed:         int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors > 0 {
					b.Fatalf("%d errors on a stable network", res.Errors)
				}
				p50 += res.Latency.Percentile(50)
				p99 += res.Latency.Percentile(99)
				hops += res.Hops.Mean()
				tput += res.Throughput
			}
			div := float64(b.N)
			b.ReportMetric(p50/div, "p50-ns")
			b.ReportMetric(p99/div, "p99-ns")
			b.ReportMetric(hops/div, "mean-hops")
			b.ReportMetric(tput/div/1000, "kops/s")
		})
	}
}

// BenchmarkRound measures the cost of a single synchronous round at
// steady state, serial vs. parallel — the engine's hot path.
func BenchmarkRound(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(fmt.Sprintf("%s/n=105", name), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			nw, _, err := churn.StableNetwork(context.Background(), 105, rng, rechord.Config{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.Step()
			}
		})
	}
}

// steadyCache shares expensive steady-state setups across the bench
// framework's repeated invocations of the same sub-benchmark.
var steadyCache = map[string]*rechord.Network{}

// steadyNet returns a network of n peers at (or, for the full sweep,
// within a few rounds of) its fixed point. The incremental engine is
// run to quiescence; the full-sweep engine is stepped a fixed prefix,
// because driving it to the exact fixed point via snapshot comparison
// at these sizes is precisely the cost this benchmark family exists to
// retire.
func steadyNet(b *testing.B, n int, full bool) *rechord.Network {
	key := fmt.Sprintf("%d/%v", n, full)
	if nw, ok := steadyCache[key]; ok {
		return nw
	}
	rng := rand.New(rand.NewSource(1))
	ids := topogen.RandomIDs(n, rng)
	nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{FullSweep: full})
	if full {
		for i := 0; i < 12; i++ {
			nw.Step()
		}
	} else if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
		b.Fatal(err)
	}
	steadyCache[key] = nw
	return nw
}

// BenchmarkStepSteadyState measures the engine's hot path — one
// synchronous round at steady state — for the incremental
// (activity-tracked) schedule against the exhaustive full sweep. This
// is the benchmark bench-json records across PRs: the incremental
// engine's quiescent rounds must stay orders of magnitude cheaper and
// allocation-free.
func BenchmarkStepSteadyState(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{
		{"incremental", false},
		{"fullsweep", true},
	} {
		for _, n := range []int{512, 2048} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				nw := steadyNet(b, n, mode.full)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nw.Step()
				}
			})
		}
	}
}

// BenchmarkChurnRecoveryLarge measures absorbing one crash failure in
// a quiescent N=1024 network — the incremental engine wakes only the
// failed peer's neighborhood.
func BenchmarkChurnRecoveryLarge(b *testing.B) {
	const n = 1024
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(int64(i)))
		ids := topogen.RandomIDs(n, rng)
		nw := topogen.PreStabilized().Build(ids, rng, rechord.Config{})
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			b.Fatal(err)
		}
		victim := ids[rng.Intn(len(ids))]
		b.StartTimer()
		if err := nw.Fail(victim); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunToStable(context.Background(), nw, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot measures fixed-point detection (full-state deep
// compare), the other engine hot path.
func BenchmarkSnapshot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nw, _, err := churn.StableNetwork(context.Background(), 105, rng, rechord.Config{})
	if err != nil {
		b.Fatal(err)
	}
	s1 := nw.TakeSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2 := nw.TakeSnapshot()
		if !s1.Equal(s2) {
			b.Fatal("snapshots differ at steady state")
		}
	}
}

// TestPaperSizesCovered keeps the full sweep definition compiled and
// documents which sizes the paper used.
func TestPaperSizesCovered(t *testing.T) {
	if len(paperSizes) != 8 || paperSizes[0] != 5 || paperSizes[len(paperSizes)-1] != 105 {
		t.Fatalf("paper sweep wrong: %v", paperSizes)
	}
	for _, n := range benchSizes {
		found := false
		for _, p := range paperSizes {
			if n == p {
				found = true
			}
		}
		if !found {
			t.Errorf("bench size %d not in the paper's sweep", n)
		}
	}
}
