package cluster

import (
	"sync"
	"sync/atomic"
)

// EventKind identifies what happened.
type EventKind uint8

const (
	// EventPeerJoined: a peer entered the cluster (Event.Peer).
	EventPeerJoined EventKind = iota + 1
	// EventPeerLeft: a peer departed gracefully (Event.Peer).
	EventPeerLeft
	// EventPeerFailed: a peer crashed (Event.Peer).
	EventPeerFailed
	// EventRegionSettled: a stabilization reached the global fixed
	// point; Event.Rounds is the number of repair rounds it took and
	// Event.Peers the membership size at that point.
	EventRegionSettled
	// EventEpochBumped: some peer's protocol state changed since the
	// last observation; Event.Epoch is the new value of the global
	// epoch clock (any routing table cached before it may be stale).
	EventEpochBumped
)

// String returns the kind's wire name.
func (k EventKind) String() string {
	switch k {
	case EventPeerJoined:
		return "peer-joined"
	case EventPeerLeft:
		return "peer-left"
	case EventPeerFailed:
		return "peer-failed"
	case EventRegionSettled:
		return "region-settled"
	case EventEpochBumped:
		return "epoch-bumped"
	default:
		return "unknown"
	}
}

// Event is one entry of the cluster's event stream.
type Event struct {
	Kind EventKind
	// Peer is the subject of a joined/left/failed event.
	Peer PeerID
	// Round is the protocol round at which the event was published.
	Round int
	// Rounds is, for EventRegionSettled, the number of repair rounds
	// the stabilization took.
	Rounds int
	// Peers is, for EventRegionSettled, the membership size.
	Peers int
	// Epoch is, for EventEpochBumped, the new epoch-clock value.
	Epoch int
}

// eventBus fans events out to subscribers without ever blocking the
// publisher: a full subscriber buffer drops the event for that
// subscriber and counts it.
type eventBus struct {
	mu      sync.Mutex
	subs    map[int]chan Event
	next    int
	closed  bool
	dropped atomic.Uint64
}

func (b *eventBus) subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan Event, buf)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	if b.subs == nil {
		b.subs = make(map[int]chan Event)
	}
	id := b.next
	b.next++
	b.subs[id] = ch
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
}

func (b *eventBus) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.dropped.Add(1)
		}
	}
}

func (b *eventBus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}
