package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/churn"
	"repro/internal/dht"
	"repro/internal/ident"
	"repro/internal/rechord"
	"repro/internal/routing"
)

// TestLockstepFacadeVsDirect proves the facade adds no behavior: the
// same seed, the same op sequence and the same home-selection rule
// executed through cluster.Get/Put/Delete/Lookup and through a
// hand-wired dht.Store + routing.Cache composition produce identical
// owners, values, hop counts and errors, op for op.
func TestLockstepFacadeVsDirect(t *testing.T) {
	const n, seed, keys = 24, 77, 120

	c, err := New(WithSize(n), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The direct composition, wired the way consumers did before the
	// facade existed — seeded identically, so the network is identical.
	rng := rand.New(rand.NewSource(seed))
	nw, _, err := churn.StableNetwork(context.Background(), n, rng, rechord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var fallbacks atomic.Int64
	cache := routing.NewCache(nw)
	resolver := failoverResolver{cache: cache, walk: routing.Walker{NW: nw}, fallbacks: &fallbacks}
	store := dht.NewWithResolver(nw, resolver)
	homes := nw.Peers()
	ctr := 0
	nextHome := func() ident.ID { h := homes[ctr%len(homes)]; ctr++; return h }

	ctx := context.Background()
	key := func(i int) string { return fmt.Sprintf("obj-%04d", i) }
	val := func(i int) string { return fmt.Sprintf("val-%04d", i) }

	for i := 0; i < keys; i++ {
		if err := c.Put(ctx, key(i), val(i)); err != nil {
			t.Fatalf("facade put %d: %v", i, err)
		}
		if _, _, err := store.Put(nextHome(), key(i), val(i)); err != nil {
			t.Fatalf("direct put %d: %v", i, err)
		}
	}
	for i := 0; i < keys; i++ {
		fOwner, fHops, err := c.Lookup(ctx, key(i))
		if err != nil {
			t.Fatalf("facade lookup %d: %v", i, err)
		}
		dOwner, dHops, err := store.ResolveKey(nextHome(), key(i))
		if err != nil {
			t.Fatalf("direct lookup %d: %v", i, err)
		}
		if fOwner.id() != dOwner || fHops != dHops {
			t.Fatalf("lookup %d: facade (%s, %d hops) != direct (%s, %d hops)", i, fOwner, fHops, dOwner, dHops)
		}
		if want := c.Owner(key(i)); want != fOwner {
			t.Fatalf("lookup %d routed to %s, consistent hashing says %s", i, fOwner, want)
		}
	}
	for i := 0; i < keys; i++ {
		fv, ferr := c.Get(ctx, key(i))
		dv, _, derr := store.Get(nextHome(), key(i))
		if ferr != nil || derr != nil {
			t.Fatalf("get %d: facade err %v, direct err %v", i, ferr, derr)
		}
		if fv != dv || fv != val(i) {
			t.Fatalf("get %d: facade %q, direct %q, want %q", i, fv, dv, val(i))
		}
	}
	for i := 0; i < keys; i += 3 {
		fDel, err := c.Delete(ctx, key(i))
		if err != nil {
			t.Fatalf("facade delete %d: %v", i, err)
		}
		dDel, _, err := store.Delete(nextHome(), key(i))
		if err != nil {
			t.Fatalf("direct delete %d: %v", i, err)
		}
		if fDel != dDel || !fDel {
			t.Fatalf("delete %d: facade %v, direct %v", i, fDel, dDel)
		}
	}
	if c.Keys() != store.Len() {
		t.Fatalf("final store sizes differ: facade %d, direct %d", c.Keys(), store.Len())
	}
	for i := 0; i < keys; i++ {
		_, ferr := c.Get(ctx, key(i))
		_, _, derr := store.Get(nextHome(), key(i))
		if (ferr == nil) != (derr == nil) {
			t.Fatalf("post-delete get %d: facade err %v, direct err %v", i, ferr, derr)
		}
		if i%3 == 0 && !errors.Is(ferr, ErrNotFound) {
			t.Fatalf("post-delete get %d: err %v, want ErrNotFound", i, ferr)
		}
	}
}

// TestWorkloadLockstep: the same workload through the facade and
// through the engine directly produces the same deterministic op and
// store fingerprints.
func TestWorkloadLockstep(t *testing.T) {
	cfg := WorkloadConfig{Workers: 4, Ops: 1200, Keyspace: 256, Preload: 128, Seed: 9}
	run := func() (*WorkloadReport, error) {
		c, err := New(WithSize(16), WithSeed(3))
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return c.RunWorkload(context.Background(), cfg)
	}
	r1, err := run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.OpsFingerprint != r2.OpsFingerprint {
		t.Errorf("op fingerprints differ across identical runs: %016x vs %016x", r1.OpsFingerprint, r2.OpsFingerprint)
	}
	if r1.StoreFingerprint != r2.StoreFingerprint {
		t.Errorf("store fingerprints differ across identical runs: %016x vs %016x", r1.StoreFingerprint, r2.StoreFingerprint)
	}
	if r1.Ops != cfg.Ops {
		t.Errorf("Ops = %d, want %d", r1.Ops, cfg.Ops)
	}
	if r1.CacheHits == 0 {
		t.Error("router cache saw no hits on a quiescent network")
	}
}

// TestLifecycleAndEvents drives join/leave/fail through the facade and
// checks the event stream sees each lifecycle change, the settle after
// each stabilization, and the epoch advancing — and that the cluster
// ends in the verified stable state.
func TestLifecycleAndEvents(t *testing.T) {
	c, err := New(WithSize(12), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events, cancel := c.Subscribe(64)
	defer cancel()
	ctx := context.Background()

	joined, err := c.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.Quiescent() {
		t.Error("network quiescent immediately after a join")
	}
	if _, err := c.Stabilize(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(ctx, joined); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stabilize(ctx); err != nil {
		t.Fatal(err)
	}
	peers := c.Peers()
	if err := c.Fail(ctx, peers[len(peers)-1]); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Stabilize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable || rep.Rounds <= 0 {
		t.Errorf("final stabilize: stable %v after %d rounds", rep.Stable, rep.Rounds)
	}
	if !c.Quiescent() {
		t.Error("cluster not quiescent after stabilize")
	}
	if err := c.VerifyStable(); err != nil {
		t.Error(err)
	}
	if s, total := c.LocallyStable(); s != total {
		t.Errorf("only %d/%d peers locally stable at the fixed point", s, total)
	}

	got := map[EventKind]int{}
	for len(events) > 0 {
		got[(<-events).Kind]++
	}
	for _, want := range []struct {
		kind EventKind
		n    int
	}{
		{EventPeerJoined, 1}, {EventPeerLeft, 1}, {EventPeerFailed, 1},
		{EventRegionSettled, 3}, {EventEpochBumped, 3},
	} {
		if got[want.kind] != want.n {
			t.Errorf("saw %d %s events, want %d (all: %v)", got[want.kind], want.kind, want.n, got)
		}
	}
	if c.EventsDropped() != 0 {
		t.Errorf("%d events dropped with an ample buffer", c.EventsDropped())
	}
}

// TestStabilizeHonorsContext cancels a stabilization of a large
// adversarial topology mid-run and checks the facade returns promptly,
// reports the cancellation, and can resume to the verified fixed
// point.
func TestStabilizeHonorsContext(t *testing.T) {
	c, err := New(WithSize(384), WithSeed(2), WithTopology(TopologyLine), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Stabilize(ctx); !errors.Is(err, context.Canceled) {
		// A very fast machine may finish inside 2ms; that is not a
		// failure of cancellation, just of the race setup.
		if err != nil {
			t.Fatalf("Stabilize returned %v, want context.Canceled or success", err)
		}
	}
	// Resume from the round barrier the cancellation left behind.
	if _, err := c.Stabilize(context.Background()); err != nil {
		t.Fatalf("resumed Stabilize failed: %v", err)
	}
	if err := c.VerifyStable(); err != nil {
		t.Error(err)
	}

	// An already-expired context never starts stepping.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	r0 := c.Round()
	if _, err := c.Stabilize(done); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stabilize with expired ctx returned %v", err)
	}
	if c.Round() != r0 {
		t.Errorf("expired ctx still stepped the network %d rounds", c.Round()-r0)
	}
}

// TestWorkloadChurnEventsAndRecovery runs facade traffic with
// interleaved churn and checks the events arrive and the cluster is
// returned stable and serviceable.
func TestWorkloadChurnEventsAndRecovery(t *testing.T) {
	c, err := New(WithSize(24), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events, cancel := c.Subscribe(256)
	defer cancel()

	ctx := context.Background()
	rep, err := c.RunWorkload(ctx, WorkloadConfig{
		Workers: 4, Ops: 1600, Keyspace: 256, Preload: 64, Seed: 4,
		ChurnEvents: 3, ChurnEveryOps: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChurnApplied == 0 {
		t.Fatal("no churn applied; nothing exercised")
	}
	if !c.Quiescent() {
		t.Error("cluster not quiescent after RunWorkload")
	}
	if err := c.VerifyStable(); err != nil {
		t.Error(err)
	}
	peerEvents := 0
	for len(events) > 0 {
		ev := <-events
		if ev.Kind == EventPeerJoined || ev.Kind == EventPeerLeft || ev.Kind == EventPeerFailed {
			peerEvents++
		}
	}
	if peerEvents != rep.ChurnApplied {
		t.Errorf("saw %d peer events for %d applied churn events", peerEvents, rep.ChurnApplied)
	}
	// The cluster must be serviceable right after the run.
	if err := c.Put(ctx, "after", "run"); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get(ctx, "after"); err != nil || v != "run" {
		t.Fatalf("Get after workload = %q, %v", v, err)
	}
}

// TestRunWorkloadCancel cancels facade traffic mid-run and checks the
// partial report comes back with ctx.Err() and the cluster is left
// stable (the facade finishes any interrupted repair itself).
func TestRunWorkloadCancel(t *testing.T) {
	c, err := New(WithSize(16), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	rep, err := c.RunWorkload(ctx, WorkloadConfig{
		Workers: 4, Ops: 50_000_000, Keyspace: 256, Seed: 2,
		ChurnEvents: 500, ChurnEveryOps: 500,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunWorkload returned %v, want deadline exceeded", err)
	}
	if rep == nil || rep.Ops == 0 {
		t.Fatal("canceled RunWorkload returned no partial telemetry")
	}
	if !c.Quiescent() {
		t.Error("cluster not re-stabilized after canceled workload")
	}
	if err := c.VerifyStable(); err != nil {
		t.Error(err)
	}
	if err := c.Put(context.Background(), "k", "v"); err != nil {
		t.Fatal(err)
	}
}

// TestChurnRandom checks the random churn helper re-stabilizes and
// verifies after every event and reports per-event recovery costs.
func TestChurnRandom(t *testing.T) {
	c, err := New(WithSize(20), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs, err := c.ChurnRandom(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d recoveries, want 5", len(recs))
	}
	for _, r := range recs {
		if r.Rounds <= 0 {
			t.Errorf("%s of %s recovered in %d rounds", r.Kind, r.Peer, r.Rounds)
		}
	}
	if err := c.VerifyStable(); err != nil {
		t.Error(err)
	}
}

// TestErrorTaxonomy checks every documented error class is returned
// where promised and matchable with errors.Is.
func TestErrorTaxonomy(t *testing.T) {
	if _, err := New(WithSize(0)); !errors.Is(err, ErrConfig) {
		t.Errorf("New(size 0) = %v, want ErrConfig", err)
	}
	if _, err := New(WithTopology("moebius")); !errors.Is(err, ErrConfig) {
		t.Errorf("New(bad topology) = %v, want ErrConfig", err)
	}
	if _, err := New(WithAblation(true, false)); !errors.Is(err, ErrConfig) {
		t.Errorf("New(stable+ablation) = %v, want ErrConfig", err)
	}

	c, err := New(WithSize(8), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Get(ctx, "never-stored"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := c.Leave(ctx, PeerID(0xDEAD)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Leave(unknown) = %v, want ErrUnknownPeer", err)
	}
	if err := c.Fail(ctx, PeerID(0xDEAD)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Fail(unknown) = %v, want ErrUnknownPeer", err)
	}
	if _, err := c.RunWorkload(ctx, WorkloadConfig{}); !errors.Is(err, ErrConfig) {
		t.Errorf("RunWorkload(no ops) = %v, want ErrConfig", err)
	}
	if _, err := c.RunWorkload(ctx, WorkloadConfig{Ops: 10, Distribution: "pareto"}); !errors.Is(err, ErrConfig) {
		t.Errorf("RunWorkload(bad dist) = %v, want ErrConfig", err)
	}
	if _, err := c.ChurnRandom(ctx, -1); !errors.Is(err, ErrConfig) {
		t.Errorf("ChurnRandom(-1) = %v, want ErrConfig", err)
	}

	// A runtime failure (preload routing on an un-stabilized topology)
	// must never be classified as a configuration error.
	unstable, err := New(WithSize(12), WithSeed(3), WithTopology(TopologyLine))
	if err != nil {
		t.Fatal(err)
	}
	defer unstable.Close()
	if _, werr := unstable.RunWorkload(ctx, WorkloadConfig{Ops: 50, Preload: 32, Keyspace: 64}); werr != nil && errors.Is(werr, ErrConfig) {
		t.Errorf("RunWorkload runtime failure misclassified as ErrConfig: %v", werr)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "k", "v"); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if _, err := c.Join(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Join after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v, want nil (idempotent)", err)
	}
}

// TestLastPeerProtected: the facade refuses to empty the cluster.
func TestLastPeerProtected(t *testing.T) {
	c, err := New(WithSize(2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	peers := c.Peers()
	if err := c.Leave(ctx, peers[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(ctx, peers[1]); !errors.Is(err, ErrConfig) {
		t.Fatalf("removing the last peer = %v, want ErrConfig", err)
	}
}

// TestTopologiesStabilize: every non-stable topology heals to the
// verified fixed point through the facade — including the loopy state
// that defeats classic Chord.
func TestTopologiesStabilize(t *testing.T) {
	for _, topo := range Topologies() {
		if topo == TopologyStable {
			continue
		}
		c, err := New(WithSize(17), WithSeed(13), WithTopology(topo))
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		rep, err := c.Stabilize(context.Background(), StabilizeAlmostStable())
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if err := c.VerifyStable(); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
		if topo != TopologyPreStabilized && rep.AlmostStableRound < 0 {
			t.Errorf("%s: almost-stable round not observed", topo)
		}
		c.Close()
	}
}

// TestNoCacheMatchesCached: the router-cache option changes routing
// cost, never results.
func TestNoCacheMatchesCached(t *testing.T) {
	ctx := context.Background()
	cached, err := New(WithSize(16), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	walk, err := New(WithSize(16), WithSeed(21), WithRouterCache(false))
	if err != nil {
		t.Fatal(err)
	}
	defer walk.Close()
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%03d", i)
		o1, _, err1 := cached.Lookup(ctx, k)
		o2, _, err2 := walk.Lookup(ctx, k)
		if err1 != nil || err2 != nil {
			t.Fatalf("lookup %s: %v / %v", k, err1, err2)
		}
		if o1 != o2 {
			t.Fatalf("lookup %s: cached owner %s, walk owner %s", k, o1, o2)
		}
	}
	hits, misses, _ := cached.CacheStats()
	if hits == 0 {
		t.Error("cached cluster recorded no hits")
	}
	if h, m, _ := walk.CacheStats(); h != 0 || m != 0 {
		t.Errorf("cache-disabled cluster recorded cache traffic: %d hits, %d misses", h, m)
	}
	_ = misses
}
