package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/churn"
	"repro/internal/dht"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topogen"
)

// PeerID identifies a peer: a point on the identifier circle [0, 1)
// represented as a 64-bit fixed-point fraction.
type PeerID uint64

// String renders the identifier the way the rest of the system does.
func (p PeerID) String() string { return ident.ID(p).String() }

func (p PeerID) id() ident.ID { return ident.ID(p) }

// RoundMetrics is one round's topology snapshot (re-exported from the
// metrics layer: real/virtual node and per-kind edge counts).
type RoundMetrics = sim.RoundMetrics

// Histogram is the mergeable streaming histogram the telemetry uses
// (re-exported so reports can be post-processed without reaching into
// internal packages).
type Histogram = stats.Histogram

// Cluster is a live Re-Chord system behind one coherent API: the round
// engine, the epoch-cached router, the sharded store, and the traffic
// engine, wired once.
type Cluster struct {
	cfg config

	// mu serializes network mutation (lifecycle, stabilization, write
	// side) against routing reads (KV operations, read side).
	mu    sync.RWMutex
	nw    *rechord.Network
	sched rechord.Scheduler // the execution model: nw itself, or an async runner
	store *dht.Store
	cache *routing.Cache // nil when the router cache is disabled
	rng   *rand.Rand     // guarded by mu (write side)
	homes []ident.ID     // current membership, sorted; guarded by mu

	homeCtr   atomic.Uint64
	fallbacks atomic.Int64
	closed    atomic.Bool
	bus       eventBus

	// met is the cluster's long-lived serving-path metrics set, shared
	// by the facade KV methods and every RunWorkload call so Metrics()
	// accumulates across runs. It is read without mu; see Metrics.
	met *obs.WorkloadMetrics

	// wire is the optional caller-owned wire-layer counter set
	// (WithWireMetrics); nil when the process has no wire transport.
	wire *obs.WireMetrics
}

// failoverResolver routes through the epoch-cached table router and
// falls back to the state-walk router when a table is incomplete or
// stale mid-churn.
type failoverResolver struct {
	cache     *routing.Cache
	walk      routing.Walker
	fallbacks *atomic.Int64
}

func (r failoverResolver) Resolve(from, key ident.ID) (ident.ID, int, error) {
	if owner, hops, err := r.cache.Resolve(from, key); err == nil {
		return owner, hops, nil
	}
	r.fallbacks.Add(1)
	return r.walk.Resolve(from, key)
}

// New builds a cluster from the options. The default is 32 peers,
// seed 1, already settled in the unique stable topology, with the
// epoch-cached router enabled; non-stable topologies come back
// un-stabilized and need one Stabilize(ctx) call. Construction errors
// match ErrConfig (bad options) or ErrUnstable (the seeded stable
// state failed verification).
func New(opts ...Option) (*Cluster, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rcfg := rechord.Config{
		Workers:           cfg.workers,
		FullSweep:         cfg.fullSweep,
		DisableRing:       cfg.disableRing,
		DisableConnection: cfg.disableConnection,
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	var nw *rechord.Network
	if cfg.topology == TopologyStable {
		var err error
		nw, _, err = churn.StableNetwork(context.Background(), cfg.size, rng, rcfg)
		if err != nil {
			return nil, fmt.Errorf("%w: seeding the stable topology: %v", ErrUnstable, err)
		}
	} else {
		ids := topogen.RandomIDs(cfg.size, rng)
		nw = generators()[cfg.topology].Build(ids, rng, rcfg)
	}

	c := &Cluster{cfg: cfg, nw: nw, rng: rng, homes: nw.Peers(), wire: cfg.wireMetrics}
	// Histogram shards cover the widest worker pool a workload run may
	// use plus the facade's own slot; extra shards only cost idle
	// zero-value histograms.
	c.met = obs.NewWorkloadMetrics(8, "get", "put", "delete", "lookup")
	c.sched = nw
	if cfg.async {
		// The asynchronous scheduler draws from its own seed-derived
		// stream, so sync and async clusters built from the same seed
		// share identifiers and topology.
		c.sched = rechord.NewAsyncRunner(nw, rechord.AsyncConfig{
			ActivationProb: cfg.asyncProb,
			Delay:          cfg.asyncDelay,
		}, rand.New(rand.NewSource(cfg.seed^0x55AA55AA)))
	}
	var resolver dht.Resolver
	if cfg.routerCache {
		c.cache = routing.NewCache(nw)
		resolver = failoverResolver{cache: c.cache, walk: routing.Walker{NW: nw}, fallbacks: &c.fallbacks}
	} else {
		resolver = routing.Walker{NW: nw}
	}
	c.store = dht.NewWithResolver(nw, resolver)
	return c, nil
}

// ready gates every operation on the cluster being open and the
// context not already done.
func (c *Cluster) ready(ctx context.Context) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// home picks the next home peer round-robin. Callers hold mu (either
// side); homes is never empty while the cluster is open.
func (c *Cluster) home() ident.ID {
	return c.homes[(c.homeCtr.Add(1)-1)%uint64(len(c.homes))]
}

// refreshHomes re-reads the membership. Callers hold the write lock.
func (c *Cluster) refreshHomes() { c.homes = c.nw.Peers() }

// clock returns the scheduler's unit-agnostic time — rounds under the
// synchronous model, steps under the asynchronous one — for event
// stamps. Callers hold mu (either side).
func (c *Cluster) clock() int { return c.sched.Time() }

// Close shuts the cluster down: every subscriber channel is closed and
// every subsequent operation returns ErrClosed. Close is idempotent.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.bus.close()
	return nil
}

// Subscribe returns a stream of cluster events and a cancel function.
// buf is the channel's buffer (default 16 when <= 0); events that do
// not fit are dropped for that subscriber, never blocking the cluster.
func (c *Cluster) Subscribe(buf int) (<-chan Event, func()) {
	return c.bus.subscribe(buf)
}

// EventsDropped returns how many events were dropped across all
// subscribers because their buffers were full.
func (c *Cluster) EventsDropped() uint64 { return c.bus.dropped.Load() }

// ---- Lifecycle ----------------------------------------------------

// Join adds a fresh peer with a seed-derived random identifier,
// introduced to one random existing peer (the paper's join: "a peer
// connects to one peer in the network"), and returns its identifier.
// The network is left un-stabilized; call Stabilize to repair it.
func (c *Cluster) Join(ctx context.Context) (PeerID, error) {
	if err := c.ready(ctx); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var id ident.ID
	for {
		id = ident.ID(c.rng.Uint64() | 1)
		if c.nw.Peer(id) == nil {
			break
		}
	}
	contact := c.homes[c.rng.Intn(len(c.homes))]
	if err := c.nw.Join(id, contact); err != nil {
		return 0, fmt.Errorf("%w: join: %v", ErrUnknownPeer, err)
	}
	c.refreshHomes()
	c.bus.publish(Event{Kind: EventPeerJoined, Peer: PeerID(id), Round: c.clock()})
	return PeerID(id), nil
}

// Leave removes the peer gracefully: its virtual nodes introduce their
// neighbors to one another before departing. The network is left
// un-stabilized; call Stabilize to repair it.
func (c *Cluster) Leave(ctx context.Context, p PeerID) error {
	return c.depart(ctx, p, "leave")
}

// Fail crashes the peer: no goodbyes, its edges dangle until the
// repair rules purge them. The network is left un-stabilized; call
// Stabilize to repair it.
func (c *Cluster) Fail(ctx context.Context, p PeerID) error {
	return c.depart(ctx, p, "fail")
}

func (c *Cluster) depart(ctx context.Context, p PeerID, kind string) error {
	if err := c.ready(ctx); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.homes) <= 1 {
		return fmt.Errorf("%w: cannot remove the last peer %s", ErrConfig, p)
	}
	var err error
	ev := Event{Peer: p}
	switch kind {
	case "leave":
		err, ev.Kind = c.nw.Leave(p.id()), EventPeerLeft
	default:
		err, ev.Kind = c.nw.Fail(p.id()), EventPeerFailed
	}
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrUnknownPeer, kind, err)
	}
	c.refreshHomes()
	ev.Round = c.clock()
	c.bus.publish(ev)
	return nil
}

// StabilizeReport is the outcome of one Stabilize call.
type StabilizeReport struct {
	// Stable reports whether the global fixed point was reached.
	Stable bool
	// Rounds is the number of rounds up to the last state change.
	Rounds int
	// AlmostStableRound is the first round after which every desired
	// edge existed; -1 when not observed or not tracked.
	AlmostStableRound int
	// Messages counts all protocol messages across the run.
	Messages int
	// Final is the converged topology snapshot.
	Final RoundMetrics
	// Series holds per-round metrics when requested.
	Series []RoundMetrics
}

type stabilizeOpts struct {
	maxRounds    int
	series       bool
	almostStable bool
}

// StabilizeOption tunes one Stabilize call.
type StabilizeOption func(*stabilizeOpts)

// StabilizeMaxRounds bounds the run (0 = a generous default derived
// from the network size, comfortably above the paper's O(n log n)).
func StabilizeMaxRounds(n int) StabilizeOption {
	return func(o *stabilizeOpts) { o.maxRounds = n }
}

// StabilizeSeries records per-round metrics into the report.
func StabilizeSeries() StabilizeOption {
	return func(o *stabilizeOpts) { o.series = true }
}

// StabilizeAlmostStable tracks the paper's "almost stable" state (the
// first round after which every desired edge exists), at the cost of
// computing the oracle topology for the current membership.
func StabilizeAlmostStable() StabilizeOption {
	return func(o *stabilizeOpts) { o.almostStable = true }
}

// Stabilize runs repair rounds until the global state reaches its
// fixed point, the round budget is exhausted, or the context is done.
// On success the store is rebalanced onto the (possibly changed)
// ownership and stale router-cache entries are pruned, a region-
// settled event is published, and — when any peer's state changed — an
// epoch-bumped event too. Cancellation returns ctx.Err() with the
// network left at a round barrier (resume by calling Stabilize again);
// an exhausted budget returns ErrUnstable.
func (c *Cluster) Stabilize(ctx context.Context, opts ...StabilizeOption) (StabilizeReport, error) {
	var o stabilizeOpts
	for _, opt := range opts {
		opt(&o)
	}
	if err := c.ready(ctx); err != nil {
		return StabilizeReport{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	epoch0 := c.nw.EpochClock()
	simOpt := sim.Options{MaxRounds: o.maxRounds, TrackSeries: o.series}
	if o.almostStable {
		simOpt.Ideal = rechord.ComputeIdeal(c.nw.Peers())
	}
	res := sim.Run(ctx, c.sched, simOpt)
	rep := StabilizeReport{
		Stable:            res.Stable,
		Rounds:            res.Rounds,
		AlmostStableRound: res.AlmostStableRound,
		Messages:          res.TotalMessages,
		Final:             res.Final,
		Series:            res.Series,
	}
	if epoch := c.nw.EpochClock(); epoch != epoch0 {
		c.bus.publish(Event{Kind: EventEpochBumped, Epoch: epoch, Round: c.clock()})
	}
	if res.Canceled {
		return rep, ctx.Err()
	}
	if !res.Stable {
		return rep, fmt.Errorf("%w: %d peers still repairing after %d steps", ErrUnstable, c.nw.NumPeers(), res.Rounds)
	}
	if _, err := c.store.Rebalance(); err != nil {
		return rep, fmt.Errorf("%w: rebalance: %v", ErrUnknownPeer, err)
	}
	if c.cache != nil {
		c.cache.Prune()
	}
	c.bus.publish(Event{Kind: EventRegionSettled, Rounds: rep.Rounds, Peers: c.nw.NumPeers(), Round: c.clock()})
	return rep, nil
}

// Quiescent reports whether the execution is at its global fixed
// point: no peer's inputs changed since it last reached a local fixed
// point, and (under the asynchronous model) no delivery still in
// flight — an O(1) check on the incremental engine.
func (c *Cluster) Quiescent() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sched.Quiescent()
}

// ---- KV -----------------------------------------------------------

// Put stores the key-value pair, routed over the overlay from a
// round-robin home peer to the key's owner.
func (c *Cluster) Put(ctx context.Context, key, value string) error {
	if err := c.ready(ctx); err != nil {
		return err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, hops, err := c.store.Put(c.home(), key, value)
	c.observeKV(opPut, hops, err)
	return opError("put", key, err)
}

// Get fetches the value for the key. A missing key returns ErrNotFound
// (routing reached the owner, the key is absent there); ErrNoRoute
// means the lookup could not complete and nothing is known.
func (c *Cluster) Get(ctx context.Context, key string) (string, error) {
	if err := c.ready(ctx); err != nil {
		return "", err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, hops, err := c.store.Get(c.home(), key)
	c.observeKV(opGet, hops, err)
	return v, opError("get", key, err)
}

// Delete removes the key, reporting whether it existed.
func (c *Cluster) Delete(ctx context.Context, key string) (bool, error) {
	if err := c.ready(ctx); err != nil {
		return false, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	existed, hops, err := c.store.Delete(c.home(), key)
	c.observeKV(opDelete, hops, err)
	return existed, opError("delete", key, err)
}

// Lookup routes the key from a round-robin home peer to its owner
// without touching stored data, returning the owner and the number of
// inter-peer hops the lookup took.
func (c *Cluster) Lookup(ctx context.Context, key string) (PeerID, int, error) {
	if err := c.ready(ctx); err != nil {
		return 0, 0, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	owner, hops, err := c.store.ResolveKey(c.home(), key)
	c.observeKV(opLookup, hops, err)
	if err != nil {
		return 0, hops, opError("lookup", key, err)
	}
	return PeerID(owner), hops, nil
}

// Owner returns the peer a key belongs to under consistent hashing —
// the successor of the key's identifier on the current membership.
func (c *Cluster) Owner(key string) PeerID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return PeerID(ident.Successor(c.homes, dht.KeyID(key)))
}

// Keys returns the number of stored key-value pairs.
func (c *Cluster) Keys() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.store.Len()
}

// ---- Introspection ------------------------------------------------

// Peers returns the current membership in increasing identifier order.
func (c *Cluster) Peers() []PeerID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]PeerID, len(c.homes))
	for i, id := range c.homes {
		out[i] = PeerID(id)
	}
	return out
}

// Size returns the number of peers.
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nw.NumPeers()
}

// Round returns the number of synchronous protocol rounds executed so
// far. Under WithAsync this counter does not advance; see Steps.
func (c *Cluster) Round() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nw.Round()
}

// Steps returns the scheduler's clock: rounds under the synchronous
// model, asynchronous steps under WithAsync. Event stream timestamps
// (Event.Round) use this clock.
func (c *Cluster) Steps() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sched.Time()
}

// ExecutionModel reports which execution model the cluster runs:
// "sync" (the paper's synchronous rounds) or "async" (the event-driven
// asynchronous scheduler configured by WithAsync).
func (c *Cluster) ExecutionModel() string {
	if c.cfg.async {
		return "async"
	}
	return "sync"
}

// InFlight returns the number of protocol messages currently in
// flight: standing repeating flows, one-shot deliveries, and (under
// WithAsync) messages inside pending delayed deliveries.
func (c *Cluster) InFlight() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sched.InFlight()
}

// Topology returns the current topology snapshot: real and virtual
// node counts and per-kind edge counts. (Telemetry counters moved to
// Metrics, which returns the structured MetricsSnapshot.)
func (c *Cluster) Topology() RoundMetrics {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sim.Measure(c.nw)
}

// VerifyStable checks the network against the oracle: the unique
// stable topology for the current membership. A deviation returns an
// error matching ErrUnstable with the first difference found.
func (c *Cluster) VerifyStable() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := rechord.ComputeIdeal(c.nw.Peers()).Matches(c.nw); err != nil {
		return fmt.Errorf("%w: %v", ErrUnstable, err)
	}
	return nil
}

// LocallyStable counts the peers whose purely local stability check
// passes (the paper's local checkability: at the fixed point all do).
func (c *Cluster) LocallyStable() (stable, total int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nw.CountLocallyStable(), c.nw.NumPeers()
}

// DOT renders the current overlay graph in Graphviz DOT format.
func (c *Cluster) DOT() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nw.Graph().DOT()
}

// CacheStats returns the router cache's hit/miss counters and how many
// table-route failures fell back to the state walk (all zero when the
// cache is disabled).
func (c *Cluster) CacheStats() (hits, misses uint64, fallbacks int64) {
	if c.cache != nil {
		hits, misses = c.cache.Stats()
	}
	return hits, misses, c.fallbacks.Load()
}
