package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAsyncClusterStabilizeAndServe is the facade-level acceptance
// path for the asynchronous execution model: a cluster built with
// WithAsync stabilizes an adversarial topology through the event-
// driven scheduler, verifies the exact oracle state, serves KV
// traffic, and absorbs churn — all through the unchanged public API.
func TestAsyncClusterStabilizeAndServe(t *testing.T) {
	ctx := context.Background()
	c, err := New(
		WithSize(24),
		WithSeed(5),
		WithTopology(TopologyRandom),
		WithAsync(0.5, DelayUniform(3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ExecutionModel(); got != "async" {
		t.Fatalf("ExecutionModel = %q, want async", got)
	}

	rep, err := c.Stabilize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable || rep.Rounds <= 0 {
		t.Fatalf("async Stabilize: stable=%v steps=%d", rep.Stable, rep.Rounds)
	}
	if err := c.VerifyStable(); err != nil {
		t.Fatal(err)
	}
	if c.Round() != 0 {
		t.Errorf("async cluster advanced the synchronous round counter to %d", c.Round())
	}
	if c.Steps() < rep.Rounds {
		t.Errorf("Steps = %d, want >= %d", c.Steps(), rep.Rounds)
	}

	if err := c.Put(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get(ctx, "k"); err != nil || v != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}

	if _, err := c.ChurnRandom(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStable(); err != nil {
		t.Fatalf("after async churn: %v", err)
	}
	if v, err := c.Get(ctx, "k"); err != nil || v != "v" {
		t.Fatalf("Get after churn = %q, %v", v, err)
	}
}

// TestAsyncRunWorkloadWithChurn drives the concurrent traffic engine
// against an async-scheduled cluster: lookups race re-stabilization
// that proceeds under the asynchronous adversary, delayed messages and
// all. Runs in the CI race gate.
func TestAsyncRunWorkloadWithChurn(t *testing.T) {
	ctx := context.Background()
	c, err := New(WithSize(24), WithSeed(7), WithAsync(0.6, DelayUniform(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := c.RunWorkload(ctx, WorkloadConfig{
		Workers:     8,
		Ops:         3000,
		Keyspace:    512,
		Preload:     128,
		Seed:        7,
		ChurnEvents: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 3000 {
		t.Fatalf("Ops = %d, want 3000", rep.Ops)
	}
	if rep.Errors > rep.Ops/10 {
		t.Fatalf("error rate too high under async churn: %d/%d", rep.Errors, rep.Ops)
	}
	if !c.Quiescent() {
		t.Fatal("cluster not quiescent after async workload")
	}
	if err := c.VerifyStable(); err != nil {
		t.Fatal(err)
	}

	// Same seed and config on a fresh identical cluster: identical op
	// stream fingerprint (the determinism contract at workload level).
	c2, err := New(WithSize(24), WithSeed(7), WithAsync(0.6, DelayUniform(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rep2, err := c2.RunWorkload(ctx, WorkloadConfig{
		Workers:     8,
		Ops:         3000,
		Keyspace:    512,
		Preload:     128,
		Seed:        7,
		ChurnEvents: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsFingerprint != rep2.OpsFingerprint {
		t.Fatalf("op-stream fingerprints differ across identical async runs: %016x vs %016x",
			rep.OpsFingerprint, rep2.OpsFingerprint)
	}
}

// TestAsyncStabilizeCancel: cancellation under the asynchronous
// scheduler leaves the cluster at a step barrier, resumable by calling
// Stabilize again. Runs in the CI race gate.
func TestAsyncStabilizeCancel(t *testing.T) {
	c, err := New(
		WithSize(48),
		WithSeed(9),
		WithTopology(TopologyGarbage),
		WithAsync(0.3, DelayUniform(4)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Stabilize(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Stabilize: %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	_, err = c.Stabilize(ctx2)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run canceled Stabilize: %v", err)
	}

	// Resume to the fixed point and verify the oracle state.
	if _, err := c.Stabilize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStable(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncRunWorkloadCancel: canceling an async workload stops
// workers and the churn driver, the facade finishes any interrupted
// repair, and the cluster stays fully serviceable. Runs in the CI race
// gate.
func TestAsyncRunWorkloadCancel(t *testing.T) {
	c, err := New(WithSize(16), WithSeed(11), WithAsync(0.5, DelayUniform(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rep, err := c.RunWorkload(ctx, WorkloadConfig{
		Workers:     4,
		Duration:    10 * time.Second, // the cancel ends it long before
		Keyspace:    256,
		Seed:        11,
		ChurnEvents: 4,
		// Duration mode requires explicit churn spacing.
		ChurnEveryOps: 50,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled RunWorkload: err=%v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("canceled RunWorkload returned no partial telemetry")
	}
	if !c.Quiescent() {
		t.Fatal("facade did not finish the interrupted repair")
	}
	if err := c.Put(context.Background(), "after", "cancel"); err != nil {
		t.Fatalf("cluster not serviceable after cancel: %v", err)
	}
	if v, err := c.Get(context.Background(), "after"); err != nil || v != "cancel" {
		t.Fatalf("Get after cancel = %q, %v", v, err)
	}
}

// TestAsyncOptionValidation pins the option-combination errors.
func TestAsyncOptionValidation(t *testing.T) {
	if _, err := New(WithAsync(0.5, nil), WithFullSweep(), WithTopology(TopologyRandom)); !errors.Is(err, ErrConfig) {
		t.Errorf("async+fullsweep: %v, want ErrConfig", err)
	}
	if _, err := New(WithAsync(1.5, nil)); !errors.Is(err, ErrConfig) {
		t.Errorf("activation prob 1.5: %v, want ErrConfig", err)
	}
	if _, err := New(WithAsync(0, nil)); !errors.Is(err, ErrConfig) {
		t.Errorf("activation prob 0: %v, want ErrConfig", err)
	}
}

// TestParseDelayModel covers the flag-facing spec parser.
func TestParseDelayModel(t *testing.T) {
	for _, ok := range []string{"", "uniform:4", "geometric:0.5", "geom:0.5:16", "pareto:1.5", "pareto:1.5:64"} {
		if _, err := ParseDelayModel(ok); err != nil {
			t.Errorf("ParseDelayModel(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"uniform", "uniform:0", "uniform:x", "geometric:2", "geometric:0",
		"pareto:0", "pareto:1.5:64:9", "fixed:3", "geom"} {
		if _, err := ParseDelayModel(bad); !errors.Is(err, ErrConfig) {
			t.Errorf("ParseDelayModel(%q): %v, want ErrConfig", bad, err)
		}
	}
}
