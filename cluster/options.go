package cluster

import (
	"fmt"

	"repro/internal/topogen"
	"repro/internal/workload"
)

// Topology names accepted by WithTopology. "stable" (the default)
// builds the network already settled in the unique stable state; every
// other name seeds the corresponding adversarial initial state and
// leaves stabilization to the caller's Stabilize(ctx).
const (
	TopologyStable        = "stable"
	TopologyRandom        = "random"
	TopologyLine          = "line"
	TopologyStar          = "star"
	TopologyClique        = "clique"
	TopologyBridged       = "bridged"
	TopologyGarbage       = "garbage"
	TopologyLoopy         = "loopy"
	TopologyPreStabilized = "prestabilized"
)

// Key distributions accepted by WorkloadConfig.Distribution,
// re-exported from the workload engine.
const (
	DistUniform = workload.DistUniform
	DistZipf    = workload.DistZipf
	DistHotspot = workload.DistHotspot
)

// Topologies returns every topology name WithTopology accepts.
func Topologies() []string {
	return []string{
		TopologyStable, TopologyRandom, TopologyLine, TopologyStar,
		TopologyClique, TopologyBridged, TopologyGarbage, TopologyLoopy,
		TopologyPreStabilized,
	}
}

type config struct {
	size              int
	seed              int64
	topology          string
	workers           int
	routerCache       bool
	fullSweep         bool
	disableRing       bool
	disableConnection bool
}

func defaultConfig() config {
	return config{size: 32, seed: 1, topology: TopologyStable, routerCache: true}
}

// Option configures a Cluster at construction time.
type Option func(*config)

// WithSize sets the number of peers (default 32).
func WithSize(n int) Option { return func(c *config) { c.size = n } }

// WithSeed sets the seed driving every random choice: the peer
// identifiers, the initial topology, joiner identifiers, and churn
// event selection (default 1). Same options, same seed: the same
// cluster.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithTopology selects the initial state (default TopologyStable). Any
// non-stable topology is returned un-stabilized; run Stabilize(ctx) to
// reach the fixed point.
func WithTopology(name string) Option { return func(c *config) { c.topology = name } }

// WithWorkers sets the number of goroutines the round engine uses to
// run rules within a round (0 = all cores, 1 = serial). The result is
// identical for any value.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithRouterCache enables or disables the epoch-cached table router on
// the KV path (default enabled). Disabled, every operation routes
// through the state-walk router — the baseline the cache is measured
// against.
func WithRouterCache(on bool) Option { return func(c *config) { c.routerCache = on } }

// WithFullSweep runs the paper's literal schedule — rules 1-6 at every
// peer every round — instead of the activity-tracked incremental
// scheduler. Round-by-round global states are identical; full sweep is
// the equivalence baseline and debugging aid.
func WithFullSweep() Option { return func(c *config) { c.fullSweep = true } }

// WithAblation disables rule 5 (ring edges) and/or rule 6 (connection
// edges), the paper's ablations. An ablated cluster cannot use the
// stable topology (the oracle's stable state assumes all six rules).
func WithAblation(disableRing, disableConnection bool) Option {
	return func(c *config) {
		c.disableRing = disableRing
		c.disableConnection = disableConnection
	}
}

func (c config) validate() error {
	if c.size < 1 {
		return fmt.Errorf("%w: size %d, need at least 1 peer", ErrConfig, c.size)
	}
	if c.workers < 0 {
		return fmt.Errorf("%w: workers %d is negative", ErrConfig, c.workers)
	}
	if _, ok := generators()[c.topology]; !ok && c.topology != TopologyStable {
		return fmt.Errorf("%w: unknown topology %q (want one of %v)", ErrConfig, c.topology, Topologies())
	}
	if c.topology == TopologyStable && (c.disableRing || c.disableConnection) {
		return fmt.Errorf("%w: the stable topology requires all six rules; use a non-stable topology with WithAblation", ErrConfig)
	}
	return nil
}

// generators maps every non-stable topology name to its builder.
func generators() map[string]topogen.Generator {
	return map[string]topogen.Generator{
		TopologyRandom:        topogen.Random(),
		TopologyLine:          topogen.Line(),
		TopologyStar:          topogen.Star(),
		TopologyClique:        topogen.Clique(),
		TopologyBridged:       topogen.BridgedPartitions(3),
		TopologyGarbage:       topogen.Garbage(),
		TopologyLoopy:         topogen.Loopy(),
		TopologyPreStabilized: topogen.PreStabilized(),
	}
}
