package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/rechord"
	"repro/internal/topogen"
	"repro/internal/workload"
)

// Topology names accepted by WithTopology. "stable" (the default)
// builds the network already settled in the unique stable state; every
// other name seeds the corresponding adversarial initial state and
// leaves stabilization to the caller's Stabilize(ctx).
const (
	TopologyStable        = "stable"
	TopologyRandom        = "random"
	TopologyLine          = "line"
	TopologyStar          = "star"
	TopologyClique        = "clique"
	TopologyBridged       = "bridged"
	TopologyGarbage       = "garbage"
	TopologyLoopy         = "loopy"
	TopologyPreStabilized = "prestabilized"
)

// Key distributions accepted by WorkloadConfig.Distribution,
// re-exported from the workload engine.
const (
	DistUniform = workload.DistUniform
	DistZipf    = workload.DistZipf
	DistHotspot = workload.DistHotspot
)

// Topologies returns every topology name WithTopology accepts.
func Topologies() []string {
	return []string{
		TopologyStable, TopologyRandom, TopologyLine, TopologyStar,
		TopologyClique, TopologyBridged, TopologyGarbage, TopologyLoopy,
		TopologyPreStabilized,
	}
}

type config struct {
	size              int
	seed              int64
	topology          string
	workers           int
	routerCache       bool
	fullSweep         bool
	disableRing       bool
	disableConnection bool
	async             bool
	asyncProb         float64
	asyncDelay        DelayModel
	wireMetrics       *obs.WireMetrics
}

func defaultConfig() config {
	return config{size: 32, seed: 1, topology: TopologyStable, routerCache: true}
}

// Option configures a Cluster at construction time.
type Option func(*config)

// WithSize sets the number of peers (default 32).
func WithSize(n int) Option { return func(c *config) { c.size = n } }

// WithSeed sets the seed driving every random choice: the peer
// identifiers, the initial topology, joiner identifiers, and churn
// event selection (default 1). Same options, same seed: the same
// cluster.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithTopology selects the initial state (default TopologyStable). Any
// non-stable topology is returned un-stabilized; run Stabilize(ctx) to
// reach the fixed point.
func WithTopology(name string) Option { return func(c *config) { c.topology = name } }

// WithWorkers sets the number of goroutines the round engine uses to
// run rules within a round (0 = all cores, 1 = serial). The result is
// identical for any value.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithRouterCache enables or disables the epoch-cached table router on
// the KV path (default enabled). Disabled, every operation routes
// through the state-walk router — the baseline the cache is measured
// against.
func WithRouterCache(on bool) Option { return func(c *config) { c.routerCache = on } }

// WithFullSweep runs the paper's literal schedule — rules 1-6 at every
// peer every round — instead of the activity-tracked incremental
// scheduler. Round-by-round global states are identical; full sweep is
// the equivalence baseline and debugging aid.
func WithFullSweep() Option { return func(c *config) { c.fullSweep = true } }

// WithAblation disables rule 5 (ring edges) and/or rule 6 (connection
// edges), the paper's ablations. An ablated cluster cannot use the
// stable topology (the oracle's stable state assumes all six rules).
func WithAblation(disableRing, disableConnection bool) Option {
	return func(c *config) {
		c.disableRing = disableRing
		c.disableConnection = disableConnection
	}
}

// DelayModel draws per-message delivery delays for the asynchronous
// execution model (re-exported from the scheduler layer). Build one
// with DelayUniform, DelayGeometric, DelayPareto or DelayPerLink, or
// parse a textual spec with ParseDelayModel.
type DelayModel = rechord.DelayModel

// DelayUniform delays every message uniformly in 1..max steps — the
// classic bounded-delay adversary. max < 2 means synchronous timing
// (every delay exactly 1).
func DelayUniform(max int) DelayModel { return rechord.UniformDelay{Max: max} }

// DelayGeometric delays each message 1+Geometric(p) steps (mean 1/p),
// capped at max when positive.
func DelayGeometric(p float64, max int) DelayModel {
	return rechord.GeometricDelay{P: p, Max: max}
}

// DelayPareto delays messages by a heavy-tailed Pareto(alpha) draw
// (smaller alpha = heavier tail), capped at max when positive.
func DelayPareto(alpha float64, max int) DelayModel {
	return rechord.ParetoDelay{Alpha: alpha, Max: max}
}

// DelayPerLink derives each message's delay from the (from, to) peer
// pair — a deterministic per-link latency map. The optional maxHint is
// the map's largest latency: it caps the values and lets default
// stabilization budgets scale with the latency instead of assuming
// delay 1 (pass it whenever latencies exceed a few steps).
func DelayPerLink(fn func(from, to PeerID) int, maxHint ...int) DelayModel {
	max := 0
	if len(maxHint) > 0 {
		max = maxHint[0]
	}
	return rechord.LinkDelay{Fn: func(f, t ident.ID) int { return fn(PeerID(f), PeerID(t)) }, Max: max}
}

// ParseDelayModel parses a textual delay-model spec, for command-line
// flags: "uniform:MAX", "geometric:P[:MAX]", "pareto:ALPHA[:MAX]", or
// "" for the synchronous delay of 1. Errors match ErrConfig.
func ParseDelayModel(spec string) (DelayModel, error) {
	if spec == "" {
		return DelayUniform(1), nil
	}
	parts := strings.Split(spec, ":")
	bad := func() error {
		return fmt.Errorf("%w: delay spec %q (want uniform:MAX, geometric:P[:MAX] or pareto:ALPHA[:MAX])", ErrConfig, spec)
	}
	num := func(i int) (float64, error) {
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil {
			return 0, bad()
		}
		return v, nil
	}
	switch parts[0] {
	case "uniform":
		if len(parts) != 2 {
			return nil, bad()
		}
		v, err := num(1)
		if err != nil || v < 1 {
			return nil, bad()
		}
		return DelayUniform(int(v)), nil
	case "geometric", "geom":
		if len(parts) != 2 && len(parts) != 3 {
			return nil, bad()
		}
		p, err := num(1)
		if err != nil || p <= 0 || p > 1 {
			return nil, bad()
		}
		max := 0.0
		if len(parts) == 3 {
			if max, err = num(2); err != nil {
				return nil, bad()
			}
		}
		return DelayGeometric(p, int(max)), nil
	case "pareto":
		if len(parts) != 2 && len(parts) != 3 {
			return nil, bad()
		}
		alpha, err := num(1)
		if err != nil || alpha <= 0 {
			return nil, bad()
		}
		max := 0.0
		if len(parts) == 3 {
			if max, err = num(2); err != nil {
				return nil, bad()
			}
		}
		return DelayPareto(alpha, int(max)), nil
	}
	return nil, bad()
}

// WithWireMetrics attaches a wire-layer counter set (the one threaded
// through internal/wire encoders, decoders and node runners) so the
// cluster's Metrics() snapshot — and therefore the /metrics endpoint —
// carries frame, byte and effect counts alongside the engine and
// workload sections. The set stays caller-owned: a process embedding
// both a serving cluster and a wire node passes the same instance to
// both.
func WithWireMetrics(m *obs.WireMetrics) Option {
	return func(c *config) { c.wireMetrics = m }
}

// WithAsync switches the cluster from the paper's synchronous round
// model to the asynchronous execution model: Stabilize, ChurnRandom
// and RunWorkload then step the event-driven asynchronous scheduler,
// in which each frontier peer activates with probability
// activationProb per step and messages arrive after a delay drawn from
// the model (nil = the synchronous delay of 1). Every facade method
// works unchanged; reports that count "rounds" count asynchronous
// steps instead. Incompatible with WithFullSweep.
func WithAsync(activationProb float64, delay DelayModel) Option {
	return func(c *config) {
		c.async = true
		c.asyncProb = activationProb
		c.asyncDelay = delay
	}
}

func (c config) validate() error {
	if c.size < 1 {
		return fmt.Errorf("%w: size %d, need at least 1 peer", ErrConfig, c.size)
	}
	if c.workers < 0 {
		return fmt.Errorf("%w: workers %d is negative", ErrConfig, c.workers)
	}
	if _, ok := generators()[c.topology]; !ok && c.topology != TopologyStable {
		return fmt.Errorf("%w: unknown topology %q (want one of %v)", ErrConfig, c.topology, Topologies())
	}
	if c.topology == TopologyStable && (c.disableRing || c.disableConnection) {
		return fmt.Errorf("%w: the stable topology requires all six rules; use a non-stable topology with WithAblation", ErrConfig)
	}
	if c.async {
		if c.fullSweep {
			return fmt.Errorf("%w: WithAsync and WithFullSweep are mutually exclusive (the full sweep is a synchronous schedule)", ErrConfig)
		}
		if c.asyncProb <= 0 || c.asyncProb > 1 {
			return fmt.Errorf("%w: async activation probability %v outside (0, 1]", ErrConfig, c.asyncProb)
		}
	}
	return nil
}

// generators maps every non-stable topology name to its builder.
func generators() map[string]topogen.Generator {
	return map[string]topogen.Generator{
		TopologyRandom:        topogen.Random(),
		TopologyLine:          topogen.Line(),
		TopologyStar:          topogen.Star(),
		TopologyClique:        topogen.Clique(),
		TopologyBridged:       topogen.BridgedPartitions(3),
		TopologyGarbage:       topogen.Garbage(),
		TopologyLoopy:         topogen.Loopy(),
		TopologyPreStabilized: topogen.PreStabilized(),
	}
}
