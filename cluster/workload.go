package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/churn"
	"repro/internal/sim"
	"repro/internal/workload"
)

// eventKindFor maps a churn event kind to its stream event kind.
func eventKindFor(kind string) EventKind {
	switch kind {
	case "join":
		return EventPeerJoined
	case "leave":
		return EventPeerLeft
	default:
		return EventPeerFailed
	}
}

// restoreInvariants re-establishes the facade guarantees after
// anything churned the membership: refresh the home list, finish any
// interrupted repair, rebalance the store onto current ownership,
// prune the router cache, and publish an epoch event when any peer
// state changed since epoch0. Callers hold the write lock.
func (c *Cluster) restoreInvariants(epoch0 int) error {
	c.refreshHomes()
	if !c.sched.Quiescent() {
		sim.Run(context.Background(), c.sched, sim.Options{})
	}
	var err error
	if _, rerr := c.store.Rebalance(); rerr != nil {
		err = fmt.Errorf("%w: rebalance: %v", ErrUnknownPeer, rerr)
	}
	if c.cache != nil {
		c.cache.Prune()
	}
	if epoch := c.nw.EpochClock(); epoch != epoch0 {
		c.bus.publish(Event{Kind: EventEpochBumped, Epoch: epoch, Round: c.clock()})
	}
	return err
}

// WorkloadConfig parameterizes one RunWorkload call. The zero value of
// every field means "engine default"; only Ops or Duration must be
// set. Whether operations route through the epoch-cached router is the
// cluster's WithRouterCache option, not a per-run knob.
type WorkloadConfig struct {
	// Workers is the number of concurrent client workers (default 4).
	Workers int
	// Ops is the total operation count, split across workers.
	Ops int
	// Duration, when positive, replaces Ops as the stop condition.
	Duration time.Duration
	// Keyspace is the number of distinct keys (default 4096).
	Keyspace int
	// Distribution is DistUniform, DistZipf or DistHotspot.
	Distribution string
	// ZipfS, ZipfV parameterize the zipf distribution.
	ZipfS, ZipfV float64
	// HotFraction, HotKeys, HotShiftEvery parameterize the shifting
	// hotspot.
	HotFraction   float64
	HotKeys       int
	HotShiftEvery int
	// GetFrac, PutFrac, DeleteFrac is the op mix (default .80/.15/.05).
	GetFrac, PutFrac, DeleteFrac float64
	// Preload stores this many keys before the measured run.
	Preload int
	// Seed drives every random choice of the run (op streams, churn
	// selection). Same seed + same config: identical op streams.
	Seed int64
	// Rate, when positive, paces an open loop at this many ops/sec
	// across all workers; 0 is a closed loop.
	Rate float64
	// ChurnEvents is the number of membership events interleaved with
	// the traffic; 0 disables churn.
	ChurnEvents int
	// ChurnEveryOps spaces consecutive events by completed operations
	// (default: spread evenly across the run).
	ChurnEveryOps int
	// ChurnStepChunk is how many repair rounds the churn driver runs
	// per lock acquisition while re-stabilizing (default 4).
	ChurnStepChunk int
}

// OpReport is the telemetry of one operation kind.
type OpReport struct {
	Name          string
	Count, Errors int
	Latency       *Histogram // nanoseconds
	Hops          *Histogram // inter-peer hops
}

// WorkloadReport is the merged telemetry of one RunWorkload call.
type WorkloadReport struct {
	Ops        int           // operations completed
	Errors     int           // routing failures surfaced to clients
	NotFound   int           // Gets that reached the owner but missed
	Fallbacks  int           // table-route failures recovered by the state walk
	Elapsed    time.Duration // wall-clock of the measured phase
	Throughput float64       // ops per second

	Latency *Histogram // all ops, nanoseconds
	Hops    *Histogram // all ops, inter-peer hops
	PerOp   []OpReport

	CacheHits, CacheMisses uint64 // router cache counters for the run
	ChurnApplied           int    // membership events actually applied

	// OpsFingerprint hashes the op streams, StoreFingerprint the final
	// store contents of the run; same seed + config reproduce both
	// (the store fingerprint additionally requires a churn-free run).
	OpsFingerprint   uint64
	StoreFingerprint uint64
	StoreLen         int

	summary string
}

// Summary renders the headline numbers as one line.
func (r *WorkloadReport) Summary() string { return r.summary }

// RunWorkload drives the concurrent traffic engine against the
// cluster: a pool of client workers firing Get/Put/Delete at the
// overlay, optionally racing membership churn, returning the merged
// telemetry. The call holds the cluster's write side for the whole run
// (facade KV methods block until it returns); the fine-grained
// interleaving of lookups with re-stabilization happens inside the
// engine. Cancellation stops workers and the churn driver end to end
// and returns the partial telemetry together with ctx.Err(); the
// network is finished re-stabilizing by the facade before the method
// returns, so the cluster stays serviceable.
//
// Workload churn is published on the event stream: one peer event per
// applied membership change, a region-settled event per completed
// repair, and one epoch-bumped event when the run changed any peer
// state.
func (c *Cluster) RunWorkload(ctx context.Context, cfg WorkloadConfig) (*WorkloadReport, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	epoch0 := c.nw.EpochClock()
	wcfg := workload.Config{
		Workers:       cfg.Workers,
		Ops:           cfg.Ops,
		Duration:      cfg.Duration,
		Keyspace:      cfg.Keyspace,
		Distribution:  cfg.Distribution,
		ZipfS:         cfg.ZipfS,
		ZipfV:         cfg.ZipfV,
		HotFraction:   cfg.HotFraction,
		HotKeys:       cfg.HotKeys,
		HotShiftEvery: cfg.HotShiftEvery,
		GetFrac:       cfg.GetFrac,
		PutFrac:       cfg.PutFrac,
		DeleteFrac:    cfg.DeleteFrac,
		Preload:       cfg.Preload,
		Seed:          cfg.Seed,
		Rate:          cfg.Rate,
		NoCache:       !c.cfg.routerCache,
		Cache:         c.cache,
		Obs:           c.met,
		Churn: workload.ChurnConfig{
			Events:    cfg.ChurnEvents,
			EveryOps:  cfg.ChurnEveryOps,
			StepChunk: cfg.ChurnStepChunk,
			// Engine-driven events carry no Round: the callbacks run on
			// the churn-driver goroutine, which may not read the round
			// counter while workers are mid-operation.
			OnApply: func(ev churn.Event) {
				c.bus.publish(Event{Kind: eventKindFor(ev.Kind), Peer: PeerID(ev.ID)})
			},
			OnSettle: func(rounds int) {
				c.bus.publish(Event{Kind: EventRegionSettled, Rounds: rounds, Peers: c.nw.NumPeers()})
			},
		},
	}

	res, runErr := workload.Run(ctx, c.sched, wcfg)
	if res == nil {
		switch {
		case runErr == nil:
			return nil, nil
		case errors.Is(runErr, workload.ErrConfig):
			// The engine rejected the configuration before starting.
			return nil, fmt.Errorf("%w: %v", ErrConfig, runErr)
		case ctx.Err() != nil:
			return nil, runErr
		default:
			// A runtime failure before the measured run began (empty
			// network, preload routing error on an unstable topology).
			return nil, fmt.Errorf("%w: %v", ErrNoRoute, runErr)
		}
	}

	// The run may have churned the membership (and a canceled run may
	// have left the repair unfinished): restore the facade invariants
	// before releasing the lock.
	if err := c.restoreInvariants(epoch0); err != nil && runErr == nil {
		runErr = err
	}

	rep := &WorkloadReport{
		Ops:              res.Ops,
		Errors:           res.Errors,
		NotFound:         res.NotFound,
		Fallbacks:        res.Fallbacks,
		Elapsed:          res.Elapsed,
		Throughput:       res.Throughput,
		Latency:          res.Latency,
		Hops:             res.Hops,
		CacheHits:        res.CacheHits,
		CacheMisses:      res.CacheMisses,
		ChurnApplied:     res.ChurnApplied,
		OpsFingerprint:   res.OpsFingerprint,
		StoreFingerprint: res.StoreFingerprint,
		StoreLen:         res.StoreLen,
		summary:          res.Summary(),
	}
	for _, op := range res.PerOp {
		rep.PerOp = append(rep.PerOp, OpReport{
			Name: op.Name, Count: op.Count, Errors: op.Errors,
			Latency: op.Latency, Hops: op.Hops,
		})
	}
	return rep, runErr
}

// Recovery reports how one churn event was absorbed.
type Recovery struct {
	// Kind is "join", "leave" or "fail".
	Kind string
	// Peer is the peer that joined or departed.
	Peer PeerID
	// Rounds is how many repair rounds the re-stabilization took.
	Rounds int
}

// ChurnRandom applies a seed-derived random mix of joins, graceful
// leaves and crash failures, re-stabilizing (and verifying the stable
// state) after each event, and returns the per-event recovery costs.
// Each event is published on the event stream as soon as it is
// applied, followed by its region-settled event once the repair
// completes. Cancellation returns the completed recoveries with
// ctx.Err(); the interrupted repair is finished by the facade before
// the method returns.
func (c *Cluster) ChurnRandom(ctx context.Context, events int) (recs []Recovery, err error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	if events < 0 {
		return nil, fmt.Errorf("%w: churn events %d is negative", ErrConfig, events)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	epoch0 := c.nw.EpochClock()
	defer func() {
		if rerr := c.restoreInvariants(epoch0); rerr != nil && err == nil {
			err = rerr
		}
	}()

	var out []Recovery
	for _, ev := range churn.RandomEvents(c.nw, events, c.rng) {
		var aerr error
		switch ev.Kind {
		case "join":
			aerr = c.nw.Join(ev.ID, ev.Contact)
		case "leave":
			aerr = c.nw.Leave(ev.ID)
		default:
			aerr = c.nw.Fail(ev.ID)
		}
		if aerr != nil {
			return out, fmt.Errorf("%w: %s: %v", ErrUnknownPeer, ev.Kind, aerr)
		}
		// Published as soon as the membership change is visible, before
		// the repair — the stream's contract.
		c.bus.publish(Event{Kind: eventKindFor(ev.Kind), Peer: PeerID(ev.ID), Round: c.clock()})

		res := sim.Run(ctx, c.sched, sim.Options{})
		if res.Canceled {
			return out, ctx.Err()
		}
		if !res.Stable {
			return out, fmt.Errorf("%w: network did not re-stabilize after %s of %s", ErrUnstable, ev.Kind, ev.ID)
		}
		if verr := churn.VerifyStable(c.nw); verr != nil {
			return out, fmt.Errorf("%w: after %s of %s: %v", ErrUnstable, ev.Kind, ev.ID, verr)
		}
		c.bus.publish(Event{Kind: EventRegionSettled, Rounds: res.Rounds, Peers: c.nw.NumPeers(), Round: c.clock()})
		out = append(out, Recovery{Kind: ev.Kind, Peer: PeerID(ev.ID), Rounds: res.Rounds})
	}
	return out, nil
}
