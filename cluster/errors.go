package cluster

import (
	"errors"
	"fmt"

	"repro/internal/dht"
)

// The unified error taxonomy of the facade. Every error returned by a
// Cluster method matches exactly one of these with errors.Is (or is a
// context error from a canceled/expired ctx, passed through).
var (
	// ErrConfig reports invalid construction options or an invalid
	// workload configuration.
	ErrConfig = errors.New("cluster: invalid configuration")
	// ErrClosed reports an operation on a closed cluster.
	ErrClosed = errors.New("cluster: closed")
	// ErrUnknownPeer reports a lifecycle or KV operation naming a peer
	// that is not in the cluster.
	ErrUnknownPeer = errors.New("cluster: unknown peer")
	// ErrNotFound reports a Get whose routing reached the key's owner
	// but found the key absent — distinct from ErrNoRoute, after which
	// nothing is known about the key.
	ErrNotFound = errors.New("cluster: key not found")
	// ErrNoRoute reports an operation whose overlay routing could not
	// complete, typically because the touched tables were still being
	// repaired mid-churn.
	ErrNoRoute = errors.New("cluster: no route to key owner")
	// ErrUnstable reports a network that did not reach (or is not in)
	// the stable state: Stabilize exceeded its round budget, or
	// VerifyStable found a deviation from the oracle topology.
	ErrUnstable = errors.New("cluster: network not in the stable state")
)

// opError translates a store/routing error into the facade taxonomy,
// keeping the underlying detail in the message.
func opError(op, key string, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, dht.ErrNotFound):
		return fmt.Errorf("%w: %s %q", ErrNotFound, op, key)
	case errors.Is(err, dht.ErrUnknownPeer):
		return fmt.Errorf("%w: %s %q: %v", ErrUnknownPeer, op, key, err)
	default:
		return fmt.Errorf("%w: %s %q: %v", ErrNoRoute, op, key, err)
	}
}
