package cluster

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/dht"
	"repro/internal/obs"
	"repro/internal/routing"
)

// Facade op indices into the workload metrics' per-op slots; the order
// matches the op names New passes to obs.NewWorkloadMetrics.
const (
	opGet = iota
	opPut
	opDelete
	opLookup
)

// MetricsSnapshot is the cluster's structured telemetry snapshot:
// engine counters and per-phase barrier timings, routing-cache
// counters and the lookup-hop distribution, serving-path workload
// metrics, and the event-stream drop counter. It marshals to stable
// JSON (the /metrics endpoint and the largescale artifact both emit
// it verbatim).
type MetricsSnapshot = obs.Snapshot

// LookupTrace is one lookup's hop-by-hop record; see TraceLookup.
type LookupTrace = obs.LookupTrace

// Metrics returns the live telemetry snapshot. It is lock-free with
// respect to the cluster's operation lock: every source is an atomic
// counter or a per-shard histogram behind its own short mutex, so the
// call is safe (and cheap) concurrently with a running workload,
// mid-stabilization, or from a scrape handler — it never blocks the
// serving path and the serving path never blocks it.
func (c *Cluster) Metrics() MetricsSnapshot {
	s := MetricsSnapshot{
		Engine:        c.nw.Obs().Snapshot(),
		Workload:      c.met.Snapshot(),
		EventsDropped: c.bus.dropped.Load(),
	}
	if c.cache != nil {
		s.Routing.CacheHits, s.Routing.CacheMisses = c.cache.Stats()
		s.Routing.CacheInvalidations = c.cache.Invalidations()
		s.Routing.CacheEntries = c.cache.Len()
	}
	s.Routing.Fallbacks = c.fallbacks.Load()
	s.Routing.LookupHops = obs.SummarizeHist(c.met.Hops.Merged())
	s.Wire = c.wire.Snapshot() // nil-safe: all-zero without WithWireMetrics
	return s
}

// TraceLookup routes the key from a round-robin home peer to its owner
// like Lookup, but returns the full per-lookup trace: the hop-by-hop
// path, per-table cache attribution, whether the table route failed
// over to the state walk, and — under WithAsync — the simulated
// per-hop delivery delays the configured delay model assigns to the
// path's links (drawn from a key-seeded stream, so the same lookup
// traces the same delays).
func (c *Cluster) TraceLookup(ctx context.Context, key string) (*LookupTrace, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	from := c.home()
	kid := dht.KeyID(key)
	tr := &LookupTrace{}
	var err error
	if c.cache != nil {
		_, _, err = c.cache.RouteTraced(from, kid, tr)
		if err != nil {
			// Mirror the serving path's failover: the state walk
			// tolerates the mid-stabilization state the table route
			// tripped over. The cache attribution of the failed
			// attempt is kept; the path is the walk's.
			tr.Failover = true
			_, _, err = routing.Walker{NW: c.nw}.ResolveTraced(from, kid, tr)
		}
	} else {
		_, _, err = routing.Walker{NW: c.nw}.ResolveTraced(from, kid, tr)
	}
	if err != nil {
		return tr, opError("trace", key, err)
	}
	tr.Err = ""
	if c.cfg.async && len(tr.Path) > 1 {
		delay := c.cfg.asyncDelay
		if delay == nil {
			delay = DelayUniform(1)
		}
		rng := rand.New(rand.NewSource(c.cfg.seed ^ int64(kid)))
		tr.DelaySteps = make([]int, len(tr.Path)-1)
		for i := range tr.DelaySteps {
			tr.DelaySteps[i] = delay.Delay(rng, tr.Path[i], tr.Path[i+1])
		}
	}
	return tr, nil
}

// observeKV mirrors one facade KV operation into the live workload
// metrics: op and taxonomy counters plus the hop distributions. The
// facade's single-op methods skip the latency histograms — those
// measure the traffic engine's serving path, where per-op timing is
// taken; a facade call's wall time is dominated by the caller.
func (c *Cluster) observeKV(kind int, hops int, err error) {
	m := c.met
	m.Ops.Inc()
	op := m.Op(kind)
	op.Ops.Inc()
	switch {
	case err == nil:
	case errors.Is(err, dht.ErrNotFound):
		// Routing reached the owner; the hop count is real.
		m.NotFound.Inc()
	case errors.Is(err, dht.ErrUnknownPeer):
		m.UnknownPeer.Inc()
		op.Errors.Inc()
		return
	default:
		m.RouteErrors.Inc()
		op.Errors.Inc()
		return
	}
	m.Hops.Observe(0, float64(hops))
	op.Hops.Observe(0, float64(hops))
}
