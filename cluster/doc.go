// Package cluster is the public facade of the Re-Chord reproduction:
// one context-aware API over the four layers every consumer used to
// hand-wire — the self-stabilizing round engine (internal/rechord +
// internal/sim), the epoch-cached Chord router (internal/routing), the
// sharded key-value store (internal/dht), and the concurrent traffic
// engine (internal/workload).
//
// A Cluster is built with functional options and consumed through four
// method groups:
//
//   - Lifecycle: Join, Leave, Fail apply membership events;
//     Stabilize(ctx) runs the six Re-Chord repair rules to the global
//     fixed point (cancellable, deadline-bounded); Quiescent reports
//     whether the network is at that fixed point.
//   - KV: Get, Put, Delete and Lookup route operations over the
//     overlay from round-robin home peers, through the epoch-cached
//     table router with a state-walk fallback, surfacing the unified
//     error taxonomy (ErrNotFound, ErrNoRoute, ErrUnknownPeer, ...).
//   - Traffic: RunWorkload(ctx, cfg) drives the concurrent workload
//     engine — client workers, pluggable key distributions, churn
//     interleaved with the traffic — and returns merged telemetry.
//   - Events: Subscribe returns a stream of lifecycle events (peer
//     joined/left/failed, region settled, epoch bumped), replacing
//     ad-hoc polling of frontier sizes and quiescence flags.
//
// # Execution models
//
// WithAsync(p, delay) switches the cluster from the paper's
// synchronous round model to the event-driven asynchronous scheduler:
// each frontier peer activates with probability p per step and
// messages arrive after a delay drawn from the model (DelayUniform,
// DelayGeometric, DelayPareto, DelayPerLink, or ParseDelayModel for
// flag strings). Every facade method works unchanged; reports and
// event timestamps that count "rounds" count asynchronous steps
// instead (Steps returns that clock, Round stays the synchronous round
// counter).
//
// # Concurrency model
//
// The facade serializes network mutation against routing reads with
// one RWMutex, the same discipline internal/workload uses: KV methods
// take the read side, lifecycle methods and Stabilize take the write
// side. Stabilize and RunWorkload hold the write side for their whole
// run, so KV callers block until they return; both honor context
// cancellation, observed between protocol rounds, so the network is
// always released at a round barrier in a consistent, steppable state.
// RunWorkload's internal interleaving (lookups racing re-stabilization
// mid-churn) happens inside the workload engine under its own lock.
//
// # Event-stream contract
//
// Subscribe(buf) returns a buffered channel and a cancel function.
// Publishing never blocks the cluster: an event that does not fit in a
// subscriber's buffer is dropped for that subscriber (EventsDropped
// counts them), so a slow consumer can lose events but never stall
// lifecycle operations. Events are published after the state change
// they describe is visible; Close closes every subscriber channel.
package cluster
