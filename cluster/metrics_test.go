package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestSubscriberOverflowCounted pins the event bus's drop accounting:
// a subscriber that never drains its buffer loses events, the loss is
// counted, and the counter is surfaced through the metrics snapshot —
// without the publisher ever blocking.
func TestSubscriberOverflowCounted(t *testing.T) {
	c, err := New(WithSize(12), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// A buffer of 1 and no reader: the first event lands, the rest of
	// the churn's event stream (joins, epoch bumps, region-settled)
	// must be dropped and counted.
	events, unsubscribe := c.Subscribe(1)
	defer unsubscribe()
	for i := 0; i < 3; i++ {
		if _, err := c.Join(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stabilize(ctx); err != nil {
			t.Fatal(err)
		}
	}
	dropped := c.EventsDropped()
	if dropped == 0 {
		t.Fatal("overflowing a 1-slot subscriber dropped no events")
	}
	if got := c.Metrics().EventsDropped; got != dropped {
		t.Fatalf("Metrics().EventsDropped = %d, EventsDropped() = %d", got, dropped)
	}
	// The one buffered event is still delivered in order (the first
	// published: the initial join).
	ev := <-events
	if ev.Kind != EventPeerJoined {
		t.Fatalf("buffered event kind = %v, want %v", ev.Kind, EventPeerJoined)
	}
}

// TestWithWireMetrics pins the wire section of the snapshot: a
// caller-owned obs.WireMetrics attached at construction surfaces its
// counters through Metrics(), and without the option the section is
// present but all-zero (the nil-safe snapshot).
func TestWithWireMetrics(t *testing.T) {
	var wm obs.WireMetrics
	wm.FramesSent.Add(7)
	wm.BytesSent.Add(1234)
	wm.BucketUpdates.Add(3)

	c, err := New(WithSize(8), WithSeed(2), WithWireMetrics(&wm))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Metrics()
	if s.Wire.FramesSent != 7 || s.Wire.BytesSent != 1234 || s.Wire.BucketUpdates != 3 {
		t.Fatalf("wire section not surfaced: %+v", s.Wire)
	}
	wm.FramesRecv.Inc()
	if c.Metrics().Wire.FramesRecv != 1 {
		t.Fatal("snapshot is not live against the shared counter set")
	}

	plain, err := New(WithSize(8), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if got := plain.Metrics().Wire; got != (obs.WireSnapshot{}) {
		t.Fatalf("wire section without the option should be zero, got %+v", got)
	}
}

// TestMetricsSnapshot exercises the structured snapshot end to end: a
// workload run populates every layer, and the snapshot's counters
// agree with the run's report.
func TestMetricsSnapshot(t *testing.T) {
	c, err := New(WithSize(16), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	rep, err := c.RunWorkload(ctx, WorkloadConfig{Ops: 400, Preload: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Metrics()
	if s.Workload.Ops != uint64(rep.Ops) {
		t.Fatalf("snapshot ops = %d, report ops = %d", s.Workload.Ops, rep.Ops)
	}
	if s.Workload.LatencyNS.Count != uint64(rep.Ops) {
		t.Fatalf("latency histogram count = %d, want %d", s.Workload.LatencyNS.Count, rep.Ops)
	}
	if s.Routing.LookupHops.Count == 0 {
		t.Fatal("no lookup hops recorded")
	}
	if s.Routing.CacheHits+s.Routing.CacheMisses == 0 {
		t.Fatal("workload run touched no cached tables")
	}
	if s.Engine.Steps == 0 {
		t.Fatal("engine step counter did not advance (stabilization ran)")
	}
	if s.Engine.Delivered == 0 || s.Engine.Batches == 0 {
		t.Fatalf("engine batch counters empty: %+v", s.Engine)
	}
	if s.Engine.QuiescentSteps != s.Engine.Steps-s.Engine.Batches {
		t.Fatalf("quiescent steps %d != steps %d - batches %d",
			s.Engine.QuiescentSteps, s.Engine.Steps, s.Engine.Batches)
	}
	fired := uint64(0)
	for _, n := range s.Engine.RuleFired {
		fired += n
	}
	if fired == 0 {
		t.Fatal("no rule firings attributed (the seed stabilization fires rules)")
	}
	for _, phase := range []string{"deliver", "execute", "prepare", "publish", "reroute"} {
		if _, ok := s.Engine.PhaseNS[phase]; !ok {
			t.Fatalf("phase %q missing from snapshot", phase)
		}
	}
	// The flow-storage gauges ride along: a stabilized network holds
	// live shared templates, and its standing buckets reference them.
	if s.Engine.FlowTemplates <= 0 || s.Engine.FlowResidentBytes <= 0 {
		t.Fatalf("flow gauges empty after stabilization: templates=%d resident=%d",
			s.Engine.FlowTemplates, s.Engine.FlowResidentBytes)
	}
	if s.Engine.FlowSharedBytes <= 0 || s.Engine.FlowTemplateHit <= 0 {
		t.Fatalf("shared-storage gauges empty: shared=%d hit=%v",
			s.Engine.FlowSharedBytes, s.Engine.FlowTemplateHit)
	}
	// The facade KV path feeds the same metrics set.
	if err := c.Put(ctx, "facade-key", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "facade-key"); err != nil {
		t.Fatal(err)
	}
	s2 := c.Metrics()
	if s2.Workload.Ops != s.Workload.Ops+2 {
		t.Fatalf("facade ops not counted: %d -> %d", s.Workload.Ops, s2.Workload.Ops)
	}
	if got := s2.Workload.PerOp[opGet].Ops + s2.Workload.PerOp[opPut].Ops + s2.Workload.PerOp[opDelete].Ops + s2.Workload.PerOp[opLookup].Ops; got != s2.Workload.Ops {
		t.Fatalf("per-op counts sum to %d, total %d", got, s2.Workload.Ops)
	}
}

// TestTraceLookup pins the per-lookup trace on both execution models:
// the traced owner matches Lookup's contract, hops are the unified
// path definition, cache attribution is present, and the async model
// annotates one simulated delay per hop.
func TestTraceLookup(t *testing.T) {
	ctx := context.Background()
	t.Run("sync", func(t *testing.T) {
		c, err := New(WithSize(24), WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		tr, err := c.TraceLookup(ctx, "some-key")
		if err != nil {
			t.Fatal(err)
		}
		if PeerID(tr.Owner) != c.Owner("some-key") {
			t.Fatalf("trace owner %s, want %s", tr.Owner, c.Owner("some-key"))
		}
		if len(tr.Path) == 0 {
			t.Fatal("trace has no path")
		}
		if tr.Hops() != len(tr.Path)-1 {
			t.Fatalf("Hops() = %d, path length %d", tr.Hops(), len(tr.Path))
		}
		if tr.CacheHits+tr.CacheMisses == 0 {
			t.Fatal("cached lookup attributed no table fetches")
		}
		if tr.DelaySteps != nil {
			t.Fatal("sync trace carries delay annotations")
		}
		if s := tr.String(); !strings.Contains(s, "hops") {
			t.Fatalf("trace renders %q", s)
		}
	})
	t.Run("async", func(t *testing.T) {
		c, err := New(WithSize(24), WithSeed(4), WithAsync(0.5, DelayUniform(5)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		tr, err := c.TraceLookup(ctx, "some-key")
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.DelaySteps) != tr.Hops() {
			t.Fatalf("%d delay annotations for %d hops", len(tr.DelaySteps), tr.Hops())
		}
		for i, d := range tr.DelaySteps {
			if d < 1 || d > 5 {
				t.Fatalf("delay[%d] = %d outside the model's 1..5", i, d)
			}
		}
		if tr.TotalDelay() < tr.Hops() {
			t.Fatalf("total delay %d below hop count %d", tr.TotalDelay(), tr.Hops())
		}
	})
}

// TestMetricsDuringWorkloadRace is the race gate for the lock-free
// snapshot contract: Metrics() must be safe — and non-blocking —
// while a workload (which holds the cluster's write lock for its whole
// run) is mutating every counter it reads. Run with -race.
func TestMetricsDuringWorkloadRace(t *testing.T) {
	c, err := New(WithSize(16), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := c.Metrics()
				if s.Workload.Ops < s.Workload.NotFound {
					t.Error("snapshot counters inconsistent beyond torn-read tolerance")
					return
				}
				_ = s.Routing.LookupHops
				_ = c.EventsDropped()
			}
		}()
	}
	_, err = c.RunWorkload(ctx, WorkloadConfig{Ops: 2000, Preload: 128, Seed: 2, ChurnEvents: 2})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Workload.Ops; got == 0 {
		t.Fatal("workload recorded no ops")
	}
}
